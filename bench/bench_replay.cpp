// E8b (replay) — capture-once / replay-many vs per-configuration
// re-execution.
//
// The differential-timing workflow records one careful-loop execution and
// then evaluates the whole timing-configuration matrix against the trace,
// so the per-configuration cost drops from "re-execute the program" to
// "walk the event stream through a TimingModel". Two claims are checked
// here, both load-bearing for the workflow:
//
//   1. bit-identity — for every matrix configuration, replayed cycles equal
//      a fresh live execution under that configuration, on every standard
//      workload that records untainted;
//   2. speedup — per configuration, walking the decoded trace is >= 10x
//      faster than the instrumented re-execution a live differential
//      analysis would need (the careful loop with a per-instruction
//      observer attached — what s4e-qta's co-simulation mode pays, since
//      extracting any per-instruction path information live forces the
//      exec engine out of the chained fast path). The bare fast-path
//      re-execution time is reported alongside for honesty: it is the
//      floor for a cycles-only live measurement.
//
// The measured row lands in BENCH_replay.json (merge semantics, so other
// benches' rows survive). `--no-report` skips the write; `--quick` shrinks
// the kernel for the ctest smoke run (bench.replay_smoke).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "asm/assembler.hpp"
#include "bench/bench_report.hpp"
#include "common/strings.hpp"
#include "core/workloads.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"
#include "vp/machine.hpp"
#include "vp/plugin.hpp"

namespace {

using namespace s4e;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// The timing kernel: a counted loop exercising every latency class replay
// charges differently (mul, iterative divide, RAM load/store, a
// data-dependent branch) around a straight-line arithmetic body — the
// shape of the real compute kernels (FIR, matmul, CRC) whose arithmetic
// runs the trace RLE-compresses — long enough that per-configuration wall
// time is dominated by execution, not setup.
std::string kernel_source(unsigned iterations) {
  return format(R"(
_start:
    li s0, %u
    li s1, 0
    li t0, 0x80002000
loop:
    mul t1, s0, s0
    add s1, s1, t1
    xor s1, s1, s0
    addi t2, s1, 3
    and t3, t2, t1
    or s1, s1, t3
    sub t2, t2, s0
    slli t3, t2, 1
    srli t4, t3, 2
    add s1, s1, t4
    xor t2, t2, t3
    add s1, s1, t2
    andi t4, s1, 255
    add s1, s1, t4
    slli t5, s1, 3
    xor s1, s1, t5
    srli t5, s1, 5
    add s1, s1, t5
    add t2, s1, t1
    xor t3, t2, s0
    slli t4, t3, 2
    add s1, s1, t4
    srli t2, s1, 7
    and t3, t2, t1
    or s1, s1, t3
    sub t4, s1, s0
    xor s1, s1, t4
    addi t2, t4, 11
    add s1, s1, t2
    slli t3, s1, 1
    xor s1, s1, t3
    srli t4, s1, 3
    add s1, s1, t4
    andi t5, s1, 1023
    add s1, s1, t5
    divu t2, t1, s0
    xor s1, s1, t2
    sw s1, 0(t0)
    lw t4, 0(t0)
    add s1, s1, t4
    andi t5, s0, 3
    beqz t5, skip
    addi s1, s1, 1
skip:
    addi s0, s0, -1
    bnez s0, loop
    li a0, 0
    li a7, 93
    ecall
)",
                iterations);
}

struct Capture {
  trace::Trace trace;
  vp::RunResult result;
  u64 taints = 0;
  std::size_t stream_bytes = 0;
  double record_seconds = 0;
};

// One careful-loop execution with the recorder attached, under the default
// timing configuration (RecordingConfigurationDoesNotMatter in test_trace
// covers the "any config records the same path" contract).
Capture record_once(const assembler::Program& program) {
  vp::MachineConfig config;
  vp::Machine machine(config);
  S4E_CHECK(machine.load_program(program).ok());
  trace::TraceRecorder recorder(
      trace::TraceRecorder::config_for(config, program));
  S4E_CHECK(recorder.attach_checked(machine.vm_handle()).ok());
  const auto start = std::chrono::steady_clock::now();
  const vp::RunResult result = machine.run();
  const double seconds = seconds_since(start);
  const u64 taints = recorder.taints();
  const std::size_t stream_bytes = recorder.stream_size();
  auto parsed = trace::Trace::parse(recorder.finish_bytes(result));
  S4E_CHECK(parsed.ok());
  return Capture{std::move(*parsed), result, taints, stream_bytes, seconds};
}

// A fresh fast-path execution (no plugins) under one timing configuration —
// the floor for a cycles-only live measurement.
vp::RunResult live_run(const assembler::Program& program,
                       const vp::TimingParams& timing) {
  vp::MachineConfig config;
  config.timing = timing;
  vp::Machine machine(config);
  S4E_CHECK(machine.load_program(program).ok());
  return machine.run();
}

// The cheapest possible per-instruction observer: any live differential
// analysis that needs the executed path (the QTA chain does — WC(path) is
// per-instruction) must subscribe to insn_exec, which forces the careful
// loop. Using a bare counter instead of the real QtaPlugin biases the
// baseline in re-execution's favour.
class PathObserver final : public vp::PluginBase {
 public:
  Subscriptions subscriptions() const override {
    Subscriptions subs;
    subs.insn_exec = true;
    return subs;
  }
  void on_insn_exec(const s4e_insn_info& insn) override {
    ++instructions_;
    last_pc_ = insn.address;
  }
  u64 instructions_ = 0;
  u32 last_pc_ = 0;
};

// A fresh careful-loop execution with the observer attached — what a live
// per-configuration path analysis pays.
vp::RunResult instrumented_run(const assembler::Program& program,
                               const vp::TimingParams& timing) {
  vp::MachineConfig config;
  config.timing = timing;
  vp::Machine machine(config);
  S4E_CHECK(machine.load_program(program).ok());
  PathObserver observer;
  observer.attach(machine.vm_handle());
  const vp::RunResult result = machine.run();
  S4E_CHECK(observer.instructions_ == result.instructions);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool write_report = true;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-report") write_report = false;
    if (arg == "--quick") quick = true;
  }

  const std::vector<trace::NamedTiming> matrix = trace::timing_matrix();
  std::printf("[E8b] capture-once / replay-many vs re-execution "
              "(%zu timing configurations)\n\n", matrix.size());

  // --- Section 1: bit-identity across the standard workloads. Tainted
  // recordings (timing-path-sensitive sites: CLINT/GPIO, cycle CSRs) are
  // refused by replay and therefore skipped here — the skip is printed, not
  // silent, and at least one workload must survive.
  std::printf("%-12s %10s %8s %8s  %s\n", "workload", "insns", "stream",
              "configs", "replay == live");
  std::printf("%s\n", std::string(60, '-').c_str());
  bool all_identical = true;
  unsigned verified_workloads = 0;
  for (const core::Workload& workload : core::standard_workloads()) {
    auto program = assembler::assemble(workload.source);
    S4E_CHECK_MSG(program.ok(), workload.name);
    Capture capture = record_once(*program);
    if (capture.taints != 0) {
      std::printf("%-12s %10llu %8zu %8s  skipped (%llu taint sites)\n",
                  workload.name.c_str(),
                  static_cast<unsigned long long>(
                      capture.result.instructions),
                  capture.stream_bytes, "-",
                  static_cast<unsigned long long>(capture.taints));
      continue;
    }
    bool identical = true;
    for (const trace::NamedTiming& config : matrix) {
      const vp::RunResult live = live_run(*program, config.params);
      auto replayed = trace::replay(capture.trace, config.params);
      S4E_CHECK_MSG(replayed.ok(), workload.name + "/" + config.name);
      identical = identical && replayed->cycles == live.cycles &&
                  replayed->instructions == live.instructions;
    }
    all_identical = all_identical && identical;
    ++verified_workloads;
    std::printf("%-12s %10llu %8zu %8zu  %s\n", workload.name.c_str(),
                static_cast<unsigned long long>(capture.result.instructions),
                capture.stream_bytes, matrix.size(),
                identical ? "yes" : "NO");
  }
  S4E_CHECK(verified_workloads > 0);
  S4E_CHECK(all_identical);

  // --- Section 2: the speedup claim, on a kernel long enough to measure.
  const unsigned iterations = quick ? 2000 : 60000;
  auto kernel = assembler::assemble(kernel_source(iterations));
  S4E_CHECK(kernel.ok());
  Capture capture = record_once(*kernel);
  S4E_CHECK(capture.taints == 0);
  S4E_CHECK(trace::self_check(capture.trace).ok());

  std::printf("\nkernel: %llu instructions, %zu stream bytes "
              "(%.2f bytes/insn), recorded in %.3f s\n",
              static_cast<unsigned long long>(capture.result.instructions),
              capture.stream_bytes,
              static_cast<double>(capture.stream_bytes) /
                  static_cast<double>(capture.result.instructions),
              capture.record_seconds);

  // Decode once: the varint stream cost is paid a single time and shared
  // by every configuration (this is what replay_matrix and s4e-qta
  // --replay do internally).
  const auto decode_start = std::chrono::steady_clock::now();
  auto decoded = trace::DecodedTrace::decode(capture.trace);
  const double decode_seconds = seconds_since(decode_start);
  S4E_CHECK(decoded.ok());

  // Serial fast-path re-execution: one fresh chained-dispatch run per
  // configuration, cycles only.
  std::vector<u64> live_cycles(matrix.size());
  const auto fast_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    live_cycles[i] = live_run(*kernel, matrix[i].params).cycles;
  }
  const double fast_seconds = seconds_since(fast_start);

  // Serial instrumented re-execution: the careful loop with the
  // per-instruction observer — the live baseline for path-aware analysis.
  bool kernel_identical = true;
  const auto reexec_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    const vp::RunResult result = instrumented_run(*kernel, matrix[i].params);
    kernel_identical = kernel_identical && result.cycles == live_cycles[i];
  }
  const double reexec_seconds = seconds_since(reexec_start);
  S4E_CHECK(kernel_identical);  // careful loop == fast path, per config

  // Serial replay: the same matrix walked over the shared decoded trace.
  const auto replay_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    auto replayed = trace::replay(*decoded, matrix[i].params);
    S4E_CHECK_MSG(replayed.ok(), matrix[i].name);
    kernel_identical = kernel_identical && replayed->cycles == live_cycles[i];
  }
  const double replay_seconds = seconds_since(replay_start);
  S4E_CHECK(kernel_identical);

  // Parallel replay: the tool-facing fan-out (s4e-qta --replay --jobs N).
  const unsigned jobs = std::max(2u, std::thread::hardware_concurrency());
  const auto parallel_start = std::chrono::steady_clock::now();
  auto fanned = trace::replay_matrix(capture.trace, matrix, jobs);
  const double parallel_seconds = seconds_since(parallel_start);
  S4E_CHECK(fanned.ok());
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    kernel_identical =
        kernel_identical && (*fanned)[i].result.cycles == live_cycles[i];
  }
  S4E_CHECK(kernel_identical);

  const double speedup = reexec_seconds / replay_seconds;
  const double speedup_fast = fast_seconds / replay_seconds;
  const double per_config = 1e3 / static_cast<double>(matrix.size());
  std::printf("\n%-30s %10s %14s\n", "evaluation of the matrix", "wall",
              "per config");
  std::printf("%s\n", std::string(56, '-').c_str());
  std::printf("%-30s %8.3f s %11.3f ms\n", "re-exec, instrumented (serial)",
              reexec_seconds, reexec_seconds * per_config);
  std::printf("%-30s %8.3f s %11.3f ms\n", "re-exec, fast path (serial)",
              fast_seconds, fast_seconds * per_config);
  std::printf("%-30s %8.3f s %11.3f ms  (decode once: %.3f ms)\n",
              "replay (serial)", replay_seconds, replay_seconds * per_config,
              decode_seconds * 1e3);
  std::printf("%-30s %8.3f s %11.3f ms  (jobs=%u)\n", "replay (pool)",
              parallel_seconds, parallel_seconds * per_config, jobs);
  std::printf("\nreplay speedup over instrumented re-execution: %.1fx per "
              "configuration\n(%.1fx over the bare fast path), cycles "
              "bit-identical: %s\n",
              speedup, speedup_fast, kernel_identical ? "yes" : "NO");
  if (!quick) S4E_CHECK_MSG(speedup >= 10.0, "replay speedup below 10x");

  if (write_report) {
    S4E_CHECK(bench::merge_bench_entry(
        "BENCH_replay.json", "replay_vs_reexec",
        format("{\"workload\": \"replay_kernel\", \"instructions\": %llu, "
               "\"stream_bytes\": %zu, "
               "\"configs\": %zu, "
               "\"verified_workloads\": %u, "
               "\"bit_identical\": %s, "
               "\"reexec_per_config_ms\": %s, "
               "\"reexec_fast_per_config_ms\": %s, "
               "\"replay_per_config_ms\": %s, "
               "\"decode_once_ms\": %s, "
               "\"speedup\": %s, "
               "\"speedup_vs_fast\": %s, "
               "\"parallel_jobs\": %u, "
               "\"parallel_wall_ms\": %s, "
               "\"host_cores\": %u}",
               static_cast<unsigned long long>(capture.result.instructions),
               capture.stream_bytes, matrix.size(), verified_workloads,
               kernel_identical && all_identical ? "true" : "false",
               bench::json_number(reexec_seconds * per_config, 3).c_str(),
               bench::json_number(fast_seconds * per_config, 3).c_str(),
               bench::json_number(replay_seconds * per_config, 3).c_str(),
               bench::json_number(decode_seconds * 1e3, 3).c_str(),
               bench::json_number(speedup, 1).c_str(),
               bench::json_number(speedup_fast, 1).c_str(), jobs,
               bench::json_number(parallel_seconds * 1e3, 3).c_str(),
               std::thread::hardware_concurrency())));
    std::printf("(recorded in BENCH_replay.json)\n");
  }
  return 0;
}
