// E5 — fault-effect analysis at scale (MBMV'20): bit-flip campaigns across
// the standard workloads. Reproducible shape:
//   * every mutant is classified masked / sdc / crash / hang,
//   * a large masked fraction ("normal termination though executed on a
//     faulty hardware model" — the paper's subjects for further
//     investigation),
//   * the VP sustains a high mutant-simulation throughput, scaling to
//     thousands of mutants,
//   * coverage-directed fault lists raise the informative (non-masked)
//     fraction vs blind injection (ablation).
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/strings.hpp"
#include "core/ecosystem.hpp"
#include "core/workloads.hpp"

namespace {

// Byte-for-byte equality of two campaign results (the executor's
// determinism guarantee: parallel == serial, including the FP sum).
bool identical_results(const s4e::fault::CampaignResult& a,
                       const s4e::fault::CampaignResult& b) {
  if (a.golden_exit_code != b.golden_exit_code ||
      a.golden_instructions != b.golden_instructions ||
      a.golden_uart != b.golden_uart ||
      a.golden_memory_hash != b.golden_memory_hash ||
      a.simulated_instructions != b.simulated_instructions ||
      a.mutants.size() != b.mutants.size()) {
    return false;
  }
  for (unsigned i = 0; i < 4; ++i) {
    if (a.outcome_counts[i] != b.outcome_counts[i]) return false;
  }
  for (std::size_t i = 0; i < a.mutants.size(); ++i) {
    const auto& ma = a.mutants[i];
    const auto& mb = b.mutants[i];
    if (ma.outcome != mb.outcome || ma.exit_code != mb.exit_code ||
        ma.instructions != mb.instructions ||
        ma.spec.to_string() != mb.spec.to_string()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace s4e;
  core::Ecosystem ecosystem;

  constexpr unsigned kMutants = 400;
  std::printf("[E5] fault campaigns (%u mutants per workload, "
              "coverage-directed)\n\n",
              kMutants);
  std::printf("%-12s %7s %7s %7s %7s %10s %12s\n", "workload", "masked",
              "sdc", "crash", "hang", "mutants/s", "guest-MIPS");
  std::printf("%s\n", std::string(70, '-').c_str());

  double total_mutants = 0;
  double total_seconds = 0;
  for (const core::Workload& workload : core::standard_workloads()) {
    auto program = ecosystem.build(workload);
    S4E_CHECK(program.ok());
    fault::CampaignConfig config;
    config.seed = 0x5ca1e4ed;
    config.mutant_count = kMutants;

    const auto start = std::chrono::steady_clock::now();
    auto result = ecosystem.run_campaign(*program, config);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    S4E_CHECK_MSG(result.ok(), workload.name);
    total_mutants += static_cast<double>(result->mutants.size());
    total_seconds += seconds;

    std::printf("%-12s %6.1f%% %6.1f%% %6.1f%% %6.1f%% %10.0f %12.1f\n",
                workload.name.c_str(),
                100.0 * result->count(fault::Outcome::kMasked) / kMutants,
                100.0 * result->count(fault::Outcome::kSdc) / kMutants,
                100.0 * result->count(fault::Outcome::kCrash) / kMutants,
                100.0 * result->count(fault::Outcome::kHang) / kMutants,
                kMutants / seconds,
                result->simulated_instructions / seconds / 1e6);
  }
  std::printf("%s\n", std::string(70, '-').c_str());
  std::printf("aggregate: %.0f mutants in %.2f s (%.0f mutants/s)\n\n",
              total_mutants, total_seconds, total_mutants / total_seconds);

  // Ablation: coverage-directed vs blind on one workload.
  auto workload = core::find_workload("crc32");
  S4E_CHECK(workload.ok());
  auto program = ecosystem.build(*workload);
  S4E_CHECK(program.ok());
  fault::CampaignConfig config;
  config.seed = 99;
  config.mutant_count = 600;
  auto directed = ecosystem.run_campaign(*program, config);
  config.coverage_directed = false;
  auto blind = ecosystem.run_campaign(*program, config);
  S4E_CHECK(directed.ok() && blind.ok());
  auto informative = [&](const fault::CampaignResult& r) {
    return 100.0 *
           (1.0 - static_cast<double>(r.count(fault::Outcome::kMasked)) /
                      static_cast<double>(r.mutants.size()));
  };
  std::printf("[E5-ablation] crc32, 600 mutants: informative faults "
              "directed %.1f%% vs blind %.1f%%\n",
              informative(*directed), informative(*blind));

  // Scaling: campaign size sweep (demonstrates linear scaling, the paper's
  // "scales to more complex scenarios" claim).
  std::printf("\n[E5-scaling] campaign size sweep on bubble_sort:\n");
  auto sort_workload = core::find_workload("bubble_sort");
  S4E_CHECK(sort_workload.ok());
  auto sort_program = ecosystem.build(*sort_workload);
  S4E_CHECK(sort_program.ok());
  for (unsigned mutants : {100u, 400u, 1600u}) {
    fault::CampaignConfig sweep;
    sweep.seed = 7;
    sweep.mutant_count = mutants;
    const auto start = std::chrono::steady_clock::now();
    auto result = ecosystem.run_campaign(*sort_program, sweep);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    S4E_CHECK(result.ok());
    std::printf("  %5u mutants: %6.2f s  (%7.0f mutants/s)\n", mutants,
                seconds, mutants / seconds);
  }

  // Parallel executor: serial vs thread-pooled campaign on one workload.
  // The parallel result must be bit-identical to the serial one.
  {
    // Floor at 2 so the pooled path is exercised even on a 1-core host
    // (there the comparison degenerates to ~1.0x, as expected).
    const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
    std::printf("\n[E5-parallel] bubble_sort, 800 mutants, serial vs "
                "jobs=%u:\n",
                hw);
    fault::CampaignConfig par;
    par.seed = 0x5ca1e4ed;
    par.mutant_count = 800;

    double serial_seconds = 0;
    fault::CampaignResult serial_result;
    {
      par.jobs = 1;
      const auto start = std::chrono::steady_clock::now();
      auto result = ecosystem.run_campaign(*sort_program, par);
      serial_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      S4E_CHECK(result.ok());
      serial_result = std::move(*result);
    }
    double parallel_seconds = 0;
    fault::CampaignResult parallel_result;
    {
      par.jobs = hw;
      const auto start = std::chrono::steady_clock::now();
      auto result = ecosystem.run_campaign(*sort_program, par);
      parallel_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
      S4E_CHECK(result.ok());
      parallel_result = std::move(*result);
    }
    std::printf("  jobs=1 : %6.2f s  (%7.0f mutants/s)\n", serial_seconds,
                par.mutant_count / serial_seconds);
    std::printf("  jobs=%-2u: %6.2f s  (%7.0f mutants/s)\n", hw,
                parallel_seconds, par.mutant_count / parallel_seconds);
    std::printf("  speedup: %.2fx   results bit-identical: %s\n",
                serial_seconds / parallel_seconds,
                identical_results(serial_result, parallel_result) ? "yes"
                                                                  : "NO");
    S4E_CHECK(identical_results(serial_result, parallel_result));
  }
  return 0;
}
