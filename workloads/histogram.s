# byte histogram into 16 bins over a 64-byte buffer
# expected exit code: 4

_start:
    la s0, bytes
    la s1, bins
    li s2, 64
hist_loop:
    lbu t0, 0(s0)
    andi t0, t0, 15
    slli t0, t0, 2
    add t0, t0, s1
    lw t1, 0(t0)
    addi t1, t1, 1
    sw t1, 0(t0)
    addi s0, s0, 1
    addi s2, s2, -1
    bnez s2, hist_loop
    lw a0, 20(s1)      # bins[5]
    li a7, 93
    ecall
.data
bytes:
    .byte 0, 7, 14, 21, 28, 35, 42, 49, 56, 63, 70, 77, 84, 91, 98, 105, 112, 119, 126, 133, 140, 147, 154, 161, 168, 175, 182, 189, 196, 203, 210, 217, 224, 231, 238, 245, 252, 3, 10, 17, 24, 31, 38, 45, 52, 59, 66, 73, 80, 87, 94, 101, 108, 115, 122, 129, 136, 143, 150, 157, 164, 171, 178, 185
bins:
    .space 64
