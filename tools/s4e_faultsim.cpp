// s4e-faultsim — fault-effect campaign on an ELF.
//
//   s4e-faultsim file.elf [--mutants N] [--seed S] [--blind]
//                [--no-gpr] [--no-mem] [--no-code] [--list]
#include <cstdio>

#include "elf/elf32.hpp"
#include "fault/fault.hpp"
#include "tools/tool_util.hpp"

int main(int argc, char** argv) {
  using namespace s4e;
  tools::Args args(argc, argv, {"--mutants", "--seed"});
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: s4e-faultsim <file.elf> [--mutants N] [--seed S] "
                 "[--blind] [--no-gpr] [--no-mem] [--no-code] [--list]\n");
    return 2;
  }
  auto program = elf::read_elf_file(args.positional()[0]);
  if (!program.ok()) {
    std::fprintf(stderr, "s4e-faultsim: %s\n",
                 program.error().to_string().c_str());
    return 1;
  }

  fault::CampaignConfig config;
  config.mutant_count = static_cast<unsigned>(
      parse_integer(args.value("--mutants", "200")).value_or(200));
  config.seed =
      static_cast<u64>(parse_integer(args.value("--seed", "1")).value_or(1));
  config.coverage_directed = !args.has("--blind");
  config.gpr_faults = !args.has("--no-gpr");
  config.memory_faults = !args.has("--no-mem");
  config.code_faults = !args.has("--no-code");

  fault::Campaign campaign(*program, config);
  auto result = campaign.run();
  if (!result.ok()) {
    std::fprintf(stderr, "s4e-faultsim: %s\n",
                 result.error().to_string().c_str());
    return 1;
  }
  std::printf("%s", result->to_string().c_str());

  if (args.has("--list")) {
    std::printf("\nper-mutant results:\n");
    for (std::size_t i = 0; i < result->mutants.size(); ++i) {
      const auto& mutant = result->mutants[i];
      std::printf("  #%03zu  %-7s exit=%-4d  %s\n", i,
                  std::string(fault::to_string(mutant.outcome)).c_str(),
                  mutant.exit_code, mutant.spec.to_string().c_str());
    }
  }
  return 0;
}
