// E6 — dynamic memory / IO access analysis (MBMV'19 lock scenario).
// Reproducible shape: the benign firmware triggers zero policy violations
// for any PIN, the compromised firmware is flagged at the exact attacking
// instruction, and the non-invasive observation costs only a moderate
// slowdown (it rides the mem-access callback, not per-instruction hooks).
#include <chrono>
#include <cstdio>

#include "asm/assembler.hpp"
#include "common/strings.hpp"
#include "core/workloads.hpp"
#include "memwatch/memwatch.hpp"
#include "vp/machine.hpp"

namespace {

using namespace s4e;

memwatch::Policy tx_policy(const assembler::Program& program) {
  memwatch::Policy policy;
  memwatch::Region tx;
  tx.name = "uart-tx";
  tx.base = vp::Uart::kDefaultBase;
  tx.size = 4;
  tx.pc_lo = *program.symbol("uart_puts");
  tx.pc_hi = *program.symbol("uart_puts_end");
  policy.regions.push_back(tx);
  return policy;
}

struct Scenario {
  const char* workload;
  const char* pin;
  const char* label;
};

}  // namespace

int main() {
  std::printf("[E6] lock-control IO-access analysis\n\n");
  std::printf("%-22s %-10s %-8s %10s %10s  %s\n", "scenario", "uart-says",
              "exit", "accesses", "violations", "verdict");
  std::printf("%s\n", std::string(78, '-').c_str());

  const Scenario scenarios[] = {
      {"lock_ctrl", "1234", "benign / correct PIN"},
      {"lock_ctrl", "9999", "benign / wrong PIN"},
      {"lock_ctrl", "", "benign / no input"},
      {"attack_lock", "1234", "attack / correct PIN"},
      {"attack_lock", "", "attack / no input"},
  };

  bool expected_all = true;
  for (const Scenario& scenario : scenarios) {
    auto workload = core::find_workload(scenario.workload);
    S4E_CHECK(workload.ok());
    auto program = assembler::assemble(workload->source);
    S4E_CHECK(program.ok());
    vp::Machine machine;
    S4E_CHECK(machine.load_program(*program).ok());
    if (scenario.pin[0] != '\0') machine.uart()->push_rx(scenario.pin);
    memwatch::MemWatchPlugin watch(tx_policy(*program));
    watch.attach(machine.vm_handle());
    const vp::RunResult result = machine.run();

    const bool is_attack = std::string(scenario.workload) == "attack_lock";
    // The attack fires on the deny path only (it runs after a deny).
    const bool attack_executed = is_attack && result.exit_code == 1;
    const bool verdict_ok = attack_executed ? !watch.violations().empty()
                                            : watch.violations().empty();
    expected_all = expected_all && verdict_ok;

    std::string uart = machine.uart()->tx_log();
    for (char& c : uart) {
      if (c == '\n') c = ' ';
    }
    std::printf("%-22s %-10s %-8d %10llu %10zu  %s\n", scenario.label,
                uart.c_str(), result.exit_code,
                static_cast<unsigned long long>(watch.total_accesses()),
                watch.violations().size(),
                verdict_ok ? "as expected" : "UNEXPECTED");
    for (const auto& violation : watch.violations()) {
      std::printf("    -> %s\n", violation.to_string().c_str());
    }
  }

  // Observation overhead on a memory-heavy kernel.
  const char* kMemKernel = R"(
_start:
    la t6, buf
    li t0, 50000
loop:
    lw t1, 0(t6)
    addi t1, t1, 1
    sw t1, 0(t6)
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    li a0, 0
    ecall
.data
buf:
    .space 64
)";
  auto program = assembler::assemble(kMemKernel);
  S4E_CHECK(program.ok());
  auto time_run = [&](bool watched) {
    vp::Machine machine;
    S4E_CHECK(machine.load_program(*program).ok());
    memwatch::Policy policy;
    policy.regions.push_back(
        memwatch::Region{"buf", 0x8001'0000, 64, true, true, 0, 0});
    memwatch::MemWatchPlugin watch(policy);
    if (watched) watch.attach(machine.vm_handle());
    const auto start = std::chrono::steady_clock::now();
    machine.run();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  const double base = time_run(false);
  const double watched = time_run(true);
  std::printf("\n[E6] observation overhead on a memory-bound kernel: %.2fx\n",
              watched / base);
  std::printf("[E6] all scenarios behaved as expected: %s\n",
              expected_all ? "YES" : "NO");
  return expected_all ? 0 : 1;
}
