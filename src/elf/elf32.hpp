// Minimal ELF32 (little-endian, RISC-V) image writer and loader.
//
// The real ecosystem loads GCC-produced ELF binaries into QEMU; we replace
// the toolchain but keep the artefact format, so assembled programs round-
// trip through a standards-conformant ELF file: ELF32 header, one PT_LOAD
// program header per section, a .symtab/.strtab pair, and a vendor section
// `.s4e.annot` that carries the `.loopbound` WCET annotations.
#pragma once

#include <string>
#include <vector>

#include "asm/program.hpp"
#include "common/status.hpp"

namespace s4e::elf {

// Serialize a program into an ELF32 image (in memory).
Result<std::vector<u8>> write_elf(const assembler::Program& program);

// Parse an ELF32 image back into a Program (sections, symbols, annotations,
// entry point). Accepts exactly what write_elf produces plus any ELF32
// executable whose PT_LOAD segments and symtab follow the spec.
Result<assembler::Program> read_elf(const std::vector<u8>& image);

// File-system convenience wrappers.
Status write_elf_file(const assembler::Program& program,
                      const std::string& path);
Result<assembler::Program> read_elf_file(const std::string& path);

}  // namespace s4e::elf
