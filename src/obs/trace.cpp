#include "obs/trace.hpp"

#include <string>

#include "common/hex.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "isa/rvc.hpp"

namespace s4e::obs {

namespace {

// The disassembler never emits quotes or backslashes today, but the trace
// promises well-formed JSON, so escape defensively.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // control chars
    out.push_back(c);
  }
  return out;
}

std::string disassemble_encoding(u32 encoding, u32 pc) {
  auto decoded = s4e::isa::decoder().decode(encoding);
  if (decoded.ok()) return s4e::isa::disassemble_at(*decoded, pc);
  if (s4e::isa::is_compressed(static_cast<u16>(encoding))) {
    auto decompressed = s4e::isa::decompress(static_cast<u16>(encoding));
    if (decompressed.ok()) {
      return s4e::isa::disassemble_at(*decompressed, pc);
    }
  }
  return "<illegal>";
}

}  // namespace

void JsonlTracePlugin::on_insn_exec(const s4e_insn_info& insn) {
  ++icount_;
  if (!budget_left()) return;
  ++emitted_;
  ++lines_;
  std::fprintf(out_,
               "{\"t\":\"insn\",\"n\":%llu,\"pc\":\"0x%s\","
               "\"raw\":\"0x%s\",\"asm\":\"%s\"}\n",
               static_cast<unsigned long long>(icount_),
               hex32(insn.address).c_str(), hex32(insn.encoding).c_str(),
               json_escape(disassemble_encoding(insn.encoding, insn.address))
                   .c_str());
}

void JsonlTracePlugin::on_mem(const s4e_mem_event& event) {
  if (!budget_left()) return;
  ++emitted_;
  ++lines_;
  std::fprintf(out_,
               "{\"t\":\"mem\",\"pc\":\"0x%s\",\"addr\":\"0x%s\","
               "\"size\":%u,\"store\":%u,\"val\":\"0x%s\"}\n",
               hex32(event.pc).c_str(), hex32(event.vaddr).c_str(),
               event.size, event.is_store, hex32(event.value).c_str());
}

void JsonlTracePlugin::on_trap(const s4e_trap_event& event) {
  ++lines_;
  std::fprintf(out_,
               "{\"t\":\"trap\",\"cause\":\"0x%s\",\"epc\":\"0x%s\","
               "\"tval\":\"0x%s\"}\n",
               hex32(event.cause).c_str(), hex32(event.epc).c_str(),
               hex32(event.tval).c_str());
}

void JsonlTracePlugin::on_exit(int exit_code) {
  ++lines_;
  std::fprintf(out_, "{\"t\":\"exit\",\"code\":%d}\n", exit_code);
  std::fflush(out_);
}

}  // namespace s4e::obs
