// Translation-block cache: the VP's analogue of QEMU's TCG code cache.
//
// Guest code is decoded once per basic block, lowered to the threaded
// DecodedInsn form (see exec_engine.hpp), and reused on every re-execution;
// only stores into already-translated code (self-modification, e.g. by the
// fault injector) force a flush. The E1 experiment ablates this cache
// against per-instruction re-decoding.
//
// Chaining model: blocks carry direct successor pointers (fall-through and
// static-branch edges) plus a 2-entry jump cache per indirect exit, patched
// lazily by the execution engine. Links are severed *logically*, not by
// walking back-pointers: every slot records the cache's chain epoch at patch
// time, and any invalidation (flush, invalidate_range, re-insert, superblock
// replacement) bumps the epoch, making every outstanding link stale in O(1).
// A stale link is never dereferenced — the epoch is checked first — so block
// destruction needs no unlinking pass.
#pragma once

#include <array>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "isa/instr.hpp"
#include "vp/exec_engine.hpp"

namespace s4e::vp {

struct TranslationBlock;

// A direct chain edge: valid iff `epoch` matches the cache's current chain
// epoch. `hot` counts follows and triggers superblock formation.
struct ChainSlot {
  TranslationBlock* target = nullptr;
  u64 epoch = 0;
  u32 hot = 0;
};

struct TranslationBlock {
  u32 start = 0;
  u32 byte_size = 0;
  std::vector<isa::Instr> insns;
  // The lowered threaded form the execution engine actually runs; same
  // order as `insns` for basic blocks. Superblocks carry only `code`.
  std::vector<DecodedInsn> code;
  u64 exec_count = 0;

  // --- Chaining metadata (engine-owned, see machine.cpp run_chain). ---
  u32 fall_pc = 0;   // pc after the last instruction (fall-through edge)
  u32 taken_pc = 0;  // static target of a terminating branch/jal, else 0
  ChainSlot chain_fall;   // fall-through successor
  ChainSlot chain_taken;  // taken-branch / jal successor
  // 2-entry jump cache for an indirect terminator (jalr/mret), most
  // recently used first.
  struct JumpCacheEntry {
    u32 pc = 0;
    TranslationBlock* target = nullptr;
    u64 epoch = 0;
  };
  std::array<JumpCacheEntry, 2> jc{};
  // Hot-trace alias: when set, the fast engine dispatches this superblock
  // instead of the basic block. Owned by the cache's superblock registry.
  TranslationBlock* superblock = nullptr;
  bool is_superblock = false;
  // Source [address, size) spans a superblock was spliced from, for
  // invalidate_range overlap checks. Empty for basic blocks (which use
  // [start, end())).
  std::vector<std::pair<u32, u32>> ranges;

  u32 end() const noexcept { return start + byte_size; }
};

class TbCache {
 public:
  // Max instructions per block (QEMU uses a similar translation bound).
  static constexpr unsigned kMaxBlockInsns = 64;
  // Direct-mapped front cache in front of the hash map: the block-dispatch
  // loop hits lookup() once per executed block, and campaign workloads
  // re-execute a handful of hot blocks millions of times. Power of two.
  static constexpr std::size_t kFrontEntries = 1024;

  TranslationBlock* lookup(u32 pc) noexcept {
    FrontEntry& front = front_[front_slot(pc)];
    if (front.block != nullptr && front.pc == pc) {
      ++front_hits_;
      return front.block;
    }
    auto it = blocks_.find(pc);
    if (it == blocks_.end()) {
      ++lookup_misses_;
      return nullptr;
    }
    ++deep_hits_;
    front = {pc, it->second.get()};
    return front.block;
  }

  TranslationBlock* insert(std::unique_ptr<TranslationBlock> block) {
    TranslationBlock* raw = block.get();
    code_lo_ = std::min(code_lo_, raw->start);
    code_hi_ = std::max(code_hi_, raw->end());
    auto& slot = blocks_[raw->start];
    if (slot != nullptr) {
      // Re-inserting at a live pc destroys the old block: sever every link
      // that may point at it, and drop a superblock built over it. (The
      // normal paths invalidate first, so this is a defensive rarity.)
      drop_superblock_at(raw->start);
      sever_chains();
    }
    slot = std::move(block);
    front_[front_slot(raw->start)] = {raw->start, raw};
    return raw;
  }

  void flush() noexcept {
    blocks_.clear();
    super_.clear();
    front_.fill(FrontEntry{});
    code_lo_ = ~u32{0};
    code_hi_ = 0;
    ++flush_count_;
    sever_chains();
  }

  // Drop only the blocks overlapping [address, address+size) — code was
  // patched in that range (a mutant, a restored dirty page) but the rest of
  // the translated code is still valid and stays warm. Returns the number
  // of blocks dropped. The code watermarks stay (conservative: they may
  // only over-approximate translated code). Superblocks spliced from any
  // overlapping source range are dropped too, and all chain links are
  // severed (epoch bump) whenever anything was dropped.
  u64 invalidate_range(u32 address, u32 size) noexcept {
    if (!overlaps_code(address, size)) return 0;
    const u64 lo = address;
    const u64 hi = static_cast<u64>(address) + size;
    u64 dropped = 0;
    for (auto it = blocks_.begin(); it != blocks_.end();) {
      TranslationBlock* block = it->second.get();
      if (block->start < hi && static_cast<u64>(block->end()) > lo) {
        FrontEntry& front = front_[front_slot(block->start)];
        if (front.block == block) front = FrontEntry{};
        it = blocks_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    for (auto it = super_.begin(); it != super_.end();) {
      bool overlap = false;
      for (const auto& [range_lo, range_size] : it->second->ranges) {
        if (range_lo < hi && static_cast<u64>(range_lo) + range_size > lo) {
          overlap = true;
          break;
        }
      }
      if (overlap) {
        if (auto base = blocks_.find(it->first); base != blocks_.end()) {
          base->second->superblock = nullptr;
        }
        it = super_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    if (dropped != 0) sever_chains();
    invalidated_blocks_ += dropped;
    return dropped;
  }

  // Register a superblock as the fast-dispatch alias of the basic block at
  // its entry pc, replacing (and destroying) any previous superblock there.
  // Severs all chains: links into the old superblock die with it, and links
  // into the entry block get re-resolved to the new superblock on re-patch.
  TranslationBlock* install_superblock(
      std::unique_ptr<TranslationBlock> superblock) {
    TranslationBlock* raw = superblock.get();
    super_[raw->start] = std::move(superblock);
    if (auto base = blocks_.find(raw->start); base != blocks_.end()) {
      base->second->superblock = raw;
    }
    sever_chains();
    return raw;
  }

  // Conservative self-modification check: true if [address, address+size)
  // intersects the watermark range of translated code.
  bool overlaps_code(u32 address, u32 size) const noexcept {
    return code_hi_ != 0 && address < code_hi_ && address + size > code_lo_;
  }

  // Invalidate every outstanding chain link and jump-cache entry in O(1):
  // slots stamped with an older epoch fail validation and are re-patched.
  void sever_chains() noexcept {
    ++chain_epoch_;
    ++chain_severs_;
  }
  u64 chain_epoch() const noexcept { return chain_epoch_; }

  std::size_t size() const noexcept { return blocks_.size(); }
  std::size_t superblock_count() const noexcept { return super_.size(); }
  u64 flush_count() const noexcept { return flush_count_; }
  u64 invalidated_blocks() const noexcept { return invalidated_blocks_; }
  u64 chain_severs() const noexcept { return chain_severs_; }
  u64 front_hits() const noexcept { return front_hits_; }
  u64 deep_hits() const noexcept { return deep_hits_; }
  u64 lookup_misses() const noexcept { return lookup_misses_; }

 private:
  struct FrontEntry {
    u32 pc = 0;
    TranslationBlock* block = nullptr;  // nullptr = invalid entry
  };

  // Block starts are at least 2-byte aligned (RVC), so drop the LSB before
  // indexing to use all slots.
  static std::size_t front_slot(u32 pc) noexcept {
    return (pc >> 1) & (kFrontEntries - 1);
  }

  void drop_superblock_at(u32 pc) noexcept {
    if (super_.empty()) return;
    if (auto it = super_.find(pc); it != super_.end()) {
      if (auto base = blocks_.find(pc); base != blocks_.end()) {
        base->second->superblock = nullptr;
      }
      super_.erase(it);
    }
  }

  std::unordered_map<u32, std::unique_ptr<TranslationBlock>> blocks_;
  // Superblocks live outside `blocks_`: lookup() must keep returning the
  // basic block (exact per-block semantics for the careful loop); only the
  // fast engine follows the `superblock` alias.
  std::unordered_map<u32, std::unique_ptr<TranslationBlock>> super_;
  std::array<FrontEntry, kFrontEntries> front_{};
  u32 code_lo_ = ~u32{0};
  u32 code_hi_ = 0;
  u64 flush_count_ = 0;
  u64 invalidated_blocks_ = 0;
  // Chain epoch starts at 1 so a default-constructed ChainSlot (epoch 0)
  // can never validate.
  u64 chain_epoch_ = 1;
  u64 chain_severs_ = 0;
  u64 front_hits_ = 0;
  u64 deep_hits_ = 0;
  u64 lookup_misses_ = 0;
};

}  // namespace s4e::vp
