#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/csr.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "isa/encoder.hpp"
#include "isa/opcode.hpp"
#include "isa/registers.hpp"

namespace s4e::isa {
namespace {

TEST(OpTable, EveryRowMatchesItself) {
  for (unsigned i = 0; i < kOpCount; ++i) {
    const OpInfo& info = op_table()[i];
    EXPECT_EQ((info.match & info.mask), info.match)
        << "match has bits outside mask for " << info.mnemonic;
    // The low 2 bits must be 11 (32-bit encoding space).
    EXPECT_EQ(info.match & 0x3u, 0x3u) << info.mnemonic;
  }
}

TEST(OpTable, MnemonicsUnique) {
  for (unsigned i = 0; i < kOpCount; ++i) {
    for (unsigned j = i + 1; j < kOpCount; ++j) {
      EXPECT_NE(op_table()[i].mnemonic, op_table()[j].mnemonic);
    }
  }
}

TEST(OpTable, MatchPatternsDisjoint) {
  // No two rows may both match the same word (with each other's don't-care
  // bits zeroed). Check pairwise: patterns collide iff they agree on the
  // intersection of their masks AND the more specific one doesn't shadow
  // correctly — for decode correctness we require: for i != j,
  // (match_i & mask_j) != match_j OR (match_j & mask_i) != match_i,
  // except when one mask is a strict superset (handled by ordering).
  for (unsigned i = 0; i < kOpCount; ++i) {
    for (unsigned j = i + 1; j < kOpCount; ++j) {
      const OpInfo& a = op_table()[i];
      const OpInfo& b = op_table()[j];
      const u32 common = a.mask & b.mask;
      if ((a.match & common) != (b.match & common)) continue;  // disjoint
      // Overlapping: one mask must strictly contain the other (a fully-
      // fixed encoding carved out of a wider row, e.g. ecall vs csrrw
      // space), and the decoder orders most-specific first.
      EXPECT_TRUE((a.mask & b.mask) == a.mask || (a.mask & b.mask) == b.mask)
          << a.mnemonic << " vs " << b.mnemonic;
    }
  }
}

TEST(Decoder, KnownEncodings) {
  // Golden words cross-checked against the RISC-V spec / GNU as.
  struct Golden {
    u32 word;
    const char* text;
  };
  const Golden goldens[] = {
      {0x00500093, "addi ra, zero, 5"},
      {0x00a282b3, "add t0, t0, a0"},
      {0x40b50533, "sub a0, a0, a1"},
      {0xfff54513, "xori a0, a0, -1"},
      {0x00c000ef, "jal ra, 12"},
      {0x00008067, "jalr zero, 0(ra)"},
      {0x00052503, "lw a0, 0(a0)"},
      {0x00a52023, "sw a0, 0(a0)"},
      {0x00000073, "ecall"},
      {0x00100073, "ebreak"},
      {0x30200073, "mret"},
      {0x10500073, "wfi"},
      {0x02a585b3, "mul a1, a1, a0"},
      {0x02b54533, "div a0, a0, a1"},
      {0x300025f3, "csrrs a1, mstatus, zero"},
      {0x000800b7, "lui ra, 0x80"},
  };
  for (const auto& golden : goldens) {
    auto instr = decoder().decode(golden.word);
    ASSERT_TRUE(instr.ok()) << golden.text;
    EXPECT_EQ(disassemble(*instr), golden.text);
  }
}

TEST(Decoder, RejectsIllegal) {
  EXPECT_FALSE(decoder().decode(0x00000000).ok());
  EXPECT_FALSE(decoder().decode(0xffffffff).ok());
  // 16-bit (RVC) encodings are rejected.
  EXPECT_FALSE(decoder().decode(0x00000001).ok());
  // Valid major opcode but bad funct3 (OP-IMM funct3=101 with bad funct7).
  EXPECT_FALSE(decoder().decode(0x7e005013).ok());
}

TEST(Decoder, BranchImmediateSignExtension) {
  // beq zero, zero, -4 : imm = -4
  auto instr = decoder().decode(0xfe000ee3);
  ASSERT_TRUE(instr.ok());
  EXPECT_EQ(instr->op, Op::kBeq);
  EXPECT_EQ(instr->imm, -4);
}

TEST(Decoder, JalNegativeOffset) {
  // jal zero, -16
  auto instr = decoder().decode(0xff1ff06f);
  ASSERT_TRUE(instr.ok());
  EXPECT_EQ(instr->op, Op::kJal);
  EXPECT_EQ(instr->imm, -16);
}

// ---------------------------------------------------------------------------
// Property: encode(decode(w)) == w for every instruction type, with random
// operand values.

class EncodeDecodeRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(EncodeDecodeRoundTrip, RandomOperands) {
  const Op op = static_cast<Op>(GetParam());
  const OpInfo& info = op_info(op);
  Rng rng(0xc0ffee00u + GetParam());
  for (int iteration = 0; iteration < 200; ++iteration) {
    Instr instr;
    instr.op = op;
    switch (info.format) {
      case Format::kR:
        instr = make_r(op, rng.next_below(32), rng.next_below(32),
                       rng.next_below(32));
        // lr.w fixes the rs2 field to zero in its pattern; a random rs2
        // would be silently dropped by the encoder.
        if ((info.mask & (0x1fu << 20)) != 0) instr.rs2 = 0;
        break;
      case Format::kI:
        instr = make_i(op, rng.next_below(32), rng.next_below(32),
                       static_cast<i32>(rng.next_in_range(-2048, 2047)));
        break;
      case Format::kIShift:
        instr = make_shift(op, rng.next_below(32), rng.next_below(32),
                           rng.next_below(32));
        break;
      case Format::kS:
        instr = make_s(op, rng.next_below(32), rng.next_below(32),
                       static_cast<i32>(rng.next_in_range(-2048, 2047)));
        break;
      case Format::kB:
        instr = make_b(op, rng.next_below(32), rng.next_below(32),
                       static_cast<i32>(rng.next_in_range(-2048, 2047)) * 2);
        break;
      case Format::kU:
        instr = make_u(op, rng.next_below(32),
                       static_cast<i32>(rng.next_below(1u << 20) << 12));
        break;
      case Format::kJ:
        instr = make_j(op, rng.next_below(32),
                       static_cast<i32>(rng.next_in_range(-(1 << 19),
                                                          (1 << 19) - 1)) * 2);
        break;
      case Format::kCsrReg:
        instr = make_csr_reg(op, rng.next_below(32),
                             static_cast<u16>(rng.next_below(0x1000)),
                             rng.next_below(32));
        break;
      case Format::kCsrImm:
        instr = make_csr_imm(op, rng.next_below(32),
                             static_cast<u16>(rng.next_below(0x1000)),
                             rng.next_below(32));
        break;
      case Format::kNone:
      case Format::kFence:
        instr = make_system(op);
        break;
    }
    auto word = encode(instr);
    ASSERT_TRUE(word.ok()) << mnemonic(op) << ": " << word.error().to_string();
    auto decoded = decoder().decode(*word);
    ASSERT_TRUE(decoded.ok()) << mnemonic(op);
    EXPECT_EQ(decoded->op, op) << mnemonic(op);
    EXPECT_EQ(decoded->rd, instr.rd);
    EXPECT_EQ(decoded->rs1, instr.rs1);
    EXPECT_EQ(decoded->rs2, instr.rs2);
    EXPECT_EQ(decoded->imm, instr.imm);
    EXPECT_EQ(decoded->csr, instr.csr);
    // Re-encoding the decoded form must reproduce the word exactly.
    auto word2 = encode(*decoded);
    ASSERT_TRUE(word2.ok());
    EXPECT_EQ(*word2, *word);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, EncodeDecodeRoundTrip,
    ::testing::Range(0u, kOpCount),
    [](const ::testing::TestParamInfo<unsigned>& info) {
      std::string name(mnemonic(static_cast<Op>(info.param)));
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

TEST(Encoder, RejectsOutOfRangeImmediates) {
  EXPECT_FALSE(encode(make_i(Op::kAddi, 1, 1, 2048)).ok());
  EXPECT_FALSE(encode(make_i(Op::kAddi, 1, 1, -2049)).ok());
  EXPECT_FALSE(encode(make_b(Op::kBeq, 1, 1, 3)).ok());   // odd
  EXPECT_FALSE(encode(make_b(Op::kBeq, 1, 1, 4096)).ok());
  EXPECT_FALSE(encode(make_j(Op::kJal, 1, 1 << 20)).ok());
  EXPECT_FALSE(encode(make_u(Op::kLui, 1, 0x123)).ok());  // low bits set
  EXPECT_FALSE(encode(make_r(Op::kAdd, 32, 0, 0)).ok());  // bad register
}

TEST(Registers, AbiNames) {
  EXPECT_EQ(gpr_abi_name(0), "zero");
  EXPECT_EQ(gpr_abi_name(1), "ra");
  EXPECT_EQ(gpr_abi_name(2), "sp");
  EXPECT_EQ(gpr_abi_name(10), "a0");
  EXPECT_EQ(gpr_abi_name(31), "t6");
}

TEST(Registers, ParseBothSpellings) {
  EXPECT_EQ(*parse_gpr("x0"), 0u);
  EXPECT_EQ(*parse_gpr("x31"), 31u);
  EXPECT_EQ(*parse_gpr("zero"), 0u);
  EXPECT_EQ(*parse_gpr("t6"), 31u);
  EXPECT_EQ(*parse_gpr("fp"), 8u);
  EXPECT_EQ(*parse_gpr("s0"), 8u);
  EXPECT_FALSE(parse_gpr("x32").has_value());
  EXPECT_FALSE(parse_gpr("a8").has_value());
  EXPECT_FALSE(parse_gpr("").has_value());
}

TEST(CsrMap, RoundTrip) {
  for (u16 address : implemented_csrs()) {
    auto name = csr_name(address);
    ASSERT_TRUE(name.has_value());
    EXPECT_EQ(*parse_csr(*name), address);
  }
}

TEST(CsrMap, ReadOnlyDetection) {
  EXPECT_TRUE(csr_is_read_only(kCsrMhartid));
  EXPECT_TRUE(csr_is_read_only(kCsrCycle));
  EXPECT_FALSE(csr_is_read_only(kCsrMstatus));
  EXPECT_FALSE(csr_is_read_only(kCsrMepc));
}

TEST(Disasm, LoadsAndStores) {
  EXPECT_EQ(disassemble(make_i(Op::kLw, 5, 2, 8)), "lw t0, 8(sp)");
  EXPECT_EQ(disassemble(make_s(Op::kSw, 2, 5, -4)), "sw t0, -4(sp)");
}

TEST(Disasm, BranchTargetsAbsoluteForm) {
  const auto instr = make_b(Op::kBne, 10, 11, -8);
  EXPECT_EQ(disassemble_at(instr, 0x80000010),
            "bne a0, a1, -8    # -> 0x80000008");
}

TEST(InstrPredicates, ControlFlowClassification) {
  EXPECT_TRUE(make_b(Op::kBeq, 0, 0, 4).is_control_flow());
  EXPECT_TRUE(make_j(Op::kJal, 0, 4).is_control_flow());
  EXPECT_TRUE(make_system(Op::kEcall).is_control_flow());
  EXPECT_TRUE(make_system(Op::kMret).is_control_flow());
  EXPECT_FALSE(make_r(Op::kAdd, 1, 2, 3).is_control_flow());
  EXPECT_FALSE(make_system(Op::kWfi).is_control_flow());
}

}  // namespace
}  // namespace s4e::isa
