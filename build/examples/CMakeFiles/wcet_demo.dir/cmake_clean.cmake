file(REMOVE_RECURSE
  "CMakeFiles/wcet_demo.dir/wcet_demo.cpp.o"
  "CMakeFiles/wcet_demo.dir/wcet_demo.cpp.o.d"
  "wcet_demo"
  "wcet_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcet_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
