// QTA — the QEMU Timing Analyzer reproduction.
//
// The tool-demo flow (MBMV'21): a static WCET analysis (aiT; here
// s4e::wcet) produces a WCET-annotated CFG; the emulator loads the binary
// *and* the annotated graph and simulates them together. While the program
// runs, QTA accumulates the worst-case time of the *executed path*: on entry
// to an annotated block it adds the block's WCET, plus the transition
// penalty whenever control did not simply fall through.
//
// Three timelines therefore exist for one run, ordered by construction:
//     observed cycles  <=  WC time of executed path  <=  static WCET bound
// The E3 experiment checks exactly this chain.
//
// The accumulation itself is a pure function of the retired-PC sequence, so
// it is split out as PathAccumulator: the live co-simulation plugin feeds it
// from insn_exec callbacks, and the trace replay engine feeds it the
// identical sequence from a recorded trace — same chain, no VP.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "vp/plugin.hpp"
#include "wcet/annotated_cfg.hpp"

namespace s4e::qta {

struct QtaReport {
  u64 observed_cycles = 0;     // VP timing-model cycles for the run
  u64 wc_path_cycles = 0;      // WCET-annotated time of the executed path
  u64 static_bound = 0;        // whole-program static WCET
  u64 blocks_entered = 0;      // annotated block entries
  u64 unknown_blocks = 0;      // executed blocks missing from the annotation
  bool bound_violated = false; // wc_path > static_bound (analysis bug!)

  // Pessimism ratios (>= 1.0 when everything is consistent).
  double path_over_observed() const {
    return observed_cycles ? static_cast<double>(wc_path_cycles) /
                                 static_cast<double>(observed_cycles)
                           : 0.0;
  }
  double bound_over_path() const {
    return wc_path_cycles ? static_cast<double>(static_bound) /
                                static_cast<double>(wc_path_cycles)
                          : 0.0;
  }

  std::string to_string() const;
};

// Worst-case path-time accumulator over a retired-PC sequence. The annotated
// CFG must outlive the accumulator and must already be reindex()ed.
class PathAccumulator {
 public:
  explicit PathAccumulator(const wcet::AnnotatedCfg& annotated);

  // Account one retired instruction at `pc`.
  void step(u32 pc);

  u64 wc_path_cycles() const noexcept { return wc_path_cycles_; }
  u64 blocks_entered() const noexcept { return blocks_entered_; }
  u64 unknown_blocks() const noexcept { return unknown_blocks_; }

  QtaReport report(u64 observed_cycles) const;

  void reset() noexcept;

 private:
  const wcet::AnnotatedCfg* annotated_;
  // Intra-function edge penalties keyed by (source start << 32 | target
  // start); transitions not in this map (calls, returns) fall back to the
  // contiguity rule.
  std::map<u64, u32> edge_penalty_;
  u64 wc_path_cycles_ = 0;
  u64 blocks_entered_ = 0;
  u64 unknown_blocks_ = 0;
  u32 prev_block_start_ = 0;
  u32 prev_block_end_ = 0;
  bool in_flight_ = false;  // at least one block entered
};

// The co-simulation plugin. Attach to a VP, run the workload, then collect
// the report (pass the machine's final cycle count for `observed`).
class QtaPlugin final : public vp::PluginBase {
 public:
  explicit QtaPlugin(wcet::AnnotatedCfg annotated);

  Subscriptions subscriptions() const override {
    Subscriptions subs;
    subs.insn_exec = true;
    return subs;
  }

  void on_insn_exec(const s4e_insn_info& insn) override {
    path_.step(insn.address);
  }

  u64 wc_path_cycles() const noexcept { return path_.wc_path_cycles(); }
  u64 blocks_entered() const noexcept { return path_.blocks_entered(); }
  u64 unknown_blocks() const noexcept { return path_.unknown_blocks(); }
  const wcet::AnnotatedCfg& annotated() const noexcept { return annotated_; }

  QtaReport report(u64 observed_cycles) const {
    return path_.report(observed_cycles);
  }

  // Reset path accumulation (for re-running the same machine).
  void reset() noexcept { path_.reset(); }

 private:
  wcet::AnnotatedCfg annotated_;
  PathAccumulator path_;
};

}  // namespace s4e::qta
