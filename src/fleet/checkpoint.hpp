// Crash-safe checkpoint journal for the campaign fleet service.
//
// The journal is an append-only text file. Line one is a header binding the
// file to one campaign (fingerprint, mode, shard count). Every time a shard
// finishes, the daemon appends one block:
//
//   {"shard":i,"count":K,"begin":B,"end":E,"total":T,...golden...}
//   <K record lines, global index order>
//   {"commit":i}
//
// and flushes + fsyncs before acknowledging the shard as done. A block
// without its commit line (daemon died mid-append) is ignored on load, as
// is everything after it — so the worst crash loses exactly the in-flight
// block and the shard is simply re-run. Resume is automatic: when the
// journal exists and its header matches the campaign, committed shards are
// fed straight into the aggregation and never re-executed.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "fleet/records.hpp"

namespace s4e::fleet {

struct CheckpointHeader {
  Mode mode = Mode::kFault;
  u64 fingerprint = 0;
  unsigned shards = 1;
};

// One committed shard: its range, the golden reference the worker reported,
// and every record in global index order.
struct CompletedShard {
  unsigned shard = 0;
  u64 begin = 0;
  u64 end = 0;
  u64 total = 0;
  int golden_exit = 0;
  u64 golden_instructions = 0;
  std::vector<RecordLine> records;
};

class CheckpointJournal {
 public:
  CheckpointJournal() = default;
  CheckpointJournal(CheckpointJournal&& other) noexcept
      : file_(other.file_), mode_(other.mode_) {
    other.file_ = nullptr;
  }
  CheckpointJournal& operator=(CheckpointJournal&& other) noexcept;
  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;
  ~CheckpointJournal();

  // Open `path` for the campaign described by `header`. If the file holds a
  // matching journal, committed shards are returned through `recovered`
  // (sorted by shard index) and appends continue after them. If the file is
  // missing, empty, or belongs to a *different* campaign, it is replaced by
  // a fresh journal and `recovered` stays empty; `replaced_stale` reports
  // that case so the caller can surface it.
  static Result<CheckpointJournal> open(const std::string& path,
                                        const CheckpointHeader& header,
                                        std::vector<CompletedShard>& recovered,
                                        bool& replaced_stale);

  // Append one committed shard block and fsync it to disk.
  Status commit(const CompletedShard& shard);

  void close();

 private:
  std::FILE* file_ = nullptr;
  Mode mode_ = Mode::kFault;
};

// Parse helper shared with tests: reads a journal stream, returning only
// fully committed shard blocks (a partial trailing block is discarded, not
// an error). Fails only when the header is missing or malformed.
Result<std::vector<CompletedShard>> parse_journal(const std::string& text,
                                                  const CheckpointHeader& header,
                                                  bool& header_matches);

std::string encode_header(const CheckpointHeader& header);
std::string encode_shard_header(const CompletedShard& shard);

}  // namespace s4e::fleet
