# Empty compiler generated dependencies file for test_workload_files.
# This may be replaced when dependencies are built.
