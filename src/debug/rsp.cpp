#include "debug/rsp.hpp"

#include "common/hex.hpp"

namespace s4e::debug {

namespace {

constexpr char kEscape = 0x7d;

bool needs_escape(char c) {
  return c == '$' || c == '#' || c == kEscape || c == '*';
}

std::string escape(std::string_view payload) {
  std::string out;
  out.reserve(payload.size());
  for (char c : payload) {
    if (needs_escape(c)) {
      out.push_back(kEscape);
      out.push_back(static_cast<char>(c ^ 0x20));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string frame_wire_body(std::string_view body) {
  std::string out;
  out.reserve(body.size() + 4);
  out.push_back('$');
  out.append(body);
  out.push_back('#');
  out.append(rsp_checksum(body));
  return out;
}

}  // namespace

std::string rsp_checksum(std::string_view payload) {
  unsigned sum = 0;
  for (char c : payload) sum += static_cast<u8>(c);
  std::string out;
  out.push_back(hex_digit((sum >> 4) & 0xF));
  out.push_back(hex_digit(sum & 0xF));
  return out;
}

std::string rsp_frame(std::string_view payload) {
  return frame_wire_body(escape(payload));
}

std::string rsp_frame_rle(std::string_view payload) {
  std::string body;
  body.reserve(payload.size());
  std::size_t i = 0;
  while (i < payload.size()) {
    const char c = payload[i];
    std::size_t run = 1;
    while (i + run < payload.size() && payload[i + run] == c) ++run;
    // `X*n` covers X plus (n - 28) repeats; n must be printable (32..126)
    // and not collide with framing/ack characters. Repeat counts of 6 and 7
    // would need n = '#'/'$', so cap those runs at 5 (count char 'b'... no:
    // emit the run split). Escaped characters are never RLE'd.
    if (needs_escape(c)) {
      for (std::size_t k = 0; k < run; ++k) {
        body.push_back(kEscape);
        body.push_back(static_cast<char>(c ^ 0x20));
      }
      i += run;
      continue;
    }
    i += run;
    while (run > 0) {
      if (run < 4) {
        body.append(run, c);
        break;
      }
      std::size_t repeats = run - 1;            // beyond the literal char
      if (repeats > 97) repeats = 97;           // count char caps at '~'
      char count = static_cast<char>(repeats + 29);
      // Shrink the run until the count character is legal. '#' and '$' are
      // adjacent (35/36), so this may take two steps; the floor is
      // repeats = 3 (count ' '), well below the first illegal value.
      while (count == '#' || count == '$' || count == '+' || count == '-') {
        --repeats;
        count = static_cast<char>(repeats + 29);
      }
      body.push_back(c);
      body.push_back('*');
      body.push_back(count);
      run -= repeats + 1;
    }
  }
  return frame_wire_body(body);
}

std::string rsp_rle_expand(std::string_view payload) {
  std::string out;
  out.reserve(payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (payload[i] == '*' && !out.empty() && i + 1 < payload.size()) {
      const std::size_t repeats =
          static_cast<std::size_t>(static_cast<u8>(payload[i + 1])) - 29;
      out.append(repeats, out.back());
      ++i;
    } else {
      out.push_back(payload[i]);
    }
  }
  return out;
}

void PacketDecoder::feed(std::string_view bytes) {
  for (char c : bytes) {
    switch (state_) {
      case State::kIdle:
        if (c == '$') {
          state_ = State::kBody;
          body_.clear();
        } else if (c == '+') {
          events_.push_back({EventKind::kAck, ""});
        } else if (c == '-') {
          events_.push_back({EventKind::kNak, ""});
        } else if (c == '\x03') {
          events_.push_back({EventKind::kInterrupt, ""});
        }
        // Anything else between packets is line noise; ignore it.
        break;
      case State::kBody:
        if (c == '#') {
          state_ = State::kChecksum;
          checksum_.clear();
        } else {
          body_.push_back(c);
        }
        break;
      case State::kChecksum:
        checksum_.push_back(c);
        if (checksum_.size() == 2) {
          finish_packet();
          state_ = State::kIdle;
        }
        break;
    }
  }
}

void PacketDecoder::finish_packet() {
  const int hi = hex_value(checksum_[0]);
  const int lo = hex_value(checksum_[1]);
  unsigned sum = 0;
  for (char c : body_) sum += static_cast<u8>(c);
  if (hi < 0 || lo < 0 ||
      (sum & 0xFF) != static_cast<unsigned>((hi << 4) | lo)) {
    events_.push_back({EventKind::kBadPacket, ""});
    return;
  }
  // Unescape the body into the payload the handlers see.
  std::string payload;
  payload.reserve(body_.size());
  for (std::size_t i = 0; i < body_.size(); ++i) {
    if (body_[i] == kEscape && i + 1 < body_.size()) {
      payload.push_back(static_cast<char>(body_[i + 1] ^ 0x20));
      ++i;
    } else {
      payload.push_back(body_[i]);
    }
  }
  events_.push_back({EventKind::kPacket, std::move(payload)});
}

PacketDecoder::Event PacketDecoder::next_event() {
  Event event = std::move(events_[next_]);
  ++next_;
  if (next_ == events_.size()) {
    events_.clear();
    next_ = 0;
  }
  return event;
}

}  // namespace s4e::debug
