#include "common/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace s4e {

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      fields.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::vector<std::string_view> split_whitespace(std::string_view text) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) fields.push_back(text.substr(start, i - start));
  }
  return fields;
}

Result<std::int64_t> parse_integer(std::string_view text) {
  text = trim(text);
  if (text.empty()) {
    return Error(ErrorCode::kParseError, "empty integer literal");
  }
  bool negative = false;
  if (text.front() == '+' || text.front() == '-') {
    negative = text.front() == '-';
    text.remove_prefix(1);
  }
  if (text.empty()) {
    return Error(ErrorCode::kParseError, "sign without digits");
  }
  int base = 10;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    base = 16;
    text.remove_prefix(2);
  } else if (text.size() > 2 && text[0] == '0' &&
             (text[1] == 'b' || text[1] == 'B')) {
    base = 2;
    text.remove_prefix(2);
  }
  std::int64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else if (c == '_') {
      continue;  // digit separator
    } else {
      return Error(ErrorCode::kParseError,
                   std::string("bad digit '") + c + "' in integer literal");
    }
    if (digit >= base) {
      return Error(ErrorCode::kParseError,
                   std::string("digit '") + c + "' out of range for base");
    }
    value = value * base + digit;
    if (value > (std::int64_t{1} << 40)) {
      return Error(ErrorCode::kOutOfRange, "integer literal too large");
    }
  }
  return negative ? -value : value;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string pad_left(const std::string& value, std::size_t width) {
  if (value.size() >= width) return value;
  return std::string(width - value.size(), ' ') + value;
}

std::string pad_right(const std::string& value, std::size_t width) {
  if (value.size() >= width) return value;
  return value + std::string(width - value.size(), ' ');
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  // Single-row dynamic program; flag names are short, so O(|a|*|b|) with a
  // |b|+1 row is plenty.
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitute =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({substitute, row[j] + 1, row[j - 1] + 1});
    }
  }
  return row[b.size()];
}

}  // namespace s4e
