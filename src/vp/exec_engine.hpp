// Threaded-dispatch execution engine: the pre-resolved per-instruction form
// blocks are lowered into at translate time, plus the counters the engine
// exposes.
//
// The old engine re-dispatched every instruction through a big switch on
// isa::Op. The lowered DecodedInsn instead carries a direct handler pointer
// (function-pointer threading — the portable sibling of computed-goto) with
// every translate-time-constant already resolved: the fall-through pc, the
// static branch/jal target, and the three possible timing charges
// (fall-through, redirected, MMIO) precomputed from the TimingParams. The
// hot loop is then `d->fn(machine, *d)` and nothing else.
#pragma once

#include "isa/opcode.hpp"

namespace s4e::vp {

class Machine;
struct DecodedInsn;

// What one handler call did to control flow. The block executors use this to
// decide whether to keep running the block, follow a chain edge, or return
// to central dispatch.
enum class ExecOutcome : u8 {
  kNext = 0,         // fell through; execution continues at d.link
  kNextSpliced = 1,  // continued inside a superblock splice (target != link);
                     // the handler set cpu.pc itself
  kTakenStatic,      // redirected to the precomputed d.target (branch/jal)
  kTakenIndirect,    // redirected through a register (jalr/mret): jump-cache
  kSideExit,         // superblock interior edge left the trace; pc already set
  kStop,             // block must end now: trap taken, stop pending, or flush
};

using ExecHandler = ExecOutcome (*)(Machine&, const DecodedInsn&);

// One lowered instruction. 48 bytes; a 64-insn block's code[] spans 48
// cache lines of pure sequential reads.
struct DecodedInsn {
  ExecHandler fn = nullptr;
  u32 pc = 0;      // instruction address
  u32 link = 0;    // pc + length: fall-through pc and jal/jalr link value
  i32 imm = 0;     // sign-extended immediate (U-type pre-shifted)
  u32 target = 0;  // branch/jal static destination (pc + imm)
  // Timing charges, precomputed from TimingParams at lowering time:
  u32 c_fall = 0;   // not-redirected cost (loads/stores: the RAM path)
  u32 c_taken = 0;  // redirected cost (and the load/store fault path)
  u32 c_mmio = 0;   // load/store device-access path
  u32 raw = 0;      // original encoding (plugin insn info)
  u16 csr = 0;
  isa::Op op{};
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;  // also shamt / CSR zimm
  u8 length = 4;
};

// Engine-level counters (chaining, jump cache, superblocks, dispatch mix).
// Cumulative per machine; reset() clears them with the rest of the
// performance counters. The TB-cache-level counters (front-cache hit rate,
// chain severs) live on TbCache.
struct EngineStats {
  u64 chain_patches = 0;     // block->block links written
  u64 chain_follows = 0;     // dispatches that rode an existing link
  u64 jump_cache_hits = 0;   // indirect targets resolved from the 2-entry jc
  u64 jump_cache_misses = 0;
  u64 superblocks_formed = 0;
  u64 blocks_fast = 0;     // blocks run by the chained threaded engine
  u64 blocks_careful = 0;  // blocks run by the exact per-insn loop
};

// A chain run returns to central dispatch (one "epoch": bus tick, interrupt
// poll, debug/budget checks) at least every kChainQuantum instructions, so
// run_slice pauses and debug-stop requests keep a bounded latency even in
// fully chained code.
inline constexpr u64 kChainQuantum = 4096;

// A chain edge followed this many times is spliced into a superblock.
inline constexpr u32 kSuperblockHotThreshold = 64;
// Superblocks stop growing here (old engine's block bound is 64 insns).
inline constexpr std::size_t kMaxSuperblockInsns = 256;

}  // namespace s4e::vp
