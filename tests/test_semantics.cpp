// Differential semantics tests: every computational instruction is executed
// on the VP with random operands and compared against an *independent*
// reference implementation written here (deliberately not sharing code with
// machine.cpp) — the closest offline substitute for running the official
// architectural test suite against a golden simulator.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "isa/disasm.hpp"
#include "isa/encoder.hpp"
#include "vp/machine.hpp"

namespace s4e::vp {
namespace {

using isa::Op;

// Independent oracle for rd = op(a, b). For immediate forms, b is the
// sign-extended immediate; for shift-immediate forms, b is the shamt.
u32 oracle(Op op, u32 a, u32 b) {
  const i32 sa = static_cast<i32>(a);
  const i32 sb = static_cast<i32>(b);
  switch (op) {
    case Op::kAdd:
    case Op::kAddi: return a + b;
    case Op::kSub: return a - b;
    case Op::kXor:
    case Op::kXori: return a ^ b;
    case Op::kOr:
    case Op::kOri: return a | b;
    case Op::kAnd:
    case Op::kAndi: return a & b;
    case Op::kSll:
    case Op::kSlli: return a << (b & 31);
    case Op::kSrl:
    case Op::kSrli: return a >> (b & 31);
    case Op::kSra:
    case Op::kSrai: return static_cast<u32>(sa >> (b & 31));
    case Op::kSlt:
    case Op::kSlti: return sa < sb ? 1 : 0;
    case Op::kSltu:
    case Op::kSltiu: return a < b ? 1 : 0;
    case Op::kMul: return a * b;
    case Op::kMulh:
      return static_cast<u32>((static_cast<i64>(sa) * static_cast<i64>(sb)) >> 32);
    case Op::kMulhsu:
      return static_cast<u32>((static_cast<i64>(sa) * static_cast<i64>(static_cast<u64>(b))) >> 32);
    case Op::kMulhu:
      return static_cast<u32>((static_cast<u64>(a) * static_cast<u64>(b)) >> 32);
    case Op::kDiv:
      if (b == 0) return ~u32{0};
      if (a == 0x8000'0000u && b == ~u32{0}) return 0x8000'0000u;
      return static_cast<u32>(sa / sb);
    case Op::kDivu: return b == 0 ? ~u32{0} : a / b;
    case Op::kRem:
      if (b == 0) return a;
      if (a == 0x8000'0000u && b == ~u32{0}) return 0;
      return static_cast<u32>(sa % sb);
    case Op::kRemu: return b == 0 ? a : a % b;
    default:
      ADD_FAILURE() << "no oracle for " << std::string(isa::mnemonic(op));
      return 0;
  }
}

// Run `op` on the VP with operands (a, b); returns rd (a3).
u32 run_on_vp(Op op, u32 a, u32 b) {
  const isa::Format encoding_format = isa::op_info(op).format;
  std::string source = format("    li a1, 0x%x\n", a);
  switch (encoding_format) {
    case isa::Format::kR:
      source += format("    li a2, 0x%x\n", b);
      source += format("    %s a3, a1, a2\n",
                       std::string(isa::mnemonic(op)).c_str());
      break;
    case isa::Format::kI:
      source += format("    %s a3, a1, %d\n",
                       std::string(isa::mnemonic(op)).c_str(),
                       static_cast<i32>(b));
      break;
    case isa::Format::kIShift:
      source += format("    %s a3, a1, %u\n",
                       std::string(isa::mnemonic(op)).c_str(), b & 31);
      break;
    default:
      ADD_FAILURE() << "unsupported format in semantics test";
      return 0;
  }
  source += "    li a7, 93\n    ecall\n";
  auto program = assembler::assemble(source);
  EXPECT_TRUE(program.ok()) << source;
  Machine machine;
  EXPECT_TRUE(machine.load_program(*program).ok());
  auto result = machine.run();
  EXPECT_EQ(result.reason, StopReason::kExitEcall);
  return machine.cpu().read_gpr(13);  // a3
}

class AluSemantics : public ::testing::TestWithParam<unsigned> {};

TEST_P(AluSemantics, MatchesOracleOnRandomOperands) {
  const Op op = static_cast<Op>(GetParam());
  const isa::Format encoding_format = isa::op_info(op).format;
  Rng rng(0xfeedu + GetParam());
  // Edge operands first, then random ones.
  const u32 edge[] = {0, 1, 0xffff'ffffu, 0x8000'0000u, 0x7fff'ffffu, 2};
  for (int trial = 0; trial < 24; ++trial) {
    u32 a = trial < 6 ? edge[trial] : rng.next_u32();
    u32 b;
    if (encoding_format == isa::Format::kI) {
      b = static_cast<u32>(
          static_cast<i32>(rng.next_in_range(-2048, 2047)));
      if (trial < 3) b = static_cast<u32>(i32{-1} * trial);  // 0, -1, -2
    } else if (encoding_format == isa::Format::kIShift) {
      b = rng.next_below(32);
    } else {
      b = trial < 6 ? edge[5 - trial] : rng.next_u32();
    }
    EXPECT_EQ(run_on_vp(op, a, b), oracle(op, a, b))
        << std::string(isa::mnemonic(op)) << s4e::format(" a=0x%x b=0x%x", a, b);
  }
}

constexpr unsigned kTestedOps[] = {
    static_cast<unsigned>(Op::kAdd),    static_cast<unsigned>(Op::kSub),
    static_cast<unsigned>(Op::kXor),    static_cast<unsigned>(Op::kOr),
    static_cast<unsigned>(Op::kAnd),    static_cast<unsigned>(Op::kSll),
    static_cast<unsigned>(Op::kSrl),    static_cast<unsigned>(Op::kSra),
    static_cast<unsigned>(Op::kSlt),    static_cast<unsigned>(Op::kSltu),
    static_cast<unsigned>(Op::kAddi),   static_cast<unsigned>(Op::kXori),
    static_cast<unsigned>(Op::kOri),    static_cast<unsigned>(Op::kAndi),
    static_cast<unsigned>(Op::kSlti),   static_cast<unsigned>(Op::kSltiu),
    static_cast<unsigned>(Op::kSlli),   static_cast<unsigned>(Op::kSrli),
    static_cast<unsigned>(Op::kSrai),   static_cast<unsigned>(Op::kMul),
    static_cast<unsigned>(Op::kMulh),   static_cast<unsigned>(Op::kMulhsu),
    static_cast<unsigned>(Op::kMulhu),  static_cast<unsigned>(Op::kDiv),
    static_cast<unsigned>(Op::kDivu),   static_cast<unsigned>(Op::kRem),
    static_cast<unsigned>(Op::kRemu),
};

INSTANTIATE_TEST_SUITE_P(
    AllComputationalOps, AluSemantics, ::testing::ValuesIn(kTestedOps),
    [](const ::testing::TestParamInfo<unsigned>& info) {
      return std::string(isa::mnemonic(static_cast<Op>(info.param)));
    });

// The division corner cases deserve explicit pinning beyond random search.
TEST(DivSemantics, SpecCornerCases) {
  EXPECT_EQ(run_on_vp(Op::kDiv, 0x8000'0000u, 0xffff'ffffu), 0x8000'0000u);
  EXPECT_EQ(run_on_vp(Op::kRem, 0x8000'0000u, 0xffff'ffffu), 0u);
  EXPECT_EQ(run_on_vp(Op::kDiv, 7, 0), 0xffff'ffffu);
  EXPECT_EQ(run_on_vp(Op::kDivu, 7, 0), 0xffff'ffffu);
  EXPECT_EQ(run_on_vp(Op::kRem, 7, 0), 7u);
  EXPECT_EQ(run_on_vp(Op::kRemu, 7, 0), 7u);
}

// AUIPC/LUI pin tests (pc-relative semantics).
TEST(UpperImmediates, LuiAndAuipc) {
  auto program = assembler::assemble(R"(
_start:
    lui a1, 0xabcde
    auipc a2, 0x1
    li a7, 93
    li a0, 0
    ecall
  )");
  ASSERT_TRUE(program.ok());
  Machine machine;
  ASSERT_TRUE(machine.load_program(*program).ok());
  machine.run();
  EXPECT_EQ(machine.cpu().read_gpr(11), 0xabcde000u);
  // auipc at _start + 4.
  EXPECT_EQ(machine.cpu().read_gpr(12), 0x8000'0004u + 0x1000u);
}

}  // namespace
}  // namespace s4e::vp
