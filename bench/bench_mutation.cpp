// E10 — binary mutation analysis (the XEMU flow, EMSOFT'12 / DSN'12).
//
// Reproducible shape: systematic binary mutants of the workloads are mostly
// killed by the workloads' built-in result checks; kill rates differ per
// mutation operator; removing the self-check collapses the score — the
// metric that drives test-suite improvement in the original flow. Dynamic-
// translation execution keeps whole campaigns in the thousands-of-runs-per-
// second range (XEMU's headline over interpretation).
#include <chrono>
#include <cstdio>
#include <thread>

#include "asm/assembler.hpp"
#include "bench/bench_report.hpp"
#include "common/strings.hpp"
#include "core/workloads.hpp"
#include "elf/elf32.hpp"
#include "fleet/orchestrator.hpp"
#include "mutation/mutation.hpp"

namespace {

bool identical_scores(const s4e::mutation::MutationScore& a,
                      const s4e::mutation::MutationScore& b) {
  if (a.results.size() != b.results.size()) return false;
  for (unsigned i = 0; i < 4; ++i) {
    if (a.verdict_counts[i] != b.verdict_counts[i]) return false;
  }
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    const auto& ra = a.results[i];
    const auto& rb = b.results[i];
    if (ra.verdict != rb.verdict || ra.exit_code != rb.exit_code ||
        ra.mutant.address != rb.mutant.address ||
        ra.mutant.mutated != rb.mutant.mutated) {
      return false;
    }
  }
  return true;
}

// Static triage ablation: the same campaign with triage off and on. The
// triage contract is checked here, not just timed — pruned mutants must
// report kSurvived, and every non-pruned result must be bit-identical to
// the untriaged run. `write_report` off is the ctest smoke mode
// (bench.triage_smoke): one pass, no BENCH_campaign.json write.
void run_triage_section(bool write_report) {
  using namespace s4e;
  std::printf("\n[E10-triage] static equivalent-mutant pruning "
              "(triage off vs on):\n");
  std::printf("  %-12s %8s %7s %9s %9s %8s\n", "workload", "mutants",
              "pruned", "off r/s", "on r/s", "speedup");
  std::string rows;
  for (const char* name : {"callchain", "pid", "checksum"}) {
    auto workload = core::find_workload(name);
    S4E_CHECK(workload.ok());
    auto program = assembler::assemble(workload->source);
    S4E_CHECK(program.ok());

    mutation::MutationConfig config;
    mutation::MutationCampaign off_campaign(*program, config);
    auto start = std::chrono::steady_clock::now();
    auto off = off_campaign.run();
    const double off_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    config.triage = dataflow::TriageMode::kOn;
    mutation::MutationCampaign on_campaign(*program, config);
    start = std::chrono::steady_clock::now();
    auto on = on_campaign.run();
    const double on_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    S4E_CHECK_MSG(off.ok() && on.ok(), name);

    S4E_CHECK(off->results.size() == on->results.size());
    for (std::size_t i = 0; i < off->results.size(); ++i) {
      const auto& base = off->results[i];
      const auto& triaged = on->results[i];
      S4E_CHECK(base.mutant.address == triaged.mutant.address &&
                base.mutant.mutated == triaged.mutant.mutated);
      if (triaged.pruned) {
        S4E_CHECK_MSG(triaged.verdict == mutation::Verdict::kSurvived, name);
      } else {
        S4E_CHECK_MSG(base.verdict == triaged.verdict &&
                          base.exit_code == triaged.exit_code,
                      name);
      }
    }

    const double runs = static_cast<double>(off->results.size());
    std::printf("  %-12s %8.0f %7llu %9.0f %9.0f %7.2fx\n", name, runs,
                static_cast<unsigned long long>(on->pruned_count),
                runs / off_seconds, runs / on_seconds,
                off_seconds / on_seconds);
    if (!rows.empty()) rows += ", ";
    rows += format("{\"workload\": \"%s\", \"mutants\": %.0f, "
                   "\"pruned\": %llu, \"pruned_fraction\": %s, "
                   "\"off_runs_per_s\": %s, \"on_runs_per_s\": %s}",
                   name, runs,
                   static_cast<unsigned long long>(on->pruned_count),
                   bench::json_number(on->pruned_count / runs, 4).c_str(),
                   bench::json_number(runs / off_seconds).c_str(),
                   bench::json_number(runs / on_seconds).c_str());
  }
  if (write_report) {
    S4E_CHECK(bench::merge_bench_entry("BENCH_campaign.json",
                                       "mutation_triage", "[" + rows + "]"));
    std::printf("  (recorded in BENCH_campaign.json)\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace s4e;

  // bench.triage_smoke runs only the triage contract check (no report).
  if (argc > 1 && std::string(argv[1]) == "--triage-only") {
    run_triage_section(/*write_report=*/false);
    return 0;
  }

  std::printf("[E10] binary mutation analysis of the standard workloads\n\n");
  std::printf("%-12s %8s %8s %9s %9s %9s %10s %9s\n", "workload", "mutants",
              "score", "result", "crash", "hang", "surviving", "runs/s");
  std::printf("%s\n", std::string(82, '-').c_str());

  double total_runs = 0;
  double total_seconds = 0;
  for (const core::Workload& workload : core::standard_workloads()) {
    auto program = assembler::assemble(workload.source);
    S4E_CHECK(program.ok());
    mutation::MutationConfig config;
    mutation::MutationCampaign campaign(*program, config);
    const auto start = std::chrono::steady_clock::now();
    auto score = campaign.run();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    S4E_CHECK_MSG(score.ok(), workload.name);
    total_runs += static_cast<double>(score->results.size());
    total_seconds += seconds;
    std::printf("%-12s %8zu %7.1f%% %8.1f%% %8.1f%% %8.1f%% %10llu %9.0f\n",
                workload.name.c_str(), score->results.size(),
                100.0 * score->score(),
                100.0 * score->count(mutation::Verdict::kKilledResult) /
                    score->results.size(),
                100.0 * score->count(mutation::Verdict::kKilledCrash) /
                    score->results.size(),
                100.0 * score->count(mutation::Verdict::kKilledHang) /
                    score->results.size(),
                static_cast<unsigned long long>(
                    score->count(mutation::Verdict::kSurvived)),
                score->results.size() / seconds);
  }
  std::printf("%s\n", std::string(82, '-').c_str());
  std::printf("aggregate: %.0f mutant runs in %.2f s (%.0f runs/s)\n\n",
              total_runs, total_seconds, total_runs / total_seconds);

  // Per-operator breakdown on one workload.
  {
    auto workload = core::find_workload("crc32");
    S4E_CHECK(workload.ok());
    auto program = assembler::assemble(workload->source);
    S4E_CHECK(program.ok());
    mutation::MutationCampaign campaign(*program, {});
    auto score = campaign.run();
    S4E_CHECK(score.ok());
    std::printf("[E10] crc32 per-operator kill rates:\n");
    for (unsigned i = 0; i < 3; ++i) {
      const auto op = static_cast<mutation::Operator>(i);
      std::printf("  %-15s : %.1f%%\n",
                  std::string(mutation::to_string(op)).c_str(),
                  100.0 * score->score(op));
    }
    std::printf("\n[E10] surviving crc32 mutants (verification gaps):\n");
    unsigned shown = 0;
    for (const auto& result : score->results) {
      if (result.verdict != mutation::Verdict::kSurvived) continue;
      if (++shown > 6) break;
      std::printf("  0x%08x  %s\n", result.mutant.address,
                  result.mutant.description.c_str());
    }
  }

  // Oracle-strength ablation: bubble_sort with its sortedness check vs the
  // same sort with the check removed.
  {
    auto checked_workload = core::find_workload("bubble_sort");
    S4E_CHECK(checked_workload.ok());
    std::string unchecked_source = checked_workload->source;
    // Drop the verification loop: jump straight to the success exit.
    const std::string check_marker = "    la t1, array\n    li s3, 7\ncheck:";
    const auto pos = unchecked_source.find(check_marker);
    S4E_CHECK(pos != std::string::npos);
    unchecked_source.insert(pos, "    li a0, 0\n    li a7, 93\n    ecall\n");

    auto checked = assembler::assemble(checked_workload->source);
    auto unchecked = assembler::assemble(unchecked_source);
    S4E_CHECK(checked.ok() && unchecked.ok());
    mutation::MutationCampaign checked_campaign(*checked, {});
    mutation::MutationCampaign unchecked_campaign(*unchecked, {});
    auto checked_score = checked_campaign.run();
    auto unchecked_score = unchecked_campaign.run();
    S4E_CHECK(checked_score.ok() && unchecked_score.ok());
    std::printf("\n[E10-ablation] bubble_sort mutation score: with "
                "self-check %.1f%%, without %.1f%%\n",
                100.0 * checked_score->score(),
                100.0 * unchecked_score->score());
    std::printf("(the in-guest oracle is what turns silent corruptions into "
                "kills)\n");
  }

  // Fresh-vs-reuse x serial-vs-parallel matrix: per-worker machine reuse
  // (snapshot once, dirty-page restore + patch per mutant) against the
  // fresh-machine path, at jobs=1 and jobs=hw. All four scores must be
  // bit-identical.
  {
    // Floor at 2 so the pooled path is exercised even on a 1-core host
    // (there the comparison degenerates to ~1.0x, as expected).
    const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
    auto workload = core::find_workload("bubble_sort");
    S4E_CHECK(workload.ok());
    auto program = assembler::assemble(workload->source);
    S4E_CHECK(program.ok());

    struct Cell {
      const char* name;
      unsigned jobs;
      bool reuse;
      double seconds = 0;
      mutation::MutationScore score;
    } cells[] = {
        {"fresh serial", 1, false, 0, {}},
        {"reuse serial", 1, true, 0, {}},
        {"fresh parallel", hw, false, 0, {}},
        {"reuse parallel", hw, true, 0, {}},
    };
    for (Cell& cell : cells) {
      mutation::MutationConfig config;
      config.jobs = cell.jobs;
      config.reuse_machines = cell.reuse;
      mutation::MutationCampaign campaign(*program, config);
      const auto start = std::chrono::steady_clock::now();
      auto score = campaign.run();
      cell.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
      S4E_CHECK_MSG(score.ok(), cell.name);
      cell.score = std::move(*score);
    }
    const double runs = static_cast<double>(cells[0].score.results.size());
    std::printf("\n[E10-reuse] bubble_sort, %.0f mutants, fresh vs reused "
                "machines, jobs 1 and %u:\n",
                runs, hw);
    bool all_identical = true;
    for (const Cell& cell : cells) {
      std::printf("  %-15s (jobs=%-2u): %6.2f s  (%7.0f runs/s)\n",
                  cell.name, cell.jobs, cell.seconds, runs / cell.seconds);
      all_identical &= identical_scores(cells[0].score, cell.score);
    }
    const auto& stats = cells[1].score.snapshot_stats;
    std::printf("  reuse speedup: %.2fx serial, %.2fx parallel   "
                "scores bit-identical: %s\n",
                cells[0].seconds / cells[1].seconds,
                cells[2].seconds / cells[3].seconds,
                all_identical ? "yes" : "NO");
    std::printf("  serial reuse %s\n", stats.to_string().c_str());
    S4E_CHECK(all_identical);

    const bool merged = bench::merge_bench_entry(
        "BENCH_campaign.json", "mutation",
        format("{\"workload\": \"bubble_sort\", \"mutants\": %.0f, "
               "\"jobs\": %u, "
               "\"fresh_serial_runs_per_s\": %s, "
               "\"reuse_serial_runs_per_s\": %s, "
               "\"fresh_parallel_runs_per_s\": %s, "
               "\"reuse_parallel_runs_per_s\": %s, "
               "\"reuse_serial_speedup\": %s, "
               "\"pages_copied_fraction\": %s}",
               runs, hw,
               bench::json_number(runs / cells[0].seconds).c_str(),
               bench::json_number(runs / cells[1].seconds).c_str(),
               bench::json_number(runs / cells[2].seconds).c_str(),
               bench::json_number(runs / cells[3].seconds).c_str(),
               bench::json_number(cells[0].seconds / cells[1].seconds)
                   .c_str(),
               bench::json_number(stats.pages_total == 0
                                      ? 0.0
                                      : static_cast<double>(
                                            stats.pages_copied) /
                                            static_cast<double>(
                                                stats.pages_total),
                                  6)
                   .c_str()));
    S4E_CHECK(merged);
    std::printf("  (recorded in BENCH_campaign.json)\n");
  }

  // Fleet-vs-thread: the full bubble_sort mutation campaign sharded across
  // worker processes (the s4e-campaignd engine) against the in-process
  // thread pool, with the byte-identity contract checked live.
  {
    const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
    auto workload = core::find_workload("bubble_sort");
    S4E_CHECK(workload.ok());
    auto program = assembler::assemble(workload->source);
    S4E_CHECK(program.ok());

    mutation::MutationConfig config;
    config.jobs = hw;
    mutation::MutationCampaign thread_campaign(*program, config);
    auto start = std::chrono::steady_clock::now();
    auto threaded = thread_campaign.run();
    const double thread_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    S4E_CHECK(threaded.ok());
    const double runs = static_cast<double>(threaded->results.size());
    std::printf("\n[E10-fleet] bubble_sort, %.0f mutants, process fleet vs "
                "thread pool (%u workers / jobs):\n",
                runs, hw);

    const std::string elf_path = "bench_fleet_mutation.elf";
    S4E_CHECK(elf::write_elf_file(*program, elf_path).ok());
    fleet::FleetOptions options;
    options.elf_path = elf_path;
    options.mode = fleet::Mode::kMutation;
    options.worker_path = std::string(S4E_TOOL_DIR) + "/s4e-mutate";
    options.workers = hw;
    options.shards = hw;
    start = std::chrono::steady_clock::now();
    auto fleet_run = fleet::run_fleet(options);
    const double fleet_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    S4E_CHECK(fleet_run.ok());
    std::remove(elf_path.c_str());
    const bool identical = fleet_run->report == threaded->to_string();
    std::printf("  thread pool   (jobs=%-2u)   : %6.2f s  (%7.0f runs/s)\n",
                hw, thread_seconds, runs / thread_seconds);
    std::printf("  process fleet (workers=%-2u): %6.2f s  (%7.0f runs/s)\n",
                hw, fleet_seconds, runs / fleet_seconds);
    std::printf("  reports byte-identical: %s\n", identical ? "yes" : "NO");
    S4E_CHECK(identical);

    S4E_CHECK(bench::merge_bench_entry(
        "BENCH_campaign.json", "mutation_fleet",
        format("{\"workload\": \"bubble_sort\", \"mutants\": %.0f, "
               "\"workers\": %u, "
               "\"thread_runs_per_s\": %s, "
               "\"fleet_runs_per_s\": %s, "
               "\"fleet_vs_thread\": %s, "
               "\"host_cores\": %u}",
               runs, hw,
               bench::json_number(runs / thread_seconds).c_str(),
               bench::json_number(runs / fleet_seconds).c_str(),
               bench::json_number(thread_seconds / fleet_seconds).c_str(),
               std::thread::hardware_concurrency())));
    std::printf("  (recorded in BENCH_campaign.json)\n");
  }

  run_triage_section(/*write_report=*/true);
  return 0;
}
