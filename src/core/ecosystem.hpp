// Top-level facade over the Scale4Edge tool chain: one-call pipelines from
// workload source to run results, WCET reports, QTA co-simulation, coverage
// and fault campaigns. The examples and benches are thin wrappers over this
// API — it is the "ecosystem" a downstream user programs against.
#pragma once

#include <string>

#include "asm/assembler.hpp"
#include "core/workloads.hpp"
#include "coverage/coverage.hpp"
#include "fault/fault.hpp"
#include "qta/qta.hpp"
#include "vp/machine.hpp"
#include "wcet/analyzer.hpp"

namespace s4e::core {

struct RunOutcome {
  vp::RunResult result;
  std::string uart_output;
};

class Ecosystem {
 public:
  explicit Ecosystem(const vp::MachineConfig& machine_config = {})
      : machine_config_(machine_config) {}

  const vp::MachineConfig& machine_config() const noexcept {
    return machine_config_;
  }

  // Assemble workload/arbitrary source into a loadable program.
  Result<assembler::Program> build(const Workload& workload) const;
  Result<assembler::Program> build_source(const std::string& source) const;

  // Plain functional run on a fresh VP.
  Result<RunOutcome> run(const assembler::Program& program,
                         const std::string& uart_input = "") const;

  // Static WCET analysis (CFG + loop bounds + structural IPET).
  Result<wcet::AnalysisResult> analyze_wcet(
      const assembler::Program& program,
      const std::string& name = "program") const;

  // Full QTA flow: static analysis, co-simulated run, three-timeline report.
  struct QtaOutcome {
    wcet::AnalysisResult analysis;
    qta::QtaReport report;
    RunOutcome run;
  };
  Result<QtaOutcome> run_qta(const assembler::Program& program,
                             const std::string& name = "program") const;

  // Coverage of one run.
  Result<coverage::CoverageData> measure_coverage(
      const assembler::Program& program) const;

  // Fault campaign on a program.
  Result<fault::CampaignResult> run_campaign(
      const assembler::Program& program,
      const fault::CampaignConfig& config) const;

 private:
  vp::MachineConfig machine_config_;
};

}  // namespace s4e::core
