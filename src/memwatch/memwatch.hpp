// Dynamic memory / IO access analysis for security-sensitive software
// (MBMV'19): non-invasive observation of every data access through the
// plugin API, checked against an address-space policy. The motivating
// scenario is a lock control attached over UART: any access to the UART
// window from code outside the authorized driver routine is an attack
// indicator and must be flagged early.
#pragma once

#include <string>
#include <vector>

#include "common/bits.hpp"
#include "vp/plugin.hpp"

namespace s4e::memwatch {

// One policy region. Accesses are additionally constrained by the PC range
// allowed to touch the region ([pc_lo, pc_hi) == [0, 0) means "any code").
struct Region {
  std::string name;
  u32 base = 0;
  u32 size = 0;
  bool allow_read = true;
  bool allow_write = true;
  u32 pc_lo = 0;  // only code in [pc_lo, pc_hi) may access (0,0 = any)
  u32 pc_hi = 0;

  bool contains(u32 address) const noexcept {
    return address >= base && address - base < size;
  }
  bool pc_allowed(u32 pc) const noexcept {
    return (pc_lo == 0 && pc_hi == 0) || (pc >= pc_lo && pc < pc_hi);
  }
};

struct Policy {
  std::vector<Region> regions;
  // Accesses matching no region: allowed (true) or flagged (false).
  bool default_allow = true;
};

struct Violation {
  std::string region;
  u32 pc = 0;
  u32 address = 0;
  u32 value = 0;
  bool is_store = false;

  std::string to_string() const;
};

// Per-region access statistics.
struct RegionStats {
  u64 reads = 0;
  u64 writes = 0;
};

class MemWatchPlugin final : public vp::PluginBase {
 public:
  explicit MemWatchPlugin(Policy policy) : policy_(std::move(policy)) {
    stats_.resize(policy_.regions.size());
  }

  Subscriptions subscriptions() const override {
    Subscriptions subs;
    subs.mem = true;
    return subs;
  }

  void on_mem(const s4e_mem_event& event) override;

  const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  const RegionStats& stats(std::size_t region_index) const {
    return stats_[region_index];
  }
  u64 total_accesses() const noexcept { return total_accesses_; }
  u64 unmatched_accesses() const noexcept { return unmatched_; }

  std::string report() const;

 private:
  Policy policy_;
  std::vector<RegionStats> stats_;
  std::vector<Violation> violations_;
  u64 total_accesses_ = 0;
  u64 unmatched_ = 0;
};

}  // namespace s4e::memwatch
