file(REMOVE_RECURSE
  "libs4e_cfg.a"
)
