#include "dataflow/analyze.hpp"

#include <algorithm>
#include <set>

#include "common/strings.hpp"
#include "isa/disasm.hpp"

namespace s4e::dataflow {

namespace {

using cfg::Terminator;

// At most this many targets per resolved indirect jump — a jump table
// larger than this stays unresolved rather than exploding the CFG.
constexpr u64 kMaxIndirectTargets = 16;

std::vector<Solution<RegDomain>> run_reg_pass(const cfg::ProgramCfg& cfg,
                                              u32 program_entry,
                                              const MemModel* mem) {
  std::vector<Solution<RegDomain>> sols;
  sols.reserve(cfg.functions.size());
  for (const cfg::Function& fn : cfg.functions) {
    RegDomain domain({fn.entry == program_entry, mem});
    sols.push_back(solve(fn, domain));
  }
  return sols;
}

// Record every reachable store's abstract target range into `mem`.
void collect_stores(const cfg::ProgramCfg& cfg,
                    const std::vector<Solution<RegDomain>>& sols,
                    MemModel& mem) {
  for (std::size_t f = 0; f < cfg.functions.size(); ++f) {
    const cfg::Function& fn = cfg.functions[f];
    for (const cfg::BasicBlock& block : fn.blocks) {
      const RegState& in = sols[f].in[block.id];
      if (!in.reached) continue;
      walk_block(block, &mem, in,
                 [&](u32 /*pc*/, const isa::Instr& instr,
                     const RegState& state) {
                   if (!instr.writes_memory()) return;
                   mem.record_store(effective_address(instr, state),
                                    access_size(instr.op));
                 });
    }
  }
}

}  // namespace

Result<Analysis> analyze_program(const assembler::Program& program,
                                 const AnalyzeOptions& options) {
  Analysis an;
  // Sites whose target set stopped being enumerable (or kept growing past
  // the iteration budget): permanently unresolved. Keeping a stale subset
  // of edges would under-approximate the CFG, which is unsound.
  std::set<u32> poisoned;
  for (unsigned iter = 0;; ++iter) {
    cfg::BuildOptions build_options;
    build_options.indirect_targets = &an.resolved;
    build_options.tolerate_unresolved = true;
    S4E_TRY(cfg, cfg::build_cfg(program, build_options));

    // Pass A: loads opaque; the fixpoint still pins down most store
    // addresses (la + constant offsets), which become the dirty set.
    MemModel collect(program);
    auto sols_a = run_reg_pass(cfg, program.entry, &collect);
    collect_stores(cfg, sols_a, collect);

    // Pass B: fold loads from clean image regions.
    MemModel full = collect;
    full.enable_loads();
    auto baseline = run_reg_pass(cfg, program.entry, &full);

    // Pass C: bottom-up interprocedural re-solve — callee summaries applied
    // at call sites refine both the register and liveness facts, so
    // constants (and uninit bits) flow across calls.
    Interprocedural ip =
        solve_interprocedural(cfg, program.entry, &full, baseline);
    auto& sols = ip.reg;

    // Try to resolve reachable `jalr x0` sites with a finite target set.
    // Already-resolved sites are recomputed every round: the richer CFG can
    // widen the selector (a jump table's first round only sees the first
    // feasible index), so each site's edge set grows monotonically (union
    // with the previous round) until stable.
    bool changed = false;
    std::vector<u32> unstable;
    if (iter < options.max_resolve_iterations) {
      for (std::size_t f = 0; f < cfg.functions.size(); ++f) {
        const cfg::Function& fn = cfg.functions[f];
        for (const cfg::BasicBlock& block : fn.blocks) {
          if (block.terminator != Terminator::kIndirect ||
              !sols[f].in[block.id].reached) {
            continue;
          }
          const isa::Instr& jump = block.insns.back();
          if (jump.rd != 0) continue;  // indirect call, not a jump
          const u32 pc = block.end - jump.length;
          if (poisoned.count(pc) != 0) continue;
          // The jalr writes nothing (rd = x0), so the block's out-state
          // holds the register values at the jump.
          const AbsValue target =
              av_add(sols[f].out[block.id].regs[jump.rs1],
                     AbsValue::constant(static_cast<u32>(jump.imm)));
          std::vector<u32> now = target.enumerate(kMaxIndirectTargets);
          const bool was_resolved = an.resolved.count(pc) != 0;
          if (now.empty()) {
            if (was_resolved) {
              an.resolved.erase(pc);
              poisoned.insert(pc);
              changed = true;
            }
            continue;
          }
          for (u32& t : now) t &= ~u32{1};  // jalr clears bit 0
          auto& slot = an.resolved[pc];
          std::vector<u32> merged = slot;
          merged.insert(merged.end(), now.begin(), now.end());
          std::sort(merged.begin(), merged.end());
          merged.erase(std::unique(merged.begin(), merged.end()),
                       merged.end());
          if (merged.size() > kMaxIndirectTargets) {
            an.resolved.erase(pc);
            poisoned.insert(pc);
            changed = true;
            continue;
          }
          if (merged != slot) {
            slot = std::move(merged);
            changed = true;
            unstable.push_back(pc);
          }
        }
      }
      if (changed && iter + 1 == options.max_resolve_iterations) {
        // Budget exhausted while still growing: drop the unstable sites so
        // the final build reports them unresolved instead of shipping a
        // stale (under-approximated) edge set.
        for (u32 pc : unstable) {
          an.resolved.erase(pc);
          poisoned.insert(pc);
        }
      }
    }
    if (changed) continue;

    // Finalize with the current build and pass-B solutions.
    an.mem = std::move(full);
    an.functions.resize(cfg.functions.size());
    for (std::size_t f = 0; f < cfg.functions.size(); ++f) {
      const cfg::Function& fn = cfg.functions[f];
      FunctionAnalysis& fa = an.functions[f];
      fa.reg = std::move(sols[f]);
      fa.live = std::move(ip.live[f]);
      fa.call_effects = std::move(ip.call_effects[f]);
      fa.block_reachable.resize(fn.blocks.size());
      fa.edge_ok.resize(fn.blocks.size());
      RegDomain domain(
          {fn.entry == program.entry, &an.mem, &fa.call_effects});
      for (const cfg::BasicBlock& block : fn.blocks) {
        fa.block_reachable[block.id] = fa.reg.in[block.id].reached;
        auto& ok = fa.edge_ok[block.id];
        ok.resize(block.successors.size(), true);
        if (!fa.block_reachable[block.id]) continue;
        for (std::size_t e = 0; e < block.successors.size(); ++e) {
          ok[e] = domain.edge_feasible(fn, block, fa.reg.out[block.id],
                                       block.successors[e]);
        }
        if (block.terminator == Terminator::kIndirect &&
            block.indirect_targets.empty()) {
          const isa::Instr& jump = block.insns.back();
          const AbsValue value =
              av_add(fa.reg.out[block.id].regs[jump.rs1],
                     AbsValue::constant(static_cast<u32>(jump.imm)));
          an.unresolved.push_back({block.end - jump.length, fn.name,
                                   value.describe(), jump.rd != 0});
        }
      }
    }

    // Function reachability: entry plus everything called from reachable
    // blocks of reachable functions.
    an.function_reachable.assign(cfg.functions.size(), false);
    std::vector<u32> worklist{0};
    an.function_reachable[0] = true;
    while (!worklist.empty()) {
      const u32 f = worklist.back();
      worklist.pop_back();
      for (const cfg::BasicBlock& block : cfg.functions[f].blocks) {
        if (block.terminator != Terminator::kCall ||
            !an.functions[f].block_reachable[block.id]) {
          continue;
        }
        auto it = cfg.function_by_entry.find(block.call_target);
        if (it != cfg.function_by_entry.end() &&
            !an.function_reachable[it->second]) {
          an.function_reachable[it->second] = true;
          worklist.push_back(it->second);
        }
      }
    }
    an.graph = std::move(ip.graph);
    an.summaries = std::move(ip.summaries);
    an.cfg = std::move(cfg);
    return an;
  }
}

Result<cfg::ProgramCfg> prune_cfg(const Analysis& analysis) {
  cfg::ProgramCfg out;
  out.loop_bounds = analysis.cfg.loop_bounds;
  for (std::size_t f = 0; f < analysis.cfg.functions.size(); ++f) {
    if (!analysis.function_reachable[f]) continue;
    const cfg::Function& fn = analysis.cfg.functions[f];
    const FunctionAnalysis& fa = analysis.functions[f];
    cfg::Function pruned;
    pruned.name = fn.name;
    pruned.entry = fn.entry;
    std::vector<cfg::BlockId> remap(fn.blocks.size(), cfg::kNoBlock);
    for (const cfg::BasicBlock& block : fn.blocks) {
      if (!fa.block_reachable[block.id]) continue;
      cfg::BasicBlock copy = block;
      copy.id = static_cast<cfg::BlockId>(pruned.blocks.size());
      copy.successors.clear();
      copy.predecessors.clear();
      remap[block.id] = copy.id;
      pruned.block_by_start[copy.start] = copy.id;
      pruned.blocks.push_back(std::move(copy));
    }
    S4E_CHECK_MSG(!pruned.blocks.empty() && remap[0] == 0,
                  "function entry block must stay first after pruning");
    for (const cfg::BasicBlock& block : fn.blocks) {
      if (remap[block.id] == cfg::kNoBlock) continue;
      for (std::size_t e = 0; e < block.successors.size(); ++e) {
        const cfg::Edge& edge = block.successors[e];
        if (!fa.edge_ok[block.id][e] || remap[edge.target] == cfg::kNoBlock) {
          continue;
        }
        pruned.blocks[remap[block.id]].successors.push_back(
            cfg::Edge{remap[edge.target], edge.kind});
        pruned.blocks[remap[edge.target]].predecessors.push_back(
            remap[block.id]);
      }
    }
    out.function_by_entry[pruned.entry] = static_cast<u32>(out.functions.size());
    out.functions.push_back(std::move(pruned));
  }
  S4E_CHECK_MSG(!out.functions.empty(), "entry function pruned away");
  return out;
}

std::vector<bool> reachable_ops(const Analysis& analysis) {
  std::vector<bool> ops(isa::kOpCount, false);
  for (std::size_t f = 0; f < analysis.cfg.functions.size(); ++f) {
    if (!analysis.function_reachable[f]) continue;
    for (const cfg::BasicBlock& block : analysis.cfg.functions[f].blocks) {
      if (!analysis.functions[f].block_reachable[block.id]) continue;
      for (const isa::Instr& instr : block.insns) {
        ops[static_cast<unsigned>(instr.op)] = true;
      }
    }
  }
  return ops;
}

}  // namespace s4e::dataflow
