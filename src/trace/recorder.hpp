// Trace recorder — the capture half of capture-once / replay-many.
//
// A TraceRecorder is a VP plugin (per-insn + mem + trap + tb_exec
// subscriptions, so it forces the exec engine's careful loop under the same
// contract as every other per-instruction tool; memory callbacks do not
// change modelled cycles, so recording does not perturb the timing it
// captures). It reconstructs, from the callback stream alone, exactly the
// information every TimingParams configuration charges for:
//
//   - the block-dispatch sequence (icache probes),
//   - each conditional branch's PC and taken direction (predictor state),
//   - each instruction's latency class and byte length,
//   - RAM vs MMIO classification of every data access,
//   - each divide's dividend (iterative-divider early-out),
//   - synchronous traps with cause and handler entry.
//
// Branches, jumps, jalr and mret are resolved *at issue time* by reading
// the architectural state the handler itself is about to read (GPRs, mepc),
// so their targets and taken bits are exact without waiting for the next
// event. Loads, stores, atomics, CSR ops and the system instructions stay
// pending until their outcome (memory event, trap, run end) arrives.
//
// Timing-path-sensitive sites (cycle/time CSR reads, CLINT/GPIO loads,
// CLINT stores, interrupts, non-final wfi) are recorded as taint events:
// the captured path is only valid for the recording configuration, and
// replay refuses such traces per-site instead of producing fiction.
#pragma once

#include <optional>
#include <string>

#include "trace/format.hpp"
#include "vp/machine.hpp"
#include "vp/plugin.hpp"

namespace s4e::trace {

class TraceRecorder final : public vp::PluginBase {
 public:
  struct Config {
    u64 fingerprint = 0;            // program_fingerprint() of the workload
    u32 entry_pc = 0;
    vp::TimingParams recorded;      // the recording machine's timing config
    u32 ram_base = 0x8000'0000;     // RAM window for MMIO classification
    u32 ram_size = 4u << 20;
  };

  // The usual wiring: fingerprint + entry from the program, timing + RAM
  // window from the machine configuration.
  static Config config_for(const vp::MachineConfig& machine,
                           const assembler::Program& program);

  explicit TraceRecorder(const Config& config);

  Subscriptions subscriptions() const override {
    Subscriptions subs;
    subs.tb_exec = true;
    subs.insn_exec = true;
    subs.mem = true;
    subs.trap = true;
    return subs;
  }

  // attach() with the recorder's preconditions checked: single-hart only
  // (an SMP interleaving is not a single PC stream).
  Status attach_checked(s4e_vm* vm);

  void on_tb_exec(u32 tb_start) override;
  void on_insn_exec(const s4e_insn_info& insn) override;
  void on_mem(const s4e_mem_event& event) override;
  void on_trap(const s4e_trap_event& event) override;

  // Flush pending state and write the trace (temp + fsync + rename). The
  // RunResult disambiguates the final instruction (wfi halt vs sleep) and
  // supplies the footer facts (stop reason, cycles for the self check).
  Status finish(const vp::RunResult& result, const std::string& path);

  // finish() without the file: serialized trace bytes (tests, benches).
  std::vector<u8> finish_bytes(const vp::RunResult& result);

  u64 instructions() const noexcept { return instructions_; }
  u64 blocks() const noexcept { return blocks_; }
  u64 mem_accesses() const noexcept { return mem_accesses_; }
  u64 taints() const noexcept { return taints_; }
  std::size_t stream_size() const noexcept { return writer_.stream_size(); }

 private:
  struct MemAccess {
    u32 addr = 0;
    u8 size = 0;
    bool store = false;
    bool mmio = false;
  };
  struct Pending {
    u32 pc = 0;
    u32 length = 0;
    u16 op = 0;
    u8 op_class = 0;
    MemAccess mem[2];
    unsigned mem_count = 0;
  };

  void flush_run();
  void plain(u32 length);
  void taint_at(TaintKind kind);
  void flush_pending(const vp::RunResult* result);
  void advance(u32 length) { cursor_ += length; }

  Config config_;
  Writer writer_;
  std::optional<Pending> pending_;
  u32 run_length_ = 0;   // RLE state: instruction byte length of the run
  u32 run_count_ = 0;
  u32 cursor_ = 0;       // PC of the next expected instruction
  bool cursor_valid_ = true;
  u64 instructions_ = 0;
  u64 blocks_ = 0;
  u64 mem_accesses_ = 0;
  u64 taints_ = 0;
  Footer make_footer(const vp::RunResult& result) const;
};

}  // namespace s4e::trace
