file(REMOVE_RECURSE
  "libs4e_asm.a"
)
