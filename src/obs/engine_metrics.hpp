// Execution-engine counters -> MetricsRegistry bridge.
//
// The engine keeps its hot counters as plain per-machine u64s (EngineStats
// on Machine, hit/sever counters on TbCache) so the dispatch loop never
// touches registry slots. This header flattens one machine's counters into
// a registered metric set — campaigns record one machine per worker lane
// and the registry aggregates by addition, same contract as every other
// counter in the registry.
#pragma once

#include "obs/metrics.hpp"
#include "vp/machine.hpp"

namespace s4e::obs {

// Handles for the engine metric set; returned by register_engine_metrics()
// and consumed by record_engine_metrics().
struct EngineMetricIds {
  MetricId harts;  // hart count of each recorded machine (sums over lanes)
  MetricId chain_patches;
  MetricId chain_follows;
  MetricId chain_severs;
  MetricId jump_cache_hits;
  MetricId jump_cache_misses;
  MetricId superblocks_formed;
  MetricId blocks_fast;
  MetricId blocks_careful;
  MetricId tb_front_hits;
  MetricId tb_deep_hits;
  MetricId tb_lookup_misses;
};

inline EngineMetricIds register_engine_metrics(MetricsRegistry& registry) {
  EngineMetricIds ids;
  ids.harts = registry.add_counter("engine.harts");
  ids.chain_patches = registry.add_counter("engine.chain_patches");
  ids.chain_follows = registry.add_counter("engine.chain_follows");
  ids.chain_severs = registry.add_counter("engine.chain_severs");
  ids.jump_cache_hits = registry.add_counter("engine.jump_cache_hits");
  ids.jump_cache_misses = registry.add_counter("engine.jump_cache_misses");
  ids.superblocks_formed = registry.add_counter("engine.superblocks_formed");
  ids.blocks_fast = registry.add_counter("engine.blocks_fast");
  ids.blocks_careful = registry.add_counter("engine.blocks_careful");
  ids.tb_front_hits = registry.add_counter("engine.tb_front_hits");
  ids.tb_deep_hits = registry.add_counter("engine.tb_deep_hits");
  ids.tb_lookup_misses = registry.add_counter("engine.tb_lookup_misses");
  return ids;
}

// Add one machine's lifetime counters into `shard`. Call once per machine
// (after its runs complete) — the counters are cumulative, so recording the
// same machine twice double-counts.
inline void record_engine_metrics(MetricsRegistry::Shard& shard,
                                  const EngineMetricIds& ids,
                                  const vp::Machine& machine) {
  // Engine counters are banked per hart on an SMP machine; fold every bank
  // so the totals cover the whole machine (one bank on single-hart, where
  // this loop reduces to the old single-read).
  vp::EngineStats stats;
  for (unsigned hart = 0; hart < machine.num_harts(); ++hart) {
    const vp::EngineStats& bank = machine.engine_stats(hart);
    stats.chain_patches += bank.chain_patches;
    stats.chain_follows += bank.chain_follows;
    stats.jump_cache_hits += bank.jump_cache_hits;
    stats.jump_cache_misses += bank.jump_cache_misses;
    stats.superblocks_formed += bank.superblocks_formed;
    stats.blocks_fast += bank.blocks_fast;
    stats.blocks_careful += bank.blocks_careful;
  }
  const vp::TbCache& cache = machine.tb_cache();
  shard.add(ids.harts, machine.num_harts());
  shard.add(ids.chain_patches, stats.chain_patches);
  shard.add(ids.chain_follows, stats.chain_follows);
  shard.add(ids.chain_severs, cache.chain_severs());
  shard.add(ids.jump_cache_hits, stats.jump_cache_hits);
  shard.add(ids.jump_cache_misses, stats.jump_cache_misses);
  shard.add(ids.superblocks_formed, stats.superblocks_formed);
  shard.add(ids.blocks_fast, stats.blocks_fast);
  shard.add(ids.blocks_careful, stats.blocks_careful);
  shard.add(ids.tb_front_hits, cache.front_hits());
  shard.add(ids.tb_deep_hits, cache.deep_hits());
  shard.add(ids.tb_lookup_misses, cache.lookup_misses());
}

}  // namespace s4e::obs
