# seeded defect: `countdown` calls itself, so its stack use has no static
# bound. s4e-lint must report a recursion finding (the dynamic run is fine
# — depth 5 — but no static stack bound exists).

_start:
    li a0, 5
    call countdown
    li a0, 0
    li a7, 93
    ecall

countdown:
    beqz a0, done
    addi sp, sp, -16
    sw ra, 12(sp)
    addi a0, a0, -1
    call countdown
    lw ra, 12(sp)
    addi sp, sp, 16
done:
    ret
