// s4e-wcet — static WCET analysis of an ELF (the aiT-substitute front half
// of the QTA flow). Writes the WCET-annotated CFG for s4e-qta.
//
//   s4e-wcet file.elf [--emit-cfg out.qtacfg] [--dot]
#include <cstdio>

#include "cfg/cfg.hpp"
#include "elf/elf32.hpp"
#include "tools/tool_util.hpp"
#include "wcet/analyzer.hpp"

int main(int argc, char** argv) {
  using namespace s4e;
  static constexpr char kUsage[] =
      "usage: s4e-wcet <file.elf> [--emit-cfg out.qtacfg] [--dot]\n";
  tools::Args args(argc, argv, {"--emit-cfg"}, {"--dot"});
  if (const int code = tools::standard_flags(args, "s4e-wcet", kUsage);
      code >= 0) {
    return code;
  }
  if (args.positional().empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  auto program = elf::read_elf_file(args.positional()[0]);
  if (!program.ok()) {
    std::fprintf(stderr, "s4e-wcet: %s\n",
                 program.error().to_string().c_str());
    return 1;
  }

  if (args.has("--dot")) {
    auto cfg = cfg::build_cfg(*program);
    if (!cfg.ok()) {
      std::fprintf(stderr, "s4e-wcet: %s\n", cfg.error().to_string().c_str());
      return 1;
    }
    std::fputs(cfg::to_dot(*cfg).c_str(), stdout);
    return 0;
  }

  wcet::AnalyzerOptions options;
  options.program_name = args.positional()[0];
  auto analysis = wcet::Analyzer(options).analyze(*program);
  if (!analysis.ok()) {
    std::fprintf(stderr, "s4e-wcet: %s\n",
                 analysis.error().to_string().c_str());
    return 1;
  }

  std::printf("%-20s %10s %8s %6s %8s\n", "function", "entry", "blocks",
              "loops", "wcet");
  for (const auto& fn : analysis->functions) {
    std::printf("%-20s 0x%08x %8u %3u/%-2u %8llu\n", fn.name.c_str(),
                fn.entry, fn.block_count, fn.bounded_loops, fn.loop_count,
                static_cast<unsigned long long>(fn.wcet));
  }
  std::printf("\ntotal static WCET: %llu cycles\n",
              static_cast<unsigned long long>(analysis->total_wcet));

  if (args.has("--emit-cfg")) {
    const std::string path = args.value("--emit-cfg");
    if (auto status =
            tools::write_file(path, analysis->annotated.serialize());
        !status.ok()) {
      std::fprintf(stderr, "s4e-wcet: %s\n", status.to_string().c_str());
      return 1;
    }
    std::printf("annotated CFG written to %s\n", path.c_str());
  }
  return tools::finish_stdout("s4e-wcet");
}
