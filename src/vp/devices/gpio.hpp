// GPIO block for the edge-demonstrator scenarios (the Scale4Edge project
// evaluates on robot demonstrators): 32 output pins, 32 host-controlled
// input pins, and a change log with cycle timestamps so host-side tests
// can reconstruct waveforms (PWM duty cycles, pulse trains).
//
// Register map (byte offsets, 32-bit access):
//   0x00 OUT     (R/W) output pin levels
//   0x04 SET     (W)   OUT |= value
//   0x08 CLEAR   (W)   OUT &= ~value
//   0x0c TOGGLE  (W)   OUT ^= value
//   0x10 IN      (R)   input pin levels (host-set)
#pragma once

#include <vector>

#include "vp/device.hpp"

namespace s4e::vp {

class Gpio final : public Device {
 public:
  static constexpr u32 kDefaultBase = 0x1001'0000;
  static constexpr u32 kWindowSize = 0x100;
  static constexpr u32 kOut = 0x00;
  static constexpr u32 kSet = 0x04;
  static constexpr u32 kClear = 0x08;
  static constexpr u32 kToggle = 0x0c;
  static constexpr u32 kIn = 0x10;

  struct Change {
    u64 cycle = 0;  // device time of the write
    u32 out = 0;    // OUT value after the write
  };

  std::string_view name() const noexcept override { return "gpio0"; }

  Result<u32> read(u32 offset, unsigned size) override;
  Status write(u32 offset, unsigned size, u32 value) override;
  void tick(u64 now) override { now_ = now; }
  // Clears outputs and the waveform log; `in_` survives (externally driven
  // pin levels are not affected by a machine reset).
  void reset() override;
  void save_state(StateWriter& out) const override;
  void restore_state(StateReader& in) override;

  // Host side.
  u32 out() const noexcept { return out_; }
  void set_in(u32 value) noexcept { in_ = value; }
  const std::vector<Change>& changes() const noexcept { return changes_; }

  // Fraction of time `pin` was high over the logged interval [first
  // change, last change). Returns 0 when fewer than two changes exist.
  double duty_cycle(unsigned pin) const;

 private:
  void record(u32 new_out);

  u32 out_ = 0;
  u32 in_ = 0;
  u64 now_ = 0;
  std::vector<Change> changes_;
};

}  // namespace s4e::vp
