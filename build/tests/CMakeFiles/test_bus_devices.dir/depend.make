# Empty dependencies file for test_bus_devices.
# This may be replaced when dependencies are built.
