// E5 — fault-effect analysis at scale (MBMV'20): bit-flip campaigns across
// the standard workloads. Reproducible shape:
//   * every mutant is classified masked / sdc / crash / hang,
//   * a large masked fraction ("normal termination though executed on a
//     faulty hardware model" — the paper's subjects for further
//     investigation),
//   * the VP sustains a high mutant-simulation throughput, scaling to
//     thousands of mutants,
//   * coverage-directed fault lists raise the informative (non-masked)
//     fraction vs blind injection (ablation).
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_report.hpp"
#include "common/strings.hpp"
#include "core/ecosystem.hpp"
#include "core/workloads.hpp"
#include "elf/elf32.hpp"
#include "fleet/orchestrator.hpp"

namespace {

// Byte-for-byte equality of two campaign results (the executor's
// determinism guarantee: parallel == serial, including the FP sum).
bool identical_results(const s4e::fault::CampaignResult& a,
                       const s4e::fault::CampaignResult& b) {
  if (a.golden_exit_code != b.golden_exit_code ||
      a.golden_instructions != b.golden_instructions ||
      a.golden_uart != b.golden_uart ||
      a.golden_memory_hash != b.golden_memory_hash ||
      a.simulated_instructions != b.simulated_instructions ||
      a.mutants.size() != b.mutants.size()) {
    return false;
  }
  for (unsigned i = 0; i < 4; ++i) {
    if (a.outcome_counts[i] != b.outcome_counts[i]) return false;
  }
  for (std::size_t i = 0; i < a.mutants.size(); ++i) {
    const auto& ma = a.mutants[i];
    const auto& mb = b.mutants[i];
    if (ma.outcome != mb.outcome || ma.exit_code != mb.exit_code ||
        ma.instructions != mb.instructions ||
        ma.spec.to_string() != mb.spec.to_string()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace s4e;
  core::Ecosystem ecosystem;

  constexpr unsigned kMutants = 400;
  std::printf("[E5] fault campaigns (%u mutants per workload, "
              "coverage-directed)\n\n",
              kMutants);
  std::printf("%-12s %7s %7s %7s %7s %10s %12s\n", "workload", "masked",
              "sdc", "crash", "hang", "mutants/s", "guest-MIPS");
  std::printf("%s\n", std::string(70, '-').c_str());

  double total_mutants = 0;
  double total_seconds = 0;
  for (const core::Workload& workload : core::standard_workloads()) {
    auto program = ecosystem.build(workload);
    S4E_CHECK(program.ok());
    fault::CampaignConfig config;
    config.seed = 0x5ca1e4ed;
    config.mutant_count = kMutants;

    const auto start = std::chrono::steady_clock::now();
    auto result = ecosystem.run_campaign(*program, config);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    S4E_CHECK_MSG(result.ok(), workload.name);
    total_mutants += static_cast<double>(result->mutants.size());
    total_seconds += seconds;

    std::printf("%-12s %6.1f%% %6.1f%% %6.1f%% %6.1f%% %10.0f %12.1f\n",
                workload.name.c_str(),
                100.0 * result->count(fault::Outcome::kMasked) / kMutants,
                100.0 * result->count(fault::Outcome::kSdc) / kMutants,
                100.0 * result->count(fault::Outcome::kCrash) / kMutants,
                100.0 * result->count(fault::Outcome::kHang) / kMutants,
                kMutants / seconds,
                result->simulated_instructions / seconds / 1e6);
  }
  std::printf("%s\n", std::string(70, '-').c_str());
  std::printf("aggregate: %.0f mutants in %.2f s (%.0f mutants/s)\n\n",
              total_mutants, total_seconds, total_mutants / total_seconds);

  // Ablation: coverage-directed vs blind on one workload.
  auto workload = core::find_workload("crc32");
  S4E_CHECK(workload.ok());
  auto program = ecosystem.build(*workload);
  S4E_CHECK(program.ok());
  fault::CampaignConfig config;
  config.seed = 99;
  config.mutant_count = 600;
  auto directed = ecosystem.run_campaign(*program, config);
  config.coverage_directed = false;
  auto blind = ecosystem.run_campaign(*program, config);
  S4E_CHECK(directed.ok() && blind.ok());
  auto informative = [&](const fault::CampaignResult& r) {
    return 100.0 *
           (1.0 - static_cast<double>(r.count(fault::Outcome::kMasked)) /
                      static_cast<double>(r.mutants.size()));
  };
  std::printf("[E5-ablation] crc32, 600 mutants: informative faults "
              "directed %.1f%% vs blind %.1f%%\n",
              informative(*directed), informative(*blind));

  // Scaling: campaign size sweep (demonstrates linear scaling, the paper's
  // "scales to more complex scenarios" claim).
  std::printf("\n[E5-scaling] campaign size sweep on bubble_sort:\n");
  auto sort_workload = core::find_workload("bubble_sort");
  S4E_CHECK(sort_workload.ok());
  auto sort_program = ecosystem.build(*sort_workload);
  S4E_CHECK(sort_program.ok());
  for (unsigned mutants : {100u, 400u, 1600u}) {
    fault::CampaignConfig sweep;
    sweep.seed = 7;
    sweep.mutant_count = mutants;
    const auto start = std::chrono::steady_clock::now();
    auto result = ecosystem.run_campaign(*sort_program, sweep);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    S4E_CHECK(result.ok());
    std::printf("  %5u mutants: %6.2f s  (%7.0f mutants/s)\n", mutants,
                seconds, mutants / seconds);
  }

  // Fresh-vs-reuse x serial-vs-parallel matrix on one workload: per-worker
  // machine reuse (snapshot once, dirty-page restore per mutant) against
  // the fresh-machine-per-mutant path, at jobs=1 and jobs=hw. All four
  // results must be bit-identical.
  {
    // Floor at 2 so the pooled path is exercised even on a 1-core host
    // (there the comparison degenerates to ~1.0x, as expected).
    const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
    std::printf("\n[E5-reuse] bubble_sort, 800 mutants, fresh vs reused "
                "machines, jobs 1 and %u:\n",
                hw);
    fault::CampaignConfig par;
    par.seed = 0x5ca1e4ed;
    par.mutant_count = 800;

    struct Cell {
      const char* name;
      unsigned jobs;
      bool reuse;
      double seconds = 0;
      fault::CampaignResult result;
    } cells[] = {
        {"fresh serial", 1, false, 0, {}},
        {"reuse serial", 1, true, 0, {}},
        {"fresh parallel", hw, false, 0, {}},
        {"reuse parallel", hw, true, 0, {}},
    };
    for (Cell& cell : cells) {
      par.jobs = cell.jobs;
      par.reuse_machines = cell.reuse;
      const auto start = std::chrono::steady_clock::now();
      auto result = ecosystem.run_campaign(*sort_program, par);
      cell.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
      S4E_CHECK_MSG(result.ok(), cell.name);
      cell.result = std::move(*result);
    }
    bool all_identical = true;
    for (const Cell& cell : cells) {
      std::printf("  %-15s (jobs=%-2u): %6.2f s  (%7.0f mutants/s)\n",
                  cell.name, cell.jobs, cell.seconds,
                  par.mutant_count / cell.seconds);
      all_identical &= identical_results(cells[0].result, cell.result);
    }
    const auto& stats = cells[1].result.snapshot_stats;
    std::printf("  reuse speedup: %.2fx serial, %.2fx parallel   "
                "results bit-identical: %s\n",
                cells[0].seconds / cells[1].seconds,
                cells[2].seconds / cells[3].seconds,
                all_identical ? "yes" : "NO");
    std::printf("  serial reuse %s\n", stats.to_string().c_str());
    S4E_CHECK(all_identical);

    const bool merged = bench::merge_bench_entry(
        "BENCH_campaign.json", "fault_campaign",
        format("{\"workload\": \"bubble_sort\", \"mutants\": %u, "
               "\"jobs\": %u, "
               "\"fresh_serial_mutants_per_s\": %s, "
               "\"reuse_serial_mutants_per_s\": %s, "
               "\"fresh_parallel_mutants_per_s\": %s, "
               "\"reuse_parallel_mutants_per_s\": %s, "
               "\"reuse_serial_speedup\": %s, "
               "\"pages_copied_fraction\": %s}",
               par.mutant_count, hw,
               bench::json_number(par.mutant_count / cells[0].seconds)
                   .c_str(),
               bench::json_number(par.mutant_count / cells[1].seconds)
                   .c_str(),
               bench::json_number(par.mutant_count / cells[2].seconds)
                   .c_str(),
               bench::json_number(par.mutant_count / cells[3].seconds)
                   .c_str(),
               bench::json_number(cells[0].seconds / cells[1].seconds)
                   .c_str(),
               bench::json_number(stats.pages_total == 0
                                      ? 0.0
                                      : static_cast<double>(
                                            stats.pages_copied) /
                                            static_cast<double>(
                                                stats.pages_total),
                                  6)
                   .c_str()));
    S4E_CHECK(merged);
    std::printf("  (recorded in BENCH_campaign.json)\n");
  }

  // Fleet-vs-thread: the same campaign sharded across worker *processes*
  // (the s4e-campaignd engine, one worker binary per shard) against the
  // in-process thread pool. Beyond the throughput row, this is a live
  // check of the fleet's headline contract: the merged report must be
  // byte-identical to the in-process campaign's.
  {
    const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
    constexpr unsigned kFleetMutants = 800;
    std::printf("\n[E5-fleet] bubble_sort, %u mutants, process fleet vs "
                "thread pool (%u workers / jobs):\n",
                kFleetMutants, hw);
    fault::CampaignConfig config;
    config.seed = 0x5ca1e4ed;
    config.mutant_count = kFleetMutants;
    config.jobs = hw;
    fault::Campaign thread_campaign(*sort_program, config);
    auto start = std::chrono::steady_clock::now();
    auto threaded = thread_campaign.run();
    const double thread_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    S4E_CHECK(threaded.ok());

    const std::string elf_path = "bench_fleet_fault.elf";
    S4E_CHECK(elf::write_elf_file(*sort_program, elf_path).ok());
    fleet::FleetOptions options;
    options.elf_path = elf_path;
    options.mode = fleet::Mode::kFault;
    options.worker_path = std::string(S4E_TOOL_DIR) + "/s4e-faultsim";
    options.workers = hw;
    options.shards = hw;  // one shard per worker: no respawn slack needed
    options.seed = config.seed;
    options.mutants = kFleetMutants;
    start = std::chrono::steady_clock::now();
    auto fleet_run = fleet::run_fleet(options);
    const double fleet_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    S4E_CHECK(fleet_run.ok());
    std::remove(elf_path.c_str());
    const bool identical = fleet_run->report == threaded->to_string();
    std::printf("  thread pool   (jobs=%-2u)   : %6.2f s  (%7.0f mutants/s)\n",
                hw, thread_seconds, kFleetMutants / thread_seconds);
    std::printf("  process fleet (workers=%-2u): %6.2f s  (%7.0f mutants/s)\n",
                hw, fleet_seconds, kFleetMutants / fleet_seconds);
    std::printf("  reports byte-identical: %s\n", identical ? "yes" : "NO");
    S4E_CHECK(identical);

    S4E_CHECK(bench::merge_bench_entry(
        "BENCH_campaign.json", "fault_fleet",
        format("{\"workload\": \"bubble_sort\", \"mutants\": %u, "
               "\"workers\": %u, "
               "\"thread_mutants_per_s\": %s, "
               "\"fleet_mutants_per_s\": %s, "
               "\"fleet_vs_thread\": %s, "
               "\"host_cores\": %u}",
               kFleetMutants, hw,
               bench::json_number(kFleetMutants / thread_seconds).c_str(),
               bench::json_number(kFleetMutants / fleet_seconds).c_str(),
               bench::json_number(thread_seconds / fleet_seconds).c_str(),
               std::thread::hardware_concurrency())));
    std::printf("  (recorded in BENCH_campaign.json)\n");
  }

  // Static triage ablation: the same fault list with triage off and on.
  // The triage contract is checked, not just timed — pruned faults must
  // come back kMasked with the golden exit, and every non-pruned result
  // must be bit-identical to the untriaged run.
  {
    std::printf("\n[E5-triage] static fault triage (off vs on):\n");
    std::printf("  %-12s %8s %7s %9s %9s %8s\n", "workload", "mutants",
                "pruned", "off m/s", "on m/s", "speedup");
    std::string rows;
    for (const char* name : {"crc32", "pid"}) {
      auto triage_workload = core::find_workload(name);
      S4E_CHECK(triage_workload.ok());
      auto triage_program = ecosystem.build(*triage_workload);
      S4E_CHECK(triage_program.ok());
      // Large enough that the one-time static analysis amortizes over the
      // skipped runs (the prune fraction, not the analysis, dominates).
      fault::CampaignConfig triage_config;
      triage_config.seed = 0x5ca1e4ed;
      triage_config.mutant_count = 2000;

      auto start = std::chrono::steady_clock::now();
      auto off = ecosystem.run_campaign(*triage_program, triage_config);
      const double off_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      triage_config.triage = dataflow::TriageMode::kOn;
      start = std::chrono::steady_clock::now();
      auto on = ecosystem.run_campaign(*triage_program, triage_config);
      const double on_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      S4E_CHECK_MSG(off.ok() && on.ok(), name);

      S4E_CHECK(off->mutants.size() == on->mutants.size());
      for (std::size_t i = 0; i < off->mutants.size(); ++i) {
        const auto& base = off->mutants[i];
        const auto& triaged = on->mutants[i];
        S4E_CHECK(base.spec.to_string() == triaged.spec.to_string());
        if (triaged.pruned) {
          S4E_CHECK_MSG(triaged.outcome == fault::Outcome::kMasked, name);
        } else {
          S4E_CHECK_MSG(base.outcome == triaged.outcome &&
                            base.exit_code == triaged.exit_code &&
                            base.instructions == triaged.instructions,
                        name);
        }
      }

      const double mutants = static_cast<double>(off->mutants.size());
      std::printf("  %-12s %8.0f %7llu %9.0f %9.0f %7.2fx\n", name, mutants,
                  static_cast<unsigned long long>(on->pruned_count),
                  mutants / off_seconds, mutants / on_seconds,
                  off_seconds / on_seconds);
      if (!rows.empty()) rows += ", ";
      rows += format("{\"workload\": \"%s\", \"mutants\": %.0f, "
                     "\"pruned\": %llu, \"pruned_fraction\": %s, "
                     "\"off_mutants_per_s\": %s, \"on_mutants_per_s\": %s}",
                     name, mutants,
                     static_cast<unsigned long long>(on->pruned_count),
                     bench::json_number(on->pruned_count / mutants, 4)
                         .c_str(),
                     bench::json_number(mutants / off_seconds).c_str(),
                     bench::json_number(mutants / on_seconds).c_str());
    }
    S4E_CHECK(bench::merge_bench_entry("BENCH_campaign.json", "fault_triage",
                                       "[" + rows + "]"));
    std::printf("  (recorded in BENCH_campaign.json)\n");
  }
  return 0;
}
