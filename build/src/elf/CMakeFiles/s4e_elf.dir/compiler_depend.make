# Empty compiler generated dependencies file for s4e_elf.
# This may be replaced when dependencies are built.
