# seeded defect: `compute` returns a result in a0, but every reachable call
# site discards it (a0 is overwritten before any read). s4e-lint must
# report an unused-result finding for `compute`.

_start:
    li a0, 21
    call compute
    li a0, 0           # result discarded at the only call site
    li a7, 93
    ecall

compute:
    slli a0, a0, 1
    ret
