// Output artefact of the assembler: loadable sections, the symbol table and
// the WCET annotation side-table (loop bounds). This is what the ELF writer
// serializes and what the VP loader / CFG reconstructor consume.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/status.hpp"

namespace s4e::assembler {

struct Section {
  std::string name;      // ".text" / ".data"
  u32 base = 0;          // load address
  std::vector<u8> bytes; // contents

  u32 end() const noexcept { return base + static_cast<u32>(bytes.size()); }
};

// A `.loopbound N` annotation: the loop headed by the block containing
// `address` iterates at most `bound` times per entry from outside. This is
// the user-annotation channel aiT also relies on; the static WCET analyzer
// reads these when its own bound patterns don't fire.
struct LoopBound {
  u32 address = 0;
  u32 bound = 0;
};

struct Program {
  std::vector<Section> sections;
  std::map<std::string, u32> symbols;
  std::vector<LoopBound> loop_bounds;
  u32 entry = 0;

  // Section lookup by name; nullptr if absent.
  const Section* find_section(const std::string& name) const {
    for (const auto& section : sections) {
      if (section.name == name) return &section;
    }
    return nullptr;
  }

  // Symbol lookup.
  Result<u32> symbol(const std::string& name) const {
    auto it = symbols.find(name);
    if (it == symbols.end()) {
      return Error(ErrorCode::kNotFound, "undefined symbol '" + name + "'");
    }
    return it->second;
  }

  // Read the 32-bit little-endian word at `address` from whichever section
  // covers it. Fails if no section covers all four bytes.
  Result<u32> read_word(u32 address) const;

  // 16-bit variant (RVC parcel).
  Result<u32> read_half(u32 address) const;

  // Total loadable byte count.
  std::size_t image_size() const {
    std::size_t total = 0;
    for (const auto& section : sections) total += section.bytes.size();
    return total;
  }
};

}  // namespace s4e::assembler
