// Abstract value lattice for the register data-flow analysis.
//
// One AbsValue approximates the set of 32-bit patterns a GPR may hold at a
// program point. Values are canonicalized as the sign-extended i32 reading
// (i64 internally), which makes signed branch folding a plain integer
// comparison; raw u32 patterns are recovered by truncation.
//
//   kBottom  — no value (unreached)
//   kConsts  — explicit set of at most kMaxConsts values (sorted, unique)
//   kRange   — {lo, lo+stride, ..., hi} superset approximation
//   kStack   — sp0 + [lo..hi] (offset from the function's incoming sp);
//              distinguishes stack addresses from the program image
//   kTop     — any value
//
// Joins stay exact (set union) up to kMaxConsts values, then decay to a
// stride-aware interval hull. All operations are *sound* over-approximations:
// the concrete result set is always contained in the abstract result.
#pragma once

#include <string>
#include <vector>

#include "common/bits.hpp"
#include "isa/opcode.hpp"

namespace s4e::dataflow {

class AbsValue {
 public:
  enum class Kind : u8 { kBottom, kConsts, kRange, kStack, kTop };

  static constexpr std::size_t kMaxConsts = 16;
  static constexpr u64 kMaxEnum = 64;  // enumeration budget (e.g. load fan-in)

  AbsValue() = default;  // bottom

  static AbsValue bottom() { return AbsValue(); }
  static AbsValue top();
  static AbsValue constant(u32 raw);
  // Canonical (sign-extended) values; deduplicated and sorted. More than
  // kMaxConsts values decay to their interval hull.
  static AbsValue from_values(std::vector<i64> values);
  // Interval [lo, hi] with stride; normalized (singleton -> kConsts, bounds
  // outside i32 -> kTop, stride adjusted to divide hi - lo).
  static AbsValue range(i64 lo, i64 hi, i64 stride);
  // Stack slot / pointer: sp0 + [lo, hi].
  static AbsValue stack(i64 lo, i64 hi, i64 stride);

  Kind kind() const noexcept { return kind_; }
  bool is_bottom() const noexcept { return kind_ == Kind::kBottom; }
  bool is_top() const noexcept { return kind_ == Kind::kTop; }
  bool is_consts() const noexcept { return kind_ == Kind::kConsts; }
  bool is_range() const noexcept { return kind_ == Kind::kRange; }
  bool is_stack() const noexcept { return kind_ == Kind::kStack; }

  bool is_const() const noexcept {
    return kind_ == Kind::kConsts && values_.size() == 1;
  }
  u32 const_raw() const noexcept { return static_cast<u32>(values_.front()); }
  i64 const_value() const noexcept { return values_.front(); }

  // kConsts only: the canonical values.
  const std::vector<i64>& values() const noexcept { return values_; }

  // Bounds. Valid for kConsts / kRange (canonical values) and kStack
  // (offsets from the incoming sp).
  i64 lo() const noexcept;
  i64 hi() const noexcept;
  i64 stride() const noexcept;

  // True when the value set has lo/hi bounds (kConsts or kRange).
  bool has_bounds() const noexcept { return is_consts() || is_range(); }

  // Cardinality when enumerable (kConsts / kRange); 0 otherwise.
  u64 count() const noexcept;

  // All raw u32 patterns, if enumerable within `limit`; else empty.
  std::vector<u32> enumerate(u64 limit = kMaxEnum) const;

  static AbsValue join(const AbsValue& a, const AbsValue& b);

  // Widening: anything not already bottom/top goes to top. Applied by the
  // solver to values that keep changing past the visit threshold so chains
  // like a decremented counter terminate.
  void widen() {
    if (kind_ != Kind::kBottom) *this = top();
  }

  bool operator==(const AbsValue&) const = default;

  std::string describe() const;

 private:
  Kind kind_ = Kind::kBottom;
  std::vector<i64> values_;  // kConsts
  i64 lo_ = 0, hi_ = 0, stride_ = 1;  // kRange / kStack
};

// Abstract transfer of the ALU. All are sound; `top` in means `top` out
// except where the operation itself bounds the result (e.g. AND with a
// non-negative mask). Shift amounts follow RV32 semantics (low 5 bits).
AbsValue av_add(const AbsValue& a, const AbsValue& b);
AbsValue av_sub(const AbsValue& a, const AbsValue& b);
AbsValue av_and(const AbsValue& a, const AbsValue& b);
AbsValue av_or(const AbsValue& a, const AbsValue& b);
AbsValue av_xor(const AbsValue& a, const AbsValue& b);
AbsValue av_sll(const AbsValue& a, const AbsValue& b);
AbsValue av_srl(const AbsValue& a, const AbsValue& b);
AbsValue av_sra(const AbsValue& a, const AbsValue& b);
AbsValue av_mul(const AbsValue& a, const AbsValue& b);
// slt/sltu (always within [0, 1], constant when decidable).
AbsValue av_slt(const AbsValue& a, const AbsValue& b, bool is_unsigned);
// div/divu/rem/remu/mulh/mulhsu/mulhu: precise only element-wise.
AbsValue av_muldiv(isa::Op op, const AbsValue& a, const AbsValue& b);

}  // namespace s4e::dataflow
