# Empty compiler generated dependencies file for bench_wcet_analysis.
# This may be replaced when dependencies are built.
