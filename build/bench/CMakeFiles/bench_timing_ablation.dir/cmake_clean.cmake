file(REMOVE_RECURSE
  "CMakeFiles/bench_timing_ablation.dir/bench_timing_ablation.cpp.o"
  "CMakeFiles/bench_timing_ablation.dir/bench_timing_ablation.cpp.o.d"
  "bench_timing_ablation"
  "bench_timing_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timing_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
