# bitwise CRC-32 with the standard check value
# expected exit code: 0

_start:
    la s0, msg
    li s1, 9
    li a0, -1
    li s3, 0xEDB88320
byte_loop:
    lbu t0, 0(s0)
    xor a0, a0, t0
    li t1, 8
bit_loop:
    andi t2, a0, 1
    srli a0, a0, 1
    beqz t2, nobit
    xor a0, a0, s3
nobit:
    addi t1, t1, -1
    bnez t1, bit_loop
    addi s0, s0, 1
    addi s1, s1, -1
    bnez s1, byte_loop
    xori a0, a0, -1
    li t3, 0xCBF43926
    bne a0, t3, crc_bad
    li a0, 0
    li a7, 93
    ecall
crc_bad:
    li a0, 1
    li a7, 93
    ecall
.data
msg:
    .ascii "123456789"
