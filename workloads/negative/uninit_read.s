# seeded defect: reads temporaries before any write reaches them
# s4e-lint must report uninit-read findings (t0 and t1 at the add).

_start:
    add a0, t0, t1     # t0/t1 never initialized on this path
    li a7, 93
    ecall
