#include "vp/machine.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "isa/decoder.hpp"
#include "isa/rvc.hpp"

// The C-API handle just wraps the Machine pointer; defined here so both
// machine.cpp and plugin_api.cpp see the same layout.
struct s4e_vm {
  s4e::vp::Machine* machine;
};

namespace s4e::vp {

using isa::Instr;
using isa::Op;

std::string_view to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kExitEcall: return "exit-ecall";
    case StopReason::kExitTestDevice: return "exit-testdev";
    case StopReason::kExitRequested: return "exit-requested";
    case StopReason::kEbreak: return "ebreak";
    case StopReason::kTrapUnhandled: return "trap-unhandled";
    case StopReason::kMaxInstructions: return "max-instructions";
    case StopReason::kWfiHalt: return "wfi-halt";
    case StopReason::kDebugBreak: return "debug-break";
    case StopReason::kDebugWatch: return "debug-watch";
    case StopReason::kDebugStep: return "debug-step";
    case StopReason::kDebugInterrupt: return "debug-interrupt";
    case StopReason::kDebugSlice: return "debug-slice";
  }
  return "?";
}

Machine::Machine(const MachineConfig& config)
    : config_(config), timing_(config.timing) {
  num_harts_ = std::clamp(config_.num_harts, 1u, Clint::kMaxHarts);
  config_.num_harts = num_harts_;
  if (config_.smp_slice_quantum == 0) config_.smp_slice_quantum = 1;
  smp_ = num_harts_ > 1 || config_.force_slice_scheduler;
  harts_.resize(num_harts_);
  hart_stats_.resize(num_harts_);
  hart_icount_.resize(num_harts_);
  bus_.add_ram(config_.ram_base, config_.ram_size);
  if (config_.map_uart) {
    auto uart = std::make_unique<Uart>();
    uart_ = uart.get();
    bus_.add_device(Uart::kDefaultBase, Uart::kWindowSize, std::move(uart));
  }
  if (config_.map_clint) {
    auto clint = std::make_unique<Clint>();
    clint_ = clint.get();
    bus_.add_device(Clint::kDefaultBase, Clint::kWindowSize, std::move(clint));
  }
  if (config_.map_gpio) {
    auto gpio = std::make_unique<Gpio>();
    gpio_ = gpio.get();
    bus_.add_device(Gpio::kDefaultBase, Gpio::kWindowSize, std::move(gpio));
  }
  if (config_.map_testdev) {
    auto testdev = std::make_unique<TestDevice>([this](int code) {
      if (!pending_stop_) {
        pending_stop_ = PendingStop{StopReason::kExitTestDevice, code, 0, ""};
      }
    });
    bus_.add_device(TestDevice::kDefaultBase, TestDevice::kWindowSize,
                    std::move(testdev));
  }
  vm_handle_ = std::make_unique<s4e_vm>(s4e_vm{this});
  refresh_ram_window();
  reset();
}

void Machine::refresh_ram_window() noexcept {
  const Bus::RamWindow window = bus_.ram_window(config_.ram_base);
  ram_data_ = window.data;
  ram_dirty_ = window.dirty;
  ram_base_ = window.base;
  ram_size_ = window.size;
}

Machine::~Machine() = default;

s4e_vm* Machine::vm_handle() noexcept { return vm_handle_.get(); }

void Machine::reset(bool clear_ram) {
  // Stacks grow down from the top of RAM with a 16-byte red zone; SMP harts
  // get staggered stack tops so bare-metal code that never partitions the
  // stack itself still runs (hart 0 keeps the exact single-hart layout).
  const u32 stack_stride =
      num_harts_ > 1 ? (config_.ram_size / (2 * num_harts_)) & ~u32{15} : 0;
  for (unsigned h = 0; h < num_harts_; ++h) {
    Hart& hart = harts_[h];
    hart.cpu = CpuState{};
    hart.cpu.pc = config_.ram_base;
    hart.cpu.write_gpr(2,
                       config_.ram_base + config_.ram_size - 16 -
                           h * stack_stride);
    hart.res_valid = false;
    hart.res_addr = 0;
    hart_stats_[h] = EngineStats{};
    hart_icount_[h] = 0;
  }
  active_hart_ = 0;
  cpu_ = harts_[0].cpu;
  reservations_active_ = 0;
  slice_start_icount_ = 0;
  slice_end_ = smp_ ? config_.smp_slice_quantum : 0;
  icount_ = 0;
  cycles_ = 0;
  pending_stop_.reset();
  debug_stop_request_ = false;
  chain_epoch_recheck_ = false;
  estats_ = EngineStats{};
  update_debug_check();
  tb_cache_.flush();
  icache_.reset(config_.timing);
  bimodal_.reset();
  bus_.reset_devices();
  if (clear_ram) {
    std::vector<u8> zeros(config_.ram_size, 0);
    (void)bus_.ram_write(config_.ram_base, zeros.data(), config_.ram_size);
  }
}

void Machine::sync_active_hart() {
  harts_[active_hart_].cpu = cpu_;
  hart_stats_[active_hart_] = estats_;
  hart_icount_[active_hart_] += icount_ - slice_start_icount_;
  slice_start_icount_ = icount_;
}

void Machine::rotate_hart() {
  sync_active_hart();
  active_hart_ = (active_hart_ + 1) % num_harts_;
  cpu_ = harts_[active_hart_].cpu;
  estats_ = hart_stats_[active_hart_];
  slice_end_ = saturating_add(icount_, config_.smp_slice_quantum);
  // The incoming hart's mie/mstatus may gate the fast path differently.
  chain_epoch_recheck_ = true;
}

void Machine::clear_remote_reservations(u32 address, unsigned size) noexcept {
  for (unsigned h = 0; h < num_harts_; ++h) {
    if (h == active_hart_) continue;
    Hart& hart = harts_[h];
    if (hart.res_valid && address < hart.res_addr + 4 &&
        address + size > hart.res_addr) {
      hart.res_valid = false;
      --reservations_active_;
    }
  }
}

void Machine::save_state(Snapshot& snap) {
  sync_active_hart();
  snap.cpu = cpu_;
  snap.harts = harts_;
  snap.active_hart = active_hart_;
  snap.slice_end = slice_end_;
  snap.slice_start_icount = slice_start_icount_;
  snap.hart_icount = hart_icount_;
  snap.icount = icount_;
  snap.cycles = cycles_;
  snap.icache_misses = icache_.misses();
  snap.icache_tags = icache_.tags();
  snap.bimodal = bimodal_.table();
  bus_.ram_snapshot(snap.ram);
  bus_.save_device_state(snap.device_state);
  snap.valid = true;
  ++snap_stats_.snapshots;
}

void Machine::restore_state(const Snapshot& snap) {
  S4E_CHECK_MSG(snap.valid, "restore from an empty Snapshot");
  S4E_CHECK_MSG(snap.harts.size() == harts_.size(),
                "snapshot hart count mismatch");
  harts_ = snap.harts;
  active_hart_ = snap.active_hart;
  slice_end_ = snap.slice_end;
  slice_start_icount_ = snap.slice_start_icount;
  hart_icount_ = snap.hart_icount;
  reservations_active_ = 0;
  for (const Hart& hart : harts_) {
    if (hart.res_valid) ++reservations_active_;
  }
  cpu_ = snap.cpu;
  icount_ = snap.icount;
  cycles_ = snap.cycles;
  icache_.restore(snap.icache_tags, snap.icache_misses);
  bimodal_.table() = snap.bimodal;
  pending_stop_.reset();
  tb_flush_pending_ = false;
  chain_epoch_recheck_ = false;
  scratch_block_.reset();
  // Dirty pages carry everything the run wrote — including patched code, so
  // invalidating the blocks on restored pages is exactly what keeps the
  // warm TB cache consistent with the restored RAM.
  std::vector<std::pair<u32, u32>> restored;
  snap_stats_.pages_copied += bus_.ram_restore(snap.ram, &restored);
  snap_stats_.pages_total += bus_.ram_pages();
  for (const auto& [address, size] : restored) {
    snap_stats_.tb_blocks_invalidated +=
        tb_cache_.invalidate_range(address, size);
  }
  bus_.restore_device_state(snap.device_state);
  ++snap_stats_.restores;
}

void Machine::invalidate_code(u32 address, u32 size) {
  tb_cache_.invalidate_range(address, size);
  scratch_block_.reset();
}

void Machine::add_breakpoint(u32 address) {
  if (!breakpoints_.insert(address).second) return;
  // A block translated before this insert may carry the breakpointed
  // instruction mid-block where the dispatch check cannot see it; drop any
  // such block so retranslation splits at the breakpoint.
  tb_cache_.invalidate_range(address, 2);
  scratch_block_.reset();
  update_debug_check();
}

bool Machine::remove_breakpoint(u32 address) {
  if (breakpoints_.erase(address) == 0) return false;
  // Let the splits around the removed breakpoint re-merge into full blocks.
  tb_cache_.invalidate_range(address, 2);
  scratch_block_.reset();
  update_debug_check();
  return true;
}

bool Machine::has_breakpoint(u32 address) const noexcept {
  return breakpoints_.count(address) != 0;
}

void Machine::clear_breakpoints() {
  for (u32 address : breakpoints_) tb_cache_.invalidate_range(address, 2);
  breakpoints_.clear();
  scratch_block_.reset();
  update_debug_check();
}

void Machine::add_watchpoint(u32 address, u32 length, WatchKind kind) {
  const Watchpoint wp{address, length == 0 ? 1 : length, kind};
  for (const Watchpoint& existing : watchpoints_) {
    if (existing == wp) return;
  }
  watchpoints_.push_back(wp);
  update_mem_slow();
}

bool Machine::remove_watchpoint(u32 address, u32 length, WatchKind kind) {
  const Watchpoint wp{address, length == 0 ? 1 : length, kind};
  for (auto it = watchpoints_.begin(); it != watchpoints_.end(); ++it) {
    if (*it == wp) {
      watchpoints_.erase(it);
      update_mem_slow();
      return true;
    }
  }
  return false;
}

void Machine::clear_watchpoints() {
  watchpoints_.clear();
  update_mem_slow();
}

void Machine::check_watchpoints(u32 address, unsigned size, bool is_store) {
  if (pending_stop_) return;
  for (const Watchpoint& wp : watchpoints_) {
    const bool kind_matches =
        wp.kind == WatchKind::kAccess ||
        (is_store ? wp.kind == WatchKind::kWrite
                  : wp.kind == WatchKind::kRead);
    if (!kind_matches) continue;
    if (address < wp.address + wp.length && address + size > wp.address) {
      PendingStop stop{StopReason::kDebugWatch, 0, 0,
                       format("watchpoint at 0x%08x (%s access to 0x%08x)",
                              wp.address,
                              is_store ? "store" : "load", address),
                       address, wp.kind};
      pending_stop_ = std::move(stop);
      return;
    }
  }
}

void Machine::clear_plugins() noexcept {
  tb_trans_cbs_.clear();
  tb_exec_cbs_.clear();
  insn_exec_cbs_.clear();
  mem_cbs_.clear();
  trap_cbs_.clear();
  exit_cbs_.clear();
  update_mem_slow();
}

Status Machine::load_program(const assembler::Program& program) {
  for (const auto& section : program.sections) {
    if (section.bytes.empty()) continue;
    S4E_TRY_STATUS(bus_.ram_write(section.base, section.bytes.data(),
                                  static_cast<u32>(section.bytes.size())));
  }
  // Every hart starts at the entry point; SMP programs branch on mhartid.
  cpu_.pc = program.entry;
  for (Hart& hart : harts_) hart.cpu.pc = program.entry;
  tb_cache_.flush();
  return Status();
}

s4e_insn_info Machine::to_insn_info(const Instr& instr, u32 address) {
  s4e_insn_info info{};
  info.address = address;
  info.encoding = instr.raw;
  info.op = static_cast<u16>(instr.op);
  info.op_class = static_cast<u8>(instr.info().op_class);
  info.rd = instr.rd;
  info.rs1 = instr.rs1;
  info.rs2 = instr.rs2;
  info.csr = instr.csr;
  info.imm = instr.imm;
  return info;
}

TranslationBlock* Machine::translate(u32 pc) {
  auto block = std::make_unique<TranslationBlock>();
  block->start = pc;
  u32 address = pc;
  while (block->insns.size() < TbCache::kMaxBlockInsns) {
    // A debug breakpoint must sit at a block head so the per-block dispatch
    // check can stop before executing it: end the block when the *next*
    // instruction is breakpointed. (A breakpoint at the block's own start is
    // fine — dispatch already stopped there, or we are resuming over it.)
    if (!breakpoints_.empty() && !block->insns.empty() &&
        breakpoints_.count(address) != 0) {
      break;
    }
    // Fetch the first 16-bit parcel to distinguish RVC from 32-bit forms.
    auto half = bus_.fetch_half(address);
    if (!half.ok()) {
      if (block->insns.empty()) {
        // Instruction access fault at the block head.
        take_trap(1 /* instruction access fault */, address, false);
        return nullptr;
      }
      break;  // fault will be taken when (if) execution reaches it
    }
    Instr instr;
    if (isa::is_compressed(static_cast<u16>(*half))) {
      auto decompressed = isa::decompress(static_cast<u16>(*half));
      if (!decompressed.ok()) {
        if (block->insns.empty()) {
          take_trap(kCauseIllegalInstruction, *half, false);
          return nullptr;
        }
        break;
      }
      instr = *decompressed;
    } else {
      auto word = bus_.fetch_word(address);
      if (!word.ok() || !isa::decoder().try_decode(*word, instr)) {
        if (block->insns.empty()) {
          take_trap(kCauseIllegalInstruction, word.ok() ? *word : *half,
                    false);
          return nullptr;
        }
        break;
      }
    }
    block->insns.push_back(instr);
    address += instr.length;
    if (instr.is_control_flow()) break;
    // WFI must end the block: the timer interrupt it waits for is only
    // delivered at block boundaries.
    if (instr.op == Op::kWfi) break;
  }
  block->byte_size = address - pc;
  lower_block(*block);

  if (!tb_trans_cbs_.empty()) {
    std::vector<s4e_insn_info> infos;
    infos.reserve(block->insns.size());
    u32 a = block->start;
    for (const Instr& instr : block->insns) {
      infos.push_back(to_insn_info(instr, a));
      a += instr.length;
    }
    s4e_tb_info tb_info{block->start, static_cast<u32>(infos.size()),
                        infos.data()};
    for (const auto& reg : tb_trans_cbs_) {
      reg.callback(reg.userdata, vm_handle(), &tb_info);
    }
  }

  if (config_.enable_tb_cache) {
    return tb_cache_.insert(std::move(block));
  }
  // Uncached (pure-interpreter ablation): hand the block to a scratch slot.
  scratch_block_ = std::move(block);
  return scratch_block_.get();
}

void Machine::take_trap(u32 cause, u32 tval, bool interrupt) {
  if (!trap_cbs_.empty()) {
    s4e_trap_event event{cause | (interrupt ? kCauseInterrupt : 0u),
                         cpu_.pc, tval};
    for (const auto& reg : trap_cbs_) {
      reg.callback(reg.userdata, vm_handle(), &event);
    }
  }
  CsrFile& csr = cpu_.csr;
  if (csr.mtvec == 0) {
    // No handler installed: stop the simulation (fault campaigns classify
    // this as a crash).
    if (!pending_stop_) {
      StopReason reason = StopReason::kTrapUnhandled;
      if (!interrupt && cause == kCauseBreakpoint) reason = StopReason::kEbreak;
      pending_stop_ = PendingStop{
          reason, -1, cause | (interrupt ? kCauseInterrupt : 0u),
          format("unhandled trap cause=%u tval=0x%08x at pc=0x%08x", cause,
                 tval, cpu_.pc)};
    }
    return;
  }
  csr.mcause = cause | (interrupt ? kCauseInterrupt : 0u);
  csr.mepc = cpu_.pc;
  csr.mtval = tval;
  // Push MIE -> MPIE, clear MIE.
  const bool mie = (csr.mstatus & kMstatusMie) != 0;
  csr.mstatus &= ~(kMstatusMie | kMstatusMpie);
  if (mie) csr.mstatus |= kMstatusMpie;
  const u32 base = csr.mtvec & ~u32{3};
  const bool vectored = (csr.mtvec & 3) == 1;
  cpu_.pc = (vectored && interrupt) ? base + 4 * cause : base;
  cycles_ += timing_.params().trap_cycles;
}

void Machine::check_interrupts() {
  if (clint_ == nullptr) return;
  // Level-triggered MIP bits mirror the active hart's CLINT banks.
  if (clint_->timer_pending(active_hart_)) {
    cpu_.csr.mip |= kMipMtip;
  } else {
    cpu_.csr.mip &= ~kMipMtip;
  }
  if (clint_->software_pending(active_hart_)) {
    cpu_.csr.mip |= kMipMsip;
  } else {
    cpu_.csr.mip &= ~kMipMsip;
  }
  if ((cpu_.csr.mstatus & kMstatusMie) == 0) return;
  const u32 pending = cpu_.csr.mie & cpu_.csr.mip;
  // Architectural priority: software interrupts before timer.
  if ((pending & kMipMsip) != 0) {
    take_trap(3, 0, true);
  } else if ((pending & kMipMtip) != 0) {
    take_trap(7, 0, true);
  }
}

void Machine::probe_icache(u32 block_pc) {
  if (!icache_.enabled()) return;
  const TimingParams& params = timing_.params();
  if (icache_.probe(block_pc, params)) cycles_ += params.icache_miss_cycles;
}

void Machine::fire_mem_cb(u32 vaddr, u32 value, unsigned size, bool is_store) {
  s4e_mem_event event{current_insn_pc_, vaddr, value, static_cast<u8>(size),
                      static_cast<u8>(is_store ? 1 : 0)};
  for (const auto& reg : mem_cbs_) {
    reg.callback(reg.userdata, vm_handle(), &event);
  }
}

// ---------------------------------------------------------------------------
// Threaded-dispatch execution engine.
//
// Every instruction is lowered at translate time into a DecodedInsn carrying
// a direct handler pointer (see exec_engine.hpp); the per-instruction switch
// the old engine paid on every execution is gone from the hot path. The
// handlers below replicate the old Machine::execute semantics exactly —
// operand order, trap-entry pc, stop-path pc, and the single timing charge
// per instruction (precomputed as c_fall/c_taken/c_mmio) are all preserved,
// which is what keeps chained and unchained execution bit-identical.
//
// Handler contract:
//   kNext          fell through; cpu_.pc was NOT updated (the fast loop
//                  skips the store; the careful loop writes d.link).
//                  Handlers that can also stop (loads/stores) write d.link
//                  themselves before returning kNext — a harmless re-store.
//   kNextSpliced   superblock interior edge continued off the fall-through
//                  (jal splice, taken-branch splice); the handler set pc.
//   kTakenStatic / kTakenIndirect / kSideExit / kStop
//                  the handler set cpu_.pc (for traps: before take_trap, so
//                  mepc and the trap-callback pc are exact).

namespace {

struct CmpEq {
  static bool eval(u32 a, u32 b) noexcept { return a == b; }
};
struct CmpNe {
  static bool eval(u32 a, u32 b) noexcept { return a != b; }
};
struct CmpLt {
  static bool eval(u32 a, u32 b) noexcept {
    return static_cast<i32>(a) < static_cast<i32>(b);
  }
};
struct CmpGe {
  static bool eval(u32 a, u32 b) noexcept {
    return static_cast<i32>(a) >= static_cast<i32>(b);
  }
};
struct CmpLtu {
  static bool eval(u32 a, u32 b) noexcept { return a < b; }
};
struct CmpGeu {
  static bool eval(u32 a, u32 b) noexcept { return a >= b; }
};

// AMO combine functions: eval(old_memory_value, rs2) -> value stored back.
struct AmoSwap {
  static u32 eval(u32, u32 b) noexcept { return b; }
};
struct AmoAdd {
  static u32 eval(u32 a, u32 b) noexcept { return a + b; }
};
struct AmoXor {
  static u32 eval(u32 a, u32 b) noexcept { return a ^ b; }
};
struct AmoOr {
  static u32 eval(u32 a, u32 b) noexcept { return a | b; }
};
struct AmoAnd {
  static u32 eval(u32 a, u32 b) noexcept { return a & b; }
};
struct AmoMin {
  static u32 eval(u32 a, u32 b) noexcept {
    return static_cast<i32>(a) < static_cast<i32>(b) ? a : b;
  }
};
struct AmoMax {
  static u32 eval(u32 a, u32 b) noexcept {
    return static_cast<i32>(a) > static_cast<i32>(b) ? a : b;
  }
};
struct AmoMinu {
  static u32 eval(u32 a, u32 b) noexcept { return a < b ? a : b; }
};
struct AmoMaxu {
  static u32 eval(u32 a, u32 b) noexcept { return a > b ? a : b; }
};

}  // namespace

struct ExecOps {
  using O = ExecOutcome;

#define S4E_DEF_ALU(NAME, EXPR)                               \
  static O NAME(Machine& m, const DecodedInsn& d) {           \
    const u32 rs1 = m.cpu_.read_gpr(d.rs1);                   \
    const u32 rs2 = m.cpu_.read_gpr(d.rs2);                   \
    const i32 srs1 = static_cast<i32>(rs1);                   \
    const i32 srs2 = static_cast<i32>(rs2);                   \
    (void)rs1, (void)rs2, (void)srs1, (void)srs2;             \
    m.cpu_.write_gpr(d.rd, (EXPR));                           \
    m.cycles_ += d.c_fall;                                    \
    return O::kNext;                                          \
  }

  S4E_DEF_ALU(lui, static_cast<u32>(d.imm))
  S4E_DEF_ALU(auipc, d.pc + static_cast<u32>(d.imm))
  S4E_DEF_ALU(addi, rs1 + static_cast<u32>(d.imm))
  S4E_DEF_ALU(slti, srs1 < d.imm ? 1u : 0u)
  S4E_DEF_ALU(sltiu, rs1 < static_cast<u32>(d.imm) ? 1u : 0u)
  S4E_DEF_ALU(xori, rs1 ^ static_cast<u32>(d.imm))
  S4E_DEF_ALU(ori, rs1 | static_cast<u32>(d.imm))
  S4E_DEF_ALU(andi, rs1 & static_cast<u32>(d.imm))
  S4E_DEF_ALU(slli, rs1 << d.rs2)
  S4E_DEF_ALU(srli, rs1 >> d.rs2)
  S4E_DEF_ALU(srai, static_cast<u32>(srs1 >> d.rs2))
  S4E_DEF_ALU(add, rs1 + rs2)
  S4E_DEF_ALU(sub, rs1 - rs2)
  S4E_DEF_ALU(sll, rs1 << (rs2 & 31))
  S4E_DEF_ALU(slt, srs1 < srs2 ? 1u : 0u)
  S4E_DEF_ALU(sltu, rs1 < rs2 ? 1u : 0u)
  S4E_DEF_ALU(xor_, rs1 ^ rs2)
  S4E_DEF_ALU(srl, rs1 >> (rs2 & 31))
  S4E_DEF_ALU(sra, static_cast<u32>(srs1 >> (rs2 & 31)))
  S4E_DEF_ALU(or_, rs1 | rs2)
  S4E_DEF_ALU(and_, rs1 & rs2)
  S4E_DEF_ALU(mul, rs1 * rs2)
  S4E_DEF_ALU(mulh, static_cast<u32>(
                        (static_cast<i64>(srs1) * static_cast<i64>(srs2)) >> 32))
  S4E_DEF_ALU(mulhsu,
              static_cast<u32>((static_cast<i64>(srs1) *
                                static_cast<i64>(static_cast<u64>(rs2))) >> 32))
  S4E_DEF_ALU(mulhu, static_cast<u32>(
                         (static_cast<u64>(rs1) * static_cast<u64>(rs2)) >> 32))
#undef S4E_DEF_ALU

  static O div_(Machine& m, const DecodedInsn& d) {
    const u32 rs1 = m.cpu_.read_gpr(d.rs1);
    const u32 rs2 = m.cpu_.read_gpr(d.rs2);
    u32 out;
    if (rs2 == 0) {
      out = ~u32{0};
    } else if (rs1 == 0x8000'0000u && rs2 == ~u32{0}) {
      out = 0x8000'0000u;  // overflow
    } else {
      out = static_cast<u32>(static_cast<i32>(rs1) / static_cast<i32>(rs2));
    }
    m.cpu_.write_gpr(d.rd, out);
    m.cycles_ += d.c_fall + m.timing_.divide_cycles(rs1);
    return O::kNext;
  }
  static O divu(Machine& m, const DecodedInsn& d) {
    const u32 rs1 = m.cpu_.read_gpr(d.rs1);
    const u32 rs2 = m.cpu_.read_gpr(d.rs2);
    m.cpu_.write_gpr(d.rd, rs2 == 0 ? ~u32{0} : rs1 / rs2);
    m.cycles_ += d.c_fall + m.timing_.divide_cycles(rs1);
    return O::kNext;
  }
  static O rem(Machine& m, const DecodedInsn& d) {
    const u32 rs1 = m.cpu_.read_gpr(d.rs1);
    const u32 rs2 = m.cpu_.read_gpr(d.rs2);
    u32 out;
    if (rs2 == 0) {
      out = rs1;
    } else if (rs1 == 0x8000'0000u && rs2 == ~u32{0}) {
      out = 0;
    } else {
      out = static_cast<u32>(static_cast<i32>(rs1) % static_cast<i32>(rs2));
    }
    m.cpu_.write_gpr(d.rd, out);
    m.cycles_ += d.c_fall + m.timing_.divide_cycles(rs1);
    return O::kNext;
  }
  static O remu(Machine& m, const DecodedInsn& d) {
    const u32 rs1 = m.cpu_.read_gpr(d.rs1);
    const u32 rs2 = m.cpu_.read_gpr(d.rs2);
    m.cpu_.write_gpr(d.rd, rs2 == 0 ? rs1 : rs1 % rs2);
    m.cycles_ += d.c_fall + m.timing_.divide_cycles(rs1);
    return O::kNext;
  }

  static O fence(Machine& m, const DecodedInsn& d) {
    m.cycles_ += d.c_fall;
    return O::kNext;
  }

  static O jal(Machine& m, const DecodedInsn& d) {
    m.cpu_.write_gpr(d.rd, d.link);
    m.cycles_ += d.c_taken;
    m.cpu_.pc = d.target;
    return O::kTakenStatic;
  }
  // Superblock splice: the jump continues inline into the spliced target.
  static O jal_spliced(Machine& m, const DecodedInsn& d) {
    m.cpu_.write_gpr(d.rd, d.link);
    m.cycles_ += d.c_taken;
    m.cpu_.pc = d.target;
    return O::kNextSpliced;
  }
  static O jalr(Machine& m, const DecodedInsn& d) {
    const u32 target =
        (m.cpu_.read_gpr(d.rs1) + static_cast<u32>(d.imm)) & ~u32{1};
    m.cpu_.write_gpr(d.rd, d.link);
    m.cycles_ += d.c_taken;
    m.cpu_.pc = target;
    return O::kTakenIndirect;
  }

  // kMode 0: block terminator. kMode 1: spliced fall-through edge (a taken
  // branch side-exits the superblock). kMode 2: spliced taken edge (the
  // taken path continues inline; fall-through side-exits).
  template <typename Cmp, bool kPredictor, int kMode>
  static O branch(Machine& m, const DecodedInsn& d) {
    const bool taken = Cmp::eval(m.cpu_.read_gpr(d.rs1), m.cpu_.read_gpr(d.rs2));
    bool penalize = taken;
    if constexpr (kPredictor) {
      // Bimodal 2-bit predictor: penalty only on mispredicts (in either
      // direction); the table is indexed by the branch PC.
      penalize = m.bimodal_.mispredict(d.pc, taken);
    }
    m.cycles_ += penalize ? d.c_taken : d.c_fall;
    if constexpr (kMode == 2) {
      if (taken) {
        m.cpu_.pc = d.target;
        return O::kNextSpliced;
      }
      m.cpu_.pc = d.link;
      return O::kSideExit;
    } else {
      if (taken) {
        m.cpu_.pc = d.target;
        return kMode == 1 ? O::kSideExit : O::kTakenStatic;
      }
      return O::kNext;
    }
  }

  template <unsigned kSize, unsigned kSignBits>
  static O load(Machine& m, const DecodedInsn& d) {
    const u32 address = m.cpu_.read_gpr(d.rs1) + static_cast<u32>(d.imm);
    const u32 offset = address - m.ram_base_;
    if (!m.mem_slow_ && offset <= m.ram_size_ - kSize) [[likely]] {
      const u8* p = m.ram_data_ + offset;
      u32 value;
      if constexpr (kSize == 1) {
        value = p[0];
      } else if constexpr (kSize == 2) {
        value = static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8);
      } else {
        value = static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
                (static_cast<u32>(p[2]) << 16) | (static_cast<u32>(p[3]) << 24);
      }
      if constexpr (kSignBits != 0) {
        value = static_cast<u32>(sign_extend(value, kSignBits));
      }
      m.cpu_.write_gpr(d.rd, value);
      m.cycles_ += d.c_fall;
      return O::kNext;
    }
    return slow_load<kSize, kSignBits>(m, d, address);
  }

  template <unsigned kSize, unsigned kSignBits>
  static O slow_load(Machine& m, const DecodedInsn& d, u32 address) {
    // Devices are ticked on demand before an MMIO data access, so a guest
    // mtime read (or any time-derived device state) is exact at the access
    // cycle in every dispatch mode — the chained engine would otherwise
    // observe device time only at chain exits.
    if (!m.bus_.is_ram(address, kSize)) m.bus_.tick(m.cycles_);
    auto result = m.bus_.read(address, kSize);
    if (!result.ok()) {
      m.cpu_.pc = d.pc;
      m.take_trap(kCauseLoadFault, address, false);
      m.cycles_ += d.c_taken;
      return O::kStop;
    }
    u32 value = result->value;
    if constexpr (kSignBits != 0) {
      value = static_cast<u32>(sign_extend(value, kSignBits));
    }
    m.cpu_.write_gpr(d.rd, value);
    if (!m.mem_cbs_.empty()) {
      m.current_insn_pc_ = d.pc;
      m.fire_mem_cb(address, value, kSize, false);
    }
    if (!m.watchpoints_.empty()) m.check_watchpoints(address, kSize, false);
    m.cycles_ += result->mmio ? d.c_mmio : d.c_fall;
    m.cpu_.pc = d.link;
    return m.pending_stop_ ? O::kStop : O::kNext;
  }

  template <unsigned kSize>
  static O store(Machine& m, const DecodedInsn& d) {
    const u32 address = m.cpu_.read_gpr(d.rs1) + static_cast<u32>(d.imm);
    const u32 value = m.cpu_.read_gpr(d.rs2) &
                      (kSize == 4 ? ~u32{0} : (u32{1} << (8 * kSize)) - 1);
    const u32 offset = address - m.ram_base_;
    if (!m.mem_slow_ && offset <= m.ram_size_ - kSize) [[likely]] {
      u8* p = m.ram_data_ + offset;
      p[0] = static_cast<u8>(value);
      if constexpr (kSize >= 2) p[1] = static_cast<u8>(value >> 8);
      if constexpr (kSize == 4) {
        p[2] = static_cast<u8>(value >> 16);
        p[3] = static_cast<u8>(value >> 24);
      }
      // Inline dirty marking — must match Bus::RamRegion::mark_dirty
      // exactly or snapshot restores would miss pages.
      const u32 first_page = offset / kRamPageBytes;
      const u32 last_page = (offset + kSize - 1) / kRamPageBytes;
      m.ram_dirty_[first_page >> 6] |= u64{1} << (first_page & 63);
      if (last_page != first_page) {
        m.ram_dirty_[last_page >> 6] |= u64{1} << (last_page & 63);
      }
      if (m.reservations_active_ != 0) [[unlikely]] {
        m.clear_remote_reservations(address, kSize);
      }
      m.cycles_ += d.c_fall;
      if (m.tb_cache_.overlaps_code(address, kSize)) [[unlikely]] {
        // Self-modifying code: flush at the block boundary.
        m.tb_flush_pending_ = true;
        m.cpu_.pc = d.link;
        return O::kStop;
      }
      return O::kNext;
    }
    return slow_store<kSize>(m, d, address, value);
  }

  template <unsigned kSize>
  static O slow_store(Machine& m, const DecodedInsn& d, u32 address,
                      u32 value) {
    if (!m.bus_.is_ram(address, kSize)) m.bus_.tick(m.cycles_);
    auto result = m.bus_.write(address, kSize, value);
    if (!result.ok()) {
      m.cpu_.pc = d.pc;
      m.take_trap(kCauseStoreFault, address, false);
      m.cycles_ += d.c_taken;
      return O::kStop;
    }
    const bool mmio = *result;
    if (!mmio && m.reservations_active_ != 0) {
      m.clear_remote_reservations(address, kSize);
    }
    if (!m.mem_cbs_.empty()) {
      m.current_insn_pc_ = d.pc;
      m.fire_mem_cb(address, value, kSize, true);
    }
    if (!m.watchpoints_.empty()) m.check_watchpoints(address, kSize, true);
    if (!mmio && m.tb_cache_.overlaps_code(address, kSize)) {
      m.tb_flush_pending_ = true;
    }
    m.cycles_ += mmio ? d.c_mmio : d.c_fall;
    m.cpu_.pc = d.link;
    return (m.pending_stop_ || m.tb_flush_pending_) ? O::kStop : O::kNext;
  }

  static O csr_op(Machine& m, const DecodedInsn& d) {
    const CsrFile::CounterView counters = m.counter_view();
    const bool imm_form = d.op == Op::kCsrrwi || d.op == Op::kCsrrsi ||
                          d.op == Op::kCsrrci;
    const u32 operand =
        imm_form ? static_cast<u32>(d.rs2) : m.cpu_.read_gpr(d.rs1);
    const bool is_write_op = d.op == Op::kCsrrw || d.op == Op::kCsrrwi;
    const bool wants_read = !is_write_op || d.rd != 0;
    const bool wants_write =
        is_write_op || (imm_form ? d.rs2 != 0 : d.rs1 != 0);
    if (wants_read && d.csr == isa::kCsrMip && m.clint_ != nullptr) {
      // Keep MTIP exact at read time in every dispatch mode: the chained
      // engine ticks devices only at chain exits, and even the careful loop
      // previously refreshed mip only at block dispatch.
      m.clint_->tick(m.cycles_);
      if (m.clint_->timer_pending()) {
        m.cpu_.csr.mip |= kMipMtip;
      } else {
        m.cpu_.csr.mip &= ~kMipMtip;
      }
    }
    u32 old_value = 0;
    if (wants_read) {
      auto value = m.cpu_.csr.read(d.csr, counters);
      if (!value.ok()) {
        m.cpu_.pc = d.pc;
        m.take_trap(kCauseIllegalInstruction, d.raw, false);
        m.cycles_ += d.c_taken;
        return O::kStop;
      }
      old_value = *value;
    }
    if (wants_write) {
      u32 new_value = operand;
      if (d.op == Op::kCsrrs || d.op == Op::kCsrrsi) {
        new_value = old_value | operand;
      } else if (d.op == Op::kCsrrc || d.op == Op::kCsrrci) {
        new_value = old_value & ~operand;
      }
      if (!m.cpu_.csr.write(d.csr, new_value).ok()) {
        m.cpu_.pc = d.pc;
        m.take_trap(kCauseIllegalInstruction, d.raw, false);
        m.cycles_ += d.c_taken;
        return O::kStop;
      }
      // A write that may re-arm the timer interrupt must end the current
      // chain run so the fast-path gate re-evaluates.
      m.note_csr_written(d.csr);
    }
    m.cpu_.write_gpr(d.rd, old_value);
    m.cycles_ += d.c_fall;
    return O::kNext;
  }

  static O ecall(Machine& m, const DecodedInsn& d) {
    m.cpu_.pc = d.pc;
    // Semihosting exit convention: a7 = 93, a0 = exit code.
    if (m.cpu_.read_gpr(17) == 93) {
      m.pending_stop_ = Machine::PendingStop{StopReason::kExitEcall,
                                    static_cast<int>(m.cpu_.read_gpr(10)), 0,
                                    ""};
      // No redirect penalty: the simulation ends here rather than
      // redirecting the front-end (keeps the QTA timeline chain exact).
      m.cycles_ += d.c_fall;
      return O::kStop;
    }
    m.take_trap(kCauseEcallM, 0, false);
    m.cycles_ += d.c_taken;
    return O::kStop;
  }

  static O ebreak(Machine& m, const DecodedInsn& d) {
    m.cpu_.pc = d.pc;
    m.take_trap(kCauseBreakpoint, d.pc, false);
    m.cycles_ += d.c_taken;
    return O::kStop;
  }

  static O mret(Machine& m, const DecodedInsn& d) {
    CsrFile& csr = m.cpu_.csr;
    const u32 target = csr.mepc;
    const bool mpie = (csr.mstatus & kMstatusMpie) != 0;
    csr.mstatus &= ~kMstatusMie;
    if (mpie) csr.mstatus |= kMstatusMie;
    csr.mstatus |= kMstatusMpie;
    m.cycles_ += d.c_taken;
    m.cpu_.pc = target;
    // mret restores MIE, which can arm a pending interrupt: re-evaluate the
    // fast-path gate at the next central dispatch.
    m.chain_epoch_recheck_ = true;
    return O::kTakenIndirect;
  }

  static O wfi(Machine& m, const DecodedInsn& d) {
    if (m.num_harts_ > 1) {
      // SMP: never fast-forward time (other harts are runnable) and never
      // halt the whole machine — yield the rest of the slice and re-check
      // this hart's interrupts when it is scheduled again. A machine where
      // every hart spins in wfi makes icount progress each visit, so the
      // instruction budget still bounds it (the hang detector).
      m.cycles_ += d.c_fall;
      m.slice_end_ = m.icount_;
      m.chain_epoch_recheck_ = true;
      return O::kNext;
    }
    if ((m.cpu_.csr.mie & kMieMtie) != 0 && m.clint_ != nullptr &&
        m.clint_->mtimecmp() != ~u64{0}) {
      // Sleep until the timer fires: fast-forward modelled time.
      if (m.cycles_ < m.clint_->mtimecmp()) m.cycles_ = m.clint_->mtimecmp();
      m.cycles_ += d.c_fall;
      return O::kNext;
    }
    m.cpu_.pc = d.pc;
    m.pending_stop_ = Machine::PendingStop{StopReason::kWfiHalt, 0, 0,
                                  "wfi with timer interrupt disabled"};
    m.cycles_ += d.c_taken;
    return O::kStop;
  }

  // --- RV32A. Atomics operate on the primary RAM window only (reservations
  // and read-modify-write on device registers are not modelled): a non-RAM
  // target raises the load/store access fault the equivalent plain access
  // would, a misaligned one the address-misaligned trap the A extension
  // mandates. The handlers access RAM directly even when mem_slow_ is set,
  // so they fire memory callbacks and watchpoint checks themselves.

  static O lr_w(Machine& m, const DecodedInsn& d) {
    const u32 address = m.cpu_.read_gpr(d.rs1);
    if ((address & 3) != 0) [[unlikely]] {
      m.cpu_.pc = d.pc;
      m.take_trap(kCauseLoadMisaligned, address, false);
      m.cycles_ += d.c_taken;
      return O::kStop;
    }
    const u32 offset = address - m.ram_base_;
    if (offset > m.ram_size_ - 4) [[unlikely]] {
      m.cpu_.pc = d.pc;
      m.take_trap(kCauseLoadFault, address, false);
      m.cycles_ += d.c_taken;
      return O::kStop;
    }
    const u8* p = m.ram_data_ + offset;
    const u32 value = static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
                      (static_cast<u32>(p[2]) << 16) |
                      (static_cast<u32>(p[3]) << 24);
    m.cpu_.write_gpr(d.rd, value);
    Hart& hart = m.harts_[m.active_hart_];
    if (!hart.res_valid) ++m.reservations_active_;
    hart.res_valid = true;
    hart.res_addr = address;
    if (m.mem_slow_) [[unlikely]] {
      if (!m.mem_cbs_.empty()) {
        m.current_insn_pc_ = d.pc;
        m.fire_mem_cb(address, value, 4, false);
      }
      if (!m.watchpoints_.empty()) m.check_watchpoints(address, 4, false);
    }
    m.cycles_ += d.c_fall;
    m.cpu_.pc = d.link;
    return m.pending_stop_ ? O::kStop : O::kNext;
  }

  static O sc_w(Machine& m, const DecodedInsn& d) {
    const u32 address = m.cpu_.read_gpr(d.rs1);
    if ((address & 3) != 0) [[unlikely]] {
      m.cpu_.pc = d.pc;
      m.take_trap(kCauseStoreMisaligned, address, false);
      m.cycles_ += d.c_taken;
      return O::kStop;
    }
    const u32 offset = address - m.ram_base_;
    if (offset > m.ram_size_ - 4) [[unlikely]] {
      m.cpu_.pc = d.pc;
      m.take_trap(kCauseStoreFault, address, false);
      m.cycles_ += d.c_taken;
      return O::kStop;
    }
    // SC consumes this hart's reservation whether or not it succeeds.
    Hart& hart = m.harts_[m.active_hart_];
    const bool success = hart.res_valid && hart.res_addr == address;
    if (hart.res_valid) {
      hart.res_valid = false;
      --m.reservations_active_;
    }
    if (!success) {
      m.cpu_.write_gpr(d.rd, 1);
      m.cycles_ += d.c_fall;
      return O::kNext;
    }
    const u32 value = m.cpu_.read_gpr(d.rs2);
    u8* p = m.ram_data_ + offset;
    p[0] = static_cast<u8>(value);
    p[1] = static_cast<u8>(value >> 8);
    p[2] = static_cast<u8>(value >> 16);
    p[3] = static_cast<u8>(value >> 24);
    const u32 page = offset / kRamPageBytes;
    m.ram_dirty_[page >> 6] |= u64{1} << (page & 63);
    if (m.reservations_active_ != 0) [[unlikely]] {
      m.clear_remote_reservations(address, 4);
    }
    m.cpu_.write_gpr(d.rd, 0);
    if (m.mem_slow_) [[unlikely]] {
      if (!m.mem_cbs_.empty()) {
        m.current_insn_pc_ = d.pc;
        m.fire_mem_cb(address, value, 4, true);
      }
      if (!m.watchpoints_.empty()) m.check_watchpoints(address, 4, true);
    }
    m.cycles_ += d.c_fall;
    if (m.tb_cache_.overlaps_code(address, 4)) [[unlikely]] {
      m.tb_flush_pending_ = true;
      m.cpu_.pc = d.link;
      return O::kStop;
    }
    m.cpu_.pc = d.link;
    return m.pending_stop_ ? O::kStop : O::kNext;
  }

  template <typename OpF>
  static O amo_w(Machine& m, const DecodedInsn& d) {
    const u32 address = m.cpu_.read_gpr(d.rs1);
    if ((address & 3) != 0) [[unlikely]] {
      m.cpu_.pc = d.pc;
      m.take_trap(kCauseStoreMisaligned, address, false);
      m.cycles_ += d.c_taken;
      return O::kStop;
    }
    const u32 offset = address - m.ram_base_;
    if (offset > m.ram_size_ - 4) [[unlikely]] {
      m.cpu_.pc = d.pc;
      m.take_trap(kCauseStoreFault, address, false);
      m.cycles_ += d.c_taken;
      return O::kStop;
    }
    u8* p = m.ram_data_ + offset;
    const u32 old = static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
                    (static_cast<u32>(p[2]) << 16) |
                    (static_cast<u32>(p[3]) << 24);
    const u32 next = OpF::eval(old, m.cpu_.read_gpr(d.rs2));
    p[0] = static_cast<u8>(next);
    p[1] = static_cast<u8>(next >> 8);
    p[2] = static_cast<u8>(next >> 16);
    p[3] = static_cast<u8>(next >> 24);
    const u32 page = offset / kRamPageBytes;
    m.ram_dirty_[page >> 6] |= u64{1} << (page & 63);
    if (m.reservations_active_ != 0) [[unlikely]] {
      m.clear_remote_reservations(address, 4);
    }
    m.cpu_.write_gpr(d.rd, old);
    if (m.mem_slow_) [[unlikely]] {
      if (!m.mem_cbs_.empty()) {
        m.current_insn_pc_ = d.pc;
        m.fire_mem_cb(address, old, 4, false);   // the read half
        m.fire_mem_cb(address, next, 4, true);   // the write half
      }
      if (!m.watchpoints_.empty()) {
        m.check_watchpoints(address, 4, true);
        if (!m.pending_stop_) m.check_watchpoints(address, 4, false);
      }
    }
    m.cycles_ += d.c_fall;
    if (m.tb_cache_.overlaps_code(address, 4)) [[unlikely]] {
      m.tb_flush_pending_ = true;
      m.cpu_.pc = d.link;
      return O::kStop;
    }
    m.cpu_.pc = d.link;
    return m.pending_stop_ ? O::kStop : O::kNext;
  }

  template <typename Cmp>
  static ExecHandler pick_branch(bool predictor, int mode) {
    switch (mode) {
      case 1:
        return predictor ? &branch<Cmp, true, 1> : &branch<Cmp, false, 1>;
      case 2:
        return predictor ? &branch<Cmp, true, 2> : &branch<Cmp, false, 2>;
      default:
        return predictor ? &branch<Cmp, true, 0> : &branch<Cmp, false, 0>;
    }
  }

  static ExecHandler branch_variant(Op op, bool predictor, int mode) {
    switch (op) {
      case Op::kBeq: return pick_branch<CmpEq>(predictor, mode);
      case Op::kBne: return pick_branch<CmpNe>(predictor, mode);
      case Op::kBlt: return pick_branch<CmpLt>(predictor, mode);
      case Op::kBge: return pick_branch<CmpGe>(predictor, mode);
      case Op::kBltu: return pick_branch<CmpLtu>(predictor, mode);
      case Op::kBgeu: return pick_branch<CmpGeu>(predictor, mode);
      default: return nullptr;
    }
  }

  static ExecHandler select(const Instr& in, bool predictor) {
    switch (in.op) {
      case Op::kLui: return &lui;
      case Op::kAuipc: return &auipc;
      case Op::kJal: return &jal;
      case Op::kJalr: return &jalr;
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
      case Op::kBltu:
      case Op::kBgeu: return branch_variant(in.op, predictor, 0);
      case Op::kLb: return &load<1, 8>;
      case Op::kLh: return &load<2, 16>;
      case Op::kLw: return &load<4, 0>;
      case Op::kLbu: return &load<1, 0>;
      case Op::kLhu: return &load<2, 0>;
      case Op::kSb: return &store<1>;
      case Op::kSh: return &store<2>;
      case Op::kSw: return &store<4>;
      case Op::kAddi: return &addi;
      case Op::kSlti: return &slti;
      case Op::kSltiu: return &sltiu;
      case Op::kXori: return &xori;
      case Op::kOri: return &ori;
      case Op::kAndi: return &andi;
      case Op::kSlli: return &slli;
      case Op::kSrli: return &srli;
      case Op::kSrai: return &srai;
      case Op::kAdd: return &add;
      case Op::kSub: return &sub;
      case Op::kSll: return &sll;
      case Op::kSlt: return &slt;
      case Op::kSltu: return &sltu;
      case Op::kXor: return &xor_;
      case Op::kSrl: return &srl;
      case Op::kSra: return &sra;
      case Op::kOr: return &or_;
      case Op::kAnd: return &and_;
      case Op::kFence: return &fence;
      case Op::kEcall: return &ecall;
      case Op::kEbreak: return &ebreak;
      case Op::kMul: return &mul;
      case Op::kMulh: return &mulh;
      case Op::kMulhsu: return &mulhsu;
      case Op::kMulhu: return &mulhu;
      case Op::kDiv: return &div_;
      case Op::kDivu: return &divu;
      case Op::kRem: return &rem;
      case Op::kRemu: return &remu;
      case Op::kCsrrw:
      case Op::kCsrrs:
      case Op::kCsrrc:
      case Op::kCsrrwi:
      case Op::kCsrrsi:
      case Op::kCsrrci: return &csr_op;
      case Op::kMret: return &mret;
      case Op::kWfi: return &wfi;
      case Op::kLrW: return &lr_w;
      case Op::kScW: return &sc_w;
      case Op::kAmoswapW: return &amo_w<AmoSwap>;
      case Op::kAmoaddW: return &amo_w<AmoAdd>;
      case Op::kAmoxorW: return &amo_w<AmoXor>;
      case Op::kAmoorW: return &amo_w<AmoOr>;
      case Op::kAmoandW: return &amo_w<AmoAnd>;
      case Op::kAmominW: return &amo_w<AmoMin>;
      case Op::kAmomaxW: return &amo_w<AmoMax>;
      case Op::kAmominuW: return &amo_w<AmoMinu>;
      case Op::kAmomaxuW: return &amo_w<AmoMaxu>;
      case Op::kCount: break;
    }
    S4E_CHECK_MSG(false, "invalid Op in translated block");
    return nullptr;
  }
};

s4e_insn_info Machine::to_insn_info(const DecodedInsn& decoded) {
  s4e_insn_info info{};
  info.address = decoded.pc;
  info.encoding = decoded.raw;
  info.op = static_cast<u16>(decoded.op);
  info.op_class = static_cast<u8>(isa::op_info(decoded.op).op_class);
  info.rd = decoded.rd;
  info.rs1 = decoded.rs1;
  info.rs2 = decoded.rs2;
  info.csr = decoded.csr;
  info.imm = decoded.imm;
  return info;
}

void Machine::lower_block(TranslationBlock& block) {
  const TimingParams& params = timing_.params();
  const bool predictor = params.branch_predictor;
  block.code.clear();
  block.code.reserve(block.insns.size());
  u32 pc = block.start;
  for (const Instr& in : block.insns) {
    DecodedInsn d;
    d.pc = pc;
    d.link = pc + in.length;
    d.imm = in.imm;
    d.target = pc + static_cast<u32>(in.imm);
    d.raw = in.raw;
    d.csr = in.csr;
    d.op = in.op;
    d.rd = in.rd;
    d.rs1 = in.rs1;
    d.rs2 = in.rs2;
    d.length = in.length;
    if (in.info().op_class == isa::OpClass::kDiv) {
      // Divides charge base + divide_cycles(rs1) in the handler (the
      // operand-dependent part cannot be precomputed).
      d.c_fall = params.base_cycles;
      d.c_taken = params.base_cycles;
      d.c_mmio = params.base_cycles;
    } else {
      d.c_fall = timing_.dynamic_cycles(in, false, 0, 0, false);
      d.c_taken = timing_.dynamic_cycles(in, true, 0, 0, false);
      d.c_mmio = timing_.dynamic_cycles(in, false, 0, 0, true);
    }
    d.fn = ExecOps::select(in, predictor);
    block.code.push_back(d);
    pc = d.link;
  }
  block.fall_pc = block.start + block.byte_size;
  block.taken_pc = 0;
  if (!block.insns.empty()) {
    const Instr& last = block.insns.back();
    if (last.is_branch() || last.op == Op::kJal) {
      block.taken_pc = block.code.back().target;
    }
  }
}

Machine::BlockExit Machine::exec_block_fast(TranslationBlock* tb) {
  const DecodedInsn* d = tb->code.data();
  const DecodedInsn* const end = d + tb->code.size();
  for (;;) {
    ++icount_;
    const ExecOutcome out = d->fn(*this, *d);
    if (static_cast<u8>(out) <=
        static_cast<u8>(ExecOutcome::kNextSpliced)) [[likely]] {
      if (++d != end) continue;
      cpu_.pc = tb->fall_pc;
      return BlockExit::kFall;
    }
    switch (out) {
      case ExecOutcome::kTakenStatic: return BlockExit::kTaken;
      case ExecOutcome::kTakenIndirect: return BlockExit::kIndirect;
      case ExecOutcome::kSideExit: return BlockExit::kSide;
      default: return BlockExit::kStopped;
    }
  }
}

void Machine::exec_insns_careful(TranslationBlock* tb, u64 limit) {
  const bool have_insn_cbs = !insn_exec_cbs_.empty();
  s4e_vm* vm = vm_handle_.get();
  for (const DecodedInsn& d : tb->code) {
    if (icount_ >= limit) break;
    if (have_insn_cbs) {
      const s4e_insn_info info = to_insn_info(d);
      for (const auto& reg : insn_exec_cbs_) {
        reg.callback(reg.userdata, vm, &info);
      }
    }
    ++icount_;
    const ExecOutcome out = d.fn(*this, d);
    if (out == ExecOutcome::kNext) {
      cpu_.pc = d.link;
    } else if (out != ExecOutcome::kNextSpliced) {
      break;  // redirect or stop: the block ends here
    }
    if (pending_stop_ || tb_flush_pending_) break;
  }
}

TranslationBlock* Machine::lookup_or_translate(u32 pc) {
  TranslationBlock* tb = tb_cache_.lookup(pc);
  if (tb == nullptr) tb = translate(pc);
  return tb;
}

void Machine::run_block_careful(u64 limit) {
  const u32 block_pc = cpu_.pc;
  TranslationBlock* tb =
      config_.enable_tb_cache ? tb_cache_.lookup(block_pc) : nullptr;
  if (tb == nullptr) tb = translate(block_pc);
  if (tb == nullptr) return;  // trap was taken (or a stop is pending)

  ++tb->exec_count;
  ++estats_.blocks_careful;
  probe_icache(block_pc);
  if (!tb_exec_cbs_.empty()) {
    s4e_vm* vm = vm_handle_.get();
    for (const auto& reg : tb_exec_cbs_) {
      reg.callback(reg.userdata, vm, block_pc);
    }
  }
  exec_insns_careful(tb, limit);
}

bool Machine::fast_path_ok() const noexcept {
  // The chained fast path is taken only when nothing needs per-instruction
  // or per-block observability: no debug state, no exec/mem plugin
  // callbacks (tb_trans is fine — translations fire identically in both
  // modes), and no armed timer/software interrupt (delivery is checked per
  // block in careful mode; chaining would defer it by up to a quantum).
  return config_.enable_tb_cache && !debug_check_ && insn_exec_cbs_.empty() &&
         tb_exec_cbs_.empty() && mem_cbs_.empty() &&
         !(clint_ != nullptr &&
           (cpu_.csr.mie & (kMieMtie | kMieMsie)) != 0);
}

TranslationBlock* Machine::maybe_form_superblock(TranslationBlock* src,
                                                 BlockExit ex,
                                                 TranslationBlock* dst) {
  if (!config_.enable_superblocks) return dst;
  // The icache model charges one probe per dispatched block; splicing would
  // skip interior probes and change modelled cycles, so superblocks form
  // only with the icache model off.
  if (icache_.enabled()) return dst;
  if (src->code.empty() || dst->code.empty()) return dst;
  if (src->code.size() + dst->code.size() > kMaxSuperblockInsns) return dst;

  const DecodedInsn& terminator = src->code.back();
  const bool predictor = timing_.params().branch_predictor;
  const bool terminator_is_branch =
      isa::op_info(terminator.op).op_class == isa::OpClass::kBranch;
  ExecHandler spliced_fn = nullptr;
  if (ex == BlockExit::kTaken) {
    if (terminator.op == Op::kJal) {
      spliced_fn = &ExecOps::jal_spliced;
    } else if (terminator_is_branch) {
      spliced_fn = ExecOps::branch_variant(terminator.op, predictor, 2);
    }
    if (spliced_fn == nullptr) return dst;
  } else {  // BlockExit::kFall
    // WFI must stay a block end (interrupt delivery at the boundary).
    if (terminator.op == Op::kWfi) return dst;
    if (terminator_is_branch) {
      spliced_fn = ExecOps::branch_variant(terminator.op, predictor, 1);
      if (spliced_fn == nullptr) return dst;
    }
    // Any other fall-through terminator keeps its handler and flows on.
  }

  auto sb = std::make_unique<TranslationBlock>();
  sb->start = src->start;
  sb->byte_size = src->byte_size;  // entry span; full extent in `ranges`
  sb->is_superblock = true;
  sb->fall_pc = dst->fall_pc;
  sb->taken_pc = dst->taken_pc;
  sb->code = src->code;
  if (spliced_fn != nullptr) sb->code.back().fn = spliced_fn;
  sb->code.insert(sb->code.end(), dst->code.begin(), dst->code.end());
  const auto append_ranges = [&sb](const TranslationBlock* block) {
    if (block->is_superblock) {
      sb->ranges.insert(sb->ranges.end(), block->ranges.begin(),
                        block->ranges.end());
    } else {
      sb->ranges.emplace_back(block->start, block->byte_size);
    }
  };
  append_ranges(src);
  append_ranges(dst);
  ++estats_.superblocks_formed;
  tb_cache_.install_superblock(std::move(sb));
  return nullptr;  // epoch bumped; the caller re-dispatches centrally
}

void Machine::run_chain(u64 limit) {
  const u64 epoch = tb_cache_.chain_epoch();
  const u64 quantum_end =
      std::min(limit, saturating_add(icount_, kChainQuantum));
  TranslationBlock* tb = lookup_or_translate(cpu_.pc);
  if (tb == nullptr) return;  // fetch trap taken (or a stop is pending)
  if (tb->superblock != nullptr) tb = tb->superblock;

  for (;;) {
    if (icount_ >= quantum_end) return;  // epoch due
    if (tb->code.size() > quantum_end - icount_) {
      if (quantum_end == limit) {
        // The instruction budget ends inside this block: execute it with
        // exact per-instruction limit semantics (at least one instruction
        // runs, so exec_count stays truthful).
        ++tb->exec_count;
        ++estats_.blocks_careful;
        probe_icache(tb->start);
        exec_insns_careful(tb, limit);
      }
      return;  // otherwise: quantum boundary — epoch work, then resume
    }

    ++tb->exec_count;
    ++estats_.blocks_fast;
    if (icache_.enabled()) probe_icache(tb->start);
    const BlockExit ex = exec_block_fast(tb);
    if (ex == BlockExit::kStopped || ex == BlockExit::kSide) return;
    if (tb_flush_pending_ || chain_epoch_recheck_) return;
    if (!config_.enable_chaining) return;  // ablation: per-block dispatch

    TranslationBlock* next = nullptr;
    if (ex == BlockExit::kIndirect) {
      const u32 next_pc = cpu_.pc;
      auto& jc = tb->jc;
      if (jc[0].target != nullptr && jc[0].pc == next_pc &&
          jc[0].epoch == epoch) {
        next = jc[0].target;
        ++estats_.jump_cache_hits;
      } else if (jc[1].target != nullptr && jc[1].pc == next_pc &&
                 jc[1].epoch == epoch) {
        std::swap(jc[0], jc[1]);  // MRU first
        next = jc[0].target;
        ++estats_.jump_cache_hits;
      } else {
        ++estats_.jump_cache_misses;
        next = lookup_or_translate(next_pc);
        if (next == nullptr || tb_flush_pending_) return;
        if (next->superblock != nullptr) next = next->superblock;
        jc[1] = jc[0];
        jc[0] = {next_pc, next, epoch};
      }
    } else {
      ChainSlot& slot =
          ex == BlockExit::kFall ? tb->chain_fall : tb->chain_taken;
      if (slot.target != nullptr && slot.epoch == epoch) {
        next = slot.target;
        ++estats_.chain_follows;
        if (++slot.hot == kSuperblockHotThreshold) {
          next = maybe_form_superblock(tb, ex, next);
          if (next == nullptr) return;  // superblock installed: epoch bumped
        }
      } else {
        next = lookup_or_translate(cpu_.pc);
        if (next == nullptr || tb_flush_pending_) return;
        if (next->superblock != nullptr) next = next->superblock;
        slot = ChainSlot{next, epoch, 0};
        ++estats_.chain_patches;
      }
    }
    tb = next;
  }
}

RunResult Machine::run() {
  const u64 remaining = config_.max_instructions > icount_
                            ? config_.max_instructions - icount_
                            : 0;
  return run(remaining);
}

RunResult Machine::run(u64 max_insns) {
  return run_loop(max_insns, StopReason::kMaxInstructions);
}

RunResult Machine::step() { return run_loop(1, StopReason::kDebugStep); }

RunResult Machine::run_slice(u64 max_insns) {
  return run_loop(max_insns, StopReason::kDebugSlice);
}

RunResult Machine::run_loop(u64 max_insns, StopReason budget_reason) {
  const bool stepping = budget_reason == StopReason::kDebugStep;
  // Saturate: run(UINT64_MAX) on a warm machine means "no further bound",
  // not a wrapped limit below icount_ that stops the VM instantly.
  const u64 limit = saturating_add(icount_, max_insns);
  while (!pending_stop_) {
    if (icount_ >= limit) {
      if (budget_reason == StopReason::kMaxInstructions) {
        pending_stop_ = PendingStop{StopReason::kMaxInstructions, -1, 0,
                                    "instruction budget exhausted"};
      } else {
        pending_stop_ = PendingStop{budget_reason, 0, 0, ""};
      }
      break;
    }
    // SMP slice rotation: a fixed instruction quantum on the single global
    // icount timeline makes the interleaving deterministic. The dispatch
    // below is capped at slice_end_, so the active hart lands here exactly
    // when its slice expires (run_chain/exec_insns_careful honour an exact
    // per-instruction limit and always make >= 1 instruction of progress).
    if (smp_ && icount_ >= slice_end_) rotate_hart();
    if (debug_check_) {
      if (debug_stop_request_) {
        debug_stop_request_ = false;
        update_debug_check();
        pending_stop_ = PendingStop{StopReason::kDebugInterrupt, 0, 0, "",
                                    cpu_.pc};
        break;
      }
      // Stop *before* executing a breakpointed instruction — except while
      // stepping, which is how the stub resumes off a breakpoint.
      if (!stepping && breakpoints_.count(cpu_.pc) != 0) {
        pending_stop_ = PendingStop{StopReason::kDebugBreak, 0, 0, "",
                                    cpu_.pc};
        break;
      }
    }
    bus_.tick(cycles_);
    check_interrupts();
    if (pending_stop_) break;
    if (tb_flush_pending_) {
      // Requested from a plugin callback (or a self-modifying store) while
      // the previous block was executing; apply at the block boundary.
      tb_flush_pending_ = false;
      tb_cache_.flush();
    }

    const u64 dispatch_limit = smp_ ? std::min(limit, slice_end_) : limit;
    if (fast_path_ok()) {
      chain_epoch_recheck_ = false;
      run_chain(dispatch_limit);
    } else {
      run_block_careful(dispatch_limit);
    }
    if (tb_flush_pending_) {
      tb_flush_pending_ = false;
      tb_cache_.flush();
    }
  }

  RunResult result;
  result.reason = pending_stop_->reason;
  result.exit_code = pending_stop_->exit_code;
  result.trap_cause = pending_stop_->trap_cause;
  result.detail = pending_stop_->detail;
  result.debug_addr = pending_stop_->debug_addr;
  result.watch_kind = pending_stop_->watch_kind;
  result.instructions = icount_;
  result.cycles = cycles_;
  result.final_pc = cpu_.pc;
  result.hart = active_hart_;
  if (!result.debug_stop()) {
    // Debugger stops are pauses, not ends: exit plugins (trace exit line,
    // flight-recorder dump) fire once, when the program actually stops.
    for (const auto& reg : exit_cbs_) {
      reg.callback(reg.userdata, vm_handle(), result.exit_code);
    }
  }
  pending_stop_.reset();
  return result;
}

u64 Machine::add_tb_trans_cb(s4e_tb_trans_cb cb, void* userdata) {
  tb_trans_cbs_.push_back({cb, userdata});
  return tb_trans_cbs_.size();
}
u64 Machine::add_tb_exec_cb(s4e_tb_exec_cb cb, void* userdata) {
  tb_exec_cbs_.push_back({cb, userdata});
  return tb_exec_cbs_.size();
}
u64 Machine::add_insn_exec_cb(s4e_insn_exec_cb cb, void* userdata) {
  insn_exec_cbs_.push_back({cb, userdata});
  return insn_exec_cbs_.size();
}
u64 Machine::add_mem_cb(s4e_mem_cb cb, void* userdata) {
  mem_cbs_.push_back({cb, userdata});
  update_mem_slow();
  return mem_cbs_.size();
}
u64 Machine::add_trap_cb(s4e_trap_cb cb, void* userdata) {
  trap_cbs_.push_back({cb, userdata});
  return trap_cbs_.size();
}
u64 Machine::add_exit_cb(s4e_exit_cb cb, void* userdata) {
  exit_cbs_.push_back({cb, userdata});
  return exit_cbs_.size();
}

void Machine::request_exit(int exit_code) noexcept {
  if (!pending_stop_) {
    pending_stop_ =
        PendingStop{StopReason::kExitRequested, exit_code, 0, ""};
  }
}

}  // namespace s4e::vp
