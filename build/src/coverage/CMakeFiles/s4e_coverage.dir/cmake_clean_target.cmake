file(REMOVE_RECURSE
  "libs4e_coverage.a"
)
