// Hex encode/decode helpers shared by the GDB RSP codec, the JSONL trace
// writer and the report formatters. All lowercase, no allocations on the
// nibble-level primitives.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bits.hpp"

namespace s4e {

// Low nibble -> lowercase hex character.
constexpr char hex_digit(unsigned nibble) {
  return "0123456789abcdef"[nibble & 0xF];
}

// Hex character -> value, or -1 when `c` is not a hex digit.
constexpr int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Byte buffer -> hex string ("ab01..."), two characters per byte.
inline std::string to_hex(const void* data, std::size_t size) {
  const u8* bytes = static_cast<const u8*>(data);
  std::string out;
  out.reserve(size * 2);
  for (std::size_t i = 0; i < size; ++i) {
    out.push_back(hex_digit(bytes[i] >> 4));
    out.push_back(hex_digit(bytes[i]));
  }
  return out;
}

// Hex string -> byte buffer. Fails (nullopt) on odd length or a non-hex
// character.
inline std::optional<std::vector<u8>> from_hex(std::string_view text) {
  if (text.size() % 2 != 0) return std::nullopt;
  std::vector<u8> out;
  out.reserve(text.size() / 2);
  for (std::size_t i = 0; i < text.size(); i += 2) {
    const int hi = hex_value(text[i]);
    const int lo = hex_value(text[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<u8>((hi << 4) | lo));
  }
  return out;
}

// 32-bit value -> 8 fixed-width hex digits, most significant first
// ("deadbeef"); the common "0x%08x" body.
inline std::string hex32(u32 value) {
  std::string out(8, '0');
  for (unsigned i = 0; i < 8; ++i) {
    out[7 - i] = hex_digit(value >> (4 * i));
  }
  return out;
}

// 32-bit value -> 8 hex digits in *little-endian byte order*
// (0x12345678 -> "78563412"): the GDB remote-protocol register wire format
// for a little-endian RV32 target.
inline std::string hex32_le(u32 value) {
  std::string out;
  out.reserve(8);
  for (unsigned byte = 0; byte < 4; ++byte) {
    const u8 b = static_cast<u8>(value >> (8 * byte));
    out.push_back(hex_digit(b >> 4));
    out.push_back(hex_digit(b));
  }
  return out;
}

// Parse 8 little-endian-byte-order hex digits back into a u32.
inline std::optional<u32> parse_hex32_le(std::string_view text) {
  if (text.size() != 8) return std::nullopt;
  u32 value = 0;
  for (unsigned byte = 0; byte < 4; ++byte) {
    const int hi = hex_value(text[2 * byte]);
    const int lo = hex_value(text[2 * byte + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    value |= static_cast<u32>((hi << 4) | lo) << (8 * byte);
  }
  return value;
}

// Parse an unsigned big-endian hex number ("80001234"), as used by RSP
// addresses, lengths and register indices. Fails on empty input, a non-hex
// character, or overflow past 64 bits.
inline std::optional<u64> parse_hex(std::string_view text) {
  if (text.empty() || text.size() > 16) return std::nullopt;
  u64 value = 0;
  for (char c : text) {
    const int nibble = hex_value(c);
    if (nibble < 0) return std::nullopt;
    value = (value << 4) | static_cast<u64>(nibble);
  }
  return value;
}

}  // namespace s4e
