// s4e-qta — the QEMU Timing Analyzer reproduction as a standalone tool:
// load a binary *and* its WCET-annotated CFG (from s4e-wcet, the ait2qta
// stand-in) and co-simulate them, reporting the three ordered timelines.
//
//   s4e-qta file.elf file.qtacfg [--uart-input S]
#include <cstdio>

#include "elf/elf32.hpp"
#include "qta/qta.hpp"
#include "tools/tool_util.hpp"
#include "vp/machine.hpp"

int main(int argc, char** argv) {
  using namespace s4e;
  static constexpr char kUsage[] =
      "usage: s4e-qta <file.elf> <file.qtacfg> [--uart-input S]\n";
  tools::Args args(argc, argv, {"--uart-input"});
  if (const int code = tools::standard_flags(args, "s4e-qta", kUsage);
      code >= 0) {
    return code;
  }
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  auto program = elf::read_elf_file(args.positional()[0]);
  if (!program.ok()) {
    std::fprintf(stderr, "s4e-qta: %s\n", program.error().to_string().c_str());
    return 1;
  }
  auto cfg_text = tools::read_file(args.positional()[1]);
  if (!cfg_text.ok()) {
    std::fprintf(stderr, "s4e-qta: %s\n",
                 cfg_text.error().to_string().c_str());
    return 1;
  }
  auto annotated = wcet::AnnotatedCfg::parse(*cfg_text);
  if (!annotated.ok()) {
    std::fprintf(stderr, "s4e-qta: %s\n",
                 annotated.error().to_string().c_str());
    return 1;
  }
  if (annotated->entry != program->entry) {
    std::fprintf(stderr,
                 "s4e-qta: annotated CFG entry 0x%08x does not match ELF "
                 "entry 0x%08x\n",
                 annotated->entry, program->entry);
    return 1;
  }

  vp::Machine machine;
  if (auto status = machine.load_program(*program); !status.ok()) {
    std::fprintf(stderr, "s4e-qta: %s\n", status.to_string().c_str());
    return 1;
  }
  if (args.has("--uart-input")) {
    machine.uart()->push_rx(args.value("--uart-input"));
  }
  qta::QtaPlugin plugin(*annotated);
  plugin.attach(machine.vm_handle());

  const vp::RunResult result = machine.run();
  std::printf("run: reason=%s exit=%d, %llu instructions\n",
              std::string(vp::to_string(result.reason)).c_str(),
              result.exit_code,
              static_cast<unsigned long long>(result.instructions));
  const qta::QtaReport report = plugin.report(result.cycles);
  std::printf("%s", report.to_string().c_str());
  return tools::finish_stdout("s4e-qta", report.bound_violated ? 1 : 0);
}
