#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "common/rng.hpp"
#include "vp/machine.hpp"
#include "vp/plugin.hpp"

namespace s4e::vp {
namespace {

using assembler::assemble;

// Assemble, load and run `source`; returns the result.
RunResult run_source(Machine& machine, std::string_view source) {
  auto program = assemble(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().to_string());
  EXPECT_TRUE(machine.load_program(*program).ok());
  return machine.run();
}

RunResult run_source(std::string_view source) {
  Machine machine;
  return run_source(machine, source);
}

// Exit idiom that leaves a0..a6 untouched (tests inspect registers after
// the run; the exit code is then whatever a0 happens to hold).
constexpr const char* kExit0 = R"(
    li a7, 93
    ecall
)";

TEST(Machine, EcallExit) {
  auto result = run_source(R"(
    li a7, 93
    li a0, 17
    ecall
  )");
  EXPECT_EQ(result.reason, StopReason::kExitEcall);
  EXPECT_EQ(result.exit_code, 17);
  EXPECT_EQ(result.instructions, 3u);
}

TEST(Machine, TestDeviceExit) {
  auto result = run_source(R"(
    li t0, 0x100000
    li t1, 0x5555
    sw t1, 0(t0)
  )");
  EXPECT_EQ(result.reason, StopReason::kExitTestDevice);
  EXPECT_EQ(result.exit_code, 0);
}

TEST(Machine, TestDeviceFailCode) {
  auto result = run_source(R"(
    li t0, 0x100000
    li t1, (7 << 16) + 0x3333
    sw t1, 0(t0)
  )");
  EXPECT_EQ(result.reason, StopReason::kExitTestDevice);
  EXPECT_EQ(result.exit_code, 7);
}

TEST(Machine, ArithmeticLoop) {
  Machine machine;
  auto result = run_source(machine, R"(
    li a0, 0
    li t0, 10
loop:
    add a0, a0, t0
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    ecall
  )");
  EXPECT_EQ(result.reason, StopReason::kExitEcall);
  EXPECT_EQ(result.exit_code, 55);  // 10+9+...+1
}

TEST(Machine, MemoryReadWrite) {
  Machine machine;
  auto result = run_source(machine, R"(
    la t0, buffer
    li t1, 0xabcd
    sw t1, 0(t0)
    lw a0, 0(t0)
    li a7, 93
    ecall
.data
buffer:
    .space 16
  )");
  EXPECT_EQ(result.exit_code, 0xabcd);
}

TEST(Machine, SignExtendingLoads) {
  Machine machine;
  auto result = run_source(machine, R"(
    la t0, bytes
    lb a0, 0(t0)     # 0xff -> -1
    lbu a1, 0(t0)    # 0xff -> 255
    lh a2, 0(t0)     # 0x80ff -> sign-extended
    lhu a3, 0(t0)
    add a0, a0, a1   # -1 + 255 = 254
    li a7, 93
    mv a0, a0
    ecall
.data
bytes:
    .half 0x80ff
  )");
  EXPECT_EQ(result.exit_code, 254);
  EXPECT_EQ(machine.cpu().read_gpr(12), 0xffff80ffu);  // a2 sign-extended
  EXPECT_EQ(machine.cpu().read_gpr(13), 0x80ffu);      // a3 zero-extended
}

TEST(Machine, MulDivSemantics) {
  Machine machine;
  run_source(machine, std::string(R"(
    li t0, -7
    li t1, 2
    mul a0, t0, t1     # -14
    div a1, t0, t1     # -3 (trunc toward zero)
    rem a2, t0, t1     # -1
    li t2, 0
    div a3, t0, t2     # div by zero -> -1
    rem a4, t0, t2     # rem by zero -> rs1
    divu a5, t0, t1
)") + kExit0);
  EXPECT_EQ(static_cast<i32>(machine.cpu().read_gpr(10)), -14);
  EXPECT_EQ(static_cast<i32>(machine.cpu().read_gpr(11)), -3);
  EXPECT_EQ(static_cast<i32>(machine.cpu().read_gpr(12)), -1);
  EXPECT_EQ(machine.cpu().read_gpr(13), 0xffffffffu);
  EXPECT_EQ(static_cast<i32>(machine.cpu().read_gpr(14)), -7);
}

TEST(Machine, DivOverflowCase) {
  Machine machine;
  run_source(machine, std::string(R"(
    li t0, 0x80000000
    li t1, -1
    div a0, t0, t1
    rem a1, t0, t1
)") + kExit0);
  EXPECT_EQ(machine.cpu().read_gpr(10), 0x80000000u);
  EXPECT_EQ(machine.cpu().read_gpr(11), 0u);
}

TEST(Machine, X0StaysZero) {
  Machine machine;
  run_source(machine, std::string(R"(
    li t0, 5
    add zero, t0, t0
    addi x0, x0, 100
)") + kExit0);
  EXPECT_EQ(machine.cpu().read_gpr(0), 0u);
}

TEST(Machine, UnhandledTrapStops) {
  auto result = run_source("lw a0, 0(zero)\n");  // load from unmapped 0x0
  EXPECT_EQ(result.reason, StopReason::kTrapUnhandled);
  EXPECT_EQ(result.trap_cause, kCauseLoadFault);
}

TEST(Machine, EbreakStops) {
  auto result = run_source("ebreak\n");
  EXPECT_EQ(result.reason, StopReason::kEbreak);
}

TEST(Machine, IllegalInstructionStops) {
  Machine machine;
  auto program = assemble(".word 0xffffffff\n");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(machine.load_program(*program).ok());
  auto result = machine.run();
  EXPECT_EQ(result.reason, StopReason::kTrapUnhandled);
  EXPECT_EQ(result.trap_cause, kCauseIllegalInstruction);
}

TEST(Machine, MaxInstructionsHangDetector) {
  MachineConfig config;
  config.max_instructions = 1000;
  Machine machine(config);
  auto result = run_source(machine, "spin: j spin\n");
  EXPECT_EQ(result.reason, StopReason::kMaxInstructions);
  EXPECT_GE(result.instructions, 1000u);
}

TEST(Machine, RunBudgetSaturates) {
  // run(max_insns) computes `icount + max_insns`; on a warm machine with a
  // huge budget the sum used to wrap to a tiny limit and stop the run after
  // a single step. The limit must saturate instead.
  Machine machine;
  auto program = assemble(R"(
    li t0, 100
  loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    li a0, 7
    ecall
  )");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(machine.load_program(*program).ok());
  // Warm the instruction counter, then ask for an effectively unlimited
  // continuation: the run must complete normally, not stop immediately.
  auto first = machine.run(5);
  EXPECT_EQ(first.reason, StopReason::kMaxInstructions);
  auto rest = machine.run(~u64{0});
  EXPECT_EQ(rest.reason, StopReason::kExitEcall);
  EXPECT_EQ(rest.exit_code, 7);
}

TEST(Machine, TrapHandlerCatchesEcall) {
  Machine machine;
  auto result = run_source(machine, R"(
    la t0, handler
    csrw mtvec, t0
    ecall              # traps to handler (a7 != 93)
    j fail
handler:
    csrr a0, mcause    # 11 = ecall from M
    li a7, 93
    ecall              # a7 == 93 now? no — a7 set; but mcause in a0
fail:
    ebreak
  )");
  // The second ecall has a7 == 93, so it exits with code = mcause = 11.
  EXPECT_EQ(result.reason, StopReason::kExitEcall);
  EXPECT_EQ(result.exit_code, 11);
}

TEST(Machine, MretReturnsFromTrap) {
  Machine machine;
  auto result = run_source(machine, R"(
    la t0, handler
    csrw mtvec, t0
    li a1, 0
    ecall            # trap, handler advances mepc and returns
    li a1, 42        # executed after mret
    li a7, 93
    mv a0, a1
    ecall
    j end
handler:
    csrr t1, mepc
    addi t1, t1, 4
    csrw mepc, t1
    mret
end:
    ebreak
  )");
  EXPECT_EQ(result.reason, StopReason::kExitEcall);
  EXPECT_EQ(result.exit_code, 42);
}

TEST(Machine, TimerInterruptFires) {
  Machine machine;
  auto result = run_source(machine, R"(
.equ CLINT, 0x2000000
    la t0, handler
    csrw mtvec, t0
    li t0, CLINT + 0x4000
    li t1, 500           # mtimecmp = 500 cycles
    sw t1, 0(t0)
    sw zero, 4(t0)
    li t2, 128           # mie.MTIE
    csrw mie, t2
    csrsi mstatus, 8     # mstatus.MIE
spin:
    j spin
handler:
    csrr a0, mcause
    li a7, 93
    li a0, 1
    ecall
  )");
  EXPECT_EQ(result.reason, StopReason::kExitEcall);
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_GE(result.cycles, 500u);
}

TEST(Machine, WfiWaitsForTimer) {
  Machine machine;
  auto result = run_source(machine, R"(
.equ CLINT, 0x2000000
    la t0, handler
    csrw mtvec, t0
    li t0, CLINT + 0x4000
    li t1, 10000
    sw t1, 0(t0)
    sw zero, 4(t0)
    li t2, 128
    csrw mie, t2
    csrsi mstatus, 8
    wfi                  # sleep until mtime >= mtimecmp
    j fail
handler:
    li a7, 93
    li a0, 5
    ecall
fail:
    ebreak
  )");
  EXPECT_EQ(result.reason, StopReason::kExitEcall);
  EXPECT_EQ(result.exit_code, 5);
  EXPECT_GE(result.cycles, 10000u);
}

TEST(Machine, VectoredInterruptDispatch) {
  // mtvec mode 1: interrupts vector to base + 4 * cause. The machine timer
  // (cause 7) must land on the 7th vector slot, not on the base.
  Machine machine;
  auto result = run_source(machine, R"(
.equ CLINT_CMP, 0x2004000
    la t0, vectors
    ori t0, t0, 1        # vectored mode
    csrw mtvec, t0
    li t0, CLINT_CMP
    li t1, 300
    sw t1, 0(t0)
    sw zero, 4(t0)
    li t2, 128
    csrw mie, t2
    csrsi mstatus, 8
spin:
    j spin
.align 4
vectors:
    j bad_vector         # cause 0
    j bad_vector         # 1
    j bad_vector         # 2
    j bad_vector         # 3
    j bad_vector         # 4
    j bad_vector         # 5
    j bad_vector         # 6
    j timer_vector       # 7 = machine timer
bad_vector:
    li a0, 1
    li a7, 93
    ecall
timer_vector:
    li a0, 42
    li a7, 93
    ecall
  )");
  EXPECT_EQ(result.reason, StopReason::kExitEcall);
  EXPECT_EQ(result.exit_code, 42);
}

TEST(Machine, GuestDrivesGpio) {
  Machine machine;
  machine.gpio()->set_in(0x0f);
  auto result = run_source(machine, R"(
.equ GPIO, 0x10010000
    li t0, GPIO
    lw a0, 16(t0)     # read inputs
    sw a0, 0(t0)      # mirror to outputs
    li t1, 0xf0
    sw t1, 4(t0)      # SET high nibble
    li a7, 93
    ecall
  )");
  EXPECT_EQ(result.exit_code, 0x0f);
  EXPECT_EQ(machine.gpio()->out(), 0xffu);
  EXPECT_EQ(machine.gpio()->changes().size(), 2u);
}

TEST(Machine, WfiWithoutTimerHalts) {
  auto result = run_source("wfi\n");
  EXPECT_EQ(result.reason, StopReason::kWfiHalt);
}

TEST(Machine, UartTransmit) {
  Machine machine;
  auto result = run_source(machine, R"(
.equ UART, 0x10000000
    li t0, UART
    la t1, msg
next:
    lbu t2, 0(t1)
    beqz t2, done
    sw t2, 0(t0)
    addi t1, t1, 1
    j next
done:
    li a7, 93
    li a0, 0
    ecall
.data
msg:
    .asciz "hello"
  )");
  EXPECT_EQ(result.reason, StopReason::kExitEcall);
  EXPECT_EQ(machine.uart()->tx_log(), "hello");
  EXPECT_EQ(machine.uart()->tx_count(), 5u);
}

TEST(Machine, UartReceive) {
  Machine machine;
  machine.uart()->push_rx("AB");
  auto result = run_source(machine, R"(
.equ UART, 0x10000000
    li t0, UART
    lw a0, 4(t0)       # 'A'
    lw a1, 4(t0)       # 'B'
    lw a2, 4(t0)       # empty -> 0xffffffff
    li a7, 93
    ecall
  )");
  EXPECT_EQ(result.exit_code, 'A');
  EXPECT_EQ(machine.cpu().read_gpr(11), u32{'B'});
  EXPECT_EQ(machine.cpu().read_gpr(12), 0xffffffffu);
}

TEST(Machine, CyclesExceedInstructions) {
  Machine machine;
  auto result = run_source(machine, R"(
    li t0, 100
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    li a0, 0
    ecall
  )");
  EXPECT_GT(result.cycles, result.instructions);
}

TEST(Machine, CsrCountersReadable) {
  Machine machine;
  run_source(machine, std::string(R"(
    nop
    nop
    csrr a0, minstret
    csrr a1, mcycle
)") + kExit0);
  // After two nops, minstret read (3rd insn) sees icount >= 2.
  EXPECT_GE(machine.cpu().read_gpr(10), 2u);
  EXPECT_GE(machine.cpu().read_gpr(11), machine.cpu().read_gpr(10));
}

TEST(Machine, CsrCounterReadIncludesCurrentInstruction) {
  // instret is defined to include the reading instruction itself: a csrr
  // as the very first instruction observes exactly 1 (see
  // Machine::counter_view()).
  Machine machine;
  run_source(machine, std::string(R"(
    csrr a0, instret
    csrr a1, instret
)") + kExit0);
  EXPECT_EQ(machine.cpu().read_gpr(10), 1u);
  EXPECT_EQ(machine.cpu().read_gpr(11), 2u);
}

TEST(Machine, CsrCounterMidBlockReadsMatchUncachedMode) {
  // cycle/instret reads in the middle of a hot block must observe the same
  // values whether the block comes from the TB cache or is re-decoded every
  // time (enable_tb_cache=false): both paths share Machine::counter_view().
  const char* source = R"(
    li t0, 30
    li a2, 0
loop:
    csrr a0, instret      # mid-block counter reads, re-executed 30 times
    csrr a1, cycle
    add a2, a2, a0
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    ecall
  )";
  Machine cached;
  auto r1 = run_source(cached, source);
  MachineConfig config;
  config.enable_tb_cache = false;
  Machine uncached(config);
  auto r2 = run_source(uncached, source);
  EXPECT_EQ(r1.instructions, r2.instructions);
  EXPECT_EQ(r1.cycles, r2.cycles);
  // Final architectural state of every counter-derived register agrees.
  EXPECT_EQ(cached.cpu().read_gpr(10), uncached.cpu().read_gpr(10));
  EXPECT_EQ(cached.cpu().read_gpr(11), uncached.cpu().read_gpr(11));
  EXPECT_EQ(cached.cpu().read_gpr(12), uncached.cpu().read_gpr(12));
  // And the last in-loop instret read includes the reading instruction:
  // the csrr is instruction 3 of the 5-instruction loop body, first
  // executed as icount 3 (after the two li), then every 5 instructions.
  EXPECT_EQ(cached.cpu().read_gpr(10), 3u + 29u * 5u);
}

TEST(Machine, SelfModifyingCodeFlushesTbCache) {
  Machine machine;
  auto result = run_source(machine, R"(
    la t0, patch_site
    # Patch 'li a0, 1' (0x00100513) over 'li a0, 9' at patch_site.
    li t1, 0x00100513
    sw t1, 0(t0)
patch_site:
    li a0, 9
    li a7, 93
    ecall
  )");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_GE(machine.tb_cache().flush_count(), 1u);
}

TEST(Machine, TbCacheReusesBlocks) {
  Machine machine;
  run_source(machine, R"(
    li t0, 50
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    li a0, 0
    ecall
  )");
  // The loop body must be translated once and reused.
  EXPECT_LE(machine.tb_cache().size(), 8u);
}

TEST(Machine, UncachedModeMatchesCached) {
  const char* source = R"(
    li a0, 0
    li t0, 20
loop:
    add a0, a0, t0
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    ecall
  )";
  Machine cached;
  auto r1 = run_source(cached, source);
  MachineConfig config;
  config.enable_tb_cache = false;
  Machine uncached(config);
  auto r2 = run_source(uncached, source);
  EXPECT_EQ(r1.exit_code, r2.exit_code);
  EXPECT_EQ(r1.instructions, r2.instructions);
  EXPECT_EQ(r1.cycles, r2.cycles);
}

TEST(Machine, ResetClearsState) {
  Machine machine;
  run_source(machine, std::string("li t3, 99\n") + kExit0);
  EXPECT_NE(machine.cpu().read_gpr(28), 0u);
  machine.reset();
  EXPECT_EQ(machine.cpu().read_gpr(28), 0u);
  EXPECT_EQ(machine.icount(), 0u);
  EXPECT_EQ(machine.cycles(), 0u);
}

// ---------------------------------------------------------------------------
// Plugin API.

struct CountingPlugin : PluginBase {
  Subscriptions subscriptions() const override {
    Subscriptions subs;
    subs.tb_trans = subs.tb_exec = subs.insn_exec = subs.mem = subs.trap =
        subs.exit = true;
    return subs;
  }
  void on_tb_trans(const s4e_tb_info& tb) override {
    ++tb_trans;
    insns_seen += tb.n_insns;
  }
  void on_tb_exec(u32) override { ++tb_exec; }
  void on_insn_exec(const s4e_insn_info&) override { ++insn_exec; }
  void on_mem(const s4e_mem_event& event) override {
    if (event.is_store) ++stores; else ++loads;
  }
  void on_trap(const s4e_trap_event&) override { ++traps; }
  void on_exit(int code) override { exit_code = code; ++exits; }

  u64 tb_trans = 0, tb_exec = 0, insn_exec = 0;
  u64 loads = 0, stores = 0, traps = 0, exits = 0;
  u64 insns_seen = 0;
  int exit_code = -100;
};

TEST(PluginApi, CallbackCountsMatchExecution) {
  Machine machine;
  CountingPlugin plugin;
  plugin.attach(machine.vm_handle());
  auto result = run_source(machine, R"(
    la t0, buf
    li t1, 3
loop:
    sw t1, 0(t0)
    lw t2, 0(t0)
    addi t1, t1, -1
    bnez t1, loop
    li a7, 93
    li a0, 4
    ecall
.data
buf:
    .space 4
  )");
  EXPECT_EQ(result.exit_code, 4);
  EXPECT_EQ(plugin.insn_exec, result.instructions);
  EXPECT_EQ(plugin.stores, 3u);
  EXPECT_EQ(plugin.loads, 3u);
  EXPECT_EQ(plugin.exits, 1u);
  EXPECT_EQ(plugin.exit_code, 4);
  EXPECT_GT(plugin.tb_exec, plugin.tb_trans);  // loop blocks reused
}

TEST(PluginApi, TrapCallbackFires) {
  Machine machine;
  CountingPlugin plugin;
  plugin.attach(machine.vm_handle());
  run_source(machine, "ebreak\n");
  EXPECT_EQ(plugin.traps, 1u);
}

TEST(PluginApi, StateAccessors) {
  Machine machine;
  auto program = assemble(std::string("li t0, 7\n") + R"(
    li a7, 93
    li a0, 0
    ecall
  )");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(machine.load_program(*program).ok());
  machine.run();
  s4e_vm* vm = machine.vm_handle();
  EXPECT_EQ(s4e_read_gpr(vm, 5), 7u);
  s4e_write_gpr(vm, 5, 123u);
  EXPECT_EQ(machine.cpu().read_gpr(5), 123u);
  s4e_write_gpr(vm, 0, 55u);  // x0 writes ignored
  EXPECT_EQ(s4e_read_gpr(vm, 0), 0u);
  EXPECT_GT(s4e_icount(vm), 0u);
  EXPECT_GE(s4e_cycles(vm), s4e_icount(vm));
}

TEST(PluginApi, MemAccessors) {
  Machine machine;
  s4e_vm* vm = machine.vm_handle();
  const u32 address = machine.config().ram_base + 0x100;
  const u32 value = 0xcafebabe;
  EXPECT_EQ(s4e_write_mem(vm, address, &value, 4), 0);
  u32 readback = 0;
  EXPECT_EQ(s4e_read_mem(vm, address, &readback, 4), 0);
  EXPECT_EQ(readback, value);
  // Outside RAM fails cleanly.
  EXPECT_EQ(s4e_read_mem(vm, 0x1000, &readback, 4), -1);
}

TEST(PluginApi, RequestExitStopsRun) {
  Machine machine;
  struct ExitPlugin : PluginBase {
    Subscriptions subscriptions() const override {
      Subscriptions subs;
      subs.insn_exec = true;
      return subs;
    }
    void on_insn_exec(const s4e_insn_info&) override {
      if (++count == 10) s4e_request_exit(vm(), 77);
    }
    int count = 0;
  } plugin;
  plugin.attach(machine.vm_handle());
  auto result = run_source(machine, "spin: j spin\n");
  EXPECT_EQ(result.reason, StopReason::kExitRequested);
  EXPECT_EQ(result.exit_code, 77);
}

TEST(Timing, WorstCaseDominatesDynamic) {
  TimingModel model;
  Rng rng(42);
  for (unsigned i = 0; i < isa::kOpCount; ++i) {
    isa::Instr instr;
    instr.op = static_cast<isa::Op>(i);
    for (int trial = 0; trial < 100; ++trial) {
      const u32 rs1 = rng.next_u32();
      const u32 rs2 = rng.next_u32();
      // Worst case excludes the redirect penalty (modelled on edges) and
      // must dominate the non-redirect dynamic cost in all contexts.
      EXPECT_GE(model.worst_case_cycles(instr),
                model.dynamic_cycles(instr, false, rs1, rs2, true))
          << isa::mnemonic(instr.op);
      EXPECT_GE(model.worst_case_cycles(instr) + model.edge_cycles(),
                model.dynamic_cycles(instr, true, rs1, rs2, true))
          << isa::mnemonic(instr.op);
    }
  }
}

TEST(Timing, DivideEarlyOut) {
  TimingModel model;
  EXPECT_LT(model.divide_cycles(1), model.divide_cycles(0xffffffffu));
  EXPECT_LE(model.divide_cycles(0xffffffffu),
            model.params().div_max_cycles);
  EXPECT_GE(model.divide_cycles(0), model.params().div_min_cycles);
}

}  // namespace
}  // namespace s4e::vp
