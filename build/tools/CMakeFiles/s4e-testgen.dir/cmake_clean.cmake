file(REMOVE_RECURSE
  "CMakeFiles/s4e-testgen.dir/s4e_testgen.cpp.o"
  "CMakeFiles/s4e-testgen.dir/s4e_testgen.cpp.o.d"
  "s4e-testgen"
  "s4e-testgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e-testgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
