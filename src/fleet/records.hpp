// Wire records for the campaign fleet service (s4e-campaignd).
//
// A fleet worker (`s4e-faultsim --shard i/N --emit-jsonl`, likewise
// s4e-mutate) streams its shard's results as JSONL: one `meta` line
// announcing the shard's identity and range, one `record` line per mutant
// in global index order, and one `done` line carrying the record count.
// The orchestrator merges records into a slot array indexed by the global
// mutant index — the same deterministic aggregation the in-process
// executor uses — so the fleet report is byte-identical to a serial run.
//
// The format is deliberately flat (no nested objects), so both ends share
// a line codec instead of a JSON library. Every line is self-describing;
// a stream cut mid-line is detected by the missing `done` count.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/bits.hpp"
#include "common/status.hpp"
#include "fault/fault.hpp"
#include "mutation/mutation.hpp"

namespace s4e::fleet {

enum class Mode : u8 { kFault, kMutation };

std::string_view to_string(Mode mode) noexcept;
std::optional<Mode> parse_mode(std::string_view text) noexcept;

// Campaign identity: FNV-1a over the program image bytes plus the
// campaign-shaping configuration. Two runs with the same fingerprint
// generate the same mutant space, so their shards and checkpoints compose.
u64 campaign_fingerprint(const std::string& elf_bytes, Mode mode, u64 seed,
                         u64 mutants, u64 max_mutants, unsigned shards);

// First line of a worker stream.
struct MetaLine {
  Mode mode = Mode::kFault;
  unsigned shard = 0;
  unsigned shards = 1;
  u64 begin = 0;       // global index of the shard's first mutant
  u64 end = 0;         // one past the shard's last mutant
  u64 total = 0;       // full campaign size
  int golden_exit = 0;
  u64 golden_instructions = 0;
  u64 fingerprint = 0;
};

// One mutant outcome. `bucket` is the outcome/verdict enum value and
// `klass` the fault target / mutation operator enum value — exactly what
// the aggregate report needs; the orchestrator never re-derives specs.
struct RecordLine {
  u64 index = 0;  // global mutant index
  u8 klass = 0;   // fault::FaultTarget or mutation::Operator
  u8 bucket = 0;  // fault::Outcome or mutation::Verdict
  int exit_code = 0;
  u64 instructions = 0;
  bool pruned = false;
};

// Last line of a worker stream; `count` must equal the records sent.
struct DoneLine {
  unsigned shard = 0;
  u64 count = 0;
};

// A parsed worker line (exactly one of the optionals is set).
struct ParsedLine {
  std::optional<MetaLine> meta;
  std::optional<RecordLine> record;
  std::optional<DoneLine> done;
};

std::string encode(const MetaLine& meta);
std::string encode(Mode mode, const RecordLine& record);
std::string encode(const DoneLine& done);

// Strict parse of one worker line; errors name the offending field.
Result<ParsedLine> parse_line(std::string_view line, Mode mode);

// Convenience encoders straight from campaign results (the worker side).
std::string encode_record(const fault::MutantResult& mutant, u64 index);
std::string encode_record(const mutation::MutantResult& result, u64 index);

// Flat-JSON field access (shared with the checkpoint journal): the raw
// value token for `key`, unquoted and unescaped for strings.
std::optional<std::string> json_field(std::string_view line,
                                      std::string_view key);
// Integer field; nullopt when absent or non-numeric.
std::optional<long long> json_int_field(std::string_view line,
                                        std::string_view key);
// Minimal string escaping for the few free-text fields (quotes,
// backslashes, control characters).
std::string json_escape(std::string_view text);
// Full-width u64 from zero-padded hex (fingerprints travel as quoted hex
// because parse_integer's signed range cannot hold them).
std::optional<u64> parse_hex_u64(std::string_view text);

}  // namespace s4e::fleet
