// Translation-block cache: the VP's analogue of QEMU's TCG code cache.
//
// Guest code is decoded once per basic block and the decoded form is reused
// on every re-execution; only stores into already-translated code (self-
// modification, e.g. by the fault injector) force a flush. The E1 experiment
// ablates this cache against per-instruction re-decoding.
#pragma once

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/instr.hpp"

namespace s4e::vp {

struct TranslationBlock {
  u32 start = 0;
  u32 byte_size = 0;
  std::vector<isa::Instr> insns;
  // Precomputed worst-case-free base timing per instruction is kept by the
  // execution loop; the block itself stays a pure decode artefact.
  u64 exec_count = 0;

  u32 end() const noexcept { return start + byte_size; }
};

class TbCache {
 public:
  // Max instructions per block (QEMU uses a similar translation bound).
  static constexpr unsigned kMaxBlockInsns = 64;
  // Direct-mapped front cache in front of the hash map: the block-dispatch
  // loop hits lookup() once per executed block, and campaign workloads
  // re-execute a handful of hot blocks millions of times. Power of two.
  static constexpr std::size_t kFrontEntries = 1024;

  TranslationBlock* lookup(u32 pc) noexcept {
    FrontEntry& front = front_[front_slot(pc)];
    if (front.block != nullptr && front.pc == pc) return front.block;
    auto it = blocks_.find(pc);
    if (it == blocks_.end()) return nullptr;
    front = {pc, it->second.get()};
    return front.block;
  }

  TranslationBlock* insert(std::unique_ptr<TranslationBlock> block) {
    TranslationBlock* raw = block.get();
    code_lo_ = std::min(code_lo_, raw->start);
    code_hi_ = std::max(code_hi_, raw->end());
    // Re-inserting at an existing pc destroys the old block; its only
    // possible front entry lives in front_slot(pc) and is overwritten here,
    // so no stale pointer survives.
    blocks_[raw->start] = std::move(block);
    front_[front_slot(raw->start)] = {raw->start, raw};
    return raw;
  }

  void flush() noexcept {
    blocks_.clear();
    front_.fill(FrontEntry{});
    code_lo_ = ~u32{0};
    code_hi_ = 0;
    ++flush_count_;
  }

  // Drop only the blocks overlapping [address, address+size) — code was
  // patched in that range (a mutant, a restored dirty page) but the rest of
  // the translated code is still valid and stays warm. Returns the number
  // of blocks dropped. The code watermarks stay (conservative: they may
  // only over-approximate translated code).
  u64 invalidate_range(u32 address, u32 size) noexcept {
    if (!overlaps_code(address, size)) return 0;
    const u64 lo = address;
    const u64 hi = static_cast<u64>(address) + size;
    u64 dropped = 0;
    for (auto it = blocks_.begin(); it != blocks_.end();) {
      TranslationBlock* block = it->second.get();
      if (block->start < hi && static_cast<u64>(block->end()) > lo) {
        FrontEntry& front = front_[front_slot(block->start)];
        if (front.block == block) front = FrontEntry{};
        it = blocks_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    invalidated_blocks_ += dropped;
    return dropped;
  }

  // Conservative self-modification check: true if [address, address+size)
  // intersects the watermark range of translated code.
  bool overlaps_code(u32 address, u32 size) const noexcept {
    return code_hi_ != 0 && address < code_hi_ && address + size > code_lo_;
  }

  std::size_t size() const noexcept { return blocks_.size(); }
  u64 flush_count() const noexcept { return flush_count_; }
  u64 invalidated_blocks() const noexcept { return invalidated_blocks_; }

 private:
  struct FrontEntry {
    u32 pc = 0;
    TranslationBlock* block = nullptr;  // nullptr = invalid entry
  };

  // Block starts are at least 2-byte aligned (RVC), so drop the LSB before
  // indexing to use all slots.
  static std::size_t front_slot(u32 pc) noexcept {
    return (pc >> 1) & (kFrontEntries - 1);
  }

  std::unordered_map<u32, std::unique_ptr<TranslationBlock>> blocks_;
  std::array<FrontEntry, kFrontEntries> front_{};
  u32 code_lo_ = ~u32{0};
  u32 code_hi_ = 0;
  u64 flush_count_ = 0;
  u64 invalidated_blocks_ = 0;
};

}  // namespace s4e::vp
