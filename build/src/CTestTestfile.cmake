# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("isa")
subdirs("asm")
subdirs("elf")
subdirs("vp")
subdirs("cfg")
subdirs("wcet")
subdirs("qta")
subdirs("coverage")
subdirs("fault")
subdirs("memwatch")
subdirs("testgen")
subdirs("mutation")
subdirs("core")
