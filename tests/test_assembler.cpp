#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "common/rng.hpp"
#include "isa/encoder.hpp"
#include "isa/csr.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"

namespace s4e::assembler {
namespace {

using isa::Op;

Result<Program> asm_ok(std::string_view source) {
  auto program = assemble(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().to_string());
  return program;
}

// Decode the i-th instruction word of .text.
isa::Instr text_instr(const Program& program, unsigned index) {
  const Section* text = program.find_section(".text");
  EXPECT_NE(text, nullptr);
  auto word = program.read_word(text->base + 4 * index);
  EXPECT_TRUE(word.ok());
  auto instr = isa::decoder().decode(*word);
  EXPECT_TRUE(instr.ok());
  return *instr;
}

TEST(Assembler, EmptySourceYieldsEmptyText) {
  auto program = asm_ok("");
  EXPECT_EQ(program->find_section(".text")->bytes.size(), 0u);
}

TEST(Assembler, SingleInstruction) {
  auto program = asm_ok("addi a0, zero, 42\n");
  const auto instr = text_instr(*program, 0);
  EXPECT_EQ(instr.op, Op::kAddi);
  EXPECT_EQ(instr.rd, 10);
  EXPECT_EQ(instr.imm, 42);
}

TEST(Assembler, CommentsAndBlankLines) {
  auto program = asm_ok(R"(
    # full-line comment
    addi a0, zero, 1   # trailing comment
    ; semicolon comment
    addi a1, zero, 2
  )");
  EXPECT_EQ(program->find_section(".text")->bytes.size(), 8u);
}

TEST(Assembler, LabelsAndBranches) {
  auto program = asm_ok(R"(
loop:
    addi a0, a0, -1
    bnez a0, loop
    ebreak
  )");
  const auto branch = text_instr(*program, 1);
  EXPECT_EQ(branch.op, Op::kBne);
  EXPECT_EQ(branch.imm, -4);  // back to loop
}

TEST(Assembler, ForwardReferences) {
  auto program = asm_ok(R"(
    j end
    nop
end:
    ebreak
  )");
  const auto jump = text_instr(*program, 0);
  EXPECT_EQ(jump.op, Op::kJal);
  EXPECT_EQ(jump.imm, 8);
}

TEST(Assembler, LiSmallExpandsToAddi) {
  auto program = asm_ok("li a0, -5\n");
  EXPECT_EQ(program->find_section(".text")->bytes.size(), 4u);
  const auto instr = text_instr(*program, 0);
  EXPECT_EQ(instr.op, Op::kAddi);
  EXPECT_EQ(instr.imm, -5);
}

TEST(Assembler, LiLargeExpandsToLuiAddi) {
  auto program = asm_ok("li a0, 0x12345678\n");
  EXPECT_EQ(program->find_section(".text")->bytes.size(), 8u);
  EXPECT_EQ(text_instr(*program, 0).op, Op::kLui);
  EXPECT_EQ(text_instr(*program, 1).op, Op::kAddi);
}

TEST(Assembler, LaResolvesDataSymbol) {
  auto program = asm_ok(R"(
    la a0, value
    lw a1, 0(a0)
    ebreak
.data
value:
    .word 0xdeadbeef
  )");
  // lui+addi must reconstruct the symbol exactly.
  const auto lui = text_instr(*program, 0);
  const auto addi = text_instr(*program, 1);
  const u32 reconstructed =
      static_cast<u32>(lui.imm) + static_cast<u32>(addi.imm);
  EXPECT_EQ(reconstructed, *program->symbol("value"));
}

TEST(Assembler, PseudoExpansions) {
  auto program = asm_ok(R"(
    nop
    mv a0, a1
    not a2, a3
    neg a4, a5
    seqz a6, a7
    snez t0, t1
    j 8
    ret
  )");
  EXPECT_EQ(text_instr(*program, 0).op, Op::kAddi);  // nop
  EXPECT_EQ(text_instr(*program, 1).op, Op::kAddi);  // mv
  EXPECT_EQ(text_instr(*program, 2).op, Op::kXori);  // not
  EXPECT_EQ(text_instr(*program, 2).imm, -1);
  EXPECT_EQ(text_instr(*program, 3).op, Op::kSub);   // neg
  EXPECT_EQ(text_instr(*program, 4).op, Op::kSltiu); // seqz
  EXPECT_EQ(text_instr(*program, 5).op, Op::kSltu);  // snez
  EXPECT_EQ(text_instr(*program, 6).op, Op::kJal);
  EXPECT_EQ(text_instr(*program, 7).op, Op::kJalr);  // ret
}

TEST(Assembler, BranchPseudoSwapsOperands) {
  auto program = asm_ok(R"(
target:
    bgt a0, a1, target
    ble a2, a3, target
  )");
  const auto bgt = text_instr(*program, 0);
  EXPECT_EQ(bgt.op, Op::kBlt);
  EXPECT_EQ(bgt.rs1, 11);  // a1
  EXPECT_EQ(bgt.rs2, 10);  // a0
  const auto ble = text_instr(*program, 1);
  EXPECT_EQ(ble.op, Op::kBge);
  EXPECT_EQ(ble.rs1, 13);  // a3
}

TEST(Assembler, CsrInstructions) {
  auto program = asm_ok(R"(
    csrr a0, mstatus
    csrw mtvec, a1
    csrrwi a2, mscratch, 7
  )");
  EXPECT_EQ(text_instr(*program, 0).op, Op::kCsrrs);
  EXPECT_EQ(text_instr(*program, 0).csr, isa::kCsrMstatus);
  EXPECT_EQ(text_instr(*program, 1).op, Op::kCsrrw);
  EXPECT_EQ(text_instr(*program, 2).op, Op::kCsrrwi);
  EXPECT_EQ(text_instr(*program, 2).rs2, 7);  // zimm
}

TEST(Assembler, DataDirectives) {
  auto program = asm_ok(R"(
.data
words:
    .word 1, 2, 0xffffffff
halves:
    .half 0x1234, 0x5678
bytes:
    .byte 1, 2, 3
    .align 2
aligned:
    .word 9
  )");
  const Section* data = program->find_section(".data");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(*program->symbol("words"), data->base);
  EXPECT_EQ(*program->symbol("halves"), data->base + 12);
  EXPECT_EQ(*program->symbol("bytes"), data->base + 16);
  EXPECT_EQ(*program->symbol("aligned"), data->base + 20);
  EXPECT_EQ(*program->read_word(data->base + 8), 0xffffffffu);
  EXPECT_EQ(*program->read_word(data->base + 20), 9u);
}

TEST(Assembler, AscizWithEscapes) {
  auto program = asm_ok(".data\nmsg: .asciz \"hi\\n\"\n");
  const Section* data = program->find_section(".data");
  ASSERT_EQ(data->bytes.size(), 4u);
  EXPECT_EQ(data->bytes[0], 'h');
  EXPECT_EQ(data->bytes[2], '\n');
  EXPECT_EQ(data->bytes[3], 0);
}

TEST(Assembler, EquConstants) {
  auto program = asm_ok(R"(
.equ UART_BASE, 0x10000000
    li t0, UART_BASE
    li t1, UART_BASE + 8
  )");
  EXPECT_EQ(text_instr(*program, 0).op, Op::kLui);
  const auto lui = text_instr(*program, 2);
  const auto addi = text_instr(*program, 3);
  EXPECT_EQ(static_cast<u32>(lui.imm) + static_cast<u32>(addi.imm),
            0x10000008u);
}

TEST(Assembler, HiLoRelocations) {
  auto program = asm_ok(R"(
    lui a0, %hi(value)
    addi a0, a0, %lo(value)
.data
    .space 2040
value:
    .word 7
  )");
  const u32 value_addr = *program->symbol("value");
  const auto lui = text_instr(*program, 0);
  const auto addi = text_instr(*program, 1);
  EXPECT_EQ(static_cast<u32>(lui.imm) + static_cast<u32>(addi.imm),
            value_addr);
}

TEST(Assembler, LoopBoundAnnotation) {
  auto program = asm_ok(R"(
    li t0, 10
loop:
    .loopbound 10
    addi t0, t0, -1
    bnez t0, loop
    ebreak
  )");
  ASSERT_EQ(program->loop_bounds.size(), 1u);
  EXPECT_EQ(program->loop_bounds[0].bound, 10u);
  EXPECT_EQ(program->loop_bounds[0].address, *program->symbol("loop"));
}

TEST(Assembler, EntryDefaultsAndStart) {
  auto without = asm_ok("nop\n");
  EXPECT_EQ(without->entry, without->find_section(".text")->base);
  auto with = asm_ok("nop\n_start:\nnop\n");
  EXPECT_EQ(with->entry, *with->symbol("_start"));
}

TEST(AssemblerErrors, UnknownMnemonic) {
  auto result = assemble("frobnicate a0, a1\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message().find("line 1"), std::string::npos);
}

TEST(AssemblerErrors, UndefinedSymbol) {
  EXPECT_FALSE(assemble("j nowhere\n").ok());
}

TEST(AssemblerErrors, DuplicateLabel) {
  EXPECT_FALSE(assemble("a:\nnop\na:\nnop\n").ok());
}

TEST(AssemblerErrors, BadRegister) {
  EXPECT_FALSE(assemble("addi q0, zero, 1\n").ok());
}

TEST(AssemblerErrors, ImmediateOverflow) {
  EXPECT_FALSE(assemble("addi a0, zero, 5000\n").ok());
}

TEST(AssemblerErrors, WrongOperandCount) {
  EXPECT_FALSE(assemble("add a0, a1\n").ok());
  EXPECT_FALSE(assemble("ecall a0\n").ok());
}

TEST(AssemblerErrors, DanglingLoopBound) {
  EXPECT_FALSE(assemble("nop\n.loopbound 4\n").ok());
}

// Property: disassemble -> assemble round-trips to the identical word for a
// spread of concrete instructions.
class DisasmRoundTrip : public ::testing::TestWithParam<u32> {};

TEST_P(DisasmRoundTrip, Reassembles) {
  const u32 word = GetParam();
  auto instr = isa::decoder().decode(word);
  ASSERT_TRUE(instr.ok());
  const std::string text = isa::disassemble(*instr);
  auto program = assemble(text + "\n");
  ASSERT_TRUE(program.ok()) << text << ": " << program.error().to_string();
  EXPECT_EQ(*program->read_word(program->find_section(".text")->base), word)
      << text;
}

INSTANTIATE_TEST_SUITE_P(
    Words, DisasmRoundTrip,
    ::testing::Values(0x00500093u,  // addi
                      0x00a282b3u,  // add
                      0xfff54513u,  // xori -1
                      0x00c000efu,  // jal +12
                      0xff1ff06fu,  // jal -16
                      0x00052503u,  // lw
                      0x00a52023u,  // sw
                      0xfe0008e3u,  // beq back
                      0x02b54533u,  // div
                      0x300025f3u,  // csrrs
                      0x30529073u,  // csrw mtvec
                      0x000800b7u,  // lui
                      0x00100073u,  // ebreak
                      0x30200073u,  // mret
                      0x0000000fu,  // fence
                      0x40a5d5b3u   // sra
                      ));

// Property: disassemble(make_op(random operands)) reassembles to the exact
// encoding for EVERY instruction type (the disassembler emits assembler
// input by contract).
class FullDisasmRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(FullDisasmRoundTrip, EveryOpReassembles) {
  const auto op = static_cast<isa::Op>(GetParam());
  const isa::OpInfo& info = isa::op_info(op);
  Rng rng(0xd15a + GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    isa::Instr instr;
    switch (info.format) {
      case isa::Format::kR:
        instr = isa::make_r(op, rng.next_below(32), rng.next_below(32),
                            rng.next_below(32));
        break;
      case isa::Format::kI:
        instr = isa::make_i(op, rng.next_below(32), rng.next_below(32),
                            static_cast<i32>(rng.next_in_range(-2048, 2047)));
        break;
      case isa::Format::kIShift:
        instr = isa::make_shift(op, rng.next_below(32), rng.next_below(32),
                                rng.next_below(32));
        break;
      case isa::Format::kS:
        instr = isa::make_s(op, rng.next_below(32), rng.next_below(32),
                            static_cast<i32>(rng.next_in_range(-2048, 2047)));
        break;
      case isa::Format::kB:
        instr = isa::make_b(op, rng.next_below(32), rng.next_below(32),
                            static_cast<i32>(rng.next_in_range(-1024, 1023)) * 2);
        break;
      case isa::Format::kU:
        instr = isa::make_u(op, rng.next_below(32),
                            static_cast<i32>(rng.next_below(1u << 20) << 12));
        break;
      case isa::Format::kJ:
        instr = isa::make_j(op, rng.next_below(32),
                            static_cast<i32>(rng.next_in_range(-(1 << 19),
                                                               (1 << 19) - 1)) * 2);
        break;
      case isa::Format::kCsrReg: {
        // Use an implemented CSR so the name<->address mapping is exact.
        const auto& csrs = isa::implemented_csrs();
        instr = isa::make_csr_reg(op, rng.next_below(32),
                                  csrs[rng.next_below(static_cast<u32>(csrs.size()))],
                                  rng.next_below(32));
        break;
      }
      case isa::Format::kCsrImm: {
        const auto& csrs = isa::implemented_csrs();
        instr = isa::make_csr_imm(op, rng.next_below(32),
                                  csrs[rng.next_below(static_cast<u32>(csrs.size()))],
                                  rng.next_below(32));
        break;
      }
      case isa::Format::kNone:
      case isa::Format::kFence:
        instr = isa::make_system(op);
        break;
    }
    auto word = isa::encode(instr);
    ASSERT_TRUE(word.ok());
    const std::string text = isa::disassemble(instr);
    auto program = assemble(text + "\n");
    ASSERT_TRUE(program.ok()) << text << ": " << program.error().to_string();
    EXPECT_EQ(*program->read_word(program->find_section(".text")->base),
              *word)
        << text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, FullDisasmRoundTrip, ::testing::Range(0u, isa::kOpCount),
    [](const ::testing::TestParamInfo<unsigned>& info) {
      std::string name(isa::mnemonic(static_cast<isa::Op>(info.param)));
      for (char& c : name) {
        if (c == '.') c = '_';  // "lr.w" -> "lr_w": gtest names are [A-Za-z0-9_]
      }
      return name;
    });

}  // namespace
}  // namespace s4e::assembler
