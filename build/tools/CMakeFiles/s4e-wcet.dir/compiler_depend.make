# Empty compiler generated dependencies file for s4e-wcet.
# This may be replaced when dependencies are built.
