// Shared helpers for the command-line tools: tiny argv parser and file IO.
#pragma once

#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/strings.hpp"

namespace s4e::tools {

// "--flag", "--key value", "--key=value" and positional arguments.
class Args {
 public:
  Args(int argc, char** argv, std::vector<std::string> value_keys)
      : value_keys_(std::move(value_keys)) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.size() > 1 && arg[0] == '-' &&
          !(arg[1] >= '0' && arg[1] <= '9')) {
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
          options_[arg.substr(0, eq)] = arg.substr(eq + 1);
          continue;
        }
        bool takes_value = false;
        for (const auto& key : value_keys_) takes_value |= key == arg;
        if (takes_value && i + 1 < argc) {
          options_[arg] = argv[++i];
        } else {
          options_[arg] = "";
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  bool has(const std::string& key) const { return options_.count(key) != 0; }
  std::string value(const std::string& key,
                    const std::string& fallback = "") const {
    auto it = options_.find(key);
    return it == options_.end() ? fallback : it->second;
  }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::vector<std::string> value_keys_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

inline Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error(ErrorCode::kIoError, "cannot open '" + path + "'");
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

inline Status write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Error(ErrorCode::kIoError, "cannot open '" + path + "'");
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return out.good() ? Status()
                    : Status(Error(ErrorCode::kIoError, "short write"));
}

}  // namespace s4e::tools
