#include "fleet/orchestrator.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "common/strings.hpp"
#include "debug/tcp.hpp"
#include "fleet/worker.hpp"
#include "obs/metrics.hpp"

namespace s4e::fleet {

namespace {

// Poll heartbeat: bounds the latency of child reaping and the status
// endpoint; all data paths are event-driven.
constexpr int kPollIntervalMs = 50;

// One worker process driving one shard.
struct WorkerProc {
  pid_t pid = -1;
  unsigned shard = 0;
  unsigned spawn_index = 0;
  // Stream fd: pipe read end, or the accepted socket once a TCP worker has
  // dialed back and identified itself (-1 until then).
  int fd = -1;
  std::unique_ptr<debug::TcpChannel> channel;  // owns fd for TCP transport
  std::string buffer;
  bool meta_seen = false;
  bool done_seen = false;
  bool stream_closed = false;
  bool exited = false;
  int wait_status = 0;
  // TCP transport: a worker can exit before its dial-in is accepted and
  // identified — the stream survives in the socket buffers, so the exit
  // alone is not a failure. This counts down poll ticks of patience for
  // the connection to show up before the shard is declared dead.
  int dial_grace = -1;
  CompletedShard block;
};

// A dialed-in TCP connection that has not yet sent its meta line (we don't
// know which shard it belongs to until it does).
struct PendingChannel {
  std::unique_ptr<debug::TcpChannel> channel;
  std::string buffer;
};

// Kills and reaps every still-running worker on scope exit, so error
// returns never leak children.
struct ReapGuard {
  std::vector<WorkerProc>* workers;
  ~ReapGuard() {
    for (WorkerProc& worker : *workers) {
      if (worker.pid < 0 || worker.exited) continue;
      ::kill(worker.pid, SIGKILL);
      ::waitpid(worker.pid, nullptr, 0);
      worker.exited = true;
    }
  }
};

std::vector<std::string> worker_argv(const FleetOptions& options,
                                     unsigned shard, unsigned shards,
                                     int result_port, unsigned stall_after) {
  std::vector<std::string> argv;
  argv.push_back(options.worker_path);
  argv.push_back(options.elf_path);
  argv.push_back("--shard");
  argv.push_back(format("%u/%u", shard, shards));
  argv.push_back("--emit-jsonl");
  argv.push_back("--jobs");
  argv.push_back(format("%u", options.worker_jobs));
  if (options.mode == Mode::kFault) {
    argv.push_back("--seed");
    argv.push_back(format("%llu", static_cast<unsigned long long>(
                                      options.seed)));
    argv.push_back("--mutants");
    argv.push_back(format("%u", options.mutants));
  } else {
    argv.push_back("--max");
    argv.push_back(format("%u", options.max_mutants));
  }
  if (result_port >= 0) {
    argv.push_back("--result-port");
    argv.push_back(format("%d", result_port));
  }
  if (stall_after != 0) {
    argv.push_back("--test-stall-after");
    argv.push_back(format("%u", stall_after));
  }
  return argv;
}

// fork/exec one worker. Pipe transport: the child's stdout becomes the
// stream and `out_fd` receives the read end. TCP transport (result_port
// >= 0): the child dials back and out_fd stays -1.
Result<pid_t> spawn_worker(const FleetOptions& options, unsigned shard,
                           unsigned shards, int result_port,
                           unsigned stall_after, int& out_fd) {
  out_fd = -1;
  int fds[2] = {-1, -1};
  const bool use_pipe = result_port < 0;
  if (use_pipe && ::pipe(fds) != 0) {
    return Error(ErrorCode::kIoError,
                 format("fleet: pipe failed: %s", std::strerror(errno)));
  }

  const auto argv_strings =
      worker_argv(options, shard, shards, result_port, stall_after);
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (const std::string& arg : argv_strings) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (use_pipe) {
      ::close(fds[0]);
      ::close(fds[1]);
    }
    return Error(ErrorCode::kIoError,
                 format("fleet: fork failed: %s", std::strerror(errno)));
  }
  if (pid == 0) {
    if (use_pipe) {
      ::dup2(fds[1], STDOUT_FILENO);
      ::close(fds[0]);
      ::close(fds[1]);
    }
    ::execv(argv[0], argv.data());
    std::fprintf(stderr, "fleet: exec %s failed: %s\n", argv[0],
                 std::strerror(errno));
    ::_exit(127);
  }
  if (use_pipe) {
    ::close(fds[1]);
    out_fd = fds[0];
  }
  return pid;
}

// Campaign-wide facts learned from the first meta line (or the recovered
// checkpoint) and enforced on every subsequent one.
struct GoldenRef {
  bool known = false;
  u64 total = 0;
  int exit_code = 0;
  u64 instructions = 0;
};

Status note_golden(GoldenRef& golden, u64 total, int exit_code,
                   u64 instructions) {
  if (!golden.known) {
    golden.known = true;
    golden.total = total;
    golden.exit_code = exit_code;
    golden.instructions = instructions;
    return Status();
  }
  if (golden.total != total || golden.exit_code != exit_code ||
      golden.instructions != instructions) {
    return Error(
        ErrorCode::kStateError,
        format("fleet: workers disagree on the campaign (total %llu vs "
               "%llu, golden exit %d vs %d) — mixed binaries or a "
               "non-deterministic workload",
               static_cast<unsigned long long>(golden.total),
               static_cast<unsigned long long>(total), golden.exit_code,
               exit_code));
  }
  return Status();
}

u64 shard_bound(u64 total, unsigned index, unsigned shards) {
  return total * index / shards;
}

// Consume complete lines from `buffer`, feeding them to `worker`'s block.
Status consume_lines(WorkerProc& worker, Mode mode, u64 fingerprint,
                     unsigned shards, GoldenRef& golden, u64& records_seen) {
  std::size_t newline;
  while ((newline = worker.buffer.find('\n')) != std::string::npos) {
    const std::string line = worker.buffer.substr(0, newline);
    worker.buffer.erase(0, newline + 1);
    if (line.empty()) continue;
    S4E_TRY(parsed, parse_line(line, mode));
    if (parsed.meta.has_value()) {
      const MetaLine& meta = *parsed.meta;
      if (worker.meta_seen) {
        return Error(ErrorCode::kStateError,
                     format("fleet: shard %u sent two meta lines",
                            worker.shard));
      }
      if (meta.shard != worker.shard || meta.shards != shards) {
        return Error(ErrorCode::kStateError,
                     format("fleet: expected shard %u/%u, worker announced "
                            "%u/%u",
                            worker.shard, shards, meta.shard, meta.shards));
      }
      if (meta.fingerprint != fingerprint) {
        return Error(ErrorCode::kStateError,
                     format("fleet: shard %u fingerprint mismatch (worker "
                            "sees a different campaign — wrong binary or "
                            "ELF?)",
                            worker.shard));
      }
      S4E_TRY_STATUS(note_golden(golden, meta.total, meta.golden_exit,
                                 meta.golden_instructions));
      if (meta.begin != shard_bound(golden.total, meta.shard, shards) ||
          meta.end != shard_bound(golden.total, meta.shard + 1, shards)) {
        return Error(ErrorCode::kStateError,
                     format("fleet: shard %u announced range [%llu,%llu) "
                            "outside the contract",
                            worker.shard,
                            static_cast<unsigned long long>(meta.begin),
                            static_cast<unsigned long long>(meta.end)));
      }
      worker.meta_seen = true;
      worker.block.shard = meta.shard;
      worker.block.begin = meta.begin;
      worker.block.end = meta.end;
      worker.block.total = meta.total;
      worker.block.golden_exit = meta.golden_exit;
      worker.block.golden_instructions = meta.golden_instructions;
      continue;
    }
    if (parsed.record.has_value()) {
      if (!worker.meta_seen || worker.done_seen) {
        return Error(ErrorCode::kStateError,
                     format("fleet: shard %u sent a record outside its "
                            "stream frame",
                            worker.shard));
      }
      const u64 expected =
          worker.block.begin + worker.block.records.size();
      if (parsed.record->index != expected ||
          parsed.record->index >= worker.block.end) {
        return Error(ErrorCode::kStateError,
                     format("fleet: shard %u record index %llu, expected "
                            "%llu",
                            worker.shard,
                            static_cast<unsigned long long>(
                                parsed.record->index),
                            static_cast<unsigned long long>(expected)));
      }
      worker.block.records.push_back(*parsed.record);
      ++records_seen;
      continue;
    }
    // done line
    if (!worker.meta_seen || parsed.done->shard != worker.shard ||
        parsed.done->count != worker.block.records.size() ||
        worker.block.begin + parsed.done->count != worker.block.end) {
      return Error(ErrorCode::kStateError,
                   format("fleet: shard %u done line disagrees with its "
                          "stream",
                          worker.shard));
    }
    worker.done_seen = true;
  }
  return Status();
}

}  // namespace

Result<FleetReport> run_fleet(const FleetOptions& options) {
  if (options.workers == 0 || options.worker_path.empty() ||
      options.elf_path.empty()) {
    return Error(ErrorCode::kInvalidArgument,
                 "fleet: elf path, worker path and workers >= 1 required");
  }
  // The daemon writes to sockets whose peer may vanish; broken pipes must
  // surface as write errors, not process death.
  ::signal(SIGPIPE, SIG_IGN);

  const unsigned shards =
      options.shards != 0 ? options.shards : options.workers * 4;
  S4E_TRY(elf_bytes, read_file_bytes(options.elf_path));
  // Only the mode's own knobs shape the mutant space; the irrelevant ones
  // are zeroed so both sides of the wire hash the same inputs.
  const u64 fingerprint = campaign_fingerprint(
      elf_bytes, options.mode,
      options.mode == Mode::kFault ? options.seed : 0,
      options.mode == Mode::kFault ? options.mutants : 0,
      options.mode == Mode::kMutation ? options.max_mutants : 0, shards);

  FleetReport out;
  out.stats.shards_total = shards;

  // --- Metrics: the status endpoint's source of truth.
  obs::MetricsRegistry registry;
  const auto m_records = registry.add_counter("fleet_records");
  const auto m_done = registry.add_counter("fleet_shards_done");
  const auto m_recovered = registry.add_counter("fleet_shards_recovered");
  const auto m_spawned = registry.add_counter("fleet_workers_spawned");
  const auto m_restarts = registry.add_counter("fleet_worker_restarts");
  const auto m_total = registry.add_gauge("fleet_shards_total");
  registry.open_shards(1);
  auto& metrics = registry.shard(0);
  metrics.set(m_total, shards);

  // --- Checkpoint: recover committed shards, keep the journal open.
  GoldenRef golden;
  std::map<unsigned, CompletedShard> committed;
  std::unique_ptr<CheckpointJournal> journal;
  if (!options.checkpoint_path.empty()) {
    std::vector<CompletedShard> recovered;
    bool replaced = false;
    CheckpointHeader header;
    header.mode = options.mode;
    header.fingerprint = fingerprint;
    header.shards = shards;
    auto opened = CheckpointJournal::open(options.checkpoint_path, header,
                                          recovered, replaced);
    if (!opened.ok()) return opened.error();
    journal = std::make_unique<CheckpointJournal>(std::move(*opened));
    out.stats.checkpoint_replaced = replaced;
    for (CompletedShard& shard : recovered) {
      if (shard.shard >= shards || committed.count(shard.shard) != 0) {
        return Error(ErrorCode::kStateError,
                     format("fleet: checkpoint holds invalid shard %u",
                            shard.shard));
      }
      S4E_TRY_STATUS(note_golden(golden, shard.total, shard.golden_exit,
                                 shard.golden_instructions));
      committed.emplace(shard.shard, std::move(shard));
    }
    out.stats.shards_recovered = static_cast<unsigned>(committed.size());
    metrics.add(m_recovered, committed.size());
  }

  // --- Listeners.
  std::unique_ptr<debug::TcpListener> status_listener;
  if (options.status_port >= 0) {
    std::string error;
    status_listener = debug::TcpListener::listen_loopback(
        static_cast<u16>(options.status_port), error);
    if (status_listener == nullptr) {
      return Error(ErrorCode::kIoError, "fleet: status listener: " + error);
    }
    out.stats.status_port = status_listener->port();
    if (options.on_status_port) {
      options.on_status_port(status_listener->port());
    }
  }
  std::unique_ptr<debug::TcpListener> result_listener;
  if (options.tcp_transport) {
    std::string error;
    result_listener = debug::TcpListener::listen_loopback(0, error);
    if (result_listener == nullptr) {
      return Error(ErrorCode::kIoError, "fleet: result listener: " + error);
    }
  }
  const int result_port =
      result_listener != nullptr ? result_listener->port() : -1;

  // --- Scheduling state.
  std::deque<unsigned> pending;
  for (unsigned shard = 0; shard < shards; ++shard) {
    if (committed.count(shard) == 0) pending.push_back(shard);
  }
  std::vector<unsigned> retries(shards, 0);
  std::vector<WorkerProc> workers;
  std::vector<PendingChannel> dialing;
  ReapGuard guard{&workers};
  unsigned spawned_total = 0;
  unsigned live_commits = 0;
  u64 records_seen = 0;
  bool kill_hook_pending = options.test_kill_after_records != 0;

  const auto active_workers = [&workers] {
    std::size_t active = 0;
    for (const WorkerProc& worker : workers) {
      active += !worker.exited || !worker.stream_closed;
    }
    return active;
  };

  while (committed.size() < shards) {
    // Spawn until the worker budget is full.
    while (!pending.empty() && active_workers() < options.workers) {
      const unsigned shard = pending.front();
      pending.pop_front();
      // The stall hook rides on the very first spawn only: that worker is
      // the designated victim.
      const unsigned stall =
          (kill_hook_pending && spawned_total == 0)
              ? options.test_kill_after_records
              : 0;
      int fd = -1;
      auto pid = spawn_worker(options, shard, shards, result_port, stall, fd);
      if (!pid.ok()) return pid.error();
      WorkerProc worker;
      worker.pid = *pid;
      worker.shard = shard;
      worker.spawn_index = spawned_total++;
      worker.fd = fd;
      workers.push_back(std::move(worker));
      ++out.stats.workers_spawned;
      metrics.add(m_spawned, 1);
    }

    // Poll every live stream plus the listeners.
    std::vector<pollfd> fds;
    std::vector<int> owner;  // workers index, or -2 dialing[i], -3/-4 listeners
    for (std::size_t i = 0; i < workers.size(); ++i) {
      if (workers[i].fd >= 0 && !workers[i].stream_closed) {
        fds.push_back({workers[i].fd, POLLIN, 0});
        owner.push_back(static_cast<int>(i));
      }
    }
    const std::size_t dial_base = fds.size();
    for (const PendingChannel& channel : dialing) {
      fds.push_back({channel.channel->fd(), POLLIN, 0});
      owner.push_back(-2);
    }
    if (result_listener != nullptr) {
      fds.push_back({result_listener->fd(), POLLIN, 0});
      owner.push_back(-3);
    }
    if (status_listener != nullptr) {
      fds.push_back({status_listener->fd(), POLLIN, 0});
      owner.push_back(-4);
    }
    if (!fds.empty()) {
      const int n = ::poll(fds.data(), fds.size(), kPollIntervalMs);
      if (n < 0 && errno != EINTR) {
        return Error(ErrorCode::kIoError,
                     format("fleet: poll failed: %s", std::strerror(errno)));
      }
    }

    // Status endpoint: one metrics line per connection, then close.
    if (status_listener != nullptr && (fds.back().revents & POLLIN) != 0) {
      std::string error;
      bool timed_out = false;
      auto client = status_listener->accept_one_for(0, error, timed_out);
      if (client != nullptr) {
        client->write_all(registry.to_json() + "\n");
      }
    }

    // New TCP dial-ins: park until their meta line identifies the shard.
    if (result_listener != nullptr) {
      const std::size_t slot =
          fds.size() - (status_listener != nullptr ? 2 : 1);
      if ((fds[slot].revents & POLLIN) != 0) {
        std::string error;
        bool timed_out = false;
        auto channel = result_listener->accept_one_for(0, error, timed_out);
        if (channel != nullptr) {
          dialing.push_back(PendingChannel{std::move(channel), {}});
        }
      }
    }

    // Drain readable worker streams.
    for (std::size_t slot = 0; slot < dial_base; ++slot) {
      if ((fds[slot].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      WorkerProc& worker = workers[static_cast<std::size_t>(owner[slot])];
      char chunk[65536];
      const ssize_t n = ::read(worker.fd, chunk, sizeof chunk);
      if (n > 0) {
        worker.buffer.append(chunk, static_cast<std::size_t>(n));
        const u64 before = records_seen;
        S4E_TRY_STATUS(consume_lines(worker, options.mode, fingerprint,
                                     shards, golden, records_seen));
        out.stats.records += records_seen - before;
        metrics.add(m_records, records_seen - before);
        // Kill hook: the victim has streamed enough — SIGKILL it mid-shard.
        if (kill_hook_pending && worker.spawn_index == 0 &&
            worker.block.records.size() >=
                options.test_kill_after_records) {
          kill_hook_pending = false;
          ::kill(worker.pid, SIGKILL);
        }
      } else if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
        worker.stream_closed = true;
        if (worker.channel == nullptr) {
          ::close(worker.fd);
        }
        worker.fd = -1;
      }
    }

    // Attach identified dial-ins to their worker.
    for (std::size_t i = 0; i < dialing.size();) {
      PendingChannel& pending_channel = dialing[i];
      char chunk[65536];
      bool identified = false;
      bool drop = false;
      pollfd probe{pending_channel.channel->fd(), POLLIN, 0};
      if (::poll(&probe, 1, 0) > 0) {
        const ssize_t n =
            ::read(pending_channel.channel->fd(), chunk, sizeof chunk);
        if (n > 0) {
          pending_channel.buffer.append(chunk, static_cast<std::size_t>(n));
        } else if (n == 0) {
          drop = true;  // connected and vanished before identifying
        }
      }
      const auto newline = pending_channel.buffer.find('\n');
      if (!drop && newline != std::string::npos) {
        const std::string line = pending_channel.buffer.substr(0, newline);
        auto parsed = parse_line(line, options.mode);
        if (parsed.ok() && parsed->meta.has_value()) {
          for (WorkerProc& worker : workers) {
            // An exited-but-unidentified worker is still claimable: its
            // stream lives on in the socket until the grace window ends.
            if (worker.shard == parsed->meta->shard && worker.fd < 0 &&
                !worker.stream_closed && worker.channel == nullptr) {
              worker.channel = std::move(pending_channel.channel);
              worker.fd = worker.channel->fd();
              worker.buffer = std::move(pending_channel.buffer);
              // The parked buffer may already hold the whole stream (the
              // worker can finish before it is identified); consume it now
              // — the socket might never signal POLLIN with fresh data
              // again, only EOF.
              const u64 before = records_seen;
              S4E_TRY_STATUS(consume_lines(worker, options.mode,
                                           fingerprint, shards, golden,
                                           records_seen));
              out.stats.records += records_seen - before;
              metrics.add(m_records, records_seen - before);
              identified = true;
              break;
            }
          }
        }
        if (!identified) drop = true;  // stray or malformed dial-in
      }
      if (identified || drop) {
        dialing.erase(dialing.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }

    // Reap exited children — per known pid, never waitpid(-1), so an
    // embedding process's other children (popen!) are left alone.
    for (WorkerProc& worker : workers) {
      if (worker.exited) continue;
      int status = 0;
      if (::waitpid(worker.pid, &status, WNOHANG) == worker.pid) {
        worker.exited = true;
        worker.wait_status = status;
        // TCP worker gone before its dial-in was identified: give the
        // connection a bounded window to arrive (the stream outlives the
        // process in the socket buffers). A worker that died pre-connect
        // burns the window and is then requeued.
        if (worker.fd < 0 && worker.channel == nullptr) {
          worker.dial_grace = 2000 / kPollIntervalMs;
        }
      }
    }
    for (WorkerProc& worker : workers) {
      if (worker.dial_grace < 0 || worker.fd >= 0 ||
          worker.channel != nullptr) {
        continue;
      }
      if (worker.dial_grace-- == 0) worker.stream_closed = true;
    }

    // Settle workers whose stream and process have both finished.
    for (std::size_t i = 0; i < workers.size();) {
      WorkerProc& worker = workers[i];
      if (!worker.exited || !worker.stream_closed) {
        ++i;
        continue;
      }
      const bool clean = worker.done_seen &&
                         WIFEXITED(worker.wait_status) &&
                         WEXITSTATUS(worker.wait_status) == 0;
      if (clean) {
        if (journal != nullptr) {
          S4E_TRY_STATUS(journal->commit(worker.block));
        }
        committed.emplace(worker.shard, std::move(worker.block));
        ++out.stats.shards_done;
        metrics.add(m_done, 1);
        ++live_commits;
        if (options.test_fail_after_commits != 0 &&
            live_commits >= options.test_fail_after_commits) {
          return Error(ErrorCode::kStateError,
                       format("fleet: test-induced daemon failure after %u "
                              "commits",
                              live_commits));
        }
      } else {
        // Worker died (or its stream broke) mid-shard: drop the partial
        // block and requeue, bounded by the retry budget.
        if (++retries[worker.shard] > options.max_retries) {
          return Error(
              ErrorCode::kStateError,
              format("fleet: shard %u failed %u times, giving up "
                     "(last exit status 0x%x)",
                     worker.shard, retries[worker.shard],
                     static_cast<unsigned>(worker.wait_status)));
        }
        pending.push_back(worker.shard);
        ++out.stats.worker_restarts;
        metrics.add(m_restarts, 1);
      }
      workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }

  if (!golden.known) {
    return Error(ErrorCode::kStateError, "fleet: no worker reported");
  }

  // --- Deterministic aggregation: fill the slot array in global index
  // order from the committed blocks, then fold exactly like the serial
  // engines do.
  std::vector<RecordLine> slots(static_cast<std::size_t>(golden.total));
  std::vector<bool> filled(slots.size(), false);
  for (const auto& [shard, block] : committed) {
    for (std::size_t offset = 0; offset < block.records.size(); ++offset) {
      const u64 index = block.begin + offset;
      if (index >= golden.total || filled[static_cast<std::size_t>(index)]) {
        return Error(ErrorCode::kStateError,
                     format("fleet: duplicate or out-of-range record %llu",
                            static_cast<unsigned long long>(index)));
      }
      slots[static_cast<std::size_t>(index)] = block.records[offset];
      filled[static_cast<std::size_t>(index)] = true;
    }
  }
  for (std::size_t index = 0; index < filled.size(); ++index) {
    if (!filled[index]) {
      return Error(ErrorCode::kStateError,
                   format("fleet: record %zu missing after all shards "
                          "committed",
                          index));
    }
  }

  if (options.mode == Mode::kFault) {
    fault::CampaignResult result;
    result.golden_exit_code = golden.exit_code;
    result.golden_instructions = golden.instructions;
    result.total_faults = golden.total;
    result.mutants.reserve(slots.size());
    for (const RecordLine& record : slots) {
      fault::MutantResult mutant;
      mutant.spec.target = static_cast<fault::FaultTarget>(record.klass);
      mutant.outcome = static_cast<fault::Outcome>(record.bucket);
      mutant.exit_code = record.exit_code;
      mutant.instructions = record.instructions;
      mutant.pruned = record.pruned;
      ++result.outcome_counts[record.bucket];
      result.pruned_count += record.pruned ? 1 : 0;
      result.simulated_instructions +=
          static_cast<double>(record.instructions);
      result.mutants.push_back(std::move(mutant));
    }
    out.report = result.to_string();
  } else {
    mutation::MutationScore score;
    score.total_mutants = golden.total;
    score.results.reserve(slots.size());
    for (const RecordLine& record : slots) {
      mutation::MutantResult result;
      result.mutant.op = static_cast<mutation::Operator>(record.klass);
      result.verdict = static_cast<mutation::Verdict>(record.bucket);
      result.exit_code = record.exit_code;
      result.instructions = record.instructions;
      result.pruned = record.pruned;
      ++score.verdict_counts[record.bucket];
      score.pruned_count += record.pruned ? 1 : 0;
      score.results.push_back(std::move(result));
    }
    out.report = score.to_string();
  }
  out.metrics_json = registry.to_json();
  return out;
}

}  // namespace s4e::fleet
