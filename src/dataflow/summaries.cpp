#include "dataflow/summaries.hpp"

#include <algorithm>

#include "isa/defuse.hpp"

namespace s4e::dataflow {

namespace {

using cfg::Terminator;

// Ranges beyond this are collapsed into the `*_unknown` flag instead of
// growing the summary without bound.
constexpr std::size_t kMaxMemRanges = 32;

// Forward must-write analysis: which registers every path from the entry to
// a given point has definitely written. Meet at joins is set intersection.
struct MustWriteDomain {
  static constexpr bool kForward = true;
  struct State {
    bool reached = false;
    u32 mask = 0;
  };

  const std::map<cfg::BlockId, CallEffect>* effects = nullptr;

  State boundary(const cfg::Function&, const cfg::BasicBlock&) const {
    return {true, 0};
  }

  State transfer(const cfg::Function&, const cfg::BasicBlock& block,
                 State state) const {
    if (!state.reached) return state;
    for (const isa::Instr& instr : block.insns) {
      state.mask |= isa::def_use(instr).writes;
    }
    if (block.terminator == Terminator::kCall) {
      auto it = effects->find(block.id);
      if (it != effects->end()) state.mask |= it->second.must_write;
    }
    state.mask &= ~u32{1};
    return state;
  }

  bool join(State& into, const State& from, bool /*widen*/) const {
    if (!from.reached) return false;
    if (!into.reached) {
      into = from;
      return true;
    }
    const u32 met = into.mask & from.mask;
    if (met == into.mask) return false;
    into.mask = met;
    return true;
  }

  bool edge_feasible(const cfg::Function&, const cfg::BasicBlock&,
                     const State&, const cfg::Edge&) const {
    return true;
  }
};

void add_range(std::vector<MemRange>& ranges, i64 lo, i64 hi, bool& unknown) {
  if (unknown) return;
  ranges.push_back({lo, hi});
  if (ranges.size() <= kMaxMemRanges) return;
  // Coalesce; if still over budget the footprint degrades to unknown.
  std::sort(ranges.begin(), ranges.end(),
            [](const MemRange& a, const MemRange& b) { return a.lo < b.lo; });
  std::vector<MemRange> merged;
  for (const MemRange& r : ranges) {
    if (!merged.empty() && r.lo <= merged.back().hi + 1) {
      merged.back().hi = std::max(merged.back().hi, r.hi);
    } else {
      merged.push_back(r);
    }
  }
  ranges = std::move(merged);
  if (ranges.size() > kMaxMemRanges) {
    ranges.clear();
    unknown = true;
  }
}

}  // namespace

CallEffect FunctionSummary::effect() const {
  CallEffect e;
  if (conservative) return e;
  e.refined = true;
  e.clobbered = may_write;
  e.must_write = must_write;
  e.may_read = may_read;
  e.ret0 = ret0;
  e.ret1 = ret1;
  e.sp_balanced = sp_balanced;
  return e;
}

Interprocedural solve_interprocedural(
    const cfg::ProgramCfg& cfg, u32 program_entry, const MemModel* mem,
    const std::vector<Solution<RegDomain>>& baseline) {
  const std::size_t n = cfg.functions.size();
  Interprocedural ip;

  std::vector<std::vector<bool>> reach(n);
  for (std::size_t f = 0; f < n; ++f) {
    reach[f].resize(cfg.functions[f].blocks.size());
    for (std::size_t b = 0; b < reach[f].size(); ++b) {
      reach[f][b] = baseline[f].in[b].reached;
    }
  }
  ip.graph = build_call_graph(cfg, &reach);
  ip.summaries.resize(n);
  ip.call_effects.resize(n);
  ip.reg.resize(n);
  ip.live.resize(n);

  for (u32 f : ip.graph.bottom_up) {
    const cfg::Function& fn = cfg.functions[f];
    auto& effects = ip.call_effects[f];
    for (const cfg::BasicBlock& block : fn.blocks) {
      if (block.terminator != Terminator::kCall) continue;
      auto it = cfg.function_by_entry.find(block.call_target);
      if (it == cfg.function_by_entry.end()) continue;
      effects.emplace(block.id, ip.summaries[it->second].effect());
    }

    RegDomain reg_domain({fn.entry == program_entry, mem, &effects});
    ip.reg[f] = solve(fn, reg_domain);
    Liveness live_domain(Liveness::Options{&effects});
    ip.live[f] = solve(fn, live_domain);

    FunctionSummary& sum = ip.summaries[f];
    // Cycle members would need a fixpoint over their own summary; tainted
    // functions may transfer control anywhere. Both keep the ABI fallback —
    // which is the documented soundness assumption for workload assembly.
    if (ip.graph.recursive[f] || ip.graph.tainted[f]) continue;
    sum.conservative = false;

    const Solution<RegDomain>& sol = ip.reg[f];
    auto reached = [&](const cfg::BasicBlock& block) {
      return sol.in[block.id].reached;
    };

    // Register effects.
    u32 may_write = 0;
    u32 raw_reads = 0;
    bool any_return = false;
    for (const cfg::BasicBlock& block : fn.blocks) {
      if (!reached(block)) continue;
      for (const isa::Instr& instr : block.insns) {
        const isa::DefUse du = isa::def_use(instr);
        may_write |= du.writes;
        raw_reads |= du.reads;
      }
      if (block.terminator == Terminator::kCall) {
        auto it = effects.find(block.id);
        const CallEffect& e =
            it == effects.end() ? CallEffect{} : it->second;
        may_write |= e.clobbered;
        raw_reads |= e.may_read;
      } else if (block.terminator == Terminator::kExit) {
        // The environment observes the argument and pointer registers at an
        // exit ecall; keep them readable so callers never see their setup
        // as dead.
        raw_reads |= kExitLiveMask;
      } else if (block.terminator == Terminator::kReturn) {
        any_return = true;
      }
    }
    sum.returns = any_return;
    sum.may_write = may_write & ~(reg_bit(0) | reg_bit(2));

    MustWriteDomain mw_domain{&effects};
    const Solution<MustWriteDomain> mw = solve(fn, mw_domain);
    u32 must_write = ~u32{0};
    AbsValue ret0;  // bottom; join accumulates over return sites
    AbsValue ret1;
    bool sp_balanced = true;
    for (const cfg::BasicBlock& block : fn.blocks) {
      if (!reached(block) || block.terminator != Terminator::kReturn) {
        continue;
      }
      must_write &= mw.out[block.id].mask;
      ret0 = AbsValue::join(ret0, sol.out[block.id].regs[10]);
      ret1 = AbsValue::join(ret1, sol.out[block.id].regs[11]);
      const AbsValue& sp = sol.out[block.id].regs[2];
      if (!(sp.is_stack() && sp.lo() == 0 && sp.hi() == 0)) {
        sp_balanced = false;
      }
    }
    if (!any_return) {
      // No way back to the caller: the continuation is unreachable, so any
      // kill set is sound and the return value is irrelevant.
      must_write = ~u32{1};
      ret0 = AbsValue::top();
      ret1 = AbsValue::top();
    }
    sum.must_write = must_write & ~(reg_bit(0) | reg_bit(2));
    // Guard against registers only "written" via a callee's conservative
    // effect yet absent from may_write bookkeeping.
    sum.must_write &= sum.may_write;
    sum.ret0 = std::move(ret0);
    sum.ret1 = std::move(ret1);
    sum.sp_balanced = sp_balanced;

    // may_read: incoming values the function may observe. The liveness
    // live-in at the entry block is read-before-written (transitively, via
    // the call effects), but its return-boundary seeds every callee-saved
    // register; intersecting with the raw read union strips registers no
    // instruction or callee ever touches.
    sum.may_read = ip.live[f].in[0] & raw_reads & ~u32{1};

    // Memory footprint and stack accounting.
    sum.reads_unknown = false;
    sum.writes_unknown = false;
    sum.reads_stack = false;
    sum.writes_stack = false;
    i64 deepest = 0;
    bool sp_known = true;
    for (const cfg::BasicBlock& block : fn.blocks) {
      if (!reached(block)) continue;
      const auto probe = [&](const AbsValue& sp) {
        if (!sp.is_stack()) {
          sp_known = false;
        } else {
          deepest = std::max(deepest, -sp.lo());
        }
      };
      walk_block(block, mem, sol.in[block.id],
                 [&](u32 /*pc*/, const isa::Instr& instr,
                     const RegState& state) {
                   probe(state.regs[2]);
                   if (!instr.reads_memory() && !instr.writes_memory()) return;
                   const AbsValue addr = effective_address(instr, state);
                   const auto record = [&](bool write) {
                     bool& unknown =
                         write ? sum.writes_unknown : sum.reads_unknown;
                     bool& stack = write ? sum.writes_stack : sum.reads_stack;
                     auto& ranges = write ? sum.mem_writes : sum.mem_reads;
                     if (addr.is_stack()) {
                       stack = true;
                     } else if (addr.has_bounds()) {
                       add_range(ranges, addr.lo(),
                                 addr.hi() + access_size(instr.op) - 1,
                                 unknown);
                     } else {
                       unknown = true;
                     }
                   };
                   if (instr.reads_memory()) record(false);
                   if (instr.writes_memory()) record(true);
                 });
      probe(sol.out[block.id].regs[2]);
      if (block.terminator == Terminator::kCall) {
        auto it = cfg.function_by_entry.find(block.call_target);
        const FunctionSummary* callee =
            it == cfg.function_by_entry.end() ? nullptr
                                              : &ip.summaries[it->second];
        if (callee == nullptr || callee->conservative) {
          sum.reads_unknown = sum.writes_unknown = true;
          sum.reads_stack = sum.writes_stack = true;
        } else {
          sum.reads_unknown |= callee->reads_unknown;
          sum.writes_unknown |= callee->writes_unknown;
          sum.reads_stack |= callee->reads_stack;
          sum.writes_stack |= callee->writes_stack;
          for (const MemRange& r : callee->mem_reads) {
            add_range(sum.mem_reads, r.lo, r.hi, sum.reads_unknown);
          }
          for (const MemRange& r : callee->mem_writes) {
            add_range(sum.mem_writes, r.lo, r.hi, sum.writes_unknown);
          }
        }
      }
    }
    sum.frame_bytes = sp_known ? deepest : -1;

    // Whole-chain depth: own frame, or a callee chain on top of the sp at
    // its call site.
    i64 total = sum.frame_bytes;
    if (total >= 0) {
      for (const cfg::BasicBlock& block : fn.blocks) {
        if (!reached(block) || block.terminator != Terminator::kCall) {
          continue;
        }
        auto it = cfg.function_by_entry.find(block.call_target);
        const AbsValue& sp = sol.out[block.id].regs[2];
        const i64 callee_total =
            it == cfg.function_by_entry.end()
                ? -1
                : ip.summaries[it->second].total_bytes;
        if (callee_total < 0 || !sp.is_stack()) {
          total = -1;
          break;
        }
        total = std::max(total, -sp.lo() + callee_total);
      }
    }
    sum.total_bytes = total;
  }
  return ip;
}

}  // namespace s4e::dataflow
