file(REMOVE_RECURSE
  "CMakeFiles/s4e-mutate.dir/s4e_mutate.cpp.o"
  "CMakeFiles/s4e-mutate.dir/s4e_mutate.cpp.o.d"
  "s4e-mutate"
  "s4e-mutate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e-mutate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
