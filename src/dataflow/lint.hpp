// Binary linter built on the data-flow analysis (the s4e-lint back end).
//
// Checks, all flow-sensitive and whole-program:
//   kUninitRead        — a reachable instruction reads a register that may
//                        still hold reset garbage on some path
//   kUnreachableBlock  — code no feasible path reaches (dead branches,
//                        orphaned functions)
//   kDeadWrite         — a register write no subsequent instruction reads
//   kStackImbalance    — a function returns with sp not equal to its value
//                        on entry
//   kPolicyViolation   — a load/store whose *entire* resolved address range
//                        violates a memwatch policy (wrong permission, or
//                        issued from code outside the region's PC window)
//   kUnresolvedIndirect— a reachable jalr whose target set could not be
//                        folded (residual analysis blind spot)
//   kUnusedResult      — a function that always produces a result in a0,
//                        but no reachable call site ever consumes it
//   kRecursion         — a reachable function participates in a call-graph
//                        cycle, so no static stack bound exists
//   kStackOverflow     — the entry function's worst-case static stack depth
//                        exceeds the configured limit
//
// The dead-write and uninit-read checks are interprocedural: call sites
// apply the callee's summarized effect (registers it preserves stay live /
// initialized; registers it reads are demanded), so a value consumed only
// by a callee is not a dead store and an uninitialized argument a callee
// actually reads is flagged at the call.
//
// Policy screening uses must-target semantics: a finding is emitted only
// when every address the access can take is in violation, so imprecise
// (top/interval) pointers never produce false positives.
#pragma once

#include <string>
#include <vector>

#include "dataflow/analyze.hpp"
#include "memwatch/memwatch.hpp"

namespace s4e::dataflow {

enum class CheckKind : u8 {
  kUninitRead,
  kUnreachableBlock,
  kDeadWrite,
  kStackImbalance,
  kPolicyViolation,
  kUnresolvedIndirect,
  kUnusedResult,
  kRecursion,
  kStackOverflow,
};

std::string_view check_name(CheckKind kind) noexcept;

struct Finding {
  CheckKind kind;
  u32 pc = 0;
  std::string function;
  std::string message;

  std::string to_string() const;
  std::string to_json() const;  // one self-contained object, no newline
};

// Static stack accounting for one function.
struct FrameInfo {
  std::string function;
  i64 frame_bytes = 0;   // deepest sp decrement inside the function
  i64 total_bytes = -1;  // including the deepest callee chain; -1 = unknown
};

struct LintReport {
  std::vector<Finding> findings;
  std::vector<FrameInfo> frames;  // reachable functions, entry first
  i64 max_stack_depth = -1;       // entry function's total; -1 = unknown

  bool clean() const noexcept { return findings.empty(); }
  std::string to_string() const;
};

struct LintOptions {
  const memwatch::Policy* policy = nullptr;  // enables kPolicyViolation
  // Static stack budget in bytes for kStackOverflow; negative disables the
  // check. Only a *known* depth is compared — an unknown depth is already
  // reported via kStackImbalance / kRecursion.
  i64 stack_limit = -1;
};

// Run every check over a completed analysis.
LintReport lint(const Analysis& analysis, const LintOptions& options = {});

// Convenience: analyze_program + lint.
Result<LintReport> lint_program(const assembler::Program& program,
                                const LintOptions& options = {});

}  // namespace s4e::dataflow
