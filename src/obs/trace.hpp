// Structured JSONL execution trace — one JSON object per line, one line
// per event (instruction, memory access, trap, exit), in execution order.
//
// The format is the machine-readable counterpart of the flight recorder's
// human-readable post-mortem: downstream timing/behaviour tooling consumes
// the trace without parsing disassembly, while the `asm` field keeps each
// line self-explanatory. Schema (stable key order):
//   {"t":"insn","n":<icount>,"pc":"0x…","raw":"0x…","asm":"…"}
//   {"t":"mem","pc":"0x…","addr":"0x…","size":N,"store":0|1,"val":"0x…"}
//   {"t":"trap","cause":"0x…","epc":"0x…","tval":"0x…"}
//   {"t":"exit","code":N}
#pragma once

#include <cstdio>

#include "common/bits.hpp"
#include "vp/plugin.hpp"

namespace s4e::obs {

class JsonlTracePlugin final : public vp::PluginBase {
 public:
  // Writes to `out` (not owned). `limit` bounds the emitted insn/mem lines
  // (0 = unlimited); trap and exit lines are always emitted.
  explicit JsonlTracePlugin(std::FILE* out, u64 limit = 0)
      : out_(out), limit_(limit) {}

  Subscriptions subscriptions() const override {
    Subscriptions subs;
    subs.insn_exec = true;
    subs.mem = true;
    subs.trap = true;
    subs.exit = true;
    return subs;
  }

  void on_insn_exec(const s4e_insn_info& insn) override;
  void on_mem(const s4e_mem_event& event) override;
  void on_trap(const s4e_trap_event& event) override;
  void on_exit(int exit_code) override;

  // Lines emitted so far (including trap/exit lines).
  u64 lines() const noexcept { return lines_; }

 private:
  bool budget_left() const noexcept {
    return limit_ == 0 || emitted_ < limit_;
  }

  std::FILE* out_;
  u64 limit_;
  u64 emitted_ = 0;   // insn/mem lines, counted against `limit`
  u64 lines_ = 0;
  u64 icount_ = 0;
};

}  // namespace s4e::obs
