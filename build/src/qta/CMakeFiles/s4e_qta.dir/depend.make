# Empty dependencies file for s4e_qta.
# This may be replaced when dependencies are built.
