#include "isa/csr.hpp"

#include <algorithm>
#include <array>
#include <utility>

namespace s4e::isa {

namespace {
constexpr std::pair<u16, std::string_view> kCsrNames[] = {
    {kCsrMstatus, "mstatus"},   {kCsrMisa, "misa"},
    {kCsrMie, "mie"},           {kCsrMtvec, "mtvec"},
    {kCsrMscratch, "mscratch"}, {kCsrMepc, "mepc"},
    {kCsrMcause, "mcause"},     {kCsrMtval, "mtval"},
    {kCsrMip, "mip"},           {kCsrMcycle, "mcycle"},
    {kCsrMinstret, "minstret"}, {kCsrMcycleh, "mcycleh"},
    {kCsrMinstreth, "minstreth"},
    {kCsrCycle, "cycle"},       {kCsrTime, "time"},
    {kCsrInstret, "instret"},   {kCsrCycleh, "cycleh"},
    {kCsrTimeh, "timeh"},       {kCsrInstreth, "instreth"},
    {kCsrMvendorid, "mvendorid"}, {kCsrMarchid, "marchid"},
    {kCsrMimpid, "mimpid"},     {kCsrMhartid, "mhartid"},
};
}  // namespace

std::optional<std::string_view> csr_name(u16 address) noexcept {
  for (const auto& [addr, name] : kCsrNames) {
    if (addr == address) return name;
  }
  return std::nullopt;
}

std::optional<u16> parse_csr(std::string_view name) noexcept {
  for (const auto& [addr, csr] : kCsrNames) {
    if (csr == name) return addr;
  }
  return std::nullopt;
}

const std::vector<u16>& implemented_csrs() {
  static const std::vector<u16> csrs = [] {
    std::vector<u16> out;
    out.reserve(std::size(kCsrNames));
    for (const auto& [addr, name] : kCsrNames) out.push_back(addr);
    std::sort(out.begin(), out.end());
    return out;
  }();
  return csrs;
}

bool csr_is_read_only(u16 address) noexcept {
  // Standard encoding: top two bits 11 => read-only.
  return (address >> 10) == 0x3;
}

}  // namespace s4e::isa
