# Empty compiler generated dependencies file for s4e_fault.
# This may be replaced when dependencies are built.
