// s4e-as — assemble a .s file into an ELF32 executable.
//
//   s4e-as input.s -o output.elf [--text-base 0x80000000] [--data-base ...]
//   s4e-as --workload fir -o fir.elf     (assemble a built-in workload)
//   s4e-as --list-workloads
#include <cstdio>

#include "asm/assembler.hpp"
#include "core/workloads.hpp"
#include "elf/elf32.hpp"
#include "tools/tool_util.hpp"

int main(int argc, char** argv) {
  using namespace s4e;
  static constexpr char kUsage[] =
      "usage: s4e-as <input.s> -o <out.elf> [--compress] "
      "[--text-base ADDR] [--data-base ADDR]\n"
      "       s4e-as --workload <name> -o <out.elf>\n"
      "       s4e-as --list-workloads\n";
  tools::Args args(argc, argv,
                   {"-o", "--workload", "--text-base", "--data-base"},
                   {"--compress", "--list-workloads"});
  if (const int code = tools::standard_flags(args, "s4e-as", kUsage);
      code >= 0) {
    return code;
  }

  if (args.has("--list-workloads")) {
    for (const auto& workload : core::standard_workloads()) {
      std::printf("%-12s %s\n", workload.name.c_str(),
                  workload.description.c_str());
    }
    return tools::finish_stdout("s4e-as");
  }

  std::string source;
  if (args.has("--workload")) {
    auto workload = core::find_workload(args.value("--workload"));
    if (!workload.ok()) {
      std::fprintf(stderr, "%s\n", workload.error().to_string().c_str());
      return 1;
    }
    source = workload->source;
  } else if (!args.positional().empty()) {
    auto text = tools::read_file(args.positional()[0]);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.error().to_string().c_str());
      return 1;
    }
    source = *text;
  } else {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  assembler::Options options;
  options.compress = args.has("--compress");
  if (args.has("--text-base")) {
    auto base = parse_integer(args.value("--text-base"));
    if (!base.ok()) {
      std::fprintf(stderr, "bad --text-base\n");
      return 2;
    }
    options.text_base = static_cast<u32>(*base);
  }
  if (args.has("--data-base")) {
    auto base = parse_integer(args.value("--data-base"));
    if (!base.ok()) {
      std::fprintf(stderr, "bad --data-base\n");
      return 2;
    }
    options.data_base = static_cast<u32>(*base);
  }

  auto program = assembler::assemble(source, options);
  if (!program.ok()) {
    std::fprintf(stderr, "s4e-as: %s\n", program.error().to_string().c_str());
    return 1;
  }

  const std::string output = args.value("-o", "a.out");
  if (auto status = elf::write_elf_file(*program, output); !status.ok()) {
    std::fprintf(stderr, "s4e-as: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("s4e-as: wrote %s (%zu bytes of sections, entry 0x%08x)\n",
              output.c_str(), program->image_size(), program->entry);
  return tools::finish_stdout("s4e-as");
}
