# seeded defect: t0 is written before a call, but the callee clobbers it
# (caller-saved, never read) and the caller overwrites it afterwards — the
# write is dead across the call boundary. Interprocedural summaries prove
# the callee reads only a0, so s4e-lint must report a dead-write finding.
# (The companion dead_write_call_clean.s passes the value *into* the callee
# and must stay clean.)

_start:
    li t0, 7           # dead: helper never reads t0, and it is
    call helper        # overwritten below before any use
    li t0, 1
    add a0, a0, t0
    li a7, 93
    ecall

helper:
    addi a0, a0, 2
    ret
