# lock control with an unauthorized direct UART write
# expected exit code: 1

.equ UART_BASE, 0x10000000
_start:
    la s0, secret
    li s1, 4
    li s2, 1
    li s3, UART_BASE
read_loop:
    lw t0, 8(s3)
    andi t0, t0, 1
    beqz t0, deny
    lw t1, 4(s3)
    lbu t2, 0(s0)
    beq t1, t2, digit_ok
    li s2, 0
digit_ok:
    addi s0, s0, 1
    addi s1, s1, -1
    bnez s1, read_loop
    beqz s2, deny
open:
    la a1, open_msg
    call uart_puts
    li a0, 0
    li a7, 93
    ecall
deny:
    la a1, deny_msg
    call uart_puts
attack:
    li t0, UART_BASE
    li t1, 88
    sw t1, 0(t0)
    li a0, 1
    li a7, 93
    ecall

uart_puts:
    li t5, UART_BASE
puts_loop:
    .loopbound 6
    lbu t4, 0(a1)
    beqz t4, puts_done
    sw t4, 0(t5)
    addi a1, a1, 1
    j puts_loop
puts_done:
    ret
uart_puts_end:
    nop
.data
secret:
    .ascii "1234"
open_msg:
    .asciz "OPEN\n"
deny_msg:
    .asciz "DENY\n"
