file(REMOVE_RECURSE
  "CMakeFiles/s4e_elf.dir/elf32.cpp.o"
  "CMakeFiles/s4e_elf.dir/elf32.cpp.o.d"
  "libs4e_elf.a"
  "libs4e_elf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e_elf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
