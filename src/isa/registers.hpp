// GPR naming: architectural (x0..x31) and ABI (zero, ra, sp, ...) names,
// used by the assembler, disassembler and coverage reports.
#pragma once

#include <optional>
#include <string_view>

#include "common/bits.hpp"

namespace s4e::isa {

inline constexpr unsigned kGprCount = 32;

// ABI name of GPR `index` ("zero", "ra", ..., "t6").
// Precondition: index < kGprCount.
std::string_view gpr_abi_name(unsigned index) noexcept;

// Parse either an architectural ("x7") or ABI ("t2", "s0", "fp") name.
std::optional<unsigned> parse_gpr(std::string_view name) noexcept;

}  // namespace s4e::isa
