// E8 (ablation) — microarchitectural timing features vs. WCET pessimism.
//
// DESIGN.md calls out the shared timing model as the load-bearing design
// decision: hardware features that speed up the *dynamic* side (branch
// predictor) or slow both sides (icache misses) change the static bound in
// the conservative direction, so the observed <= bound chain must keep
// holding while the pessimism ratio widens — the fundamental WCET-analysis
// trade-off this table makes visible per workload.
//
// The detail table shows the four canonical combinations; the sweep below
// it drives the full 32-configuration trace::timing_matrix() (the same
// matrix s4e-qta --replay evaluates) through the live co-simulation, so
// the chain is checked under every feature interaction, not just the
// icache/bpred corner.
#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "core/ecosystem.hpp"
#include "core/workloads.hpp"
#include "trace/replay.hpp"

namespace {

using namespace s4e;

struct QtaRow {
  qta::QtaReport report;
  bool holds = false;
};

QtaRow run_one(const core::Workload& workload,
               const vp::TimingParams& timing) {
  vp::MachineConfig machine_config;
  machine_config.timing = timing;
  core::Ecosystem ecosystem(machine_config);
  auto program = ecosystem.build(workload);
  S4E_CHECK(program.ok());
  auto outcome = ecosystem.run_qta(*program, workload.name);
  S4E_CHECK_MSG(outcome.ok(), workload.name);
  QtaRow row;
  row.report = outcome->report;
  row.holds = row.report.observed_cycles <= row.report.wc_path_cycles &&
              row.report.wc_path_cycles <= row.report.static_bound;
  return row;
}

}  // namespace

int main() {
  const std::vector<trace::NamedTiming> matrix = trace::timing_matrix();
  const char* kDetailNames[] = {"base", "icache", "bpred", "icache+bpred"};

  std::printf("[E8] timing-feature ablation: observed cycles / static bound "
              "(pessimism)\n\n");
  std::printf("%-12s", "workload");
  for (const char* name : kDetailNames) std::printf(" %22s", name);
  std::printf("\n%s\n", std::string(12 + 4 * 23, '-').c_str());

  std::vector<const core::Workload*> workloads;
  for (const core::Workload& workload : core::standard_workloads()) {
    if (workload.wcet_analyzable) workloads.push_back(&workload);
  }

  bool all_hold = true;
  for (const core::Workload* workload : workloads) {
    std::printf("%-12s", workload->name.c_str());
    for (const char* name : kDetailNames) {
      const trace::NamedTiming* config = nullptr;
      for (const trace::NamedTiming& candidate : matrix) {
        if (candidate.name == name) config = &candidate;
      }
      S4E_CHECK(config != nullptr);
      const QtaRow row = run_one(*workload, config->params);
      all_hold = all_hold && row.holds;
      std::printf(" %8llu/%-8llu %4.1fx",
                  static_cast<unsigned long long>(row.report.observed_cycles),
                  static_cast<unsigned long long>(row.report.static_bound),
                  static_cast<double>(row.report.static_bound) /
                      static_cast<double>(row.report.observed_cycles));
    }
    std::printf("\n");
  }

  std::printf("\nreading: the branch predictor lowers observed cycles but "
              "raises the bound\n(both branch directions may mispredict "
              "statically); the icache raises both,\nbut the static side "
              "must assume all-miss, so pessimism widens in every case.\n");

  // Full-matrix sweep: every feature combination, every analyzable
  // workload; per configuration, the widest pessimism across workloads and
  // whether the chain held for all of them.
  std::printf("\nfull matrix (%zu configurations x %zu workloads):\n",
              matrix.size(), workloads.size());
  std::printf("%-40s %9s %12s %6s\n", "config", "workloads",
              "max pessim", "chain");
  std::printf("%s\n", std::string(70, '-').c_str());
  for (const trace::NamedTiming& config : matrix) {
    bool config_holds = true;
    double max_pessimism = 0;
    for (const core::Workload* workload : workloads) {
      const QtaRow row = run_one(*workload, config.params);
      config_holds = config_holds && row.holds;
      const double pessimism =
          static_cast<double>(row.report.static_bound) /
          static_cast<double>(row.report.observed_cycles);
      if (pessimism > max_pessimism) max_pessimism = pessimism;
    }
    all_hold = all_hold && config_holds;
    std::printf("%-40s %9zu %11.1fx %6s\n", config.name.c_str(),
                workloads.size(), max_pessimism,
                config_holds ? "ok" : "VIOLATED");
  }

  std::printf("\n[E8] chain holds under all %zu feature combinations: %s\n",
              matrix.size(), all_hold ? "YES" : "NO");
  return all_hold ? 0 : 1;
}
