file(REMOVE_RECURSE
  "CMakeFiles/secure_lock.dir/secure_lock.cpp.o"
  "CMakeFiles/secure_lock.dir/secure_lock.cpp.o.d"
  "secure_lock"
  "secure_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
