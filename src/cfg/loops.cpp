#include "cfg/loops.hpp"

#include <algorithm>
#include <set>

#include "common/strings.hpp"
#include "isa/defuse.hpp"

namespace s4e::cfg {

namespace {

using isa::Instr;
using isa::Op;

// Natural loop of back edge (source -> header): header plus every block that
// reaches `source` without passing through `header`.
std::set<BlockId> natural_loop(const Function& fn, BlockId header,
                               BlockId source) {
  std::set<BlockId> body{header};
  std::vector<BlockId> worklist;
  if (body.insert(source).second || source != header) worklist.push_back(source);
  while (!worklist.empty()) {
    const BlockId block = worklist.back();
    worklist.pop_back();
    for (BlockId pred : fn.blocks[block].predecessors) {
      if (body.insert(pred).second) worklist.push_back(pred);
    }
  }
  return body;
}

// True if `instr` writes GPR `reg` (shared def/use model, x0 hardwired).
bool writes_reg(const Instr& instr, unsigned reg) {
  return isa::writes_gpr(instr, reg);
}

// If the (unique) definition of `reg` outside `loop`, in a block dominating
// the loop header, is a constant load, return the constant.
std::optional<i64> constant_at_entry(const Function& fn, const Dominators& dom,
                                     const Loop& loop, unsigned reg) {
  if (reg == 0) return 0;
  // Collect all out-of-loop definitions.
  struct Def {
    BlockId block;
    u32 index;
  };
  std::vector<Def> defs;
  for (const BasicBlock& block : fn.blocks) {
    if (loop.contains(block.id)) continue;
    for (u32 i = 0; i < block.insn_count(); ++i) {
      if (writes_reg(block.insns[i], reg)) defs.push_back({block.id, i});
    }
  }
  if (defs.size() == 1) {
    const BasicBlock& block = fn.blocks[defs[0].block];
    if (!dom.dominates(block.id, loop.header)) return std::nullopt;
    const Instr& def = block.insns[defs[0].index];
    if (def.op == Op::kAddi && def.rs1 == 0) {
      return def.imm;  // li small form
    }
    return std::nullopt;
  }
  if (defs.size() == 2 && defs[0].block == defs[1].block &&
      defs[1].index == defs[0].index + 1) {
    // li wide form: lui reg, hi ; addi reg, reg, lo
    const BasicBlock& block = fn.blocks[defs[0].block];
    if (!dom.dominates(block.id, loop.header)) return std::nullopt;
    const Instr& lui = block.insns[defs[0].index];
    const Instr& addi = block.insns[defs[1].index];
    if (lui.op == Op::kLui && addi.op == Op::kAddi && addi.rs1 == reg) {
      return static_cast<i64>(
          static_cast<i32>(static_cast<u32>(lui.imm) +
                           static_cast<u32>(addi.imm)));
    }
    return std::nullopt;
  }
  return std::nullopt;
}

// The unique in-loop update `addi reg, reg, step`; nullopt when the loop
// writes `reg` in any other way (or more than once).
std::optional<i32> loop_step(const Function& fn, const Loop& loop,
                             unsigned reg) {
  std::optional<i32> step;
  for (BlockId id : loop.blocks) {
    for (const Instr& instr : fn.blocks[id].insns) {
      if (!writes_reg(instr, reg)) continue;
      if (instr.op == Op::kAddi && instr.rs1 == reg && !step.has_value()) {
        step = instr.imm;
      } else {
        return std::nullopt;
      }
    }
  }
  return step;
}

u32 ceil_div(i64 numer, i64 denom) {
  return static_cast<u32>((numer + denom - 1) / denom);
}

}  // namespace

std::optional<u32> detect_counted_loop_bound(const Function& fn,
                                             const Dominators& dom,
                                             const Loop& loop) {
  // The loop must have a single back edge whose source ends in a
  // conditional branch.
  if (loop.back_sources.size() != 1) return std::nullopt;
  const BasicBlock& latch = fn.blocks[loop.back_sources[0]];
  if (latch.terminator != Terminator::kBranch) return std::nullopt;
  const Instr& branch = latch.insns.back();

  // Which way continues the loop?
  bool taken_into_loop = false;
  for (const Edge& edge : latch.successors) {
    if (edge.target == loop.header) {
      taken_into_loop = edge.kind == EdgeKind::kTaken;
    }
  }

  // Normalize to: "loop continues while cond(rs1, rs2)". When the
  // fall-through re-enters the loop, the branch condition is the *exit*
  // condition and must be inverted.
  Op op = branch.op;
  unsigned rs1 = branch.rs1;
  unsigned rs2 = branch.rs2;
  if (!taken_into_loop) {
    switch (op) {
      case Op::kBeq: op = Op::kBne; break;
      case Op::kBne: op = Op::kBeq; break;
      case Op::kBlt: op = Op::kBge; break;
      case Op::kBge: op = Op::kBlt; break;
      case Op::kBltu: op = Op::kBgeu; break;
      case Op::kBgeu: op = Op::kBltu; break;
      default: return std::nullopt;
    }
  }
  // Rewrite kBge(a,b) as kBlt-style by swapping into "while b < a"? kBge is
  // `a >= b`; continuing while a >= b with a decrementing counter is the
  // "down-count to limit" family. Handle the common shapes explicitly.

  // Shape 1: while (r != 0), step -c  -> N/c iterations (exact divisor).
  if (op == Op::kBne && rs2 == 0) {
    const auto start = constant_at_entry(fn, dom, loop, rs1);
    const auto step = loop_step(fn, loop, rs1);
    if (start && step && *step < 0 && *start > 0 &&
        (*start % -*step) == 0) {
      return static_cast<u32>(*start / -*step);
    }
    return std::nullopt;
  }
  // Shape 2: while (0 < r) i.e. blt x0, r / while (r > 0), step -c.
  if (op == Op::kBlt && rs1 == 0) {
    const auto start = constant_at_entry(fn, dom, loop, rs2);
    const auto step = loop_step(fn, loop, rs2);
    if (start && step && *step < 0 && *start > 0) {
      return ceil_div(*start, -*step);
    }
    return std::nullopt;
  }
  // Shape 2b: while (r >= 0) i.e. bge r, x0, step -c: runs for
  // floor(start / c) + 1 body executions.
  if (op == Op::kBge && rs2 == 0) {
    const auto start = constant_at_entry(fn, dom, loop, rs1);
    const auto step = loop_step(fn, loop, rs1);
    if (start && step && *step < 0 && *start >= 0) {
      return static_cast<u32>(*start / -*step) + 1;
    }
    return std::nullopt;
  }

  // Shape 3: while (r < limit), step +c.
  if ((op == Op::kBlt || op == Op::kBltu) && rs1 != 0) {
    const auto start = constant_at_entry(fn, dom, loop, rs1);
    const auto limit = constant_at_entry(fn, dom, loop, rs2);
    const auto step = loop_step(fn, loop, rs1);
    if (start && limit && step && *step > 0) {
      if (*limit <= *start) return 1;  // body runs once, test fails
      return ceil_div(*limit - *start, *step);
    }
    return std::nullopt;
  }
  // Shape 4: while (r != limit), step +c with exact landing.
  if (op == Op::kBne && rs2 != 0) {
    const auto start = constant_at_entry(fn, dom, loop, rs1);
    const auto limit = constant_at_entry(fn, dom, loop, rs2);
    const auto step = loop_step(fn, loop, rs1);
    if (start && limit && step && *step > 0 && *limit > *start &&
        ((*limit - *start) % *step) == 0) {
      return static_cast<u32>((*limit - *start) / *step);
    }
    return std::nullopt;
  }
  return std::nullopt;
}

Result<LoopForest> find_loops(const Function& fn, const Dominators& dom,
                              const std::vector<assembler::LoopBound>& bounds) {
  LoopForest forest;

  // Back edges, merged per header.
  std::map<BlockId, std::set<BlockId>> back_edges;  // header -> sources
  for (const BasicBlock& block : fn.blocks) {
    for (const Edge& edge : block.successors) {
      if (dom.dominates(edge.target, block.id)) {
        back_edges[edge.target].insert(block.id);
      }
    }
  }

  for (const auto& [header, sources] : back_edges) {
    Loop loop;
    loop.header = header;
    std::set<BlockId> body;
    for (BlockId source : sources) {
      const auto part = natural_loop(fn, header, source);
      body.insert(part.begin(), part.end());
      loop.back_sources.push_back(source);
    }
    loop.blocks.assign(body.begin(), body.end());
    forest.loops.push_back(std::move(loop));
  }

  // Nesting: parent = smallest strictly-containing loop.
  for (std::size_t i = 0; i < forest.loops.size(); ++i) {
    std::size_t best_size = ~std::size_t{0};
    for (std::size_t j = 0; j < forest.loops.size(); ++j) {
      if (i == j) continue;
      const Loop& outer = forest.loops[j];
      if (outer.contains(forest.loops[i].header) &&
          outer.header != forest.loops[i].header &&
          outer.blocks.size() < best_size) {
        // `i` nests in `j` only if all of i's blocks are in j.
        bool contained = true;
        for (BlockId b : forest.loops[i].blocks) {
          if (!outer.contains(b)) {
            contained = false;
            break;
          }
        }
        if (contained) {
          forest.loops[i].parent = static_cast<int>(j);
          best_size = outer.blocks.size();
        }
      }
    }
  }
  for (auto& loop : forest.loops) {
    u32 depth = 1;
    int parent = loop.parent;
    while (parent >= 0) {
      ++depth;
      parent = forest.loops[parent].parent;
    }
    loop.depth = depth;
  }

  // Bounds: annotations first (they land in the header block), then the
  // counted-loop patterns.
  for (Loop& loop : forest.loops) {
    const BasicBlock& header = fn.blocks[loop.header];
    for (const auto& annotation : bounds) {
      if (annotation.address >= header.start &&
          annotation.address < header.end) {
        loop.bound = annotation.bound;
      }
    }
    if (!loop.bound) {
      loop.bound = detect_counted_loop_bound(fn, dom, loop);
    }
  }

  // Innermost (deepest) first — the order the WCET collapse wants. Parent
  // indices must survive the sort, so remap them.
  std::vector<std::size_t> order(forest.loops.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return forest.loops[a].depth > forest.loops[b].depth;
  });
  std::vector<int> new_index(forest.loops.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    new_index[order[i]] = static_cast<int>(i);
  }
  LoopForest sorted;
  for (std::size_t i = 0; i < order.size(); ++i) {
    Loop loop = forest.loops[order[i]];
    if (loop.parent >= 0) loop.parent = new_index[loop.parent];
    sorted.loops.push_back(std::move(loop));
  }
  return sorted;
}

}  // namespace s4e::cfg
