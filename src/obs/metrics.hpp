// Metrics registry — counters, gauges and fixed-bucket histograms with
// per-worker shards that aggregate deterministically.
//
// Concurrency model: metrics are *partitioned*, not shared. Registration
// happens single-threaded; open_shards(n) then freezes the layout and
// allocates one flat slot array per worker lane. Each worker writes only
// its own shard (plain u64 stores — lock-free by construction, no atomics,
// no false sharing on the hot counters because every shard owns a separate
// allocation). Aggregation happens after the executor barrier (which
// establishes the happens-before edge) by folding the shards in index
// order.
//
// Determinism: counters and histogram buckets aggregate by u64 addition
// and gauges by max — both associative and commutative — and a campaign's
// per-job deltas do not depend on which lane ran the job. The aggregate is
// therefore byte-identical for any worker count and any scheduling, the
// same contract the campaign engines already give for their stdout.
#pragma once

#include <string>
#include <vector>

#include "common/bits.hpp"

namespace s4e::obs {

// Handle to one registered metric (index into the frozen layout).
struct MetricId {
  u32 slot = ~u32{0};   // first slot in the shard's flat array
  u32 buckets = 0;      // histogram: number of count slots (else 0)

  bool valid() const noexcept { return slot != ~u32{0}; }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- Registration phase (single-threaded, before open_shards).

  // Monotonic sum (aggregates by addition).
  MetricId add_counter(const std::string& name);
  // Last-set value per shard (aggregates by max).
  MetricId add_gauge(const std::string& name);
  // Fixed upper bounds, strictly increasing; values above the last bound
  // land in an implicit overflow bucket. Layout per shard: one count per
  // bound + overflow count + sum of observed values.
  MetricId add_histogram(const std::string& name, std::vector<u64> bounds);

  // --- Shard phase: freeze the layout, allocate `workers` shards (>= 1).
  // Discards any previously opened shards.
  void open_shards(unsigned workers);

  class Shard {
   public:
    void add(MetricId id, u64 delta) { slots_[id.slot] += delta; }
    void set(MetricId id, u64 value) {
      if (value > slots_[id.slot]) slots_[id.slot] = value;
    }
    void observe(MetricId id, u64 value);

   private:
    friend class MetricsRegistry;
    explicit Shard(const MetricsRegistry* owner);
    const MetricsRegistry* owner_;
    std::vector<u64> slots_;
  };

  Shard& shard(unsigned worker) { return shards_[worker]; }
  unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

  // --- Aggregation (call only after the workers have been joined).

  // Aggregated scalar (counter: sum of shards; gauge: max of shards;
  // histogram: total observation count).
  u64 value(MetricId id) const;
  // Histogram bucket counts (bounds buckets + overflow), aggregated.
  std::vector<u64> histogram_counts(MetricId id) const;

  // One-line JSON object over every registered metric, in registration
  // order: counters/gauges as numbers, histograms as
  // {"bounds": [...], "counts": [...], "sum": N}.
  std::string to_json() const;

 private:
  enum class Kind : u8 { kCounter, kGauge, kHistogram };

  struct Metric {
    std::string name;
    Kind kind;
    MetricId id;
    std::vector<u64> bounds;  // histogram only
  };

  MetricId allocate(const std::string& name, Kind kind, u32 slots,
                    std::vector<u64> bounds);
  u64 fold(u32 slot, Kind kind) const;
  const std::vector<u64>& bounds_for(MetricId id) const;

  std::vector<Metric> metrics_;
  u32 slot_count_ = 0;
  bool frozen_ = false;
  std::vector<Shard> shards_;
};

// The metric set shared by the fault and mutation campaign engines: mutant
// totals, a caller-named outcome histogram, guest-instruction volume, and
// post-mortem capture counts. Values are chosen to be partition-invariant
// (nothing depends on worker count or lane assignment), so the JSON export
// is byte-identical across `jobs` settings and machine reuse on/off.
class CampaignTelemetry {
 public:
  CampaignTelemetry(const std::vector<std::string>& bucket_names,
                    unsigned workers);

  // One finished mutant run, called from worker lane `worker`.
  void record_run(unsigned worker, unsigned bucket, u64 instructions,
                  bool post_mortem_captured);

  // Campaign-level facts, set once by the driver thread.
  void set_campaign(u64 total_mutants, u64 golden_instructions,
                    u64 hang_budget);

  // Statically pruned mutant count (campaign triage). Only campaigns that
  // ran with triage call this; the JSON stays unchanged otherwise.
  void set_pruned(u64 pruned);

  // One-line JSON of the aggregated campaign metrics.
  std::string to_json() const;

 private:
  MetricsRegistry registry_;
  MetricId mutants_;
  std::vector<MetricId> buckets_;
  MetricId instructions_;
  MetricId instructions_hist_;
  MetricId post_mortems_;
  u64 total_mutants_ = 0;
  u64 golden_instructions_ = 0;
  u64 hang_budget_ = 0;
  bool pruned_set_ = false;
  u64 pruned_ = 0;
};

}  // namespace s4e::obs
