// Tests for the data-flow framework (abstract values, whole-program
// analysis, indirect-jump resolution) and the s4e-lint checks on top.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "asm/assembler.hpp"
#include "core/workloads.hpp"
#include "dataflow/absvalue.hpp"
#include "dataflow/analyze.hpp"
#include "dataflow/lint.hpp"
#include "memwatch/policy_file.hpp"

#ifndef S4E_SOURCE_DIR
#error "S4E_SOURCE_DIR must be defined by the build system"
#endif

namespace s4e::dataflow {
namespace {

// ---------------------------------------------------------------- AbsValue

TEST(AbsValue, ConstantAndJoin) {
  auto a = AbsValue::constant(3);
  auto b = AbsValue::constant(7);
  EXPECT_TRUE(a.is_const());
  EXPECT_EQ(a.const_value(), 3);
  auto joined = AbsValue::join(a, b);
  ASSERT_TRUE(joined.is_consts());
  EXPECT_EQ(joined.values(), (std::vector<i64>{3, 7}));
  EXPECT_EQ(AbsValue::join(a, AbsValue::bottom()), a);
  EXPECT_TRUE(AbsValue::join(a, AbsValue::top()).is_top());
}

TEST(AbsValue, ConstantsAreCanonicalSignExtended) {
  auto v = AbsValue::constant(0xffffffffu);
  EXPECT_EQ(v.const_value(), -1);
  EXPECT_EQ(v.const_raw(), 0xffffffffu);
}

TEST(AbsValue, JoinDecaysToHullPastBudget) {
  std::vector<i64> values;
  for (i64 i = 0; i < 40; ++i) values.push_back(i * 4);
  auto v = AbsValue::from_values(values);
  ASSERT_TRUE(v.is_range());
  EXPECT_EQ(v.lo(), 0);
  EXPECT_EQ(v.hi(), 156);
  EXPECT_EQ(v.stride(), 4);
}

TEST(AbsValue, RangeNormalization) {
  EXPECT_TRUE(AbsValue::range(5, 5, 1).is_const());
  EXPECT_TRUE(AbsValue::range(5, 4, 1).is_bottom());
  auto v = AbsValue::range(0, 12, 4);
  EXPECT_EQ(v.count(), 4u);
  auto raw = v.enumerate();
  EXPECT_EQ(raw, (std::vector<u32>{0, 4, 8, 12}));
}

TEST(AbsValue, EnumerateRespectsLimit) {
  auto v = AbsValue::range(0, 1000, 1);
  EXPECT_TRUE(v.enumerate(16).empty());
  EXPECT_TRUE(AbsValue::top().enumerate().empty());
}

TEST(AbsValue, WidenGoesToTop) {
  auto v = AbsValue::constant(9);
  v.widen();
  EXPECT_TRUE(v.is_top());
  auto b = AbsValue::bottom();
  b.widen();
  EXPECT_TRUE(b.is_bottom());
}

TEST(AbsValue, AddAndSub) {
  auto sum = av_add(AbsValue::constant(40), AbsValue::constant(2));
  ASSERT_TRUE(sum.is_const());
  EXPECT_EQ(sum.const_value(), 42);
  auto shifted = av_add(AbsValue::range(0, 12, 4), AbsValue::constant(100));
  ASSERT_TRUE(shifted.has_bounds());
  EXPECT_EQ(shifted.lo(), 100);
  EXPECT_EQ(shifted.hi(), 112);
  EXPECT_EQ(shifted.count(), 4u);
  EXPECT_TRUE(av_add(AbsValue::top(), AbsValue::constant(1)).is_top());
}

TEST(AbsValue, StackArithmetic) {
  auto sp = AbsValue::stack(0, 0, 1);
  auto frame = av_add(sp, AbsValue::constant(static_cast<u32>(-16)));
  ASSERT_TRUE(frame.is_stack());
  EXPECT_EQ(frame.lo(), -16);
  // sp-relative minus sp-relative is a plain offset difference.
  auto diff = av_sub(sp, frame);
  ASSERT_TRUE(diff.is_const());
  EXPECT_EQ(diff.const_value(), 16);
}

TEST(AbsValue, AndWithMaskBoundsTop) {
  // The jump-table selector clamp: even an unknown value ANDed with a
  // non-negative constant mask is bounded.
  auto clamped = av_and(AbsValue::top(), AbsValue::constant(3));
  ASSERT_TRUE(clamped.has_bounds());
  EXPECT_EQ(clamped.lo(), 0);
  EXPECT_EQ(clamped.hi(), 3);
}

TEST(AbsValue, ShiftForms) {
  auto v = av_sll(AbsValue::range(0, 3, 1), AbsValue::constant(2));
  ASSERT_TRUE(v.has_bounds());
  EXPECT_EQ(v.lo(), 0);
  EXPECT_EQ(v.hi(), 12);
  auto s = av_sra(AbsValue::constant(0x80000000u), AbsValue::constant(31));
  ASSERT_TRUE(s.is_const());
  EXPECT_EQ(s.const_value(), -1);
}

TEST(AbsValue, SltDecidableOnDisjointRanges) {
  auto lt = av_slt(AbsValue::range(0, 5, 1), AbsValue::range(10, 20, 1),
                   /*is_unsigned=*/false);
  ASSERT_TRUE(lt.is_const());
  EXPECT_EQ(lt.const_value(), 1);
  auto overlap = av_slt(AbsValue::range(0, 15, 1), AbsValue::range(10, 20, 1),
                        /*is_unsigned=*/false);
  EXPECT_EQ(overlap.lo(), 0);
  EXPECT_EQ(overlap.hi(), 1);
}

TEST(AbsValue, DivisionFollowsRiscvSemantics) {
  auto div0 = av_muldiv(isa::Op::kDiv, AbsValue::constant(7),
                        AbsValue::constant(0));
  ASSERT_TRUE(div0.is_const());
  EXPECT_EQ(div0.const_value(), -1);  // RV32: x / 0 == -1
  auto overflow = av_muldiv(isa::Op::kDiv, AbsValue::constant(0x80000000u),
                            AbsValue::constant(0xffffffffu));
  ASSERT_TRUE(overflow.is_const());
  EXPECT_EQ(overflow.const_raw(), 0x80000000u);  // INT_MIN / -1 wraps
}

// ---------------------------------------------------------------- analysis

Result<Analysis> analyze_source(std::string_view source) {
  auto program = assembler::assemble(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().to_string());
  return analyze_program(*program);
}

TEST(Analysis, ResolvesLaJrTrampoline) {
  auto analysis = analyze_source(R"(
    la t0, target
    jalr zero, 0(t0)
target:
    li a7, 93
    ecall
  )");
  ASSERT_TRUE(analysis.ok()) << analysis.error().to_string();
  EXPECT_TRUE(analysis->unresolved.empty());
  ASSERT_EQ(analysis->resolved.size(), 1u);
  EXPECT_EQ(analysis->resolved.begin()->second.size(), 1u);
}

TEST(Analysis, ResolvesJumpTableToAllTargets) {
  auto workload = core::find_workload("jumptab");
  ASSERT_TRUE(workload.ok());
  auto analysis = analyze_source(workload->source);
  ASSERT_TRUE(analysis.ok()) << analysis.error().to_string();
  EXPECT_TRUE(analysis->unresolved.empty());
  ASSERT_EQ(analysis->resolved.size(), 1u);
  EXPECT_EQ(analysis->resolved.begin()->second.size(), 4u);
}

TEST(Analysis, ReportsUnresolvableIndirect) {
  auto analysis = analyze_source(R"(
_start:
    csrr t0, mcycle
    jalr zero, 0(t0)
    li a7, 93
    ecall
  )");
  ASSERT_TRUE(analysis.ok()) << analysis.error().to_string();
  ASSERT_EQ(analysis->unresolved.size(), 1u);
  EXPECT_FALSE(analysis->unresolved[0].is_call);
  EXPECT_EQ(analysis->unresolved[0].function, "_start");
}

TEST(Analysis, PruneDropsInfeasibleArm) {
  // `li t0, 1; beqz t0, dead` — the taken edge is statically infeasible,
  // so pruning must drop the dead block (and with it the only `div`).
  auto analysis = analyze_source(R"(
    li t0, 1
    beqz t0, dead
    li a0, 0
    li a7, 93
    ecall
dead:
    div t1, t2, t3
    li a7, 93
    ecall
  )");
  ASSERT_TRUE(analysis.ok()) << analysis.error().to_string();
  const auto ops = reachable_ops(*analysis);
  EXPECT_FALSE(ops[static_cast<unsigned>(isa::Op::kDiv)]);
  EXPECT_TRUE(ops[static_cast<unsigned>(isa::Op::kEcall)]);

  auto pruned = prune_cfg(*analysis);
  ASSERT_TRUE(pruned.ok()) << pruned.error().to_string();
  std::size_t full_blocks = 0;
  for (const auto& fn : analysis->cfg.functions) full_blocks += fn.blocks.size();
  std::size_t pruned_blocks = 0;
  for (const auto& fn : pruned->functions) pruned_blocks += fn.blocks.size();
  EXPECT_LT(pruned_blocks, full_blocks);
}

// -------------------------------------------------------------------- lint

bool has_kind(const LintReport& report, CheckKind kind) {
  return std::any_of(report.findings.begin(), report.findings.end(),
                     [&](const Finding& f) { return f.kind == kind; });
}

Result<LintReport> lint_source(std::string_view source,
                               const LintOptions& options = {}) {
  auto program = assembler::assemble(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().to_string());
  return lint_program(*program, options);
}

std::string read_negative(const std::string& name) {
  const std::string path =
      std::string(S4E_SOURCE_DIR) + "/workloads/negative/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Lint, CleanOnEveryStandardWorkload) {
  // The zero-false-positive contract: every shipped workload lints clean.
  for (const core::Workload& workload : core::standard_workloads()) {
    auto report = lint_source(workload.source);
    ASSERT_TRUE(report.ok()) << workload.name;
    EXPECT_TRUE(report->clean())
        << workload.name << ":\n" << report->to_string();
  }
}

TEST(Lint, FlagsUninitializedReads) {
  auto report = lint_source(read_negative("uninit_read.s"));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(has_kind(*report, CheckKind::kUninitRead));
  // Both t0 and t1 are flagged at the same pc.
  EXPECT_EQ(report->findings.size(), 2u);
}

TEST(Lint, FlagsUnreachableBlockAndDeadWrite) {
  auto report = lint_source(read_negative("dead_code.s"));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(has_kind(*report, CheckKind::kUnreachableBlock));
  EXPECT_TRUE(has_kind(*report, CheckKind::kDeadWrite));
}

TEST(Lint, FlagsUnbalancedStackAndReportsDepth) {
  auto report = lint_source(read_negative("unbalanced_stack.s"));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(has_kind(*report, CheckKind::kStackImbalance));
  EXPECT_EQ(report->max_stack_depth, 16);
}

TEST(Lint, FlagsOutOfPolicyUartStoreOnly) {
  auto program = assembler::assemble(read_negative("uart_attack_static.s"));
  ASSERT_TRUE(program.ok()) << program.error().to_string();
  auto policy = memwatch::parse_policy(read_negative("uart.policy"),
                                       program->symbols);
  ASSERT_TRUE(policy.ok()) << policy.error().to_string();
  LintOptions options;
  options.policy = &*policy;
  auto report = lint_program(*program, options);
  ASSERT_TRUE(report.ok());
  // Exactly one finding: the attack store. The in-window driver store and
  // the .data accesses stay clean.
  ASSERT_EQ(report->findings.size(), 1u);
  EXPECT_EQ(report->findings[0].kind, CheckKind::kPolicyViolation);
  EXPECT_NE(report->findings[0].message.find("uart"), std::string::npos);
}

TEST(Lint, FlagsUnresolvedIndirectJump) {
  auto report = lint_source(read_negative("jump_table_unresolved.s"));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(has_kind(*report, CheckKind::kUnresolvedIndirect));
}

TEST(Lint, StackDepthSumsOverCallChain) {
  auto report = lint_source(R"(
_start:
    addi sp, sp, -32
    call helper
    addi sp, sp, 32
    li a0, 0
    li a7, 93
    ecall
helper:
    addi sp, sp, -48
    sw zero, 0(sp)
    addi sp, sp, 48
    ret
  )");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->to_string();
  EXPECT_EQ(report->max_stack_depth, 80);
}

// ------------------------------------------------------------- policy file

TEST(PolicyFile, ParsesRegionsAndDefaults) {
  auto policy = memwatch::parse_policy(R"(
# comment
default deny
region rom 0x1000 0x100 perm r
region dev 0x2000 16 perm rw pc 0x80 0x90
)");
  ASSERT_TRUE(policy.ok()) << policy.error().to_string();
  EXPECT_FALSE(policy->default_allow);
  ASSERT_EQ(policy->regions.size(), 2u);
  EXPECT_TRUE(policy->regions[0].allow_read);
  EXPECT_FALSE(policy->regions[0].allow_write);
  EXPECT_TRUE(policy->regions[1].pc_allowed(0x84));
  EXPECT_FALSE(policy->regions[1].pc_allowed(0x94));
}

TEST(PolicyFile, ResolvesSymbolsAndReportsErrors) {
  std::map<std::string, u32> symbols{{"uart", 0x10000000u}};
  auto ok = memwatch::parse_policy("region u uart 8 perm w\n", symbols);
  ASSERT_TRUE(ok.ok()) << ok.error().to_string();
  EXPECT_EQ(ok->regions[0].base, 0x10000000u);

  auto bad = memwatch::parse_policy("region u nosuch 8\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message().find("line 1"), std::string::npos);
}

}  // namespace
}  // namespace s4e::dataflow
