# fixed-point PID-style controller with convergence self-check
# expected exit code: 0

_start:
    li s0, 0           # plant state x (Q4)
    li s1, 3200        # target (200 << 4)
    li s2, 50          # control steps
    li s3, 3           # proportional gain
pid_loop:
    sub t0, s1, s0     # error
    mul t1, t0, s3
    srai t2, t1, 4     # u = (Kp * e) >> 4
    add s0, s0, t2     # plant: x += u
    addi s2, s2, -1
    bnez s2, pid_loop
    sub t0, s1, s0     # residual error
    bltz t0, pid_bad
    li t1, 9
    bge t0, t1, pid_bad
    li a0, 0
    li a7, 93
    ecall
pid_bad:
    li a0, 1
    li a7, 93
    ecall
