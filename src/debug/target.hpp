// Machine-side adapter of the GDB stub: register/memory access in the RSP
// wire format, break/watchpoint plumbing, and the bounded-slice resume loop.
// Protocol framing and command parsing live in server.cpp; this layer only
// knows the Machine.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "vp/machine.hpp"

namespace s4e::debug {

// GDB register numbering for RV32: x0..x31 are 0..31, the PC is 32.
inline constexpr unsigned kPcRegnum = 32;
inline constexpr unsigned kRegCount = 33;

// The RV32 target description served through qXfer:features:read.
std::string_view target_xml();

class DebugTarget {
 public:
  explicit DebugTarget(vp::Machine& machine) : machine_(machine) {}

  vp::Machine& machine() noexcept { return machine_; }

  // SMP view for the stub's thread model (thread id = hart index + 1).
  unsigned num_harts() const noexcept { return machine_.num_harts(); }
  unsigned active_hart() const noexcept { return machine_.active_hart(); }

  // --- Registers (little-endian hex wire format). The no-arg forms operate
  // on the active hart; the hart-index forms are the stub's Hg-selected
  // thread (identical for a single-hart machine).

  // All 33 registers concatenated (the `g` reply).
  std::string read_registers() const { return read_registers(active_hart()); }
  std::string read_registers(unsigned hart) const;
  // Write from a `G` payload; fails on short/malformed input.
  bool write_registers(std::string_view hex) {
    return write_registers(active_hart(), hex);
  }
  bool write_registers(unsigned hart, std::string_view hex);
  // Single register, or empty on a bad regnum (`p`).
  std::string read_register(unsigned regnum) const {
    return read_register(active_hart(), regnum);
  }
  std::string read_register(unsigned hart, unsigned regnum) const;
  bool write_register(unsigned regnum, u32 value) {
    return write_register(active_hart(), regnum, value);
  }
  bool write_register(unsigned hart, unsigned regnum, u32 value);

  // --- Memory. RAM-backed only: a debugger peek must not trigger MMIO
  // side effects, so device windows read as errors rather than as loads.
  Status read_memory(u32 address, u32 length, std::string& hex_out) const;
  // Writes also invalidate overlapping translation blocks — the debugger
  // may be patching code.
  Status write_memory(u32 address, const std::vector<u8>& bytes);

  // --- Break/watchpoints (GDB Z-packet types 0..4).

  // type: 0/1 = sw/hw breakpoint (both map to the VP's one kind),
  // 2 = write, 3 = read, 4 = access watchpoint. Returns false on an
  // unsupported type.
  bool insert_point(unsigned type, u32 address, u32 kind);
  bool remove_point(unsigned type, u32 address, u32 kind);

  // --- Run control.

  // Step exactly one instruction (resumes over a breakpoint at the PC).
  vp::RunResult step() { return machine_.step(); }

  // Continue in bounded slices until a real stop. Between slices,
  // `interrupted` is polled; when it returns true the resume stops with
  // kDebugInterrupt. Honors the machine's global instruction budget.
  vp::RunResult resume(const std::function<bool()>& interrupted);

  // Instructions per slice between interrupt polls (tests shrink this).
  void set_slice(u64 insns) noexcept { slice_ = insns; }

 private:
  vp::Machine& machine_;
  u64 slice_ = 200'000;
};

}  // namespace s4e::debug
