// WCET-annotated control-flow graph — the interchange artefact between the
// static analyzer and the QTA co-simulation.
//
// This reproduces the `ait2qta` flow of the QTA tool demo: aiT's report is
// preprocessed into a CFG whose nodes are blocks and whose edges carry the
// worst-case cost of moving between blocks; QEMU (here: the VP) then loads
// the binary *and* this annotated graph and simulates both together. The
// text format is versioned and line-oriented so it survives tool revisions.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/status.hpp"

namespace s4e::wcet {

struct AnnotatedBlock {
  u32 start = 0;
  u32 end = 0;    // exclusive
  u32 wcet = 0;   // worst-case cycles of the block's own instructions
  u32 function_entry = 0;  // which procedure the block belongs to
};

struct AnnotatedEdge {
  u32 source = 0;       // block start address
  u32 target = 0;       // block start address
  u32 penalty = 0;      // worst-case cycles charged on this transition
  bool is_back_edge = false;
};

struct AnnotatedCfg {
  std::string program_name = "program";
  u32 entry = 0;
  u64 total_wcet = 0;        // static bound for a whole run from entry
  u32 redirect_penalty = 0;  // per non-contiguous transition (QTA rule)
  // When the timing model includes a branch predictor, a mispredict can
  // also hit the fall-through direction, so QTA must charge the penalty on
  // *every* block transition, not only non-contiguous ones.
  bool penalize_all_transitions = false;
  std::vector<AnnotatedBlock> blocks;
  std::vector<AnnotatedEdge> edges;
  std::map<u32, u32> loop_bounds;  // header block start -> bound

  // Block whose start address equals `address`, or nullptr.
  const AnnotatedBlock* block_at(u32 address) const {
    auto it = index_.find(address);
    return it == index_.end() ? nullptr : &blocks[it->second];
  }

  // Rebuild the start-address index (call after filling `blocks`).
  void reindex();

  // Serialize to the versioned text format.
  std::string serialize() const;

  // Parse the text format (strict: unknown record kinds are errors, so a
  // future format bump cannot be silently misread).
  static Result<AnnotatedCfg> parse(std::string_view text);

 private:
  std::map<u32, std::size_t> index_;
};

}  // namespace s4e::wcet
