#include <algorithm>
#include <set>

#include "cfg/cfg.hpp"
#include "common/strings.hpp"
#include "isa/decoder.hpp"
#include "isa/rvc.hpp"
#include "isa/disasm.hpp"

namespace s4e::cfg {

namespace {

using isa::Instr;
using isa::Op;

// Classify the control-flow role of an instruction.
Terminator classify(const Instr& instr) {
  switch (instr.op) {
    case Op::kJal:
      return instr.rd == 0 ? Terminator::kJump : Terminator::kCall;
    case Op::kJalr:
      if (instr.rd == 0 && instr.rs1 == 1 && instr.imm == 0) {
        return Terminator::kReturn;
      }
      return Terminator::kIndirect;
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kMret:
      return Terminator::kExit;
    default:
      return instr.is_branch() ? Terminator::kBranch
                               : Terminator::kFallThrough;
  }
}

// Fetch and decode the (possibly compressed) instruction at `address`.
Result<Instr> fetch_instr(const assembler::Program& program, u32 address) {
  S4E_TRY(half, program.read_half(address));
  if (isa::is_compressed(static_cast<u16>(half))) {
    return isa::decompress(static_cast<u16>(half));
  }
  S4E_TRY(word, program.read_word(address));
  return isa::decoder().decode(word);
}

// Per-function discovery state.
struct Discovery {
  std::map<u32, Instr> insns;
  std::set<u32> leaders;
  std::set<u32> callees;  // call targets found in this function
};

// Resolved targets for the jalr at `address`, or nullptr.
const std::vector<u32>* targets_at(const BuildOptions& options, u32 address) {
  if (options.indirect_targets == nullptr) return nullptr;
  auto it = options.indirect_targets->find(address);
  return it == options.indirect_targets->end() ? nullptr : &it->second;
}

// Decode and explore all paths of one function. `name` is the enclosing
// function's symbol (for diagnostics).
Result<Discovery> discover(const assembler::Program& program, u32 entry,
                           const std::string& name,
                           const BuildOptions& options) {
  Discovery d;
  d.leaders.insert(entry);
  std::vector<u32> worklist{entry};
  while (!worklist.empty()) {
    u32 address = worklist.back();
    worklist.pop_back();
    while (d.insns.find(address) == d.insns.end()) {
      S4E_TRY(instr, fetch_instr(program, address));
      d.insns.emplace(address, instr);
      const Terminator term = classify(instr);
      switch (term) {
        case Terminator::kFallThrough:
          address += instr.length;
          continue;
        case Terminator::kBranch: {
          const u32 taken = address + static_cast<u32>(instr.imm);
          d.leaders.insert(taken);
          d.leaders.insert(address + instr.length);
          worklist.push_back(taken);
          address += instr.length;
          continue;
        }
        case Terminator::kJump: {
          const u32 target = address + static_cast<u32>(instr.imm);
          d.leaders.insert(target);
          worklist.push_back(target);
          break;
        }
        case Terminator::kCall: {
          const u32 callee = address + static_cast<u32>(instr.imm);
          d.callees.insert(callee);
          d.leaders.insert(address + instr.length);
          address += instr.length;  // continue at the return point
          continue;
        }
        case Terminator::kReturn:
        case Terminator::kExit:
          break;
        case Terminator::kIndirect: {
          if (const std::vector<u32>* targets = targets_at(options, address)) {
            for (u32 target : *targets) {
              d.leaders.insert(target);
              worklist.push_back(target);
            }
            break;  // path continues only at the resolved targets
          }
          if (options.tolerate_unresolved) break;  // successor-less terminator
          return Error(
              ErrorCode::kAnalysisError,
              format("indirect jump at 0x%08x (%s) in function '%s' — not "
                     "analyzable; only 'ret' (jalr zero, 0(ra)) and "
                     "dataflow-resolved targets are supported",
                     address, isa::disassemble(instr).c_str(), name.c_str()));
        }
      }
      break;  // path ended (jump handled via worklist)
    }
  }
  return d;
}

// Split the discovered instruction stream into basic blocks and wire edges.
Result<Function> build_function(const assembler::Program& program, u32 entry,
                                const BuildOptions& options) {
  Function fn;
  fn.entry = entry;
  fn.name = format("fn_%08x", entry);
  for (const auto& [name, value] : program.symbols) {
    if (value == entry) {
      fn.name = name;
      break;
    }
  }
  S4E_TRY(d, discover(program, entry, fn.name, options));

  // Block formation: walk from each leader until a terminator or the next
  // leader. (Leaders outside the discovered set — e.g. the fall-through of
  // a terminal path — are skipped.)
  for (u32 leader : d.leaders) {
    if (d.insns.find(leader) == d.insns.end()) continue;
    BasicBlock block;
    block.id = static_cast<BlockId>(fn.blocks.size());
    block.start = leader;
    u32 address = leader;
    while (true) {
      auto it = d.insns.find(address);
      S4E_CHECK_MSG(it != d.insns.end(), "instruction stream has a hole");
      block.insns.push_back(it->second);
      const Terminator term = classify(it->second);
      address += it->second.length;
      if (term != Terminator::kFallThrough) {
        block.terminator = term;
        break;
      }
      if (d.leaders.count(address) != 0) {
        block.terminator = Terminator::kFallThrough;
        break;
      }
      if (d.insns.find(address) == d.insns.end()) {
        return Error(ErrorCode::kAnalysisError,
                     format("code at 0x%08x falls through into undecoded "
                            "memory", address - 4));
      }
    }
    block.end = address;
    fn.blocks.push_back(std::move(block));
  }

  // The entry block must be blocks[0] (leaders iterate in address order and
  // the entry is the lowest *reachable* leader only by convention; enforce
  // explicitly).
  auto entry_it = std::find_if(fn.blocks.begin(), fn.blocks.end(),
                               [&](const BasicBlock& b) { return b.start == entry; });
  S4E_CHECK(entry_it != fn.blocks.end());
  if (entry_it != fn.blocks.begin()) {
    std::iter_swap(fn.blocks.begin(), entry_it);
  }
  for (BlockId id = 0; id < fn.blocks.size(); ++id) {
    fn.blocks[id].id = id;
    fn.block_by_start[fn.blocks[id].start] = id;
  }

  // Edges.
  auto add_edge = [&](BlockId from, u32 target_addr, EdgeKind kind) -> Status {
    auto it = fn.block_by_start.find(target_addr);
    if (it == fn.block_by_start.end()) {
      return Error(ErrorCode::kAnalysisError,
                   format("edge target 0x%08x is not a block head",
                          target_addr));
    }
    fn.blocks[from].successors.push_back(Edge{it->second, kind});
    fn.blocks[it->second].predecessors.push_back(from);
    return Status();
  };

  for (BasicBlock& block : fn.blocks) {
    const Instr& last = block.insns.back();
    const u32 last_addr = block.end - last.length;
    switch (block.terminator) {
      case Terminator::kFallThrough:
        S4E_TRY_STATUS(add_edge(block.id, block.end, EdgeKind::kFallThrough));
        break;
      case Terminator::kBranch:
        S4E_TRY_STATUS(add_edge(block.id,
                                last_addr + static_cast<u32>(last.imm),
                                EdgeKind::kTaken));
        S4E_TRY_STATUS(add_edge(block.id, block.end, EdgeKind::kFallThrough));
        break;
      case Terminator::kJump:
        S4E_TRY_STATUS(add_edge(block.id,
                                last_addr + static_cast<u32>(last.imm),
                                EdgeKind::kTaken));
        break;
      case Terminator::kCall:
        block.call_target = last_addr + static_cast<u32>(last.imm);
        S4E_TRY_STATUS(add_edge(block.id, block.end, EdgeKind::kCallReturn));
        break;
      case Terminator::kReturn:
      case Terminator::kExit:
        break;
      case Terminator::kIndirect: {
        if (const std::vector<u32>* targets = targets_at(options, last_addr)) {
          for (u32 target : *targets) {
            S4E_TRY_STATUS(add_edge(block.id, target, EdgeKind::kTaken));
          }
          block.indirect_targets = *targets;
          break;
        }
        if (options.tolerate_unresolved) break;  // no successors
        return Error(ErrorCode::kAnalysisError,
                     format("indirect terminator at 0x%08x in function '%s'",
                            last_addr, fn.name.c_str()));
      }
    }
  }
  return fn;
}

}  // namespace

Result<ProgramCfg> build_cfg(const assembler::Program& program) {
  return build_cfg(program, BuildOptions{});
}

Result<ProgramCfg> build_cfg(const assembler::Program& program,
                             const BuildOptions& options) {
  ProgramCfg cfg;
  cfg.loop_bounds = program.loop_bounds;

  std::vector<u32> worklist{program.entry};
  std::set<u32> seen{program.entry};
  while (!worklist.empty()) {
    const u32 entry = worklist.back();
    worklist.pop_back();
    S4E_TRY(fn, build_function(program, entry, options));
    // Queue newly discovered callees.
    for (const BasicBlock& block : fn.blocks) {
      if (block.terminator == Terminator::kCall &&
          seen.insert(block.call_target).second) {
        worklist.push_back(block.call_target);
      }
    }
    cfg.function_by_entry[fn.entry] = static_cast<u32>(cfg.functions.size());
    cfg.functions.push_back(std::move(fn));
  }
  // functions[0] must be the program entry (worklist starts there, so it is).
  S4E_CHECK(cfg.functions[0].entry == program.entry);
  return cfg;
}

std::string to_dot(const ProgramCfg& cfg) {
  std::string out = "digraph cfg {\n  node [shape=box, fontname=monospace];\n";
  for (const Function& fn : cfg.functions) {
    out += format("  subgraph cluster_%08x {\n    label=\"%s\";\n", fn.entry,
                  fn.name.c_str());
    for (const BasicBlock& block : fn.blocks) {
      std::string label = format("B%u [0x%08x, 0x%08x)", block.id,
                                 block.start, block.end);
      out += format("    n%08x [label=\"%s\"];\n", block.start, label.c_str());
    }
    for (const BasicBlock& block : fn.blocks) {
      for (const Edge& edge : block.successors) {
        const char* style = edge.kind == EdgeKind::kTaken ? "solid"
                            : edge.kind == EdgeKind::kFallThrough ? "dashed"
                                                                  : "dotted";
        out += format("    n%08x -> n%08x [style=%s];\n", block.start,
                      fn.blocks[edge.target].start, style);
      }
      if (block.terminator == Terminator::kCall) {
        out += format("    n%08x -> n%08x [color=blue, label=call];\n",
                      block.start, block.call_target);
      }
    }
    out += "  }\n";
  }
  out += "}\n";
  return out;
}

}  // namespace s4e::cfg
