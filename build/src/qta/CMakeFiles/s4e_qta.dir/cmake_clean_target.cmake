file(REMOVE_RECURSE
  "libs4e_qta.a"
)
