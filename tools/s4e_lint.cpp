// s4e-lint — static binary linter over the reconstructed CFG.
//
// Runs the data-flow analysis (abstract register values, liveness,
// reachability, indirect-target resolution) and reports uninitialized
// register reads, unreachable code, dead register writes, stack imbalance
// and static stack depth, memory-policy violations and unresolved indirect
// jumps. Accepts an ELF or a .s source (assembled in-process).
//
//   s4e-lint <prog.elf|prog.s> [--policy file.policy] [--stack-limit BYTES]
//            [--json] [--quiet]
//
// --json prints one finding per line as a JSON object (machine-readable;
// the human report is the default and is unchanged). --stack-limit flags a
// statically-proven stack depth above BYTES (default: the VP's RAM size —
// sp starts at the top of RAM, so a deeper stack is guaranteed to
// overflow); programs whose depth cannot be bounded are not flagged by
// this check (but recursion is flagged on its own).
//
// Exit status: 0 = clean, 1 = findings reported, 2 = usage/analysis error.
#include <cstdio>

#include "asm/assembler.hpp"
#include "dataflow/lint.hpp"
#include "elf/elf32.hpp"
#include "memwatch/policy_file.hpp"
#include "tools/tool_util.hpp"
#include "vp/machine.hpp"

int main(int argc, char** argv) {
  using namespace s4e;
  static constexpr char kUsage[] =
      "usage: s4e-lint <prog.elf|prog.s> [--policy file.policy] "
      "[--stack-limit BYTES] [--json] [--quiet]\n";
  tools::Args args(argc, argv, {"--policy", "--stack-limit"},
                   {"--json", "--quiet"});
  if (const int code = tools::standard_flags(args, "s4e-lint", kUsage);
      code >= 0) {
    return code;
  }
  if (args.positional().size() != 1) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  const std::string& path = args.positional()[0];

  Result<assembler::Program> program =
      ends_with(path, ".s")
          ? [&]() -> Result<assembler::Program> {
              auto source = tools::read_file(path);
              if (!source.ok()) return source.error();
              return assembler::assemble(*source);
            }()
          : elf::read_elf_file(path);
  if (!program.ok()) {
    std::fprintf(stderr, "s4e-lint: %s\n", program.error().to_string().c_str());
    return 2;
  }

  memwatch::Policy policy;
  dataflow::LintOptions options;
  if (args.has("--policy")) {
    auto text = tools::read_file(args.value("--policy"));
    if (!text.ok()) {
      std::fprintf(stderr, "s4e-lint: %s\n", text.error().to_string().c_str());
      return 2;
    }
    auto parsed = memwatch::parse_policy(*text, program->symbols);
    if (!parsed.ok()) {
      std::fprintf(stderr, "s4e-lint: %s\n",
                   parsed.error().to_string().c_str());
      return 2;
    }
    policy = std::move(*parsed);
    options.policy = &policy;
  }
  options.stack_limit = static_cast<i64>(vp::MachineConfig{}.ram_size);
  if (args.has("--stack-limit")) {
    const auto limit = parse_integer(args.value("--stack-limit"));
    if (!limit || *limit < 0) {
      std::fprintf(stderr,
                   "s4e-lint: --stack-limit expects a byte count (got %s)\n",
                   args.value("--stack-limit").c_str());
      return 2;
    }
    options.stack_limit = *limit;
  }

  auto report = dataflow::lint_program(*program, options);
  if (!report.ok()) {
    std::fprintf(stderr, "s4e-lint: %s\n", report.error().to_string().c_str());
    return 2;
  }
  if (args.has("--json")) {
    for (const auto& finding : report->findings) {
      std::printf("%s\n", finding.to_json().c_str());
    }
  } else if (!args.has("--quiet")) {
    std::printf("%s", report->to_string().c_str());
  }
  return tools::finish_stdout("s4e-lint", report->clean() ? 0 : 1);
}
