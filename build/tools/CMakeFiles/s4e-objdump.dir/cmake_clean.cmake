file(REMOVE_RECURSE
  "CMakeFiles/s4e-objdump.dir/s4e_objdump.cpp.o"
  "CMakeFiles/s4e-objdump.dir/s4e_objdump.cpp.o.d"
  "s4e-objdump"
  "s4e-objdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e-objdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
