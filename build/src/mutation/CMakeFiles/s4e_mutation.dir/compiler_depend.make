# Empty compiler generated dependencies file for s4e_mutation.
# This may be replaced when dependencies are built.
