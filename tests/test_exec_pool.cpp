// Thread pool / campaign executor tests: lifecycle, bounded-queue
// backpressure, exception propagation, and the determinism guarantee the
// campaign engines rely on (jobs=1 output == jobs=8 output, bit for bit).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "asm/assembler.hpp"
#include "exec/campaign_executor.hpp"
#include "exec/pool.hpp"
#include "fault/fault.hpp"
#include "mutation/mutation.hpp"
#include "obs/metrics.hpp"

namespace s4e::exec {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndStops) {
  std::atomic<int> counter{0};
  {
    ThreadPool::Options options;
    options.threads = 4;
    ThreadPool pool(options);
    EXPECT_EQ(pool.thread_count(), 4u);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(pool.submit([&counter] { ++counter; }));
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
    pool.shutdown();
    // After shutdown the pool drops new work.
    EXPECT_FALSE(pool.submit([&counter] { ++counter; }));
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool::Options options;
    options.threads = 2;
    ThreadPool pool(options);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // ~ThreadPool: queued tasks still run before the join
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ResolveJobs) {
  EXPECT_EQ(ThreadPool::resolve_jobs(3), 3u);
  EXPECT_GE(ThreadPool::resolve_jobs(0), 1u);
  // Absurd requests (e.g. a negative count cast to unsigned) are clamped
  // instead of aborting in std::thread.
  EXPECT_EQ(ThreadPool::resolve_jobs(0xfffffffdu), 4096u);
}

TEST(ThreadPool, BoundedQueueAppliesBackpressure) {
  ThreadPool::Options options;
  options.threads = 1;
  options.queue_capacity = 2;
  ThreadPool pool(options);

  // Park the single worker on a gate so the queue can fill up.
  std::mutex mutex;
  std::condition_variable cv;
  bool gate_open = false;
  pool.submit([&] {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return gate_open; });
  });

  // Fill the queue (capacity 2), then submit one more from a producer
  // thread: that call must block until the worker drains an entry.
  pool.submit([] {});
  pool.submit([] {});
  std::atomic<bool> producer_done{false};
  std::thread producer([&] {
    pool.submit([] {});
    producer_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(producer_done.load()) << "submit did not block on a full queue";

  {
    std::lock_guard lock(mutex);
    gate_open = true;
  }
  cv.notify_all();
  producer.join();
  EXPECT_TRUE(producer_done.load());
  pool.wait_idle();
}

TEST(ThreadPool, WaitIdleRethrowsFirstTaskException) {
  ThreadPool::Options options;
  options.threads = 2;
  ThreadPool pool(options);
  std::atomic<int> completed{0};
  pool.submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 10; ++i) {
    pool.submit([&completed] { ++completed; });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The failure does not poison the pool: later work still runs.
  EXPECT_EQ(completed.load(), 10);
  pool.submit([&completed] { ++completed; });
  pool.wait_idle();  // no stale exception left behind
  EXPECT_EQ(completed.load(), 11);
}

TEST(CampaignExecutor, FillsEverySlotExactlyOnce) {
  CampaignExecutor executor(8);
  EXPECT_EQ(executor.jobs(), 8u);
  std::vector<std::atomic<int>> slots(500);
  executor.run(slots.size(), [&](std::size_t i) { ++slots[i]; });
  for (const auto& slot : slots) {
    EXPECT_EQ(slot.load(), 1);
  }
}

TEST(CampaignExecutor, SingleJobRunsInlineInSubmissionOrder) {
  CampaignExecutor executor(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  executor.run(10, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(CampaignExecutor, PropagatesJobException) {
  CampaignExecutor executor(4);
  EXPECT_THROW(executor.run(20,
                            [](std::size_t i) {
                              if (i == 7) throw std::runtime_error("job 7");
                            }),
               std::runtime_error);
}

TEST(CampaignExecutorAffine, FillsEverySlotOnceWithValidLanes) {
  CampaignExecutor executor(4);
  std::vector<std::atomic<int>> slots(300);
  std::atomic<bool> lane_in_range{true};
  executor.run_affine(slots.size(), [&](unsigned worker, std::size_t i) {
    if (worker >= executor.jobs()) lane_in_range.store(false);
    ++slots[i];
  });
  EXPECT_TRUE(lane_in_range.load());
  for (const auto& slot : slots) {
    EXPECT_EQ(slot.load(), 1);
  }
}

TEST(CampaignExecutorAffine, MetricShardsAggregateDeterministically) {
  // The obs::MetricsRegistry concurrency model under the real pool: every
  // lane writes only its own shard (plain stores, no atomics), the
  // executor barrier orders the writes before aggregation, and the fold is
  // partition-invariant — so a 4-lane run must aggregate to exactly the
  // serial answer. Run under -DS4E_SANITIZE=thread this is the race check
  // for the lock-free-by-partitioning claim.
  auto aggregate_with = [](unsigned jobs) {
    obs::MetricsRegistry registry;
    const auto runs = registry.add_counter("runs");
    const auto sum = registry.add_counter("sum");
    const auto peak = registry.add_gauge("peak");
    const auto hist = registry.add_histogram("value", {100, 1000});
    CampaignExecutor executor(jobs);
    registry.open_shards(executor.jobs());
    executor.run_affine(500, [&](unsigned worker, std::size_t i) {
      auto& shard = registry.shard(worker);
      const u64 value = static_cast<u64>(i) * 7 % 1500;
      shard.add(runs, 1);
      shard.add(sum, value);
      shard.set(peak, value);
      shard.observe(hist, value);
    });
    return registry.to_json();
  };
  const std::string serial = aggregate_with(1);
  EXPECT_EQ(serial, aggregate_with(2));
  EXPECT_EQ(serial, aggregate_with(4));
}

TEST(CampaignExecutorAffine, SingleJobRunsInlineOnLaneZero) {
  CampaignExecutor executor(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  executor.run_affine(10, [&](unsigned worker, std::size_t i) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(CampaignExecutorAffine, EachLaneKeepsItsOwnThread) {
  // The point of worker affinity: lane k's jobs all run on one thread, so a
  // per-lane vp::Machine is never touched concurrently.
  CampaignExecutor executor(3);
  std::vector<std::thread::id> lane_thread(3);
  std::vector<std::atomic<int>> lane_switches(3);
  executor.run_affine(200, [&](unsigned worker, std::size_t) {
    const auto self = std::this_thread::get_id();
    if (lane_thread[worker] == std::thread::id{}) {
      lane_thread[worker] = self;
    } else if (lane_thread[worker] != self) {
      ++lane_switches[worker];
    }
  });
  for (const auto& switches : lane_switches) {
    EXPECT_EQ(switches.load(), 0);
  }
}

TEST(CampaignExecutorAffine, PropagatesJobException) {
  CampaignExecutor executor(4);
  EXPECT_THROW(
      executor.run_affine(20,
                          [](unsigned, std::size_t i) {
                            if (i == 7) throw std::runtime_error("job 7");
                          }),
      std::runtime_error);
}

TEST(CampaignProgress, CountsAndSnapshots) {
  CampaignProgress progress;
  progress.begin(10);
  auto empty = progress.snapshot();
  EXPECT_EQ(empty.total, 10u);
  EXPECT_EQ(empty.completed, 0u);
  EXPECT_DOUBLE_EQ(empty.fraction(), 0.0);

  progress.record(0);
  progress.record(0);
  progress.record(3);
  progress.record(CampaignProgress::kBuckets);  // out-of-range: done only
  auto snap = progress.snapshot();
  EXPECT_EQ(snap.completed, 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_DOUBLE_EQ(snap.fraction(), 0.4);

  progress.begin(5);  // reusable across campaigns
  EXPECT_EQ(progress.snapshot().completed, 0u);
}

// ---------------------------------------------------------------------------
// Determinism: parallel campaigns must be bit-identical to serial ones.

const char* kChecksumSource = R"(
_start:
    la t0, data
    li t1, 8
    li a0, 0
loop:
    lw t2, 0(t0)
    add a0, a0, t2
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, loop
    li a7, 93
    ecall
.data
data:
    .word 1, 2, 3, 4, 5, 6, 7, 8
)";

assembler::Program build_checksum() {
  auto program = assembler::assemble(kChecksumSource);
  EXPECT_TRUE(program.ok());
  return *program;
}

TEST(Determinism, FaultCampaignSerialEqualsParallel) {
  auto program = build_checksum();
  fault::CampaignConfig config;
  config.seed = 42;
  config.mutant_count = 80;

  config.jobs = 1;
  fault::Campaign serial(program, config);
  auto serial_result = serial.run();
  ASSERT_TRUE(serial_result.ok()) << serial_result.error().to_string();

  config.jobs = 8;
  fault::Campaign parallel(program, config);
  auto parallel_result = parallel.run();
  ASSERT_TRUE(parallel_result.ok()) << parallel_result.error().to_string();

  EXPECT_EQ(serial_result->golden_exit_code,
            parallel_result->golden_exit_code);
  EXPECT_EQ(serial_result->golden_instructions,
            parallel_result->golden_instructions);
  EXPECT_EQ(serial_result->golden_memory_hash,
            parallel_result->golden_memory_hash);
  // simulated_instructions is a float sum: identical aggregation order
  // makes even that bit-exact.
  EXPECT_EQ(serial_result->simulated_instructions,
            parallel_result->simulated_instructions);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(serial_result->outcome_counts[i],
              parallel_result->outcome_counts[i]);
  }
  ASSERT_EQ(serial_result->mutants.size(), parallel_result->mutants.size());
  for (std::size_t i = 0; i < serial_result->mutants.size(); ++i) {
    const auto& a = serial_result->mutants[i];
    const auto& b = parallel_result->mutants[i];
    EXPECT_EQ(a.outcome, b.outcome) << "mutant " << i;
    EXPECT_EQ(a.exit_code, b.exit_code) << "mutant " << i;
    EXPECT_EQ(a.instructions, b.instructions) << "mutant " << i;
    EXPECT_EQ(a.spec.to_string(), b.spec.to_string()) << "mutant " << i;
  }
  // The full report strings must match byte for byte.
  EXPECT_EQ(serial_result->to_string(), parallel_result->to_string());
}

TEST(Determinism, MutationCampaignSerialEqualsParallel) {
  auto program = build_checksum();
  mutation::MutationConfig config;

  config.jobs = 1;
  mutation::MutationCampaign serial(program, config);
  auto serial_score = serial.run();
  ASSERT_TRUE(serial_score.ok()) << serial_score.error().to_string();

  config.jobs = 8;
  mutation::MutationCampaign parallel(program, config);
  auto parallel_score = parallel.run();
  ASSERT_TRUE(parallel_score.ok()) << parallel_score.error().to_string();

  ASSERT_EQ(serial_score->results.size(), parallel_score->results.size());
  EXPECT_GT(serial_score->results.size(), 0u);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(serial_score->verdict_counts[i],
              parallel_score->verdict_counts[i]);
  }
  for (std::size_t i = 0; i < serial_score->results.size(); ++i) {
    const auto& a = serial_score->results[i];
    const auto& b = parallel_score->results[i];
    EXPECT_EQ(a.verdict, b.verdict) << "mutant " << i;
    EXPECT_EQ(a.exit_code, b.exit_code) << "mutant " << i;
    EXPECT_EQ(a.mutant.address, b.mutant.address) << "mutant " << i;
    EXPECT_EQ(a.mutant.mutated, b.mutant.mutated) << "mutant " << i;
  }
  EXPECT_EQ(serial_score->to_string(), parallel_score->to_string());
}

// Per-worker machine reuse under threads: with --jobs 2 each worker lane
// owns a long-lived vp::Machine that is snapshot-restored between mutants.
// Run under tsan (ctest -L tsan) this is the race check for that path; the
// results must also stay bit-identical to the fresh-machine path.
TEST(Determinism, FaultCampaignMachineReuseAcrossTwoWorkers) {
  auto program = build_checksum();
  fault::CampaignConfig config;
  config.seed = 42;
  config.mutant_count = 80;
  config.jobs = 2;

  config.reuse_machines = false;
  fault::Campaign fresh(program, config);
  auto fresh_result = fresh.run();
  ASSERT_TRUE(fresh_result.ok()) << fresh_result.error().to_string();

  config.reuse_machines = true;
  fault::Campaign reused(program, config);
  auto reused_result = reused.run();
  ASSERT_TRUE(reused_result.ok()) << reused_result.error().to_string();

  EXPECT_EQ(fresh_result->to_string(), reused_result->to_string());
  ASSERT_EQ(fresh_result->mutants.size(), reused_result->mutants.size());
  for (std::size_t i = 0; i < fresh_result->mutants.size(); ++i) {
    const auto& a = fresh_result->mutants[i];
    const auto& b = reused_result->mutants[i];
    EXPECT_EQ(a.outcome, b.outcome) << "mutant " << i;
    EXPECT_EQ(a.exit_code, b.exit_code) << "mutant " << i;
    EXPECT_EQ(a.instructions, b.instructions) << "mutant " << i;
  }
  // Every mutant ran on a restored machine; the stats aggregate over the
  // (at most 2) worker lanes that actually claimed work.
  EXPECT_EQ(reused_result->snapshot_stats.restores, 80u);
  EXPECT_GE(reused_result->snapshot_stats.snapshots, 1u);
  EXPECT_LE(reused_result->snapshot_stats.snapshots, 2u);
}

TEST(Determinism, MutationCampaignMachineReuseAcrossTwoWorkers) {
  auto program = build_checksum();
  mutation::MutationConfig config;
  config.jobs = 2;

  config.reuse_machines = false;
  mutation::MutationCampaign fresh(program, config);
  auto fresh_score = fresh.run();
  ASSERT_TRUE(fresh_score.ok()) << fresh_score.error().to_string();

  config.reuse_machines = true;
  mutation::MutationCampaign reused(program, config);
  auto reused_score = reused.run();
  ASSERT_TRUE(reused_score.ok()) << reused_score.error().to_string();

  EXPECT_EQ(fresh_score->to_string(), reused_score->to_string());
  ASSERT_EQ(fresh_score->results.size(), reused_score->results.size());
  EXPECT_GT(reused_score->results.size(), 0u);
  for (std::size_t i = 0; i < fresh_score->results.size(); ++i) {
    const auto& a = fresh_score->results[i];
    const auto& b = reused_score->results[i];
    EXPECT_EQ(a.verdict, b.verdict) << "mutant " << i;
    EXPECT_EQ(a.exit_code, b.exit_code) << "mutant " << i;
  }
  EXPECT_EQ(reused_score->snapshot_stats.restores,
            reused_score->results.size());
}

TEST(Determinism, ProgressReachesTotalAfterParallelRun) {
  auto program = build_checksum();
  fault::CampaignConfig config;
  config.seed = 7;
  config.mutant_count = 40;
  config.jobs = 4;
  fault::Campaign campaign(program, config);
  ASSERT_TRUE(campaign.run().ok());
  const auto snap = campaign.progress().snapshot();
  EXPECT_EQ(snap.total, 40u);
  EXPECT_EQ(snap.completed, 40u);
  u64 histogram_sum = 0;
  for (u64 bucket : snap.buckets) histogram_sum += bucket;
  EXPECT_EQ(histogram_sum, 40u);
  EXPECT_DOUBLE_EQ(snap.fraction(), 1.0);
}

}  // namespace
}  // namespace s4e::exec
