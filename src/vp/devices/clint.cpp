#include "vp/devices/clint.hpp"

#include "common/strings.hpp"

namespace s4e::vp {

Result<u32> Clint::read(u32 offset, unsigned size) {
  if (size != 4) {
    return Error(ErrorCode::kInvalidArgument, "clint: only 32-bit access");
  }
  if (offset >= kMsipBase && offset < kMsipBase + 4 * kMaxHarts &&
      (offset & 3) == 0) {
    return msip_[(offset - kMsipBase) / 4];
  }
  if (offset >= kMtimecmpBase && offset < kMtimecmpBase + 8 * kMaxHarts &&
      (offset & 3) == 0) {
    const u64 cmp = mtimecmp_[(offset - kMtimecmpBase) / 8];
    return (offset & 4) == 0 ? static_cast<u32>(cmp)
                             : static_cast<u32>(cmp >> 32);
  }
  switch (offset) {
    case kMtimeLo: return static_cast<u32>(mtime_);
    case kMtimeHi: return static_cast<u32>(mtime_ >> 32);
    default:
      return Error(ErrorCode::kOutOfRange,
                   format("clint: read from bad offset 0x%x", offset));
  }
}

Status Clint::write(u32 offset, unsigned size, u32 value) {
  if (size != 4) {
    return Error(ErrorCode::kInvalidArgument, "clint: only 32-bit access");
  }
  if (offset >= kMsipBase && offset < kMsipBase + 4 * kMaxHarts &&
      (offset & 3) == 0) {
    msip_[(offset - kMsipBase) / 4] = value & 1u;  // only bit 0 implemented
    return Status();
  }
  if (offset >= kMtimecmpBase && offset < kMtimecmpBase + 8 * kMaxHarts &&
      (offset & 3) == 0) {
    u64& cmp = mtimecmp_[(offset - kMtimecmpBase) / 8];
    if ((offset & 4) == 0) {
      cmp = (cmp & 0xffff'ffff'0000'0000ULL) | value;
    } else {
      cmp = (cmp & 0xffff'ffffULL) | (static_cast<u64>(value) << 32);
    }
    return Status();
  }
  return Error(ErrorCode::kOutOfRange,
               format("clint: write to bad offset 0x%x", offset));
}

}  // namespace s4e::vp
