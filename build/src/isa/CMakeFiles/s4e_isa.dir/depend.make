# Empty dependencies file for s4e_isa.
# This may be replaced when dependencies are built.
