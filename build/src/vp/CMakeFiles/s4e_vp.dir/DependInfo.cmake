
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vp/bus.cpp" "src/vp/CMakeFiles/s4e_vp.dir/bus.cpp.o" "gcc" "src/vp/CMakeFiles/s4e_vp.dir/bus.cpp.o.d"
  "/root/repo/src/vp/cpu.cpp" "src/vp/CMakeFiles/s4e_vp.dir/cpu.cpp.o" "gcc" "src/vp/CMakeFiles/s4e_vp.dir/cpu.cpp.o.d"
  "/root/repo/src/vp/devices/clint.cpp" "src/vp/CMakeFiles/s4e_vp.dir/devices/clint.cpp.o" "gcc" "src/vp/CMakeFiles/s4e_vp.dir/devices/clint.cpp.o.d"
  "/root/repo/src/vp/devices/gpio.cpp" "src/vp/CMakeFiles/s4e_vp.dir/devices/gpio.cpp.o" "gcc" "src/vp/CMakeFiles/s4e_vp.dir/devices/gpio.cpp.o.d"
  "/root/repo/src/vp/devices/uart.cpp" "src/vp/CMakeFiles/s4e_vp.dir/devices/uart.cpp.o" "gcc" "src/vp/CMakeFiles/s4e_vp.dir/devices/uart.cpp.o.d"
  "/root/repo/src/vp/machine.cpp" "src/vp/CMakeFiles/s4e_vp.dir/machine.cpp.o" "gcc" "src/vp/CMakeFiles/s4e_vp.dir/machine.cpp.o.d"
  "/root/repo/src/vp/plugin.cpp" "src/vp/CMakeFiles/s4e_vp.dir/plugin.cpp.o" "gcc" "src/vp/CMakeFiles/s4e_vp.dir/plugin.cpp.o.d"
  "/root/repo/src/vp/plugin_api.cpp" "src/vp/CMakeFiles/s4e_vp.dir/plugin_api.cpp.o" "gcc" "src/vp/CMakeFiles/s4e_vp.dir/plugin_api.cpp.o.d"
  "/root/repo/src/vp/timing.cpp" "src/vp/CMakeFiles/s4e_vp.dir/timing.cpp.o" "gcc" "src/vp/CMakeFiles/s4e_vp.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/s4e_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/s4e_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/s4e_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
