// Memory-mapped device interface for the VP bus.
#pragma once

#include <string>

#include "common/bits.hpp"
#include "common/status.hpp"
#include "vp/snapshot.hpp"

namespace s4e::vp {

class Device {
 public:
  virtual ~Device() = default;

  virtual std::string_view name() const noexcept = 0;

  // Read `size` (1/2/4) bytes at byte offset `offset` within the device
  // window. Little-endian, right-aligned in the returned word.
  virtual Result<u32> read(u32 offset, unsigned size) = 0;

  // Write `size` bytes at `offset`.
  virtual Status write(u32 offset, unsigned size, u32 value) = 0;

  // Advance device time to absolute cycle `now` (CLINT timer, UART pacing).
  virtual void tick(u64 now) { (void)now; }

  // Return to power-on state (Machine::reset). All buffered guest-visible
  // state — FIFOs, transmit logs, waveform logs, counters — must clear;
  // host-driven external inputs (GPIO pin levels) survive, like real pins
  // surviving a board reset.
  virtual void reset() {}

  // Snapshot contract: serialize *complete* device state — everything
  // reset() clears plus the host-driven inputs — so that a device restored
  // from the blob is indistinguishable from one that lived through the
  // original execution. save/restore must write and read the exact same
  // field sequence (StateReader checks underflow hard).
  virtual void save_state(StateWriter& out) const { (void)out; }
  virtual void restore_state(StateReader& in) { (void)in; }
};

}  // namespace s4e::vp
