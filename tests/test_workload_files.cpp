// The on-disk workload sources (workloads/*.s) are the CLI-facing copies
// of the built-in registry. This suite keeps them honest: every file must
// assemble through the same pipeline and run to the exit code its header
// comment documents — and stay in sync with the registry.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "asm/assembler.hpp"
#include "core/workloads.hpp"
#include "vp/machine.hpp"

#ifndef S4E_SOURCE_DIR
#error "S4E_SOURCE_DIR must be defined by the build system"
#endif

namespace s4e::core {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class WorkloadFile : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorkloadFile, AssemblesAndRunsToDocumentedExit) {
  const Workload& workload = standard_workloads()[GetParam()];
  const std::string path =
      std::string(S4E_SOURCE_DIR) + "/workloads/" + workload.name + ".s";
  const std::string source = read_file(path);
  ASSERT_FALSE(source.empty()) << path;

  // The file must contain the registry source verbatim (after its comment
  // header), so CLI users and library users run the same bytes.
  EXPECT_NE(source.find(workload.source), std::string::npos)
      << path << " has drifted from the built-in registry";

  auto program = assembler::assemble(source);
  ASSERT_TRUE(program.ok()) << path << ": " << program.error().to_string();
  vp::Machine machine;
  ASSERT_TRUE(machine.load_program(*program).ok());
  auto result = machine.run();
  EXPECT_TRUE(result.normal_exit()) << path;
  EXPECT_EQ(result.exit_code, workload.expected_exit) << path;
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadFile,
    ::testing::Range<std::size_t>(0, standard_workloads().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return standard_workloads()[info.param].name;
    });

}  // namespace
}  // namespace s4e::core
