#include "isa/rvc.hpp"

#include "common/strings.hpp"
#include "isa/encoder.hpp"

namespace s4e::isa {

namespace {

// Field helpers over the 16-bit encoding.
constexpr u32 bits(u16 half, unsigned lo, unsigned width) {
  return extract_bits(half, lo, width);
}

// x8..x15 register prime (3-bit) fields.
constexpr unsigned prime(u32 field3) { return 8 + field3; }
constexpr bool is_prime(unsigned reg) { return reg >= 8 && reg <= 15; }

Error illegal(u16 half) {
  return Error(ErrorCode::kEncodingError,
               format("illegal RVC encoding 0x%04x", half));
}

Instr with_len2(Instr instr, u16 half) {
  instr.length = 2;
  instr.raw = half;
  return instr;
}

// CJ-format immediate: imm[11|4|9:8|10|6|7|3:1|5] at bits [12|11|10:9|8|7|6|5:3|2].
i32 cj_imm(u16 half) {
  u32 imm = 0;
  imm = insert_bits(imm, 11, 1, bits(half, 12, 1));
  imm = insert_bits(imm, 4, 1, bits(half, 11, 1));
  imm = insert_bits(imm, 8, 2, bits(half, 9, 2));
  imm = insert_bits(imm, 10, 1, bits(half, 8, 1));
  imm = insert_bits(imm, 6, 1, bits(half, 7, 1));
  imm = insert_bits(imm, 7, 1, bits(half, 6, 1));
  imm = insert_bits(imm, 1, 3, bits(half, 3, 3));
  imm = insert_bits(imm, 5, 1, bits(half, 2, 1));
  return sign_extend(imm, 12);
}

// CB-format branch immediate: imm[8|4:3] at [12|11:10], imm[7:6|2:1|5] at [6:5|4:3|2].
i32 cb_imm(u16 half) {
  u32 imm = 0;
  imm = insert_bits(imm, 8, 1, bits(half, 12, 1));
  imm = insert_bits(imm, 3, 2, bits(half, 10, 2));
  imm = insert_bits(imm, 6, 2, bits(half, 5, 2));
  imm = insert_bits(imm, 1, 2, bits(half, 3, 2));
  imm = insert_bits(imm, 5, 1, bits(half, 2, 1));
  return sign_extend(imm, 9);
}

// CI-format 6-bit signed immediate: imm[5] at bit 12, imm[4:0] at bits 6:2.
i32 ci_imm(u16 half) {
  return sign_extend((bits(half, 12, 1) << 5) | bits(half, 2, 5), 6);
}

}  // namespace

Result<Instr> decompress(u16 half) {
  if (!is_compressed(half)) {
    return Error(ErrorCode::kInvalidArgument,
                 format("0x%04x is a 32-bit encoding", half));
  }
  if (half == 0) return illegal(half);  // defined illegal instruction

  const unsigned quadrant = half & 0x3;
  const unsigned funct3 = bits(half, 13, 3);
  const unsigned rd_full = bits(half, 7, 5);
  const unsigned rs2_full = bits(half, 2, 5);

  switch (quadrant) {
    case 0: {
      const unsigned rd_p = prime(bits(half, 2, 3));
      const unsigned rs1_p = prime(bits(half, 7, 3));
      switch (funct3) {
        case 0b000: {  // c.addi4spn
          u32 imm = 0;
          imm = insert_bits(imm, 4, 2, bits(half, 11, 2));
          imm = insert_bits(imm, 6, 4, bits(half, 7, 4));
          imm = insert_bits(imm, 2, 1, bits(half, 6, 1));
          imm = insert_bits(imm, 3, 1, bits(half, 5, 1));
          if (imm == 0) return illegal(half);
          return with_len2(make_i(Op::kAddi, rd_p, 2, static_cast<i32>(imm)),
                           half);
        }
        case 0b010: {  // c.lw
          u32 imm = 0;
          imm = insert_bits(imm, 3, 3, bits(half, 10, 3));
          imm = insert_bits(imm, 2, 1, bits(half, 6, 1));
          imm = insert_bits(imm, 6, 1, bits(half, 5, 1));
          return with_len2(make_i(Op::kLw, rd_p, rs1_p, static_cast<i32>(imm)),
                           half);
        }
        case 0b110: {  // c.sw
          u32 imm = 0;
          imm = insert_bits(imm, 3, 3, bits(half, 10, 3));
          imm = insert_bits(imm, 2, 1, bits(half, 6, 1));
          imm = insert_bits(imm, 6, 1, bits(half, 5, 1));
          return with_len2(make_s(Op::kSw, rs1_p, rd_p, static_cast<i32>(imm)),
                           half);
        }
        default:
          return illegal(half);
      }
    }
    case 1: {
      switch (funct3) {
        case 0b000:  // c.nop / c.addi
          return with_len2(make_i(Op::kAddi, rd_full, rd_full, ci_imm(half)),
                           half);
        case 0b001:  // c.jal (RV32)
          return with_len2(make_j(Op::kJal, 1, cj_imm(half)), half);
        case 0b010:  // c.li
          return with_len2(make_i(Op::kAddi, rd_full, 0, ci_imm(half)), half);
        case 0b011: {
          if (rd_full == 2) {  // c.addi16sp
            u32 imm = 0;
            imm = insert_bits(imm, 9, 1, bits(half, 12, 1));
            imm = insert_bits(imm, 4, 1, bits(half, 6, 1));
            imm = insert_bits(imm, 6, 1, bits(half, 5, 1));
            imm = insert_bits(imm, 8, 2, bits(half, 3, 2));
            imm = insert_bits(imm, 5, 1, bits(half, 2, 1));
            const i32 value = sign_extend(imm, 10);
            if (value == 0) return illegal(half);
            return with_len2(make_i(Op::kAddi, 2, 2, value), half);
          }
          // c.lui
          const i32 imm = ci_imm(half);
          if (imm == 0 || rd_full == 0) return illegal(half);
          return with_len2(
              make_u(Op::kLui, rd_full, static_cast<i32>(imm << 12)), half);
        }
        case 0b100: {
          const unsigned rd_p = prime(bits(half, 7, 3));
          const unsigned rs2_p = prime(bits(half, 2, 3));
          switch (bits(half, 10, 2)) {
            case 0b00: {  // c.srli
              const unsigned shamt =
                  (bits(half, 12, 1) << 5) | bits(half, 2, 5);
              if (shamt >= 32) return illegal(half);  // RV32 reserved
              return with_len2(make_shift(Op::kSrli, rd_p, rd_p, shamt), half);
            }
            case 0b01: {  // c.srai
              const unsigned shamt =
                  (bits(half, 12, 1) << 5) | bits(half, 2, 5);
              if (shamt >= 32) return illegal(half);
              return with_len2(make_shift(Op::kSrai, rd_p, rd_p, shamt), half);
            }
            case 0b10:  // c.andi
              return with_len2(make_i(Op::kAndi, rd_p, rd_p, ci_imm(half)),
                               half);
            case 0b11: {
              if (bits(half, 12, 1) != 0) return illegal(half);  // RV64 ops
              static constexpr Op kOps[] = {Op::kSub, Op::kXor, Op::kOr,
                                            Op::kAnd};
              return with_len2(
                  make_r(kOps[bits(half, 5, 2)], rd_p, rd_p, rs2_p), half);
            }
          }
          return illegal(half);
        }
        case 0b101:  // c.j
          return with_len2(make_j(Op::kJal, 0, cj_imm(half)), half);
        case 0b110:  // c.beqz
          return with_len2(
              make_b(Op::kBeq, prime(bits(half, 7, 3)), 0, cb_imm(half)),
              half);
        case 0b111:  // c.bnez
          return with_len2(
              make_b(Op::kBne, prime(bits(half, 7, 3)), 0, cb_imm(half)),
              half);
      }
      return illegal(half);
    }
    case 2: {
      switch (funct3) {
        case 0b000: {  // c.slli
          const unsigned shamt = (bits(half, 12, 1) << 5) | bits(half, 2, 5);
          if (shamt >= 32 || rd_full == 0) return illegal(half);
          return with_len2(make_shift(Op::kSlli, rd_full, rd_full, shamt),
                           half);
        }
        case 0b010: {  // c.lwsp
          if (rd_full == 0) return illegal(half);
          u32 imm = 0;
          imm = insert_bits(imm, 5, 1, bits(half, 12, 1));
          imm = insert_bits(imm, 2, 3, bits(half, 4, 3));
          imm = insert_bits(imm, 6, 2, bits(half, 2, 2));
          return with_len2(
              make_i(Op::kLw, rd_full, 2, static_cast<i32>(imm)), half);
        }
        case 0b100: {
          if (bits(half, 12, 1) == 0) {
            if (rs2_full == 0) {  // c.jr
              if (rd_full == 0) return illegal(half);
              return with_len2(make_i(Op::kJalr, 0, rd_full, 0), half);
            }
            // c.mv
            if (rd_full == 0) return illegal(half);
            return with_len2(make_r(Op::kAdd, rd_full, 0, rs2_full), half);
          }
          if (rd_full == 0 && rs2_full == 0) {  // c.ebreak
            return with_len2(make_system(Op::kEbreak), half);
          }
          if (rs2_full == 0) {  // c.jalr
            return with_len2(make_i(Op::kJalr, 1, rd_full, 0), half);
          }
          // c.add
          return with_len2(make_r(Op::kAdd, rd_full, rd_full, rs2_full),
                           half);
        }
        case 0b110: {  // c.swsp
          u32 imm = 0;
          imm = insert_bits(imm, 2, 4, bits(half, 9, 4));
          imm = insert_bits(imm, 6, 2, bits(half, 7, 2));
          return with_len2(
              make_s(Op::kSw, 2, rs2_full, static_cast<i32>(imm)), half);
        }
        default:
          return illegal(half);
      }
    }
  }
  return illegal(half);
}

// ---------------------------------------------------------------------------
// Compression (emit side).

namespace {

u16 ci_encode(unsigned funct3, unsigned quadrant, unsigned rd, i32 imm6) {
  u16 half = static_cast<u16>(quadrant);
  half = static_cast<u16>(insert_bits(half, 13, 3, funct3));
  half = static_cast<u16>(insert_bits(half, 7, 5, rd));
  half = static_cast<u16>(insert_bits(half, 12, 1,
                                      extract_bits(static_cast<u32>(imm6), 5, 1)));
  half = static_cast<u16>(insert_bits(half, 2, 5,
                                      extract_bits(static_cast<u32>(imm6), 0, 5)));
  return half;
}

std::optional<u16> compress_alu_ca(const Instr& instr) {
  // c.sub / c.xor / c.or / c.and: rd == rs1, both prime.
  unsigned funct2;
  switch (instr.op) {
    case Op::kSub: funct2 = 0b00; break;
    case Op::kXor: funct2 = 0b01; break;
    case Op::kOr: funct2 = 0b10; break;
    case Op::kAnd: funct2 = 0b11; break;
    default: return std::nullopt;
  }
  unsigned rd = instr.rd;
  unsigned rs2 = instr.rs2;
  if (rd != instr.rs1) {
    // Commutative ops may swap sources.
    const bool commutative = instr.op != Op::kSub;
    if (commutative && rd == instr.rs2) {
      rs2 = instr.rs1;
    } else {
      return std::nullopt;
    }
  }
  if (!is_prime(rd) || !is_prime(rs2)) return std::nullopt;
  u16 half = 0b01;
  half = static_cast<u16>(insert_bits(half, 13, 3, 0b100));
  half = static_cast<u16>(insert_bits(half, 10, 2, 0b11));
  half = static_cast<u16>(insert_bits(half, 7, 3, rd - 8));
  half = static_cast<u16>(insert_bits(half, 5, 2, funct2));
  half = static_cast<u16>(insert_bits(half, 2, 3, rs2 - 8));
  return half;
}

}  // namespace

std::optional<u16> compress(const Instr& instr) {
  switch (instr.op) {
    case Op::kAddi: {
      // c.nop
      if (instr.rd == 0 && instr.rs1 == 0 && instr.imm == 0) {
        return u16{0x0001};
      }
      // c.li: addi rd, x0, imm6
      if (instr.rs1 == 0 && instr.rd != 0 && fits_signed(instr.imm, 6)) {
        return ci_encode(0b010, 0b01, instr.rd, instr.imm);
      }
      // c.addi: addi rd, rd, imm6 (imm != 0)
      if (instr.rd == instr.rs1 && instr.rd != 0 && instr.imm != 0 &&
          fits_signed(instr.imm, 6)) {
        return ci_encode(0b000, 0b01, instr.rd, instr.imm);
      }
      // c.addi16sp: addi sp, sp, imm (16-aligned, 10-bit)
      if (instr.rd == 2 && instr.rs1 == 2 && instr.imm != 0 &&
          instr.imm % 16 == 0 && fits_signed(instr.imm, 10)) {
        const u32 imm = static_cast<u32>(instr.imm);
        u16 half = 0b01;
        half = static_cast<u16>(insert_bits(half, 13, 3, 0b011));
        half = static_cast<u16>(insert_bits(half, 7, 5, 2));
        half = static_cast<u16>(insert_bits(half, 12, 1, extract_bits(imm, 9, 1)));
        half = static_cast<u16>(insert_bits(half, 6, 1, extract_bits(imm, 4, 1)));
        half = static_cast<u16>(insert_bits(half, 5, 1, extract_bits(imm, 6, 1)));
        half = static_cast<u16>(insert_bits(half, 3, 2, extract_bits(imm, 7, 2)));
        half = static_cast<u16>(insert_bits(half, 2, 1, extract_bits(imm, 5, 1)));
        return half;
      }
      // c.addi4spn: addi rd', sp, uimm (4-aligned, 10-bit unsigned, != 0)
      if (instr.rs1 == 2 && is_prime(instr.rd) && instr.imm > 0 &&
          instr.imm % 4 == 0 && instr.imm < 1024) {
        const u32 imm = static_cast<u32>(instr.imm);
        u16 half = 0b00;
        half = static_cast<u16>(insert_bits(half, 13, 3, 0b000));
        half = static_cast<u16>(insert_bits(half, 2, 3, instr.rd - 8));
        half = static_cast<u16>(insert_bits(half, 11, 2, extract_bits(imm, 4, 2)));
        half = static_cast<u16>(insert_bits(half, 7, 4, extract_bits(imm, 6, 4)));
        half = static_cast<u16>(insert_bits(half, 6, 1, extract_bits(imm, 2, 1)));
        half = static_cast<u16>(insert_bits(half, 5, 1, extract_bits(imm, 3, 1)));
        return half;
      }
      return std::nullopt;
    }
    case Op::kLui: {
      const i32 upper = instr.imm >> 12;
      if (instr.rd != 0 && instr.rd != 2 && upper != 0 &&
          fits_signed(upper, 6)) {
        return ci_encode(0b011, 0b01, instr.rd, upper);
      }
      return std::nullopt;
    }
    case Op::kAdd: {
      if (instr.rd == 0) return std::nullopt;
      // c.mv: add rd, x0, rs2
      if (instr.rs1 == 0 && instr.rs2 != 0) {
        u16 half = 0b10;
        half = static_cast<u16>(insert_bits(half, 13, 3, 0b100));
        half = static_cast<u16>(insert_bits(half, 7, 5, instr.rd));
        half = static_cast<u16>(insert_bits(half, 2, 5, instr.rs2));
        return half;
      }
      // c.add: add rd, rd, rs2 (or the commuted form)
      unsigned rs2 = 0;
      if (instr.rs1 == instr.rd && instr.rs2 != 0) {
        rs2 = instr.rs2;
      } else if (instr.rs2 == instr.rd && instr.rs1 != 0) {
        rs2 = instr.rs1;
      } else {
        return std::nullopt;
      }
      u16 half = 0b10;
      half = static_cast<u16>(insert_bits(half, 13, 3, 0b100));
      half = static_cast<u16>(insert_bits(half, 12, 1, 1));
      half = static_cast<u16>(insert_bits(half, 7, 5, instr.rd));
      half = static_cast<u16>(insert_bits(half, 2, 5, rs2));
      return half;
    }
    case Op::kSub:
    case Op::kXor:
    case Op::kOr:
    case Op::kAnd:
      return compress_alu_ca(instr);
    case Op::kAndi: {
      if (instr.rd == instr.rs1 && is_prime(instr.rd) &&
          fits_signed(instr.imm, 6)) {
        u16 half = 0b01;
        half = static_cast<u16>(insert_bits(half, 13, 3, 0b100));
        half = static_cast<u16>(insert_bits(half, 10, 2, 0b10));
        half = static_cast<u16>(insert_bits(half, 7, 3, instr.rd - 8));
        const u32 imm = static_cast<u32>(instr.imm);
        half = static_cast<u16>(insert_bits(half, 12, 1, extract_bits(imm, 5, 1)));
        half = static_cast<u16>(insert_bits(half, 2, 5, extract_bits(imm, 0, 5)));
        return half;
      }
      return std::nullopt;
    }
    case Op::kSlli: {
      if (instr.rd == instr.rs1 && instr.rd != 0 && instr.rs2 >= 1 &&
          instr.rs2 < 32) {
        u16 half = 0b10;
        half = static_cast<u16>(insert_bits(half, 13, 3, 0b000));
        half = static_cast<u16>(insert_bits(half, 7, 5, instr.rd));
        half = static_cast<u16>(insert_bits(half, 2, 5, instr.rs2));
        return half;
      }
      return std::nullopt;
    }
    case Op::kSrli:
    case Op::kSrai: {
      if (instr.rd == instr.rs1 && is_prime(instr.rd) && instr.rs2 >= 1 &&
          instr.rs2 < 32) {
        u16 half = 0b01;
        half = static_cast<u16>(insert_bits(half, 13, 3, 0b100));
        half = static_cast<u16>(
            insert_bits(half, 10, 2, instr.op == Op::kSrli ? 0b00 : 0b01));
        half = static_cast<u16>(insert_bits(half, 7, 3, instr.rd - 8));
        half = static_cast<u16>(insert_bits(half, 2, 5, instr.rs2));
        return half;
      }
      return std::nullopt;
    }
    case Op::kLw: {
      if (instr.imm < 0 || instr.imm % 4 != 0) return std::nullopt;
      // c.lwsp
      if (instr.rs1 == 2 && instr.rd != 0 && instr.imm < 256) {
        const u32 imm = static_cast<u32>(instr.imm);
        u16 half = 0b10;
        half = static_cast<u16>(insert_bits(half, 13, 3, 0b010));
        half = static_cast<u16>(insert_bits(half, 7, 5, instr.rd));
        half = static_cast<u16>(insert_bits(half, 12, 1, extract_bits(imm, 5, 1)));
        half = static_cast<u16>(insert_bits(half, 4, 3, extract_bits(imm, 2, 3)));
        half = static_cast<u16>(insert_bits(half, 2, 2, extract_bits(imm, 6, 2)));
        return half;
      }
      // c.lw
      if (is_prime(instr.rd) && is_prime(instr.rs1) && instr.imm < 128) {
        const u32 imm = static_cast<u32>(instr.imm);
        u16 half = 0b00;
        half = static_cast<u16>(insert_bits(half, 13, 3, 0b010));
        half = static_cast<u16>(insert_bits(half, 7, 3, instr.rs1 - 8));
        half = static_cast<u16>(insert_bits(half, 2, 3, instr.rd - 8));
        half = static_cast<u16>(insert_bits(half, 10, 3, extract_bits(imm, 3, 3)));
        half = static_cast<u16>(insert_bits(half, 6, 1, extract_bits(imm, 2, 1)));
        half = static_cast<u16>(insert_bits(half, 5, 1, extract_bits(imm, 6, 1)));
        return half;
      }
      return std::nullopt;
    }
    case Op::kSw: {
      if (instr.imm < 0 || instr.imm % 4 != 0) return std::nullopt;
      // c.swsp
      if (instr.rs1 == 2 && instr.imm < 256) {
        const u32 imm = static_cast<u32>(instr.imm);
        u16 half = 0b10;
        half = static_cast<u16>(insert_bits(half, 13, 3, 0b110));
        half = static_cast<u16>(insert_bits(half, 2, 5, instr.rs2));
        half = static_cast<u16>(insert_bits(half, 9, 4, extract_bits(imm, 2, 4)));
        half = static_cast<u16>(insert_bits(half, 7, 2, extract_bits(imm, 6, 2)));
        return half;
      }
      // c.sw
      if (is_prime(instr.rs2) && is_prime(instr.rs1) && instr.imm < 128) {
        const u32 imm = static_cast<u32>(instr.imm);
        u16 half = 0b00;
        half = static_cast<u16>(insert_bits(half, 13, 3, 0b110));
        half = static_cast<u16>(insert_bits(half, 7, 3, instr.rs1 - 8));
        half = static_cast<u16>(insert_bits(half, 2, 3, instr.rs2 - 8));
        half = static_cast<u16>(insert_bits(half, 10, 3, extract_bits(imm, 3, 3)));
        half = static_cast<u16>(insert_bits(half, 6, 1, extract_bits(imm, 2, 1)));
        half = static_cast<u16>(insert_bits(half, 5, 1, extract_bits(imm, 6, 1)));
        return half;
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

}  // namespace s4e::isa
