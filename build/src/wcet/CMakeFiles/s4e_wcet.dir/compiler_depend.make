# Empty compiler generated dependencies file for s4e_wcet.
# This may be replaced when dependencies are built.
