# seeded defect: an unreachable basic block and a dead register write
# s4e-lint must report unreachable (the island) and dead-write (t2).

_start:
    li t0, 1
    beqz t0, island    # t0 == 1: statically never taken, but the edge
                       # exists so the island is CFG-reachable; the real
                       # dead block is the fallthrough-free island below.
    j end
island:
    addi t1, t1, 1
    j end
end:
    li t2, 42          # t2 is never read afterwards: dead write
    li a0, 0
    li a7, 93
    ecall
