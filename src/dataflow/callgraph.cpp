#include "dataflow/callgraph.hpp"

#include <algorithm>

namespace s4e::dataflow {

namespace {

// Iterative Tarjan SCC over the callee adjacency lists. Tarjan pops callee
// SCCs before the SCCs that reach them, so callee SCCs receive the lower
// ids — iterating functions by ascending SCC id visits callees before
// callers, which is exactly the bottom-up summary order.
struct Tarjan {
  const std::vector<std::vector<u32>>& adj;
  std::vector<u32> index, lowlink, scc_id;
  std::vector<bool> on_stack;
  std::vector<u32> stack;
  std::vector<bool> in_cycle;
  u32 next_index = 0;
  u32 next_scc = 0;
  static constexpr u32 kUnvisited = ~u32{0};

  explicit Tarjan(const std::vector<std::vector<u32>>& a)
      : adj(a),
        index(a.size(), kUnvisited),
        lowlink(a.size(), 0),
        scc_id(a.size(), 0),
        on_stack(a.size(), false),
        in_cycle(a.size(), false) {}

  void run(u32 root) {
    if (index[root] != kUnvisited) return;
    // Explicit DFS stack: (node, next child position).
    std::vector<std::pair<u32, std::size_t>> dfs{{root, 0}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!dfs.empty()) {
      auto& [v, child] = dfs.back();
      if (child < adj[v].size()) {
        const u32 w = adj[v][child++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          dfs.emplace_back(w, 0);
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      if (lowlink[v] == index[v]) {
        // v is an SCC root: pop its members.
        std::size_t first = stack.size();
        while (first > 0 && stack[first - 1] != v) --first;
        const std::size_t members = stack.size() - first + 1;
        for (std::size_t i = first - 1; i < stack.size(); ++i) {
          scc_id[stack[i]] = next_scc;
          on_stack[stack[i]] = false;
        }
        if (members > 1) {
          for (std::size_t i = first - 1; i < stack.size(); ++i) {
            in_cycle[stack[i]] = true;
          }
        }
        stack.resize(first - 1);
        ++next_scc;
      }
      const u32 done = v;
      dfs.pop_back();
      if (!dfs.empty()) {
        lowlink[dfs.back().first] =
            std::min(lowlink[dfs.back().first], lowlink[done]);
      }
    }
  }
};

}  // namespace

CallGraph build_call_graph(
    const cfg::ProgramCfg& cfg,
    const std::vector<std::vector<bool>>* block_reachable) {
  const std::size_t n = cfg.functions.size();
  CallGraph graph;
  graph.callees.resize(n);
  graph.callers.resize(n);
  graph.poisoned.assign(n, false);
  graph.tainted.assign(n, false);
  graph.recursive.assign(n, false);
  graph.scc_id.assign(n, 0);

  for (std::size_t f = 0; f < n; ++f) {
    const cfg::Function& fn = cfg.functions[f];
    for (const cfg::BasicBlock& block : fn.blocks) {
      if (block_reachable != nullptr && !(*block_reachable)[f][block.id]) {
        continue;
      }
      if (block.terminator == cfg::Terminator::kCall) {
        auto it = cfg.function_by_entry.find(block.call_target);
        if (it != cfg.function_by_entry.end()) {
          graph.callees[f].push_back(it->second);
        } else {
          // Call into code the reconstruction did not materialize as a
          // function (should not happen for a well-formed build, but a
          // pruned sub-graph may drop callees): unknown effect.
          graph.poisoned[f] = true;
        }
      } else if (block.terminator == cfg::Terminator::kIndirect &&
                 block.indirect_targets.empty()) {
        // Unresolved indirect site (call or jump): the function may transfer
        // control anywhere, so its callee set — and therefore its summary —
        // is unknowable.
        graph.poisoned[f] = true;
      }
    }
    auto& c = graph.callees[f];
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    for (u32 callee : c) graph.callers[callee].push_back(static_cast<u32>(f));
  }
  for (auto& c : graph.callers) {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
  }

  Tarjan tarjan(graph.callees);
  for (u32 f = 0; f < n; ++f) tarjan.run(f);
  graph.scc_id = std::move(tarjan.scc_id);
  graph.recursive = std::move(tarjan.in_cycle);
  // Direct self-recursion forms a single-node SCC; catch it explicitly.
  for (u32 f = 0; f < n; ++f) {
    if (std::binary_search(graph.callees[f].begin(), graph.callees[f].end(),
                           f)) {
      graph.recursive[f] = true;
    }
  }

  // Tarjan emits SCCs callees-first, so ascending SCC id is already a
  // bottom-up order of the condensation; sort functions by it.
  graph.bottom_up.resize(n);
  for (u32 f = 0; f < n; ++f) graph.bottom_up[f] = f;
  std::stable_sort(graph.bottom_up.begin(), graph.bottom_up.end(),
                   [&](u32 a, u32 b) {
                     return graph.scc_id[a] < graph.scc_id[b];
                   });

  // Taint = poisoned or (transitively) calls a tainted function. One pass in
  // bottom-up order settles it for the acyclic part; members of a cycle see
  // each other via a second sweep over the SCC.
  for (u32 f : graph.bottom_up) {
    graph.tainted[f] = graph.poisoned[f];
    for (u32 callee : graph.callees[f]) {
      if (graph.tainted[callee]) graph.tainted[f] = true;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (u32 f = 0; f < n; ++f) {
      if (graph.tainted[f]) continue;
      for (u32 callee : graph.callees[f]) {
        if (graph.tainted[callee]) {
          graph.tainted[f] = true;
          changed = true;
          break;
        }
      }
    }
  }
  return graph;
}

}  // namespace s4e::dataflow
