#include <gtest/gtest.h>

#include <cstdio>

#include "asm/assembler.hpp"
#include "elf/elf32.hpp"

namespace s4e::elf {
namespace {

assembler::Program sample_program() {
  auto program = assembler::assemble(R"(
_start:
    li a0, 3
loop:
    .loopbound 3
    addi a0, a0, -1
    bnez a0, loop
done:
    ebreak
.data
table:
    .word 1, 2, 3, 4
msg:
    .asciz "scale4edge"
  )");
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().to_string());
  return *program;
}

TEST(Elf, WriteProducesValidHeader) {
  auto image = write_elf(sample_program());
  ASSERT_TRUE(image.ok());
  ASSERT_GE(image->size(), 52u);
  EXPECT_EQ((*image)[0], 0x7f);
  EXPECT_EQ((*image)[1], 'E');
  EXPECT_EQ((*image)[2], 'L');
  EXPECT_EQ((*image)[3], 'F');
  EXPECT_EQ((*image)[4], 1);  // ELF32
  EXPECT_EQ((*image)[5], 1);  // little-endian
  // e_machine == EM_RISCV (243) at offset 18.
  EXPECT_EQ((*image)[18], 243);
}

TEST(Elf, RoundTripPreservesSections) {
  const auto original = sample_program();
  auto image = write_elf(original);
  ASSERT_TRUE(image.ok());
  auto loaded = read_elf(*image);
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();

  ASSERT_EQ(loaded->sections.size(), original.sections.size());
  for (const auto& section : original.sections) {
    const assembler::Section* got = loaded->find_section(section.name);
    ASSERT_NE(got, nullptr) << section.name;
    EXPECT_EQ(got->base, section.base);
    EXPECT_EQ(got->bytes, section.bytes);
  }
}

TEST(Elf, RoundTripPreservesSymbolsEntryAnnotations) {
  const auto original = sample_program();
  auto image = write_elf(original);
  ASSERT_TRUE(image.ok());
  auto loaded = read_elf(*image);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ(loaded->entry, original.entry);
  for (const auto& [name, value] : original.symbols) {
    EXPECT_EQ(*loaded->symbol(name), value) << name;
  }
  ASSERT_EQ(loaded->loop_bounds.size(), original.loop_bounds.size());
  EXPECT_EQ(loaded->loop_bounds[0].address, original.loop_bounds[0].address);
  EXPECT_EQ(loaded->loop_bounds[0].bound, original.loop_bounds[0].bound);
}

TEST(Elf, RejectsGarbage) {
  EXPECT_FALSE(read_elf({}).ok());
  EXPECT_FALSE(read_elf({1, 2, 3, 4}).ok());
  std::vector<u8> not_elf(64, 0);
  EXPECT_FALSE(read_elf(not_elf).ok());
}

TEST(Elf, RejectsWrongMachine) {
  auto image = write_elf(sample_program());
  ASSERT_TRUE(image.ok());
  (*image)[18] = 62;  // EM_X86_64
  auto loaded = read_elf(*image);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code(), ErrorCode::kUnsupported);
}

TEST(Elf, RejectsTruncatedImage) {
  auto image = write_elf(sample_program());
  ASSERT_TRUE(image.ok());
  image->resize(image->size() / 2);
  EXPECT_FALSE(read_elf(*image).ok());
}

TEST(Elf, FileRoundTrip) {
  const auto original = sample_program();
  const std::string path = ::testing::TempDir() + "/s4e_test.elf";
  ASSERT_TRUE(write_elf_file(original, path).ok());
  auto loaded = read_elf_file(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->entry, original.entry);
  EXPECT_EQ(loaded->find_section(".text")->bytes,
            original.find_section(".text")->bytes);
  std::remove(path.c_str());
}

TEST(Elf, EmptyDataSectionOmitted) {
  auto program = assembler::assemble("nop\n");
  ASSERT_TRUE(program.ok());
  auto image = write_elf(*program);
  ASSERT_TRUE(image.ok());
  auto loaded = read_elf(*image);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->sections.size(), 1u);
  EXPECT_EQ(loaded->sections[0].name, ".text");
}

}  // namespace
}  // namespace s4e::elf
