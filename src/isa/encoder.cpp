#include "isa/encoder.hpp"

#include "common/strings.hpp"
#include "isa/registers.hpp"

namespace s4e::isa {

namespace {

Status check_reg(unsigned reg, const char* what) {
  if (reg >= kGprCount) {
    return Error(ErrorCode::kEncodingError,
                 format("%s register index %u out of range", what, reg));
  }
  return Status();
}

u32 place_imm_i(u32 word, i32 imm) {
  return insert_bits(word, 20, 12, static_cast<u32>(imm));
}

u32 place_imm_s(u32 word, i32 imm) {
  const u32 v = static_cast<u32>(imm);
  word = insert_bits(word, 7, 5, extract_bits(v, 0, 5));
  word = insert_bits(word, 25, 7, extract_bits(v, 5, 7));
  return word;
}

u32 place_imm_b(u32 word, i32 imm) {
  const u32 v = static_cast<u32>(imm);
  word = insert_bits(word, 8, 4, extract_bits(v, 1, 4));
  word = insert_bits(word, 25, 6, extract_bits(v, 5, 6));
  word = insert_bits(word, 7, 1, extract_bits(v, 11, 1));
  word = insert_bits(word, 31, 1, extract_bits(v, 12, 1));
  return word;
}

u32 place_imm_j(u32 word, i32 imm) {
  const u32 v = static_cast<u32>(imm);
  word = insert_bits(word, 21, 10, extract_bits(v, 1, 10));
  word = insert_bits(word, 20, 1, extract_bits(v, 11, 1));
  word = insert_bits(word, 12, 8, extract_bits(v, 12, 8));
  word = insert_bits(word, 31, 1, extract_bits(v, 20, 1));
  return word;
}

}  // namespace

Result<u32> encode(const Instr& instr) {
  const OpInfo& info = instr.info();
  u32 word = info.match;
  switch (info.format) {
    case Format::kR: {
      S4E_TRY_STATUS(check_reg(instr.rd, "rd"));
      S4E_TRY_STATUS(check_reg(instr.rs1, "rs1"));
      S4E_TRY_STATUS(check_reg(instr.rs2, "rs2"));
      word = insert_bits(word, 7, 5, instr.rd);
      word = insert_bits(word, 15, 5, instr.rs1);
      // Skip the rs2 field when the pattern fixes it (lr.w encodes rs2=0).
      if ((info.mask & (0x1fu << 20)) == 0) {
        word = insert_bits(word, 20, 5, instr.rs2);
      }
      break;
    }
    case Format::kI: {
      S4E_TRY_STATUS(check_reg(instr.rd, "rd"));
      S4E_TRY_STATUS(check_reg(instr.rs1, "rs1"));
      if (!fits_signed(instr.imm, 12)) {
        return Error(ErrorCode::kEncodingError,
                     format("I-type immediate %d does not fit 12 bits",
                            instr.imm));
      }
      word = insert_bits(word, 7, 5, instr.rd);
      word = insert_bits(word, 15, 5, instr.rs1);
      word = place_imm_i(word, instr.imm);
      break;
    }
    case Format::kIShift: {
      S4E_TRY_STATUS(check_reg(instr.rd, "rd"));
      S4E_TRY_STATUS(check_reg(instr.rs1, "rs1"));
      if (instr.rs2 >= 32) {
        return Error(ErrorCode::kEncodingError,
                     format("shift amount %u out of range", instr.rs2));
      }
      word = insert_bits(word, 7, 5, instr.rd);
      word = insert_bits(word, 15, 5, instr.rs1);
      word = insert_bits(word, 20, 5, instr.rs2);
      break;
    }
    case Format::kS: {
      S4E_TRY_STATUS(check_reg(instr.rs1, "rs1"));
      S4E_TRY_STATUS(check_reg(instr.rs2, "rs2"));
      if (!fits_signed(instr.imm, 12)) {
        return Error(ErrorCode::kEncodingError,
                     format("S-type immediate %d does not fit 12 bits",
                            instr.imm));
      }
      word = insert_bits(word, 15, 5, instr.rs1);
      word = insert_bits(word, 20, 5, instr.rs2);
      word = place_imm_s(word, instr.imm);
      break;
    }
    case Format::kB: {
      S4E_TRY_STATUS(check_reg(instr.rs1, "rs1"));
      S4E_TRY_STATUS(check_reg(instr.rs2, "rs2"));
      if (!fits_signed(instr.imm, 13) || (instr.imm & 1) != 0) {
        return Error(ErrorCode::kEncodingError,
                     format("branch offset %d invalid (13-bit even)",
                            instr.imm));
      }
      word = insert_bits(word, 15, 5, instr.rs1);
      word = insert_bits(word, 20, 5, instr.rs2);
      word = place_imm_b(word, instr.imm);
      break;
    }
    case Format::kU: {
      S4E_TRY_STATUS(check_reg(instr.rd, "rd"));
      if ((static_cast<u32>(instr.imm) & 0xfffu) != 0) {
        return Error(ErrorCode::kEncodingError,
                     "U-type immediate must have low 12 bits clear");
      }
      word = insert_bits(word, 7, 5, instr.rd);
      word |= static_cast<u32>(instr.imm) & 0xfffff000u;
      break;
    }
    case Format::kJ: {
      S4E_TRY_STATUS(check_reg(instr.rd, "rd"));
      if (!fits_signed(instr.imm, 21) || (instr.imm & 1) != 0) {
        return Error(ErrorCode::kEncodingError,
                     format("jump offset %d invalid (21-bit even)",
                            instr.imm));
      }
      word = insert_bits(word, 7, 5, instr.rd);
      word = place_imm_j(word, instr.imm);
      break;
    }
    case Format::kCsrReg: {
      S4E_TRY_STATUS(check_reg(instr.rd, "rd"));
      S4E_TRY_STATUS(check_reg(instr.rs1, "rs1"));
      word = insert_bits(word, 7, 5, instr.rd);
      word = insert_bits(word, 15, 5, instr.rs1);
      word = insert_bits(word, 20, 12, instr.csr);
      break;
    }
    case Format::kCsrImm: {
      S4E_TRY_STATUS(check_reg(instr.rd, "rd"));
      if (instr.rs2 >= 32) {
        return Error(ErrorCode::kEncodingError,
                     format("CSR zimm %u out of range", instr.rs2));
      }
      word = insert_bits(word, 7, 5, instr.rd);
      word = insert_bits(word, 15, 5, instr.rs2);
      word = insert_bits(word, 20, 12, instr.csr);
      break;
    }
    case Format::kNone:
    case Format::kFence:
      break;
  }
  return word;
}

Instr make_r(Op op, unsigned rd, unsigned rs1, unsigned rs2) {
  Instr instr;
  instr.op = op;
  instr.rd = static_cast<u8>(rd);
  instr.rs1 = static_cast<u8>(rs1);
  instr.rs2 = static_cast<u8>(rs2);
  return instr;
}

Instr make_i(Op op, unsigned rd, unsigned rs1, i32 imm) {
  Instr instr;
  instr.op = op;
  instr.rd = static_cast<u8>(rd);
  instr.rs1 = static_cast<u8>(rs1);
  instr.imm = imm;
  return instr;
}

Instr make_shift(Op op, unsigned rd, unsigned rs1, unsigned shamt) {
  Instr instr;
  instr.op = op;
  instr.rd = static_cast<u8>(rd);
  instr.rs1 = static_cast<u8>(rs1);
  instr.rs2 = static_cast<u8>(shamt);
  instr.imm = static_cast<i32>(shamt);
  return instr;
}

Instr make_s(Op op, unsigned rs1, unsigned rs2, i32 imm) {
  Instr instr;
  instr.op = op;
  instr.rs1 = static_cast<u8>(rs1);
  instr.rs2 = static_cast<u8>(rs2);
  instr.imm = imm;
  return instr;
}

Instr make_b(Op op, unsigned rs1, unsigned rs2, i32 offset) {
  Instr instr;
  instr.op = op;
  instr.rs1 = static_cast<u8>(rs1);
  instr.rs2 = static_cast<u8>(rs2);
  instr.imm = offset;
  return instr;
}

Instr make_u(Op op, unsigned rd, i32 imm_upper20) {
  Instr instr;
  instr.op = op;
  instr.rd = static_cast<u8>(rd);
  instr.imm = imm_upper20;
  return instr;
}

Instr make_j(Op op, unsigned rd, i32 offset) {
  Instr instr;
  instr.op = op;
  instr.rd = static_cast<u8>(rd);
  instr.imm = offset;
  return instr;
}

Instr make_csr_reg(Op op, unsigned rd, u16 csr, unsigned rs1) {
  Instr instr;
  instr.op = op;
  instr.rd = static_cast<u8>(rd);
  instr.rs1 = static_cast<u8>(rs1);
  instr.csr = csr;
  return instr;
}

Instr make_csr_imm(Op op, unsigned rd, u16 csr, unsigned zimm) {
  Instr instr;
  instr.op = op;
  instr.rd = static_cast<u8>(rd);
  instr.rs2 = static_cast<u8>(zimm);
  instr.imm = static_cast<i32>(zimm);
  instr.csr = csr;
  return instr;
}

Instr make_system(Op op) {
  Instr instr;
  instr.op = op;
  return instr;
}

}  // namespace s4e::isa
