#include "common/status.hpp"

#include <cstdio>
#include <cstdlib>

namespace s4e {

const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kEncodingError: return "encoding_error";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kStateError: return "state_error";
    case ErrorCode::kIoError: return "io_error";
    case ErrorCode::kAnalysisError: return "analysis_error";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string out = s4e::to_string(code_);
  out += ": ";
  out += message_;
  return out;
}

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::string what = "S4E_CHECK failed: ";
  what += expr;
  what += " at ";
  what += file;
  what += ":";
  what += std::to_string(line);
  if (!message.empty()) {
    what += " — ";
    what += message;
  }
  throw std::logic_error(what);
}

}  // namespace s4e
