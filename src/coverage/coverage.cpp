#include "coverage/coverage.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "isa/defuse.hpp"

namespace s4e::coverage {

void CoverageData::merge(const CoverageData& other) {
  for (unsigned i = 0; i < isa::kOpCount; ++i) {
    op_counts[i] += other.op_counts[i];
  }
  for (unsigned i = 0; i < isa::kGprCount; ++i) {
    gpr_reads[i] += other.gpr_reads[i];
    gpr_writes[i] += other.gpr_writes[i];
  }
  csrs_accessed.insert(other.csrs_accessed.begin(), other.csrs_accessed.end());
  addresses_touched.insert(other.addresses_touched.begin(),
                           other.addresses_touched.end());
  total_instructions += other.total_instructions;
  loads += other.loads;
  stores += other.stores;
}

unsigned CoverageData::ops_covered() const {
  unsigned covered = 0;
  for (u64 count : op_counts) covered += count != 0;
  return covered;
}

unsigned CoverageData::ops_covered(isa::IsaModule module) const {
  unsigned covered = 0;
  for (unsigned i = 0; i < isa::kOpCount; ++i) {
    if (isa::op_table()[i].module == module && op_counts[i] != 0) ++covered;
  }
  return covered;
}

unsigned CoverageData::ops_total(isa::IsaModule module) {
  unsigned total = 0;
  for (unsigned i = 0; i < isa::kOpCount; ++i) {
    total += isa::op_table()[i].module == module;
  }
  return total;
}

double CoverageData::op_coverage() const {
  return static_cast<double>(ops_covered()) / isa::kOpCount;
}

double CoverageData::op_coverage(isa::IsaModule module) const {
  const unsigned total = ops_total(module);
  return total == 0 ? 0.0
                    : static_cast<double>(ops_covered(module)) / total;
}

unsigned CoverageData::gprs_covered() const {
  unsigned covered = 0;
  for (unsigned i = 1; i < isa::kGprCount; ++i) {
    covered += (gpr_reads[i] + gpr_writes[i]) != 0;
  }
  return covered;
}

double CoverageData::gpr_coverage() const {
  return static_cast<double>(gprs_covered()) / (isa::kGprCount - 1);
}

double CoverageData::csr_coverage() const {
  const auto& implemented = isa::implemented_csrs();
  unsigned covered = 0;
  for (u16 csr : implemented) covered += csrs_accessed.count(csr) != 0;
  return static_cast<double>(covered) / implemented.size();
}

double CoverageData::memory_coverage(u32 base, u32 size) const {
  if (size == 0) return 0.0;
  u64 touched = 0;
  for (u32 address : addresses_touched) {
    if (address >= base && address - base < size) ++touched;
  }
  return static_cast<double>(touched) / static_cast<double>(size);
}

std::vector<isa::Op> CoverageData::uncovered_ops() const {
  std::vector<isa::Op> missing;
  for (unsigned i = 0; i < isa::kOpCount; ++i) {
    if (op_counts[i] == 0) missing.push_back(static_cast<isa::Op>(i));
  }
  return missing;
}

void CoveragePlugin::on_mem(const s4e_mem_event& event) {
  if (event.is_store) {
    ++data_.stores;
  } else {
    ++data_.loads;
  }
  for (unsigned i = 0; i < event.size; ++i) {
    data_.addresses_touched.insert(event.vaddr + i);
  }
}

void CoveragePlugin::on_insn_exec(const s4e_insn_info& insn) {
  ++data_.total_instructions;
  ++data_.op_counts[insn.op];
  // Reconstruct the operand view and ask the shared def/use model instead
  // of poking OpInfo flags by hand (the same model dataflow analyses use).
  isa::Instr instr;
  instr.op = static_cast<isa::Op>(insn.op);
  instr.rd = insn.rd;
  instr.rs1 = insn.rs1;
  instr.rs2 = insn.rs2;
  const isa::DefUse du = isa::def_use(instr);
  for (unsigned reg = 0; reg < isa::kGprCount; ++reg) {
    if (du.reads & (u32{1} << reg)) ++data_.gpr_reads[reg];
    if (du.writes & (u32{1} << reg)) ++data_.gpr_writes[reg];
  }
  // An rs2-slot read of x0 (e.g. `bnez`) still counts a distinct read per
  // operand slot under the old accounting; masks collapse duplicates, so
  // re-add the second slot when both name the same register.
  if (instr.info().reads_rs1 && instr.info().reads_rs2 &&
      insn.rs1 == insn.rs2) {
    ++data_.gpr_reads[insn.rs1];
  }
  if (instr.info().op_class == isa::OpClass::kCsr) {
    data_.csrs_accessed.insert(insn.csr);
  }
}

std::string to_report(const CoverageData& data, const std::string& title,
                      const std::vector<bool>* static_ops) {
  std::string out;
  out += format("coverage report: %s\n", title.c_str());
  out += format("  instructions executed : %llu\n",
                static_cast<unsigned long long>(data.total_instructions));
  out += format("  instruction types     : %u / %u  (%.1f%%)\n",
                data.ops_covered(), isa::kOpCount, 100.0 * data.op_coverage());
  for (unsigned m = 0; m < static_cast<unsigned>(isa::IsaModule::kCount); ++m) {
    const auto module = static_cast<isa::IsaModule>(m);
    out += format("    %-6s              : %u / %u  (%.1f%%)\n",
                  std::string(isa::isa_module_name(module)).c_str(),
                  data.ops_covered(module), CoverageData::ops_total(module),
                  100.0 * data.op_coverage(module));
  }
  if (static_ops != nullptr) {
    unsigned reachable = 0;
    unsigned covered = 0;
    unsigned unexercised = 0;
    for (unsigned i = 0; i < isa::kOpCount && i < static_ops->size(); ++i) {
      if (!(*static_ops)[i]) continue;
      ++reachable;
      if (data.op_counts[i] != 0) {
        ++covered;
      } else {
        ++unexercised;
      }
    }
    out += format("  statically reachable  : %u / %u types covered  (%.1f%%)"
                  ", %u reachable but not exercised\n",
                  covered, reachable,
                  reachable == 0 ? 0.0 : 100.0 * covered / reachable,
                  unexercised);
  }
  out += format("  GPR coverage          : %u / %u  (%.1f%%)\n",
                data.gprs_covered(), isa::kGprCount - 1,
                100.0 * data.gpr_coverage());
  out += format("  CSR coverage          : %.1f%%\n",
                100.0 * data.csr_coverage());
  out += format("  memory accesses       : %llu loads, %llu stores, %zu "
                "distinct bytes\n",
                static_cast<unsigned long long>(data.loads),
                static_cast<unsigned long long>(data.stores),
                data.addresses_touched.size());
  const auto missing = data.uncovered_ops();
  if (!missing.empty()) {
    out += "  uncovered instructions:";
    for (isa::Op op : missing) {
      out += " ";
      out += std::string(isa::mnemonic(op));
    }
    out += "\n";
  }
  return out;
}

}  // namespace s4e::coverage
