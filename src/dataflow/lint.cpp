#include "dataflow/lint.hpp"

#include <algorithm>
#include <optional>

#include "common/strings.hpp"
#include "isa/disasm.hpp"
#include "isa/registers.hpp"

namespace s4e::dataflow {

namespace {

using cfg::Terminator;
using isa::Instr;

// Raw u32 bounds of a bounded, sign-pure abstract value (the canonical
// signed interval maps back to one unsigned interval only when it does not
// straddle 2^31).
std::optional<std::pair<u64, u64>> raw_bounds(const AbsValue& v) {
  if (!v.has_bounds()) return std::nullopt;
  if (v.lo() >= 0) {
    return std::pair<u64, u64>{static_cast<u64>(v.lo()),
                               static_cast<u64>(v.hi())};
  }
  if (v.hi() < 0) {
    const i64 wrap = i64{1} << 32;
    return std::pair<u64, u64>{static_cast<u64>(v.lo() + wrap),
                               static_cast<u64>(v.hi() + wrap)};
  }
  return std::nullopt;
}

struct Linter {
  const Analysis& an;
  const LintOptions& opts;
  LintReport report;

  void add(CheckKind kind, u32 pc, const std::string& function,
           std::string message) {
    report.findings.push_back({kind, pc, function, std::move(message)});
  }

  void check_unreachable() {
    for (std::size_t f = 0; f < an.cfg.functions.size(); ++f) {
      const cfg::Function& fn = an.cfg.functions[f];
      if (!an.function_reachable[f]) {
        add(CheckKind::kUnreachableBlock, fn.entry, fn.name,
            format("function '%s' is never called from reachable code",
                   fn.name.c_str()));
        continue;
      }
      for (const cfg::BasicBlock& block : fn.blocks) {
        if (an.functions[f].block_reachable[block.id]) continue;
        add(CheckKind::kUnreachableBlock, block.start, fn.name,
            format("unreachable basic block [0x%08x, 0x%08x) in '%s'",
                   block.start, block.end, fn.name.c_str()));
      }
    }
  }

  const CallEffect* call_effect(std::size_t f, const cfg::BasicBlock& block) {
    const auto& effects = an.functions[f].call_effects;
    auto it = effects.find(block.id);
    return it == effects.end() ? nullptr : &it->second;
  }

  void check_uninit_reads() {
    for_each_reachable_block([&](const cfg::Function& fn, std::size_t f,
                                 const cfg::BasicBlock& block) {
      RegState state = an.functions[f].reg.in[block.id];
      u32 pc = block.start;
      for (const Instr& instr : block.insns) {
        const u32 bad =
            isa::def_use(instr).reads & state.maybe_uninit & ~u32{1};
        for (unsigned r = 1; r < isa::kGprCount; ++r) {
          if ((bad & reg_bit(r)) == 0) continue;
          add(CheckKind::kUninitRead, pc, fn.name,
              format("'%s' reads %s, which may be uninitialized "
                     "on a path reaching 0x%08x",
                     isa::disassemble(instr).c_str(),
                     std::string(isa::gpr_abi_name(r)).c_str(), pc));
        }
        RegDomain::apply(instr, pc, &an.mem, state);
        pc += instr.length;
      }
      // Interprocedural: an argument register the callee provably reads
      // must be initialized at the call. Only refined effects are screened
      // — the ABI default would flag every may-uninit a-register.
      const CallEffect* effect = call_effect(f, block);
      if (effect == nullptr || !effect->refined) return;
      const u32 bad = effect->may_read & state.maybe_uninit & ~u32{1};
      if (bad == 0) return;
      const u32 call_pc = block.end - block.insns.back().length;
      auto callee = an.cfg.function_by_entry.find(block.call_target);
      const std::string callee_name =
          callee == an.cfg.function_by_entry.end()
              ? format("0x%08x", block.call_target)
              : an.cfg.functions[callee->second].name;
      for (unsigned r = 1; r < isa::kGprCount; ++r) {
        if ((bad & reg_bit(r)) == 0) continue;
        add(CheckKind::kUninitRead, call_pc, fn.name,
            format("call to '%s' at 0x%08x passes %s, which may be "
                   "uninitialized and which the callee reads",
                   callee_name.c_str(), call_pc,
                   std::string(isa::gpr_abi_name(r)).c_str()));
      }
    });
  }

  void check_dead_writes() {
    for_each_reachable_block([&](const cfg::Function& fn, std::size_t f,
                                 const cfg::BasicBlock& block) {
      u32 live =
          Liveness::exit_adjust(block, an.functions[f].live.out[block.id],
                                call_effect(f, block));
      u32 pc_end = block.end;
      for (auto it = block.insns.rbegin(); it != block.insns.rend(); ++it) {
        const Instr& instr = *it;
        pc_end -= instr.length;
        const isa::DefUse du = isa::def_use(instr);
        // jal/jalr linkage writes are implicit, not programmer stores.
        if (du.writes != 0 && (du.writes & live) == 0 &&
            instr.op != isa::Op::kJal && instr.op != isa::Op::kJalr) {
          unsigned rd = instr.rd;
          add(CheckKind::kDeadWrite, pc_end, fn.name,
              format("'%s' writes %s but the value is never read "
                     "(dead store)",
                     isa::disassemble(instr).c_str(),
                     std::string(isa::gpr_abi_name(rd)).c_str()));
        }
        live = (live & ~du.writes) | du.reads;
      }
    });
  }

  void check_stack() {
    // Local frame sizes.
    std::vector<i64> frame(an.cfg.functions.size(), -1);
    for (std::size_t f = 0; f < an.cfg.functions.size(); ++f) {
      if (!an.function_reachable[f]) continue;
      const cfg::Function& fn = an.cfg.functions[f];
      const FunctionAnalysis& fa = an.functions[f];
      i64 deepest = 0;
      bool known = true;
      for (const cfg::BasicBlock& block : fn.blocks) {
        if (!fa.block_reachable[block.id]) continue;
        // Sample sp at every instruction (a frame allocated and released
        // within one block never shows at the block boundaries).
        const auto probe = [&](const AbsValue& sp) {
          if (!sp.is_stack()) {
            known = false;
            return;
          }
          deepest = std::max(deepest, -sp.lo());
        };
        walk_block(block, &an.mem, fa.reg.in[block.id],
                   [&](u32 /*pc*/, const isa::Instr& /*instr*/,
                       const RegState& state) { probe(state.regs[2]); });
        probe(fa.reg.out[block.id].regs[2]);
        if (!known) break;
        // Balance: every return must restore the incoming sp exactly.
        if (block.terminator == Terminator::kReturn) {
          const AbsValue& sp = fa.reg.out[block.id].regs[2];
          if (!(sp.is_stack() && sp.lo() == 0 && sp.hi() == 0)) {
            add(CheckKind::kStackImbalance, block.end, fn.name,
                format("'%s' returns with sp = %s instead of its entry "
                       "value (unbalanced stack)",
                       fn.name.c_str(), sp.describe().c_str()));
          }
        }
      }
      frame[f] = known ? deepest : -1;
      if (!known) {
        add(CheckKind::kStackImbalance, fn.entry, fn.name,
            format("'%s' manipulates sp in a way the analysis cannot "
                   "track (stack depth unknown)",
                   fn.name.c_str()));
      }
    }

    // Whole-chain depth, callee-first over the (acyclic) call graph.
    std::vector<i64> total(an.cfg.functions.size(), -2);  // -2 = unvisited
    std::vector<u8> visiting(an.cfg.functions.size(), 0);
    auto depth = [&](auto&& self, std::size_t f) -> i64 {
      if (total[f] != -2) return total[f];
      if (visiting[f] != 0) return -1;  // recursion: unbounded
      visiting[f] = 1;
      i64 best = frame[f];
      if (best >= 0) {
        const cfg::Function& fn = an.cfg.functions[f];
        for (const cfg::BasicBlock& block : fn.blocks) {
          if (block.terminator != Terminator::kCall ||
              !an.functions[f].block_reachable[block.id]) {
            continue;
          }
          auto it = an.cfg.function_by_entry.find(block.call_target);
          const AbsValue& sp = an.functions[f].reg.out[block.id].regs[2];
          const i64 callee_depth =
              it == an.cfg.function_by_entry.end() ? -1
                                                   : self(self, it->second);
          if (callee_depth < 0 || !sp.is_stack()) {
            best = -1;
            break;
          }
          best = std::max(best, -sp.lo() + callee_depth);
        }
      }
      visiting[f] = 0;
      total[f] = best;
      return best;
    };
    for (std::size_t f = 0; f < an.cfg.functions.size(); ++f) {
      if (!an.function_reachable[f]) continue;
      report.frames.push_back(
          {an.cfg.functions[f].name, frame[f], depth(depth, f)});
    }
    report.max_stack_depth = total[0];

    if (opts.stack_limit >= 0 && report.max_stack_depth >= 0 &&
        report.max_stack_depth > opts.stack_limit) {
      add(CheckKind::kStackOverflow, an.cfg.functions[0].entry,
          an.cfg.functions[0].name,
          format("worst-case static stack depth %lld bytes exceeds the "
                 "%lld-byte budget",
                 static_cast<long long>(report.max_stack_depth),
                 static_cast<long long>(opts.stack_limit)));
    }
  }

  void check_recursion() {
    // A reachable call-graph cycle admits no static stack bound; every
    // member is reported (mutual recursion flags each participant once).
    for (std::size_t f = 0; f < an.cfg.functions.size(); ++f) {
      if (!an.function_reachable[f] || f >= an.graph.recursive.size() ||
          !an.graph.recursive[f]) {
        continue;
      }
      const cfg::Function& fn = an.cfg.functions[f];
      add(CheckKind::kRecursion, fn.entry, fn.name,
          format("'%s' is part of a call-graph cycle: recursion depth — "
                 "and therefore stack use — has no static bound",
                 fn.name.c_str()));
    }
  }

  void check_unused_result() {
    // A function that writes a0 on every returning path advertises a
    // result. If no reachable call site keeps a0 live at its continuation,
    // every caller discards it. (Result forwarding is covered: a caller
    // passing a0 through to its own return keeps it live via the return
    // boundary.)
    const std::size_t n = an.cfg.functions.size();
    std::vector<u8> produces(n, 0);
    for (std::size_t f = 1; f < n; ++f) {
      if (!an.function_reachable[f] || f >= an.summaries.size()) continue;
      const FunctionSummary& sum = an.summaries[f];
      produces[f] = !sum.conservative && sum.returns &&
                    (sum.must_write & reg_bit(10)) != 0;
    }
    std::vector<u8> called(n, 0), consumed(n, 0);
    for_each_reachable_block([&](const cfg::Function& /*fn*/, std::size_t f,
                                 const cfg::BasicBlock& block) {
      if (block.terminator != Terminator::kCall) return;
      auto it = an.cfg.function_by_entry.find(block.call_target);
      if (it == an.cfg.function_by_entry.end()) return;
      called[it->second] = 1;
      // Backward out-fact of the call block = live after the call returns.
      if ((an.functions[f].live.out[block.id] & reg_bit(10)) != 0) {
        consumed[it->second] = 1;
      }
    });
    for (std::size_t f = 1; f < n; ++f) {
      if (!produces[f] || !called[f] || consumed[f]) continue;
      const cfg::Function& fn = an.cfg.functions[f];
      add(CheckKind::kUnusedResult, fn.entry, fn.name,
          format("'%s' computes a result in a0, but no reachable call "
                 "site ever uses it",
                 fn.name.c_str()));
    }
  }

  void check_policy() {
    if (opts.policy == nullptr) return;
    const memwatch::Policy& policy = *opts.policy;
    for_each_reachable_block([&](const cfg::Function& fn, std::size_t f,
                                 const cfg::BasicBlock& block) {
      walk_block(block, &an.mem, an.functions[f].reg.in[block.id],
                 [&](u32 pc, const Instr& instr, const RegState& state) {
                   if (!instr.reads_memory() && !instr.writes_memory()) return;
                   const auto bounds =
                       raw_bounds(effective_address(instr, state));
                   if (!bounds) return;  // imprecise: never flag
                   const u64 lo = bounds->first;
                   const u64 hi = bounds->second + access_size(instr.op) - 1;
                   screen_access(fn, pc, instr, lo, hi, policy);
                 });
    });
  }

  void screen_access(const cfg::Function& fn, u32 pc, const Instr& instr,
                     u64 lo, u64 hi, const memwatch::Policy& policy) {
    const bool is_store = instr.writes_memory();
    bool matched_any = false;
    for (const memwatch::Region& region : policy.regions) {
      const u64 rbase = region.base;
      const u64 rend = rbase + region.size;
      if (lo < rend && rbase <= hi) matched_any = true;
      // Must-target: flag only when the whole access range is inside.
      if (!(lo >= rbase && hi < rend)) continue;
      const bool perm_ok = is_store ? region.allow_write : region.allow_read;
      const bool pc_ok = region.pc_allowed(pc);
      if (perm_ok && pc_ok) continue;
      std::string why =
          !perm_ok ? format("%s access is not permitted",
                            is_store ? "write" : "read")
                   : format("pc 0x%08x is outside the authorized window "
                            "[0x%08x, 0x%08x)",
                            pc, region.pc_lo, region.pc_hi);
      add(CheckKind::kPolicyViolation, pc, fn.name,
          format("'%s' %s region '%s' at [0x%08x, 0x%08x]: %s",
                 isa::disassemble(instr).c_str(),
                 is_store ? "writes" : "reads", region.name.c_str(),
                 static_cast<u32>(lo), static_cast<u32>(hi), why.c_str()));
      return;
    }
    if (!policy.default_allow && !matched_any) {
      add(CheckKind::kPolicyViolation, pc, fn.name,
          format("'%s' accesses [0x%08x, 0x%08x], outside every policy "
                 "region (default deny)",
                 isa::disassemble(instr).c_str(), static_cast<u32>(lo),
                 static_cast<u32>(hi)));
    }
  }

  void check_unresolved() {
    for (const UnresolvedSite& site : an.unresolved) {
      add(CheckKind::kUnresolvedIndirect, site.pc, site.function,
          format("unresolved indirect %s at 0x%08x in '%s' (target value: "
                 "%s)",
                 site.is_call ? "call" : "jump", site.pc,
                 site.function.c_str(), site.target.c_str()));
    }
  }

  template <typename Cb>
  void for_each_reachable_block(Cb&& cb) {
    for (std::size_t f = 0; f < an.cfg.functions.size(); ++f) {
      if (!an.function_reachable[f]) continue;
      const cfg::Function& fn = an.cfg.functions[f];
      for (const cfg::BasicBlock& block : fn.blocks) {
        if (!an.functions[f].block_reachable[block.id]) continue;
        cb(fn, f, block);
      }
    }
  }
};

}  // namespace

std::string_view check_name(CheckKind kind) noexcept {
  switch (kind) {
    case CheckKind::kUninitRead: return "uninit-read";
    case CheckKind::kUnreachableBlock: return "unreachable";
    case CheckKind::kDeadWrite: return "dead-write";
    case CheckKind::kStackImbalance: return "stack-imbalance";
    case CheckKind::kPolicyViolation: return "policy";
    case CheckKind::kUnresolvedIndirect: return "indirect";
    case CheckKind::kUnusedResult: return "unused-result";
    case CheckKind::kRecursion: return "recursion";
    case CheckKind::kStackOverflow: return "stack-overflow";
  }
  return "?";
}

std::string Finding::to_string() const {
  return format("[%s] 0x%08x (%s): %s",
                std::string(check_name(kind)).c_str(), pc, function.c_str(),
                message.c_str());
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string Finding::to_json() const {
  return format("{\"check\":\"%s\",\"pc\":\"0x%08x\",\"function\":\"%s\","
                "\"message\":\"%s\"}",
                std::string(check_name(kind)).c_str(), pc,
                json_escape(function).c_str(), json_escape(message).c_str());
}

std::string LintReport::to_string() const {
  std::string out;
  out += format("s4e-lint: %zu finding(s)\n", findings.size());
  for (const Finding& finding : findings) {
    out += "  " + finding.to_string() + "\n";
  }
  out += "stack frames (static):\n";
  for (const FrameInfo& frame : frames) {
    out += format("  %-24s frame %4lld bytes, with callees ",
                  frame.function.c_str(),
                  static_cast<long long>(frame.frame_bytes));
    out += frame.total_bytes < 0
               ? "unknown\n"
               : format("%4lld bytes\n",
                        static_cast<long long>(frame.total_bytes));
  }
  if (max_stack_depth >= 0) {
    out += format("worst-case stack depth from entry: %lld bytes\n",
                  static_cast<long long>(max_stack_depth));
  }
  return out;
}

LintReport lint(const Analysis& analysis, const LintOptions& options) {
  Linter linter{analysis, options, {}};
  linter.check_unreachable();
  linter.check_uninit_reads();
  linter.check_dead_writes();
  linter.check_stack();
  linter.check_recursion();
  linter.check_unused_result();
  linter.check_policy();
  linter.check_unresolved();
  std::stable_sort(linter.report.findings.begin(),
                   linter.report.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.pc != b.pc) return a.pc < b.pc;
                     return static_cast<u8>(a.kind) < static_cast<u8>(b.kind);
                   });
  return std::move(linter.report);
}

Result<LintReport> lint_program(const assembler::Program& program,
                                const LintOptions& options) {
  S4E_TRY(analysis, analyze_program(program));
  return lint(analysis, options);
}

}  // namespace s4e::dataflow
