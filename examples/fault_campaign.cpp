// Fault-effect analysis demo (MBMV'20): run a coverage-directed bit-flip
// campaign against a self-checking workload and print the outcome
// classification, plus the ablation against blind (undirected) injection.
//
//   $ ./examples/fault_campaign [workload] [mutants]   (default: bubble_sort 150)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/ecosystem.hpp"
#include "core/workloads.hpp"

int main(int argc, char** argv) {
  using namespace s4e;

  const std::string name = argc > 1 ? argv[1] : "bubble_sort";
  const unsigned mutants =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 150;

  auto workload = core::find_workload(name);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.error().to_string().c_str());
    return 1;
  }
  core::Ecosystem ecosystem;
  auto program = ecosystem.build(*workload);
  if (!program.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n",
                 program.error().to_string().c_str());
    return 1;
  }

  fault::CampaignConfig config;
  config.seed = 2022;
  config.mutant_count = mutants;

  std::printf("=== coverage-directed campaign on '%s' (%u mutants) ===\n",
              name.c_str(), mutants);
  auto directed = ecosystem.run_campaign(*program, config);
  if (!directed.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n",
                 directed.error().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", directed->to_string().c_str());

  std::printf("=== ablation: blind injection (same seed) ===\n");
  config.coverage_directed = false;
  auto blind = ecosystem.run_campaign(*program, config);
  if (!blind.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n",
                 blind.error().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", blind->to_string().c_str());

  const double directed_effective =
      1.0 - static_cast<double>(directed->count(fault::Outcome::kMasked)) /
                static_cast<double>(directed->mutants.size());
  const double blind_effective =
      1.0 - static_cast<double>(blind->count(fault::Outcome::kMasked)) /
                static_cast<double>(blind->mutants.size());
  std::printf("effective (non-masked) fault rate: directed %.1f%% vs blind "
              "%.1f%%\n",
              100.0 * directed_effective, 100.0 * blind_effective);
  std::printf("(coverage-directed lists avoid faults the software can never "
              "observe, so a larger share of simulated mutants is "
              "informative)\n");
  return 0;
}
