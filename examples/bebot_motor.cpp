// Robot-demonstrator scenario (the Scale4Edge demonstrators are small
// robots): a software-PWM motor driver on GPIO pin 0. The firmware reads a
// "speed request" from the GPIO input pins (set by the host), converts it
// into a duty cycle, and drives N PWM periods of 40 cycles each by busy
// counting. The host reconstructs the waveform from the GPIO change log
// and checks the generated duty cycle against the request.
//
//   $ ./examples/bebot_motor [speed 0..10]     (default 7 -> 70 % duty)
#include <cstdio>
#include <cstdlib>

#include "asm/assembler.hpp"
#include "common/strings.hpp"
#include "vp/machine.hpp"

int main(int argc, char** argv) {
  using namespace s4e;
  const unsigned speed =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) % 11 : 7;

  const char* kFirmware = R"(
.equ GPIO, 0x10010000
_start:
    li s0, GPIO
    lw s1, 16(s0)       # speed request from the input pins (0..10)
    li s2, 100          # PWM periods to generate
pwm_loop:
    # high phase: `speed` slots
    li t1, 1
    sw t1, 4(s0)        # SET pin0
    mv t0, s1
    beqz t0, high_done
high_phase:
    .loopbound 10
    addi t0, t0, -1
    bnez t0, high_phase
high_done:
    # low phase: (10 - speed) slots
    li t1, 1
    sw t1, 8(s0)        # CLEAR pin0
    li t0, 10
    sub t0, t0, s1
    beqz t0, low_done
low_phase:
    .loopbound 10
    addi t0, t0, -1
    bnez t0, low_phase
low_done:
    addi s2, s2, -1
    bnez s2, pwm_loop
    li a0, 0
    li a7, 93
    ecall
)";

  auto program = assembler::assemble(kFirmware);
  if (!program.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n",
                 program.error().to_string().c_str());
    return 1;
  }

  vp::Machine machine;
  S4E_CHECK(machine.load_program(*program).ok());
  machine.gpio()->set_in(speed);  // the "speed request"

  const vp::RunResult result = machine.run();
  std::printf("bebot motor firmware: speed request %u/10\n", speed);
  std::printf("run: reason=%s, %llu instructions, %llu cycles\n",
              std::string(vp::to_string(result.reason)).c_str(),
              static_cast<unsigned long long>(result.instructions),
              static_cast<unsigned long long>(result.cycles));

  const auto& changes = machine.gpio()->changes();
  std::printf("gpio pin0: %zu edges logged\n", changes.size());
  if (changes.size() >= 6) {
    std::printf("first edges (cycle, level): ");
    for (std::size_t i = 0; i < 6; ++i) {
      std::printf("(%llu,%u) ",
                  static_cast<unsigned long long>(changes[i].cycle),
                  changes[i].out & 1);
    }
    std::printf("\n");
  }

  const double duty = machine.gpio()->duty_cycle(0);
  const double requested = static_cast<double>(speed) / 10.0;
  std::printf("measured duty cycle: %.1f%% (requested %.0f%%)\n",
              100.0 * duty, 100.0 * requested);

  // The software PWM has fixed per-period overhead (the SET/CLEAR writes
  // and loop control), so allow a generous tolerance.
  const bool ok = result.normal_exit() &&
                  (speed == 0 || speed == 10 ||
                   (duty > requested - 0.15 && duty < requested + 0.15));
  std::printf("duty cycle within tolerance: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
