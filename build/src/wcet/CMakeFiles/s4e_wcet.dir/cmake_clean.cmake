file(REMOVE_RECURSE
  "CMakeFiles/s4e_wcet.dir/analyzer.cpp.o"
  "CMakeFiles/s4e_wcet.dir/analyzer.cpp.o.d"
  "CMakeFiles/s4e_wcet.dir/annotated_cfg.cpp.o"
  "CMakeFiles/s4e_wcet.dir/annotated_cfg.cpp.o.d"
  "libs4e_wcet.a"
  "libs4e_wcet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e_wcet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
