file(REMOVE_RECURSE
  "libs4e_mutation.a"
)
