// Text format for memwatch policies, shared by the dynamic plugin tooling
// and the static screening in s4e-lint:
//
//   # comment
//   default allow|deny
//   region <name> <base> <size> [perm r|w|rw|none] [pc <lo> <hi>]
//
// Numeric fields accept decimal or 0x-prefixed hex; any of them may instead
// be a symbol name, resolved against the program's symbol table (so a PC
// window can be written `pc uart_puts uart_puts_end`).
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "memwatch/memwatch.hpp"

namespace s4e::memwatch {

Result<Policy> parse_policy(std::string_view text,
                            const std::map<std::string, u32>& symbols = {});

}  // namespace s4e::memwatch
