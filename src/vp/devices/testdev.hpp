// Test finisher (modelled on the SiFive test device QEMU uses for exit):
// a single 32-bit register; writing
//   0x5555            -> exit(0)   ("pass")
//   (code<<16)|0x3333 -> exit(code) ("fail" with code)
// lets bare-metal workloads terminate the simulation cleanly.
#pragma once

#include <functional>

#include "vp/device.hpp"

namespace s4e::vp {

class TestDevice final : public Device {
 public:
  static constexpr u32 kDefaultBase = 0x0010'0000;
  static constexpr u32 kWindowSize = 0x1000;
  static constexpr u32 kPass = 0x5555;
  static constexpr u32 kFailMagic = 0x3333;

  using ExitHook = std::function<void(int exit_code)>;

  explicit TestDevice(ExitHook on_exit) : on_exit_(std::move(on_exit)) {}

  std::string_view name() const noexcept override { return "test-finisher"; }

  // No guest-visible state: the Device reset()/save_state()/restore_state()
  // defaults (no-ops) are the full contract here. The exit hook is wiring,
  // not state, and survives reset and restore by design.

  Result<u32> read(u32 offset, unsigned size) override {
    (void)offset;
    (void)size;
    return u32{0};
  }

  Status write(u32 offset, unsigned size, u32 value) override {
    (void)offset;
    (void)size;
    if (value == kPass) {
      on_exit_(0);
    } else if ((value & 0xffff) == kFailMagic) {
      on_exit_(static_cast<int>(value >> 16));
    }
    return Status();
  }

 private:
  ExitHook on_exit_;
};

}  // namespace s4e::vp
