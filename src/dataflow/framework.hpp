// Generic intraprocedural worklist solver over a cfg::Function.
//
// A Domain supplies the lattice and transfer function:
//
//   static constexpr bool kForward;     // direction
//   using State = ...;                  // per-program-point fact
//   State boundary(fn, block) const;    // forward: entry block's in-state;
//                                       // backward: out-state of exit blocks
//   State transfer(fn, block, state) const;   // through the whole block
//   bool join(State& into, const State& from, bool widen) const;
//                                       // accumulate; returns "changed"
//   bool edge_feasible(fn, block, out_state, edge) const;
//                                       // forward only: prune branch edges
//
// The solver iterates to a fixpoint. After a block has been processed
// kWidenAfter times, joins into its input are asked to widen so infinite
// ascending chains (loop counters) terminate.
#pragma once

#include <vector>

#include "cfg/cfg.hpp"

namespace s4e::dataflow {

template <typename Domain>
struct Solution {
  // Forward: in[b] is the state at block entry, out[b] after the block.
  // Backward: out[b] is the state at block exit, in[b] before the block.
  std::vector<typename Domain::State> in;
  std::vector<typename Domain::State> out;
};

inline constexpr unsigned kWidenAfter = 4;

template <typename Domain>
Solution<Domain> solve(const cfg::Function& fn, const Domain& domain) {
  const std::size_t n = fn.blocks.size();
  Solution<Domain> sol;
  sol.in.resize(n);
  sol.out.resize(n);
  std::vector<unsigned> visits(n, 0);
  std::vector<bool> queued(n, false);
  std::vector<cfg::BlockId> worklist;

  auto push = [&](cfg::BlockId id) {
    if (!queued[id]) {
      queued[id] = true;
      worklist.push_back(id);
    }
  };

  if constexpr (Domain::kForward) {
    sol.in[0] = domain.boundary(fn, fn.blocks[0]);
    push(0);
    while (!worklist.empty()) {
      const cfg::BlockId id = worklist.back();
      worklist.pop_back();
      queued[id] = false;
      const cfg::BasicBlock& block = fn.blocks[id];
      ++visits[id];
      sol.out[id] = domain.transfer(fn, block, sol.in[id]);
      for (const cfg::Edge& edge : block.successors) {
        if (!domain.edge_feasible(fn, block, sol.out[id], edge)) continue;
        const bool widen = visits[edge.target] >= kWidenAfter;
        if (domain.join(sol.in[edge.target], sol.out[id], widen)) {
          push(edge.target);
        }
      }
    }
  } else {
    for (cfg::BlockId id = 0; id < n; ++id) {
      if (fn.blocks[id].successors.empty()) {
        sol.out[id] = domain.boundary(fn, fn.blocks[id]);
      }
      push(id);
    }
    while (!worklist.empty()) {
      const cfg::BlockId id = worklist.back();
      worklist.pop_back();
      queued[id] = false;
      const cfg::BasicBlock& block = fn.blocks[id];
      ++visits[id];
      sol.in[id] = domain.transfer(fn, block, sol.out[id]);
      for (cfg::BlockId pred : block.predecessors) {
        const bool widen = visits[pred] >= kWidenAfter;
        if (domain.join(sol.out[pred], sol.in[id], widen)) push(pred);
      }
    }
  }
  return sol;
}

}  // namespace s4e::dataflow
