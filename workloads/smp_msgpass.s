# lr/sc ticket counter with per-hart log slots (SMP)
# expected exit code: 0

_start:
    csrr s0, mhartid
    addi s6, s0, 1
    li s1, 16
    la s2, ticket
    la s3, log
    la s4, mine
    bnez s0, sec_loop
h0_loop:
    call take_ticket
    sw t0, 0(s4)
    addi s4, s4, 4
    addi s1, s1, -1
    bnez s1, h0_loop
    la s4, mine
    li s1, 16
verify:
    lw t0, 0(s4)
    slli t0, t0, 2
    add t0, t0, s3
    lw t1, 0(t0)
    bne t1, s6, fail
    addi s4, s4, 4
    addi s1, s1, -1
    bnez s1, verify
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall

sec_loop:
    call take_ticket
    addi s1, s1, -1
    bnez s1, sec_loop
park:
    wfi
    j park

# take_ticket: fetch-and-increment `ticket` with an lr/sc retry loop (the
# sc fails when another hart's store broke the reservation), then write the
# caller's marker into log[ticket]. Returns the ticket in t0.
take_ticket:
    lr.w t0, (s2)
    addi t1, t0, 1
    sc.w t2, t1, (s2)
    bnez t2, take_ticket
    andi t3, t0, 127
    slli t3, t3, 2
    add t3, t3, s3
    sw s6, 0(t3)
    ret
.data
ticket:
    .word 0
log:
    .space 512
mine:
    .space 64
