#include "trace/replay.hpp"

#include "common/strings.hpp"
#include "exec/pool.hpp"
#include "isa/opcode.hpp"

namespace s4e::trace {

using isa::OpClass;

namespace {

Error taint_error(const Trace& trace) {
  std::string message =
      format("trace is timing-path-tainted at %zu site(s); the recorded path "
             "is only valid for the recording configuration:",
             trace.taints().size());
  std::size_t listed = 0;
  for (const TaintSite& site : trace.taints()) {
    if (listed == 8) {
      message += format(" ... (%zu more)", trace.taints().size() - listed);
      break;
    }
    message += format(" [pc=0x%08x %.*s]", site.pc,
                      static_cast<int>(to_string(site.kind).size()),
                      to_string(site.kind).data());
    ++listed;
  }
  return Error(ErrorCode::kStateError, message);
}

}  // namespace

Status check_replayable(const Trace& trace, u64 expected_fingerprint) {
  if (expected_fingerprint != 0 &&
      trace.header().fingerprint != expected_fingerprint) {
    return Error(
        ErrorCode::kInvalidArgument,
        format("trace was recorded from a different workload (trace "
               "fingerprint %016llx, expected %016llx)",
               static_cast<unsigned long long>(trace.header().fingerprint),
               static_cast<unsigned long long>(expected_fingerprint)));
  }
  if (!trace.taints().empty()) return taint_error(trace);
  return Status();
}

Result<DecodedTrace> DecodedTrace::decode(const Trace& trace) {
  if (!trace.taints().empty()) return taint_error(trace);

  DecodedTrace out;
  out.header_ = trace.header();
  out.footer_ = trace.footer();
  // Events are at least two stream bytes each (tag + payload) except bare
  // runs/blocks; half the stream size is a decent reservation.
  out.events_.reserve(trace.stream_size() / 2 + 16);

  Cursor cursor(trace);
  Event event;
  while (cursor.next(event)) {
    switch (event.tag) {
      case Tag::kTaint:
      case Tag::kWfiSleep:
        // Unreachable: taints were rejected above; be loud, not wrong.
        return taint_error(trace);
      case Tag::kEnd:
      case Tag::kCount:
        continue;
      default:
        break;
    }
    Compact compact;
    compact.tag = static_cast<u8>(event.tag);
    compact.op_class = event.op_class;
    compact.length = static_cast<u8>(event.length);
    compact.flags = static_cast<u8>((event.mem_store ? 1 : 0) |
                                    (event.mem_mmio ? 2 : 0) |
                                    (event.handled ? 4 : 0));
    compact.pc = event.pc;
    compact.count = event.count;
    compact.dividend = event.dividend;
    out.events_.push_back(compact);
  }
  if (!cursor.ok()) {
    return Error(ErrorCode::kParseError,
                 format("event stream decode failed at offset %zu: %s",
                        cursor.offset(), cursor.error().c_str()));
  }
  return out;
}

namespace {

// The hot loop, specialized on hook presence: the cycles-only walk (no
// per-instruction hook) is the replay-many fast path, and keeping the
// std::function test out of it is worth a template — per-event cost is
// what the >=10x-over-re-execution claim rests on.
template <bool kHooked>
ReplayResult replay_loop(const DecodedTrace& trace,
                         const vp::TimingParams& params,
                         const InsnHook& on_insn) {
  const vp::TimingModel model(params);
  vp::IcacheSim icache(params);
  vp::BimodalPredictor bimodal;
  ReplayResult out;

  // Per-class fall-through costs are loop-invariant; precompute them the way
  // the exec engine's lowering bakes them into DecodedInsn. Memory costs are
  // a four-entry table indexed by the compact (store, mmio) flag bits.
  const u64 c_arith = model.class_cycles(OpClass::kArith, false, false);
  const u64 c_mul = model.class_cycles(OpClass::kMul, false, false);
  const u64 c_div = model.class_cycles(OpClass::kDiv, false, false);
  const u64 c_csr = model.class_cycles(OpClass::kCsr, false, false);
  const u64 c_amo = model.class_cycles(OpClass::kAmo, false, false);
  const u64 c_jump = model.class_cycles(OpClass::kJump, true, false);
  const u64 c_branch_fall = model.class_cycles(OpClass::kBranch, false, false);
  const u64 c_branch_taken = model.class_cycles(OpClass::kBranch, true, false);
  const u64 c_sys_fall = model.class_cycles(OpClass::kSystem, false, false);
  const u64 c_sys_taken = model.class_cycles(OpClass::kSystem, true, false);
  const u64 c_mem[4] = {
      model.class_cycles(OpClass::kLoad, false, false),
      model.class_cycles(OpClass::kStore, false, false),
      model.class_cycles(OpClass::kLoad, false, true),
      model.class_cycles(OpClass::kStore, false, true),
  };
  const bool icache_on = icache.enabled();
  const bool bpred_on = params.branch_predictor;

  for (const DecodedTrace::Compact& event : trace.stream()) {
    switch (static_cast<Tag>(event.tag)) {
      case Tag::kBlock:
      case Tag::kBlockAt:
        ++out.blocks;
        if (icache_on && icache.probe(event.pc, params)) {
          out.cycles += params.icache_miss_cycles;
        }
        break;
      case Tag::kRun4:
      case Tag::kRun2:
        out.instructions += event.count;
        out.cycles += c_arith * event.count;
        if constexpr (kHooked) {
          for (u32 i = 0; i < event.count; ++i) {
            on_insn(event.pc + i * event.length);
          }
        }
        break;
      case Tag::kJump:
        ++out.instructions;
        out.cycles += c_jump;
        if constexpr (kHooked) on_insn(event.pc);
        break;
      case Tag::kBranchT:
      case Tag::kBranchN4:
      case Tag::kBranchN2: {
        const bool taken = static_cast<Tag>(event.tag) == Tag::kBranchT;
        bool penalize = taken;
        if (bpred_on) {
          penalize = bimodal.mispredict(event.pc, taken);
          if (penalize) ++out.mispredicts;
        }
        ++out.instructions;
        out.cycles += penalize ? c_branch_taken : c_branch_fall;
        if constexpr (kHooked) on_insn(event.pc);
        break;
      }
      case Tag::kLoad4: case Tag::kLoad2:
      case Tag::kStore4: case Tag::kStore2:
      case Tag::kLoadMmio4: case Tag::kLoadMmio2:
      case Tag::kStoreMmio4: case Tag::kStoreMmio2:
        ++out.instructions;
        out.cycles += c_mem[event.flags & 3];
        if constexpr (kHooked) on_insn(event.pc);
        break;
      case Tag::kAmoLoad:
      case Tag::kAmoStore:
      case Tag::kAmoRmw:
      case Tag::kAmoFail:
        ++out.instructions;
        out.cycles += c_amo;
        if constexpr (kHooked) on_insn(event.pc);
        break;
      case Tag::kMul4: case Tag::kMul2:
        ++out.instructions;
        out.cycles += c_mul;
        if constexpr (kHooked) on_insn(event.pc);
        break;
      case Tag::kDiv4: case Tag::kDiv2:
        ++out.instructions;
        out.cycles += c_div + model.divide_cycles(event.dividend);
        if constexpr (kHooked) on_insn(event.pc);
        break;
      case Tag::kCsr4: case Tag::kCsr2:
        ++out.instructions;
        out.cycles += c_csr;
        if constexpr (kHooked) on_insn(event.pc);
        break;
      case Tag::kSysExit:
        ++out.instructions;
        out.cycles += c_sys_fall;
        if constexpr (kHooked) on_insn(event.pc);
        break;
      case Tag::kMret:
      case Tag::kWfiHalt:
        ++out.instructions;
        out.cycles += c_sys_taken;
        if constexpr (kHooked) on_insn(event.pc);
        break;
      case Tag::kTrapInsn:
        // The trapped instruction issued (its class cost and the redirect
        // were charged by the live run), then trap entry cost on top when a
        // handler was installed — exactly Machine::take_trap's accounting.
        ++out.instructions;
        out.cycles += model.class_cycles(static_cast<OpClass>(event.op_class),
                                         true, false);
        if (event.flags & 4) out.cycles += params.trap_cycles;
        if constexpr (kHooked) on_insn(event.pc);
        break;
      case Tag::kTrapFetch:
        // Fetch/decode fault at a block head: no instruction executed, no
        // class cost — only trap entry if handled.
        if (event.flags & 4) out.cycles += params.trap_cycles;
        break;
      default:
        // decode() stores timing-relevant tags only.
        break;
    }
  }
  out.icache_misses = icache.misses();
  return out;
}

}  // namespace

Result<ReplayResult> replay(const DecodedTrace& trace,
                            const vp::TimingParams& params,
                            const InsnHook& on_insn) {
  const ReplayResult out = on_insn
                               ? replay_loop<true>(trace, params, on_insn)
                               : replay_loop<false>(trace, params, on_insn);
  if (out.instructions != trace.footer().instructions ||
      out.blocks != trace.footer().blocks) {
    return Error(
        ErrorCode::kStateError,
        format("replay walked %llu instructions / %llu blocks but the footer "
               "recorded %llu / %llu",
               static_cast<unsigned long long>(out.instructions),
               static_cast<unsigned long long>(out.blocks),
               static_cast<unsigned long long>(trace.footer().instructions),
               static_cast<unsigned long long>(trace.footer().blocks)));
  }
  return out;
}

Result<ReplayResult> replay(const Trace& trace, const vp::TimingParams& params,
                            const InsnHook& on_insn) {
  auto decoded = DecodedTrace::decode(trace);
  if (!decoded.ok()) return decoded.error();
  return replay(*decoded, params, on_insn);
}

Status self_check(const Trace& trace) {
  auto result = replay(trace, trace.header().recorded);
  if (!result.ok()) return result.error();
  if (result->cycles != trace.footer().recorded_cycles) {
    return Error(
        ErrorCode::kStateError,
        format("self check failed: replaying the recording configuration "
               "gives %llu cycles, the live run counted %llu",
               static_cast<unsigned long long>(result->cycles),
               static_cast<unsigned long long>(
                   trace.footer().recorded_cycles)));
  }
  return Status();
}

std::vector<NamedTiming> timing_matrix() {
  struct Feature {
    const char* name;
    void (*apply)(vp::TimingParams&);
  };
  static constexpr Feature kFeatures[] = {
      {"icache", [](vp::TimingParams& p) { p.icache_miss_cycles = 12; }},
      {"bpred", [](vp::TimingParams& p) { p.branch_predictor = true; }},
      {"slowram", [](vp::TimingParams& p) { p.ram_access_cycles = 3; }},
      {"deeppipe", [](vp::TimingParams& p) { p.redirect_penalty = 4; }},
      {"slowmath",
       [](vp::TimingParams& p) {
         p.mul_cycles = 4;
         p.div_min_cycles = 4;
         p.div_max_cycles = 65;
       }},
  };
  constexpr unsigned kFeatureCount = 5;

  std::vector<NamedTiming> matrix;
  matrix.reserve(1u << kFeatureCount);
  for (unsigned mask = 0; mask < (1u << kFeatureCount); ++mask) {
    NamedTiming config;
    for (unsigned bit = 0; bit < kFeatureCount; ++bit) {
      if ((mask & (1u << bit)) == 0) continue;
      if (!config.name.empty()) config.name += '+';
      config.name += kFeatures[bit].name;
      kFeatures[bit].apply(config.params);
    }
    if (config.name.empty()) config.name = "base";
    matrix.push_back(std::move(config));
  }
  return matrix;
}

Result<std::vector<MatrixRow>> replay_matrix(
    const Trace& trace, const std::vector<NamedTiming>& configs,
    unsigned jobs) {
  S4E_TRY_STATUS(check_replayable(trace, 0));
  auto decoded = DecodedTrace::decode(trace);
  if (!decoded.ok()) return decoded.error();

  std::vector<MatrixRow> rows(configs.size());
  std::vector<Status> failures(configs.size());
  {
    exec::ThreadPool::Options options;
    options.threads = exec::ThreadPool::resolve_jobs(jobs);
    exec::ThreadPool pool(options);
    for (std::size_t i = 0; i < configs.size(); ++i) {
      pool.submit([&, i] {
        rows[i].name = configs[i].name;
        rows[i].params = configs[i].params;
        auto result = replay(*decoded, configs[i].params);
        if (result.ok()) {
          rows[i].result = *result;
        } else {
          failures[i] = result.error();
        }
      });
    }
    pool.wait_idle();
  }
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (!failures[i].ok()) {
      return Error(failures[i].error().code(),
                   format("config '%s': %s", configs[i].name.c_str(),
                          failures[i].error().message().c_str()));
    }
  }
  return rows;
}

}  // namespace s4e::trace
