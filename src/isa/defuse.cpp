#include "isa/defuse.hpp"

namespace s4e::isa {

DefUse def_use(const Instr& instr) noexcept {
  const OpInfo& info = instr.info();
  DefUse du;
  if (info.reads_rs1) du.reads |= u32{1} << instr.rs1;
  if (info.reads_rs2) du.reads |= u32{1} << instr.rs2;
  if (info.writes_rd && instr.rd != 0) du.writes |= u32{1} << instr.rd;
  return du;
}

bool writes_gpr(const Instr& instr, unsigned reg) noexcept {
  return reg != 0 && (def_use(instr).writes & (u32{1} << reg)) != 0;
}

bool reads_gpr(const Instr& instr, unsigned reg) noexcept {
  return (def_use(instr).reads & (u32{1} << reg)) != 0;
}

}  // namespace s4e::isa
