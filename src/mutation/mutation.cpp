#include "mutation/mutation.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include "common/strings.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "isa/encoder.hpp"
#include "isa/rvc.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "vp/runner.hpp"

namespace s4e::mutation {

namespace {

using isa::Format;
using isa::Instr;
using isa::Op;

// Same-format opcode substitutions (both directions are generated when both
// sides appear in the program).
constexpr std::pair<Op, Op> kSubstitutions[] = {
    {Op::kAdd, Op::kSub},   {Op::kAnd, Op::kOr},    {Op::kOr, Op::kXor},
    {Op::kSlt, Op::kSltu},  {Op::kSll, Op::kSrl},   {Op::kSrl, Op::kSra},
    {Op::kBeq, Op::kBne},   {Op::kBlt, Op::kBge},   {Op::kBltu, Op::kBgeu},
    {Op::kAddi, Op::kXori}, {Op::kOri, Op::kAndi},  {Op::kSlti, Op::kSltiu},
    {Op::kSlli, Op::kSrli}, {Op::kSrli, Op::kSrai}, {Op::kLw, Op::kLh},
    {Op::kLbu, Op::kLhu},   {Op::kSw, Op::kSh},     {Op::kMul, Op::kMulh},
    {Op::kDiv, Op::kRem},   {Op::kDivu, Op::kRemu},
};

// Re-encode `instr` with the same length as the original; nullopt when the
// mutated form has no encoding of that length.
std::optional<u32> encode_same_length(const Instr& instr, u8 length) {
  if (length == 2) {
    const auto half = isa::compress(instr);
    return half.has_value() ? std::optional<u32>(*half) : std::nullopt;
  }
  auto word = isa::encode(instr);
  return word.ok() ? std::optional<u32>(*word) : std::nullopt;
}

void add_mutant(std::vector<Mutant>& out, u32 address, u32 original,
                u8 length, const Instr& mutated_instr, Operator op,
                std::string description) {
  const auto encoding = encode_same_length(mutated_instr, length);
  if (!encoding.has_value() || *encoding == original) return;
  Mutant mutant;
  mutant.address = address;
  mutant.original = original;
  mutant.mutated = *encoding;
  mutant.length = length;
  mutant.op = op;
  mutant.description = std::move(description);
  out.push_back(std::move(mutant));
}

void mutants_for(std::vector<Mutant>& out, u32 address, const Instr& instr) {
  const u32 original = instr.raw;
  const u8 length = instr.length;
  const isa::OpInfo& info = instr.info();

  // --- OSR: opcode substitution.
  for (const auto& [a, b] : kSubstitutions) {
    Op substitute = Op::kCount;
    if (instr.op == a) substitute = b;
    if (instr.op == b) substitute = a;
    if (substitute == Op::kCount) continue;
    Instr mutated = instr;
    mutated.op = substitute;
    add_mutant(out, address, original, length, mutated,
               Operator::kOpcodeSubstitution,
               format("%s -> %s", std::string(isa::mnemonic(instr.op)).c_str(),
                      std::string(isa::mnemonic(substitute)).c_str()));
  }

  // --- ROR: register operand replacement (neighbouring register).
  if (info.writes_rd && instr.rd != 0) {
    Instr mutated = instr;
    mutated.rd = static_cast<u8>((instr.rd % 31) + 1);  // stays in x1..x31
    add_mutant(out, address, original, length, mutated,
               Operator::kRegisterReplacement,
               format("rd x%u -> x%u", instr.rd, mutated.rd));
  }
  if (info.reads_rs1) {
    Instr mutated = instr;
    mutated.rs1 = static_cast<u8>((instr.rs1 + 1) % 32);
    add_mutant(out, address, original, length, mutated,
               Operator::kRegisterReplacement,
               format("rs1 x%u -> x%u", instr.rs1, mutated.rs1));
  }
  if (info.reads_rs2 && info.format != Format::kIShift) {
    Instr mutated = instr;
    mutated.rs2 = static_cast<u8>((instr.rs2 + 1) % 32);
    add_mutant(out, address, original, length, mutated,
               Operator::kRegisterReplacement,
               format("rs2 x%u -> x%u", instr.rs2, mutated.rs2));
  }

  // --- IPR: immediate perturbation.
  switch (info.format) {
    case Format::kI:
    case Format::kS: {
      Instr plus = instr;
      plus.imm = instr.imm + 1;
      add_mutant(out, address, original, length, plus,
                 Operator::kImmediatePerturbation, "imm + 1");
      if (instr.imm != 0) {
        Instr zero = instr;
        zero.imm = 0;
        add_mutant(out, address, original, length, zero,
                   Operator::kImmediatePerturbation, "imm -> 0");
      }
      break;
    }
    case Format::kB:
    case Format::kJ: {
      // Keep 2-byte alignment: offset +- one parcel slot.
      Instr shifted = instr;
      shifted.imm = instr.imm + 4;
      add_mutant(out, address, original, length, shifted,
                 Operator::kImmediatePerturbation, "offset + 4");
      break;
    }
    case Format::kU: {
      Instr plus = instr;
      plus.imm = static_cast<i32>(static_cast<u32>(instr.imm) + 0x1000u);
      add_mutant(out, address, original, length, plus,
                 Operator::kImmediatePerturbation, "imm + 0x1000");
      break;
    }
    case Format::kIShift: {
      Instr plus = instr;
      plus.rs2 = static_cast<u8>((instr.rs2 + 1) % 32);
      plus.imm = plus.rs2;
      add_mutant(out, address, original, length, plus,
                 Operator::kImmediatePerturbation, "shamt + 1");
      break;
    }
    default:
      break;
  }
}

}  // namespace

std::string_view to_string(Operator op) noexcept {
  switch (op) {
    case Operator::kOpcodeSubstitution: return "opcode-subst";
    case Operator::kRegisterReplacement: return "register-repl";
    case Operator::kImmediatePerturbation: return "imm-perturb";
  }
  return "?";
}

std::string_view to_string(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kKilledResult: return "killed-result";
    case Verdict::kKilledCrash: return "killed-crash";
    case Verdict::kKilledHang: return "killed-hang";
    case Verdict::kSurvived: return "SURVIVED";
  }
  return "?";
}

double MutationScore::score(Operator op) const {
  u64 total = 0;
  u64 killed_count = 0;
  for (const MutantResult& result : results) {
    if (result.mutant.op != op) continue;
    ++total;
    killed_count += result.verdict != Verdict::kSurvived;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(killed_count) /
                          static_cast<double>(total);
}

std::string MutationScore::to_string() const {
  std::string out = "mutation analysis\n";
  out += format("  mutants        : %zu\n", results.size());
  if (pruned_count > 0) {
    out += format("  pruned (static): %llu (%.1f%%)\n",
                  static_cast<unsigned long long>(pruned_count),
                  100.0 * static_cast<double>(pruned_count) /
                      static_cast<double>(
                          std::max<std::size_t>(results.size(), 1)));
  }
  out += format("  killed         : %llu (%.1f%%)\n",
                static_cast<unsigned long long>(killed()), 100.0 * score());
  for (unsigned i = 0; i < 4; ++i) {
    const auto verdict = static_cast<Verdict>(i);
    out += format("    %-14s : %llu\n",
                  std::string(mutation::to_string(verdict)).c_str(),
                  static_cast<unsigned long long>(verdict_counts[i]));
  }
  for (unsigned i = 0; i < 3; ++i) {
    const auto op = static_cast<Operator>(i);
    out += format("  %-15s : %.1f%% killed\n",
                  std::string(mutation::to_string(op)).c_str(),
                  100.0 * score(op));
  }
  return out;
}

std::vector<Mutant> enumerate_mutants(const assembler::Program& program,
                                      const std::vector<u32>& executed) {
  std::set<u32> filter(executed.begin(), executed.end());
  std::vector<Mutant> mutants;
  const assembler::Section* text = program.find_section(".text");
  if (text == nullptr) return mutants;

  u32 address = text->base;
  while (address + 2 <= text->end()) {
    auto half = program.read_half(address);
    if (!half.ok()) break;
    Instr instr;
    if (isa::is_compressed(static_cast<u16>(*half))) {
      auto decompressed = isa::decompress(static_cast<u16>(*half));
      if (!decompressed.ok()) {
        address += 2;
        continue;
      }
      instr = *decompressed;
    } else {
      auto word = program.read_word(address);
      if (!word.ok()) break;
      auto decoded = isa::decoder().decode(*word);
      if (!decoded.ok()) {
        address += 4;
        continue;
      }
      instr = *decoded;
    }
    if (filter.empty() || filter.count(address) != 0) {
      mutants_for(mutants, address, instr);
    }
    address += instr.length;
  }
  return mutants;
}

Result<MutationScore> MutationCampaign::run() {
  if (config_.shard_count < 1 || config_.shard_index >= config_.shard_count) {
    return Error(ErrorCode::kInvalidArgument,
                 format("invalid shard %u/%u", config_.shard_index,
                        config_.shard_count));
  }
  // Golden run + executed-address profile.
  vp::Machine machine(config_.machine);
  S4E_TRY(golden, vp::run_golden(machine, program_));

  std::vector<u32> executed_list;
  if (config_.executed_only) executed_list = std::move(golden.executed_code);
  std::vector<Mutant> mutants = enumerate_mutants(program_, executed_list);
  if (config_.max_mutants != 0 && mutants.size() > config_.max_mutants) {
    mutants.resize(config_.max_mutants);
  }

  // Static triage: classify every mutant up front. Enumeration and the cap
  // are unaffected, so the non-pruned subset matches a triage-off run.
  std::vector<dataflow::TriageDecision> decisions(mutants.size());
  if (config_.triage != dataflow::TriageMode::kOff) {
    dataflow::TriageOptions triage_options;
    triage_options.stack_top =
        config_.machine.ram_base + config_.machine.ram_size;
    S4E_TRY(triage, dataflow::StaticTriage::build(program_, triage_options));
    for (std::size_t i = 0; i < mutants.size(); ++i) {
      decisions[i] =
          triage.mutant(mutants[i].address, mutants[i].length,
                        mutants[i].original, mutants[i].mutated);
    }
  }
  const bool skip_pruned = config_.triage == dataflow::TriageMode::kOn;

  vp::MachineConfig mutant_config = config_.machine;
  mutant_config.max_instructions = vp::hang_budget(
      golden.result.instructions, config_.hang_budget_factor,
      config_.machine.max_instructions);

  // Shard selection: enumeration and triage above cover the *full* mutant
  // list (identical for every shard); only the contiguous global index
  // range [begin, end) is executed here.
  const u64 total = mutants.size();
  const u64 begin = total * config_.shard_index / config_.shard_count;
  const u64 end = total * (config_.shard_index + 1) / config_.shard_count;
  const std::size_t count = static_cast<std::size_t>(end - begin);

  // Independent mutant runs fanned out over the executor; each job fills
  // only its own slot, and the verdict histogram is aggregated afterwards
  // in submission order — the score is bit-identical to a serial run,
  // with or without machine reuse.
  MutationScore score;
  score.shard_begin = begin;
  score.total_mutants = total;
  std::vector<MutantResult> slots(count);
  std::vector<std::optional<Error>> errors(count);
  progress_.begin(count);
  exec::CampaignExecutor executor(config_.jobs);
  // Telemetry shards are per worker lane (lock-free: each lane writes only
  // its own shard) and fold deterministically after the barrier.
  std::unique_ptr<obs::CampaignTelemetry> telemetry;
  if (config_.collect_metrics) {
    telemetry = std::make_unique<obs::CampaignTelemetry>(
        std::vector<std::string>{"killed_result", "killed_crash",
                                 "killed_hang", "survived"},
        executor.jobs());
    telemetry->set_campaign(count, golden.result.instructions,
                            mutant_config.max_instructions);
  }
  const auto record = [&](unsigned worker, std::size_t index,
                          Result<MutantResult> result) {
    if (result.ok()) {
      const unsigned bucket = static_cast<unsigned>(result->verdict);
      // Statically decided mutants were never run; they count toward the
      // verdict histogram but not the run telemetry.
      if (telemetry != nullptr && !(skip_pruned && result->pruned)) {
        telemetry->record_run(worker, bucket, result->instructions,
                              !result->post_mortem.empty());
      }
      slots[index] = std::move(*result);
      progress_.record(bucket);
    } else {
      errors[index] = result.error();
      progress_.record(exec::CampaignProgress::kBuckets);  // count done only
    }
  };
  // Short-circuit for statically proven-equivalent mutants (triage on), and
  // the verify-mode cross-check for mutants that *would* have been pruned.
  // These index the *global* mutant list; `record` above takes the local
  // slot index within the shard.
  const auto synthesize = [&](std::size_t global) -> MutantResult {
    MutantResult result;
    result.mutant = mutants[global];
    result.verdict = Verdict::kSurvived;
    result.exit_code = golden.result.exit_code;
    result.pruned = true;
    result.prune_reason = decisions[global].reason;
    return result;
  };
  const auto finish = [&](std::size_t global,
                          Result<MutantResult> result) -> Result<MutantResult> {
    if (!result.ok() || !decisions[global].pruned) return result;
    result->pruned = true;
    result->prune_reason = decisions[global].reason;
    if (config_.triage == dataflow::TriageMode::kVerify &&
        result->verdict != Verdict::kSurvived) {
      return Error(
          ErrorCode::kAnalysisError,
          format("triage verify mismatch: mutant 0x%08x (%s) statically "
                 "pruned as '%s' but dynamically %s",
                 result->mutant.address, result->mutant.description.c_str(),
                 result->prune_reason.c_str(),
                 std::string(mutation::to_string(result->verdict)).c_str()));
    }
    return result;
  };
  if (config_.reuse_machines) {
    // One long-lived machine per worker lane; each mutant starts from a
    // dirty-page restore of the loaded state instead of a fresh build.
    std::vector<std::unique_ptr<vp::WorkerVm>> vms(executor.jobs());
    executor.run_affine(count, [&](unsigned worker, std::size_t index) {
      const std::size_t global = static_cast<std::size_t>(begin) + index;
      if (skip_pruned && decisions[global].pruned) {
        record(worker, index, synthesize(global));  // no VM needed
        return;
      }
      if (vms[worker] == nullptr) {
        auto vm = vp::WorkerVm::create(mutant_config, program_);
        if (!vm.ok()) {
          record(worker, index, vm.error());
          return;
        }
        vms[worker] = std::move(*vm);
      }
      record(worker, index,
             finish(global, run_mutant_on(vms[worker]->prepare(),
                                          mutants[global],
                                          golden.result.exit_code,
                                          golden.uart)));
    });
    for (const auto& vm : vms) {
      if (vm != nullptr) score.snapshot_stats += vm->stats();
    }
  } else {
    // Fresh machine per mutant, still lane-affine so the metric shards have
    // a stable worker index (slot determinism is unchanged).
    executor.run_affine(count, [&](unsigned worker, std::size_t index) {
      const std::size_t global = static_cast<std::size_t>(begin) + index;
      if (skip_pruned && decisions[global].pruned) {
        record(worker, index, synthesize(global));
        return;
      }
      record(worker, index,
             finish(global, run_mutant(mutants[global], mutant_config,
                                       golden.result.exit_code,
                                       golden.uart)));
    });
  }

  score.results.reserve(slots.size());
  for (std::size_t index = 0; index < slots.size(); ++index) {
    if (errors[index].has_value()) return *errors[index];
    ++score.verdict_counts[static_cast<unsigned>(slots[index].verdict)];
    score.pruned_count += slots[index].pruned ? 1 : 0;
    score.results.push_back(std::move(slots[index]));
  }
  if (telemetry != nullptr) {
    if (config_.triage != dataflow::TriageMode::kOff) {
      telemetry->set_pruned(score.pruned_count);
    }
    score.metrics_json = telemetry->to_json();
  }
  return score;
}

Result<MutantResult> MutationCampaign::run_mutant_on(
    vp::Machine& vm, const Mutant& mutant, int golden_exit_code,
    const std::string& golden_uart) const {
  // Patch the mutated encoding over the original bytes. On a reused
  // machine warm translation blocks cover the patched address, so the
  // overlapping blocks must be dropped explicitly (ram_write bypasses the
  // bus's self-modification detection).
  u8 bytes[4];
  for (unsigned i = 0; i < mutant.length; ++i) {
    bytes[i] = static_cast<u8>(mutant.mutated >> (8 * i));
  }
  S4E_TRY_STATUS(vm.bus().ram_write(mutant.address, bytes, mutant.length));
  vm.tb_cache().invalidate_range(mutant.address, mutant.length);

  // The recorder is passive (it only reads the event structs), so verdicts
  // are bit-identical with and without it.
  std::unique_ptr<obs::FlightRecorderPlugin> recorder;
  if (config_.post_mortem) {
    recorder = std::make_unique<obs::FlightRecorderPlugin>(
        config_.post_mortem_events);
    recorder->attach(vm.vm_handle());
  }
  const vp::RunResult run = vm.run();
  MutantResult result;
  result.mutant = mutant;
  result.exit_code = run.exit_code;
  result.instructions = run.instructions;
  if (run.reason == vp::StopReason::kMaxInstructions) {
    result.verdict = Verdict::kKilledHang;
  } else if (!run.normal_exit()) {
    result.verdict = Verdict::kKilledCrash;
  } else if (run.exit_code != golden_exit_code ||
             (vm.uart() != nullptr && vm.uart()->tx_log() != golden_uart)) {
    result.verdict = Verdict::kKilledResult;
  } else {
    result.verdict = Verdict::kSurvived;
  }
  if (recorder != nullptr && (result.verdict == Verdict::kKilledHang ||
                              result.verdict == Verdict::kKilledCrash)) {
    result.post_mortem = recorder->post_mortem(config_.post_mortem_events);
  }
  return result;
}

Result<MutantResult> MutationCampaign::run_mutant(
    const Mutant& mutant, const vp::MachineConfig& machine_config,
    int golden_exit_code, const std::string& golden_uart) const {
  vp::Machine vm(machine_config);
  S4E_TRY_STATUS(vm.load_program(program_));
  return run_mutant_on(vm, mutant, golden_exit_code, golden_uart);
}

}  // namespace s4e::mutation
