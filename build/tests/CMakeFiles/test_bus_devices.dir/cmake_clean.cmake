file(REMOVE_RECURSE
  "CMakeFiles/test_bus_devices.dir/test_bus_devices.cpp.o"
  "CMakeFiles/test_bus_devices.dir/test_bus_devices.cpp.o.d"
  "test_bus_devices"
  "test_bus_devices.pdb"
  "test_bus_devices[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bus_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
