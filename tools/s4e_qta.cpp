// s4e-qta — the QEMU Timing Analyzer reproduction as a standalone tool:
// load a binary *and* its WCET-annotated CFG (from s4e-wcet, the ait2qta
// stand-in) and co-simulate them, reporting the three ordered timelines.
//
//   s4e-qta file.elf file.qtacfg [--uart-input S] [--record trace.bin]
//
// --record captures a binary execution trace (src/trace format) alongside
// the co-simulation — the capture half of capture-once / replay-many.
//
// Replay mode evaluates one recorded trace under a whole matrix of timing
// configurations without re-executing the program: for every configuration
// it runs the static WCET analysis, replays the trace through the stateful
// timing models, accumulates the worst-case time of the recorded path, and
// asserts the QTA chain  observed <= WC(path) <= bound  per configuration:
//
//   s4e-qta file.elf --replay trace.bin [--models all|baseline] [--jobs N]
#include <cstdio>
#include <vector>

#include "elf/elf32.hpp"
#include "exec/pool.hpp"
#include "qta/qta.hpp"
#include "tools/tool_util.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"
#include "vp/machine.hpp"
#include "wcet/analyzer.hpp"

namespace {

constexpr char kUsage[] =
    "usage: s4e-qta <file.elf> <file.qtacfg> [--uart-input S] "
    "[--record FILE]\n"
    "       s4e-qta <file.elf> --replay FILE [--models all|baseline] "
    "[--jobs N]\n";

struct ReplayRow {
  std::string name;
  s4e::trace::ReplayResult replay;
  s4e::qta::QtaReport report;
  std::string error;  // per-config failure (analysis, replay)
};

int replay_main(const s4e::assembler::Program& program,
                const s4e::tools::Args& args) {
  using namespace s4e;
  auto loaded = trace::Trace::load(args.value("--replay"));
  if (!loaded.ok()) {
    std::fprintf(stderr, "s4e-qta: %s\n", loaded.error().to_string().c_str());
    return 1;
  }
  const trace::Trace& tr = *loaded;
  if (auto status = trace::check_replayable(
          tr, trace::program_fingerprint(program));
      !status.ok()) {
    std::fprintf(stderr, "s4e-qta: %s\n", status.to_string().c_str());
    return 1;
  }
  // The trace's built-in end-to-end check: replaying the recording
  // configuration must land exactly on the live run's cycle count.
  if (auto status = trace::self_check(tr); !status.ok()) {
    std::fprintf(stderr, "s4e-qta: %s\n", status.to_string().c_str());
    return 1;
  }

  std::vector<trace::NamedTiming> configs = trace::timing_matrix();
  const std::string models = args.value("--models", "all");
  if (models == "baseline") {
    configs.resize(1);  // matrix[0] is the all-features-off base
  } else if (models != "all") {
    std::fprintf(stderr, "s4e-qta: --models expects 'all' or 'baseline'\n");
    return 2;
  }
  unsigned jobs = 0;
  if (args.has("--jobs")) {
    auto parsed = parse_integer(args.value("--jobs"));
    if (!parsed.ok() || *parsed < 0) {
      std::fprintf(stderr, "s4e-qta: bad --jobs\n");
      return 2;
    }
    jobs = static_cast<unsigned>(*parsed);
  }

  std::printf("replay: %llu instructions, %llu blocks, recorded %llu cycles "
              "(fingerprint %016llx)\n",
              static_cast<unsigned long long>(tr.footer().instructions),
              static_cast<unsigned long long>(tr.footer().blocks),
              static_cast<unsigned long long>(tr.footer().recorded_cycles),
              static_cast<unsigned long long>(tr.header().fingerprint));

  // Decode the event stream once; every configuration walks the shared
  // read-only decoded form (capture once, decode once, replay many).
  auto decoded = trace::DecodedTrace::decode(tr);
  if (!decoded.ok()) {
    std::fprintf(stderr, "s4e-qta: %s\n", decoded.error().to_string().c_str());
    return 1;
  }

  // Fan the configurations out: each worker runs the per-config static
  // analysis, then replays the shared read-only trace through it.
  std::vector<ReplayRow> rows(configs.size());
  {
    exec::ThreadPool::Options options;
    options.threads = exec::ThreadPool::resolve_jobs(jobs);
    exec::ThreadPool pool(options);
    for (std::size_t i = 0; i < configs.size(); ++i) {
      pool.submit([&, i] {
        ReplayRow& row = rows[i];
        row.name = configs[i].name;
        wcet::AnalyzerOptions options_w;
        options_w.timing = configs[i].params;
        options_w.program_name = row.name;
        auto analysis = wcet::Analyzer(options_w).analyze(program);
        if (!analysis.ok()) {
          row.error = analysis.error().to_string();
          return;
        }
        analysis->annotated.reindex();
        qta::PathAccumulator path(analysis->annotated);
        auto replayed = trace::replay(*decoded, configs[i].params,
                                      [&path](u32 pc) { path.step(pc); });
        if (!replayed.ok()) {
          row.error = replayed.error().to_string();
          return;
        }
        row.replay = *replayed;
        row.report = path.report(replayed->cycles);
      });
    }
    pool.wait_idle();
  }

  std::printf("%-40s %12s %12s %12s %7s %7s %6s\n", "config", "observed",
              "wc-path", "bound", "icmiss", "mispred", "chain");
  int failures = 0;
  for (const ReplayRow& row : rows) {
    if (!row.error.empty()) {
      std::printf("%-40s FAILED: %s\n", row.name.c_str(), row.error.c_str());
      ++failures;
      continue;
    }
    const bool chain_ok =
        row.report.observed_cycles <= row.report.wc_path_cycles &&
        !row.report.bound_violated && row.report.unknown_blocks == 0;
    if (!chain_ok) ++failures;
    std::printf("%-40s %12llu %12llu %12llu %7llu %7llu %6s\n",
                row.name.c_str(),
                static_cast<unsigned long long>(row.report.observed_cycles),
                static_cast<unsigned long long>(row.report.wc_path_cycles),
                static_cast<unsigned long long>(row.report.static_bound),
                static_cast<unsigned long long>(row.replay.icache_misses),
                static_cast<unsigned long long>(row.replay.mispredicts),
                chain_ok ? "ok" : "VIOLATED");
  }
  if (failures != 0) {
    std::fprintf(stderr, "s4e-qta: %d of %zu configurations failed\n",
                 failures, rows.size());
  }
  return s4e::tools::finish_stdout("s4e-qta", failures != 0 ? 1 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace s4e;
  tools::Args args(argc, argv,
                   {"--uart-input", "--record", "--replay", "--models",
                    "--jobs"});
  if (const int code = tools::standard_flags(args, "s4e-qta", kUsage);
      code >= 0) {
    return code;
  }
  if (args.positional().empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  auto program = elf::read_elf_file(args.positional()[0]);
  if (!program.ok()) {
    std::fprintf(stderr, "s4e-qta: %s\n", program.error().to_string().c_str());
    return 1;
  }

  if (args.has("--replay")) {
    return replay_main(*program, args);
  }

  if (args.positional().size() < 2) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  auto cfg_text = tools::read_file(args.positional()[1]);
  if (!cfg_text.ok()) {
    std::fprintf(stderr, "s4e-qta: %s\n",
                 cfg_text.error().to_string().c_str());
    return 1;
  }
  auto annotated = wcet::AnnotatedCfg::parse(*cfg_text);
  if (!annotated.ok()) {
    std::fprintf(stderr, "s4e-qta: %s\n",
                 annotated.error().to_string().c_str());
    return 1;
  }
  if (annotated->entry != program->entry) {
    std::fprintf(stderr,
                 "s4e-qta: annotated CFG entry 0x%08x does not match ELF "
                 "entry 0x%08x\n",
                 annotated->entry, program->entry);
    return 1;
  }

  vp::MachineConfig config;
  vp::Machine machine(config);
  if (auto status = machine.load_program(*program); !status.ok()) {
    std::fprintf(stderr, "s4e-qta: %s\n", status.to_string().c_str());
    return 1;
  }
  if (args.has("--uart-input")) {
    machine.uart()->push_rx(args.value("--uart-input"));
  }
  qta::QtaPlugin plugin(*annotated);
  plugin.attach(machine.vm_handle());

  trace::TraceRecorder recorder(
      trace::TraceRecorder::config_for(config, *program));
  if (args.has("--record")) {
    if (auto status = recorder.attach_checked(machine.vm_handle());
        !status.ok()) {
      std::fprintf(stderr, "s4e-qta: %s\n", status.to_string().c_str());
      return 2;
    }
  }

  const vp::RunResult result = machine.run();
  std::printf("run: reason=%s exit=%d, %llu instructions\n",
              std::string(vp::to_string(result.reason)).c_str(),
              result.exit_code,
              static_cast<unsigned long long>(result.instructions));
  if (args.has("--record")) {
    const std::string path = args.value("--record");
    if (auto status = recorder.finish(result, path); !status.ok()) {
      std::fprintf(stderr, "s4e-qta: %s\n", status.to_string().c_str());
      return 1;
    }
    std::printf("record: wrote %s (%zu stream bytes, %llu instructions, "
                "%llu taints)\n",
                path.c_str(), recorder.stream_size(),
                static_cast<unsigned long long>(recorder.instructions()),
                static_cast<unsigned long long>(recorder.taints()));
  }
  const qta::QtaReport report = plugin.report(result.cycles);
  std::printf("%s", report.to_string().c_str());
  return tools::finish_stdout("s4e-qta", report.bound_violated ? 1 : 0);
}
