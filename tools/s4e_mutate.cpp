// s4e-mutate — binary mutation analysis of an ELF (the XEMU flow).
//
//   s4e-mutate file.elf [--max N] [--jobs N] [--all-sites] [--survivors]
//              [--progress] [--reuse-machine[=off]] [--triage[=off|verify]]
//              [--snapshot-stats] [--metrics-out FILE] [--post-mortem]
//              [--post-mortem-dir DIR] [--shard I/N] [--emit-jsonl]
//              [--result-port P]
//
// Observability flags never change the stdout report: metrics go to FILE,
// post-mortems go to stderr (or one file per mutant under DIR).
//
// Fleet mode (s4e-campaignd workers): --shard I/N runs only the shard's
// contiguous slice of the full mutant enumeration; --emit-jsonl replaces
// the human report with the fleet wire stream (stdout, or dialed back to
// --result-port P over loopback TCP).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_report.hpp"
#include "dataflow/triage.hpp"
#include "elf/elf32.hpp"
#include "fleet/records.hpp"
#include "fleet/worker.hpp"
#include "mutation/mutation.hpp"
#include "tools/tool_util.hpp"

int main(int argc, char** argv) {
  using namespace s4e;
  static constexpr char kUsage[] =
      "usage: s4e-mutate <file.elf> [--max N] [--jobs N] "
      "[--all-sites] [--survivors] [--progress] "
      "[--reuse-machine[=off]] [--triage[=off|verify]] [--snapshot-stats] "
      "[--metrics-out FILE] [--post-mortem] "
      "[--post-mortem-dir DIR] [--shard I/N] [--emit-jsonl] "
      "[--result-port P] [--test-stall-after N]\n";
  tools::Args args(argc, argv,
                   {"--max", "--jobs", "--metrics-out", "--post-mortem-dir",
                    "--shard", "--result-port", "--test-stall-after"},
                   {"--all-sites", "--survivors", "--progress",
                    "--reuse-machine", "--triage", "--snapshot-stats",
                    "--post-mortem", "--emit-jsonl"});
  if (const int code = tools::standard_flags(args, "s4e-mutate", kUsage);
      code >= 0) {
    return code;
  }
  if (args.positional().empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  auto program = elf::read_elf_file(args.positional()[0]);
  if (!program.ok()) {
    std::fprintf(stderr, "s4e-mutate: %s\n",
                 program.error().to_string().c_str());
    return 1;
  }

  mutation::MutationConfig config;
  config.executed_only = !args.has("--all-sites");
  config.max_mutants = static_cast<unsigned>(
      parse_integer(args.value("--max", "0")).value_or(0));
  // 0 = all hardware threads; --jobs 1 forces the serial path.
  const auto jobs = parse_integer(args.value("--jobs", "0")).value_or(0);
  if (jobs < 0 || jobs > 4096) {
    std::fprintf(stderr, "s4e-mutate: --jobs expects 0..4096 (got %s)\n",
                 args.value("--jobs", "0").c_str());
    return 2;
  }
  config.jobs = static_cast<unsigned>(jobs);
  // Per-worker machine reuse is the default; --reuse-machine is accepted
  // for symmetry and --reuse-machine=off forces a fresh VP per mutant.
  config.reuse_machines = args.value("--reuse-machine") != "off";
  // Static triage: --triage prunes statically-proven-equivalent mutants,
  // =verify runs them anyway and errors on any static/dynamic mismatch.
  if (args.has("--triage")) {
    const auto mode = dataflow::parse_triage_mode(args.value("--triage"));
    if (!mode) {
      std::fprintf(stderr,
                   "s4e-mutate: --triage expects on|off|verify (got %s)\n",
                   args.value("--triage").c_str());
      return 2;
    }
    config.triage = *mode;
  }
  config.collect_metrics = args.has("--metrics-out");
  config.post_mortem =
      args.has("--post-mortem") || args.has("--post-mortem-dir");
  if (args.has("--shard")) {
    const auto shard = fleet::parse_shard(args.value("--shard"));
    if (!shard) {
      std::fprintf(stderr, "s4e-mutate: --shard expects I/N (got %s)\n",
                   args.value("--shard").c_str());
      return 2;
    }
    config.shard_index = shard->first;
    config.shard_count = shard->second;
  }

  mutation::MutationCampaign campaign(*program, config);

  // Optional status line fed by the campaign's atomic progress counters.
  std::atomic<bool> campaign_done{false};
  std::thread status_thread;
  if (args.has("--progress")) {
    status_thread = std::thread([&campaign, &campaign_done] {
      while (!campaign_done.load(std::memory_order_acquire)) {
        const auto snap = campaign.progress().snapshot();
        if (snap.total != 0) {
          std::fprintf(
              stderr,
              "\r[mutate] %llu/%llu mutants  "
              "(result %llu, crash %llu, hang %llu, survived %llu)",
              static_cast<unsigned long long>(snap.completed),
              static_cast<unsigned long long>(snap.total),
              static_cast<unsigned long long>(snap.buckets[0]),
              static_cast<unsigned long long>(snap.buckets[1]),
              static_cast<unsigned long long>(snap.buckets[2]),
              static_cast<unsigned long long>(snap.buckets[3]));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      }
      std::fprintf(stderr, "\n");
    });
  }

  auto score = campaign.run();
  campaign_done.store(true, std::memory_order_release);
  if (status_thread.joinable()) status_thread.join();
  if (!score.ok()) {
    std::fprintf(stderr, "s4e-mutate: %s\n",
                 score.error().to_string().c_str());
    return 1;
  }

  // Fleet worker mode: stream the shard instead of printing the report.
  if (args.has("--emit-jsonl")) {
    auto elf_bytes = fleet::read_file_bytes(args.positional()[0]);
    if (!elf_bytes.ok()) {
      std::fprintf(stderr, "s4e-mutate: %s\n",
                   elf_bytes.error().to_string().c_str());
      return 1;
    }
    fleet::MetaLine meta;
    meta.mode = fleet::Mode::kMutation;
    meta.shard = config.shard_index;
    meta.shards = config.shard_count;
    meta.begin = score->shard_begin;
    meta.end = score->shard_begin + score->results.size();
    meta.total = score->total_mutants;
    meta.golden_exit = 0;
    meta.golden_instructions = 0;
    meta.fingerprint = fleet::campaign_fingerprint(
        *elf_bytes, fleet::Mode::kMutation, 0, 0, config.max_mutants,
        config.shard_count);
    std::vector<std::string> lines;
    lines.reserve(score->results.size());
    for (std::size_t i = 0; i < score->results.size(); ++i) {
      lines.push_back(
          fleet::encode_record(score->results[i], score->shard_begin + i));
    }
    fleet::EmitOptions emit;
    emit.result_port = static_cast<int>(
        parse_integer(args.value("--result-port", "-1")).value_or(-1));
    emit.stall_after = static_cast<unsigned>(
        parse_integer(args.value("--test-stall-after", "0")).value_or(0));
    if (auto status = fleet::emit_stream(meta, lines, emit); !status.ok()) {
      std::fprintf(stderr, "s4e-mutate: %s\n", status.to_string().c_str());
      return 1;
    }
    return tools::finish_stdout("s4e-mutate");
  }

  std::printf("%s", score->to_string().c_str());
  if (args.has("--snapshot-stats")) {
    // Debug aid on stderr so the stdout report stays byte-identical with
    // and without the flag (and with and without machine reuse).
    std::fprintf(stderr, "[mutate] %s\n",
                 score->snapshot_stats.to_string().c_str());
  }

  if (args.has("--survivors")) {
    std::printf("\nsurviving mutants:\n");
    for (const auto& result : score->results) {
      if (result.verdict != mutation::Verdict::kSurvived) continue;
      std::printf("  0x%08x  %-14s %s\n", result.mutant.address,
                  std::string(mutation::to_string(result.mutant.op)).c_str(),
                  result.mutant.description.c_str());
    }
  }

  // Post-mortems are emitted after the campaign, in submission order, so
  // the output is deterministic regardless of worker scheduling — and on
  // stderr (or per-mutant files), so stdout stays byte-identical.
  if (config.post_mortem) {
    const std::string dir = args.value("--post-mortem-dir");
    for (std::size_t i = 0; i < score->results.size(); ++i) {
      const auto& result = score->results[i];
      if (result.post_mortem.empty()) continue;
      const std::string header =
          format("[mutate] post-mortem #%03zu (%s) 0x%08x %s\n", i,
                 std::string(mutation::to_string(result.verdict)).c_str(),
                 result.mutant.address, result.mutant.description.c_str());
      if (dir.empty()) {
        std::fprintf(stderr, "%s%s", header.c_str(),
                     result.post_mortem.c_str());
      } else {
        const std::string path = format("%s/mutant_%03zu.txt", dir.c_str(), i);
        if (auto status =
                tools::write_file(path, header + result.post_mortem);
            !status.ok()) {
          std::fprintf(stderr, "s4e-mutate: %s\n",
                       status.to_string().c_str());
          return 1;
        }
      }
    }
  }

  if (args.has("--metrics-out")) {
    if (!bench::merge_bench_entry(args.value("--metrics-out"), "s4e-mutate",
                                  score->metrics_json)) {
      return 1;  // merge_bench_entry already reported on stderr
    }
  }
  return tools::finish_stdout("s4e-mutate");
}
