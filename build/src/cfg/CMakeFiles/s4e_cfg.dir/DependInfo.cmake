
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/builder.cpp" "src/cfg/CMakeFiles/s4e_cfg.dir/builder.cpp.o" "gcc" "src/cfg/CMakeFiles/s4e_cfg.dir/builder.cpp.o.d"
  "/root/repo/src/cfg/dominators.cpp" "src/cfg/CMakeFiles/s4e_cfg.dir/dominators.cpp.o" "gcc" "src/cfg/CMakeFiles/s4e_cfg.dir/dominators.cpp.o.d"
  "/root/repo/src/cfg/loops.cpp" "src/cfg/CMakeFiles/s4e_cfg.dir/loops.cpp.o" "gcc" "src/cfg/CMakeFiles/s4e_cfg.dir/loops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/s4e_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/s4e_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/s4e_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
