// Quickstart: assemble a small RISC-V program, run it on the virtual
// prototype, and inspect execution statistics and coverage — the minimal
// end-to-end tour of the ecosystem API.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/ecosystem.hpp"
#include "coverage/coverage.hpp"
#include "isa/disasm.hpp"

int main() {
  using namespace s4e;

  // 1. A workload in the project assembler syntax: sum the squares of
  //    1..10 and return the result as the exit code (385).
  const std::string source = R"(
_start:
    li t0, 10          # n
    li a0, 0           # acc
loop:
    mul t1, t0, t0
    add a0, a0, t1
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93          # exit ecall
    ecall
)";

  core::Ecosystem ecosystem;
  auto program = ecosystem.build_source(source);
  if (!program.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n",
                 program.error().to_string().c_str());
    return 1;
  }
  std::printf("assembled %zu bytes of code, entry at 0x%08x\n",
              program->find_section(".text")->bytes.size(), program->entry);

  // 2. Run it on a fresh VP, with the coverage plugin attached through the
  //    QEMU-style C plugin API.
  vp::Machine machine(ecosystem.machine_config());
  if (auto status = machine.load_program(*program); !status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.to_string().c_str());
    return 1;
  }
  coverage::CoveragePlugin coverage_plugin;
  coverage_plugin.attach(machine.vm_handle());

  const vp::RunResult result = machine.run();
  std::printf("run finished: reason=%s exit=%d\n",
              std::string(vp::to_string(result.reason)).c_str(),
              result.exit_code);
  std::printf("  %llu instructions, %llu cycles (CPI %.2f)\n",
              static_cast<unsigned long long>(result.instructions),
              static_cast<unsigned long long>(result.cycles),
              static_cast<double>(result.cycles) /
                  static_cast<double>(result.instructions));
  std::printf("  translation blocks cached: %zu\n", machine.tb_cache().size());

  // 3. Coverage report for the run.
  std::printf("\n%s\n",
              coverage::to_report(coverage_plugin.data(), "quickstart").c_str());

  return result.exit_code == 385 ? 0 : 1;
}
