// Campaign fleet orchestrator (the engine behind s4e-campaignd): shards a
// fault or mutation campaign across worker *processes*, streams their
// JSONL results back over pipes or loopback TCP, and merges them with the
// same slot-array discipline the in-process executor uses.
//
// Determinism contract: every worker regenerates the identical full
// fault/mutant enumeration (same seed, same RNG walk) and executes only
// its contiguous index range; the orchestrator places each record into a
// slot array indexed by the *global* mutant index and folds the slots in
// order. The final report is therefore byte-identical to the serial tool's
// stdout — for any worker count, any shard count, any arrival order, and
// across crash/resume cycles.
//
// Fault tolerance: a worker that dies mid-shard is detected by stream EOF
// before its `done` line (or by a non-zero exit); its partial records are
// discarded and the shard is requeued, up to `max_retries` respawns per
// shard. Completed shards are committed to an append-only checkpoint
// journal (fsync before acknowledge), so a daemon crash loses at most the
// in-flight shards and a restart resumes from the committed set.
#pragma once

#include <functional>
#include <string>

#include "common/status.hpp"
#include "fleet/checkpoint.hpp"
#include "fleet/records.hpp"

namespace s4e::fleet {

struct FleetOptions {
  std::string elf_path;
  Mode mode = Mode::kFault;
  // Worker binary (s4e-faultsim for kFault, s4e-mutate for kMutation).
  std::string worker_path;
  unsigned workers = 2;   // concurrent worker processes
  unsigned shards = 0;    // shard count; 0 = 4x workers (restart granularity)
  unsigned worker_jobs = 1;  // threads inside each worker process

  // Campaign shape, forwarded to the workers (and folded into the
  // fingerprint). `mutants`/`seed` drive the fault engine, `max_mutants`
  // caps the mutation enumeration.
  u64 seed = 1;
  unsigned mutants = 200;
  unsigned max_mutants = 0;

  // Checkpoint journal path; empty disables checkpointing (and resume).
  std::string checkpoint_path;
  // Stream results over loopback TCP instead of stdout pipes.
  bool tcp_transport = false;
  // Live status endpoint: -1 = off, 0 = ephemeral port, else fixed port.
  // Each connection receives one JSON metrics line and is closed.
  int status_port = -1;
  // Invoked once with the bound status port (tests grab ephemeral ports).
  std::function<void(int)> on_status_port;
  // Respawn budget per shard before the fleet gives up.
  unsigned max_retries = 3;

  // --- Deterministic failure-injection hooks (tests only).
  // SIGKILL the first worker process after it has streamed N records.
  unsigned test_kill_after_records = 0;
  // Abort the daemon (error return, checkpoint intact) after N commits.
  unsigned test_fail_after_commits = 0;
};

struct FleetStats {
  u64 records = 0;             // records aggregated this run (live ones)
  unsigned shards_total = 0;
  unsigned shards_done = 0;       // committed live by this run
  unsigned shards_recovered = 0;  // taken from the checkpoint, not re-run
  unsigned workers_spawned = 0;
  unsigned worker_restarts = 0;
  bool checkpoint_replaced = false;  // stale journal was discarded
  int status_port = -1;
};

struct FleetReport {
  // The campaign report, byte-identical to the serial tool's stdout.
  std::string report;
  FleetStats stats;
  std::string metrics_json;  // the status endpoint's final snapshot
};

Result<FleetReport> run_fleet(const FleetOptions& options);

}  // namespace s4e::fleet
