#include "vp/snapshot.hpp"

#include "common/strings.hpp"

namespace s4e::vp {

std::string SnapshotStats::to_string() const {
  const double copied_pct =
      pages_total == 0 ? 0.0
                       : 100.0 * static_cast<double>(pages_copied) /
                             static_cast<double>(pages_total);
  return format(
      "snapshot: %llu snapshots, %llu restores, %llu/%llu pages copied "
      "(%.2f%%), %llu tb blocks invalidated",
      static_cast<unsigned long long>(snapshots),
      static_cast<unsigned long long>(restores),
      static_cast<unsigned long long>(pages_copied),
      static_cast<unsigned long long>(pages_total), copied_pct,
      static_cast<unsigned long long>(tb_blocks_invalidated));
}

}  // namespace s4e::vp
