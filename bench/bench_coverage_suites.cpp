// E4 — the MBMV'21 coverage table: instruction-type and register coverage
// of three test-suite families (architectural-style directed tests,
// unit-style kernels, Torture-style random programs) individually and as a
// unified suite. The reproducible shape: each family alone is incomplete in
// a characteristic way (directed tests cover all instruction types but few
// registers; random programs cover nearly all registers but skip the
// privileged corner), while the union reaches 100 % GPR coverage and
// (near-)complete instruction-type coverage — the paper reports 100 % GPR /
// FPR and 98.7 % instruction types for the real suites.
#include <cstdio>
#include <vector>

#include "core/ecosystem.hpp"
#include "coverage/coverage.hpp"
#include "testgen/testgen.hpp"

namespace {

using namespace s4e;

struct SuiteRow {
  std::string name;
  coverage::CoverageData data;
  unsigned programs = 0;
  unsigned failures = 0;
};

SuiteRow measure_suite(core::Ecosystem& ecosystem, const std::string& name,
                       const std::vector<testgen::GeneratedProgram>& suite) {
  SuiteRow row;
  row.name = name;
  row.programs = static_cast<unsigned>(suite.size());
  for (const auto& test : suite) {
    auto program = ecosystem.build_source(test.source);
    S4E_CHECK_MSG(program.ok(), test.name);
    auto data = ecosystem.measure_coverage(*program);
    S4E_CHECK(data.ok());
    row.data.merge(*data);
    auto run = ecosystem.run(*program);
    S4E_CHECK(run.ok());
    if (!(run->result.normal_exit() && run->result.exit_code == 0)) {
      ++row.failures;
    }
  }
  return row;
}

void print_row(const SuiteRow& row) {
  const coverage::CoverageData& d = row.data;
  std::printf("%-14s %5u %5u %9llu   %5.1f%% %7.1f%% %7.1f%% %7.1f%% %6.1f%% %6.1f%%\n",
              row.name.c_str(), row.programs, row.failures,
              static_cast<unsigned long long>(d.total_instructions),
              100.0 * d.op_coverage(),
              100.0 * d.op_coverage(isa::IsaModule::kI),
              100.0 * d.op_coverage(isa::IsaModule::kM),
              100.0 * d.op_coverage(isa::IsaModule::kZicsr),
              100.0 * d.gpr_coverage(), 100.0 * d.csr_coverage());
}

}  // namespace

int main() {
  core::Ecosystem ecosystem;

  testgen::TortureConfig torture_config;
  torture_config.seed = 2022;
  torture_config.programs = 12;

  SuiteRow arch =
      measure_suite(ecosystem, "architectural", testgen::architectural_suite());
  SuiteRow unit = measure_suite(ecosystem, "unit", testgen::unit_suite());
  SuiteRow torture = measure_suite(ecosystem, "torture",
                                   testgen::torture_suite(torture_config));
  SuiteRow unified;
  unified.name = "UNIFIED";
  unified.programs = arch.programs + unit.programs + torture.programs;
  unified.failures = arch.failures + unit.failures + torture.failures;
  unified.data = arch.data;
  unified.data.merge(unit.data);
  unified.data.merge(torture.data);

  std::printf("[E4] test-suite coverage (instruction types / registers)\n\n");
  std::printf("%-14s %5s %5s %9s   %6s %7s %8s %7s %7s %7s\n", "suite",
              "progs", "fail", "insns", "itype", "RV32I", "RV32M", "Zicsr",
              "GPR", "CSR");
  std::printf("%s\n", std::string(92, '-').c_str());
  print_row(arch);
  print_row(unit);
  print_row(torture);
  std::printf("%s\n", std::string(92, '-').c_str());
  print_row(unified);

  const auto missing = unified.data.uncovered_ops();
  std::printf("\nuncovered by the unified suite:");
  if (missing.empty()) {
    std::printf(" (none)\n");
  } else {
    for (isa::Op op : missing) {
      std::printf(" %s", std::string(isa::mnemonic(op)).c_str());
    }
    std::printf("\n");
  }
  std::printf("\n[E4] unified-suite result: %.1f%% instruction types, %.1f%% "
              "GPR (paper: 98.7%% / 100%%)\n",
              100.0 * unified.data.op_coverage(),
              100.0 * unified.data.gpr_coverage());
  return unified.failures == 0 ? 0 : 1;
}
