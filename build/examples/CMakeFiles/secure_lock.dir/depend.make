# Empty dependencies file for secure_lock.
# This may be replaced when dependencies are built.
