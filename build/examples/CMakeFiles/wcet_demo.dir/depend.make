# Empty dependencies file for wcet_demo.
# This may be replaced when dependencies are built.
