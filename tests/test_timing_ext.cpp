// Tests for the optional microarchitectural timing features (icache model,
// bimodal branch predictor) and their end-to-end consistency with the
// static analyzer and QTA.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "core/ecosystem.hpp"
#include "core/workloads.hpp"
#include "vp/machine.hpp"

namespace s4e::vp {
namespace {

const char* kLoopKernel = R"(
    li t0, 200
loop:
    addi t1, t1, 1
    xor t2, t1, t0
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    li a0, 0
    ecall
)";

RunResult run_with(const MachineConfig& config, const char* source,
                   Machine** out_machine = nullptr) {
  static Machine* leaked = nullptr;  // for out_machine inspection in tests
  auto program = assembler::assemble(source);
  EXPECT_TRUE(program.ok());
  auto* machine = new Machine(config);
  EXPECT_TRUE(machine->load_program(*program).ok());
  auto result = machine->run();
  if (out_machine != nullptr) {
    *out_machine = machine;
  } else {
    delete machine;
  }
  (void)leaked;
  return result;
}

TEST(ICache, DisabledByDefault) {
  Machine machine;
  EXPECT_EQ(machine.icache_misses(), 0u);
  MachineConfig config;
  auto result = run_with(config, kLoopKernel);
  EXPECT_TRUE(result.normal_exit());
}

TEST(ICache, ColdMissesThenHits) {
  MachineConfig config;
  config.timing.icache_miss_cycles = 20;
  Machine* machine = nullptr;
  auto result = run_with(config, kLoopKernel, &machine);
  EXPECT_TRUE(result.normal_exit());
  // The loop reuses one line: misses stay tiny relative to 200 iterations.
  EXPECT_GE(machine->icache_misses(), 1u);
  EXPECT_LE(machine->icache_misses(), 8u);
  delete machine;
}

TEST(ICache, MissesCostCycles) {
  MachineConfig base;
  auto baseline = run_with(base, kLoopKernel);
  MachineConfig with_cache;
  with_cache.timing.icache_miss_cycles = 20;
  auto cached = run_with(with_cache, kLoopKernel);
  EXPECT_GT(cached.cycles, baseline.cycles);
  // Same functional behaviour.
  EXPECT_EQ(cached.instructions, baseline.instructions);
  EXPECT_EQ(cached.exit_code, baseline.exit_code);
}

TEST(ICache, ConflictMissesWithTinyCache) {
  // Two blocks that alternate every iteration, placed in different cache
  // lines: a 1-line cache must thrash (one miss per block per iteration),
  // while a normally-sized cache holds both.
  const char* kPingPong = R"(
    li t0, 200
    j loop
.align 4
loop:
    addi t1, t1, 1
    j mid
    .space 24
.align 4
mid:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    li a0, 0
    ecall
  )";
  MachineConfig tiny;
  tiny.timing.icache_miss_cycles = 20;
  tiny.timing.icache_lines = 1;  // everything conflicts
  tiny.timing.icache_line_bytes = 16;
  Machine* machine = nullptr;
  auto result = run_with(tiny, kPingPong, &machine);
  EXPECT_TRUE(result.normal_exit());
  EXPECT_GT(machine->icache_misses(), 300u);
  delete machine;

  MachineConfig roomy;
  roomy.timing.icache_miss_cycles = 20;
  Machine* roomy_machine = nullptr;
  run_with(roomy, kPingPong, &roomy_machine);
  EXPECT_LE(roomy_machine->icache_misses(), 8u);
  delete roomy_machine;
}

TEST(BranchPredictor, ReducesCyclesOnPredictableLoop) {
  MachineConfig base;
  auto baseline = run_with(base, kLoopKernel);
  MachineConfig predicted;
  predicted.timing.branch_predictor = true;
  auto with_bp = run_with(predicted, kLoopKernel);
  // The backward branch is taken 199 times and predicted correctly after
  // warm-up: most redirect penalties disappear.
  EXPECT_LT(with_bp.cycles, baseline.cycles);
  EXPECT_EQ(with_bp.instructions, baseline.instructions);
}

TEST(BranchPredictor, MispredictsStillCost) {
  // An alternating branch defeats the bimodal counter part of the time;
  // cycles must stay above the perfect-prediction floor.
  const char* kAlternating = R"(
    li t0, 100
    li t3, 0
loop:
    andi t1, t0, 1
    beqz t1, skip
    addi t3, t3, 1
skip:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    li a0, 0
    ecall
  )";
  MachineConfig predicted;
  predicted.timing.branch_predictor = true;
  auto alt = run_with(predicted, kAlternating);
  MachineConfig base;
  auto alt_base = run_with(base, kAlternating);
  // Prediction helps but cannot eliminate everything on alternation.
  EXPECT_LT(alt.cycles, alt_base.cycles);
  EXPECT_GT(alt.cycles, alt.instructions);  // penalties still present
}

// --- End-to-end soundness: the QTA chain must hold with the features on.
class TimingFeatureChain
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(TimingFeatureChain, BoundHolds) {
  const auto [workload_index, feature_mask] = GetParam();
  const core::Workload& workload =
      core::standard_workloads()[workload_index];
  if (!workload.wcet_analyzable) GTEST_SKIP();

  vp::MachineConfig config;
  if ((feature_mask & 1) != 0) config.timing.icache_miss_cycles = 12;
  if ((feature_mask & 2) != 0) config.timing.branch_predictor = true;
  core::Ecosystem ecosystem(config);
  auto program = ecosystem.build(workload);
  ASSERT_TRUE(program.ok());
  auto outcome = ecosystem.run_qta(*program, workload.name);
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  EXPECT_GE(outcome->report.wc_path_cycles, outcome->report.observed_cycles)
      << workload.name << " mask=" << feature_mask;
  EXPECT_GE(outcome->report.static_bound, outcome->report.wc_path_cycles)
      << workload.name << " mask=" << feature_mask;
  EXPECT_EQ(outcome->run.result.exit_code, workload.expected_exit);
}

std::string feature_chain_name(
    const ::testing::TestParamInfo<std::tuple<std::size_t, int>>& info) {
  static const char* kMaskNames[] = {"", "icache", "bpred", "both"};
  return core::standard_workloads()[std::get<0>(info.param)].name + "_" +
         kMaskNames[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllFeatures, TimingFeatureChain,
    ::testing::Combine(
        ::testing::Range<std::size_t>(0, core::standard_workloads().size()),
        ::testing::Values(1, 2, 3)),
    feature_chain_name);

TEST(TimingFeatures, PredictorWidensStaticGap) {
  // The predictor speeds the run up but the static bound grows (both branch
  // directions may mispredict): the pessimism ratio must widen.
  auto workload = core::find_workload("crc32");
  ASSERT_TRUE(workload.ok());

  core::Ecosystem base;
  auto base_program = base.build(*workload);
  ASSERT_TRUE(base_program.ok());
  auto base_outcome = base.run_qta(*base_program);
  ASSERT_TRUE(base_outcome.ok());

  vp::MachineConfig config;
  config.timing.branch_predictor = true;
  core::Ecosystem predicted(config);
  auto outcome = predicted.run_qta(*base_program);
  ASSERT_TRUE(outcome.ok());

  EXPECT_LE(outcome->report.observed_cycles,
            base_outcome->report.observed_cycles);
  EXPECT_GE(outcome->report.static_bound, base_outcome->report.static_bound);
}

TEST(TimingFeatures, AnnotatedCfgCarriesTransitionMode) {
  vp::MachineConfig config;
  config.timing.branch_predictor = true;
  core::Ecosystem ecosystem(config);
  auto workload = core::find_workload("checksum");
  ASSERT_TRUE(workload.ok());
  auto program = ecosystem.build(*workload);
  ASSERT_TRUE(program.ok());
  auto analysis = ecosystem.analyze_wcet(*program);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->annotated.penalize_all_transitions);
  const std::string text = analysis->annotated.serialize();
  EXPECT_NE(text.find("transitions all"), std::string::npos);
  auto parsed = wcet::AnnotatedCfg::parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->penalize_all_transitions);
}

}  // namespace
}  // namespace s4e::vp
