# Empty compiler generated dependencies file for s4e_memwatch.
# This may be replaced when dependencies are built.
