// The standard edge workloads of the reproduction — the kernels the
// Scale4Edge demonstrators motivate (signal processing, sorting, checksums,
// linear algebra, a lock-control application). All are written in the
// project assembler, carry `.loopbound` annotations where the counted-loop
// patterns cannot bound a loop, and terminate through the ecall exit
// convention with a deterministic exit code (which doubles as a built-in
// self-check for the fault campaigns).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"

namespace s4e::core {

struct Workload {
  std::string name;
  std::string description;
  std::string source;        // assembler input
  int expected_exit = 0;     // golden exit code
  bool wcet_analyzable = true;  // fits the static analyzer's restrictions
};

// All registered workloads.
const std::vector<Workload>& standard_workloads();

// Lookup by name.
Result<Workload> find_workload(const std::string& name);

}  // namespace s4e::core
