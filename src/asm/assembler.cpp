#include "asm/assembler.hpp"

#include <cctype>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "isa/csr.hpp"
#include "isa/encoder.hpp"
#include "isa/rvc.hpp"
#include "isa/registers.hpp"

namespace s4e::assembler {

namespace {

using isa::Format;
using isa::Instr;
using isa::Op;
using isa::OpInfo;

Error at_line(unsigned line, const std::string& message) {
  return Error(ErrorCode::kParseError,
               format("line %u: %s", line, message.c_str()));
}

// ---------------------------------------------------------------------------
// Expressions: literal | symbol | %hi(expr) | %lo(expr), combined with +/-.

struct ExprContext {
  const std::map<std::string, u32>* symbols;  // labels + .equ constants
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

// Compensated %hi: (value + 0x800) >> 12, so that %hi<<12 + signext(%lo)
// reconstructs the full 32-bit value.
u32 hi20(u32 value) { return (value + 0x800u) >> 12; }
i32 lo12(u32 value) { return sign_extend(value & 0xfffu, 12); }

class ExprParser {
 public:
  ExprParser(std::string_view text, const ExprContext& ctx)
      : text_(text), ctx_(ctx) {}

  Result<i64> parse() {
    S4E_TRY(value, parse_shift());
    skip_spaces();
    if (pos_ != text_.size()) {
      return Error(ErrorCode::kParseError,
                   "trailing characters in expression '" + std::string(text_) +
                       "'");
    }
    return value;
  }

  // True if the expression references any identifier not resolvable in ctx
  // (used by pass 1 to size `li`).
  static bool has_unresolved_symbol(std::string_view text,
                                    const ExprContext& ctx) {
    for (std::size_t i = 0; i < text.size();) {
      if (std::isalpha(static_cast<unsigned char>(text[i])) ||
          text[i] == '_' || text[i] == '.') {
        std::size_t start = i;
        while (i < text.size() && is_ident_char(text[i])) ++i;
        const std::string ident(text.substr(start, i - start));
        if (ident != "hi" && ident != "lo" &&
            ctx.symbols->find(ident) == ctx.symbols->end()) {
          return true;
        }
      } else {
        ++i;
      }
    }
    return false;
  }

 private:
  void skip_spaces() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  // Lowest precedence: '<<' and '>>' (logical).
  Result<i64> parse_shift() {
    S4E_TRY(left, parse_sum());
    i64 value = left;
    while (true) {
      skip_spaces();
      if (pos_ + 1 >= text_.size() ||
          !((text_[pos_] == '<' && text_[pos_ + 1] == '<') ||
            (text_[pos_] == '>' && text_[pos_ + 1] == '>'))) {
        return value;
      }
      const bool left_shift = text_[pos_] == '<';
      pos_ += 2;
      S4E_TRY(amount, parse_sum());
      if (amount < 0 || amount > 31) {
        return Error(ErrorCode::kParseError, "shift amount out of range");
      }
      value = left_shift
                  ? static_cast<i64>(static_cast<u32>(value) << amount)
                  : static_cast<i64>(static_cast<u32>(value) >> amount);
    }
  }

  Result<i64> parse_sum() {
    S4E_TRY(left, parse_term());
    i64 value = left;
    while (true) {
      skip_spaces();
      if (pos_ >= text_.size() || (text_[pos_] != '+' && text_[pos_] != '-')) {
        return value;
      }
      const char op = text_[pos_++];
      S4E_TRY(right, parse_term());
      value = (op == '+') ? value + right : value - right;
    }
  }

  Result<i64> parse_term() {
    skip_spaces();
    if (pos_ >= text_.size()) {
      return Error(ErrorCode::kParseError, "expected expression term");
    }
    const char c = text_[pos_];
    if (c == '%') {
      return parse_hi_lo();
    }
    if (c == '(') {
      ++pos_;
      S4E_TRY(inner, parse_shift());
      skip_spaces();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return Error(ErrorCode::kParseError, "missing ')' in expression");
      }
      ++pos_;
      return inner;
    }
    if (c == '-' || c == '+' || std::isdigit(static_cast<unsigned char>(c))) {
      return parse_number();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.') {
      return parse_symbol();
    }
    return Error(ErrorCode::kParseError,
                 std::string("unexpected character '") + c + "' in expression");
  }

  Result<i64> parse_number() {
    std::size_t start = pos_;
    if (text_[pos_] == '+' || text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && is_ident_char(text_[pos_])) ++pos_;
    return parse_integer(text_.substr(start, pos_ - start));
  }

  Result<i64> parse_symbol() {
    std::size_t start = pos_;
    while (pos_ < text_.size() && is_ident_char(text_[pos_])) ++pos_;
    const std::string name(text_.substr(start, pos_ - start));
    auto it = ctx_.symbols->find(name);
    if (it == ctx_.symbols->end()) {
      return Error(ErrorCode::kNotFound, "undefined symbol '" + name + "'");
    }
    return static_cast<i64>(it->second);
  }

  Result<i64> parse_hi_lo() {
    ++pos_;  // '%'
    std::size_t start = pos_;
    while (pos_ < text_.size() && std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    const std::string_view kind = text_.substr(start, pos_ - start);
    skip_spaces();
    if (pos_ >= text_.size() || text_[pos_] != '(') {
      return Error(ErrorCode::kParseError, "%hi/%lo requires '(expr)'");
    }
    ++pos_;
    S4E_TRY(inner, parse_shift());
    skip_spaces();
    if (pos_ >= text_.size() || text_[pos_] != ')') {
      return Error(ErrorCode::kParseError, "missing ')' after %hi/%lo");
    }
    ++pos_;
    const u32 value = static_cast<u32>(inner);
    if (kind == "hi") return static_cast<i64>(hi20(value));
    if (kind == "lo") return static_cast<i64>(lo12(value));
    return Error(ErrorCode::kParseError,
                 "unknown relocation operator %" + std::string(kind));
  }

  std::string_view text_;
  const ExprContext& ctx_;
  std::size_t pos_ = 0;
};

Result<i64> eval_expr(std::string_view text, const ExprContext& ctx) {
  return ExprParser(text, ctx).parse();
}

// ---------------------------------------------------------------------------
// Line scanning.

// One source statement after label extraction.
struct Statement {
  unsigned line = 0;
  std::string mnemonic;               // lower-case; empty for pure-label lines
  std::vector<std::string> operands;  // comma-separated, trimmed
};

// Strip comments. '#' and ';' start a comment outside string literals.
std::string_view strip_comment(std::string_view text) {
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '"' && (i == 0 || text[i - 1] != '\\')) in_string = !in_string;
    if (!in_string && (c == '#' || c == ';')) return text.substr(0, i);
  }
  return text;
}

// Split operands on top-level commas (string literals may contain commas).
std::vector<std::string> split_operands(std::string_view text) {
  if (trim(text).empty()) return {};
  std::vector<std::string> out;
  bool in_string = false;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    const bool at_end = i == text.size();
    const char c = at_end ? ',' : text[i];
    if (!at_end && c == '"' && (i == 0 || text[i - 1] != '\\')) {
      in_string = !in_string;
    }
    if (!in_string && c == ',') {
      out.emplace_back(trim(text.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Operand parsing helpers.

Result<unsigned> parse_reg_operand(const std::string& text) {
  if (auto reg = isa::parse_gpr(trim(text))) return *reg;
  return Error(ErrorCode::kParseError, "expected register, got '" + text + "'");
}

Result<u16> parse_csr_operand(const std::string& text, const ExprContext& ctx) {
  const std::string name = to_lower(trim(text));
  if (auto csr = isa::parse_csr(name)) return *csr;
  // Allow a numeric CSR address.
  auto value = eval_expr(text, ctx);
  if (value.ok() && *value >= 0 && *value < 0x1000) {
    return static_cast<u16>(*value);
  }
  return Error(ErrorCode::kParseError, "unknown CSR '" + text + "'");
}

// "imm(reg)" or "(reg)" or "imm" -> {imm expr, base reg}.
struct MemOperand {
  std::string offset_expr;  // may be empty => 0
  unsigned base = 0;
};

Result<MemOperand> parse_mem_operand(const std::string& text) {
  const std::string_view t = trim(text);
  const std::size_t open = t.rfind('(');
  if (open == std::string_view::npos || t.back() != ')') {
    return Error(ErrorCode::kParseError,
                 "expected mem operand 'offset(reg)', got '" + text + "'");
  }
  MemOperand mem;
  mem.offset_expr = std::string(trim(t.substr(0, open)));
  const std::string reg_text(trim(t.substr(open + 1, t.size() - open - 2)));
  S4E_TRY(reg, parse_reg_operand(reg_text));
  mem.base = reg;
  return mem;
}

// ---------------------------------------------------------------------------
// Items produced by pass 1.

struct Item {
  enum class Kind {
    kInstr,       // one concrete instruction
    kLiLa,        // li/la expanded to lui+addi (8 bytes)
    kWord, kHalf, kByte,  // data with expressions
    kBytesLiteral,        // raw bytes (.asciz, .space)
  };
  Kind kind = Kind::kInstr;
  unsigned line = 0;
  unsigned section = 0;
  u32 offset = 0;  // within section
  std::string mnemonic;
  std::vector<std::string> operands;
  std::vector<u8> literal;  // kBytesLiteral
  u32 size = 0;
  bool compressed = false;  // kInstr: emit the 16-bit RVC form
};

// Mnemonic -> Op for concrete (non-pseudo) instructions.
std::optional<Op> find_op(const std::string& mnemonic) {
  for (unsigned i = 0; i < isa::kOpCount; ++i) {
    if (isa::op_table()[i].mnemonic == mnemonic) {
      return static_cast<Op>(i);
    }
  }
  return std::nullopt;
}

// Pseudo-instruction expansion: maps a pseudo statement to one concrete
// statement (single-instruction pseudos). li/la are handled separately
// because their size depends on the operand.
Result<Statement> expand_single_pseudo(const Statement& st) {
  Statement out = st;
  const auto& ops = st.operands;
  auto need = [&](std::size_t n) -> Status {
    if (ops.size() != n) {
      return Error(ErrorCode::kParseError,
                   format("'%s' expects %zu operands, got %zu",
                          st.mnemonic.c_str(), n, ops.size()));
    }
    return Status();
  };

  const std::string& m = st.mnemonic;
  if (m == "nop") {
    S4E_TRY_STATUS(need(0));
    out.mnemonic = "addi";
    out.operands = {"x0", "x0", "0"};
  } else if (m == "mv") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "addi";
    out.operands = {ops[0], ops[1], "0"};
  } else if (m == "not") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "xori";
    out.operands = {ops[0], ops[1], "-1"};
  } else if (m == "neg") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "sub";
    out.operands = {ops[0], "x0", ops[1]};
  } else if (m == "seqz") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "sltiu";
    out.operands = {ops[0], ops[1], "1"};
  } else if (m == "snez") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "sltu";
    out.operands = {ops[0], "x0", ops[1]};
  } else if (m == "sltz") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "slt";
    out.operands = {ops[0], ops[1], "x0"};
  } else if (m == "sgtz") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "slt";
    out.operands = {ops[0], "x0", ops[1]};
  } else if (m == "beqz") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "beq";
    out.operands = {ops[0], "x0", ops[1]};
  } else if (m == "bnez") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "bne";
    out.operands = {ops[0], "x0", ops[1]};
  } else if (m == "blez") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "bge";
    out.operands = {"x0", ops[0], ops[1]};
  } else if (m == "bgez") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "bge";
    out.operands = {ops[0], "x0", ops[1]};
  } else if (m == "bltz") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "blt";
    out.operands = {ops[0], "x0", ops[1]};
  } else if (m == "bgtz") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "blt";
    out.operands = {"x0", ops[0], ops[1]};
  } else if (m == "bgt") {
    S4E_TRY_STATUS(need(3));
    out.mnemonic = "blt";
    out.operands = {ops[1], ops[0], ops[2]};
  } else if (m == "ble") {
    S4E_TRY_STATUS(need(3));
    out.mnemonic = "bge";
    out.operands = {ops[1], ops[0], ops[2]};
  } else if (m == "bgtu") {
    S4E_TRY_STATUS(need(3));
    out.mnemonic = "bltu";
    out.operands = {ops[1], ops[0], ops[2]};
  } else if (m == "bleu") {
    S4E_TRY_STATUS(need(3));
    out.mnemonic = "bgeu";
    out.operands = {ops[1], ops[0], ops[2]};
  } else if (m == "j") {
    S4E_TRY_STATUS(need(1));
    out.mnemonic = "jal";
    out.operands = {"x0", ops[0]};
  } else if (m == "jr") {
    S4E_TRY_STATUS(need(1));
    out.mnemonic = "jalr";
    out.operands = {"x0", "0(" + ops[0] + ")"};
  } else if (m == "ret") {
    S4E_TRY_STATUS(need(0));
    out.mnemonic = "jalr";
    out.operands = {"x0", "0(ra)"};
  } else if (m == "call") {
    S4E_TRY_STATUS(need(1));
    out.mnemonic = "jal";
    out.operands = {"ra", ops[0]};
  } else if (m == "tail") {
    S4E_TRY_STATUS(need(1));
    out.mnemonic = "jal";
    out.operands = {"x0", ops[0]};
  } else if (m == "jal" && ops.size() == 1) {
    out.operands = {"ra", ops[0]};
  } else if (m == "csrr") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "csrrs";
    out.operands = {ops[0], ops[1], "x0"};
  } else if (m == "csrw") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "csrrw";
    out.operands = {"x0", ops[0], ops[1]};
  } else if (m == "csrs") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "csrrs";
    out.operands = {"x0", ops[0], ops[1]};
  } else if (m == "csrc") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "csrrc";
    out.operands = {"x0", ops[0], ops[1]};
  } else if (m == "csrwi") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "csrrwi";
    out.operands = {"x0", ops[0], ops[1]};
  } else if (m == "csrsi") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "csrrsi";
    out.operands = {"x0", ops[0], ops[1]};
  } else if (m == "csrci") {
    S4E_TRY_STATUS(need(2));
    out.mnemonic = "csrrci";
    out.operands = {"x0", ops[0], ops[1]};
  }
  return out;
}

// ---------------------------------------------------------------------------
// Encoding of a concrete (non-pseudo) statement in pass 2.

// Empty symbol table used to test whether a target expression is symbolic
// (any identifier is unresolved against it).
const std::map<std::string, u32> kEmptySymbols;

Result<Instr> parse_statement(const Statement& st, u32 pc,
                              const ExprContext& ctx) {
  const auto op = find_op(st.mnemonic);
  if (!op) {
    return Error(ErrorCode::kParseError,
                 "unknown mnemonic '" + st.mnemonic + "'");
  }
  const OpInfo& info = isa::op_info(*op);
  const auto& ops = st.operands;
  auto need = [&](std::size_t n) -> Status {
    if (ops.size() != n) {
      return Error(ErrorCode::kParseError,
                   format("'%s' expects %zu operands, got %zu",
                          st.mnemonic.c_str(), n, ops.size()));
    }
    return Status();
  };

  Instr instr;
  switch (info.format) {
    case Format::kR: {
      if (info.op_class == isa::OpClass::kAmo) {
        // A-extension syntax: `lr.w rd, (rs1)`; `amoadd.w rd, rs2, (rs1)`.
        // The address register is parenthesized and takes no offset.
        const bool is_lr = *op == Op::kLrW;
        S4E_TRY_STATUS(need(is_lr ? 2 : 3));
        S4E_TRY(rd, parse_reg_operand(ops[0]));
        unsigned rs2 = 0;
        if (!is_lr) {
          S4E_TRY(reg, parse_reg_operand(ops[1]));
          rs2 = reg;
        }
        S4E_TRY(mem, parse_mem_operand(ops[is_lr ? 1 : 2]));
        if (!mem.offset_expr.empty() && mem.offset_expr != "0") {
          return Error(ErrorCode::kParseError,
                       "'" + st.mnemonic + "' takes no address offset");
        }
        instr = isa::make_r(*op, rd, mem.base, rs2);
        break;
      }
      S4E_TRY_STATUS(need(3));
      S4E_TRY(rd, parse_reg_operand(ops[0]));
      S4E_TRY(rs1, parse_reg_operand(ops[1]));
      S4E_TRY(rs2, parse_reg_operand(ops[2]));
      instr = isa::make_r(*op, rd, rs1, rs2);
      break;
    }
    case Format::kI: {
      if (info.op_class == isa::OpClass::kLoad || *op == Op::kJalr) {
        // rd, offset(base) — also accept "rd, rs1, imm" for jalr.
        if (*op == Op::kJalr && ops.size() == 3 &&
            ops[2].find('(') == std::string::npos) {
          S4E_TRY(rd, parse_reg_operand(ops[0]));
          S4E_TRY(rs1, parse_reg_operand(ops[1]));
          S4E_TRY(imm, eval_expr(ops[2], ctx));
          instr = isa::make_i(*op, rd, rs1, static_cast<i32>(imm));
          break;
        }
        S4E_TRY_STATUS(need(2));
        S4E_TRY(rd, parse_reg_operand(ops[0]));
        S4E_TRY(mem, parse_mem_operand(ops[1]));
        i64 offset = 0;
        if (!mem.offset_expr.empty()) {
          S4E_TRY(value, eval_expr(mem.offset_expr, ctx));
          offset = value;
        }
        instr = isa::make_i(*op, rd, mem.base, static_cast<i32>(offset));
        break;
      }
      S4E_TRY_STATUS(need(3));
      S4E_TRY(rd, parse_reg_operand(ops[0]));
      S4E_TRY(rs1, parse_reg_operand(ops[1]));
      S4E_TRY(imm, eval_expr(ops[2], ctx));
      instr = isa::make_i(*op, rd, rs1, static_cast<i32>(imm));
      break;
    }
    case Format::kIShift: {
      S4E_TRY_STATUS(need(3));
      S4E_TRY(rd, parse_reg_operand(ops[0]));
      S4E_TRY(rs1, parse_reg_operand(ops[1]));
      S4E_TRY(shamt, eval_expr(ops[2], ctx));
      if (shamt < 0 || shamt > 31) {
        return Error(ErrorCode::kParseError,
                     format("shift amount %lld out of range",
                            static_cast<long long>(shamt)));
      }
      instr = isa::make_shift(*op, rd, rs1, static_cast<unsigned>(shamt));
      break;
    }
    case Format::kS: {
      S4E_TRY_STATUS(need(2));
      S4E_TRY(rs2, parse_reg_operand(ops[0]));
      S4E_TRY(mem, parse_mem_operand(ops[1]));
      i64 offset = 0;
      if (!mem.offset_expr.empty()) {
        S4E_TRY(value, eval_expr(mem.offset_expr, ctx));
        offset = value;
      }
      instr = isa::make_s(*op, mem.base, rs2, static_cast<i32>(offset));
      break;
    }
    case Format::kB: {
      S4E_TRY_STATUS(need(3));
      S4E_TRY(rs1, parse_reg_operand(ops[0]));
      S4E_TRY(rs2, parse_reg_operand(ops[1]));
      S4E_TRY(target, eval_expr(ops[2], ctx));
      // Symbolic targets are absolute; pure literals are already relative.
      i64 offset = target;
      if (ExprParser::has_unresolved_symbol(ops[2], ExprContext{
              &kEmptySymbols}) ) {
        offset = target - static_cast<i64>(pc);
      }
      instr = isa::make_b(*op, rs1, rs2, static_cast<i32>(offset));
      break;
    }
    case Format::kU: {
      S4E_TRY_STATUS(need(2));
      S4E_TRY(rd, parse_reg_operand(ops[0]));
      S4E_TRY(value, eval_expr(ops[1], ctx));
      if (value < 0 || value > 0xfffff) {
        return Error(ErrorCode::kParseError,
                     format("U-type immediate %lld out of 20-bit range",
                            static_cast<long long>(value)));
      }
      instr = isa::make_u(*op, rd, static_cast<i32>(value << 12));
      break;
    }
    case Format::kJ: {
      S4E_TRY_STATUS(need(2));
      S4E_TRY(rd, parse_reg_operand(ops[0]));
      S4E_TRY(target, eval_expr(ops[1], ctx));
      i64 offset = target;
      if (ExprParser::has_unresolved_symbol(ops[1], ExprContext{
              &kEmptySymbols})) {
        offset = target - static_cast<i64>(pc);
      }
      instr = isa::make_j(*op, rd, static_cast<i32>(offset));
      break;
    }
    case Format::kCsrReg: {
      S4E_TRY_STATUS(need(3));
      S4E_TRY(rd, parse_reg_operand(ops[0]));
      S4E_TRY(csr, parse_csr_operand(ops[1], ctx));
      S4E_TRY(rs1, parse_reg_operand(ops[2]));
      instr = isa::make_csr_reg(*op, rd, csr, rs1);
      break;
    }
    case Format::kCsrImm: {
      S4E_TRY_STATUS(need(3));
      S4E_TRY(rd, parse_reg_operand(ops[0]));
      S4E_TRY(csr, parse_csr_operand(ops[1], ctx));
      S4E_TRY(zimm, eval_expr(ops[2], ctx));
      if (zimm < 0 || zimm > 31) {
        return Error(ErrorCode::kParseError, "CSR zimm out of range");
      }
      instr = isa::make_csr_imm(*op, rd, csr, static_cast<unsigned>(zimm));
      break;
    }
    case Format::kNone:
    case Format::kFence: {
      if (!ops.empty() && info.format == Format::kNone) {
        return Error(ErrorCode::kParseError,
                     "'" + st.mnemonic + "' takes no operands");
      }
      instr = isa::make_system(*op);
      break;
    }
  }
  return instr;
}

Result<u32> encode_statement(const Statement& st, u32 pc,
                             const ExprContext& ctx) {
  S4E_TRY(instr, parse_statement(st, pc, ctx));
  return isa::encode(instr);
}

// ---------------------------------------------------------------------------
// String literal decoding for .asciz.

Result<std::vector<u8>> decode_string_literal(const std::string& text,
                                              bool zero_terminate) {
  const std::string_view t = trim(text);
  if (t.size() < 2 || t.front() != '"' || t.back() != '"') {
    return Error(ErrorCode::kParseError,
                 "expected string literal, got '" + text + "'");
  }
  std::vector<u8> bytes;
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    char c = t[i];
    if (c == '\\' && i + 2 < t.size()) {
      ++i;
      switch (t[i]) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        case '0': c = '\0'; break;
        case '\\': c = '\\'; break;
        case '"': c = '"'; break;
        default:
          return Error(ErrorCode::kParseError,
                       format("unknown escape '\\%c'", t[i]));
      }
    }
    bytes.push_back(static_cast<u8>(c));
  }
  if (zero_terminate) bytes.push_back(0);
  return bytes;
}

}  // namespace

Result<Program> assemble(std::string_view source, const Options& options) {
  Program program;
  program.sections.push_back(Section{".text", options.text_base, {}});
  program.sections.push_back(Section{".data", options.data_base, {}});

  std::vector<Item> items;
  std::map<std::string, u32> equ_constants;
  unsigned current_section = 0;
  std::optional<u32> pending_loop_bound;

  // --- Pass 1: scan lines, expand pseudos, assign offsets, collect labels.
  unsigned line_no = 0;
  std::size_t line_start = 0;
  while (line_start <= source.size()) {
    const std::size_t line_end = source.find('\n', line_start);
    std::string_view raw_line =
        source.substr(line_start,
                      (line_end == std::string_view::npos)
                          ? source.size() - line_start
                          : line_end - line_start);
    line_start = (line_end == std::string_view::npos) ? source.size() + 1
                                                      : line_end + 1;
    ++line_no;

    std::string_view line = trim(strip_comment(raw_line));
    // Peel off any leading labels.
    while (!line.empty()) {
      std::size_t colon = std::string_view::npos;
      // A label is an identifier followed by ':' at the start of the line.
      std::size_t i = 0;
      while (i < line.size() && is_ident_char(line[i])) ++i;
      if (i > 0 && i < line.size() && line[i] == ':') colon = i;
      if (colon == std::string_view::npos) break;
      const std::string label(line.substr(0, colon));
      Section& section = program.sections[current_section];
      const u32 address =
          section.base + static_cast<u32>(section.bytes.size()) +
          [&] {  // account for items already sized in this section
            u32 extra = 0;
            for (const Item& item : items) {
              if (item.section == current_section) extra += item.size;
            }
            return extra;
          }();
      if (program.symbols.count(label) != 0) {
        return at_line(line_no, "duplicate label '" + label + "'");
      }
      program.symbols[label] = address;
      line = trim(line.substr(colon + 1));
    }
    if (line.empty()) continue;

    // Split mnemonic and operand text.
    std::size_t space = 0;
    while (space < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[space]))) {
      ++space;
    }
    Statement st;
    st.line = line_no;
    st.mnemonic = to_lower(line.substr(0, space));
    st.operands = split_operands(trim(line.substr(space)));

    auto current_offset = [&]() -> u32 {
      u32 offset = 0;
      for (const Item& item : items) {
        if (item.section == current_section) offset += item.size;
      }
      return offset;
    };

    auto push_item = [&](Item item) {
      item.line = line_no;
      item.section = current_section;
      item.offset = current_offset();
      if (pending_loop_bound && current_section == 0 &&
          item.kind != Item::Kind::kBytesLiteral) {
        program.loop_bounds.push_back(
            LoopBound{program.sections[0].base + item.offset,
                      *pending_loop_bound});
        pending_loop_bound.reset();
      }
      items.push_back(std::move(item));
    };

    // Directives.
    if (st.mnemonic[0] == '.') {
      const std::string& d = st.mnemonic;
      const ExprContext equ_ctx{&equ_constants};
      if (d == ".text") {
        current_section = 0;
      } else if (d == ".data") {
        current_section = 1;
      } else if (d == ".global" || d == ".globl" || d == ".option" ||
                 d == ".section" || d == ".type" || d == ".size") {
        // accepted and ignored — all symbols are global
      } else if (d == ".equ" || d == ".set") {
        if (st.operands.size() != 2) {
          return at_line(line_no, ".equ expects 'name, value'");
        }
        auto value = eval_expr(st.operands[1], equ_ctx);
        if (!value.ok()) {
          return at_line(line_no, value.error().message());
        }
        equ_constants[st.operands[0]] = static_cast<u32>(*value);
        program.symbols[st.operands[0]] = static_cast<u32>(*value);
      } else if (d == ".align") {
        if (st.operands.size() != 1) {
          return at_line(line_no, ".align expects one operand");
        }
        auto power = eval_expr(st.operands[0], equ_ctx);
        if (!power.ok() || *power < 0 || *power > 16) {
          return at_line(line_no, "bad .align operand");
        }
        const u32 alignment = u32{1} << *power;
        const u32 offset = current_offset();
        const u32 padded = (offset + alignment - 1) & ~(alignment - 1);
        if (padded != offset) {
          Item item;
          item.kind = Item::Kind::kBytesLiteral;
          item.literal.assign(padded - offset, 0);
          item.size = padded - offset;
          push_item(std::move(item));
        }
      } else if (d == ".space" || d == ".zero") {
        if (st.operands.size() != 1) {
          return at_line(line_no, ".space expects one operand");
        }
        auto count = eval_expr(st.operands[0], equ_ctx);
        if (!count.ok() || *count < 0 || *count > (1 << 24)) {
          return at_line(line_no, "bad .space operand");
        }
        Item item;
        item.kind = Item::Kind::kBytesLiteral;
        item.literal.assign(static_cast<std::size_t>(*count), 0);
        item.size = static_cast<u32>(*count);
        push_item(std::move(item));
      } else if (d == ".word" || d == ".half" || d == ".byte") {
        if (st.operands.empty()) {
          return at_line(line_no, d + " expects at least one operand");
        }
        Item item;
        item.kind = (d == ".word")   ? Item::Kind::kWord
                    : (d == ".half") ? Item::Kind::kHalf
                                     : Item::Kind::kByte;
        item.mnemonic = d;
        item.operands = st.operands;
        const u32 unit = (d == ".word") ? 4 : (d == ".half") ? 2 : 1;
        item.size = unit * static_cast<u32>(st.operands.size());
        push_item(std::move(item));
      } else if (d == ".asciz" || d == ".ascii" || d == ".string") {
        if (st.operands.size() != 1) {
          return at_line(line_no, d + " expects one string literal");
        }
        auto bytes = decode_string_literal(st.operands[0],
                                           d != ".ascii");
        if (!bytes.ok()) return at_line(line_no, bytes.error().message());
        Item item;
        item.kind = Item::Kind::kBytesLiteral;
        item.literal = std::move(*bytes);
        item.size = static_cast<u32>(item.literal.size());
        push_item(std::move(item));
      } else if (d == ".loopbound") {
        if (st.operands.size() != 1) {
          return at_line(line_no, ".loopbound expects one operand");
        }
        auto bound = eval_expr(st.operands[0], equ_ctx);
        if (!bound.ok() || *bound < 0) {
          return at_line(line_no, "bad .loopbound operand");
        }
        pending_loop_bound = static_cast<u32>(*bound);
      } else {
        return at_line(line_no, "unknown directive '" + d + "'");
      }
      continue;
    }

    // Instructions. li/la first (variable size), then single pseudos, then
    // concrete instructions.
    if (st.mnemonic == "li" || st.mnemonic == "la") {
      if (st.operands.size() != 2) {
        return at_line(line_no, st.mnemonic + " expects 'rd, value'");
      }
      const ExprContext equ_ctx{&equ_constants};
      bool wide = st.mnemonic == "la" ||
                  ExprParser::has_unresolved_symbol(st.operands[1], equ_ctx);
      if (!wide) {
        auto value = eval_expr(st.operands[1], equ_ctx);
        if (!value.ok()) return at_line(line_no, value.error().message());
        wide = !fits_signed(*value, 12);
      }
      Item item;
      item.kind = wide ? Item::Kind::kLiLa : Item::Kind::kInstr;
      item.mnemonic = wide ? "li" : "addi";
      item.operands = wide
                          ? st.operands
                          : std::vector<std::string>{st.operands[0], "x0",
                                                     st.operands[1]};
      item.size = wide ? 8 : 4;
      if (!wide && options.compress) {
        Statement as_addi;
        as_addi.mnemonic = item.mnemonic;
        as_addi.operands = item.operands;
        auto parsed = parse_statement(as_addi, 0, equ_ctx);
        if (parsed.ok() && isa::compress(*parsed).has_value()) {
          item.size = 2;
          item.compressed = true;
        }
      }
      push_item(std::move(item));
      continue;
    }

    auto expanded = expand_single_pseudo(st);
    if (!expanded.ok()) return at_line(line_no, expanded.error().message());
    if (!find_op(expanded->mnemonic)) {
      return at_line(line_no, "unknown mnemonic '" + st.mnemonic + "'");
    }
    Item item;
    item.kind = Item::Kind::kInstr;
    item.mnemonic = expanded->mnemonic;
    item.operands = expanded->operands;
    item.size = 4;
    if (options.compress) {
      // RVC sizing must be decidable in pass 1, i.e. without label values:
      // control flow is never compressed, and any operand expression that
      // references an unresolved symbol keeps the 32-bit form. pc = 0 is
      // safe because only branch/jump immediates are pc-relative.
      const ExprContext equ_ctx{&equ_constants};
      auto parsed = parse_statement(*expanded, 0, equ_ctx);
      if (parsed.ok() && !parsed->is_control_flow() &&
          isa::compress(*parsed).has_value()) {
        item.size = 2;
        item.compressed = true;
      }
    }
    push_item(std::move(item));
  }

  if (pending_loop_bound) {
    return Error(ErrorCode::kParseError,
                 ".loopbound annotation not followed by an instruction");
  }

  // --- Pass 2: encode all items with the full symbol table.
  const ExprContext ctx{&program.symbols};
  for (const Item& item : items) {
    Section& section = program.sections[item.section];
    S4E_CHECK(section.bytes.size() == item.offset);
    const u32 pc = section.base + item.offset;
    auto emit_word = [&](u32 word) {
      for (unsigned i = 0; i < 4; ++i) {
        section.bytes.push_back(static_cast<u8>(word >> (8 * i)));
      }
    };
    switch (item.kind) {
      case Item::Kind::kInstr: {
        Statement st;
        st.line = item.line;
        st.mnemonic = item.mnemonic;
        st.operands = item.operands;
        if (item.compressed) {
          auto instr = parse_statement(st, pc, ctx);
          if (!instr.ok()) return at_line(item.line, instr.error().message());
          const auto half = isa::compress(*instr);
          S4E_CHECK_MSG(half.has_value(),
                        "pass-1 compression decision must hold in pass 2");
          section.bytes.push_back(static_cast<u8>(*half));
          section.bytes.push_back(static_cast<u8>(*half >> 8));
          break;
        }
        auto word = encode_statement(st, pc, ctx);
        if (!word.ok()) return at_line(item.line, word.error().message());
        emit_word(*word);
        break;
      }
      case Item::Kind::kLiLa: {
        auto value = eval_expr(item.operands[1], ctx);
        if (!value.ok()) return at_line(item.line, value.error().message());
        const u32 target = static_cast<u32>(*value);
        auto rd = parse_reg_operand(item.operands[0]);
        if (!rd.ok()) return at_line(item.line, rd.error().message());
        auto lui = isa::encode(
            isa::make_u(Op::kLui, *rd, static_cast<i32>(hi20(target) << 12)));
        if (!lui.ok()) return at_line(item.line, lui.error().message());
        emit_word(*lui);
        auto addi = isa::encode(isa::make_i(Op::kAddi, *rd, *rd, lo12(target)));
        if (!addi.ok()) return at_line(item.line, addi.error().message());
        emit_word(*addi);
        break;
      }
      case Item::Kind::kWord:
      case Item::Kind::kHalf:
      case Item::Kind::kByte: {
        const unsigned unit = (item.kind == Item::Kind::kWord)   ? 4
                              : (item.kind == Item::Kind::kHalf) ? 2
                                                                 : 1;
        for (const std::string& operand : item.operands) {
          auto value = eval_expr(operand, ctx);
          if (!value.ok()) return at_line(item.line, value.error().message());
          const u32 v = static_cast<u32>(*value);
          for (unsigned i = 0; i < unit; ++i) {
            section.bytes.push_back(static_cast<u8>(v >> (8 * i)));
          }
        }
        break;
      }
      case Item::Kind::kBytesLiteral:
        section.bytes.insert(section.bytes.end(), item.literal.begin(),
                             item.literal.end());
        break;
    }
  }

  // Entry point: _start if defined, else start of .text.
  if (auto it = program.symbols.find("_start"); it != program.symbols.end()) {
    program.entry = it->second;
  } else {
    program.entry = options.text_base;
  }
  return program;
}

}  // namespace s4e::assembler
