# Empty dependencies file for s4e_cfg.
# This may be replaced when dependencies are built.
