# Empty dependencies file for s4e-testgen.
# This may be replaced when dependencies are built.
