# Empty dependencies file for bench_memwatch.
# This may be replaced when dependencies are built.
