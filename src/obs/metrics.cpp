#include "obs/metrics.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/strings.hpp"

namespace s4e::obs {

MetricsRegistry::Shard::Shard(const MetricsRegistry* owner)
    : owner_(owner), slots_(owner->slot_count_, 0) {}

void MetricsRegistry::Shard::observe(MetricId id, u64 value) {
  // Linear probe over the fixed bounds: histograms here have a handful of
  // decades, where the scan beats a binary search.
  u32 bucket = id.buckets - 1;  // overflow bucket by default
  const std::vector<u64>& bounds = owner_->bounds_for(id);
  for (u32 i = 0; i < bounds.size(); ++i) {
    if (value <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  slots_[id.slot + bucket] += 1;
  slots_[id.slot + id.buckets] += value;  // running sum after the counts
}

const std::vector<u64>& MetricsRegistry::bounds_for(MetricId id) const {
  for (const Metric& metric : metrics_) {
    if (metric.id.slot == id.slot) return metric.bounds;
  }
  static const std::vector<u64> kEmpty;
  return kEmpty;
}

MetricId MetricsRegistry::allocate(const std::string& name, Kind kind,
                                   u32 slots, std::vector<u64> bounds) {
  S4E_CHECK_MSG(!frozen_, "metric registered after open_shards()");
  Metric metric;
  metric.name = name;
  metric.kind = kind;
  metric.id.slot = slot_count_;
  metric.id.buckets = kind == Kind::kHistogram ? slots - 1 : 0;
  metric.bounds = std::move(bounds);
  slot_count_ += slots;
  metrics_.push_back(std::move(metric));
  return metrics_.back().id;
}

MetricId MetricsRegistry::add_counter(const std::string& name) {
  return allocate(name, Kind::kCounter, 1, {});
}

MetricId MetricsRegistry::add_gauge(const std::string& name) {
  return allocate(name, Kind::kGauge, 1, {});
}

MetricId MetricsRegistry::add_histogram(const std::string& name,
                                        std::vector<u64> bounds) {
  S4E_CHECK_MSG(!bounds.empty(), "histogram needs at least one bound");
  S4E_CHECK_MSG(std::is_sorted(bounds.begin(), bounds.end()),
                "histogram bounds must be increasing");
  // counts per bound + overflow count + sum slot.
  const u32 slots = static_cast<u32>(bounds.size()) + 2;
  return allocate(name, Kind::kHistogram, slots, std::move(bounds));
}

void MetricsRegistry::open_shards(unsigned workers) {
  frozen_ = true;
  shards_.clear();
  shards_.reserve(std::max(workers, 1u));
  for (unsigned i = 0; i < std::max(workers, 1u); ++i) {
    shards_.push_back(Shard(this));
  }
}

u64 MetricsRegistry::fold(u32 slot, Kind kind) const {
  u64 value = 0;
  for (const Shard& shard : shards_) {
    if (kind == Kind::kGauge) {
      value = std::max(value, shard.slots_[slot]);
    } else {
      value += shard.slots_[slot];
    }
  }
  return value;
}

u64 MetricsRegistry::value(MetricId id) const {
  for (const Metric& metric : metrics_) {
    if (metric.id.slot != id.slot) continue;
    if (metric.kind != Kind::kHistogram) return fold(id.slot, metric.kind);
    u64 count = 0;
    for (u32 i = 0; i < id.buckets; ++i) {
      count += fold(id.slot + i, Kind::kCounter);
    }
    return count;
  }
  return 0;
}

std::vector<u64> MetricsRegistry::histogram_counts(MetricId id) const {
  std::vector<u64> counts(id.buckets, 0);
  for (u32 i = 0; i < id.buckets; ++i) {
    counts[i] = fold(id.slot + i, Kind::kCounter);
  }
  return counts;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const Metric& metric = metrics_[i];
    if (i != 0) out += ", ";
    out += "\"" + metric.name + "\": ";
    if (metric.kind != Kind::kHistogram) {
      out += format("%llu", static_cast<unsigned long long>(
                                fold(metric.id.slot, metric.kind)));
      continue;
    }
    out += "{\"bounds\": [";
    for (std::size_t b = 0; b < metric.bounds.size(); ++b) {
      out += format("%s%llu", b != 0 ? ", " : "",
                    static_cast<unsigned long long>(metric.bounds[b]));
    }
    out += "], \"counts\": [";
    for (u32 b = 0; b < metric.id.buckets; ++b) {
      out += format("%s%llu", b != 0 ? ", " : "",
                    static_cast<unsigned long long>(
                        fold(metric.id.slot + b, Kind::kCounter)));
    }
    out += format("], \"sum\": %llu}",
                  static_cast<unsigned long long>(
                      fold(metric.id.slot + metric.id.buckets,
                           Kind::kCounter)));
  }
  out += "}";
  return out;
}

// ---------------------------------------------------------------------------
// CampaignTelemetry.

CampaignTelemetry::CampaignTelemetry(
    const std::vector<std::string>& bucket_names, unsigned workers) {
  mutants_ = registry_.add_counter("mutants");
  for (const std::string& name : bucket_names) {
    buckets_.push_back(registry_.add_counter(name));
  }
  instructions_ = registry_.add_counter("guest_instructions");
  instructions_hist_ = registry_.add_histogram(
      "mutant_instructions",
      {1'000, 10'000, 100'000, 1'000'000, 10'000'000, 100'000'000});
  post_mortems_ = registry_.add_counter("post_mortems");
  registry_.open_shards(workers);
}

void CampaignTelemetry::record_run(unsigned worker, unsigned bucket,
                                   u64 instructions,
                                   bool post_mortem_captured) {
  MetricsRegistry::Shard& shard = registry_.shard(worker);
  shard.add(mutants_, 1);
  if (bucket < buckets_.size()) shard.add(buckets_[bucket], 1);
  shard.add(instructions_, instructions);
  shard.observe(instructions_hist_, instructions);
  if (post_mortem_captured) shard.add(post_mortems_, 1);
}

void CampaignTelemetry::set_campaign(u64 total_mutants,
                                     u64 golden_instructions,
                                     u64 hang_budget) {
  total_mutants_ = total_mutants;
  golden_instructions_ = golden_instructions;
  hang_budget_ = hang_budget;
}

void CampaignTelemetry::set_pruned(u64 pruned) {
  pruned_set_ = true;
  pruned_ = pruned;
}

std::string CampaignTelemetry::to_json() const {
  // Campaign-level facts first, then the aggregated worker metrics merged
  // into one flat object.
  std::string metrics = registry_.to_json();
  metrics.erase(0, 1);  // drop the leading '{'
  std::string pruned;
  if (pruned_set_) {
    pruned = format("\"pruned\": %llu, ",
                    static_cast<unsigned long long>(pruned_));
  }
  return format("{\"mutants_total\": %llu, \"golden_instructions\": %llu, "
                "\"hang_budget\": %llu, %s%s",
                static_cast<unsigned long long>(total_mutants_),
                static_cast<unsigned long long>(golden_instructions_),
                static_cast<unsigned long long>(hang_budget_), pruned.c_str(),
                metrics.c_str());
}

}  // namespace s4e::obs
