file(REMOVE_RECURSE
  "CMakeFiles/bench_coverage_suites.dir/bench_coverage_suites.cpp.o"
  "CMakeFiles/bench_coverage_suites.dir/bench_coverage_suites.cpp.o.d"
  "bench_coverage_suites"
  "bench_coverage_suites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coverage_suites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
