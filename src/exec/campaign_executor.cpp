#include "exec/campaign_executor.hpp"

namespace s4e::exec {

void CampaignExecutor::run(std::size_t count,
                           const std::function<void(std::size_t)>& job) {
  if (count == 0) return;
  if (jobs_ <= 1) {
    for (std::size_t i = 0; i < count; ++i) job(i);
    return;
  }
  ThreadPool::Options options;
  options.threads = jobs_;
  // A shallow backlog is enough to keep every worker fed; submit()'s
  // backpressure then caps the queue so a million-mutant campaign never
  // materialises a million closures at once.
  options.queue_capacity = std::max<std::size_t>(2 * jobs_, 16);
  ThreadPool pool(options);
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&job, i] { job(i); });
  }
  pool.wait_idle();  // rethrows the first captured job exception
}

}  // namespace s4e::exec
