// Bottom-up function summaries and the interprocedural re-solve.
//
// For each function, in callees-before-callers order (callgraph.hpp), the
// register and liveness domains are re-solved with the already-computed
// summaries of its callees applied at every call site (regstate.hpp's
// CallEffect), and a summary is then distilled from the refined solution:
//
//   may_write / must_write   which registers the callee may / definitely
//                            clobbers (complement of may_write = preserved,
//                            so caller facts flow across the call)
//   may_read                 registers whose incoming value the callee may
//                            observe, transitively through its own callees
//   ret0 / ret1              abstract a0/a1 at the callee's returns (join)
//   sp_balanced              stack delta: sp provably restored on return
//   mem_reads / mem_writes   absolute may-read/may-write address ranges,
//                            with unknown/stack escape flags
//   frame / total bytes      deepest local and whole-chain sp excursion
//
// Functions in a call-graph cycle and functions tainted by an unresolved
// indirect site keep the conservative summary, which reproduces the RV32
// ABI assumptions exactly — so the interprocedural layer only ever refines
// the intraprocedural results, never weakens them.
#pragma once

#include <map>
#include <vector>

#include "cfg/cfg.hpp"
#include "dataflow/callgraph.hpp"
#include "dataflow/framework.hpp"
#include "dataflow/liveness.hpp"
#include "dataflow/memmodel.hpp"
#include "dataflow/regstate.hpp"

namespace s4e::dataflow {

// Inclusive address interval in the canonical (sign-extended i32) space
// the data-flow layer uses throughout.
struct MemRange {
  i64 lo = 0;
  i64 hi = 0;
};

struct FunctionSummary {
  // True = the ABI-assumption fallback (recursive, tainted by an
  // unresolved indirect, or never analyzed); effect() then equals the
  // default CallEffect and the memory footprint is unknown.
  bool conservative = true;

  u32 may_write = kCallerSavedMask;
  u32 must_write = 0;
  u32 may_read = CallEffect::kCallReadMaskDefault;
  AbsValue ret0 = AbsValue::top();
  AbsValue ret1 = AbsValue::top();
  bool sp_balanced = true;
  bool returns = true;  // has a reachable return path

  // Transitive memory footprint. `*_unknown` = some access (own or callee)
  // had no static bound; `*_stack` = some access went through an sp-derived
  // address (confined to the stack region when the program's static stack
  // depth is known, see triage.cpp).
  bool reads_unknown = true;
  bool writes_unknown = true;
  bool reads_stack = true;
  bool writes_stack = true;
  std::vector<MemRange> mem_reads;
  std::vector<MemRange> mem_writes;

  // Static stack accounting (bytes below the entry sp). -1 = unknown.
  i64 frame_bytes = -1;
  i64 total_bytes = -1;  // including the deepest callee chain

  // Distill the per-call-site effect the solver domains consume.
  CallEffect effect() const;
};

struct Interprocedural {
  CallGraph graph;
  std::vector<FunctionSummary> summaries;  // parallel to cfg.functions
  // Per function: call-block id -> the callee's effect at that site.
  std::vector<std::map<cfg::BlockId, CallEffect>> call_effects;
  // Summary-refined solutions, parallel to cfg.functions.
  std::vector<Solution<RegDomain>> reg;
  std::vector<Solution<Liveness>> live;
};

// Run the bottom-up interprocedural pass. `baseline` supplies block
// reachability for call-graph construction (pass-B intraprocedural
// solutions); the refined solutions it returns are everywhere at least as
// precise as the baseline.
Interprocedural solve_interprocedural(
    const cfg::ProgramCfg& cfg, u32 program_entry, const MemModel* mem,
    const std::vector<Solution<RegDomain>>& baseline);

}  // namespace s4e::dataflow
