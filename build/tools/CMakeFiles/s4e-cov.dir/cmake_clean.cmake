file(REMOVE_RECURSE
  "CMakeFiles/s4e-cov.dir/s4e_cov.cpp.o"
  "CMakeFiles/s4e-cov.dir/s4e_cov.cpp.o.d"
  "s4e-cov"
  "s4e-cov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e-cov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
