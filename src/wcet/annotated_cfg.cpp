#include "wcet/annotated_cfg.hpp"

#include "common/strings.hpp"

namespace s4e::wcet {

void AnnotatedCfg::reindex() {
  index_.clear();
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    index_[blocks[i].start] = i;
  }
}

std::string AnnotatedCfg::serialize() const {
  std::string out;
  out += "qta-cfg v1\n";
  out += format("program %s entry 0x%08x\n", program_name.c_str(), entry);
  out += format("penalty %u\n", redirect_penalty);
  out += format("transitions %s\n",
                penalize_all_transitions ? "all" : "redirect");
  out += format("wcet_total %llu\n",
                static_cast<unsigned long long>(total_wcet));
  for (const AnnotatedBlock& block : blocks) {
    out += format("block 0x%08x 0x%08x wcet %u fn 0x%08x\n", block.start,
                  block.end, block.wcet, block.function_entry);
  }
  for (const AnnotatedEdge& edge : edges) {
    out += format("edge 0x%08x 0x%08x penalty %u%s\n", edge.source,
                  edge.target, edge.penalty, edge.is_back_edge ? " back" : "");
  }
  for (const auto& [header, bound] : loop_bounds) {
    out += format("loopbound 0x%08x %u\n", header, bound);
  }
  return out;
}

Result<AnnotatedCfg> AnnotatedCfg::parse(std::string_view text) {
  AnnotatedCfg cfg;
  bool saw_magic = false;
  unsigned line_no = 0;
  for (std::string_view line_raw : split(text, '\n')) {
    ++line_no;
    const std::string_view line = trim(line_raw);
    if (line.empty() || line.front() == '#') continue;
    const auto fields = split_whitespace(line);
    auto bad = [&](const std::string& why) {
      return Error(ErrorCode::kParseError,
                   format("qta-cfg line %u: %s", line_no, why.c_str()));
    };
    auto num = [&](std::string_view field) -> Result<i64> {
      return parse_integer(field);
    };
    if (!saw_magic) {
      if (fields.size() != 2 || fields[0] != "qta-cfg" || fields[1] != "v1") {
        return bad("expected header 'qta-cfg v1'");
      }
      saw_magic = true;
      continue;
    }
    if (fields[0] == "program") {
      if (fields.size() != 4 || fields[2] != "entry") {
        return bad("malformed program record");
      }
      cfg.program_name = std::string(fields[1]);
      S4E_TRY(entry, num(fields[3]));
      cfg.entry = static_cast<u32>(entry);
    } else if (fields[0] == "penalty") {
      if (fields.size() != 2) return bad("malformed penalty record");
      S4E_TRY(penalty, num(fields[1]));
      cfg.redirect_penalty = static_cast<u32>(penalty);
    } else if (fields[0] == "transitions") {
      if (fields.size() != 2 || (fields[1] != "all" && fields[1] != "redirect")) {
        return bad("malformed transitions record");
      }
      cfg.penalize_all_transitions = fields[1] == "all";
    } else if (fields[0] == "wcet_total") {
      if (fields.size() != 2) return bad("malformed wcet_total record");
      S4E_TRY(total, num(fields[1]));
      cfg.total_wcet = static_cast<u64>(total);
    } else if (fields[0] == "block") {
      if (fields.size() != 7 || fields[3] != "wcet" || fields[5] != "fn") {
        return bad("malformed block record");
      }
      AnnotatedBlock block;
      S4E_TRY(start, num(fields[1]));
      S4E_TRY(end, num(fields[2]));
      S4E_TRY(wcet, num(fields[4]));
      S4E_TRY(fn, num(fields[6]));
      block.start = static_cast<u32>(start);
      block.end = static_cast<u32>(end);
      block.wcet = static_cast<u32>(wcet);
      block.function_entry = static_cast<u32>(fn);
      cfg.blocks.push_back(block);
    } else if (fields[0] == "edge") {
      if (fields.size() < 5 || fields[3] != "penalty") {
        return bad("malformed edge record");
      }
      AnnotatedEdge edge;
      S4E_TRY(source, num(fields[1]));
      S4E_TRY(target, num(fields[2]));
      S4E_TRY(penalty, num(fields[4]));
      edge.source = static_cast<u32>(source);
      edge.target = static_cast<u32>(target);
      edge.penalty = static_cast<u32>(penalty);
      edge.is_back_edge = fields.size() == 6 && fields[5] == "back";
      if (fields.size() > 6) return bad("trailing fields on edge record");
      cfg.edges.push_back(edge);
    } else if (fields[0] == "loopbound") {
      if (fields.size() != 3) return bad("malformed loopbound record");
      S4E_TRY(header, num(fields[1]));
      S4E_TRY(bound, num(fields[2]));
      cfg.loop_bounds[static_cast<u32>(header)] = static_cast<u32>(bound);
    } else {
      return bad("unknown record kind '" + std::string(fields[0]) + "'");
    }
  }
  if (!saw_magic) {
    return Error(ErrorCode::kParseError, "empty qta-cfg input");
  }
  cfg.reindex();
  return cfg;
}

}  // namespace s4e::wcet
