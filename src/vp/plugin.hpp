// C++ convenience adaptor over the C plugin API.
//
// Ecosystem tools derive from PluginBase and override the events they need;
// the adaptor performs all interaction through the C functions in
// s4e_plugin.h only, preserving the property that tools depend on the
// stable C boundary, not on VP internals (the QEMU TCG-plugin discipline).
#pragma once

#include "common/bits.hpp"
#include "vp/s4e_plugin.h"

namespace s4e::vp {

class PluginBase {
 public:
  virtual ~PluginBase() = default;

  // Register the overridden callbacks with `vm`. Call once per VM.
  void attach(s4e_vm* vm);

  s4e_vm* vm() const noexcept { return vm_; }

  // Event hooks (public so the C trampolines can dispatch without friend
  // gymnastics; they are still only meant to be *called* by the VP).
  virtual void on_tb_trans(const s4e_tb_info& tb) { (void)tb; }
  virtual void on_tb_exec(u32 tb_start) { (void)tb_start; }
  virtual void on_insn_exec(const s4e_insn_info& insn) { (void)insn; }
  virtual void on_mem(const s4e_mem_event& event) { (void)event; }
  virtual void on_trap(const s4e_trap_event& event) { (void)event; }
  virtual void on_exit(int exit_code) { (void)exit_code; }

  // Which events to register for; default registers everything overridden
  // cannot be detected in C++, so derived classes state their needs.
  struct Subscriptions {
    bool tb_trans = false;
    bool tb_exec = false;
    bool insn_exec = false;
    bool mem = false;
    bool trap = false;
    bool exit = false;
  };
  virtual Subscriptions subscriptions() const = 0;

 private:
  s4e_vm* vm_ = nullptr;
};

}  // namespace s4e::vp
