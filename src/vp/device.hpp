// Memory-mapped device interface for the VP bus.
#pragma once

#include <string>

#include "common/bits.hpp"
#include "common/status.hpp"

namespace s4e::vp {

class Device {
 public:
  virtual ~Device() = default;

  virtual std::string_view name() const noexcept = 0;

  // Read `size` (1/2/4) bytes at byte offset `offset` within the device
  // window. Little-endian, right-aligned in the returned word.
  virtual Result<u32> read(u32 offset, unsigned size) = 0;

  // Write `size` bytes at `offset`.
  virtual Status write(u32 offset, unsigned size, u32 value) = 0;

  // Advance device time to absolute cycle `now` (CLINT timer, UART pacing).
  virtual void tick(u64 now) { (void)now; }
};

}  // namespace s4e::vp
