# Empty compiler generated dependencies file for s4e_coverage.
# This may be replaced when dependencies are built.
