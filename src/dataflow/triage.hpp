// Static campaign triage: classify fault-injection sites and mutation
// candidates before execution, so campaigns skip runs whose outcome is
// statically provable. Built on the interprocedural analysis (callgraph +
// summaries + refined solutions).
//
// Soundness contract: a pruned verdict is only ever emitted when the
// abstract semantics prove the faulty run indistinguishable from the golden
// run under the campaign's own observation model (exit code, UART stream,
// final .data hash; GPRs and .text are NOT part of the comparison). The
// classes:
//
//   dead-register     GPR fault: no statically reachable instruction (nor
//                     the exit ecall) ever reads the register
//   unreachable-code  code fault / mutant: the patched bytes intersect no
//                     reachable instruction and no may-read data window
//   stuck-at-nop      stuck-at fault: the forced bit already holds the
//                     stuck value and no store may rewrite the word
//   identical         mutant encoding equals the original
//   value-equivalent  both pure-ALU, same rd, and the abstract results are
//                     the same single value at every reachable occurrence
//   branch-equivalent both branches with a statically decided, identical
//                     successor at every reachable occurrence
//   dead-write        both pure-ALU and every written register is dead
//                     after the site at every reachable occurrence
//
// `--triage=verify` (campaign layer) still executes pruned candidates and
// asserts the dynamic outcome matches — the regression harness for this
// contract.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "asm/program.hpp"
#include "common/status.hpp"
#include "dataflow/analyze.hpp"

namespace s4e::dataflow {

enum class TriageMode : u8 { kOff, kOn, kVerify };

// Maps a `--triage[=...]` flag value: "", "on" -> kOn; "off" -> kOff;
// "verify" -> kVerify; anything else -> nullopt.
std::optional<TriageMode> parse_triage_mode(std::string_view value);

struct TriageOptions {
  // One past the highest stack address (the loader's initial sp). Bounds
  // the window stack-relative accesses can reach; 0 = unknown, which makes
  // every stack access an unbounded read/write and disables code-region
  // pruning for programs that touch the stack.
  u32 stack_top = 0;
};

struct TriageDecision {
  bool pruned = false;
  const char* reason = "";  // stable tag from the class list above
};

class StaticTriage {
 public:
  // Address window in the canonical (sign-extended i32) space the data-flow
  // layer uses throughout; inclusive bounds.
  struct Range {
    i64 lo = 0;
    i64 hi = 0;
  };

  // Runs analyze_program and precomputes the whole-program read/write/code
  // windows and the reachable-instruction index.
  static Result<StaticTriage> build(const assembler::Program& program,
                                    const TriageOptions& options = {});

  // Fault-injection sites (fault::FaultSpec semantics: kGpr by register,
  // kCode by 32-bit word address + bit). kMemory faults are never pruned —
  // the flipped byte lands in the hashed .data image.
  TriageDecision gpr_fault(unsigned reg) const;
  TriageDecision code_fault(u32 address, bool stuck_at, u8 bit,
                            bool stuck_value) const;

  // Mutation candidate (mutation::Mutant patch model: `length` bytes at
  // `address` change from `original` to `mutated` encoding).
  TriageDecision mutant(u32 address, u8 length, u32 original,
                        u32 mutated) const;

  const Analysis& analysis() const { return *analysis_; }

 private:
  struct Occurrence {
    u32 function = 0;
    cfg::BlockId block = cfg::kNoBlock;
    u32 index = 0;  // instruction position within the block
  };

  bool overlaps_code(i64 lo, i64 hi) const;
  bool data_readable(i64 lo, i64 hi) const;
  bool data_writable(i64 lo, i64 hi) const;
  std::optional<u32> image_word(u32 address) const;

  std::shared_ptr<const Analysis> analysis_;
  std::vector<assembler::Section> sections_;
  u32 ever_read_ = ~u32{0};
  std::vector<Range> code_ranges_;   // reachable instruction bytes, merged
  std::vector<Range> read_ranges_;   // whole-program may-read windows
  std::vector<Range> write_ranges_;  // whole-program may-write windows
  bool reads_unknown_ = true;
  bool writes_unknown_ = true;
  // pc -> every reachable (function, block, index) decoding that address.
  std::map<u32, std::vector<Occurrence>> occurrences_;
};

}  // namespace s4e::dataflow
