#include "vp/devices/uart.hpp"

#include "common/strings.hpp"

namespace s4e::vp {

Result<u32> Uart::read(u32 offset, unsigned size) {
  (void)size;
  switch (offset) {
    case kTxData:
      return u32{0};
    case kRxData: {
      if (rx_queue_.empty()) return u32{0xffff'ffff};
      const u32 value = rx_queue_.front();
      rx_queue_.pop_front();
      ++rx_count_;
      return value;
    }
    case kStatus:
      return (rx_queue_.empty() ? 0u : 1u) | 0x2u;
    default:
      return Error(ErrorCode::kOutOfRange,
                   format("uart: read from bad offset 0x%x", offset));
  }
}

Status Uart::write(u32 offset, unsigned size, u32 value) {
  (void)size;
  switch (offset) {
    case kTxData:
      tx_log_.push_back(static_cast<char>(value & 0xff));
      ++tx_count_;
      return Status();
    default:
      return Error(ErrorCode::kOutOfRange,
                   format("uart: write to bad offset 0x%x", offset));
  }
}

void Uart::push_rx(std::string_view data) {
  for (char c : data) rx_queue_.push_back(static_cast<u8>(c));
}

}  // namespace s4e::vp
