// Lightweight error-handling primitives for the Scale4Edge ecosystem.
//
// The ecosystem tools are long-running batch analyses (assembly, CFG
// reconstruction, WCET analysis, fault campaigns); a recoverable failure in
// one workload must not abort a whole campaign, so fallible interfaces return
// Result<T> instead of throwing. Exceptions are reserved for programming
// errors (violated preconditions), reported via S4E_CHECK.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace s4e {

// Broad failure category; the message carries the detail.
enum class ErrorCode : std::uint8_t {
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kParseError,
  kEncodingError,
  kUnsupported,
  kStateError,
  kIoError,
  kAnalysisError,
};

// Human-readable name of an ErrorCode ("parse_error", ...).
const char* to_string(ErrorCode code) noexcept;

// Value type describing a recoverable failure.
class [[nodiscard]] Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  // "parse_error: unexpected token 'foo'"
  std::string to_string() const;

 private:
  ErrorCode code_;
  std::string message_;
};

// Minimal expected<T, Error>. Deliberately small: no monadic chaining,
// just construction, testing, and checked access.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return ok(); }

  // Precondition: ok(). Aborts with the error text otherwise.
  T& value() & {
    require_ok();
    return std::get<T>(data_);
  }
  const T& value() const& {
    require_ok();
    return std::get<T>(data_);
  }
  T&& value() && {
    require_ok();
    return std::get<T>(std::move(data_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Precondition: !ok().
  const Error& error() const {
    if (ok()) throw std::logic_error("Result::error() called on ok Result");
    return std::get<Error>(data_);
  }

  T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  void require_ok() const {
    if (!ok()) {
      throw std::runtime_error("Result::value() on error: " +
                               std::get<Error>(data_).to_string());
    }
  }

  std::variant<T, Error> data_;
};

// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;  // ok
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Status ok_status() { return Status(); }

  bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  const Error& error() const {
    if (ok()) throw std::logic_error("Status::error() called on ok Status");
    return *error_;
  }

  std::string to_string() const { return ok() ? "ok" : error_->to_string(); }

 private:
  std::optional<Error> error_;
};

// Precondition checking for programming errors (not recoverable failures).
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);

#define S4E_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::s4e::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define S4E_CHECK_MSG(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) ::s4e::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

// Propagate an error from a Result/Status expression inside a function that
// itself returns Result/Status.
#define S4E_TRY(var, expr)                    \
  auto var##_result = (expr);                 \
  if (!var##_result.ok()) {                   \
    return var##_result.error();              \
  }                                           \
  auto& var = *var##_result

#define S4E_TRY_STATUS(expr)          \
  do {                                \
    auto s4e_try_status = (expr);     \
    if (!s4e_try_status.ok()) {       \
      return s4e_try_status.error();  \
    }                                 \
  } while (false)

}  // namespace s4e
