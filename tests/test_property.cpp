// Cross-cutting property tests over *generated* programs: the strongest
// correctness evidence in the repo, because none of these inputs were
// written with the implementation in mind.
//
//   P1  cached and uncached execution are observationally identical
//   P2  ELF round-trip preserves execution exactly
//   P3  the QTA timeline chain holds on random torture programs
//   P4  timing-feature combinations keep the chain on random programs
//   P5  deep-state SDC detection strictly refines the masked class
#include <gtest/gtest.h>

#include "core/ecosystem.hpp"
#include "elf/elf32.hpp"
#include "fault/fault.hpp"
#include "testgen/testgen.hpp"

namespace s4e {
namespace {

std::vector<testgen::GeneratedProgram> programs_for_seed(u64 seed,
                                                         unsigned count) {
  testgen::TortureConfig config;
  config.seed = seed;
  config.programs = count;
  return testgen::torture_suite(config);
}

class TortureSeed : public ::testing::TestWithParam<u64> {};

TEST_P(TortureSeed, CachedAndUncachedAgree) {
  for (const auto& test : programs_for_seed(GetParam(), 3)) {
    auto program = assembler::assemble(test.source);
    ASSERT_TRUE(program.ok()) << test.name;

    vp::Machine cached;
    ASSERT_TRUE(cached.load_program(*program).ok());
    const auto cached_result = cached.run();

    vp::MachineConfig config;
    config.enable_tb_cache = false;
    vp::Machine uncached(config);
    ASSERT_TRUE(uncached.load_program(*program).ok());
    const auto uncached_result = uncached.run();

    EXPECT_EQ(cached_result.reason, uncached_result.reason) << test.name;
    EXPECT_EQ(cached_result.exit_code, uncached_result.exit_code);
    EXPECT_EQ(cached_result.instructions, uncached_result.instructions);
    EXPECT_EQ(cached_result.cycles, uncached_result.cycles);
    for (unsigned reg = 0; reg < isa::kGprCount; ++reg) {
      EXPECT_EQ(cached.cpu().read_gpr(reg), uncached.cpu().read_gpr(reg))
          << test.name << " x" << reg;
    }
  }
}

TEST_P(TortureSeed, ElfRoundTripIdenticalRun) {
  for (const auto& test : programs_for_seed(GetParam() + 1000, 2)) {
    auto program = assembler::assemble(test.source);
    ASSERT_TRUE(program.ok()) << test.name;
    auto image = elf::write_elf(*program);
    ASSERT_TRUE(image.ok());
    auto loaded = elf::read_elf(*image);
    ASSERT_TRUE(loaded.ok());

    core::Ecosystem ecosystem;
    auto direct = ecosystem.run(*program);
    auto via_elf = ecosystem.run(*loaded);
    ASSERT_TRUE(direct.ok() && via_elf.ok());
    EXPECT_EQ(direct->result.exit_code, via_elf->result.exit_code);
    EXPECT_EQ(direct->result.instructions, via_elf->result.instructions);
    EXPECT_EQ(direct->result.cycles, via_elf->result.cycles);
  }
}

TEST_P(TortureSeed, QtaChainOnRandomPrograms) {
  for (const auto& test : programs_for_seed(GetParam() + 2000, 2)) {
    core::Ecosystem ecosystem;
    auto program = ecosystem.build_source(test.source);
    ASSERT_TRUE(program.ok()) << test.name;
    auto outcome = ecosystem.run_qta(*program, test.name);
    ASSERT_TRUE(outcome.ok()) << test.name << ": "
                              << outcome.error().to_string();
    EXPECT_LE(outcome->report.observed_cycles,
              outcome->report.wc_path_cycles)
        << test.name;
    EXPECT_LE(outcome->report.wc_path_cycles, outcome->report.static_bound)
        << test.name;
    EXPECT_EQ(outcome->report.unknown_blocks, 0u) << test.name;
  }
}

TEST_P(TortureSeed, QtaChainWithTimingFeatures) {
  vp::MachineConfig config;
  config.timing.icache_miss_cycles = 10;
  config.timing.branch_predictor = true;
  core::Ecosystem ecosystem(config);
  for (const auto& test : programs_for_seed(GetParam() + 3000, 2)) {
    auto program = ecosystem.build_source(test.source);
    ASSERT_TRUE(program.ok()) << test.name;
    auto outcome = ecosystem.run_qta(*program, test.name);
    ASSERT_TRUE(outcome.ok()) << test.name;
    EXPECT_LE(outcome->report.observed_cycles,
              outcome->report.wc_path_cycles)
        << test.name;
    EXPECT_LE(outcome->report.wc_path_cycles, outcome->report.static_bound)
        << test.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TortureSeed,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// P5 — deep-state comparison can only move mutants from masked to SDC,
// never the other way, and it finds silent corruption on a workload whose
// final memory is not part of the output surface.
TEST(DeepSdc, RefinesMaskedClass) {
  auto workload = core::find_workload("bubble_sort");
  ASSERT_TRUE(workload.ok());
  auto program = assembler::assemble(workload->source);
  ASSERT_TRUE(program.ok());

  fault::CampaignConfig shallow;
  shallow.seed = 31337;
  shallow.mutant_count = 250;
  shallow.compare_memory = false;
  fault::Campaign shallow_campaign(*program, shallow);
  auto shallow_result = shallow_campaign.run();
  ASSERT_TRUE(shallow_result.ok());

  fault::CampaignConfig deep = shallow;
  deep.compare_memory = true;
  fault::Campaign deep_campaign(*program, deep);
  auto deep_result = deep_campaign.run();
  ASSERT_TRUE(deep_result.ok());

  // Same fault list (same seed), so mutant-by-mutant comparison is valid.
  ASSERT_EQ(shallow_result->mutants.size(), deep_result->mutants.size());
  unsigned moved = 0;
  for (std::size_t i = 0; i < deep_result->mutants.size(); ++i) {
    const auto shallow_outcome = shallow_result->mutants[i].outcome;
    const auto deep_outcome = deep_result->mutants[i].outcome;
    if (shallow_outcome == deep_outcome) continue;
    // The only allowed change: masked -> sdc.
    EXPECT_EQ(shallow_outcome, fault::Outcome::kMasked);
    EXPECT_EQ(deep_outcome, fault::Outcome::kSdc);
    ++moved;
  }
  // bubble_sort's sorted array lives in .data and is checked only by the
  // in-guest verifier; late memory corruption slips past the exit code, so
  // deep comparison must reclassify at least one mutant.
  EXPECT_GT(moved, 0u);
  EXPECT_EQ(deep_result->count(fault::Outcome::kMasked) + moved,
            shallow_result->count(fault::Outcome::kMasked));
}

TEST(DeepSdc, GoldenHashStable) {
  auto workload = core::find_workload("checksum");
  ASSERT_TRUE(workload.ok());
  auto program = assembler::assemble(workload->source);
  ASSERT_TRUE(program.ok());
  fault::CampaignConfig config;
  config.mutant_count = 1;
  fault::Campaign a(*program, config);
  fault::Campaign b(*program, config);
  auto ra = a.run();
  auto rb = b.run();
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->golden_memory_hash, rb->golden_memory_hash);
  EXPECT_NE(ra->golden_memory_hash, 0u);
}

}  // namespace
}  // namespace s4e
