#include "vp/cpu.hpp"

#include "common/strings.hpp"

namespace s4e::vp {

using namespace isa;

Result<u32> CsrFile::read(u16 address, const CounterView& counters) const {
  switch (address) {
    case kCsrMstatus: return mstatus;
    case kCsrMisa:
      // RV32 (MXL=1) with A, I and M: bits 0 ('A'), 8 ('I') and 12 ('M').
      return (1u << 30) | (1u << 0) | (1u << 8) | (1u << 12);
    case kCsrMie: return mie;
    case kCsrMtvec: return mtvec;
    case kCsrMscratch: return mscratch;
    case kCsrMepc: return mepc;
    case kCsrMcause: return mcause;
    case kCsrMtval: return mtval;
    case kCsrMip: return mip;
    case kCsrMcycle:
    case kCsrCycle: return static_cast<u32>(counters.cycles);
    case kCsrMcycleh:
    case kCsrCycleh: return static_cast<u32>(counters.cycles >> 32);
    case kCsrMinstret:
    case kCsrInstret: return static_cast<u32>(counters.instret);
    case kCsrMinstreth:
    case kCsrInstreth: return static_cast<u32>(counters.instret >> 32);
    case kCsrTime: return static_cast<u32>(counters.time);
    case kCsrTimeh: return static_cast<u32>(counters.time >> 32);
    case kCsrMvendorid: return 0;
    case kCsrMarchid: return 0x53344539;  // "S4E9"
    case kCsrMimpid: return 1;
    case kCsrMhartid: return counters.hartid;
    default:
      return Error(ErrorCode::kNotFound,
                   format("CSR 0x%03x not implemented", address));
  }
}

Status CsrFile::write(u16 address, u32 value) {
  if (csr_is_read_only(address)) {
    return Error(ErrorCode::kInvalidArgument,
                 format("write to read-only CSR 0x%03x", address));
  }
  switch (address) {
    case kCsrMstatus:
      // WARL: only MIE and MPIE are writable; MPP stays M.
      mstatus = (value & (kMstatusMie | kMstatusMpie)) | kMstatusMpp;
      return Status();
    case kCsrMisa:
      return Status();  // WARL: ignore
    case kCsrMie:
      mie = value & (kMieMtie | kMieMsie);
      return Status();
    case kCsrMtvec:
      mtvec = value & ~u32{2};  // mode bit 1 reserved
      return Status();
    case kCsrMscratch: mscratch = value; return Status();
    case kCsrMepc: mepc = value & ~u32{1}; return Status();
    case kCsrMcause: mcause = value; return Status();
    case kCsrMtval: mtval = value; return Status();
    case kCsrMip:
      return Status();  // MTIP is hardware-controlled; ignore
    case kCsrMcycle:
    case kCsrMcycleh:
    case kCsrMinstret:
    case kCsrMinstreth:
      return Status();  // counter writes ignored (QEMU-like)
    default:
      return Error(ErrorCode::kNotFound,
                   format("CSR 0x%03x not implemented", address));
  }
}

}  // namespace s4e::vp
