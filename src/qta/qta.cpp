#include "qta/qta.hpp"

#include "common/strings.hpp"

namespace s4e::qta {

namespace {
wcet::AnnotatedCfg reindexed(wcet::AnnotatedCfg cfg) {
  cfg.reindex();
  return cfg;
}
}  // namespace

PathAccumulator::PathAccumulator(const wcet::AnnotatedCfg& annotated)
    : annotated_(&annotated) {
  for (const wcet::AnnotatedEdge& edge : annotated_->edges) {
    edge_penalty_[(u64{edge.source} << 32) | edge.target] = edge.penalty;
  }
}

void PathAccumulator::step(u32 pc) {
  const wcet::AnnotatedBlock* block = annotated_->block_at(pc);
  if (block == nullptr) {
    // Not a block head — either mid-block (normal) or genuinely unannotated
    // code. Only the latter is worth counting: detect it by checking that
    // the address lies inside the block we are currently traversing.
    if (in_flight_ && pc >= prev_block_end_) {
      // Execution moved past the annotated region (e.g. a trap handler the
      // static analysis never saw).
      ++unknown_blocks_;
      in_flight_ = false;
    }
    return;
  }
  ++blocks_entered_;
  wc_path_cycles_ += block->wcet;
  // Transition cost. Intra-function transitions carry the exact worst-case
  // penalty the static analyzer put on the corresponding CFG edge (0 on
  // plain fall-throughs, the redirect penalty on taken edges, and — with a
  // branch predictor — on both directions of a conditional branch).
  // Cross-function transitions (call, return) are not in the edge table;
  // they are always front-end redirects, matched by the 2x penalty the
  // analyzer folds into each call site's weight.
  if (in_flight_) {
    auto it = edge_penalty_.find((u64{prev_block_start_} << 32) | pc);
    if (it != edge_penalty_.end()) {
      wc_path_cycles_ += it->second;
    } else if (annotated_->penalize_all_transitions ||
               pc != prev_block_end_) {
      wc_path_cycles_ += annotated_->redirect_penalty;
    }
  }
  prev_block_start_ = block->start;
  prev_block_end_ = block->end;
  in_flight_ = true;
}

QtaReport PathAccumulator::report(u64 observed_cycles) const {
  QtaReport report;
  report.observed_cycles = observed_cycles;
  report.wc_path_cycles = wc_path_cycles_;
  report.static_bound = annotated_->total_wcet;
  report.blocks_entered = blocks_entered_;
  report.unknown_blocks = unknown_blocks_;
  report.bound_violated = wc_path_cycles_ > annotated_->total_wcet;
  return report;
}

void PathAccumulator::reset() noexcept {
  wc_path_cycles_ = 0;
  blocks_entered_ = 0;
  unknown_blocks_ = 0;
  prev_block_start_ = 0;
  prev_block_end_ = 0;
  in_flight_ = false;
}

QtaPlugin::QtaPlugin(wcet::AnnotatedCfg annotated)
    : annotated_(reindexed(std::move(annotated))), path_(annotated_) {}

std::string QtaReport::to_string() const {
  std::string out;
  out += format("QTA report\n");
  out += format("  observed cycles        : %llu\n",
                static_cast<unsigned long long>(observed_cycles));
  out += format("  WC time, executed path : %llu  (%.2fx observed)\n",
                static_cast<unsigned long long>(wc_path_cycles),
                path_over_observed());
  out += format("  static WCET bound      : %llu  (%.2fx WC path)\n",
                static_cast<unsigned long long>(static_bound),
                bound_over_path());
  out += format("  annotated blocks hit   : %llu\n",
                static_cast<unsigned long long>(blocks_entered));
  if (unknown_blocks != 0) {
    out += format("  UNANNOTATED regions    : %llu\n",
                  static_cast<unsigned long long>(unknown_blocks));
  }
  if (bound_violated) {
    out += "  *** BOUND VIOLATED: executed path exceeds static WCET ***\n";
  }
  return out;
}

}  // namespace s4e::qta
