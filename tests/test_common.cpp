#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"

namespace s4e {
namespace {

TEST(Bits, ExtractBasic) {
  EXPECT_EQ(extract_bits(0xdeadbeef, 0, 4), 0xfu);
  EXPECT_EQ(extract_bits(0xdeadbeef, 4, 4), 0xeu);
  EXPECT_EQ(extract_bits(0xdeadbeef, 28, 4), 0xdu);
  EXPECT_EQ(extract_bits(0xffffffff, 0, 32), 0xffffffffu);
}

TEST(Bits, InsertBasic) {
  EXPECT_EQ(insert_bits(0, 0, 4, 0xf), 0xfu);
  EXPECT_EQ(insert_bits(0, 28, 4, 0xd), 0xd0000000u);
  EXPECT_EQ(insert_bits(0xffffffff, 8, 8, 0), 0xffff00ffu);
  // Field wider than width is masked.
  EXPECT_EQ(insert_bits(0, 0, 4, 0x1f), 0xfu);
}

TEST(Bits, InsertExtractRoundTrip) {
  for (unsigned lo = 0; lo < 28; lo += 3) {
    for (unsigned width = 1; width <= 32 - lo; width += 5) {
      const u32 field = 0x2aaaaaaau & ((width >= 32) ? ~u32{0}
                                                     : ((u32{1} << width) - 1));
      const u32 word = insert_bits(0, lo, width, field);
      EXPECT_EQ(extract_bits(word, lo, width), field)
          << "lo=" << lo << " width=" << width;
    }
  }
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0xfff, 12), -1);
  EXPECT_EQ(sign_extend(0x7ff, 12), 2047);
  EXPECT_EQ(sign_extend(0x800, 12), -2048);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0x1, 1), -1);
}

TEST(Bits, FitsSigned) {
  EXPECT_TRUE(fits_signed(2047, 12));
  EXPECT_FALSE(fits_signed(2048, 12));
  EXPECT_TRUE(fits_signed(-2048, 12));
  EXPECT_FALSE(fits_signed(-2049, 12));
}

TEST(Bits, FlipAndTest) {
  u32 value = 0;
  value = flip_bit(value, 7);
  EXPECT_TRUE(test_bit(value, 7));
  value = flip_bit(value, 7);
  EXPECT_FALSE(test_bit(value, 7));
  EXPECT_EQ(popcount32(0xff00ff00u), 16u);
}

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.to_string(), "ok");
}

TEST(Status, CarriesError) {
  Status status = Error(ErrorCode::kParseError, "bad token");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kParseError);
  EXPECT_EQ(status.to_string(), "parse_error: bad token");
}

TEST(ResultT, ValueAndError) {
  Result<int> ok_result = 42;
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 42);

  Result<int> err_result = Error(ErrorCode::kNotFound, "nope");
  ASSERT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(err_result.value_or(-1), -1);
  EXPECT_THROW(err_result.value(), std::runtime_error);
}

TEST(Check, ThrowsLogicError) {
  EXPECT_THROW(S4E_CHECK(1 == 2), std::logic_error);
  EXPECT_NO_THROW(S4E_CHECK(1 == 1));
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const i64 v = rng.next_in_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  foo  "), "foo");
  EXPECT_EQ(trim("foo"), "foo");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, Split) {
  auto fields = split("a,b,,c", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "");
}

TEST(Strings, SplitWhitespace) {
  auto fields = split_whitespace("  foo  bar\tbaz ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "bar");
}

TEST(Strings, ParseIntegerDecimal) {
  EXPECT_EQ(*parse_integer("42"), 42);
  EXPECT_EQ(*parse_integer("-42"), -42);
  EXPECT_EQ(*parse_integer("+7"), 7);
}

TEST(Strings, ParseIntegerHexBinary) {
  EXPECT_EQ(*parse_integer("0x10"), 16);
  EXPECT_EQ(*parse_integer("0xFF"), 255);
  EXPECT_EQ(*parse_integer("0b101"), 5);
  EXPECT_EQ(*parse_integer("-0x10"), -16);
}

TEST(Strings, ParseIntegerRejectsGarbage) {
  EXPECT_FALSE(parse_integer("").ok());
  EXPECT_FALSE(parse_integer("0xZZ").ok());
  EXPECT_FALSE(parse_integer("12abc").ok());
  EXPECT_FALSE(parse_integer("-").ok());
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(format("0x%08x", 0xabcu), "0x00000abc");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_right("7", 3), "7  ");
  EXPECT_EQ(pad_left("long", 2), "long");
}

}  // namespace
}  // namespace s4e
