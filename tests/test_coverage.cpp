#include <gtest/gtest.h>

#include "core/ecosystem.hpp"
#include "coverage/coverage.hpp"
#include "testgen/testgen.hpp"

namespace s4e::coverage {
namespace {

CoverageData measure(const std::string& source) {
  core::Ecosystem ecosystem;
  auto program = ecosystem.build_source(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().to_string());
  auto data = ecosystem.measure_coverage(*program);
  EXPECT_TRUE(data.ok());
  return *data;
}

TEST(Coverage, CountsExecutedOps) {
  auto data = measure(R"(
    addi t0, zero, 3
    add t1, t0, t0
    add t2, t1, t0
    li a7, 93
    li a0, 0
    ecall
  )");
  EXPECT_EQ(data.op_counts[static_cast<unsigned>(isa::Op::kAdd)], 2u);
  // The two li's expand to addi, plus the explicit addi.
  EXPECT_EQ(data.op_counts[static_cast<unsigned>(isa::Op::kAddi)], 3u);
  EXPECT_EQ(data.op_counts[static_cast<unsigned>(isa::Op::kEcall)], 1u);
  EXPECT_EQ(data.total_instructions, 6u);
}

TEST(Coverage, GprReadWriteTracking) {
  auto data = measure(R"(
    addi t0, zero, 1     # writes x5, reads x0
    add t1, t0, t0       # writes x6, reads x5
    li a7, 93
    li a0, 0
    ecall
  )");
  EXPECT_GT(data.gpr_writes[5], 0u);
  EXPECT_GT(data.gpr_reads[5], 0u);
  EXPECT_GT(data.gpr_writes[6], 0u);
  EXPECT_EQ(data.gpr_reads[6], 0u);
  // x0 reads don't make it "covered" (excluded from the metric).
  EXPECT_GT(data.gpr_reads[0], 0u);
}

TEST(Coverage, CsrAccessTracked) {
  auto data = measure(R"(
    csrr t0, mscratch
    csrw mscratch, t0
    li a7, 93
    li a0, 0
    ecall
  )");
  EXPECT_EQ(data.csrs_accessed.count(isa::kCsrMscratch), 1u);
  EXPECT_GT(data.csr_coverage(), 0.0);
}

TEST(Coverage, MergeIsUnion) {
  auto a = measure(R"(
    add t0, t1, t2
    li a7, 93
    li a0, 0
    ecall
  )");
  auto b = measure(R"(
    mul s3, s4, s5
    li a7, 93
    li a0, 0
    ecall
  )");
  const u64 total_a = a.total_instructions;
  CoverageData merged = a;
  merged.merge(b);
  EXPECT_GT(merged.op_counts[static_cast<unsigned>(isa::Op::kAdd)], 0u);
  EXPECT_GT(merged.op_counts[static_cast<unsigned>(isa::Op::kMul)], 0u);
  EXPECT_EQ(merged.total_instructions, total_a + b.total_instructions);
  EXPECT_GE(merged.gprs_covered(), a.gprs_covered());
  EXPECT_GE(merged.gprs_covered(), b.gprs_covered());
}

TEST(Coverage, ModuleBreakdown) {
  auto data = measure(R"(
    mul t0, t1, t2
    div t3, t4, t5
    li a7, 93
    li a0, 0
    ecall
  )");
  EXPECT_EQ(data.ops_covered(isa::IsaModule::kM), 2u);
  EXPECT_EQ(CoverageData::ops_total(isa::IsaModule::kM), 8u);
  EXPECT_NEAR(data.op_coverage(isa::IsaModule::kM), 0.25, 1e-9);
  EXPECT_EQ(data.ops_covered(isa::IsaModule::kZicsr), 0u);
}

TEST(Coverage, UncoveredListShrinksWithMoreTests) {
  auto small = measure("li a7, 93\n    li a0, 0\n    ecall\n");
  const auto missing_small = small.uncovered_ops();
  auto bigger = measure(R"(
    add t0, t1, t2
    sub t3, t4, t5
    li a7, 93
    li a0, 0
    ecall
  )");
  CoverageData merged = small;
  merged.merge(bigger);
  EXPECT_LT(merged.uncovered_ops().size(), missing_small.size());
}

TEST(Coverage, AddressedMemorySpaceTracked) {
  auto data = measure(R"(
    la t0, buf
    sw t1, 0(t0)     # touches 4 bytes
    lbu t2, 8(t0)    # touches 1 byte
    li a7, 93
    li a0, 0
    ecall
.data
buf:
    .space 16
  )");
  EXPECT_EQ(data.loads, 1u);
  EXPECT_EQ(data.stores, 1u);
  EXPECT_EQ(data.addresses_touched.size(), 5u);
  // 5 of 16 buffer bytes touched.
  EXPECT_NEAR(data.memory_coverage(0x8001'0000, 16), 5.0 / 16.0, 1e-9);
  // Outside the window: nothing.
  EXPECT_EQ(data.memory_coverage(0x9000'0000, 16), 0.0);
}

TEST(Coverage, MemorySpaceMergesAsUnion) {
  auto a = measure(R"(
    la t0, buf
    sw t1, 0(t0)
    li a7, 93
    li a0, 0
    ecall
.data
buf:
    .space 8
  )");
  auto b = measure(R"(
    la t0, buf
    sw t1, 4(t0)
    li a7, 93
    li a0, 0
    ecall
.data
buf:
    .space 8
  )");
  CoverageData merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.addresses_touched.size(), 8u);
  EXPECT_NEAR(merged.memory_coverage(0x8001'0000, 8), 1.0, 1e-9);
}

TEST(Coverage, ReportContainsSections) {
  auto data = measure("li a7, 93\n    li a0, 0\n    ecall\n");
  const std::string report = to_report(data, "smoke");
  EXPECT_NE(report.find("instruction types"), std::string::npos);
  EXPECT_NE(report.find("GPR coverage"), std::string::npos);
  EXPECT_NE(report.find("RV32M"), std::string::npos);
  EXPECT_NE(report.find("memory accesses"), std::string::npos);
  EXPECT_NE(report.find("uncovered instructions:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Generated suites: run them through the pipeline.

core::Ecosystem& shared_ecosystem() {
  static core::Ecosystem ecosystem;
  return ecosystem;
}

CoverageData suite_coverage(const std::vector<testgen::GeneratedProgram>& suite,
                            unsigned* failures = nullptr) {
  CoverageData merged;
  for (const auto& test : suite) {
    auto program = shared_ecosystem().build_source(test.source);
    EXPECT_TRUE(program.ok())
        << test.name << ": "
        << (program.ok() ? "" : program.error().to_string());
    if (!program.ok()) continue;
    auto data = shared_ecosystem().measure_coverage(*program);
    EXPECT_TRUE(data.ok()) << test.name;
    if (data.ok()) merged.merge(*data);
    auto run = shared_ecosystem().run(*program);
    EXPECT_TRUE(run.ok());
    if (run.ok() && failures != nullptr &&
        !(run->result.normal_exit() && run->result.exit_code == 0)) {
      ++*failures;
    }
  }
  return merged;
}

TEST(Suites, ArchitecturalTestsAllPass) {
  unsigned failures = 0;
  auto data = suite_coverage(testgen::architectural_suite(), &failures);
  EXPECT_EQ(failures, 0u);
  // Directed tests cover every instruction type by construction.
  EXPECT_EQ(data.ops_covered(), isa::kOpCount);
}

TEST(Suites, UnitSuitePassesAndCoversClasses) {
  unsigned failures = 0;
  auto data = suite_coverage(testgen::unit_suite(), &failures);
  EXPECT_EQ(failures, 0u);
  EXPECT_GT(data.op_coverage(), 0.5);
  EXPECT_EQ(data.ops_covered(isa::IsaModule::kM), 8u);
}

TEST(Suites, TortureProgramsTerminateNormally) {
  testgen::TortureConfig config;
  config.programs = 5;
  config.seed = 42;
  unsigned failures = 0;
  auto data = suite_coverage(testgen::torture_suite(config), &failures);
  EXPECT_EQ(failures, 0u);
  // Random programs hit most GPRs — that's their role in the union.
  EXPECT_GT(data.gpr_coverage(), 0.9);
}

TEST(Suites, TortureIsSeedDeterministic) {
  testgen::TortureConfig config;
  config.programs = 2;
  config.seed = 7;
  auto a = testgen::torture_suite(config);
  auto b = testgen::torture_suite(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source);
  }
  config.seed = 8;
  auto c = testgen::torture_suite(config);
  EXPECT_NE(a[0].source, c[0].source);
}

TEST(Suites, UnifiedSuiteReachesFullRegisterCoverage) {
  testgen::TortureConfig config;
  config.programs = 6;
  config.seed = 123;
  CoverageData merged = suite_coverage(testgen::architectural_suite());
  merged.merge(suite_coverage(testgen::unit_suite()));
  merged.merge(suite_coverage(testgen::torture_suite(config)));
  // The union reaches 100% GPR coverage (the MBMV'21 result) and near-total
  // instruction-type coverage.
  EXPECT_EQ(merged.gpr_coverage(), 1.0);
  EXPECT_GE(merged.op_coverage(), 0.98);
}

}  // namespace
}  // namespace s4e::coverage
