// Deterministic PRNG (splitmix64) used by the test generator and the fault
// campaign. Campaign results must be reproducible from a seed alone, so no
// std::random_device and no global state.
#pragma once

#include <cstdint>

#include "common/bits.hpp"
#include "common/status.hpp"

namespace s4e {

class Rng {
 public:
  explicit Rng(u64 seed) noexcept : state_(seed + kGamma) {}

  // Uniform 64-bit value.
  u64 next_u64() noexcept {
    u64 z = (state_ += kGamma);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  u32 next_u32() noexcept { return static_cast<u32>(next_u64() >> 32); }

  // Uniform in [0, bound). Precondition: bound > 0.
  u32 next_below(u32 bound) noexcept {
    // Lemire's multiply-shift rejection-free approximation is fine here:
    // statistical quality is irrelevant for stimulus generation.
    return static_cast<u32>((u64{next_u32()} * bound) >> 32);
  }

  // Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  i64 next_in_range(i64 lo, i64 hi) noexcept {
    const u64 span = static_cast<u64>(hi - lo) + 1;
    return lo + static_cast<i64>(next_u64() % span);
  }

  // Bernoulli with probability numer/denom.
  bool chance(u32 numer, u32 denom) noexcept {
    return next_below(denom) < numer;
  }

  // Split off an independent stream (for per-mutant reproducibility).
  Rng fork() noexcept { return Rng(next_u64()); }

 private:
  static constexpr u64 kGamma = 0x9e3779b97f4a7c15ULL;
  u64 state_;
};

}  // namespace s4e
