file(REMOVE_RECURSE
  "CMakeFiles/periodic_task.dir/periodic_task.cpp.o"
  "CMakeFiles/periodic_task.dir/periodic_task.cpp.o.d"
  "periodic_task"
  "periodic_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/periodic_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
