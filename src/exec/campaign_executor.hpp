// Deterministic fan-out driver for campaign-style workloads: N independent
// jobs (one guest execution per fault/mutant), each writing its result into
// a slot chosen by submission index.
//
// Determinism contract: because every job owns its slot and aggregation
// happens *after* the barrier by walking the slots in submission order, the
// output of run() is bit-identical to a serial loop over the same jobs —
// regardless of thread count or OS scheduling. jobs == 1 bypasses the pool
// entirely and runs the jobs inline on the caller's thread (the exact
// pre-parallelism code path).
//
// Progress contract: workers bump atomic counters (jobs done + a caller-
// defined 8-bucket histogram); a monitor thread may take consistent-enough
// snapshots at any time without perturbing the workers.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>

#include "common/bits.hpp"
#include "exec/pool.hpp"

namespace s4e::exec {

// Live counters for an in-flight campaign. Readable from any thread.
class CampaignProgress {
 public:
  static constexpr unsigned kBuckets = 8;

  struct Snapshot {
    u64 total = 0;
    u64 completed = 0;
    u64 buckets[kBuckets] = {};

    double fraction() const noexcept {
      return total == 0 ? 0.0
                        : static_cast<double>(completed) /
                              static_cast<double>(total);
    }
  };

  void begin(u64 total) noexcept {
    total_.store(total, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  }

  // Called by workers once per finished job; `bucket` indexes the caller's
  // outcome histogram (fault Outcome / mutation Verdict).
  void record(unsigned bucket) noexcept {
    if (bucket < kBuckets) {
      buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    }
    completed_.fetch_add(1, std::memory_order_release);
  }

  Snapshot snapshot() const noexcept {
    Snapshot snap;
    snap.completed = completed_.load(std::memory_order_acquire);
    snap.total = total_.load(std::memory_order_relaxed);
    for (unsigned i = 0; i < kBuckets; ++i) {
      snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return snap;
  }

 private:
  std::atomic<u64> total_{0};
  std::atomic<u64> completed_{0};
  std::atomic<u64> buckets_[kBuckets]{};
};

class CampaignExecutor {
 public:
  // jobs == 0 resolves to std::thread::hardware_concurrency().
  explicit CampaignExecutor(unsigned jobs)
      : jobs_(ThreadPool::resolve_jobs(jobs)) {}

  unsigned jobs() const noexcept { return jobs_; }

  // Run job(i) for every i in [0, count). Serial (inline) when jobs() == 1,
  // thread-pooled otherwise; returns after all jobs finished. The first
  // exception thrown by any job is rethrown here (remaining queued jobs are
  // still executed — campaign slots must all be filled or failed, never
  // silently skipped).
  void run(std::size_t count, const std::function<void(std::size_t)>& job);

  // Worker-affine variant: run job(worker, i) for every i in [0, count),
  // where `worker` identifies the executing lane (0..jobs()-1, stable for
  // that lane's whole lifetime). One long-lived pool task per lane claims
  // indices from a shared atomic counter, so a lane can keep worker-local
  // state (e.g. a reusable vp::Machine) across the jobs it executes while
  // load balancing stays dynamic. Determinism is unchanged: slots are still
  // indexed by submission order. jobs() == 1 runs inline as lane 0. Throws
  // the first captured job exception after all lanes drained; a lane that
  // throws stops claiming further indices, the remaining lanes finish the
  // campaign.
  void run_affine(std::size_t count,
                  const std::function<void(unsigned, std::size_t)>& job);

 private:
  unsigned jobs_;
};

}  // namespace s4e::exec
