// Bit-field helpers shared by the decoder, encoder, assembler and fault
// injector. All operate on uint32_t words (RV32, XLEN = 32).
#pragma once

#include <cstdint>

#include "common/status.hpp"

namespace s4e {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

// Extract bits [lo, lo+width) of `value`, right-aligned.
constexpr u32 extract_bits(u32 value, unsigned lo, unsigned width) {
  return (width >= 32) ? (value >> lo)
                       : ((value >> lo) & ((u32{1} << width) - 1));
}

// Insert the low `width` bits of `field` at position `lo` of `value`.
constexpr u32 insert_bits(u32 value, unsigned lo, unsigned width, u32 field) {
  const u32 mask = (width >= 32) ? ~u32{0} : (((u32{1} << width) - 1) << lo);
  return (value & ~mask) | ((field << lo) & mask);
}

// Sign-extend the low `width` bits of `value` to 32 bits.
constexpr i32 sign_extend(u32 value, unsigned width) {
  const unsigned shift = 32 - width;
  return static_cast<i32>(value << shift) >> shift;
}

// True if `value` fits in a signed `width`-bit immediate.
constexpr bool fits_signed(i64 value, unsigned width) {
  const i64 lo = -(i64{1} << (width - 1));
  const i64 hi = (i64{1} << (width - 1)) - 1;
  return value >= lo && value <= hi;
}

// True if `value` fits in an unsigned `width`-bit immediate.
constexpr bool fits_unsigned(i64 value, unsigned width) {
  return value >= 0 && value < (i64{1} << width);
}

// Count of set bits.
constexpr unsigned popcount32(u32 value) {
  unsigned count = 0;
  while (value != 0) {
    value &= value - 1;
    ++count;
  }
  return count;
}

// Saturating u64 arithmetic for instruction budgets: campaign hang budgets
// and run limits are products/sums of values callers control (golden
// instruction counts, user-supplied factors), and a silent wraparound turns
// "practically unbounded" into "stop immediately".
constexpr u64 saturating_add(u64 a, u64 b) {
  return a > ~u64{0} - b ? ~u64{0} : a + b;
}

constexpr u64 saturating_mul(u64 a, u64 b) {
  if (a == 0 || b == 0) return 0;
  return a > ~u64{0} / b ? ~u64{0} : a * b;
}

// Flip bit `bit` (0-based) of `value`.
constexpr u32 flip_bit(u32 value, unsigned bit) { return value ^ (u32{1} << bit); }

// Test bit `bit` of `value`.
constexpr bool test_bit(u32 value, unsigned bit) {
  return ((value >> bit) & 1u) != 0;
}

}  // namespace s4e
