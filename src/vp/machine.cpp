#include "vp/machine.hpp"

#include "common/log.hpp"
#include "common/strings.hpp"
#include "isa/decoder.hpp"
#include "isa/rvc.hpp"

// The C-API handle just wraps the Machine pointer; defined here so both
// machine.cpp and plugin_api.cpp see the same layout.
struct s4e_vm {
  s4e::vp::Machine* machine;
};

namespace s4e::vp {

using isa::Instr;
using isa::Op;

std::string_view to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kExitEcall: return "exit-ecall";
    case StopReason::kExitTestDevice: return "exit-testdev";
    case StopReason::kExitRequested: return "exit-requested";
    case StopReason::kEbreak: return "ebreak";
    case StopReason::kTrapUnhandled: return "trap-unhandled";
    case StopReason::kMaxInstructions: return "max-instructions";
    case StopReason::kWfiHalt: return "wfi-halt";
    case StopReason::kDebugBreak: return "debug-break";
    case StopReason::kDebugWatch: return "debug-watch";
    case StopReason::kDebugStep: return "debug-step";
    case StopReason::kDebugInterrupt: return "debug-interrupt";
    case StopReason::kDebugSlice: return "debug-slice";
  }
  return "?";
}

Machine::Machine(const MachineConfig& config)
    : config_(config), timing_(config.timing) {
  bus_.add_ram(config_.ram_base, config_.ram_size);
  if (config_.map_uart) {
    auto uart = std::make_unique<Uart>();
    uart_ = uart.get();
    bus_.add_device(Uart::kDefaultBase, Uart::kWindowSize, std::move(uart));
  }
  if (config_.map_clint) {
    auto clint = std::make_unique<Clint>();
    clint_ = clint.get();
    bus_.add_device(Clint::kDefaultBase, Clint::kWindowSize, std::move(clint));
  }
  if (config_.map_gpio) {
    auto gpio = std::make_unique<Gpio>();
    gpio_ = gpio.get();
    bus_.add_device(Gpio::kDefaultBase, Gpio::kWindowSize, std::move(gpio));
  }
  if (config_.map_testdev) {
    auto testdev = std::make_unique<TestDevice>([this](int code) {
      if (!pending_stop_) {
        pending_stop_ = PendingStop{StopReason::kExitTestDevice, code, 0, ""};
      }
    });
    bus_.add_device(TestDevice::kDefaultBase, TestDevice::kWindowSize,
                    std::move(testdev));
  }
  vm_handle_ = std::make_unique<s4e_vm>(s4e_vm{this});
  reset();
}

Machine::~Machine() = default;

s4e_vm* Machine::vm_handle() noexcept { return vm_handle_.get(); }

void Machine::reset(bool clear_ram) {
  cpu_ = CpuState{};
  cpu_.pc = config_.ram_base;
  // Stack grows down from the top of RAM; keep a 16-byte red zone.
  cpu_.write_gpr(2, config_.ram_base + config_.ram_size - 16);
  icount_ = 0;
  cycles_ = 0;
  pending_stop_.reset();
  debug_stop_request_ = false;
  update_debug_check();
  tb_cache_.flush();
  if (config_.timing.icache_miss_cycles != 0) {
    icache_tags_.assign(config_.timing.icache_lines, ~u32{0});
  } else {
    icache_tags_.clear();
  }
  icache_misses_ = 0;
  bimodal_.fill(0);
  bus_.reset_devices();
  if (clear_ram) {
    std::vector<u8> zeros(config_.ram_size, 0);
    (void)bus_.ram_write(config_.ram_base, zeros.data(), config_.ram_size);
  }
}

void Machine::save_state(Snapshot& snap) {
  snap.cpu = cpu_;
  snap.icount = icount_;
  snap.cycles = cycles_;
  snap.icache_misses = icache_misses_;
  snap.icache_tags = icache_tags_;
  snap.bimodal = bimodal_;
  bus_.ram_snapshot(snap.ram);
  bus_.save_device_state(snap.device_state);
  snap.valid = true;
  ++snap_stats_.snapshots;
}

void Machine::restore_state(const Snapshot& snap) {
  S4E_CHECK_MSG(snap.valid, "restore from an empty Snapshot");
  cpu_ = snap.cpu;
  icount_ = snap.icount;
  cycles_ = snap.cycles;
  icache_misses_ = snap.icache_misses;
  icache_tags_ = snap.icache_tags;
  bimodal_ = snap.bimodal;
  pending_stop_.reset();
  tb_flush_pending_ = false;
  scratch_block_.reset();
  // Dirty pages carry everything the run wrote — including patched code, so
  // invalidating the blocks on restored pages is exactly what keeps the
  // warm TB cache consistent with the restored RAM.
  std::vector<std::pair<u32, u32>> restored;
  snap_stats_.pages_copied += bus_.ram_restore(snap.ram, &restored);
  snap_stats_.pages_total += bus_.ram_pages();
  for (const auto& [address, size] : restored) {
    snap_stats_.tb_blocks_invalidated +=
        tb_cache_.invalidate_range(address, size);
  }
  bus_.restore_device_state(snap.device_state);
  ++snap_stats_.restores;
}

void Machine::invalidate_code(u32 address, u32 size) {
  tb_cache_.invalidate_range(address, size);
  scratch_block_.reset();
}

void Machine::add_breakpoint(u32 address) {
  if (!breakpoints_.insert(address).second) return;
  // A block translated before this insert may carry the breakpointed
  // instruction mid-block where the dispatch check cannot see it; drop any
  // such block so retranslation splits at the breakpoint.
  tb_cache_.invalidate_range(address, 2);
  scratch_block_.reset();
  update_debug_check();
}

bool Machine::remove_breakpoint(u32 address) {
  if (breakpoints_.erase(address) == 0) return false;
  // Let the splits around the removed breakpoint re-merge into full blocks.
  tb_cache_.invalidate_range(address, 2);
  scratch_block_.reset();
  update_debug_check();
  return true;
}

bool Machine::has_breakpoint(u32 address) const noexcept {
  return breakpoints_.count(address) != 0;
}

void Machine::clear_breakpoints() {
  for (u32 address : breakpoints_) tb_cache_.invalidate_range(address, 2);
  breakpoints_.clear();
  scratch_block_.reset();
  update_debug_check();
}

void Machine::add_watchpoint(u32 address, u32 length, WatchKind kind) {
  const Watchpoint wp{address, length == 0 ? 1 : length, kind};
  for (const Watchpoint& existing : watchpoints_) {
    if (existing == wp) return;
  }
  watchpoints_.push_back(wp);
}

bool Machine::remove_watchpoint(u32 address, u32 length, WatchKind kind) {
  const Watchpoint wp{address, length == 0 ? 1 : length, kind};
  for (auto it = watchpoints_.begin(); it != watchpoints_.end(); ++it) {
    if (*it == wp) {
      watchpoints_.erase(it);
      return true;
    }
  }
  return false;
}

void Machine::clear_watchpoints() { watchpoints_.clear(); }

void Machine::check_watchpoints(u32 address, unsigned size, bool is_store) {
  if (pending_stop_) return;
  for (const Watchpoint& wp : watchpoints_) {
    const bool kind_matches =
        wp.kind == WatchKind::kAccess ||
        (is_store ? wp.kind == WatchKind::kWrite
                  : wp.kind == WatchKind::kRead);
    if (!kind_matches) continue;
    if (address < wp.address + wp.length && address + size > wp.address) {
      PendingStop stop{StopReason::kDebugWatch, 0, 0,
                       format("watchpoint at 0x%08x (%s access to 0x%08x)",
                              wp.address,
                              is_store ? "store" : "load", address),
                       address, wp.kind};
      pending_stop_ = std::move(stop);
      return;
    }
  }
}

void Machine::clear_plugins() noexcept {
  tb_trans_cbs_.clear();
  tb_exec_cbs_.clear();
  insn_exec_cbs_.clear();
  mem_cbs_.clear();
  trap_cbs_.clear();
  exit_cbs_.clear();
}

Status Machine::load_program(const assembler::Program& program) {
  for (const auto& section : program.sections) {
    if (section.bytes.empty()) continue;
    S4E_TRY_STATUS(bus_.ram_write(section.base, section.bytes.data(),
                                  static_cast<u32>(section.bytes.size())));
  }
  cpu_.pc = program.entry;
  tb_cache_.flush();
  return Status();
}

s4e_insn_info Machine::to_insn_info(const Instr& instr, u32 address) {
  s4e_insn_info info{};
  info.address = address;
  info.encoding = instr.raw;
  info.op = static_cast<u16>(instr.op);
  info.op_class = static_cast<u8>(instr.info().op_class);
  info.rd = instr.rd;
  info.rs1 = instr.rs1;
  info.rs2 = instr.rs2;
  info.csr = instr.csr;
  info.imm = instr.imm;
  return info;
}

TranslationBlock* Machine::translate(u32 pc) {
  auto block = std::make_unique<TranslationBlock>();
  block->start = pc;
  u32 address = pc;
  while (block->insns.size() < TbCache::kMaxBlockInsns) {
    // A debug breakpoint must sit at a block head so the per-block dispatch
    // check can stop before executing it: end the block when the *next*
    // instruction is breakpointed. (A breakpoint at the block's own start is
    // fine — dispatch already stopped there, or we are resuming over it.)
    if (!breakpoints_.empty() && !block->insns.empty() &&
        breakpoints_.count(address) != 0) {
      break;
    }
    // Fetch the first 16-bit parcel to distinguish RVC from 32-bit forms.
    auto half = bus_.fetch_half(address);
    if (!half.ok()) {
      if (block->insns.empty()) {
        // Instruction access fault at the block head.
        take_trap(1 /* instruction access fault */, address, false);
        return nullptr;
      }
      break;  // fault will be taken when (if) execution reaches it
    }
    Instr instr;
    if (isa::is_compressed(static_cast<u16>(*half))) {
      auto decompressed = isa::decompress(static_cast<u16>(*half));
      if (!decompressed.ok()) {
        if (block->insns.empty()) {
          take_trap(kCauseIllegalInstruction, *half, false);
          return nullptr;
        }
        break;
      }
      instr = *decompressed;
    } else {
      auto word = bus_.fetch_word(address);
      if (!word.ok() || !isa::decoder().try_decode(*word, instr)) {
        if (block->insns.empty()) {
          take_trap(kCauseIllegalInstruction, word.ok() ? *word : *half,
                    false);
          return nullptr;
        }
        break;
      }
    }
    block->insns.push_back(instr);
    address += instr.length;
    if (instr.is_control_flow()) break;
    // WFI must end the block: the timer interrupt it waits for is only
    // delivered at block boundaries.
    if (instr.op == Op::kWfi) break;
  }
  block->byte_size = address - pc;

  if (!tb_trans_cbs_.empty()) {
    std::vector<s4e_insn_info> infos;
    infos.reserve(block->insns.size());
    u32 a = block->start;
    for (const Instr& instr : block->insns) {
      infos.push_back(to_insn_info(instr, a));
      a += instr.length;
    }
    s4e_tb_info tb_info{block->start, static_cast<u32>(infos.size()),
                        infos.data()};
    for (const auto& reg : tb_trans_cbs_) {
      reg.callback(reg.userdata, vm_handle(), &tb_info);
    }
  }

  if (config_.enable_tb_cache) {
    return tb_cache_.insert(std::move(block));
  }
  // Uncached (pure-interpreter ablation): hand the block to a scratch slot.
  scratch_block_ = std::move(block);
  return scratch_block_.get();
}

void Machine::take_trap(u32 cause, u32 tval, bool interrupt) {
  if (!trap_cbs_.empty()) {
    s4e_trap_event event{cause | (interrupt ? kCauseInterrupt : 0u),
                         cpu_.pc, tval};
    for (const auto& reg : trap_cbs_) {
      reg.callback(reg.userdata, vm_handle(), &event);
    }
  }
  CsrFile& csr = cpu_.csr;
  if (csr.mtvec == 0) {
    // No handler installed: stop the simulation (fault campaigns classify
    // this as a crash).
    if (!pending_stop_) {
      StopReason reason = StopReason::kTrapUnhandled;
      if (!interrupt && cause == kCauseBreakpoint) reason = StopReason::kEbreak;
      pending_stop_ = PendingStop{
          reason, -1, cause | (interrupt ? kCauseInterrupt : 0u),
          format("unhandled trap cause=%u tval=0x%08x at pc=0x%08x", cause,
                 tval, cpu_.pc)};
    }
    return;
  }
  csr.mcause = cause | (interrupt ? kCauseInterrupt : 0u);
  csr.mepc = cpu_.pc;
  csr.mtval = tval;
  // Push MIE -> MPIE, clear MIE.
  const bool mie = (csr.mstatus & kMstatusMie) != 0;
  csr.mstatus &= ~(kMstatusMie | kMstatusMpie);
  if (mie) csr.mstatus |= kMstatusMpie;
  const u32 base = csr.mtvec & ~u32{3};
  const bool vectored = (csr.mtvec & 3) == 1;
  cpu_.pc = (vectored && interrupt) ? base + 4 * cause : base;
  cycles_ += timing_.params().trap_cycles;
}

void Machine::check_interrupts() {
  if (clint_ == nullptr) return;
  if (clint_->timer_pending()) {
    cpu_.csr.mip |= kMipMtip;
  } else {
    cpu_.csr.mip &= ~kMipMtip;
  }
  if ((cpu_.csr.mstatus & kMstatusMie) != 0 &&
      (cpu_.csr.mie & kMieMtie) != 0 && (cpu_.csr.mip & kMipMtip) != 0) {
    take_trap(7, 0, true);
  }
}

void Machine::probe_icache(u32 block_pc) {
  if (icache_tags_.empty()) return;
  const TimingParams& params = timing_.params();
  const u32 line = block_pc / params.icache_line_bytes;
  const u32 index = line & (params.icache_lines - 1);
  if (icache_tags_[index] != line) {
    icache_tags_[index] = line;
    cycles_ += params.icache_miss_cycles;
    ++icache_misses_;
  }
}

void Machine::fire_mem_cb(u32 vaddr, u32 value, unsigned size, bool is_store) {
  s4e_mem_event event{current_insn_pc_, vaddr, value, static_cast<u8>(size),
                      static_cast<u8>(is_store ? 1 : 0)};
  for (const auto& reg : mem_cbs_) {
    reg.callback(reg.userdata, vm_handle(), &event);
  }
}

bool Machine::execute(const Instr& in) {
  const u32 pc = cpu_.pc;
  current_insn_pc_ = pc;
  u32 next_pc = pc + in.length;
  bool redirect = false;
  bool mmio = false;
  const u32 rs1 = cpu_.read_gpr(in.rs1);
  const u32 rs2 = cpu_.read_gpr(in.rs2);
  const i32 srs1 = static_cast<i32>(rs1);
  const i32 srs2 = static_cast<i32>(rs2);

  // Charge the timing model exactly once per executed instruction, including
  // the paths that stop the run (traps, exits): a stopping instruction still
  // consumed pipeline time, and the cycles >= instructions invariant relies
  // on it.
  const auto charge = [&](bool redirected) {
    cycles_ += timing_.dynamic_cycles(in, redirected, rs1, rs2, mmio);
  };

  switch (in.op) {
    case Op::kLui:
      cpu_.write_gpr(in.rd, static_cast<u32>(in.imm));
      break;
    case Op::kAuipc:
      cpu_.write_gpr(in.rd, pc + static_cast<u32>(in.imm));
      break;
    case Op::kJal:
      cpu_.write_gpr(in.rd, pc + in.length);
      next_pc = pc + static_cast<u32>(in.imm);
      redirect = true;
      break;
    case Op::kJalr:
      cpu_.write_gpr(in.rd, pc + in.length);
      next_pc = (rs1 + static_cast<u32>(in.imm)) & ~u32{1};
      redirect = true;
      break;
    case Op::kBeq: redirect = rs1 == rs2; goto branch;
    case Op::kBne: redirect = rs1 != rs2; goto branch;
    case Op::kBlt: redirect = srs1 < srs2; goto branch;
    case Op::kBge: redirect = srs1 >= srs2; goto branch;
    case Op::kBltu: redirect = rs1 < rs2; goto branch;
    case Op::kBgeu:
      redirect = rs1 >= rs2;
    branch:
      if (redirect) next_pc = pc + static_cast<u32>(in.imm);
      break;
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLbu:
    case Op::kLhu: {
      const u32 address = rs1 + static_cast<u32>(in.imm);
      const unsigned size =
          (in.op == Op::kLw) ? 4 : (in.op == Op::kLh || in.op == Op::kLhu) ? 2 : 1;
      auto result = bus_.read(address, size);
      if (!result.ok()) {
        take_trap(kCauseLoadFault, address, false);
        charge(true);
        return true;
      }
      mmio = result->mmio;
      u32 value = result->value;
      if (in.op == Op::kLb) value = static_cast<u32>(sign_extend(value, 8));
      if (in.op == Op::kLh) value = static_cast<u32>(sign_extend(value, 16));
      cpu_.write_gpr(in.rd, value);
      if (!mem_cbs_.empty()) fire_mem_cb(address, value, size, false);
      if (!watchpoints_.empty()) check_watchpoints(address, size, false);
      break;
    }
    case Op::kSb:
    case Op::kSh:
    case Op::kSw: {
      const u32 address = rs1 + static_cast<u32>(in.imm);
      const unsigned size =
          (in.op == Op::kSw) ? 4 : (in.op == Op::kSh) ? 2 : 1;
      const u32 value = rs2 & (size == 4 ? ~u32{0} : (u32{1} << (8 * size)) - 1);
      auto result = bus_.write(address, size, value);
      if (!result.ok()) {
        take_trap(kCauseStoreFault, address, false);
        charge(true);
        return true;
      }
      mmio = *result;
      if (!mem_cbs_.empty()) fire_mem_cb(address, value, size, true);
      if (!watchpoints_.empty()) check_watchpoints(address, size, true);
      if (!mmio && tb_cache_.overlaps_code(address, size)) {
        // Self-modifying code: flush after this block finishes.
        tb_flush_pending_ = true;
      }
      break;
    }
    case Op::kAddi: cpu_.write_gpr(in.rd, rs1 + static_cast<u32>(in.imm)); break;
    case Op::kSlti: cpu_.write_gpr(in.rd, srs1 < in.imm ? 1 : 0); break;
    case Op::kSltiu:
      cpu_.write_gpr(in.rd, rs1 < static_cast<u32>(in.imm) ? 1 : 0);
      break;
    case Op::kXori: cpu_.write_gpr(in.rd, rs1 ^ static_cast<u32>(in.imm)); break;
    case Op::kOri: cpu_.write_gpr(in.rd, rs1 | static_cast<u32>(in.imm)); break;
    case Op::kAndi: cpu_.write_gpr(in.rd, rs1 & static_cast<u32>(in.imm)); break;
    case Op::kSlli: cpu_.write_gpr(in.rd, rs1 << in.rs2); break;
    case Op::kSrli: cpu_.write_gpr(in.rd, rs1 >> in.rs2); break;
    case Op::kSrai: cpu_.write_gpr(in.rd, static_cast<u32>(srs1 >> in.rs2)); break;
    case Op::kAdd: cpu_.write_gpr(in.rd, rs1 + rs2); break;
    case Op::kSub: cpu_.write_gpr(in.rd, rs1 - rs2); break;
    case Op::kSll: cpu_.write_gpr(in.rd, rs1 << (rs2 & 31)); break;
    case Op::kSlt: cpu_.write_gpr(in.rd, srs1 < srs2 ? 1 : 0); break;
    case Op::kSltu: cpu_.write_gpr(in.rd, rs1 < rs2 ? 1 : 0); break;
    case Op::kXor: cpu_.write_gpr(in.rd, rs1 ^ rs2); break;
    case Op::kSrl: cpu_.write_gpr(in.rd, rs1 >> (rs2 & 31)); break;
    case Op::kSra: cpu_.write_gpr(in.rd, static_cast<u32>(srs1 >> (rs2 & 31))); break;
    case Op::kOr: cpu_.write_gpr(in.rd, rs1 | rs2); break;
    case Op::kAnd: cpu_.write_gpr(in.rd, rs1 & rs2); break;
    case Op::kFence: break;
    case Op::kEcall: {
      // Semihosting exit convention: a7 = 93, a0 = exit code.
      if (cpu_.read_gpr(17) == 93) {
        pending_stop_ = PendingStop{StopReason::kExitEcall,
                                    static_cast<int>(cpu_.read_gpr(10)), 0, ""};
        // No redirect penalty: the simulation ends here rather than
        // redirecting the front-end (keeps the QTA timeline chain exact).
        charge(false);
        return true;
      }
      take_trap(kCauseEcallM, 0, false);
      charge(true);
      return true;
    }
    case Op::kEbreak:
      take_trap(kCauseBreakpoint, pc, false);
      charge(true);
      return true;
    case Op::kMul: cpu_.write_gpr(in.rd, rs1 * rs2); break;
    case Op::kMulh:
      cpu_.write_gpr(in.rd, static_cast<u32>(
          (static_cast<i64>(srs1) * static_cast<i64>(srs2)) >> 32));
      break;
    case Op::kMulhsu:
      cpu_.write_gpr(in.rd, static_cast<u32>(
          (static_cast<i64>(srs1) * static_cast<i64>(static_cast<u64>(rs2))) >> 32));
      break;
    case Op::kMulhu:
      cpu_.write_gpr(in.rd, static_cast<u32>(
          (static_cast<u64>(rs1) * static_cast<u64>(rs2)) >> 32));
      break;
    case Op::kDiv:
      if (rs2 == 0) {
        cpu_.write_gpr(in.rd, ~u32{0});
      } else if (rs1 == 0x8000'0000u && rs2 == ~u32{0}) {
        cpu_.write_gpr(in.rd, 0x8000'0000u);  // overflow
      } else {
        cpu_.write_gpr(in.rd, static_cast<u32>(srs1 / srs2));
      }
      break;
    case Op::kDivu:
      cpu_.write_gpr(in.rd, rs2 == 0 ? ~u32{0} : rs1 / rs2);
      break;
    case Op::kRem:
      if (rs2 == 0) {
        cpu_.write_gpr(in.rd, rs1);
      } else if (rs1 == 0x8000'0000u && rs2 == ~u32{0}) {
        cpu_.write_gpr(in.rd, 0);
      } else {
        cpu_.write_gpr(in.rd, static_cast<u32>(srs1 % srs2));
      }
      break;
    case Op::kRemu:
      cpu_.write_gpr(in.rd, rs2 == 0 ? rs1 : rs1 % rs2);
      break;
    case Op::kCsrrw:
    case Op::kCsrrs:
    case Op::kCsrrc:
    case Op::kCsrrwi:
    case Op::kCsrrsi:
    case Op::kCsrrci: {
      const CsrFile::CounterView counters = counter_view();
      const bool imm_form = in.op == Op::kCsrrwi || in.op == Op::kCsrrsi ||
                            in.op == Op::kCsrrci;
      const u32 operand = imm_form ? static_cast<u32>(in.rs2) : rs1;
      const bool is_write_op = in.op == Op::kCsrrw || in.op == Op::kCsrrwi;
      const bool wants_read = !is_write_op || in.rd != 0;
      const bool wants_write =
          is_write_op || (imm_form ? in.rs2 != 0 : in.rs1 != 0);
      u32 old_value = 0;
      if (wants_read) {
        auto value = cpu_.csr.read(in.csr, counters);
        if (!value.ok()) {
          take_trap(kCauseIllegalInstruction, in.raw, false);
          charge(true);
        return true;
        }
        old_value = *value;
      }
      if (wants_write) {
        u32 new_value = operand;
        if (in.op == Op::kCsrrs || in.op == Op::kCsrrsi) {
          new_value = old_value | operand;
        } else if (in.op == Op::kCsrrc || in.op == Op::kCsrrci) {
          new_value = old_value & ~operand;
        }
        if (!cpu_.csr.write(in.csr, new_value).ok()) {
          take_trap(kCauseIllegalInstruction, in.raw, false);
          charge(true);
        return true;
        }
      }
      cpu_.write_gpr(in.rd, old_value);
      break;
    }
    case Op::kMret: {
      CsrFile& csr = cpu_.csr;
      next_pc = csr.mepc;
      const bool mpie = (csr.mstatus & kMstatusMpie) != 0;
      csr.mstatus &= ~kMstatusMie;
      if (mpie) csr.mstatus |= kMstatusMie;
      csr.mstatus |= kMstatusMpie;
      redirect = true;
      break;
    }
    case Op::kWfi: {
      if ((cpu_.csr.mie & kMieMtie) != 0 && clint_ != nullptr &&
          clint_->mtimecmp() != ~u64{0}) {
        // Sleep until the timer fires: fast-forward modelled time.
        if (cycles_ < clint_->mtimecmp()) cycles_ = clint_->mtimecmp();
      } else {
        pending_stop_ = PendingStop{StopReason::kWfiHalt, 0, 0,
                                    "wfi with timer interrupt disabled"};
        charge(true);
        return true;
      }
      break;
    }
    case Op::kCount:
      S4E_CHECK_MSG(false, "invalid Op in translated block");
  }

  bool penalize = redirect;
  if (timing_.params().branch_predictor &&
      in.info().op_class == isa::OpClass::kBranch) {
    // Bimodal 2-bit predictor: penalty only on mispredicts (in either
    // direction); the table is indexed by the branch PC.
    u8& counter = bimodal_[(pc >> 2) & (bimodal_.size() - 1)];
    const bool predicted_taken = counter >= 2;
    penalize = predicted_taken != redirect;
    if (redirect) {
      if (counter < 3) ++counter;
    } else {
      if (counter > 0) --counter;
    }
  }
  charge(penalize);
  cpu_.pc = next_pc;
  return false;
}

RunResult Machine::run() {
  const u64 remaining = config_.max_instructions > icount_
                            ? config_.max_instructions - icount_
                            : 0;
  return run(remaining);
}

RunResult Machine::run(u64 max_insns) {
  return run_loop(max_insns, StopReason::kMaxInstructions);
}

RunResult Machine::step() { return run_loop(1, StopReason::kDebugStep); }

RunResult Machine::run_slice(u64 max_insns) {
  return run_loop(max_insns, StopReason::kDebugSlice);
}

RunResult Machine::run_loop(u64 max_insns, StopReason budget_reason) {
  const bool stepping = budget_reason == StopReason::kDebugStep;
  // Saturate: run(UINT64_MAX) on a warm machine means "no further bound",
  // not a wrapped limit below icount_ that stops the VM instantly.
  const u64 limit = saturating_add(icount_, max_insns);
  while (!pending_stop_) {
    if (icount_ >= limit) {
      if (budget_reason == StopReason::kMaxInstructions) {
        pending_stop_ = PendingStop{StopReason::kMaxInstructions, -1, 0,
                                    "instruction budget exhausted"};
      } else {
        pending_stop_ = PendingStop{budget_reason, 0, 0, ""};
      }
      break;
    }
    if (debug_check_) {
      if (debug_stop_request_) {
        debug_stop_request_ = false;
        update_debug_check();
        pending_stop_ = PendingStop{StopReason::kDebugInterrupt, 0, 0, "",
                                    cpu_.pc};
        break;
      }
      // Stop *before* executing a breakpointed instruction — except while
      // stepping, which is how the stub resumes off a breakpoint.
      if (!stepping && breakpoints_.count(cpu_.pc) != 0) {
        pending_stop_ = PendingStop{StopReason::kDebugBreak, 0, 0, "",
                                    cpu_.pc};
        break;
      }
    }
    bus_.tick(cycles_);
    check_interrupts();
    if (pending_stop_) break;
    if (tb_flush_pending_) {
      // Requested from a plugin callback (or a self-modifying store) while
      // the previous block was executing; apply at the block boundary.
      tb_flush_pending_ = false;
      tb_cache_.flush();
    }

    const u32 block_pc = cpu_.pc;
    TranslationBlock* tb =
        config_.enable_tb_cache ? tb_cache_.lookup(block_pc) : nullptr;
    if (tb == nullptr) tb = translate(block_pc);
    if (tb == nullptr) continue;  // trap was taken (or stop is pending)

    ++tb->exec_count;
    probe_icache(block_pc);
    for (const auto& reg : tb_exec_cbs_) {
      reg.callback(reg.userdata, vm_handle(), block_pc);
    }

    u32 expected_pc = tb->start;
    for (const Instr& instr : tb->insns) {
      if (icount_ >= limit) break;
      if (!insn_exec_cbs_.empty()) {
        const s4e_insn_info info = to_insn_info(instr, cpu_.pc);
        for (const auto& reg : insn_exec_cbs_) {
          reg.callback(reg.userdata, vm_handle(), &info);
        }
      }
      ++icount_;
      const bool stop = execute(instr);
      if (stop || pending_stop_) break;
      expected_pc += instr.length;
      if (cpu_.pc != expected_pc) break;  // redirect: block ends here
      if (tb_flush_pending_) break;
    }
    if (tb_flush_pending_) {
      tb_flush_pending_ = false;
      tb_cache_.flush();
    }
  }

  RunResult result;
  result.reason = pending_stop_->reason;
  result.exit_code = pending_stop_->exit_code;
  result.trap_cause = pending_stop_->trap_cause;
  result.detail = pending_stop_->detail;
  result.debug_addr = pending_stop_->debug_addr;
  result.watch_kind = pending_stop_->watch_kind;
  result.instructions = icount_;
  result.cycles = cycles_;
  result.final_pc = cpu_.pc;
  if (!result.debug_stop()) {
    // Debugger stops are pauses, not ends: exit plugins (trace exit line,
    // flight-recorder dump) fire once, when the program actually stops.
    for (const auto& reg : exit_cbs_) {
      reg.callback(reg.userdata, vm_handle(), result.exit_code);
    }
  }
  pending_stop_.reset();
  return result;
}

u64 Machine::add_tb_trans_cb(s4e_tb_trans_cb cb, void* userdata) {
  tb_trans_cbs_.push_back({cb, userdata});
  return tb_trans_cbs_.size();
}
u64 Machine::add_tb_exec_cb(s4e_tb_exec_cb cb, void* userdata) {
  tb_exec_cbs_.push_back({cb, userdata});
  return tb_exec_cbs_.size();
}
u64 Machine::add_insn_exec_cb(s4e_insn_exec_cb cb, void* userdata) {
  insn_exec_cbs_.push_back({cb, userdata});
  return insn_exec_cbs_.size();
}
u64 Machine::add_mem_cb(s4e_mem_cb cb, void* userdata) {
  mem_cbs_.push_back({cb, userdata});
  return mem_cbs_.size();
}
u64 Machine::add_trap_cb(s4e_trap_cb cb, void* userdata) {
  trap_cbs_.push_back({cb, userdata});
  return trap_cbs_.size();
}
u64 Machine::add_exit_cb(s4e_exit_cb cb, void* userdata) {
  exit_cbs_.push_back({cb, userdata});
  return exit_cbs_.size();
}

void Machine::request_exit(int exit_code) noexcept {
  if (!pending_stop_) {
    pending_stop_ =
        PendingStop{StopReason::kExitRequested, exit_code, 0, ""};
  }
}

}  // namespace s4e::vp
