#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "core/workloads.hpp"
#include "memwatch/memwatch.hpp"
#include "vp/machine.hpp"

namespace s4e::memwatch {
namespace {

struct WatchedRun {
  vp::RunResult result;
  std::vector<Violation> violations;
  u64 total_accesses = 0;
  std::string report;
  std::string uart;
};

WatchedRun run_with_policy(const std::string& source, const Policy& policy,
                           const std::string& uart_input = "") {
  auto program = assembler::assemble(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().to_string());
  vp::Machine machine;
  EXPECT_TRUE(machine.load_program(*program).ok());
  if (!uart_input.empty()) machine.uart()->push_rx(uart_input);
  MemWatchPlugin plugin(policy);
  plugin.attach(machine.vm_handle());
  WatchedRun run;
  run.result = machine.run();
  run.violations = plugin.violations();
  run.total_accesses = plugin.total_accesses();
  run.report = plugin.report();
  run.uart = machine.uart()->tx_log();
  return run;
}

Policy uart_tx_policy(u32 pc_lo = 0, u32 pc_hi = 0) {
  Policy policy;
  Region tx;
  tx.name = "uart-tx";
  tx.base = 0x1000'0000;
  tx.size = 4;
  tx.allow_read = true;
  tx.allow_write = true;
  tx.pc_lo = pc_lo;
  tx.pc_hi = pc_hi;
  policy.regions.push_back(tx);
  return policy;
}

TEST(MemWatch, ObservesAllDataAccesses) {
  Policy policy;  // empty: everything unmatched but allowed
  auto run = run_with_policy(R"(
    la t0, buf
    sw t1, 0(t0)
    lw t2, 0(t0)
    sh t1, 4(t0)
    lbu t2, 4(t0)
    li a7, 93
    li a0, 0
    ecall
.data
buf:
    .space 16
  )",
                             policy);
  EXPECT_TRUE(run.result.normal_exit());
  EXPECT_EQ(run.total_accesses, 4u);
  EXPECT_TRUE(run.violations.empty());
}

TEST(MemWatch, FlagsWriteToReadOnlyRegion) {
  auto program_source = R"(
    la t0, config
    li t1, 99
    sw t1, 0(t0)      # write into read-only region
    li a7, 93
    li a0, 0
    ecall
.data
config:
    .word 7
  )";
  auto program = assembler::assemble(program_source);
  ASSERT_TRUE(program.ok());
  Policy policy;
  Region config_region;
  config_region.name = "config";
  config_region.base = program->find_section(".data")->base;
  config_region.size = 4;
  config_region.allow_read = true;
  config_region.allow_write = false;
  policy.regions.push_back(config_region);

  auto run = run_with_policy(program_source, policy);
  ASSERT_EQ(run.violations.size(), 1u);
  EXPECT_TRUE(run.violations[0].is_store);
  EXPECT_EQ(run.violations[0].region, "config");
}

TEST(MemWatch, DefaultDenyFlagsUnmatched) {
  Policy policy;
  policy.default_allow = false;
  auto run = run_with_policy(R"(
    la t0, buf
    sw t1, 0(t0)
    li a7, 93
    li a0, 0
    ecall
.data
buf:
    .space 4
  )",
                             policy);
  EXPECT_EQ(run.violations.size(), 1u);
  EXPECT_EQ(run.violations[0].region, "<unmatched>");
}

TEST(MemWatch, LockControlBenignHasNoTxViolations) {
  auto workload = core::find_workload("lock_ctrl");
  ASSERT_TRUE(workload.ok());
  auto program = assembler::assemble(workload->source);
  ASSERT_TRUE(program.ok());
  const u32 driver_lo = *program->symbol("uart_puts");
  const u32 driver_hi = *program->symbol("uart_puts_end");
  auto run = run_with_policy(workload->source,
                             uart_tx_policy(driver_lo, driver_hi), "1234");
  EXPECT_TRUE(run.result.normal_exit());
  EXPECT_EQ(run.result.exit_code, 0);  // lock opened
  EXPECT_EQ(run.uart, "OPEN\n");
  EXPECT_TRUE(run.violations.empty()) << run.report;
}

TEST(MemWatch, LockControlWrongPinDenies) {
  auto workload = core::find_workload("lock_ctrl");
  ASSERT_TRUE(workload.ok());
  auto program = assembler::assemble(workload->source);
  ASSERT_TRUE(program.ok());
  const u32 driver_lo = *program->symbol("uart_puts");
  const u32 driver_hi = *program->symbol("uart_puts_end");
  auto run = run_with_policy(workload->source,
                             uart_tx_policy(driver_lo, driver_hi), "9999");
  EXPECT_EQ(run.result.exit_code, 1);
  EXPECT_EQ(run.uart, "DENY\n");
  EXPECT_TRUE(run.violations.empty());
}

TEST(MemWatch, AttackVariantDetected) {
  auto workload = core::find_workload("attack_lock");
  ASSERT_TRUE(workload.ok());
  auto program = assembler::assemble(workload->source);
  ASSERT_TRUE(program.ok());
  const u32 driver_lo = *program->symbol("uart_puts");
  const u32 driver_hi = *program->symbol("uart_puts_end");
  const u32 attack_pc = *program->symbol("attack");
  auto run = run_with_policy(workload->source,
                             uart_tx_policy(driver_lo, driver_hi));
  // The rogue TX write outside the driver is flagged, with the attacking
  // instruction's PC identified.
  ASSERT_EQ(run.violations.size(), 1u);
  EXPECT_TRUE(run.violations[0].is_store);
  EXPECT_GE(run.violations[0].pc, attack_pc);
  EXPECT_EQ(run.violations[0].value, u32{'X'});
  EXPECT_NE(run.report.find("uart-tx"), std::string::npos);
}

TEST(MemWatch, RegionStatsAccumulate) {
  Policy policy = uart_tx_policy();
  auto run = run_with_policy(R"(
    li t0, 0x10000000
    li t1, 65
    sw t1, 0(t0)
    sw t1, 0(t0)
    li a7, 93
    li a0, 0
    ecall
  )",
                             policy);
  EXPECT_NE(run.report.find("2 writes"), std::string::npos);
  EXPECT_TRUE(run.violations.empty());
}

}  // namespace
}  // namespace s4e::memwatch
