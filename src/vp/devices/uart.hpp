// UART0: the console / lock-control interface of the edge SoC.
//
// Register map (byte offsets, 32-bit access):
//   0x00 TXDATA  (W) transmit one byte
//   0x04 RXDATA  (R) receive one byte; reads 0xffff'ffff when empty
//   0x08 STATUS  (R) bit0 = rx available, bit1 = tx ready (always 1)
#pragma once

#include <deque>
#include <string>

#include "vp/device.hpp"

namespace s4e::vp {

class Uart final : public Device {
 public:
  static constexpr u32 kDefaultBase = 0x1000'0000;
  static constexpr u32 kWindowSize = 0x100;
  static constexpr u32 kTxData = 0x00;
  static constexpr u32 kRxData = 0x04;
  static constexpr u32 kStatus = 0x08;

  std::string_view name() const noexcept override { return "uart0"; }

  Result<u32> read(u32 offset, unsigned size) override;
  Status write(u32 offset, unsigned size, u32 value) override;
  void reset() override;
  void save_state(StateWriter& out) const override;
  void restore_state(StateReader& in) override;

  // Host side: characters transmitted by the guest so far.
  const std::string& tx_log() const noexcept { return tx_log_; }
  void clear_tx_log() { tx_log_.clear(); }

  // Host side: queue input bytes for the guest to receive.
  void push_rx(std::string_view data);

  // Number of TXDATA writes (E6 reports per-access statistics).
  u64 tx_count() const noexcept { return tx_count_; }
  u64 rx_count() const noexcept { return rx_count_; }

 private:
  std::string tx_log_;
  std::deque<u8> rx_queue_;
  u64 tx_count_ = 0;
  u64 rx_count_ = 0;
};

}  // namespace s4e::vp
