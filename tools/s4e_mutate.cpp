// s4e-mutate — binary mutation analysis of an ELF (the XEMU flow).
//
//   s4e-mutate file.elf [--max N] [--all-sites] [--survivors]
#include <cstdio>

#include "elf/elf32.hpp"
#include "mutation/mutation.hpp"
#include "tools/tool_util.hpp"

int main(int argc, char** argv) {
  using namespace s4e;
  tools::Args args(argc, argv, {"--max"});
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: s4e-mutate <file.elf> [--max N] [--all-sites] "
                 "[--survivors]\n");
    return 2;
  }
  auto program = elf::read_elf_file(args.positional()[0]);
  if (!program.ok()) {
    std::fprintf(stderr, "s4e-mutate: %s\n",
                 program.error().to_string().c_str());
    return 1;
  }

  mutation::MutationConfig config;
  config.executed_only = !args.has("--all-sites");
  config.max_mutants = static_cast<unsigned>(
      parse_integer(args.value("--max", "0")).value_or(0));

  mutation::MutationCampaign campaign(*program, config);
  auto score = campaign.run();
  if (!score.ok()) {
    std::fprintf(stderr, "s4e-mutate: %s\n",
                 score.error().to_string().c_str());
    return 1;
  }
  std::printf("%s", score->to_string().c_str());

  if (args.has("--survivors")) {
    std::printf("\nsurviving mutants:\n");
    for (const auto& result : score->results) {
      if (result.verdict != mutation::Verdict::kSurvived) continue;
      std::printf("  0x%08x  %-14s %s\n", result.mutant.address,
                  std::string(mutation::to_string(result.mutant.op)).c_str(),
                  result.mutant.description.c_str());
    }
  }
  return 0;
}
