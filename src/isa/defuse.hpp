// Per-instruction GPR def/use metadata, derived from the declarative OpInfo
// table: which architectural registers an instruction reads and writes, as
// 32-bit masks (bit i = xi). This is the single model the data-flow
// framework, the coverage plugin and the loop-pattern matcher share, so
// their notions of "reads rs2" / "writes rd" cannot drift apart.
//
// x0 hardwiring: writes to x0 are architectural no-ops and never appear in
// `writes`; reads of x0 are kept in `reads` (x0 is a legal, constant
// operand — consumers that exclude it from metrics mask bit 0 themselves).
//
// RVC: compressed instructions are decompressed into base-ISA `Instr`
// records before any analysis sees them (see isa/rvc.hpp), so the expansion
// is already applied and this helper needs no compressed-form cases.
#pragma once

#include "isa/instr.hpp"

namespace s4e::isa {

struct DefUse {
  u32 reads = 0;   // GPRs read (bit i = xi; bit 0 possible: x0 reads are real)
  u32 writes = 0;  // GPRs written (bit 0 never set: x0 is hardwired)
};

// Def/use masks of a decoded instruction. Non-register operand slots
// (shamt of kIShift, zimm of kCsrImm) are excluded by the OpInfo flags.
DefUse def_use(const Instr& instr) noexcept;

// True if `instr` writes GPR `reg` (always false for reg == 0).
bool writes_gpr(const Instr& instr, unsigned reg) noexcept;

// True if `instr` reads GPR `reg`.
bool reads_gpr(const Instr& instr, unsigned reg) noexcept;

}  // namespace s4e::isa
