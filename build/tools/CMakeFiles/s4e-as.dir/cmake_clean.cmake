file(REMOVE_RECURSE
  "CMakeFiles/s4e-as.dir/s4e_as.cpp.o"
  "CMakeFiles/s4e-as.dir/s4e_as.cpp.o.d"
  "s4e-as"
  "s4e-as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e-as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
