file(REMOVE_RECURSE
  "CMakeFiles/s4e_core.dir/ecosystem.cpp.o"
  "CMakeFiles/s4e_core.dir/ecosystem.cpp.o.d"
  "CMakeFiles/s4e_core.dir/profiler.cpp.o"
  "CMakeFiles/s4e_core.dir/profiler.cpp.o.d"
  "CMakeFiles/s4e_core.dir/workloads.cpp.o"
  "CMakeFiles/s4e_core.dir/workloads.cpp.o.d"
  "libs4e_core.a"
  "libs4e_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
