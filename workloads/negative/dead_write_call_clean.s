# regression companion to dead_write_callee.s — must stay CLEAN.
# a0 is written before the call and the callee reads it: the refined call
# summary keeps a0 live across the call site, so the write is not dead.
# This pins the interprocedural dead-write check against the old
# intraprocedural false-positive (a value handed into a callee flagged as
# never read).

_start:
    li a0, 7           # live: handed into helper, which reads a0
    call helper
    li a7, 93
    ecall

helper:
    addi a0, a0, 2
    ret
