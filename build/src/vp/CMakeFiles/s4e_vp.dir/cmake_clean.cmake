file(REMOVE_RECURSE
  "CMakeFiles/s4e_vp.dir/bus.cpp.o"
  "CMakeFiles/s4e_vp.dir/bus.cpp.o.d"
  "CMakeFiles/s4e_vp.dir/cpu.cpp.o"
  "CMakeFiles/s4e_vp.dir/cpu.cpp.o.d"
  "CMakeFiles/s4e_vp.dir/devices/clint.cpp.o"
  "CMakeFiles/s4e_vp.dir/devices/clint.cpp.o.d"
  "CMakeFiles/s4e_vp.dir/devices/gpio.cpp.o"
  "CMakeFiles/s4e_vp.dir/devices/gpio.cpp.o.d"
  "CMakeFiles/s4e_vp.dir/devices/uart.cpp.o"
  "CMakeFiles/s4e_vp.dir/devices/uart.cpp.o.d"
  "CMakeFiles/s4e_vp.dir/machine.cpp.o"
  "CMakeFiles/s4e_vp.dir/machine.cpp.o.d"
  "CMakeFiles/s4e_vp.dir/plugin.cpp.o"
  "CMakeFiles/s4e_vp.dir/plugin.cpp.o.d"
  "CMakeFiles/s4e_vp.dir/plugin_api.cpp.o"
  "CMakeFiles/s4e_vp.dir/plugin_api.cpp.o.d"
  "CMakeFiles/s4e_vp.dir/timing.cpp.o"
  "CMakeFiles/s4e_vp.dir/timing.cpp.o.d"
  "libs4e_vp.a"
  "libs4e_vp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e_vp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
