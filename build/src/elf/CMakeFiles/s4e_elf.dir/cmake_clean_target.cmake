file(REMOVE_RECURSE
  "libs4e_elf.a"
)
