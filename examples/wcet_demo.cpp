// The QTA tool-demo flow (the paper's core): static WCET analysis of a
// binary (the aiT substitute), export of the WCET-annotated CFG, and
// co-simulation of binary + annotated graph on the VP, yielding the three
// ordered timelines
//     observed cycles <= WC(executed path) <= static WCET bound.
//
//   $ ./examples/wcet_demo [workload]        (default: fir)
#include <cstdio>
#include <string>

#include "core/ecosystem.hpp"
#include "core/workloads.hpp"

int main(int argc, char** argv) {
  using namespace s4e;

  const std::string name = argc > 1 ? argv[1] : "fir";
  auto workload = core::find_workload(name);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.error().to_string().c_str());
    std::fprintf(stderr, "available workloads:\n");
    for (const auto& candidate : core::standard_workloads()) {
      std::fprintf(stderr, "  %-12s %s\n", candidate.name.c_str(),
                   candidate.description.c_str());
    }
    return 1;
  }

  core::Ecosystem ecosystem;
  auto program = ecosystem.build(*workload);
  if (!program.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n",
                 program.error().to_string().c_str());
    return 1;
  }

  // Full flow: CFG reconstruction -> loop bounds -> per-block timing ->
  // structural IPET -> annotated CFG -> co-simulated run.
  auto outcome = ecosystem.run_qta(*program, name);
  if (!outcome.ok()) {
    std::fprintf(stderr, "QTA flow failed: %s\n",
                 outcome.error().to_string().c_str());
    return 1;
  }

  std::printf("=== static WCET analysis (%s) ===\n", name.c_str());
  for (const auto& fn : outcome->analysis.functions) {
    std::printf("  %-16s entry=0x%08x  blocks=%2u  loops=%u (bounded %u)  "
                "WCET=%llu cycles\n",
                fn.name.c_str(), fn.entry, fn.block_count, fn.loop_count,
                fn.bounded_loops, static_cast<unsigned long long>(fn.wcet));
  }

  std::printf("\n=== WCET-annotated CFG (ait2qta artefact, excerpt) ===\n");
  const std::string serialized = outcome->analysis.annotated.serialize();
  // Print the first dozen lines.
  std::size_t pos = 0;
  for (int line = 0; line < 12 && pos != std::string::npos; ++line) {
    const std::size_t end = serialized.find('\n', pos);
    std::printf("  %s\n", serialized.substr(pos, end - pos).c_str());
    pos = end == std::string::npos ? end : end + 1;
  }
  std::printf("  ... (%zu blocks, %zu edges)\n",
              outcome->analysis.annotated.blocks.size(),
              outcome->analysis.annotated.edges.size());

  std::printf("\n=== co-simulation ===\n");
  std::printf("run: reason=%s exit=%d (expected %d)\n",
              std::string(vp::to_string(outcome->run.result.reason)).c_str(),
              outcome->run.result.exit_code, workload->expected_exit);
  std::printf("\n%s\n", outcome->report.to_string().c_str());

  const bool chain_ok =
      outcome->report.observed_cycles <= outcome->report.wc_path_cycles &&
      outcome->report.wc_path_cycles <= outcome->report.static_bound;
  std::printf("timeline chain observed <= wc-path <= bound: %s\n",
              chain_ok ? "HOLDS" : "VIOLATED");
  return chain_ok ? 0 : 1;
}
