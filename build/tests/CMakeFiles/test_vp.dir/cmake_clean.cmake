file(REMOVE_RECURSE
  "CMakeFiles/test_vp.dir/test_vp.cpp.o"
  "CMakeFiles/test_vp.dir/test_vp.cpp.o.d"
  "test_vp"
  "test_vp.pdb"
  "test_vp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
