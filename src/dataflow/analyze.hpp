// Whole-program data-flow analysis driver.
//
// analyze_program() ties the pieces together:
//   1. build a *tolerant* CFG (unresolved indirect jumps become
//      successor-less terminators instead of hard errors),
//   2. run the register domain in two memory passes — pass A with loads
//      opaque to collect every abstract store target (the dirty set),
//      pass B folding loads from the clean part of the program image,
//   3. resolve `jalr x0` targets whose register value folded to a finite
//      set (jump tables, `la`+`jr` trampolines) and rebuild the CFG with
//      those edges — iterated to a fixpoint,
//   4. record per-function solutions, block reachability, branch-edge
//      feasibility and liveness for consumers (WCET pruning, s4e-lint,
//      coverage denominators).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "cfg/cfg.hpp"
#include "dataflow/framework.hpp"
#include "dataflow/liveness.hpp"
#include "dataflow/memmodel.hpp"
#include "dataflow/regstate.hpp"
#include "dataflow/summaries.hpp"

namespace s4e::dataflow {

struct FunctionAnalysis {
  // Summary-refined solutions (interprocedural facts applied at call sites).
  Solution<RegDomain> reg;
  Solution<Liveness> live;
  // Call-block id -> the callee's summarized effect at that site; consumers
  // replaying blocks (lint) pass these to finish_block / exit_adjust.
  std::map<cfg::BlockId, CallEffect> call_effects;
  std::vector<bool> block_reachable;
  // Parallel to each block's successors vector: false = branch edge proven
  // infeasible from the solved out-state.
  std::vector<std::vector<bool>> edge_ok;
};

// A reachable indirect jump/call whose target set could not be folded.
struct UnresolvedSite {
  u32 pc = 0;
  std::string function;
  std::string target;  // abstract description of the jump register value
  bool is_call = false;  // jalr with rd != x0 (indirect call)
};

struct Analysis {
  cfg::ProgramCfg cfg;  // tolerant build, resolved indirect edges included
  std::vector<FunctionAnalysis> functions;  // parallel to cfg.functions
  std::vector<bool> function_reachable;     // via calls from reachable code
  std::map<u32, std::vector<u32>> resolved;  // jalr pc -> jump targets
  std::vector<UnresolvedSite> unresolved;    // reachable, still unknown
  MemModel mem;  // final-pass model (dirty store ranges populated)
  CallGraph graph;  // over the final CFG build
  std::vector<FunctionSummary> summaries;  // parallel to cfg.functions
};

struct AnalyzeOptions {
  // CFG rebuild rounds for indirect-target resolution.
  unsigned max_resolve_iterations = 4;
};

Result<Analysis> analyze_program(const assembler::Program& program,
                                 const AnalyzeOptions& options = {});

// Rebuild the CFG keeping only reachable functions/blocks and feasible
// edges. Entry blocks stay first; block ids are remapped densely. The
// result is a sub-graph of the input, so any worst-case path bound over it
// is no larger than over the original.
Result<cfg::ProgramCfg> prune_cfg(const Analysis& analysis);

// Which instruction types appear in statically reachable blocks (indexed
// by isa::Op) — the denominator for static coverage reporting.
std::vector<bool> reachable_ops(const Analysis& analysis);

}  // namespace s4e::dataflow
