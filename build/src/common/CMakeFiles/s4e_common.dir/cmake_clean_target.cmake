file(REMOVE_RECURSE
  "libs4e_common.a"
)
