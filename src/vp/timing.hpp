// Microarchitectural timing model shared between the VP's cycle counter
// (dynamic, operand-dependent latencies) and the static WCET analyzer
// (per-class worst-case latencies).
//
// The model is a classic in-order 5-stage pipeline abstraction:
//   - every instruction costs `base_cycles`,
//   - loads/stores add memory latency (RAM wait states; MMIO is slower),
//   - multiplies add a fixed multiplier latency,
//   - divides are iterative with early-out: the dynamic cost depends on the
//     dividend magnitude, the static cost is the full iteration count,
//   - taken branches and jumps flush the front-end (`redirect_penalty`).
//
// The invariant the E3 experiment checks — static bound >= observed cycles —
// holds *by construction*: worst_case_cycles() dominates dynamic_cycles()
// for every instruction and context (asserted in tests over random programs).
#pragma once

#include <array>
#include <vector>

#include "common/bits.hpp"
#include "isa/instr.hpp"

namespace s4e::vp {

// Bimodal branch-predictor table entries (shared between Machine, Snapshot
// and the trace replay engine so the three can never disagree on the size).
inline constexpr std::size_t kBimodalEntries = 256;

struct TimingParams {
  u32 base_cycles = 1;        // issue cost of any instruction
  u32 ram_access_cycles = 1;  // extra cycles for a RAM data access
  u32 mmio_access_cycles = 8; // extra cycles for a device access
  u32 mul_cycles = 2;         // extra cycles for RV32M multiplies
  u32 div_min_cycles = 3;     // early-out divide, best case (extra)
  u32 div_max_cycles = 33;    // full 32-bit iterative divide (extra)
  u32 redirect_penalty = 2;   // taken branch / jump front-end flush
  u32 csr_cycles = 2;         // CSR access serialization (extra)
  u32 trap_cycles = 5;        // trap entry/exit cost

  // --- Optional microarchitectural features (ablation candidates). ---

  // Instruction cache: direct-mapped, probed once per executed translation
  // block; a miss costs `icache_miss_cycles` (0 disables the model). The
  // static analyzer charges the miss on *every* block execution (it cannot
  // prove hits without a persistence analysis), so enabling the icache
  // widens the static-dynamic gap — the classic aiT-vs-hardware effect.
  u32 icache_miss_cycles = 0;
  u32 icache_lines = 64;       // power of two
  u32 icache_line_bytes = 32;  // power of two

  // Bimodal (2-bit) branch predictor: a correctly-predicted conditional
  // branch pays no redirect penalty; a mispredict pays it in *either*
  // direction. The static side must then assume a possible mispredict on
  // both edges of every conditional branch.
  bool branch_predictor = false;
};

class TimingModel {
 public:
  TimingModel() = default;
  explicit TimingModel(const TimingParams& params) : params_(params) {}

  const TimingParams& params() const noexcept { return params_; }

  // Actual cycle cost of one executed instruction. `redirect` is true when
  // the instruction changed the PC away from fall-through (taken branch,
  // jump, trap-free mret). `rs1`/`rs2` are the operand values (divide
  // early-out). `mmio` is true when a data access hit a device.
  u32 dynamic_cycles(const isa::Instr& instr, bool redirect, u32 rs1, u32 rs2,
                     bool mmio) const noexcept;

  // Context-free worst case for one instruction, *excluding* any redirect
  // penalty (that is accounted on CFG edges: the static analyzer adds
  // edge_cycles() on taken edges, matching the aiT-report structure where
  // time sits on control-flow edges).
  u32 worst_case_cycles(const isa::Instr& instr) const noexcept;

  // Worst-case penalty attached to a taken (non-fall-through) CFG edge.
  u32 edge_cycles() const noexcept { return params_.redirect_penalty; }

  // Dynamic cost of an iterative divide by operand value.
  u32 divide_cycles(u32 dividend) const noexcept;

  // Per-class cost exactly as the exec engine's lowering precomputes it into
  // DecodedInsn::{c_fall, c_taken, c_mmio}: `redirect` selects the taken
  // variant, `mmio` the device-access variant. The operand-dependent divide
  // cost is *excluded* (kDiv lowers to base_cycles and the handler adds
  // divide_cycles(dividend) at run time) — trace replay adds it back per
  // recorded dividend. This is the single source of truth both the live
  // cycle counter and the VP-free replay engine charge from.
  u32 class_cycles(isa::OpClass op, bool redirect, bool mmio) const noexcept;

 private:
  TimingParams params_;
};

// Direct-mapped instruction-cache state machine, probed once per dispatched
// translation block. Extracted from Machine so trace replay can run the
// identical model against a recorded block stream without a VP: same tag
// layout, same reset state, same miss accounting — bit-identical miss
// sequences by construction.
class IcacheSim {
 public:
  IcacheSim() = default;
  explicit IcacheSim(const TimingParams& params) { reset(params); }

  // Sizes (or clears) the tag array for `params`; a zero miss cost disables
  // the model entirely, matching Machine::reset().
  void reset(const TimingParams& params) {
    if (params.icache_miss_cycles != 0) {
      tags_.assign(params.icache_lines, ~u32{0});
    } else {
      tags_.clear();
    }
    misses_ = 0;
  }

  bool enabled() const noexcept { return !tags_.empty(); }

  // Probes the line holding `block_pc`; returns true on a miss (the caller
  // charges icache_miss_cycles). Must only be called when enabled().
  bool probe(u32 block_pc, const TimingParams& params) noexcept {
    const u32 line = block_pc / params.icache_line_bytes;
    const u32 index = line & (params.icache_lines - 1);
    if (tags_[index] != line) {
      tags_[index] = line;
      ++misses_;
      return true;
    }
    return false;
  }

  u64 misses() const noexcept { return misses_; }

  // Snapshot plumbing: Machine::save_state/restore_state copy the raw state.
  const std::vector<u32>& tags() const noexcept { return tags_; }
  void restore(const std::vector<u32>& tags, u64 misses) {
    tags_ = tags;
    misses_ = misses;
  }

 private:
  std::vector<u32> tags_;
  u64 misses_ = 0;
};

// Bimodal (2-bit saturating counter) branch predictor, indexed by branch PC.
// Extracted from the exec engine's branch handler for the same reason as
// IcacheSim: replay feeds it the recorded (pc, taken) stream and gets the
// identical mispredict sequence the live run charged.
class BimodalPredictor {
 public:
  // Consults and updates the counter for one executed conditional branch;
  // returns true when the branch mispredicted (the caller charges the
  // redirect penalty, in either direction).
  bool mispredict(u32 pc, bool taken) noexcept {
    u8& counter = table_[(pc >> 2) & (table_.size() - 1)];
    const bool predicted_taken = counter >= 2;
    const bool mispredicted = predicted_taken != taken;
    if (taken) {
      if (counter < 3) ++counter;
    } else {
      if (counter > 0) --counter;
    }
    return mispredicted;
  }

  void reset() noexcept { table_.fill(0); }

  // Snapshot plumbing.
  std::array<u8, kBimodalEntries>& table() noexcept { return table_; }
  const std::array<u8, kBimodalEntries>& table() const noexcept {
    return table_;
  }

 private:
  std::array<u8, kBimodalEntries> table_{};
};

}  // namespace s4e::vp
