file(REMOVE_RECURSE
  "CMakeFiles/s4e_mutation.dir/mutation.cpp.o"
  "CMakeFiles/s4e_mutation.dir/mutation.cpp.o.d"
  "libs4e_mutation.a"
  "libs4e_mutation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e_mutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
