// Unit tests for the VP substrate pieces below the CPU: bus routing, the
// devices, the CSR file and the TB cache.
#include <gtest/gtest.h>

#include "vp/bus.hpp"
#include "vp/cpu.hpp"
#include "vp/devices/clint.hpp"
#include "vp/devices/gpio.hpp"
#include "vp/devices/testdev.hpp"
#include "vp/devices/uart.hpp"
#include "vp/tb_cache.hpp"

namespace s4e::vp {
namespace {

Bus make_bus() {
  Bus bus;
  bus.add_ram(0x8000'0000, 0x1000);
  bus.add_device(Uart::kDefaultBase, Uart::kWindowSize,
                 std::make_unique<Uart>());
  return bus;
}

TEST(Bus, RamReadWriteAllSizes) {
  Bus bus = make_bus();
  ASSERT_TRUE(bus.write(0x8000'0000, 4, 0xa1b2c3d4).ok());
  EXPECT_EQ(bus.read(0x8000'0000, 4)->value, 0xa1b2c3d4u);
  EXPECT_EQ(bus.read(0x8000'0000, 2)->value, 0xc3d4u);
  EXPECT_EQ(bus.read(0x8000'0002, 2)->value, 0xa1b2u);
  EXPECT_EQ(bus.read(0x8000'0003, 1)->value, 0xa1u);
  EXPECT_FALSE(bus.read(0x8000'0000, 4)->mmio);
}

TEST(Bus, MisalignedRamAccessAllowed) {
  Bus bus = make_bus();
  ASSERT_TRUE(bus.write(0x8000'0001, 4, 0x11223344).ok());
  EXPECT_EQ(bus.read(0x8000'0001, 4)->value, 0x11223344u);
}

TEST(Bus, UnmappedAccessFails) {
  Bus bus = make_bus();
  EXPECT_FALSE(bus.read(0x0, 4).ok());
  EXPECT_FALSE(bus.write(0x4000'0000, 4, 1).ok());
  EXPECT_FALSE(bus.read(0x8000'0000 + 0x1000, 4).ok());  // just past RAM
  // Straddling the end of RAM fails too.
  EXPECT_FALSE(bus.read(0x8000'0fff, 4).ok());
}

TEST(Bus, DeviceRoutingAndMmioFlag) {
  Bus bus = make_bus();
  auto read = bus.read(Uart::kDefaultBase + Uart::kStatus, 4);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->mmio);
  auto write = bus.write(Uart::kDefaultBase + Uart::kTxData, 4, 'x');
  ASSERT_TRUE(write.ok());
  EXPECT_TRUE(*write);
}

TEST(Bus, MisalignedMmioRejected) {
  Bus bus = make_bus();
  EXPECT_FALSE(bus.read(Uart::kDefaultBase + 1, 4).ok());
  EXPECT_FALSE(bus.write(Uart::kDefaultBase + 2, 4, 0).ok());
}

TEST(Bus, RamDirectAccessSkipsDevices) {
  Bus bus = make_bus();
  u32 value = 0;
  EXPECT_FALSE(bus.ram_read(Uart::kDefaultBase, &value, 4).ok());
  EXPECT_TRUE(bus.is_ram(0x8000'0000, 4));
  EXPECT_FALSE(bus.is_ram(Uart::kDefaultBase, 4));
}

TEST(Bus, FetchRequiresRam) {
  Bus bus = make_bus();
  EXPECT_TRUE(bus.fetch_word(0x8000'0000).ok());
  EXPECT_TRUE(bus.fetch_half(0x8000'0ffe).ok());
  EXPECT_FALSE(bus.fetch_word(Uart::kDefaultBase).ok());
  EXPECT_FALSE(bus.fetch_half(0x8000'0fff).ok());
}

TEST(Uart, TxAccumulatesAndCounts) {
  Uart uart;
  ASSERT_TRUE(uart.write(Uart::kTxData, 4, 'h').ok());
  ASSERT_TRUE(uart.write(Uart::kTxData, 4, 'i').ok());
  EXPECT_EQ(uart.tx_log(), "hi");
  EXPECT_EQ(uart.tx_count(), 2u);
  uart.clear_tx_log();
  EXPECT_EQ(uart.tx_log(), "");
}

TEST(Uart, RxQueueSemantics) {
  Uart uart;
  EXPECT_EQ(*uart.read(Uart::kRxData, 4), 0xffff'ffffu);  // empty
  EXPECT_EQ(*uart.read(Uart::kStatus, 4) & 1u, 0u);
  uart.push_rx("ab");
  EXPECT_EQ(*uart.read(Uart::kStatus, 4) & 1u, 1u);
  EXPECT_EQ(*uart.read(Uart::kRxData, 4), u32{'a'});
  EXPECT_EQ(*uart.read(Uart::kRxData, 4), u32{'b'});
  EXPECT_EQ(*uart.read(Uart::kRxData, 4), 0xffff'ffffu);
  EXPECT_EQ(uart.rx_count(), 2u);
}

TEST(Uart, BadOffsetsRejected) {
  Uart uart;
  EXPECT_FALSE(uart.read(0x0c, 4).ok());
  EXPECT_FALSE(uart.write(Uart::kStatus, 4, 1).ok());
}

TEST(Clint, TimerComparison) {
  Clint clint;
  EXPECT_FALSE(clint.timer_pending());  // mtimecmp defaults to ~0
  ASSERT_TRUE(clint.write(Clint::kMtimecmpLo, 4, 100).ok());
  ASSERT_TRUE(clint.write(Clint::kMtimecmpHi, 4, 0).ok());
  clint.tick(99);
  EXPECT_FALSE(clint.timer_pending());
  clint.tick(100);
  EXPECT_TRUE(clint.timer_pending());
  EXPECT_EQ(*clint.read(Clint::kMtimeLo, 4), 100u);
  EXPECT_EQ(*clint.read(Clint::kMtimecmpLo, 4), 100u);
}

TEST(Clint, SixtyFourBitRegisters) {
  Clint clint;
  ASSERT_TRUE(clint.write(Clint::kMtimecmpLo, 4, 0xdeadbeef).ok());
  ASSERT_TRUE(clint.write(Clint::kMtimecmpHi, 4, 0x12).ok());
  EXPECT_EQ(clint.mtimecmp(), 0x12'dead'beefULL);
  EXPECT_FALSE(clint.read(Clint::kMtimeLo, 2).ok());  // 32-bit only
  EXPECT_FALSE(clint.write(Clint::kMtimeLo, 4, 0).ok());  // mtime read-only
}

TEST(Gpio, OutSetClearToggle) {
  Gpio gpio;
  ASSERT_TRUE(gpio.write(Gpio::kOut, 4, 0b1010).ok());
  EXPECT_EQ(gpio.out(), 0b1010u);
  ASSERT_TRUE(gpio.write(Gpio::kSet, 4, 0b0001).ok());
  EXPECT_EQ(gpio.out(), 0b1011u);
  ASSERT_TRUE(gpio.write(Gpio::kClear, 4, 0b0010).ok());
  EXPECT_EQ(gpio.out(), 0b1001u);
  ASSERT_TRUE(gpio.write(Gpio::kToggle, 4, 0b1111).ok());
  EXPECT_EQ(gpio.out(), 0b0110u);
  EXPECT_EQ(*gpio.read(Gpio::kOut, 4), 0b0110u);
}

TEST(Gpio, InputPinsHostControlled) {
  Gpio gpio;
  EXPECT_EQ(*gpio.read(Gpio::kIn, 4), 0u);
  gpio.set_in(0x55);
  EXPECT_EQ(*gpio.read(Gpio::kIn, 4), 0x55u);
}

TEST(Gpio, ChangeLogTimestampsAndDedup) {
  Gpio gpio;
  gpio.tick(100);
  ASSERT_TRUE(gpio.write(Gpio::kOut, 4, 1).ok());
  gpio.tick(150);
  ASSERT_TRUE(gpio.write(Gpio::kOut, 4, 1).ok());  // no change: not logged
  gpio.tick(200);
  ASSERT_TRUE(gpio.write(Gpio::kOut, 4, 0).ok());
  ASSERT_EQ(gpio.changes().size(), 2u);
  EXPECT_EQ(gpio.changes()[0].cycle, 100u);
  EXPECT_EQ(gpio.changes()[1].cycle, 200u);
}

TEST(Gpio, DutyCycleFromWaveform) {
  Gpio gpio;
  // pin0 high for 30 cycles, low for 70, high again (end marker).
  gpio.tick(0);
  ASSERT_TRUE(gpio.write(Gpio::kOut, 4, 1).ok());
  gpio.tick(30);
  ASSERT_TRUE(gpio.write(Gpio::kOut, 4, 0).ok());
  gpio.tick(100);
  ASSERT_TRUE(gpio.write(Gpio::kOut, 4, 1).ok());
  EXPECT_NEAR(gpio.duty_cycle(0), 0.30, 1e-9);
  // An unused pin has 0 duty.
  EXPECT_NEAR(gpio.duty_cycle(5), 0.0, 1e-9);
}

TEST(Gpio, BadAccessRejected) {
  Gpio gpio;
  EXPECT_FALSE(gpio.read(Gpio::kSet, 4).ok());    // write-only
  EXPECT_FALSE(gpio.write(Gpio::kIn, 4, 1).ok()); // read-only
  EXPECT_FALSE(gpio.read(Gpio::kOut, 2).ok());    // 32-bit only
}

TEST(TestDevice, ExitProtocol) {
  int captured = -1;
  TestDevice device([&](int code) { captured = code; });
  ASSERT_TRUE(device.write(0, 4, TestDevice::kPass).ok());
  EXPECT_EQ(captured, 0);
  ASSERT_TRUE(device.write(0, 4, (9u << 16) | TestDevice::kFailMagic).ok());
  EXPECT_EQ(captured, 9);
  captured = -1;
  ASSERT_TRUE(device.write(0, 4, 0x1234).ok());  // unrecognized: ignored
  EXPECT_EQ(captured, -1);
}

TEST(CsrFile, CountersComeFromMachine) {
  CsrFile csr;
  CsrFile::CounterView counters{1000, 500, 1000};
  EXPECT_EQ(*csr.read(isa::kCsrMcycle, counters), 1000u);
  EXPECT_EQ(*csr.read(isa::kCsrMinstret, counters), 500u);
  EXPECT_EQ(*csr.read(isa::kCsrCycle, counters), 1000u);
  EXPECT_EQ(*csr.read(isa::kCsrTime, counters), 1000u);
}

TEST(CsrFile, MstatusWarlMasking) {
  CsrFile csr;
  ASSERT_TRUE(csr.write(isa::kCsrMstatus, 0xffff'ffff).ok());
  // Only MIE/MPIE stick; MPP stays M.
  EXPECT_EQ(csr.mstatus, (kMstatusMie | kMstatusMpie | kMstatusMpp));
}

TEST(CsrFile, ReadOnlyCsrsRejectWrites) {
  CsrFile csr;
  EXPECT_FALSE(csr.write(isa::kCsrMhartid, 1).ok());
  EXPECT_FALSE(csr.write(isa::kCsrCycle, 1).ok());
  CsrFile::CounterView counters{};
  EXPECT_EQ(*csr.read(isa::kCsrMhartid, counters), 0u);
}

TEST(CsrFile, UnknownCsrFails) {
  CsrFile csr;
  CsrFile::CounterView counters{};
  EXPECT_FALSE(csr.read(0x123, counters).ok());
  EXPECT_FALSE(csr.write(0x123, 1).ok());
}

TEST(CsrFile, MepcAlignment) {
  CsrFile csr;
  ASSERT_TRUE(csr.write(isa::kCsrMepc, 0x8000'0003).ok());
  EXPECT_EQ(csr.mepc, 0x8000'0002u);  // bit 0 cleared (IALIGN=16)
}

TEST(TbCache, InsertLookupFlush) {
  TbCache cache;
  auto block = std::make_unique<TranslationBlock>();
  block->start = 0x8000'0000;
  block->byte_size = 16;
  cache.insert(std::move(block));
  EXPECT_NE(cache.lookup(0x8000'0000), nullptr);
  EXPECT_EQ(cache.lookup(0x8000'0004), nullptr);
  EXPECT_EQ(cache.size(), 1u);
  cache.flush();
  EXPECT_EQ(cache.lookup(0x8000'0000), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.flush_count(), 1u);
}

TEST(TbCache, WatermarkOverlapDetection) {
  TbCache cache;
  auto block = std::make_unique<TranslationBlock>();
  block->start = 0x8000'0100;
  block->byte_size = 0x40;
  cache.insert(std::move(block));
  EXPECT_TRUE(cache.overlaps_code(0x8000'0100, 4));
  EXPECT_TRUE(cache.overlaps_code(0x8000'013c, 4));
  EXPECT_TRUE(cache.overlaps_code(0x8000'00fe, 4));  // straddles the start
  EXPECT_FALSE(cache.overlaps_code(0x8000'0140, 4)); // just past the end
  EXPECT_FALSE(cache.overlaps_code(0x8000'00f0, 4));
  // Empty cache never overlaps.
  cache.flush();
  EXPECT_FALSE(cache.overlaps_code(0x8000'0100, 4));
}

}  // namespace
}  // namespace s4e::vp
