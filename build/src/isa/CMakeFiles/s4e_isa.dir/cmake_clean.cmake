file(REMOVE_RECURSE
  "CMakeFiles/s4e_isa.dir/csr.cpp.o"
  "CMakeFiles/s4e_isa.dir/csr.cpp.o.d"
  "CMakeFiles/s4e_isa.dir/decoder.cpp.o"
  "CMakeFiles/s4e_isa.dir/decoder.cpp.o.d"
  "CMakeFiles/s4e_isa.dir/disasm.cpp.o"
  "CMakeFiles/s4e_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/s4e_isa.dir/encoder.cpp.o"
  "CMakeFiles/s4e_isa.dir/encoder.cpp.o.d"
  "CMakeFiles/s4e_isa.dir/opcode.cpp.o"
  "CMakeFiles/s4e_isa.dir/opcode.cpp.o.d"
  "CMakeFiles/s4e_isa.dir/registers.cpp.o"
  "CMakeFiles/s4e_isa.dir/registers.cpp.o.d"
  "CMakeFiles/s4e_isa.dir/rvc.cpp.o"
  "CMakeFiles/s4e_isa.dir/rvc.cpp.o.d"
  "libs4e_isa.a"
  "libs4e_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
