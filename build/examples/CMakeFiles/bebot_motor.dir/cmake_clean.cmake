file(REMOVE_RECURSE
  "CMakeFiles/bebot_motor.dir/bebot_motor.cpp.o"
  "CMakeFiles/bebot_motor.dir/bebot_motor.cpp.o.d"
  "bebot_motor"
  "bebot_motor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bebot_motor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
