#include "trace/recorder.hpp"

#include "asm/program.hpp"
#include "isa/csr.hpp"
#include "isa/opcode.hpp"
#include "vp/devices/clint.hpp"
#include "vp/devices/gpio.hpp"

namespace s4e::trace {

using isa::Op;
using isa::OpClass;

TraceRecorder::Config TraceRecorder::config_for(
    const vp::MachineConfig& machine, const assembler::Program& program) {
  Config config;
  config.fingerprint = program_fingerprint(program);
  config.entry_pc = program.entry;
  config.recorded = machine.timing;
  config.ram_base = machine.ram_base;
  config.ram_size = machine.ram_size;
  return config;
}

namespace {

Header header_for(const TraceRecorder::Config& config) {
  Header header;
  header.fingerprint = config.fingerprint;
  header.entry_pc = config.entry_pc;
  header.recorded = config.recorded;
  return header;
}

// Instruction byte length from the raw encoding: decompressed RVC forms
// keep their 16-bit parcel in `encoding`, so the standard low-bit rule
// applies unchanged.
u32 insn_length(u32 encoding) noexcept {
  return (encoding & 3) == 3 ? 4 : 2;
}

bool branch_taken(Op op, u32 rs1, u32 rs2) noexcept {
  switch (op) {
    case Op::kBeq: return rs1 == rs2;
    case Op::kBne: return rs1 != rs2;
    case Op::kBlt: return static_cast<i32>(rs1) < static_cast<i32>(rs2);
    case Op::kBge: return static_cast<i32>(rs1) >= static_cast<i32>(rs2);
    case Op::kBltu: return rs1 < rs2;
    case Op::kBgeu: return rs1 >= rs2;
    default: return false;
  }
}

}  // namespace

TraceRecorder::TraceRecorder(const Config& config)
    : config_(config), writer_(header_for(config)),
      cursor_(config.entry_pc) {}

Status TraceRecorder::attach_checked(s4e_vm* vm) {
  if (s4e_num_harts(vm) > 1) {
    return Error(ErrorCode::kUnsupported,
                 "trace recording requires a single-hart machine (an SMP "
                 "interleaving is not a single PC stream)");
  }
  attach(vm);
  return Status();
}

void TraceRecorder::flush_run() {
  if (run_count_ == 0) return;
  writer_.run(run_length_, run_count_);
  run_count_ = 0;
}

void TraceRecorder::plain(u32 length) {
  if (run_count_ != 0 && run_length_ != length) flush_run();
  run_length_ = length;
  ++run_count_;
  ++instructions_;
  advance(length);
}

void TraceRecorder::taint_at(TaintKind kind) {
  flush_run();
  writer_.taint(kind);
  ++taints_;
}

void TraceRecorder::flush_pending(const vp::RunResult* result) {
  if (!pending_) return;
  const Pending pending = *pending_;
  pending_.reset();
  flush_run();
  ++instructions_;
  switch (static_cast<OpClass>(pending.op_class)) {
    case OpClass::kLoad:
    case OpClass::kStore: {
      // Exactly one access on the non-trap path (a trapped access never
      // reaches here — on_trap flushed it as kTrapInsn).
      const MemAccess& access = pending.mem[0];
      const bool is_store =
          static_cast<OpClass>(pending.op_class) == OpClass::kStore;
      Tag tag;
      if (access.mmio) {
        tag = is_store ? (pending.length == 4 ? Tag::kStoreMmio4
                                              : Tag::kStoreMmio2)
                       : (pending.length == 4 ? Tag::kLoadMmio4
                                              : Tag::kLoadMmio2);
      } else {
        tag = is_store ? (pending.length == 4 ? Tag::kStore4 : Tag::kStore2)
                       : (pending.length == 4 ? Tag::kLoad4 : Tag::kLoad2);
      }
      writer_.mem(tag, access.addr, access.size);
      ++mem_accesses_;
      advance(pending.length);
      break;
    }
    case OpClass::kAmo:
      if (pending.mem_count == 2) {
        writer_.mem(Tag::kAmoRmw, pending.mem[0].addr, pending.mem[0].size);
        mem_accesses_ += 2;
      } else if (pending.mem_count == 1) {
        writer_.mem(pending.mem[0].store ? Tag::kAmoStore : Tag::kAmoLoad,
                    pending.mem[0].addr, pending.mem[0].size);
        ++mem_accesses_;
      } else {
        writer_.amo_fail();  // failed sc.w: no access modelled
      }
      advance(pending.length);
      break;
    case OpClass::kCsr:
      writer_.csr(pending.length);
      advance(pending.length);
      break;
    case OpClass::kSystem:
      if (static_cast<Op>(pending.op) == Op::kWfi) {
        if (result != nullptr &&
            result->reason == vp::StopReason::kWfiHalt) {
          writer_.wfi_halt();
        } else {
          // The wfi slept (timer armed: modelled time fast-forwarded) and
          // execution continued — a timing-dependent amount of time passed,
          // so the trace is only valid for the recording configuration.
          taint_at(TaintKind::kWfiSleep);
          writer_.wfi_sleep();
        }
      } else {
        // ecall on the semihosting-exit path (a trapped ecall/ebreak was
        // flushed by on_trap as kTrapInsn and never reaches here).
        writer_.sys_exit();
      }
      advance(pending.length);
      break;
    default:
      // Unreachable: only the classes above are made pending.
      advance(pending.length);
      break;
  }
}

void TraceRecorder::on_tb_exec(u32 tb_start) {
  flush_pending(nullptr);
  ++blocks_;
  if (cursor_valid_ && tb_start == cursor_) {
    flush_run();
    writer_.block();
    return;
  }
  if (cursor_valid_) {
    // Control flow arrived somewhere the event stream cannot derive — a
    // contract violation unless a taint (interrupt) explains it.
    taint_at(TaintKind::kCursorResync);
  }
  flush_run();
  writer_.block_at(tb_start, cursor_);
  cursor_ = tb_start;
  cursor_valid_ = true;
}

void TraceRecorder::on_insn_exec(const s4e_insn_info& insn) {
  flush_pending(nullptr);
  if (cursor_valid_ && insn.address != cursor_) {
    taint_at(TaintKind::kCursorResync);
    cursor_ = insn.address;
  } else if (!cursor_valid_) {
    // Should be resynced by the enclosing block dispatch; be safe.
    cursor_ = insn.address;
    cursor_valid_ = true;
  }
  const u32 length = insn_length(insn.encoding);
  switch (static_cast<OpClass>(insn.op_class)) {
    case OpClass::kArith:
    case OpClass::kFence:
      plain(length);
      break;
    case OpClass::kMul:
      flush_run();
      writer_.mul(length);
      ++instructions_;
      advance(length);
      break;
    case OpClass::kDiv: {
      // The iterative divider's cost depends on the dividend; read it now,
      // before execution can overwrite rs1 (rd may alias it).
      const u32 dividend = s4e_read_gpr(vm(), insn.rs1);
      flush_run();
      writer_.div(length, dividend);
      ++instructions_;
      advance(length);
      break;
    }
    case OpClass::kJump: {
      u32 target;
      if (static_cast<Op>(insn.op) == Op::kJalr) {
        target = (s4e_read_gpr(vm(), insn.rs1) +
                  static_cast<u32>(insn.imm)) & ~u32{1};
      } else {
        target = insn.address + static_cast<u32>(insn.imm);
      }
      flush_run();
      writer_.jump(insn.address, target);
      ++instructions_;
      cursor_ = target;
      break;
    }
    case OpClass::kBranch: {
      const bool taken = branch_taken(static_cast<Op>(insn.op),
                                      s4e_read_gpr(vm(), insn.rs1),
                                      s4e_read_gpr(vm(), insn.rs2));
      flush_run();
      if (taken) {
        const u32 target = insn.address + static_cast<u32>(insn.imm);
        writer_.branch_taken(insn.address, target);
        cursor_ = target;
      } else {
        writer_.branch_not_taken(length);
        advance(length);
      }
      ++instructions_;
      break;
    }
    case OpClass::kCsr: {
      // Counter CSRs read the very quantity the replay matrix varies; a
      // program that observes them can branch on them, so the recorded
      // path is only valid for the recording configuration.
      const Op op = static_cast<Op>(insn.op);
      const bool wants_read =
          !(op == Op::kCsrrw || op == Op::kCsrrwi) || insn.rd != 0;
      if (wants_read) {
        switch (insn.csr) {
          case isa::kCsrCycle:
          case isa::kCsrCycleh:
          case isa::kCsrMcycle:
          case isa::kCsrMcycleh:
            taint_at(TaintKind::kCsrCycleRead);
            break;
          case isa::kCsrTime:
          case isa::kCsrTimeh:
            taint_at(TaintKind::kCsrTimeRead);
            break;
          case isa::kCsrMip:
            taint_at(TaintKind::kCsrMipRead);
            break;
          default:
            break;
        }
      }
      pending_ = Pending{insn.address, length, insn.op, insn.op_class, {}, 0};
      break;
    }
    case OpClass::kSystem:
      if (static_cast<Op>(insn.op) == Op::kMret) {
        const u32 target = s4e_read_csr(vm(), isa::kCsrMepc);
        flush_run();
        writer_.mret(insn.address, target);
        ++instructions_;
        cursor_ = target;
      } else {
        // ecall / ebreak / wfi: outcome (exit, trap, halt, sleep) arrives
        // as a later event.
        pending_ =
            Pending{insn.address, length, insn.op, insn.op_class, {}, 0};
      }
      break;
    case OpClass::kLoad:
    case OpClass::kStore:
    case OpClass::kAmo:
      pending_ = Pending{insn.address, length, insn.op, insn.op_class, {}, 0};
      break;
    case OpClass::kCount:
      break;
  }
}

void TraceRecorder::on_mem(const s4e_mem_event& event) {
  if (!pending_ || pending_->mem_count >= 2) return;
  MemAccess access;
  access.addr = event.vaddr;
  access.size = event.size;
  access.store = event.is_store != 0;
  access.mmio = !(event.vaddr >= config_.ram_base &&
                  event.vaddr - config_.ram_base <=
                      config_.ram_size - event.size);
  if (access.mmio) {
    // CLINT and GPIO state is a function of modelled time; the UART and the
    // test finisher are not. CLINT *stores* arm interrupts whose delivery
    // point is cycle-exact, so they taint too.
    if (event.vaddr - vp::Clint::kDefaultBase < vp::Clint::kWindowSize) {
      taint_at(access.store ? TaintKind::kClintStore : TaintKind::kClintLoad);
    } else if (!access.store &&
               event.vaddr - vp::Gpio::kDefaultBase < vp::Gpio::kWindowSize) {
      taint_at(TaintKind::kGpioLoad);
    }
  }
  pending_->mem[pending_->mem_count++] = access;
}

void TraceRecorder::on_trap(const s4e_trap_event& event) {
  const bool interrupt = (event.cause & 0x8000'0000u) != 0;
  const u32 mtvec = s4e_read_csr(vm(), isa::kCsrMtvec);
  const bool handled = mtvec != 0;
  const u32 handler = mtvec & ~u32{3};  // sync traps: base, never vectored

  if (!interrupt && pending_ && event.epc == pending_->pc) {
    // Synchronous trap raised by the pending instruction's handler.
    const Pending pending = *pending_;
    pending_.reset();
    flush_run();
    writer_.trap_insn(pending.op_class, pending.length, handled, event.cause,
                      pending.pc, handler);
    ++instructions_;
    if (handled) {
      cursor_ = handler;
    } else {
      cursor_valid_ = false;  // run ends here
    }
    return;
  }

  flush_pending(nullptr);
  if (interrupt) {
    // Asynchronous: the delivery point is a function of the cycle count, so
    // the path from here on is configuration-specific.
    taint_at(TaintKind::kInterrupt);
    cursor_valid_ = false;  // next block dispatch resyncs via kBlockAt
    return;
  }
  // Standalone synchronous trap: instruction fetch / decode failed at a
  // block head — no instruction executed, no class cost charged.
  if (cursor_valid_ && event.epc != cursor_) {
    taint_at(TaintKind::kCursorResync);
    cursor_ = event.epc;
  }
  flush_run();
  writer_.trap_fetch(handled, event.cause, cursor_, handler);
  if (handled) {
    cursor_ = handler;
    cursor_valid_ = true;
  } else {
    cursor_valid_ = false;
  }
}

Footer TraceRecorder::make_footer(const vp::RunResult& result) const {
  Footer footer;
  footer.stop_reason = static_cast<u8>(result.reason);
  footer.exit_code = result.exit_code;
  footer.instructions = instructions_;
  footer.blocks = blocks_;
  footer.mem_accesses = mem_accesses_;
  footer.taints = taints_;
  footer.recorded_cycles = result.cycles;
  return footer;
}

Status TraceRecorder::finish(const vp::RunResult& result,
                             const std::string& path) {
  flush_pending(&result);
  flush_run();
  return writer_.save(path, make_footer(result));
}

std::vector<u8> TraceRecorder::finish_bytes(const vp::RunResult& result) {
  flush_pending(&result);
  flush_run();
  return writer_.finish(make_footer(result));
}

}  // namespace s4e::trace
