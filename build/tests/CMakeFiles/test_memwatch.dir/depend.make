# Empty dependencies file for test_memwatch.
# This may be replaced when dependencies are built.
