// VP-free differential timing replay — the "replay-many" half.
//
// replay() walks one recorded event stream and charges it under an arbitrary
// TimingParams configuration, running the *stateful* microarchitectural
// models (direct-mapped icache, bimodal predictor) against the recorded
// block/branch sequence. Because the exec engine's lowering precomputes all
// per-instruction costs from TimingModel::class_cycles() and the recorder
// preserves every input those costs depend on (latency class, RAM/MMIO
// classification, dividend, taken bit, block dispatches, traps), the
// replayed cycle count is bit-identical to what a live run under the same
// configuration would report — without booting a VP, decoding instructions,
// or simulating architectural state.
//
// Tainted traces (any timing-path-sensitive site: cycle CSR reads,
// CLINT/GPIO loads, interrupts, non-final wfi) are refused with a per-site
// diagnostic: under a different configuration the program could have taken a
// different path, and replaying the recorded one would be fiction.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "trace/format.hpp"

namespace s4e::trace {

struct ReplayResult {
  u64 cycles = 0;
  u64 instructions = 0;
  u64 blocks = 0;
  u64 icache_misses = 0;
  u64 mispredicts = 0;  // only counted when branch_predictor is enabled
};

// Called once per retired instruction with its PC, in program order (RLE
// runs are expanded). This is the hook the QTA path accumulator attaches to;
// it sees exactly the sequence a live run's insn_exec callback would.
using InsnHook = std::function<void(u32 pc)>;

// Refuse traces replay cannot honour: wrong workload (fingerprint mismatch;
// pass 0 to skip the check) or a timing-path-tainted recording (every taint
// site is listed with its PC and kind).
Status check_replayable(const Trace& trace, u64 expected_fingerprint);

// A trace decoded once into a flat compact-event vector: the varint stream
// decode (and the taint check) is paid a single time, and every
// per-configuration replay walks the shared read-only decoded form. This is
// what makes replay-many cheap — replay_matrix() and s4e-qta --replay decode
// once and fan the configurations out over it.
class DecodedTrace {
 public:
  // Refuses tainted traces (per-site diagnostic) and stream decode errors.
  static Result<DecodedTrace> decode(const Trace& trace);

  const Header& header() const noexcept { return header_; }
  const Footer& footer() const noexcept { return footer_; }
  std::size_t events() const noexcept { return events_.size(); }

  // One timing-relevant event, reduced to exactly the fields a replay
  // charges from (targets and addresses are dropped; classification bits
  // are folded into `flags`).
  struct Compact {
    u8 tag = 0;       // trace::Tag
    u8 op_class = 0;  // isa::OpClass (kTrapInsn only)
    u8 length = 0;    // instruction byte length (RLE run stride)
    u8 flags = 0;     // bit0 mem store, bit1 mem MMIO, bit2 trap handled
    u32 pc = 0;
    u32 count = 0;    // RLE run length
    u32 dividend = 0; // kDiv: rs1 value at issue
  };
  const std::vector<Compact>& stream() const noexcept { return events_; }

 private:
  DecodedTrace() = default;
  std::vector<Compact> events_;
  Header header_;
  Footer footer_;
};

// Charge the trace under `params`. Validates replayability (taints) first;
// cross-checks the walked instruction/block counts against the footer.
Result<ReplayResult> replay(const Trace& trace, const vp::TimingParams& params,
                            const InsnHook& on_insn = nullptr);

// Same, over a pre-decoded trace — the fast path for replay-many.
Result<ReplayResult> replay(const DecodedTrace& trace,
                            const vp::TimingParams& params,
                            const InsnHook& on_insn = nullptr);

// Replay under the *recording* configuration and compare against the cycle
// count the footer captured from the live run — the trace's built-in
// end-to-end self check.
Status self_check(const Trace& trace);

// One named point of the replay configuration matrix.
struct NamedTiming {
  std::string name;  // "base", "icache+bpred", ...
  vp::TimingParams params;
};

// The full E8 ablation lattice: every combination of the five binary
// microarchitectural features (icache, branch predictor, slow RAM, deep
// pipeline, slow multiplier/divider) on the default base — 32 configurations.
std::vector<NamedTiming> timing_matrix();

struct MatrixRow {
  std::string name;
  vp::TimingParams params;
  ReplayResult result;
};

// Fan one trace out over `configs` on a thread pool (`jobs` as in
// exec::ThreadPool::resolve_jobs; 0 = hardware concurrency). The trace is
// shared read-only; rows come back in `configs` order.
Result<std::vector<MatrixRow>> replay_matrix(
    const Trace& trace, const std::vector<NamedTiming>& configs,
    unsigned jobs);

}  // namespace s4e::trace
