# Empty compiler generated dependencies file for s4e-cov.
# This may be replaced when dependencies are built.
