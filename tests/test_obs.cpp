// Observability layer tests: flight-recorder ring semantics and post-mortem
// content, deterministic metric shard aggregation, campaign telemetry
// invariance across worker counts and machine reuse, JSONL trace
// well-formedness, and the bench-report failure path.
//
// Labeled `obs` (run with `ctest -L obs`) and `tsan`: the campaign
// invariance tests drive the thread pool with per-worker metric shards, the
// exact write pattern the registry's lock-free-by-partitioning argument
// must survive race checking for.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "asm/assembler.hpp"
#include "bench/bench_report.hpp"
#include "fault/fault.hpp"
#include "mutation/mutation.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "vp/machine.hpp"

namespace s4e::obs {
namespace {

assembler::Program build(const std::string& source) {
  auto program = assembler::assemble(source);
  EXPECT_TRUE(program.ok())
      << (program.ok() ? "" : program.error().to_string());
  return *program;
}

// Self-checking checksum: the usual campaign workload.
const char* kChecksumSource = R"(
_start:
    la t0, data
    li t1, 8
    li a0, 0
loop:
    lw t2, 0(t0)
    add a0, a0, t2
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, loop
    li a7, 93
    ecall
.data
data:
    .word 1, 2, 3, 4, 5, 6, 7, 8
)";

// --- Flight recorder -------------------------------------------------------

TEST(FlightRecorder, RingRetainsNewestEvents) {
  vp::Machine machine;
  auto program = build(kChecksumSource);
  ASSERT_TRUE(machine.load_program(program).ok());
  FlightRecorderPlugin recorder(8);
  recorder.attach(machine.vm_handle());
  auto run = machine.run();
  ASSERT_TRUE(run.normal_exit());

  // The workload generates far more events than the ring holds; only the
  // newest `capacity` survive, oldest-first, with contiguous sequence
  // numbers ending at the last event observed.
  EXPECT_EQ(recorder.capacity(), 8u);
  EXPECT_GT(recorder.recorded(), recorder.capacity());
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), recorder.capacity());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, recorder.recorded() - events.size() + i);
  }
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorderPlugin recorder(5);
  EXPECT_EQ(recorder.capacity(), 8u);
}

TEST(FlightRecorder, SnapshotBeforeWraparound) {
  vp::Machine machine;
  ASSERT_TRUE(machine
                  .load_program(build(R"(
    li a7, 93
    li a0, 0
    ecall
)"))
                  .ok());
  FlightRecorderPlugin recorder(64);
  recorder.attach(machine.vm_handle());
  ASSERT_TRUE(machine.run().normal_exit());
  // 3 instructions executed, nothing wrapped: snapshot is exactly those.
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), recorder.recorded());
  EXPECT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].kind, FlightEvent::Kind::kInsn);
}

TEST(FlightRecorder, PostMortemDescribesHang) {
  vp::MachineConfig config;
  config.max_instructions = 500;
  vp::Machine machine(config);
  ASSERT_TRUE(machine
                  .load_program(build(R"(
_start:
    li t0, 1
spin:
    addi t0, t0, 1
    j spin
)"))
                  .ok());
  FlightRecorderPlugin recorder;
  recorder.attach(machine.vm_handle());
  auto run = machine.run();
  ASSERT_EQ(run.reason, vp::StopReason::kMaxInstructions);

  const std::string dump = recorder.post_mortem(8);
  // The dump names the spin loop: the PC trail with disassembly and the
  // last control-flow decision.
  EXPECT_NE(dump.find("flight recorder:"), std::string::npos) << dump;
  EXPECT_NE(dump.find("addi t0, t0, 1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("last branch:"), std::string::npos) << dump;
  EXPECT_NE(dump.find("jal"), std::string::npos) << dump;
}

// --- Metrics registry ------------------------------------------------------

TEST(Metrics, CounterSumsAcrossShards) {
  MetricsRegistry registry;
  const MetricId hits = registry.add_counter("hits");
  registry.open_shards(3);
  registry.shard(0).add(hits, 5);
  registry.shard(1).add(hits, 7);
  registry.shard(2).add(hits, 1);
  EXPECT_EQ(registry.value(hits), 13u);
}

TEST(Metrics, GaugeTakesMaxAcrossShards) {
  MetricsRegistry registry;
  const MetricId depth = registry.add_gauge("depth");
  registry.open_shards(2);
  registry.shard(0).set(depth, 9);
  registry.shard(1).set(depth, 4);
  registry.shard(1).set(depth, 2);  // lower than the shard's max: ignored
  EXPECT_EQ(registry.value(depth), 9u);
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  MetricsRegistry registry;
  const MetricId hist = registry.add_histogram("lat", {10, 100, 1000});
  registry.open_shards(2);
  registry.shard(0).observe(hist, 3);      // <= 10
  registry.shard(0).observe(hist, 10);     // <= 10 (bounds are inclusive)
  registry.shard(1).observe(hist, 50);     // <= 100
  registry.shard(1).observe(hist, 5000);   // overflow
  const auto counts = registry.histogram_counts(hist);
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(registry.value(hist), 4u);  // total observations
}

// The determinism contract: the same multiset of updates produces the same
// aggregate (and the same JSON) no matter how it is partitioned over
// shards — this is what makes campaign metrics byte-identical across
// worker counts.
TEST(Metrics, AggregationIsPartitionInvariant) {
  const std::vector<u64> samples = {1, 4, 9, 16, 25, 36, 49, 64, 81, 100};

  auto run_partitioned = [&](unsigned shards) {
    MetricsRegistry registry;
    const MetricId runs = registry.add_counter("runs");
    const MetricId peak = registry.add_gauge("peak");
    const MetricId hist = registry.add_histogram("val", {10, 50});
    registry.open_shards(shards);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      auto& shard = registry.shard(static_cast<unsigned>(i % shards));
      shard.add(runs, 1);
      shard.set(peak, samples[i]);
      shard.observe(hist, samples[i]);
    }
    return registry.to_json();
  };

  const std::string serial = run_partitioned(1);
  EXPECT_EQ(serial, run_partitioned(2));
  EXPECT_EQ(serial, run_partitioned(4));
  EXPECT_NE(serial.find("\"runs\": 10"), std::string::npos) << serial;
  EXPECT_NE(serial.find("\"peak\": 100"), std::string::npos) << serial;
}

// --- Campaign telemetry ----------------------------------------------------

TEST(CampaignTelemetry, FaultMetricsInvariantAcrossJobsAndReuse) {
  auto program = build(kChecksumSource);
  auto campaign_result = [&](unsigned jobs, bool reuse) {
    fault::CampaignConfig config;
    config.mutant_count = 30;
    config.seed = 3;
    config.jobs = jobs;
    config.reuse_machines = reuse;
    config.collect_metrics = true;
    config.post_mortem = true;
    auto result = fault::Campaign(program, config).run();
    EXPECT_TRUE(result.ok());
    return *result;
  };

  const auto serial = campaign_result(1, true);
  EXPECT_NE(serial.metrics_json, "{}");
  EXPECT_NE(serial.metrics_json.find("\"mutants_total\": 30"),
            std::string::npos)
      << serial.metrics_json;

  for (const auto& other :
       {campaign_result(2, true), campaign_result(1, false),
        campaign_result(2, false)}) {
    // Byte-identical telemetry AND byte-identical stdout report.
    EXPECT_EQ(serial.metrics_json, other.metrics_json);
    EXPECT_EQ(serial.to_string(), other.to_string());
    // Post-mortems live on the per-slot results, so they are deterministic
    // across scheduling too.
    ASSERT_EQ(serial.mutants.size(), other.mutants.size());
    for (std::size_t i = 0; i < serial.mutants.size(); ++i) {
      EXPECT_EQ(serial.mutants[i].post_mortem, other.mutants[i].post_mortem);
    }
  }
}

TEST(CampaignTelemetry, MetricsOffByDefault) {
  fault::CampaignConfig config;
  config.mutant_count = 5;
  config.jobs = 1;
  auto result = fault::Campaign(build(kChecksumSource), config).run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics_json, "{}");
  for (const auto& mutant : result->mutants) {
    EXPECT_TRUE(mutant.post_mortem.empty());
  }
}

TEST(CampaignTelemetry, HangMutantCarriesPostMortem) {
  // A loop whose counter is a juicy fault target: stuck-at / flipped
  // counters hang, and every hang must carry a flight-recorder dump.
  fault::CampaignConfig config;
  config.mutant_count = 60;
  config.seed = 7;
  config.jobs = 1;
  config.post_mortem = true;
  config.machine.max_instructions = 100'000;
  auto result = fault::Campaign(build(kChecksumSource), config).run();
  ASSERT_TRUE(result.ok());

  bool saw_hang = false;
  for (const auto& mutant : result->mutants) {
    const bool dumpworthy = mutant.outcome == fault::Outcome::kHang ||
                            mutant.outcome == fault::Outcome::kCrash;
    EXPECT_EQ(!mutant.post_mortem.empty(), dumpworthy);
    if (mutant.outcome != fault::Outcome::kHang) continue;
    saw_hang = true;
    // The dump shows the tail of the spin: the loop body instructions and
    // the last taken branch.
    EXPECT_NE(mutant.post_mortem.find("flight recorder:"), std::string::npos);
    EXPECT_NE(mutant.post_mortem.find("last branch:"), std::string::npos);
  }
  EXPECT_TRUE(saw_hang) << "seed produced no hang; pick another seed";
}

TEST(CampaignTelemetry, MutationMetricsInvariantAcrossJobs) {
  auto program = build(kChecksumSource);
  auto score_for = [&](unsigned jobs, bool reuse) {
    mutation::MutationConfig config;
    config.max_mutants = 25;
    config.jobs = jobs;
    config.reuse_machines = reuse;
    config.collect_metrics = true;
    config.post_mortem = true;
    auto score = mutation::MutationCampaign(program, config).run();
    EXPECT_TRUE(score.ok());
    return *score;
  };
  const auto serial = score_for(1, true);
  EXPECT_NE(serial.metrics_json.find("\"killed_result\":"),
            std::string::npos)
      << serial.metrics_json;
  for (const auto& other : {score_for(2, true), score_for(2, false)}) {
    EXPECT_EQ(serial.metrics_json, other.metrics_json);
    EXPECT_EQ(serial.to_string(), other.to_string());
  }
}

// --- JSONL trace -----------------------------------------------------------

TEST(JsonlTrace, WellFormedLines) {
  const std::string path =
      ::testing::TempDir() + "/obs_trace_" + std::to_string(getpid()) +
      ".jsonl";
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr);
  {
    vp::Machine machine;
    ASSERT_TRUE(machine.load_program(build(kChecksumSource)).ok());
    JsonlTracePlugin trace(out);
    trace.attach(machine.vm_handle());
    ASSERT_TRUE(machine.run().normal_exit());
    std::fclose(out);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    u64 lines = 0;
    bool saw_insn = false;
    bool saw_mem = false;
    bool saw_exit = false;
    while (std::getline(in, line)) {
      ++lines;
      ASSERT_FALSE(line.empty());
      // One complete JSON object per line, no raw control characters.
      EXPECT_EQ(line.front(), '{') << line;
      EXPECT_EQ(line.back(), '}') << line;
      EXPECT_NE(line.find("\"t\":\""), std::string::npos) << line;
      for (const char c : line) EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
      saw_insn |= line.rfind("{\"t\":\"insn\"", 0) == 0;
      saw_mem |= line.rfind("{\"t\":\"mem\"", 0) == 0;
      saw_exit |= line.rfind("{\"t\":\"exit\"", 0) == 0;
    }
    EXPECT_EQ(lines, trace.lines());
    EXPECT_TRUE(saw_insn);
    EXPECT_TRUE(saw_mem);
    EXPECT_TRUE(saw_exit);
  }
  std::remove(path.c_str());
}

TEST(JsonlTrace, LimitBoundsEventLinesNotExit) {
  const std::string path =
      ::testing::TempDir() + "/obs_trace_lim_" + std::to_string(getpid()) +
      ".jsonl";
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr);
  vp::Machine machine;
  ASSERT_TRUE(machine.load_program(build(kChecksumSource)).ok());
  JsonlTracePlugin trace(out, 10);
  trace.attach(machine.vm_handle());
  ASSERT_TRUE(machine.run().normal_exit());
  std::fclose(out);

  std::ifstream in(path);
  std::string line;
  std::vector<std::string> all;
  while (std::getline(in, line)) all.push_back(line);
  ASSERT_EQ(all.size(), 11u);  // 10 insn/mem lines + the exit line
  EXPECT_EQ(all.back().rfind("{\"t\":\"exit\"", 0), 0u) << all.back();
  std::remove(path.c_str());
}

// --- bench report merge ----------------------------------------------------

TEST(BenchReport, MergePreservesOtherEntries) {
  const std::string path =
      ::testing::TempDir() + "/obs_bench_" + std::to_string(getpid()) +
      ".json";
  EXPECT_TRUE(bench::merge_bench_entry(path, "alpha", "{\"v\": 1}"));
  EXPECT_TRUE(bench::merge_bench_entry(path, "beta", "{\"v\": 2}"));
  EXPECT_TRUE(bench::merge_bench_entry(path, "alpha", "{\"v\": 3}"));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"alpha\": {\"v\": 3}"), std::string::npos)
      << content;
  EXPECT_NE(content.find("\"beta\": {\"v\": 2}"), std::string::npos)
      << content;
  std::remove(path.c_str());
}

TEST(BenchReport, MergeIsAtomicAndLeavesNoStagingFile) {
  // The merge stages into `<path>.tmp.<pid>` and renames over the target;
  // after a successful merge the staging file must be gone and the target
  // must parse as one complete object (no truncated hybrid).
  const std::string path =
      ::testing::TempDir() + "/obs_bench_atomic_" + std::to_string(getpid()) +
      ".json";
  const std::string temp = path + ".tmp." + std::to_string(getpid());
  EXPECT_TRUE(bench::merge_bench_entry(path, "alpha", "{\"v\": 1}"));
  EXPECT_TRUE(bench::merge_bench_entry(path, "beta", "{\"v\": 2}"));
  std::ifstream temp_in(temp);
  EXPECT_FALSE(temp_in.good()) << "staging file left behind: " << temp;
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content.front(), '{');
  EXPECT_EQ(content.substr(content.size() - 2), "}\n");
  std::remove(path.c_str());
}

TEST(BenchReport, MergeReportsUnwritablePath) {
  // Used to silently produce nothing; must now return false so tools and
  // benches can fail loudly instead of dropping the report entry.
  EXPECT_FALSE(bench::merge_bench_entry(
      "/nonexistent-dir/report.json", "key", "{}"));
}

}  // namespace
}  // namespace s4e::obs
