file(REMOVE_RECURSE
  "libs4e_core.a"
)
