#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace s4e {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace s4e
