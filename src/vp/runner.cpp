#include "vp/runner.hpp"

#include <set>
#include <utility>

#include "vp/s4e_plugin.h"

namespace s4e::vp {

u64 data_memory_hash(Machine& machine, const assembler::Program& program) {
  const assembler::Section* data = program.find_section(".data");
  if (data == nullptr || data->bytes.empty()) return 0;
  std::vector<u8> buffer(data->bytes.size());
  if (!machine.bus()
           .ram_read(data->base, buffer.data(),
                     static_cast<u32>(buffer.size()))
           .ok()) {
    return 0;
  }
  u64 hash = 0xcbf29ce484222325ULL;  // FNV-1a
  for (u8 byte : buffer) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

u64 hang_budget(u64 golden_instructions, u64 factor,
                u64 max_instructions) noexcept {
  const u64 budget = saturating_add(
      saturating_mul(golden_instructions, factor), 10'000);
  return budget < max_instructions ? budget : max_instructions;
}

Result<GoldenRun> run_golden(Machine& machine,
                             const assembler::Program& program) {
  S4E_TRY_STATUS(machine.load_program(program));

  // Record touched data memory and executed code through the C API, the
  // same way campaign plugins observe the run.
  struct Tracker {
    std::set<u32> memory;
    std::set<u32> code;
  } tracker;
  s4e_register_mem_cb(
      machine.vm_handle(),
      [](void* userdata, s4e_vm*, const s4e_mem_event* event) {
        static_cast<Tracker*>(userdata)->memory.insert(event->vaddr);
      },
      &tracker);
  s4e_register_tb_trans_cb(
      machine.vm_handle(),
      [](void* userdata, s4e_vm*, const s4e_tb_info* tb) {
        auto* t = static_cast<Tracker*>(userdata);
        for (u32 i = 0; i < tb->n_insns; ++i) {
          t->code.insert(tb->insns[i].address);
        }
      },
      &tracker);

  GoldenRun golden;
  golden.result = machine.run();
  if (!golden.result.normal_exit()) {
    return Error(ErrorCode::kStateError,
                 "golden run did not terminate normally: " +
                     std::string(to_string(golden.result.reason)));
  }
  golden.uart = machine.uart() != nullptr ? machine.uart()->tx_log() : "";
  golden.memory_hash = data_memory_hash(machine, program);
  golden.executed_code.assign(tracker.code.begin(), tracker.code.end());
  golden.touched_memory.assign(tracker.memory.begin(), tracker.memory.end());
  return golden;
}

Result<std::unique_ptr<WorkerVm>> WorkerVm::create(
    const MachineConfig& config, const assembler::Program& program) {
  std::unique_ptr<WorkerVm> vm(new WorkerVm(config));
  S4E_TRY_STATUS(vm->machine_.load_program(program));
  vm->machine_.save_state(vm->baseline_);
  return vm;
}

Machine& WorkerVm::prepare() {
  machine_.clear_plugins();
  machine_.restore_state(baseline_);
  return machine_;
}

}  // namespace s4e::vp
