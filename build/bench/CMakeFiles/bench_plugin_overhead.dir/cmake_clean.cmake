file(REMOVE_RECURSE
  "CMakeFiles/bench_plugin_overhead.dir/bench_plugin_overhead.cpp.o"
  "CMakeFiles/bench_plugin_overhead.dir/bench_plugin_overhead.cpp.o.d"
  "bench_plugin_overhead"
  "bench_plugin_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plugin_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
