file(REMOVE_RECURSE
  "CMakeFiles/test_memwatch.dir/test_memwatch.cpp.o"
  "CMakeFiles/test_memwatch.dir/test_memwatch.cpp.o.d"
  "test_memwatch"
  "test_memwatch.pdb"
  "test_memwatch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memwatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
