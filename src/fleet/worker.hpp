// Worker-side streaming for fleet shards: after s4e-faultsim / s4e-mutate
// finish their shard, `--emit-jsonl` replaces the human report with the
// fleet wire stream (meta, records in global index order, done), written
// to stdout or dialed back to the orchestrator over loopback TCP.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "fleet/records.hpp"

namespace s4e::fleet {

struct EmitOptions {
  int result_port = -1;      // -1 = stdout, else loopback TCP dial-back
  // Failure-injection hook (tests): sleep before emitting record N+1 so
  // the orchestrator can SIGKILL this worker at a deterministic point.
  unsigned stall_after = 0;
};

// Stream one shard: the meta line, every pre-encoded record line, and the
// done line. Records are flushed individually so the orchestrator sees
// them as they happen (and the stall hook has a defined cut point).
Status emit_stream(const MetaLine& meta,
                   const std::vector<std::string>& record_lines,
                   const EmitOptions& options);

// Parse an "i/N" shard selector (0 <= i < N). nullopt on malformed input.
std::optional<std::pair<unsigned, unsigned>> parse_shard(
    std::string_view text);

// Raw file bytes for campaign fingerprinting; error on unreadable path.
Result<std::string> read_file_bytes(const std::string& path);

}  // namespace s4e::fleet
