file(REMOVE_RECURSE
  "CMakeFiles/s4e-wcet.dir/s4e_wcet.cpp.o"
  "CMakeFiles/s4e-wcet.dir/s4e_wcet.cpp.o.d"
  "s4e-wcet"
  "s4e-wcet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e-wcet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
