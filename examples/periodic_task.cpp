// Edge-demonstrator scenario: a periodic sensor task driven by the CLINT
// machine timer. The firmware sleeps in wfi, wakes on each timer interrupt,
// "samples" a sensor (here: a software LFSR), accumulates a filtered value
// and reprograms mtimecmp for the next period. After N periods it reports
// the result over the UART and exits.
//
// Demonstrated here: the interrupt/trap model of the VP, per-job timing
// observation through the plugin API, and a deadline check — each job's
// cycle cost is measured against the static WCET of the job body.
//
//   $ ./examples/periodic_task [periods]      (default 10)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "asm/assembler.hpp"
#include "common/strings.hpp"
#include "vp/machine.hpp"
#include "vp/plugin.hpp"

namespace {

using namespace s4e;

// Firmware. The timer handler only sets a flag (classic edge firmware
// structure); the main loop does the work. Period = 2000 model cycles.
std::string firmware(unsigned periods) {
  return format(R"(
.equ CLINT_CMP, 0x2004000
.equ CLINT_TIME, 0x200bff8
.equ UART, 0x10000000
.equ PERIOD, 2000

_start:
    la t0, tick_handler
    csrw mtvec, t0
    li s0, %u            # remaining periods
    li s1, 0x1b          # LFSR state ("sensor")
    li s2, 0             # filtered accumulator
    li s3, 0             # tick flag address base (we use mscratch instead)
    csrw mscratch, zero
    # arm the first period
    li t0, CLINT_TIME
    lw t1, 0(t0)
    li t2, PERIOD
    add t1, t1, t2
    li t0, CLINT_CMP
    sw t1, 0(t0)
    sw zero, 4(t0)
    li t0, 128           # mie.MTIE
    csrw mie, t0
    csrsi mstatus, 8     # global enable

main_loop:
    wfi                  # sleep until the timer fires
    csrr t0, mscratch    # tick pending?
    beqz t0, main_loop
    csrw mscratch, zero

job_start:
    # --- job body: LFSR step + low-pass accumulate ---
    andi t0, s1, 1
    srli s1, s1, 1
    beqz t0, no_tap
    li t1, 0xB8
    xor s1, s1, t1
no_tap:
    add s2, s2, s1
    srli s2, s2, 1
job_end:
    addi s0, s0, -1
    bnez s0, main_loop

    # report the filtered value as a single byte over the UART and exit
    li t0, UART
    andi t1, s2, 0xff
    sw t1, 0(t0)
    mv a0, s2
    li a7, 93
    ecall

tick_handler:
    csrwi mscratch, 1    # set the tick flag
    # rearm: mtimecmp += PERIOD
    li t5, CLINT_CMP
    lw t6, 0(t5)
    li t4, PERIOD
    add t6, t6, t4
    sw t6, 0(t5)
    sw zero, 4(t5)
    mret
)",
                periods);
}

// Observes job_start..job_end spans and records per-job cycle costs.
class JobTimer final : public vp::PluginBase {
 public:
  JobTimer(u32 job_start, u32 job_end)
      : job_start_(job_start), job_end_(job_end) {}

  Subscriptions subscriptions() const override {
    Subscriptions subs;
    subs.insn_exec = true;
    return subs;
  }

  void on_insn_exec(const s4e_insn_info& insn) override {
    if (insn.address == job_start_) {
      start_cycles_ = s4e_cycles(vm());
    } else if (insn.address == job_end_ && start_cycles_ != 0) {
      jobs_.push_back(s4e_cycles(vm()) - start_cycles_);
      start_cycles_ = 0;
    }
  }

  const std::vector<u64>& jobs() const noexcept { return jobs_; }

 private:
  u32 job_start_;
  u32 job_end_;
  u64 start_cycles_ = 0;
  std::vector<u64> jobs_;
};

}  // namespace

int main(int argc, char** argv) {
  const unsigned periods =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 10;

  auto program = assembler::assemble(firmware(periods));
  if (!program.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n",
                 program.error().to_string().c_str());
    return 1;
  }

  vp::Machine machine;
  S4E_CHECK(machine.load_program(*program).ok());
  JobTimer timer(*program->symbol("job_start"), *program->symbol("job_end"));
  timer.attach(machine.vm_handle());

  const vp::RunResult result = machine.run();
  std::printf("periodic sensor task: %u periods of 2000 cycles\n", periods);
  std::printf("run: reason=%s exit=%d, %llu instructions, %llu cycles\n",
              std::string(vp::to_string(result.reason)).c_str(),
              result.exit_code,
              static_cast<unsigned long long>(result.instructions),
              static_cast<unsigned long long>(result.cycles));
  std::printf("uart reported byte: 0x%02x\n",
              machine.uart()->tx_log().empty()
                  ? 0u
                  : static_cast<unsigned char>(machine.uart()->tx_log()[0]));

  std::printf("\nper-job cycle cost (deadline = period = 2000):\n");
  u64 worst = 0;
  for (std::size_t i = 0; i < timer.jobs().size(); ++i) {
    worst = std::max(worst, timer.jobs()[i]);
    std::printf("  job %2zu : %4llu cycles%s\n", i,
                static_cast<unsigned long long>(timer.jobs()[i]),
                timer.jobs()[i] > 2000 ? "  ** DEADLINE MISS **" : "");
  }
  std::printf("worst observed job: %llu cycles — %s\n",
              static_cast<unsigned long long>(worst),
              worst <= 2000 ? "all deadlines met" : "DEADLINE VIOLATED");

  const bool ok = result.normal_exit() &&
                  timer.jobs().size() == periods && worst <= 2000;
  return ok ? 0 : 1;
}
