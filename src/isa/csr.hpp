// Machine-mode CSR address map (the subset a bare-metal edge workload and
// the trap model need) plus name <-> address translation.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "common/bits.hpp"

namespace s4e::isa {

// 12-bit CSR addresses (RISC-V privileged spec, machine mode).
enum Csr : u16 {
  kCsrMstatus = 0x300,
  kCsrMisa = 0x301,
  kCsrMie = 0x304,
  kCsrMtvec = 0x305,
  kCsrMscratch = 0x340,
  kCsrMepc = 0x341,
  kCsrMcause = 0x342,
  kCsrMtval = 0x343,
  kCsrMip = 0x344,
  kCsrMcycle = 0xb00,
  kCsrMinstret = 0xb02,
  kCsrMcycleh = 0xb80,
  kCsrMinstreth = 0xb82,
  kCsrCycle = 0xc00,
  kCsrTime = 0xc01,
  kCsrInstret = 0xc02,
  kCsrCycleh = 0xc80,
  kCsrTimeh = 0xc81,
  kCsrInstreth = 0xc82,
  kCsrMvendorid = 0xf11,
  kCsrMarchid = 0xf12,
  kCsrMimpid = 0xf13,
  kCsrMhartid = 0xf14,
};

// Name for a known CSR address; nullopt for unknown ones (disassembler then
// prints the raw hex address).
std::optional<std::string_view> csr_name(u16 address) noexcept;

// Address for a CSR name ("mstatus" -> 0x300).
std::optional<u16> parse_csr(std::string_view name) noexcept;

// All CSR addresses the VP implements, in ascending order. The coverage
// metric reports CSR access coverage over this set.
const std::vector<u16>& implemented_csrs();

// True if writes to this address are architecturally ignored (read-only).
bool csr_is_read_only(u16 address) noexcept;

}  // namespace s4e::isa
