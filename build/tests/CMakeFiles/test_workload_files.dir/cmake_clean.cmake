file(REMOVE_RECURSE
  "CMakeFiles/test_workload_files.dir/test_workload_files.cpp.o"
  "CMakeFiles/test_workload_files.dir/test_workload_files.cpp.o.d"
  "test_workload_files"
  "test_workload_files.pdb"
  "test_workload_files[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
