file(REMOVE_RECURSE
  "CMakeFiles/s4e_cfg.dir/builder.cpp.o"
  "CMakeFiles/s4e_cfg.dir/builder.cpp.o.d"
  "CMakeFiles/s4e_cfg.dir/dominators.cpp.o"
  "CMakeFiles/s4e_cfg.dir/dominators.cpp.o.d"
  "CMakeFiles/s4e_cfg.dir/loops.cpp.o"
  "CMakeFiles/s4e_cfg.dir/loops.cpp.o.d"
  "libs4e_cfg.a"
  "libs4e_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
