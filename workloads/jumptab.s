# byte-coded dispatcher through a .word jump table
# expected exit code: 25

_start:
    la s0, opcodes
    li s1, 8           # opcode count
    li s2, 0           # accumulator
dispatch:
    lbu t0, 0(s0)
    andi t0, t0, 3     # clamp selector to the table
    slli t0, t0, 2
    la t1, table
    add t0, t0, t1
    lw t0, 0(t0)
    jalr zero, 0(t0)   # jump-table dispatch
op_add:
    addi s2, s2, 5
    j next
op_sub:
    addi s2, s2, -2
    j next
op_dbl:
    slli s2, s2, 1
    j next
op_nop:
next:
    addi s0, s0, 1
    addi s1, s1, -1
    bnez s1, dispatch
    mv a0, s2
    li a7, 93
    ecall
.data
opcodes:
    .byte 0, 1, 2, 0, 3, 2, 1, 0
table:
    .word op_add, op_sub, op_dbl, op_nop
