#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "core/workloads.hpp"
#include "vp/machine.hpp"
#include "wcet/analyzer.hpp"

namespace s4e::wcet {
namespace {

Result<AnalysisResult> analyze(std::string_view source) {
  auto program = assembler::assemble(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().to_string());
  return Analyzer().analyze(*program);
}

AnalysisResult analyze_ok(std::string_view source) {
  auto result = analyze(source);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().to_string());
  return *result;
}

// Run the same source on the VP and return observed cycles.
u64 observe(std::string_view source) {
  auto program = assembler::assemble(source);
  EXPECT_TRUE(program.ok());
  vp::Machine machine;
  EXPECT_TRUE(machine.load_program(*program).ok());
  auto result = machine.run();
  EXPECT_TRUE(result.normal_exit() || result.reason == vp::StopReason::kEbreak)
      << std::string(vp::to_string(result.reason));
  return result.cycles;
}

constexpr const char* kExit = "    li a7, 93\n    li a0, 0\n    ecall\n";

TEST(Wcet, StraightLineBoundHolds) {
  const std::string source = std::string(R"(
    li t0, 1
    li t1, 2
    add t2, t0, t1
    mul t3, t2, t2
)") + kExit;
  auto analysis = analyze_ok(source);
  EXPECT_GT(analysis.total_wcet, 0u);
  EXPECT_GE(analysis.total_wcet, observe(source));
}

TEST(Wcet, SingleLoopScalesWithBound) {
  auto small = analyze_ok(R"(
    li t0, 10
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    ecall
  )");
  auto large = analyze_ok(R"(
    li t0, 1000
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    ecall
  )");
  // The bound must scale roughly linearly with the loop count.
  EXPECT_GT(large.total_wcet, 50 * (small.total_wcet / 10));
  EXPECT_GE(large.total_wcet, observe(R"(
    li t0, 1000
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    ecall
  )"));
}

TEST(Wcet, BranchTakesWorstArm) {
  // The bound must cover the heavier arm (divisions) even if the actual run
  // takes the light one.
  const std::string source = R"(
    li a0, 0            # take the light arm at runtime
    beqz a0, light
heavy:
    div t0, t1, t2
    div t0, t1, t2
    div t0, t1, t2
    j end
light:
    addi t0, t0, 1
end:
    li a7, 93
    li a0, 0
    ecall
  )";
  auto analysis = analyze_ok(source);
  // Worst case must be at least 3 divides even though the run avoids them.
  vp::TimingModel timing;
  EXPECT_GE(analysis.total_wcet, 3u * timing.params().div_max_cycles);
  EXPECT_GE(analysis.total_wcet, observe(source));
}

TEST(Wcet, NestedLoopsMultiply) {
  auto analysis = analyze_ok(R"(
    li s0, 10
outer:
    li t0, 20
inner:
    addi t0, t0, -1
    bnez t0, inner
    addi s0, s0, -1
    bnez s0, outer
    li a7, 93
    ecall
  )");
  // ~200 inner iterations at >= 2 cycles each.
  EXPECT_GE(analysis.total_wcet, 400u);
  ASSERT_EQ(analysis.functions.size(), 1u);
  EXPECT_EQ(analysis.functions[0].loop_count, 2u);
  EXPECT_EQ(analysis.functions[0].bounded_loops, 2u);
}

TEST(Wcet, UnboundedLoopRejected) {
  auto result = analyze(R"(
    la t0, data
    lw t1, 0(t0)
loop:
    addi t1, t1, -1
    bnez t1, loop
    li a7, 93
    ecall
.data
data:
    .word 3
  )");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message().find("loopbound"), std::string::npos);
}

TEST(Wcet, AnnotationUnblocksDataDependentLoop) {
  const std::string source = R"(
    la t0, data
    lw t1, 0(t0)
loop:
    .loopbound 16
    addi t1, t1, -1
    bnez t1, loop
    li a7, 93
    li a0, 0
    ecall
.data
data:
    .word 16
  )";
  auto analysis = analyze_ok(source);
  EXPECT_GE(analysis.total_wcet, observe(source));
}

TEST(Wcet, CallSummarizedInterprocedurally) {
  auto analysis = analyze_ok(R"(
_start:
    call helper
    call helper
    li a7, 93
    ecall
helper:
    li t0, 50
hloop:
    addi t0, t0, -1
    bnez t0, hloop
    ret
  )");
  ASSERT_EQ(analysis.functions.size(), 2u);
  EXPECT_EQ(analysis.functions[0].name, "_start");
  // _start's bound must include two helper invocations.
  const u64 helper_wcet = analysis.functions[1].wcet;
  EXPECT_GE(analysis.total_wcet, 2 * helper_wcet);
}

TEST(Wcet, RecursionRejected) {
  auto result = analyze(R"(
_start:
    call recurse
    li a7, 93
    ecall
recurse:
    call recurse
    ret
  )");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message().find("recursi"), std::string::npos);
}

TEST(Wcet, AnnotatedCfgRoundTrip) {
  auto analysis = analyze_ok(R"(
    li t0, 4
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    ecall
  )");
  const std::string text = analysis.annotated.serialize();
  auto parsed = AnnotatedCfg::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed->total_wcet, analysis.annotated.total_wcet);
  EXPECT_EQ(parsed->entry, analysis.annotated.entry);
  EXPECT_EQ(parsed->blocks.size(), analysis.annotated.blocks.size());
  EXPECT_EQ(parsed->edges.size(), analysis.annotated.edges.size());
  EXPECT_EQ(parsed->loop_bounds, analysis.annotated.loop_bounds);
  EXPECT_EQ(parsed->redirect_penalty, analysis.annotated.redirect_penalty);
}

TEST(AnnotatedCfgParse, RejectsMalformed) {
  EXPECT_FALSE(AnnotatedCfg::parse("").ok());
  EXPECT_FALSE(AnnotatedCfg::parse("not-a-cfg v1\n").ok());
  EXPECT_FALSE(AnnotatedCfg::parse("qta-cfg v1\nfrobnicate 1 2\n").ok());
  EXPECT_FALSE(AnnotatedCfg::parse("qta-cfg v1\nblock 0x0 bad\n").ok());
}

TEST(AnnotatedCfgParse, BlockLookup) {
  auto parsed = AnnotatedCfg::parse(
      "qta-cfg v1\n"
      "program p entry 0x80000000\n"
      "penalty 2\n"
      "wcet_total 100\n"
      "block 0x80000000 0x80000010 wcet 7 fn 0x80000000\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed->block_at(0x80000000), nullptr);
  EXPECT_EQ(parsed->block_at(0x80000000)->wcet, 7u);
  EXPECT_EQ(parsed->block_at(0x80000004), nullptr);
}

TEST(Wcet, IrreducibleLoopRejected) {
  // Two-entry loop: the entry branch jumps into the loop body while the
  // back edge targets the header — a classic irreducible region.
  auto result = analyze(R"(
    li t0, 10
    beqz a0, side_entry
header:
    addi t0, t0, -1
side_entry:
    addi t1, t1, 1
    bnez t0, header
    li a7, 93
    ecall
  )");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kAnalysisError);
}

TEST(Wcet, ResolvableIndirectJumpAnalyzed) {
  // `la` + `jr` yields a single constant target: the data-flow resolver
  // turns it into an explicit CFG edge and the analysis succeeds.
  const std::string source = std::string(R"(
    la t0, t1_target
    jalr zero, 0(t0)
t1_target:
)") + kExit;
  auto analysis = analyze_ok(source);
  EXPECT_GT(analysis.total_wcet, 0u);
  EXPECT_GE(analysis.total_wcet, observe(source));
}

TEST(Wcet, UnresolvableIndirectJumpRejectedWithDiagnostic) {
  // A jump target read from a CSR is unbounded (Top): the resolver cannot
  // enumerate it, so the analyzer rejects with the per-site diagnostic.
  auto result = analyze(R"(
    csrr t0, mcycle
    jalr zero, 0(t0)
    li a7, 93
    ecall
  )");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message().find("indirect"), std::string::npos);
  EXPECT_NE(result.error().message().find("not analyzable"),
            std::string::npos);
}

TEST(Wcet, LegacyModeRejectsAnyIndirectJump) {
  // With resolution disabled every indirect jump is a hard error, even a
  // trivially resolvable one (the pre-dataflow contract).
  auto program = assembler::assemble(R"(
    la t0, t1_target
    jalr zero, 0(t0)
t1_target:
    li a7, 93
    ecall
  )");
  ASSERT_TRUE(program.ok());
  AnalyzerOptions options;
  options.resolve_indirect = false;
  auto result = Analyzer(options).analyze(*program);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message().find("indirect"), std::string::npos);
}

TEST(Wcet, ZeroBoundLoopClampedToOne) {
  // A .loopbound 0 annotation is clamped: a loop that is entered runs its
  // body at least once, so the bound must still dominate the observed run.
  const std::string source = R"(
    li t0, 1
loop:
    .loopbound 0
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    li a0, 0
    ecall
  )";
  auto analysis = analyze_ok(source);
  EXPECT_GE(analysis.total_wcet, observe(source));
}

TEST(Wcet, DiamondInsideLoopTakesWorstArm) {
  // Worst arm (3 divides) must be charged on every iteration even though
  // the run alternates (and mostly avoids) it.
  const std::string source = R"(
    li s0, 10
loop:
    andi t0, s0, 1
    beqz t0, light
    div t1, t2, t3
    div t1, t2, t3
    div t1, t2, t3
    j join
light:
    addi t1, t1, 1
join:
    addi s0, s0, -1
    bnez s0, loop
    li a7, 93
    li a0, 0
    ecall
  )";
  auto analysis = analyze_ok(source);
  vp::TimingModel timing;
  // >= 10 iterations x 3 worst-case divides.
  EXPECT_GE(analysis.total_wcet, 30u * timing.params().div_max_cycles);
  EXPECT_GE(analysis.total_wcet, observe(source));
}

// Property: for every WCET-analyzable standard workload, the static bound
// dominates the observed cycles.
class WorkloadBound : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorkloadBound, StaticBoundHolds) {
  const core::Workload& workload =
      core::standard_workloads()[GetParam()];
  if (!workload.wcet_analyzable) GTEST_SKIP();
  auto program = assembler::assemble(workload.source);
  ASSERT_TRUE(program.ok()) << program.error().to_string();
  auto analysis = Analyzer().analyze(*program);
  ASSERT_TRUE(analysis.ok()) << workload.name << ": "
                             << analysis.error().to_string();
  vp::Machine machine;
  ASSERT_TRUE(machine.load_program(*program).ok());
  auto run = machine.run();
  ASSERT_TRUE(run.normal_exit()) << workload.name;
  EXPECT_GE(analysis->total_wcet, run.cycles) << workload.name;
}

TEST_P(WorkloadBound, PrunedBoundNeverWorse) {
  // Pruning unreachable blocks / infeasible edges analyzes a sub-graph of
  // the original CFG, so the IPET bound may only tighten — and it must stay
  // sound against the observed run.
  const core::Workload& workload =
      core::standard_workloads()[GetParam()];
  if (!workload.wcet_analyzable) GTEST_SKIP();
  auto program = assembler::assemble(workload.source);
  ASSERT_TRUE(program.ok()) << program.error().to_string();
  auto unpruned = Analyzer().analyze(*program);
  ASSERT_TRUE(unpruned.ok()) << workload.name << ": "
                             << unpruned.error().to_string();
  AnalyzerOptions options;
  options.prune_infeasible = true;
  auto pruned = Analyzer(options).analyze(*program);
  ASSERT_TRUE(pruned.ok()) << workload.name << ": "
                           << pruned.error().to_string();
  EXPECT_LE(pruned->total_wcet, unpruned->total_wcet) << workload.name;
  vp::Machine machine;
  ASSERT_TRUE(machine.load_program(*program).ok());
  auto run = machine.run();
  ASSERT_TRUE(run.normal_exit()) << workload.name;
  EXPECT_GE(pruned->total_wcet, run.cycles) << workload.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadBound,
    ::testing::Range<std::size_t>(0, core::standard_workloads().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return core::standard_workloads()[info.param].name;
    });

}  // namespace
}  // namespace s4e::wcet
