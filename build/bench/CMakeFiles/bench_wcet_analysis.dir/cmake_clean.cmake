file(REMOVE_RECURSE
  "CMakeFiles/bench_wcet_analysis.dir/bench_wcet_analysis.cpp.o"
  "CMakeFiles/bench_wcet_analysis.dir/bench_wcet_analysis.cpp.o.d"
  "bench_wcet_analysis"
  "bench_wcet_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wcet_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
