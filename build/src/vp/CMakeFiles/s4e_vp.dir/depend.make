# Empty dependencies file for s4e_vp.
# This may be replaced when dependencies are built.
