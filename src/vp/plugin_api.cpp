// C plugin API shims: the version-stable boundary between the VP and the
// ecosystem tools, mirroring QEMU's qemu-plugin.h contract.
#include "vp/s4e_plugin.h"

#include "vp/machine.hpp"

struct s4e_vm {
  s4e::vp::Machine* machine;
};

using s4e::vp::Machine;

extern "C" {

uint64_t s4e_register_tb_trans_cb(s4e_vm* vm, s4e_tb_trans_cb cb,
                                  void* userdata) {
  if (vm == nullptr || cb == nullptr) return 0;
  return vm->machine->add_tb_trans_cb(cb, userdata);
}

uint64_t s4e_register_tb_exec_cb(s4e_vm* vm, s4e_tb_exec_cb cb,
                                 void* userdata) {
  if (vm == nullptr || cb == nullptr) return 0;
  return vm->machine->add_tb_exec_cb(cb, userdata);
}

uint64_t s4e_register_insn_exec_cb(s4e_vm* vm, s4e_insn_exec_cb cb,
                                   void* userdata) {
  if (vm == nullptr || cb == nullptr) return 0;
  return vm->machine->add_insn_exec_cb(cb, userdata);
}

uint64_t s4e_register_mem_cb(s4e_vm* vm, s4e_mem_cb cb, void* userdata) {
  if (vm == nullptr || cb == nullptr) return 0;
  return vm->machine->add_mem_cb(cb, userdata);
}

uint64_t s4e_register_trap_cb(s4e_vm* vm, s4e_trap_cb cb, void* userdata) {
  if (vm == nullptr || cb == nullptr) return 0;
  return vm->machine->add_trap_cb(cb, userdata);
}

uint64_t s4e_register_exit_cb(s4e_vm* vm, s4e_exit_cb cb, void* userdata) {
  if (vm == nullptr || cb == nullptr) return 0;
  return vm->machine->add_exit_cb(cb, userdata);
}

uint32_t s4e_read_gpr(s4e_vm* vm, unsigned index) {
  return vm->machine->cpu().read_gpr(index);
}

void s4e_write_gpr(s4e_vm* vm, unsigned index, uint32_t value) {
  vm->machine->cpu().write_gpr(index, value);
}

uint32_t s4e_read_gpr_hart(s4e_vm* vm, unsigned hart, unsigned index) {
  if (hart >= vm->machine->num_harts()) return 0;
  return vm->machine->cpu(hart).read_gpr(index);
}

void s4e_write_gpr_hart(s4e_vm* vm, unsigned hart, unsigned index,
                        uint32_t value) {
  if (hart >= vm->machine->num_harts()) return;
  vm->machine->cpu(hart).write_gpr(index, value);
}

unsigned s4e_num_harts(s4e_vm* vm) { return vm->machine->num_harts(); }

unsigned s4e_current_hart(s4e_vm* vm) { return vm->machine->active_hart(); }

uint32_t s4e_read_pc(s4e_vm* vm) { return vm->machine->cpu().pc; }

uint32_t s4e_read_csr(s4e_vm* vm, unsigned address) {
  auto value = vm->machine->cpu().csr.read(static_cast<s4e::u16>(address),
                                           vm->machine->counter_view());
  return value.ok() ? *value : 0;
}

void s4e_write_csr(s4e_vm* vm, unsigned address, uint32_t value) {
  (void)vm->machine->cpu().csr.write(static_cast<s4e::u16>(address), value);
  // An interrupt-enable write from a callback must end any chained run so
  // the engine's fast-path gate re-evaluates at the next dispatch.
  vm->machine->note_csr_written(static_cast<s4e::u16>(address));
}

int s4e_read_mem(s4e_vm* vm, uint32_t address, void* buffer, uint32_t size) {
  return vm->machine->bus().ram_read(address, buffer, size).ok() ? 0 : -1;
}

int s4e_write_mem(s4e_vm* vm, uint32_t address, const void* buffer,
                  uint32_t size) {
  return vm->machine->bus().ram_write(address, buffer, size).ok() ? 0 : -1;
}

uint64_t s4e_icount(s4e_vm* vm) { return vm->machine->icount(); }

uint64_t s4e_cycles(s4e_vm* vm) { return vm->machine->cycles(); }

void s4e_request_exit(s4e_vm* vm, int exit_code) {
  vm->machine->request_exit(exit_code);
}

void s4e_flush_tb_cache(s4e_vm* vm) { vm->machine->request_tb_flush(); }

}  // extern "C"
