// Control-flow graph reconstructed from a RISC-V binary.
//
// This is the artefact the WCET analyzer (aiT substitute) works on and the
// skeleton of the annotated CFG the QTA co-simulation consumes. Reconstruction
// is intraprocedural with an explicit call graph: `jal` with rd=ra is a call
// site (the callee is analyzed separately), `jalr zero, 0(ra)` is a return.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "common/status.hpp"
#include "isa/instr.hpp"

namespace s4e::cfg {

using BlockId = u32;
inline constexpr BlockId kNoBlock = ~BlockId{0};

enum class EdgeKind : u8 {
  kFallThrough,  // straight-line successor
  kTaken,        // taken conditional branch or unconditional jump
  kCallReturn,   // call site -> continuation (callee summarized separately)
};

struct Edge {
  BlockId target = kNoBlock;
  EdgeKind kind = EdgeKind::kFallThrough;
};

// How a basic block ends.
enum class Terminator : u8 {
  kFallThrough,  // runs into the next block (leader split)
  kBranch,       // conditional: taken + fall-through edges
  kJump,         // unconditional jal x0
  kCall,         // jal ra (call-return edge to the continuation)
  kReturn,       // jalr zero, 0(ra)
  kExit,         // ecall / ebreak / wfi / mret: leaves the analyzed code
  kIndirect,     // jalr with untracked target (rejected by the analyzer)
};

struct BasicBlock {
  BlockId id = kNoBlock;
  u32 start = 0;
  u32 end = 0;  // exclusive
  std::vector<isa::Instr> insns;
  Terminator terminator = Terminator::kFallThrough;
  std::vector<Edge> successors;
  std::vector<BlockId> predecessors;
  u32 call_target = 0;  // entry address of the callee for kCall
  // kIndirect only: the jump targets the data-flow analysis resolved (one
  // kTaken successor per entry). Empty = unresolved (no successors).
  std::vector<u32> indirect_targets;

  u32 insn_count() const noexcept { return static_cast<u32>(insns.size()); }
};

// One procedure's CFG.
struct Function {
  std::string name;      // symbol name if known, else "fn_<hex>"
  u32 entry = 0;
  std::vector<BasicBlock> blocks;  // blocks[0] is the entry block
  std::map<u32, BlockId> block_by_start;

  const BasicBlock& entry_block() const { return blocks[0]; }
  Result<BlockId> block_at(u32 address) const {
    auto it = block_by_start.find(address);
    if (it == block_by_start.end()) {
      return Error(ErrorCode::kNotFound,
                   "no block starts at the given address");
    }
    return it->second;
  }
};

// Whole-program view: every procedure reachable from the entry point plus
// the call graph between them.
struct ProgramCfg {
  std::vector<Function> functions;  // functions[0] is the program entry
  std::map<u32, u32> function_by_entry;  // entry address -> index
  std::vector<assembler::LoopBound> loop_bounds;  // from .s4e.annot

  const Function& entry_function() const { return functions[0]; }
  Result<u32> function_at(u32 entry) const {
    auto it = function_by_entry.find(entry);
    if (it == function_by_entry.end()) {
      return Error(ErrorCode::kNotFound, "no function at the given entry");
    }
    return it->second;
  }
};

// Reconstruction options. The defaults reproduce the strict aiT-style
// contract: any indirect jump other than a return is an error. The
// data-flow layer (src/dataflow) drives the two extensions: a map of
// jalr-site -> resolved targets (each becomes an analyzed kTaken edge),
// and a tolerant mode that leaves unresolved indirect jumps as
// successor-less kIndirect terminators instead of failing — so an analysis
// pass can run over the rest of the program and report them.
struct BuildOptions {
  // jalr instruction address -> resolved jump targets (rd == x0 sites).
  const std::map<u32, std::vector<u32>>* indirect_targets = nullptr;
  bool tolerate_unresolved = false;
};

// Reconstruct the CFG of the program's .text, starting from its entry point.
// Fails on indirect jumps other than returns (unless resolved or tolerated
// via `options`), on code that falls off the end of .text, and on
// overlapping instruction streams — the same preconditions aiT places on
// analyzable code.
Result<ProgramCfg> build_cfg(const assembler::Program& program);
Result<ProgramCfg> build_cfg(const assembler::Program& program,
                             const BuildOptions& options);

// Graphviz dump (one cluster per function) for debugging and docs.
std::string to_dot(const ProgramCfg& cfg);

}  // namespace s4e::cfg
