# Empty compiler generated dependencies file for periodic_task.
# This may be replaced when dependencies are built.
