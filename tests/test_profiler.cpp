#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "core/profiler.hpp"
#include "vp/machine.hpp"

namespace s4e::core {
namespace {

TEST(Profiler, HotLoopDominates) {
  auto program = assembler::assemble(R"(
_start:
    li t0, 100
hot_loop:
    addi t1, t1, 1
    xor t2, t1, t0
    addi t0, t0, -1
    bnez t0, hot_loop
cold_tail:
    li a7, 93
    li a0, 0
    ecall
  )");
  ASSERT_TRUE(program.ok());
  vp::Machine machine;
  ASSERT_TRUE(machine.load_program(*program).ok());
  ProfilerPlugin profiler;
  profiler.attach(machine.vm_handle());
  auto result = machine.run();
  ASSERT_TRUE(result.normal_exit());

  // The hot block executed 99 times: the first iteration runs inside the
  // entry translation block, which extends past the hot_loop label until
  // the first control-flow instruction (QEMU-style block formation).
  const u32 loop_addr = *program->symbol("hot_loop");
  ASSERT_EQ(profiler.exec_counts().count(loop_addr), 1u);
  EXPECT_EQ(profiler.exec_counts().at(loop_addr), 99u);
  EXPECT_EQ(profiler.exec_counts().at(*program->symbol("_start")), 1u);

  // Attributed instructions equal the retired count (no truncated blocks).
  EXPECT_EQ(profiler.attributed_instructions(), result.instructions);

  const std::string report = profiler.report(*program);
  EXPECT_NE(report.find("hot_loop"), std::string::npos);
  // The hottest row comes first.
  EXPECT_LT(report.find("hot_loop"), report.find("_start"));
}

TEST(Profiler, SymbolizationUsesNearestPrecedingSymbol) {
  auto program = assembler::assemble(R"(
fn:
    beqz a0, skip
    nop
skip:
    li a7, 93
    li a0, 0
    ecall
  )");
  ASSERT_TRUE(program.ok());
  vp::Machine machine;
  ASSERT_TRUE(machine.load_program(*program).ok());
  ProfilerPlugin profiler;
  profiler.attach(machine.vm_handle());
  machine.run();
  const std::string report = profiler.report(*program);
  // The block at `skip` is symbolized by its own label; fn appears too.
  EXPECT_NE(report.find("skip"), std::string::npos);
  EXPECT_NE(report.find("fn"), std::string::npos);
}

TEST(Profiler, TopNLimitsRows) {
  auto program = assembler::assemble(R"(
    beqz a0, b1
b1: beqz a1, b2
b2: beqz a2, b3
b3: li a7, 93
    li a0, 0
    ecall
  )");
  ASSERT_TRUE(program.ok());
  vp::Machine machine;
  ASSERT_TRUE(machine.load_program(*program).ok());
  ProfilerPlugin profiler;
  profiler.attach(machine.vm_handle());
  machine.run();
  const std::string limited = profiler.report(*program, 2);
  // Header + 2 rows only.
  unsigned lines = 0;
  for (char c : limited) lines += c == '\n';
  EXPECT_EQ(lines, 4u);
}

}  // namespace
}  // namespace s4e::core
