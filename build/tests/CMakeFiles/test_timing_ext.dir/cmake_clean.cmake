file(REMOVE_RECURSE
  "CMakeFiles/test_timing_ext.dir/test_timing_ext.cpp.o"
  "CMakeFiles/test_timing_ext.dir/test_timing_ext.cpp.o.d"
  "test_timing_ext"
  "test_timing_ext.pdb"
  "test_timing_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
