#include "vp/timing.hpp"

#include <algorithm>

namespace s4e::vp {

u32 TimingModel::divide_cycles(u32 dividend) const noexcept {
  // Iterative radix-2 divider with early-out on leading zeros: the cost
  // scales with the significant-bit count of the dividend.
  unsigned bits = 32;
  while (bits > 1 && (dividend & (u32{1} << (bits - 1))) == 0) --bits;
  const u32 span = params_.div_max_cycles - params_.div_min_cycles;
  return params_.div_min_cycles + (span * bits) / 32;
}

u32 TimingModel::dynamic_cycles(const isa::Instr& instr, bool redirect,
                                u32 rs1, u32 rs2, bool mmio) const noexcept {
  (void)rs2;
  u32 cycles = params_.base_cycles;
  switch (instr.info().op_class) {
    case isa::OpClass::kLoad:
    case isa::OpClass::kStore:
    case isa::OpClass::kAmo:
      cycles += mmio ? params_.mmio_access_cycles : params_.ram_access_cycles;
      break;
    case isa::OpClass::kMul:
      cycles += params_.mul_cycles;
      break;
    case isa::OpClass::kDiv:
      cycles += divide_cycles(rs1);
      break;
    case isa::OpClass::kCsr:
      cycles += params_.csr_cycles;
      break;
    case isa::OpClass::kSystem:
      cycles += params_.trap_cycles;
      break;
    default:
      break;
  }
  if (redirect) cycles += params_.redirect_penalty;
  return cycles;
}

u32 TimingModel::class_cycles(isa::OpClass op, bool redirect,
                              bool mmio) const noexcept {
  u32 cycles = params_.base_cycles;
  switch (op) {
    case isa::OpClass::kLoad:
    case isa::OpClass::kStore:
    case isa::OpClass::kAmo:
      cycles += mmio ? params_.mmio_access_cycles : params_.ram_access_cycles;
      break;
    case isa::OpClass::kMul:
      cycles += params_.mul_cycles;
      break;
    case isa::OpClass::kDiv:
      break;  // base only; divide_cycles(dividend) is charged by the caller
    case isa::OpClass::kCsr:
      cycles += params_.csr_cycles;
      break;
    case isa::OpClass::kSystem:
      cycles += params_.trap_cycles;
      break;
    default:
      break;
  }
  if (redirect) cycles += params_.redirect_penalty;
  return cycles;
}

u32 TimingModel::worst_case_cycles(const isa::Instr& instr) const noexcept {
  u32 cycles = params_.base_cycles;
  switch (instr.info().op_class) {
    case isa::OpClass::kLoad:
    case isa::OpClass::kStore:
    case isa::OpClass::kAmo:
      // Without a value analysis the static side cannot prove an access
      // stays in RAM, so it must assume the slower of the two paths (for
      // the default parameters that is MMIO). This is the classic source
      // of static-WCET pessimism on memory-bound code.
      cycles += std::max(params_.mmio_access_cycles, params_.ram_access_cycles);
      break;
    case isa::OpClass::kMul:
      cycles += params_.mul_cycles;
      break;
    case isa::OpClass::kDiv:
      cycles += params_.div_max_cycles;
      break;
    case isa::OpClass::kCsr:
      cycles += params_.csr_cycles;
      break;
    case isa::OpClass::kSystem:
      cycles += params_.trap_cycles;
      break;
    default:
      break;
  }
  return cycles;
}

}  // namespace s4e::vp
