#include "vp/plugin.hpp"

#include "common/status.hpp"

namespace s4e::vp {

namespace {

void tb_trans_tramp(void* userdata, s4e_vm*, const s4e_tb_info* tb) {
  static_cast<PluginBase*>(userdata)->on_tb_trans(*tb);
}

void tb_exec_tramp(void* userdata, s4e_vm*, uint32_t tb_start) {
  static_cast<PluginBase*>(userdata)->on_tb_exec(tb_start);
}

void insn_exec_tramp(void* userdata, s4e_vm*, const s4e_insn_info* insn) {
  static_cast<PluginBase*>(userdata)->on_insn_exec(*insn);
}

void mem_tramp(void* userdata, s4e_vm*, const s4e_mem_event* event) {
  static_cast<PluginBase*>(userdata)->on_mem(*event);
}

void trap_tramp(void* userdata, s4e_vm*, const s4e_trap_event* event) {
  static_cast<PluginBase*>(userdata)->on_trap(*event);
}

void exit_tramp(void* userdata, s4e_vm*, int exit_code) {
  static_cast<PluginBase*>(userdata)->on_exit(exit_code);
}

}  // namespace

void PluginBase::attach(s4e_vm* vm) {
  S4E_CHECK_MSG(vm_ == nullptr, "plugin already attached");
  vm_ = vm;
  const Subscriptions subs = subscriptions();
  if (subs.tb_trans) s4e_register_tb_trans_cb(vm, tb_trans_tramp, this);
  if (subs.tb_exec) s4e_register_tb_exec_cb(vm, tb_exec_tramp, this);
  if (subs.insn_exec) s4e_register_insn_exec_cb(vm, insn_exec_tramp, this);
  if (subs.mem) s4e_register_mem_cb(vm, mem_tramp, this);
  if (subs.trap) s4e_register_trap_cb(vm, trap_tramp, this);
  if (subs.exit) s4e_register_exit_cb(vm, exit_tramp, this);
}

}  // namespace s4e::vp
