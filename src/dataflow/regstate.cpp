#include "dataflow/regstate.hpp"

namespace s4e::dataflow {

namespace {

using isa::Instr;
using isa::Op;

// Unsigned bounds of a sign-pure value (raw u32 reading); nullopt when the
// set mixes values above and below 2^31.
struct UBounds {
  u64 lo, hi;
};
std::optional<UBounds> unsigned_bounds(const AbsValue& v) {
  if (!v.has_bounds()) return std::nullopt;
  if (v.lo() >= 0) {
    return UBounds{static_cast<u64>(v.lo()), static_cast<u64>(v.hi())};
  }
  if (v.hi() < 0) {
    const u64 wrap = u64{1} << 32;
    return UBounds{static_cast<u64>(v.lo()) + wrap,
                   static_cast<u64>(v.hi()) + wrap};
  }
  return std::nullopt;
}

// Tri-state comparisons. Stack values compare against each other by offset
// (same unknown base, assumed not to wrap); stack vs plain is undecidable.
bool comparable(const AbsValue& a, const AbsValue& b) {
  if (a.is_stack() || b.is_stack()) return a.is_stack() && b.is_stack();
  return a.has_bounds() && b.has_bounds();
}

std::optional<bool> def_eq(const AbsValue& a, const AbsValue& b) {
  if (!comparable(a, b)) return std::nullopt;
  if (a.hi() < b.lo() || b.hi() < a.lo()) return false;
  // Both collapse to one value (consts singleton or one stack offset).
  if (a.lo() == a.hi() && b.lo() == b.hi() && a.lo() == b.lo()) return true;
  return std::nullopt;
}

std::optional<bool> def_lt_signed(const AbsValue& a, const AbsValue& b) {
  if (!comparable(a, b)) return std::nullopt;
  if (a.hi() < b.lo()) return true;
  if (a.lo() >= b.hi()) return false;  // min(a) >= max(b): a < b never holds
  return std::nullopt;
}

std::optional<bool> def_lt_unsigned(const AbsValue& a, const AbsValue& b) {
  if (a.is_stack() && b.is_stack()) return def_lt_signed(a, b);  // offsets
  const auto ua = unsigned_bounds(a);
  const auto ub = unsigned_bounds(b);
  if (!ua || !ub || a.is_stack() || b.is_stack()) return std::nullopt;
  if (ua->hi < ub->lo) return true;
  if (ua->lo >= ub->hi) return false;
  return std::nullopt;
}

std::optional<bool> negate(std::optional<bool> v) {
  if (!v) return std::nullopt;
  return !*v;
}

}  // namespace

RegState RegDomain::boundary(const cfg::Function& fn,
                             const cfg::BasicBlock& block) const {
  (void)fn;
  (void)block;
  RegState state;
  state.reached = true;
  for (auto& reg : state.regs) reg = AbsValue::top();
  state.regs[0] = AbsValue::constant(0);
  state.regs[2] = AbsValue::stack(0, 0, 1);  // incoming sp is the frame ref
  if (options_.is_entry_function) {
    // Reset state: the loader initializes sp; x0 is hardwired; gp/tp and
    // the argument registers are treated as environment-provided. ra and
    // the temporaries/saved registers hold garbage until written.
    state.maybe_uninit = kCallerSavedMask & ~(0xffu << 10);  // ra, t0-t6
    state.maybe_uninit |= reg_bit(8) | reg_bit(9) | (0x3ffu << 18);  // s0-s11
  }
  return state;
}

RegState RegDomain::transfer(const cfg::Function& fn,
                             const cfg::BasicBlock& block, State state) const {
  (void)fn;
  if (!state.reached) return state;
  u32 pc = block.start;
  for (const Instr& instr : block.insns) {
    apply(instr, pc, options_.mem, state);
    pc += instr.length;
  }
  finish_block(block, state, call_effect(block));
  return state;
}

const CallEffect* RegDomain::call_effect(const cfg::BasicBlock& block) const {
  if (options_.call_effects == nullptr) return nullptr;
  auto it = options_.call_effects->find(block.id);
  return it == options_.call_effects->end() ? nullptr : &it->second;
}

bool RegDomain::join(State& into, const State& from, bool widen) const {
  if (!from.reached) return false;
  if (!into.reached) {
    into = from;
    return true;
  }
  bool changed = false;
  for (unsigned r = 0; r < isa::kGprCount; ++r) {
    AbsValue joined = AbsValue::join(into.regs[r], from.regs[r]);
    if (joined != into.regs[r]) {
      if (widen) joined.widen();
      if (joined != into.regs[r]) {
        into.regs[r] = std::move(joined);
        changed = true;
      }
    }
  }
  const u32 uninit = into.maybe_uninit | from.maybe_uninit;
  if (uninit != into.maybe_uninit) {
    into.maybe_uninit = uninit;
    changed = true;
  }
  return changed;
}

bool RegDomain::edge_feasible(const cfg::Function& fn,
                              const cfg::BasicBlock& block, const State& out,
                              const cfg::Edge& edge) const {
  (void)fn;
  if (block.terminator != cfg::Terminator::kBranch) return true;
  const auto taken = eval_branch(block.insns.back(), out);
  if (!taken) return true;
  return *taken == (edge.kind == cfg::EdgeKind::kTaken);
}

void RegDomain::apply(const Instr& instr, u32 pc, const MemModel* mem,
                      State& state) {
  auto rv = [&](unsigned r) -> const AbsValue& { return state.regs[r]; };
  auto set = [&](unsigned r, AbsValue v) {
    if (r == 0) return;
    state.regs[r] = std::move(v);
    state.maybe_uninit &= ~reg_bit(r);
  };
  const AbsValue imm = AbsValue::constant(static_cast<u32>(instr.imm));
  const AbsValue shamt = AbsValue::constant(instr.rs2);  // kIShift encoding

  switch (instr.op) {
    case Op::kLui:
      set(instr.rd, imm);  // imm is pre-shifted by the decoder
      break;
    case Op::kAuipc:
      set(instr.rd, AbsValue::constant(pc + static_cast<u32>(instr.imm)));
      break;
    case Op::kJal:
    case Op::kJalr:
      set(instr.rd, AbsValue::constant(pc + instr.length));
      break;
    case Op::kAddi:
      set(instr.rd, av_add(rv(instr.rs1), imm));
      break;
    case Op::kSlti:
      set(instr.rd, av_slt(rv(instr.rs1), imm, false));
      break;
    case Op::kSltiu:
      set(instr.rd, av_slt(rv(instr.rs1), imm, true));
      break;
    case Op::kXori:
      set(instr.rd, av_xor(rv(instr.rs1), imm));
      break;
    case Op::kOri:
      set(instr.rd, av_or(rv(instr.rs1), imm));
      break;
    case Op::kAndi:
      set(instr.rd, av_and(rv(instr.rs1), imm));
      break;
    case Op::kSlli:
      set(instr.rd, av_sll(rv(instr.rs1), shamt));
      break;
    case Op::kSrli:
      set(instr.rd, av_srl(rv(instr.rs1), shamt));
      break;
    case Op::kSrai:
      set(instr.rd, av_sra(rv(instr.rs1), shamt));
      break;
    case Op::kAdd:
      set(instr.rd, av_add(rv(instr.rs1), rv(instr.rs2)));
      break;
    case Op::kSub:
      set(instr.rd, av_sub(rv(instr.rs1), rv(instr.rs2)));
      break;
    case Op::kSll:
      set(instr.rd, av_sll(rv(instr.rs1), rv(instr.rs2)));
      break;
    case Op::kSlt:
      set(instr.rd, av_slt(rv(instr.rs1), rv(instr.rs2), false));
      break;
    case Op::kSltu:
      set(instr.rd, av_slt(rv(instr.rs1), rv(instr.rs2), true));
      break;
    case Op::kXor:
      set(instr.rd, av_xor(rv(instr.rs1), rv(instr.rs2)));
      break;
    case Op::kSrl:
      set(instr.rd, av_srl(rv(instr.rs1), rv(instr.rs2)));
      break;
    case Op::kSra:
      set(instr.rd, av_sra(rv(instr.rs1), rv(instr.rs2)));
      break;
    case Op::kOr:
      set(instr.rd, av_or(rv(instr.rs1), rv(instr.rs2)));
      break;
    case Op::kAnd:
      set(instr.rd, av_and(rv(instr.rs1), rv(instr.rs2)));
      break;
    case Op::kMul:
      set(instr.rd, av_mul(rv(instr.rs1), rv(instr.rs2)));
      break;
    case Op::kMulh:
    case Op::kMulhsu:
    case Op::kMulhu:
    case Op::kDiv:
    case Op::kDivu:
    case Op::kRem:
    case Op::kRemu:
      set(instr.rd, av_muldiv(instr.op, rv(instr.rs1), rv(instr.rs2)));
      break;
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLbu:
    case Op::kLhu: {
      const AbsValue addr = effective_address(instr, state);
      const bool sext = instr.op == Op::kLb || instr.op == Op::kLh;
      set(instr.rd, mem != nullptr
                        ? mem->load(addr, access_size(instr.op), sext)
                        : AbsValue::top());
      break;
    }
    case Op::kCsrrw:
    case Op::kCsrrs:
    case Op::kCsrrc:
    case Op::kCsrrwi:
    case Op::kCsrrsi:
    case Op::kCsrrci:
    // Atomics: rd receives the loaded value (or the SC success flag) —
    // unknown to the static domain, and the memory effect is modelled as
    // a clobber by the surrounding MemModel invalidation.
    case Op::kLrW:
    case Op::kScW:
    case Op::kAmoswapW:
    case Op::kAmoaddW:
    case Op::kAmoxorW:
    case Op::kAmoorW:
    case Op::kAmoandW:
    case Op::kAmominW:
    case Op::kAmomaxW:
    case Op::kAmominuW:
    case Op::kAmomaxuW:
      set(instr.rd, AbsValue::top());
      break;
    case Op::kSb:
    case Op::kSh:
    case Op::kSw:
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
    case Op::kFence:
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kMret:
    case Op::kWfi:
    case Op::kCount:
      break;  // no GPR effect
  }
}

void RegDomain::finish_block(const cfg::BasicBlock& block, State& state,
                             const CallEffect* effect) {
  if (block.terminator != cfg::Terminator::kCall || !state.reached) return;
  if (effect == nullptr) {
    // Conservative call-return clobber: the callee may write every
    // caller-saved register (so they are initialized but unknown at the
    // continuation); sp and the callee-saved registers are preserved per
    // the calling convention.
    for (unsigned r = 1; r < isa::kGprCount; ++r) {
      if (kCallerSavedMask & reg_bit(r)) {
        state.regs[r] = AbsValue::top();
        state.maybe_uninit &= ~reg_bit(r);
      }
    }
    return;
  }
  // Summary-driven effect. Preserved registers (not in `clobbered`) keep the
  // caller's abstract value and uninit bit; clobbered registers become the
  // callee's return value (a0/a1) or top; only must-written registers are
  // definitely initialized afterwards.
  for (unsigned r = 1; r < isa::kGprCount; ++r) {
    if ((effect->clobbered & reg_bit(r)) == 0) continue;
    if (r == 10) {
      state.regs[r] = effect->ret0;
    } else if (r == 11) {
      state.regs[r] = effect->ret1;
    } else {
      state.regs[r] = AbsValue::top();
    }
    if (effect->must_write & reg_bit(r)) state.maybe_uninit &= ~reg_bit(r);
  }
  if (!effect->sp_balanced) state.regs[2] = AbsValue::top();
}

std::optional<bool> RegDomain::eval_branch(const Instr& branch,
                                           const State& state) {
  const AbsValue& a = state.regs[branch.rs1];
  const AbsValue& b = state.regs[branch.rs2];
  // Exact element-wise evaluation first (covers stride gaps etc.).
  const u64 ca = a.count();
  const u64 cb = b.count();
  if (ca != 0 && cb != 0 && ca * cb <= 256) {
    const auto va = a.enumerate(256);
    const auto vb = b.enumerate(256);
    bool any_true = false;
    bool any_false = false;
    for (u32 x : va) {
      for (u32 y : vb) {
        bool t = false;
        switch (branch.op) {
          case Op::kBeq: t = x == y; break;
          case Op::kBne: t = x != y; break;
          case Op::kBlt: t = static_cast<i32>(x) < static_cast<i32>(y); break;
          case Op::kBge: t = static_cast<i32>(x) >= static_cast<i32>(y); break;
          case Op::kBltu: t = x < y; break;
          case Op::kBgeu: t = x >= y; break;
          default: return std::nullopt;
        }
        (t ? any_true : any_false) = true;
        if (any_true && any_false) return std::nullopt;
      }
    }
    return any_true;
  }
  switch (branch.op) {
    case Op::kBeq: return def_eq(a, b);
    case Op::kBne: return negate(def_eq(a, b));
    case Op::kBlt: return def_lt_signed(a, b);
    case Op::kBge: return negate(def_lt_signed(a, b));
    case Op::kBltu: return def_lt_unsigned(a, b);
    case Op::kBgeu: return negate(def_lt_unsigned(a, b));
    default: return std::nullopt;
  }
}

AbsValue effective_address(const Instr& instr, const RegState& state) {
  return av_add(state.regs[instr.rs1],
                AbsValue::constant(static_cast<u32>(instr.imm)));
}

u32 access_size(Op op) {
  switch (op) {
    case Op::kLb:
    case Op::kLbu:
    case Op::kSb:
      return 1;
    case Op::kLh:
    case Op::kLhu:
    case Op::kSh:
      return 2;
    default:
      return 4;
  }
}

}  // namespace s4e::dataflow
