# Empty compiler generated dependencies file for s4e-objdump.
# This may be replaced when dependencies are built.
