# 4-tap FIR filter via a called dot-product helper
# expected exit code: 192

_start:
    la s0, samples
    la s1, coeffs
    la s3, output
    li s2, 8
fir_outer:
    mv a0, s0
    mv a1, s1
    call dot4
    sw a0, 0(s3)
    addi s3, s3, 4
    addi s0, s0, 4
    addi s2, s2, -1
    bnez s2, fir_outer
    la t0, output
    li t1, 8
    li a0, 0
acc_loop:
    lw t2, 0(t0)
    add a0, a0, t2
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, acc_loop
    li a7, 93
    ecall

dot4:
    li t0, 4
    li a2, 0
dot_loop:
    lw t3, 0(a0)
    lw t4, 0(a1)
    mul t3, t3, t4
    add a2, a2, t3
    addi a0, a0, 4
    addi a1, a1, 4
    addi t0, t0, -1
    bnez t0, dot_loop
    mv a0, a2
    ret
.data
samples:
    .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11
coeffs:
    .word 1, 1, 1, 1
output:
    .space 32
