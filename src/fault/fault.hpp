// Fault-effect analysis on the VP (MBMV'20): automatic injection of
// permanent and transient bit-flips into registers, data memory and code,
// simulation of every mutant, and classification of the outcomes.
//
// Fault-list generation is coverage-directed by default: a profiling run
// records which registers, memory bytes and code addresses the binary
// actually exercises, and faults are drawn only from that set — the paper's
// key scaling idea (don't simulate mutants the software can never observe).
#pragma once

#include <string>
#include <vector>

#include "asm/program.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "coverage/coverage.hpp"
#include "dataflow/triage.hpp"
#include "exec/campaign_executor.hpp"
#include "vp/machine.hpp"
#include "vp/plugin.hpp"

namespace s4e::fault {

enum class FaultTarget : u8 { kGpr, kMemory, kCode };
enum class FaultKind : u8 {
  kTransient,  // one bit-flip at a trigger instruction count
  kStuckAt,    // bit permanently forced to `stuck_value`
};

struct FaultSpec {
  FaultTarget target = FaultTarget::kGpr;
  FaultKind kind = FaultKind::kTransient;
  unsigned reg = 0;      // kGpr: architectural register index
  u32 address = 0;       // kMemory: byte address; kCode: word address
  u8 bit = 0;            // bit index (kGpr/kCode: 0..31, kMemory: 0..7)
  bool stuck_value = false;  // kStuckAt: forced bit value
  u64 trigger = 0;       // kTransient: icount at which the flip fires
  unsigned hart = 0;     // kGpr on SMP machines: hart whose register file
                         // takes the fault (always 0 on single-hart runs)

  std::string to_string() const;
};

// Plugin applying one FaultSpec to a running VP.
class FaultInjectorPlugin final : public vp::PluginBase {
 public:
  explicit FaultInjectorPlugin(const FaultSpec& spec) : spec_(spec) {}

  Subscriptions subscriptions() const override {
    Subscriptions subs;
    subs.insn_exec = true;  // trigger + per-instruction stuck-at enforcement
    if (spec_.target == FaultTarget::kMemory &&
        spec_.kind == FaultKind::kStuckAt) {
      subs.mem = true;  // re-force after stores
    }
    return subs;
  }

  void on_insn_exec(const s4e_insn_info& insn) override;
  void on_mem(const s4e_mem_event& event) override;

  // Number of state manipulations performed (>= 1 once triggered).
  u64 applications() const noexcept { return applications_; }

 private:
  void apply_flip();
  void apply_stuck();

  FaultSpec spec_;
  bool fired_ = false;
  u64 applications_ = 0;
};

// Mutant outcome classes (the MBMV'20 categories).
enum class Outcome : u8 {
  kMasked,    // normal termination, results identical to the golden run
  kSdc,       // normal termination, silently corrupted result
  kCrash,     // trap / breakpoint / halt without normal termination
  kHang,      // instruction budget exhausted
};

std::string_view to_string(Outcome outcome) noexcept;

struct MutantResult {
  FaultSpec spec;
  Outcome outcome = Outcome::kMasked;
  int exit_code = 0;
  u64 instructions = 0;
  // Static triage: true = the outcome was proven (kMasked) without running
  // the VP; `prune_reason` is the triage class tag. In verify mode the
  // mutant still executes and `pruned` marks what *would* have been skipped.
  bool pruned = false;
  std::string prune_reason;
  // Flight-recorder dump (the mutant's last executed instructions, memory
  // accesses and traps) captured for kHang/kCrash mutants when the campaign
  // runs with `post_mortem` enabled; empty otherwise.
  std::string post_mortem;
};

struct CampaignConfig {
  u64 seed = 1;
  unsigned mutant_count = 200;
  bool coverage_directed = true;  // E5 ablation switch
  bool gpr_faults = true;
  bool memory_faults = true;
  bool code_faults = true;
  // Hang budget as a multiple of the golden run's instruction count.
  u64 hang_budget_factor = 8;
  // Deep-state comparison: also compare the final .data contents against
  // the golden run, catching silent corruption that never reaches the exit
  // code or the UART (classified as SDC).
  bool compare_memory = true;
  // Worker threads for the mutant simulations (each worker owns a private
  // vp::Machine, so results are bit-identical to the serial run). 0 =
  // hardware_concurrency, 1 = run inline on the calling thread (the exact
  // serial code path).
  unsigned jobs = 0;
  // Reuse one long-lived machine per worker across its mutants: the loaded
  // state is snapshotted once and restored (dirty pages only, warm TB
  // cache) before every run. Off = build a fresh machine per mutant (the
  // pre-snapshot code path); results are bit-identical either way.
  bool reuse_machines = true;
  // --- Observability (src/obs). Neither switch changes any mutant outcome
  // or the campaign's stdout report — runs are only observed.
  // Collect campaign telemetry into CampaignResult::metrics_json.
  bool collect_metrics = false;
  // Attach a flight recorder to every mutant run and keep a post-mortem of
  // the last `post_mortem_events` events for every kHang/kCrash mutant.
  bool post_mortem = false;
  unsigned post_mortem_events = 16;
  // Static campaign triage (dataflow::StaticTriage). kOn skips mutants whose
  // outcome is statically provable (they report kMasked with zero simulated
  // instructions); kVerify runs them anyway and errors on any mismatch
  // between the static verdict and the dynamic outcome.
  dataflow::TriageMode triage = dataflow::TriageMode::kOff;
  // Shard selection for multi-process fleets (s4e-campaignd): the full
  // fault list is still generated deterministically (same RNG sequence for
  // every shard), then only the contiguous index range
  // [floor(i*M/N), floor((i+1)*M/N)) is simulated, where M is the full
  // list size, i = shard_index and N = shard_count. The union of all N
  // shards' results is exactly the serial campaign; shard_count == 1 is
  // the whole campaign (the default, bit-identical to the pre-shard code).
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  vp::MachineConfig machine;
};

struct CampaignResult {
  // Golden reference.
  int golden_exit_code = 0;
  u64 golden_instructions = 0;
  std::string golden_uart;
  u64 golden_memory_hash = 0;  // FNV-1a over the final .data contents

  std::vector<MutantResult> mutants;
  // Sharded runs: global index of mutants[0] in the full fault list, and
  // the full list's size. Whole-campaign runs have shard_begin == 0 and
  // total_faults == mutants.size().
  u64 shard_begin = 0;
  u64 total_faults = 0;
  u64 outcome_counts[4] = {0, 0, 0, 0};
  u64 pruned_count = 0;  // mutants decided statically (triage)
  double simulated_instructions = 0;  // across all mutants
  // Aggregate snapshot/restore cost over all reused worker machines (zeroed
  // when reuse_machines is off).
  vp::SnapshotStats snapshot_stats;
  // One-line JSON campaign telemetry ("{}" unless collect_metrics). Only
  // partition-invariant values are exported, so the string is
  // byte-identical across `jobs` counts and machine reuse on/off.
  std::string metrics_json = "{}";

  u64 count(Outcome outcome) const {
    return outcome_counts[static_cast<unsigned>(outcome)];
  }
  // Non-masked ("informative") fraction for one fault target class.
  double informative_fraction(FaultTarget target) const;
  std::string to_string() const;
};

class Campaign {
 public:
  Campaign(assembler::Program program, const CampaignConfig& config)
      : program_(std::move(program)), config_(config) {}

  // Golden run + fault-list generation + one simulation per mutant
  // (fanned out over `config.jobs` workers; aggregation is deterministic).
  Result<CampaignResult> run();

  // The generated fault list (valid after run()).
  const std::vector<FaultSpec>& fault_list() const noexcept { return faults_; }

  // Live progress of an in-flight run(): mutants done plus an Outcome
  // histogram snapshot (indexed by static_cast<unsigned>(Outcome)).
  // Safe to read from any thread while run() executes.
  const exec::CampaignProgress& progress() const noexcept { return progress_; }

 private:
  struct Profile {
    coverage::CoverageData coverage;
    std::vector<u32> touched_memory;   // data addresses accessed
    std::vector<u32> executed_code;    // instruction addresses executed
  };

  Result<Profile> profile_run(CampaignResult& result);
  std::vector<FaultSpec> generate_faults(const Profile& profile);
  Outcome classify(const vp::RunResult& run, const std::string& uart,
                   u64 memory_hash, const CampaignResult& golden) const;
  // One mutant simulation on `machine`, which must hold the freshly loaded
  // (or snapshot-restored) program with no plugins attached. Thread-safe:
  // shares only the immutable program and golden reference.
  Result<MutantResult> run_mutant_on(vp::Machine& machine,
                                     const FaultSpec& spec,
                                     const CampaignResult& golden) const;
  // Fresh-machine path (reuse_machines off): build, load, run one mutant.
  Result<MutantResult> run_mutant(const FaultSpec& spec,
                                  const vp::MachineConfig& machine_config,
                                  const CampaignResult& golden) const;

  assembler::Program program_;
  CampaignConfig config_;
  std::vector<FaultSpec> faults_;
  exec::CampaignProgress progress_;
};

}  // namespace s4e::fault
