// Binary -> Instr decoding, DecodeTree-style: the decoder is built from the
// single declarative OpInfo table (match/mask rows bucketed by major
// opcode), so it is correct by construction with respect to the encoder.
#pragma once

#include <vector>

#include "common/status.hpp"
#include "isa/instr.hpp"

namespace s4e::isa {

class Decoder {
 public:
  Decoder();

  // Decode one 32-bit word. Fails with kEncodingError for illegal or
  // unsupported encodings (the VP raises an illegal-instruction trap then).
  Result<Instr> decode(u32 word) const;

  // Fast-path variant used by the translation-block builder: returns false
  // on illegal encodings without constructing an Error.
  bool try_decode(u32 word, Instr& out) const noexcept;

 private:
  struct Row {
    u32 match;
    u32 mask;
    Op op;
  };
  // Rows bucketed by the major opcode (bits 6:0 >> 2); bucket 32 collects
  // nothing (non-11 low bits are always illegal in RV32-without-C).
  std::vector<Row> buckets_[32];
};

// Process-wide shared decoder instance (the table is immutable).
const Decoder& decoder();

// Extract the operand fields for `op` out of `word` (used by decode and by
// the fault injector to explain opcode-level bit flips).
Instr extract_operands(Op op, u32 word) noexcept;

}  // namespace s4e::isa
