# Empty compiler generated dependencies file for s4e_asm.
# This may be replaced when dependencies are built.
