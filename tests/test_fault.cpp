#include <gtest/gtest.h>

#include <set>

#include "core/ecosystem.hpp"
#include "core/workloads.hpp"
#include "fault/fault.hpp"
#include "vp/runner.hpp"

namespace s4e::fault {
namespace {

assembler::Program build(const std::string& source) {
  auto program = assembler::assemble(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().to_string());
  return *program;
}

// A small self-checking workload: checksum with known result.
const char* kChecksumSource = R"(
_start:
    la t0, data
    li t1, 8
    li a0, 0
loop:
    lw t2, 0(t0)
    add a0, a0, t2
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, loop
    li a7, 93
    ecall
.data
data:
    .word 1, 2, 3, 4, 5, 6, 7, 8
)";

TEST(FaultSpec, Describes) {
  FaultSpec spec;
  spec.target = FaultTarget::kGpr;
  spec.kind = FaultKind::kTransient;
  spec.reg = 10;
  spec.bit = 3;
  spec.trigger = 42;
  const std::string text = spec.to_string();
  EXPECT_NE(text.find("gpr x10"), std::string::npos);
  EXPECT_NE(text.find("bit 3"), std::string::npos);
  EXPECT_NE(text.find("transient"), std::string::npos);
}

TEST(Injector, TransientGprFlipChangesResult) {
  auto program = build(kChecksumSource);
  // Golden.
  vp::Machine golden;
  ASSERT_TRUE(golden.load_program(program).ok());
  auto golden_run = golden.run();
  ASSERT_EQ(golden_run.exit_code, 36);

  // Flip bit 4 of a0 (the accumulator) late in the run: must change the sum.
  vp::Machine faulty;
  ASSERT_TRUE(faulty.load_program(program).ok());
  FaultSpec spec;
  spec.target = FaultTarget::kGpr;
  spec.kind = FaultKind::kTransient;
  spec.reg = 10;
  spec.bit = 6;  // +/- 64: outside the reachable sum, guaranteed visible
  spec.trigger = golden_run.instructions - 3;
  FaultInjectorPlugin injector(spec);
  injector.attach(faulty.vm_handle());
  auto faulty_run = faulty.run();
  EXPECT_EQ(injector.applications(), 1u);
  EXPECT_TRUE(faulty_run.normal_exit());
  EXPECT_NE(faulty_run.exit_code, golden_run.exit_code);
}

TEST(Injector, EarlyTransientOnDeadRegisterIsMasked) {
  auto program = build(kChecksumSource);
  vp::Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());
  FaultSpec spec;
  spec.target = FaultTarget::kGpr;
  spec.kind = FaultKind::kTransient;
  spec.reg = 28;  // t3: never used by the workload
  spec.bit = 5;
  spec.trigger = 2;
  FaultInjectorPlugin injector(spec);
  injector.attach(machine.vm_handle());
  auto run = machine.run();
  EXPECT_TRUE(run.normal_exit());
  EXPECT_EQ(run.exit_code, 36);
}

TEST(Injector, MemoryFaultCorruptsData) {
  auto program = build(kChecksumSource);
  const u32 data_base = program.find_section(".data")->base;
  vp::Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());
  FaultSpec spec;
  spec.target = FaultTarget::kMemory;
  spec.kind = FaultKind::kTransient;
  spec.address = data_base;  // first byte of data[0]
  spec.bit = 7;              // +128
  spec.trigger = 0;          // before anything is read
  FaultInjectorPlugin injector(spec);
  injector.attach(machine.vm_handle());
  auto run = machine.run();
  EXPECT_TRUE(run.normal_exit());
  EXPECT_EQ(run.exit_code, 36 + 128);
}

TEST(Injector, CodeFaultTriggersTbFlush) {
  auto program = build(kChecksumSource);
  const u32 text_base = program.find_section(".text")->base;
  vp::Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());
  FaultSpec spec;
  spec.target = FaultTarget::kCode;
  spec.kind = FaultKind::kTransient;
  spec.address = text_base + 0x10;  // the lw inside the loop
  spec.bit = 20;
  spec.trigger = 10;
  FaultInjectorPlugin injector(spec);
  injector.attach(machine.vm_handle());
  auto run = machine.run();
  // Whatever the outcome, the injection must have happened and flushed.
  EXPECT_EQ(injector.applications(), 1u);
  EXPECT_GE(machine.tb_cache().flush_count(), 1u);
  (void)run;
}

TEST(Injector, StuckAtZeroForcesBitLow) {
  auto program = build(R"(
    li t0, 0xff
    mv a0, t0
    li a7, 93
    ecall
  )");
  vp::Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());
  FaultSpec spec;
  spec.target = FaultTarget::kGpr;
  spec.kind = FaultKind::kStuckAt;
  spec.reg = 5;  // t0
  spec.bit = 0;
  spec.stuck_value = false;
  FaultInjectorPlugin injector(spec);
  injector.attach(machine.vm_handle());
  auto run = machine.run();
  EXPECT_TRUE(run.normal_exit());
  EXPECT_EQ(run.exit_code, 0xfe);
  EXPECT_GE(injector.applications(), 1u);
}

TEST(Campaign, RunsAndClassifiesAllMutants) {
  auto program = build(kChecksumSource);
  CampaignConfig config;
  config.seed = 11;
  config.mutant_count = 60;
  Campaign campaign(program, config);
  auto result = campaign.run();
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result->mutants.size(), 60u);
  EXPECT_EQ(result->golden_exit_code, 36);
  u64 total = 0;
  for (unsigned i = 0; i < 4; ++i) total += result->outcome_counts[i];
  EXPECT_EQ(total, 60u);
  // A random campaign over a checksum kernel must produce at least some
  // masked and some non-masked outcomes.
  EXPECT_GT(result->count(Outcome::kMasked), 0u);
  EXPECT_GT(60u - result->count(Outcome::kMasked), 0u);
}

TEST(Campaign, DeterministicForSeed) {
  auto program = build(kChecksumSource);
  CampaignConfig config;
  config.seed = 5;
  config.mutant_count = 25;
  Campaign a(program, config);
  Campaign b(program, config);
  auto ra = a.run();
  auto rb = b.run();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(ra->outcome_counts[i], rb->outcome_counts[i]);
  }
}

TEST(Campaign, CoverageDirectedTargetsLiveState) {
  auto program = build(kChecksumSource);
  CampaignConfig config;
  config.seed = 3;
  config.mutant_count = 40;
  config.coverage_directed = true;
  config.memory_faults = false;
  config.code_faults = false;
  Campaign campaign(program, config);
  ASSERT_TRUE(campaign.run().ok());
  // Only registers the workload actually reads may appear.
  for (const FaultSpec& spec : campaign.fault_list()) {
    EXPECT_EQ(spec.target, FaultTarget::kGpr);
    // The kernel reads t0..t2, a0, a7 and (implicitly) x0 — allow the set
    // of actually-read registers, checked against the profile indirectly:
    EXPECT_NE(spec.reg, 28u);  // t3 is never touched
  }
}

TEST(Campaign, BlindModeCoversMoreTargets) {
  auto program = build(kChecksumSource);
  CampaignConfig directed_config;
  directed_config.seed = 9;
  directed_config.mutant_count = 120;
  directed_config.memory_faults = false;
  directed_config.code_faults = false;
  Campaign directed(program, directed_config);
  ASSERT_TRUE(directed.run().ok());

  CampaignConfig blind_config = directed_config;
  blind_config.coverage_directed = false;
  Campaign blind(program, blind_config);
  ASSERT_TRUE(blind.run().ok());

  auto distinct_regs = [](const std::vector<FaultSpec>& faults) {
    std::set<unsigned> regs;
    for (const FaultSpec& spec : faults) regs.insert(spec.reg);
    return regs.size();
  };
  EXPECT_LT(distinct_regs(directed.fault_list()),
            distinct_regs(blind.fault_list()));
}

TEST(Campaign, HangDetection) {
  // A fault flipping the loop counter to a huge value can make the loop
  // spin far longer; stuck-at on the counter's low bit prevents
  // termination entirely. Force such a fault and expect a hang.
  auto program = build(R"(
_start:
    li t1, 8
loop:
    addi t1, t1, -1
    bnez t1, loop
    li a7, 93
    li a0, 0
    ecall
)");
  vp::MachineConfig machine_config;
  machine_config.max_instructions = 100'000;
  vp::Machine machine(machine_config);
  ASSERT_TRUE(machine.load_program(program).ok());
  FaultSpec spec;
  spec.target = FaultTarget::kGpr;
  spec.kind = FaultKind::kStuckAt;
  spec.reg = 6;  // t1
  spec.bit = 0;
  spec.stuck_value = true;  // t1 can never reach 0
  FaultInjectorPlugin injector(spec);
  injector.attach(machine.vm_handle());
  auto run = machine.run();
  EXPECT_EQ(run.reason, vp::StopReason::kMaxInstructions);
}

TEST(HangBudget, ComputesFactorPlusSlack) {
  EXPECT_EQ(vp::hang_budget(100, 8, 200'000'000), 10'800u);
  EXPECT_EQ(vp::hang_budget(0, 8, 200'000'000), 10'000u);
}

TEST(HangBudget, ClampsToConfiguredMax) {
  EXPECT_EQ(vp::hang_budget(1'000'000, 1'000, 200'000'000), 200'000'000u);
}

TEST(HangBudget, SaturatesInsteadOfWrapping) {
  // golden * factor used to wrap, and `wrapped + 10'000` could land on a
  // tiny budget (even 0), hanging every mutant after no instructions at
  // all. Saturation plus the clamp keeps the budget at the configured max.
  EXPECT_EQ(vp::hang_budget(~u64{0}, 8, 200'000'000), 200'000'000u);
  EXPECT_EQ(vp::hang_budget(10'000, ~u64{0}, 200'000'000), 200'000'000u);
  EXPECT_EQ(vp::hang_budget(~u64{0}, ~u64{0}, ~u64{0}), ~u64{0});
}

TEST(Campaign, HugeHangBudgetFactorDoesNotWrap) {
  // Regression: with the wrapping arithmetic a factor of UINT64_MAX
  // produced budget 0 for even goldens (x * MAX + 10'000 ≡ 10'000 - x
  // mod 2^64) and every mutant "hung" instantly. With saturation the
  // budget clamps to max_instructions and the campaign classifies
  // normally.
  CampaignConfig config;
  config.mutant_count = 12;
  config.seed = 5;
  config.hang_budget_factor = ~u64{0};
  config.jobs = 1;
  // Keep genuinely hanging mutants cheap: the budget clamps to this cap.
  config.machine.max_instructions = 100'000;
  auto result = Campaign(build(kChecksumSource), config).run();
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  // The checksum workload always yields some masked/SDC mutants; before
  // the fix every single mutant was (mis)classified as a hang.
  EXPECT_LT(result->count(Outcome::kHang), result->mutants.size());
  EXPECT_GT(result->count(Outcome::kMasked) + result->count(Outcome::kSdc),
            0u);
}

TEST(Campaign, GoldenMustTerminate) {
  auto program = build("spin: j spin\n");
  CampaignConfig config;
  config.machine.max_instructions = 10'000;
  Campaign campaign(program, config);
  auto result = campaign.run();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kStateError);
}

TEST(Campaign, WorkloadCampaignSmoke) {
  core::Ecosystem ecosystem;
  auto workload = core::find_workload("bubble_sort");
  ASSERT_TRUE(workload.ok());
  auto program = ecosystem.build(*workload);
  ASSERT_TRUE(program.ok());
  CampaignConfig config;
  config.seed = 77;
  config.mutant_count = 30;
  auto result = ecosystem.run_campaign(*program, config);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result->mutants.size(), 30u);
  const std::string text = result->to_string();
  EXPECT_NE(text.find("masked"), std::string::npos);
  EXPECT_NE(text.find("sdc"), std::string::npos);
}

}  // namespace
}  // namespace s4e::fault
