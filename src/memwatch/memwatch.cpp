#include "memwatch/memwatch.hpp"

#include "common/strings.hpp"

namespace s4e::memwatch {

std::string Violation::to_string() const {
  return format("%s at pc=0x%08x: %s %u bytes at 0x%08x (value 0x%08x)",
                region.c_str(), pc, is_store ? "store" : "load", 4, address,
                value);
}

void MemWatchPlugin::on_mem(const s4e_mem_event& event) {
  ++total_accesses_;
  bool matched = false;
  for (std::size_t i = 0; i < policy_.regions.size(); ++i) {
    const Region& region = policy_.regions[i];
    if (!region.contains(event.vaddr)) continue;
    matched = true;
    if (event.is_store) {
      ++stats_[i].writes;
    } else {
      ++stats_[i].reads;
    }
    const bool kind_ok =
        event.is_store ? region.allow_write : region.allow_read;
    if (!kind_ok || !region.pc_allowed(event.pc)) {
      Violation violation;
      violation.region = region.name;
      violation.pc = event.pc;
      violation.address = event.vaddr;
      violation.value = event.value;
      violation.is_store = event.is_store != 0;
      violations_.push_back(std::move(violation));
    }
  }
  if (!matched) {
    ++unmatched_;
    if (!policy_.default_allow) {
      Violation violation;
      violation.region = "<unmatched>";
      violation.pc = event.pc;
      violation.address = event.vaddr;
      violation.value = event.value;
      violation.is_store = event.is_store != 0;
      violations_.push_back(std::move(violation));
    }
  }
}

std::string MemWatchPlugin::report() const {
  std::string out = "memwatch report\n";
  out += format("  data accesses observed : %llu\n",
                static_cast<unsigned long long>(total_accesses_));
  for (std::size_t i = 0; i < policy_.regions.size(); ++i) {
    const Region& region = policy_.regions[i];
    out += format("  %-16s [0x%08x, +0x%x): %llu reads, %llu writes\n",
                  region.name.c_str(), region.base, region.size,
                  static_cast<unsigned long long>(stats_[i].reads),
                  static_cast<unsigned long long>(stats_[i].writes));
  }
  out += format("  violations             : %zu\n", violations_.size());
  for (const Violation& violation : violations_) {
    out += "    " + violation.to_string() + "\n";
  }
  return out;
}

}  // namespace s4e::memwatch
