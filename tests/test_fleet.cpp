// Campaign fleet service tests: wire codec round trips, checkpoint journal
// recovery, and the orchestrator's headline contract — the multi-process
// fleet report is byte-identical to the serial engine's, including across
// worker SIGKILLs, daemon crash/resume cycles, and both transports.
//
// Orchestrator tests fork real worker binaries (s4e-faultsim / s4e-mutate
// from S4E_TOOL_DIR), so this suite exercises the full process-supervision
// path, not a mock.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "asm/assembler.hpp"
#include "common/strings.hpp"
#include "core/workloads.hpp"
#include "debug/tcp.hpp"
#include "elf/elf32.hpp"
#include "fault/fault.hpp"
#include "fleet/checkpoint.hpp"
#include "fleet/orchestrator.hpp"
#include "fleet/records.hpp"
#include "fleet/worker.hpp"
#include "mutation/mutation.hpp"

#ifndef S4E_TOOL_DIR
#error "S4E_TOOL_DIR must be defined by the build system"
#endif

namespace s4e::fleet {
namespace {

std::string tool(const std::string& name) {
  return std::string(S4E_TOOL_DIR) + "/" + name;
}

std::string temp_path(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "/" + std::to_string(getpid()) + "_" +
         (info != nullptr ? std::string(info->name()) + "_" : "") + name;
}

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  const std::string full = command + " 2>&1";
  FILE* pipe = popen(full.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

// Fixture: one checksum ELF on disk plus the serial reference reports,
// computed in-process through the same engines the worker binaries use.
class Fleet : public ::testing::Test {
 protected:
  void SetUp() override {
    auto workload = core::find_workload("checksum");
    ASSERT_TRUE(workload.ok());
    auto program = assembler::assemble(workload->source);
    ASSERT_TRUE(program.ok()) << program.error().to_string();
    elf_ = temp_path("fleet.elf");
    ASSERT_TRUE(elf::write_elf_file(*program, elf_).ok());
    program_ = *program;
  }
  void TearDown() override { std::remove(elf_.c_str()); }

  std::string serial_fault_report(unsigned mutants, u64 seed) {
    fault::CampaignConfig config;
    config.mutant_count = mutants;
    config.seed = seed;
    config.jobs = 1;
    fault::Campaign campaign(program_, config);
    auto result = campaign.run();
    EXPECT_TRUE(result.ok());
    return result.ok() ? result->to_string() : "";
  }

  std::string serial_mutation_report(unsigned max_mutants) {
    mutation::MutationConfig config;
    config.max_mutants = max_mutants;
    config.jobs = 1;
    mutation::MutationCampaign campaign(program_, config);
    auto score = campaign.run();
    EXPECT_TRUE(score.ok());
    return score.ok() ? score->to_string() : "";
  }

  FleetOptions fault_options(unsigned mutants, u64 seed) {
    FleetOptions options;
    options.elf_path = elf_;
    options.mode = Mode::kFault;
    options.worker_path = tool("s4e-faultsim");
    options.mutants = mutants;
    options.seed = seed;
    return options;
  }

  std::string elf_;
  assembler::Program program_;
};

// --- wire records ----------------------------------------------------------

TEST(FleetRecords, MetaRoundTrips) {
  MetaLine meta;
  meta.mode = Mode::kFault;
  meta.shard = 3;
  meta.shards = 16;
  meta.begin = 37;
  meta.end = 50;
  meta.total = 200;
  meta.golden_exit = 42;
  meta.golden_instructions = 123456;
  meta.fingerprint = 0xdeadbeefcafef00dull;  // exceeds i64: hex transport
  auto parsed = parse_line(encode(meta), Mode::kFault);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  ASSERT_TRUE(parsed->meta.has_value());
  EXPECT_EQ(parsed->meta->shard, 3u);
  EXPECT_EQ(parsed->meta->begin, 37u);
  EXPECT_EQ(parsed->meta->end, 50u);
  EXPECT_EQ(parsed->meta->total, 200u);
  EXPECT_EQ(parsed->meta->golden_exit, 42);
  EXPECT_EQ(parsed->meta->golden_instructions, 123456u);
  EXPECT_EQ(parsed->meta->fingerprint, 0xdeadbeefcafef00dull);
}

TEST(FleetRecords, RecordRoundTripsBothModes) {
  RecordLine record;
  record.index = 99;
  record.klass = 2;
  record.bucket = 1;
  record.exit_code = -6;
  record.instructions = 4242;
  record.pruned = true;
  for (const Mode mode : {Mode::kFault, Mode::kMutation}) {
    auto parsed = parse_line(encode(mode, record), mode);
    ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
    ASSERT_TRUE(parsed->record.has_value());
    EXPECT_EQ(parsed->record->index, 99u);
    EXPECT_EQ(parsed->record->klass, 2);
    EXPECT_EQ(parsed->record->bucket, 1);
    EXPECT_EQ(parsed->record->exit_code, -6);
    EXPECT_EQ(parsed->record->instructions, 4242u);
    EXPECT_TRUE(parsed->record->pruned);
  }
}

TEST(FleetRecords, DoneRoundTrips) {
  DoneLine done;
  done.shard = 7;
  done.count = 13;
  auto parsed = parse_line(encode(done), Mode::kMutation);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->done.has_value());
  EXPECT_EQ(parsed->done->shard, 7u);
  EXPECT_EQ(parsed->done->count, 13u);
}

TEST(FleetRecords, RejectsMalformedLines) {
  EXPECT_FALSE(parse_line("{\"i\":1}", Mode::kFault).ok());
  EXPECT_FALSE(parse_line("not json at all", Mode::kFault).ok());
  EXPECT_FALSE(
      parse_line("{\"i\":0,\"class\":\"gpr\",\"bucket\":\"nope\","
                 "\"exit\":0,\"insns\":1,\"pruned\":0}",
                 Mode::kFault)
          .ok());
  // A fault-mode class name is rejected under mutation mode (and vice
  // versa) — the two vocabularies never mix on one stream.
  EXPECT_FALSE(
      parse_line("{\"i\":0,\"class\":\"gpr\",\"bucket\":\"SURVIVED\","
                 "\"exit\":0,\"insns\":1,\"pruned\":0}",
                 Mode::kMutation)
          .ok());
  MetaLine meta;
  meta.shard = 5;
  meta.shards = 4;  // shard >= shards
  EXPECT_FALSE(parse_line(encode(meta), Mode::kFault).ok());
}

TEST(FleetRecords, FingerprintSeparatesCampaigns) {
  const std::string elf_bytes = "\x7f" "ELF-ish";
  const u64 a = campaign_fingerprint(elf_bytes, Mode::kFault, 1, 200, 0, 4);
  EXPECT_NE(a, campaign_fingerprint(elf_bytes, Mode::kFault, 2, 200, 0, 4));
  EXPECT_NE(a, campaign_fingerprint(elf_bytes, Mode::kFault, 1, 100, 0, 4));
  EXPECT_NE(a, campaign_fingerprint(elf_bytes, Mode::kFault, 1, 200, 0, 8));
  EXPECT_NE(a,
            campaign_fingerprint(elf_bytes, Mode::kMutation, 1, 200, 0, 4));
  EXPECT_NE(a,
            campaign_fingerprint(elf_bytes + "x", Mode::kFault, 1, 200, 0, 4));
  EXPECT_EQ(a, campaign_fingerprint(elf_bytes, Mode::kFault, 1, 200, 0, 4));
}

TEST(FleetRecords, ParseShardSelector) {
  auto shard = parse_shard("3/16");
  ASSERT_TRUE(shard.has_value());
  EXPECT_EQ(shard->first, 3u);
  EXPECT_EQ(shard->second, 16u);
  EXPECT_FALSE(parse_shard("16/16").has_value());  // index out of range
  EXPECT_FALSE(parse_shard("3").has_value());
  EXPECT_FALSE(parse_shard("a/b").has_value());
  EXPECT_FALSE(parse_shard("-1/4").has_value());
  EXPECT_FALSE(parse_shard("0/0").has_value());
}

// --- checkpoint journal ----------------------------------------------------

CompletedShard make_shard(unsigned shard, u64 begin, u64 end, u64 total) {
  CompletedShard block;
  block.shard = shard;
  block.begin = begin;
  block.end = end;
  block.total = total;
  block.golden_exit = 36;
  block.golden_instructions = 999;
  for (u64 i = begin; i < end; ++i) {
    RecordLine record;
    record.index = i;
    record.klass = static_cast<u8>(i % 3);
    record.bucket = static_cast<u8>(i % 4);
    record.exit_code = 36;
    record.instructions = 100 + i;
    block.records.push_back(record);
  }
  return block;
}

TEST(FleetCheckpoint, CommitAndRecover) {
  const std::string path = temp_path("ck.jsonl");
  CheckpointHeader header;
  header.mode = Mode::kFault;
  header.fingerprint = 0xabcdef0123456789ull;
  header.shards = 4;

  std::vector<CompletedShard> recovered;
  bool replaced = false;
  {
    auto journal = CheckpointJournal::open(path, header, recovered, replaced);
    ASSERT_TRUE(journal.ok()) << journal.error().to_string();
    EXPECT_TRUE(recovered.empty());
    EXPECT_FALSE(replaced);
    ASSERT_TRUE(journal->commit(make_shard(2, 10, 20, 40)).ok());
    ASSERT_TRUE(journal->commit(make_shard(0, 0, 10, 40)).ok());
  }
  {
    auto journal = CheckpointJournal::open(path, header, recovered, replaced);
    ASSERT_TRUE(journal.ok());
    EXPECT_FALSE(replaced);
    ASSERT_EQ(recovered.size(), 2u);
    EXPECT_EQ(recovered[0].shard, 0u);  // sorted by shard index
    EXPECT_EQ(recovered[1].shard, 2u);
    EXPECT_EQ(recovered[1].records.size(), 10u);
    EXPECT_EQ(recovered[1].records[0].index, 10u);
    EXPECT_EQ(recovered[0].golden_exit, 36);
  }
  std::remove(path.c_str());
}

TEST(FleetCheckpoint, PartialTrailingBlockIsDiscarded) {
  CheckpointHeader header;
  header.mode = Mode::kMutation;
  header.fingerprint = 7;
  header.shards = 2;
  std::string text = encode_header(header) + "\n";
  const CompletedShard good = make_shard(0, 0, 3, 6);
  text += encode_shard_header(good) + "\n";
  for (const RecordLine& record : good.records) {
    text += encode(Mode::kMutation, record) + "\n";
  }
  text += "{\"commit\":0}\n";
  // Second block: shard header + one record, then the daemon died — no
  // commit line.
  const CompletedShard bad = make_shard(1, 3, 6, 6);
  text += encode_shard_header(bad) + "\n";
  text += encode(Mode::kMutation, bad.records[0]) + "\n";

  bool matches = false;
  auto parsed = parse_journal(text, header, matches);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(matches);
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].shard, 0u);
}

TEST(FleetCheckpoint, StaleJournalIsReplaced) {
  const std::string path = temp_path("ck_stale.jsonl");
  CheckpointHeader header;
  header.mode = Mode::kFault;
  header.fingerprint = 1;
  header.shards = 2;
  std::vector<CompletedShard> recovered;
  bool replaced = false;
  {
    auto journal = CheckpointJournal::open(path, header, recovered, replaced);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->commit(make_shard(0, 0, 2, 4)).ok());
  }
  // Same path, different campaign fingerprint: committed work must NOT be
  // resurrected into the wrong campaign.
  header.fingerprint = 2;
  {
    auto journal = CheckpointJournal::open(path, header, recovered, replaced);
    ASSERT_TRUE(journal.ok());
    EXPECT_TRUE(recovered.empty());
    EXPECT_TRUE(replaced);
  }
  std::remove(path.c_str());
}

// --- orchestrator: byte-identity -------------------------------------------

TEST_F(Fleet, FaultReportMatchesSerialEngine) {
  const std::string serial = serial_fault_report(40, 1);
  FleetOptions options = fault_options(40, 1);
  options.workers = 3;
  options.shards = 5;
  auto fleet = run_fleet(options);
  ASSERT_TRUE(fleet.ok()) << fleet.error().to_string();
  EXPECT_EQ(fleet->report, serial);
  EXPECT_EQ(fleet->stats.shards_done, 5u);
  EXPECT_EQ(fleet->stats.records, 40u);
  EXPECT_EQ(fleet->stats.worker_restarts, 0u);
}

TEST_F(Fleet, MutationReportMatchesSerialEngine) {
  const std::string serial = serial_mutation_report(50);
  FleetOptions options;
  options.elf_path = elf_;
  options.mode = Mode::kMutation;
  options.worker_path = tool("s4e-mutate");
  options.max_mutants = 50;
  options.workers = 2;
  options.shards = 4;
  auto fleet = run_fleet(options);
  ASSERT_TRUE(fleet.ok()) << fleet.error().to_string();
  EXPECT_EQ(fleet->report, serial);
}

TEST_F(Fleet, TcpTransportMatchesPipeTransport) {
  FleetOptions options = fault_options(30, 7);
  options.workers = 2;
  options.shards = 3;
  auto piped = run_fleet(options);
  ASSERT_TRUE(piped.ok()) << piped.error().to_string();
  options.tcp_transport = true;
  auto tcp = run_fleet(options);
  ASSERT_TRUE(tcp.ok()) << tcp.error().to_string();
  EXPECT_EQ(tcp->report, piped->report);
  EXPECT_EQ(tcp->report, serial_fault_report(30, 7));
}

// --- orchestrator: fault tolerance -----------------------------------------

TEST_F(Fleet, SigkilledWorkerIsRestartedAndReportUnchanged) {
  const std::string serial = serial_fault_report(40, 1);
  FleetOptions options = fault_options(40, 1);
  options.workers = 2;
  options.shards = 4;
  // The first spawned worker stalls after 3 records and is SIGKILLed by
  // the daemon; its shard must be re-run and the merged report unharmed.
  options.test_kill_after_records = 3;
  auto fleet = run_fleet(options);
  ASSERT_TRUE(fleet.ok()) << fleet.error().to_string();
  EXPECT_EQ(fleet->report, serial);
  EXPECT_GE(fleet->stats.worker_restarts, 1u);
  EXPECT_GT(fleet->stats.workers_spawned, 4u);
}

TEST_F(Fleet, DaemonCrashResumesFromCheckpoint) {
  const std::string serial = serial_fault_report(40, 1);
  const std::string checkpoint = temp_path("resume.jsonl");
  FleetOptions options = fault_options(40, 1);
  options.workers = 2;
  options.shards = 4;
  options.checkpoint_path = checkpoint;
  options.test_fail_after_commits = 2;
  auto crashed = run_fleet(options);
  ASSERT_FALSE(crashed.ok());  // simulated daemon death

  options.test_fail_after_commits = 0;
  auto resumed = run_fleet(options);
  ASSERT_TRUE(resumed.ok()) << resumed.error().to_string();
  EXPECT_EQ(resumed->report, serial);
  EXPECT_GE(resumed->stats.shards_recovered, 2u);
  EXPECT_LE(resumed->stats.shards_done, 2u);
  EXPECT_FALSE(resumed->stats.checkpoint_replaced);
  std::remove(checkpoint.c_str());
}

TEST_F(Fleet, KillCrashAndResumeCombined) {
  // The full gauntlet: a worker is SIGKILLed, the daemon then dies, and
  // the resumed daemon must still converge on the serial bytes.
  const std::string serial = serial_fault_report(40, 1);
  const std::string checkpoint = temp_path("gauntlet.jsonl");
  FleetOptions options = fault_options(40, 1);
  options.workers = 2;
  options.shards = 4;
  options.checkpoint_path = checkpoint;
  options.test_kill_after_records = 2;
  options.test_fail_after_commits = 1;
  auto crashed = run_fleet(options);
  ASSERT_FALSE(crashed.ok());

  options.test_kill_after_records = 0;
  options.test_fail_after_commits = 0;
  auto resumed = run_fleet(options);
  ASSERT_TRUE(resumed.ok()) << resumed.error().to_string();
  EXPECT_EQ(resumed->report, serial);
  std::remove(checkpoint.c_str());
}

TEST_F(Fleet, BrokenWorkerBinaryExhaustsRetries) {
  FleetOptions options = fault_options(10, 1);
  options.worker_path = "/nonexistent/worker";
  options.workers = 1;
  options.shards = 2;
  options.max_retries = 1;
  auto fleet = run_fleet(options);
  ASSERT_FALSE(fleet.ok());
  EXPECT_NE(fleet.error().message().find("giving up"), std::string::npos)
      << fleet.error().message();
}

// --- orchestrator: status endpoint -----------------------------------------

TEST_F(Fleet, StatusEndpointServesLiveMetrics) {
  FleetOptions options = fault_options(60, 1);
  options.workers = 1;  // serialize shards: a wide time window to query
  options.shards = 8;
  options.status_port = 0;
  std::atomic<int> port{-1};
  options.on_status_port = [&port](int bound) { port.store(bound); };

  std::atomic<bool> done{false};
  std::string response;
  std::thread client([&] {
    while (!done.load()) {
      const int p = port.load();
      if (p < 0) continue;
      std::string error;
      auto channel =
          debug::TcpChannel::connect_loopback(static_cast<u16>(p), error);
      if (channel == nullptr) continue;
      bool timed_out = false;
      const std::string line = channel->read_for(2000, timed_out);
      if (!line.empty()) {
        response = line;
        return;
      }
    }
  });
  auto fleet = run_fleet(options);
  done.store(true);
  client.join();
  ASSERT_TRUE(fleet.ok()) << fleet.error().to_string();
  EXPECT_NE(response.find("\"fleet_shards_total\": 8"), std::string::npos)
      << response;
  EXPECT_NE(response.find("fleet_records"), std::string::npos);
  EXPECT_EQ(fleet->stats.status_port, port.load());
  // The final registry snapshot is also exported on the report.
  EXPECT_NE(fleet->metrics_json.find("\"fleet_shards_done\": 8"),
            std::string::npos)
      << fleet->metrics_json;
}

// --- shard property: union of shards == whole campaign ----------------------

std::vector<std::string> stream_records(const std::string& output) {
  std::vector<std::string> records;
  std::istringstream in(output);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("{\"i\":", 0) == 0) records.push_back(line);
  }
  return records;
}

TEST_F(Fleet, ShardUnionEqualsSerialForSeveralShardCounts) {
  // Worker-level property test over the real binary: for several N, the
  // concatenation of all N shard streams is exactly the 1-shard stream —
  // same records, same global order, no gaps, no overlaps.
  const std::string base = tool("s4e-faultsim") + " " + elf_ +
                           " --emit-jsonl --jobs 1 --mutants 24 --seed 3";
  auto whole = run_command(base + " --shard 0/1");
  ASSERT_EQ(whole.exit_code, 0) << whole.output;
  const auto reference = stream_records(whole.output);
  ASSERT_EQ(reference.size(), 24u);

  for (const unsigned shards : {2u, 3u, 5u, 7u}) {
    std::vector<std::string> merged;
    for (unsigned i = 0; i < shards; ++i) {
      auto shard = run_command(base + format(" --shard %u/%u", i, shards));
      ASSERT_EQ(shard.exit_code, 0) << shard.output;
      const auto records = stream_records(shard.output);
      merged.insert(merged.end(), records.begin(), records.end());
    }
    EXPECT_EQ(merged, reference) << "shard count " << shards;
  }
}

TEST_F(Fleet, MutationShardUnionEqualsSerial) {
  const std::string base = tool("s4e-mutate") + " " + elf_ +
                           " --emit-jsonl --jobs 1 --max 30";
  auto whole = run_command(base + " --shard 0/1");
  ASSERT_EQ(whole.exit_code, 0) << whole.output;
  const auto reference = stream_records(whole.output);
  ASSERT_FALSE(reference.empty());

  for (const unsigned shards : {2u, 4u}) {
    std::vector<std::string> merged;
    for (unsigned i = 0; i < shards; ++i) {
      auto shard = run_command(base + format(" --shard %u/%u", i, shards));
      ASSERT_EQ(shard.exit_code, 0) << shard.output;
      const auto records = stream_records(shard.output);
      merged.insert(merged.end(), records.begin(), records.end());
    }
    EXPECT_EQ(merged, reference) << "shard count " << shards;
  }
}

// --- daemon binary ----------------------------------------------------------

TEST_F(Fleet, DaemonBinaryMatchesSerialTool) {
  auto serial = run_command(tool("s4e-faultsim") + " " + elf_ +
                            " --jobs 1 --mutants 20 --seed 5");
  ASSERT_EQ(serial.exit_code, 0) << serial.output;
  auto daemon = run_command(tool("s4e-campaignd") + " " + elf_ +
                            " --workers 2 --shards 3 --mutants 20 --seed 5");
  ASSERT_EQ(daemon.exit_code, 0) << daemon.output;
  EXPECT_EQ(daemon.output, serial.output);
}

TEST_F(Fleet, DaemonRejectsBadMode) {
  auto result = run_command(tool("s4e-campaignd") + " " + elf_ +
                            " --mode sideways");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("fault|mutation"), std::string::npos);
}

}  // namespace
}  // namespace s4e::fleet
