// Decoded instruction representation shared by the emulator, the CFG
// reconstructor, the disassembler and the fault injector.
#pragma once

#include "common/bits.hpp"
#include "isa/opcode.hpp"

namespace s4e::isa {

// A fully decoded 32-bit instruction. `imm` is already sign-extended and,
// for U-type, already shifted left by 12 — i.e. it is the value the
// semantics use, not the raw field.
struct Instr {
  Op op = Op::kEcall;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;   // also the shamt for kIShift and the zimm for kCsrImm
  i32 imm = 0;
  u16 csr = 0;  // kCsrReg / kCsrImm only
  u32 raw = 0;  // original encoding word (low 16 bits for RVC)
  u8 length = 4;  // encoding size in bytes: 4, or 2 for RVC

  const OpInfo& info() const noexcept { return op_info(op); }

  bool is_branch() const noexcept { return info().op_class == OpClass::kBranch; }
  bool is_jump() const noexcept { return info().op_class == OpClass::kJump; }
  // True if the instruction can redirect control flow (ends a basic block).
  bool is_control_flow() const noexcept {
    return is_branch() || is_jump() || op == Op::kEcall || op == Op::kEbreak ||
           op == Op::kMret;
  }
  bool is_load() const noexcept { return info().op_class == OpClass::kLoad; }
  bool is_store() const noexcept { return info().op_class == OpClass::kStore; }
  bool is_amo() const noexcept { return info().op_class == OpClass::kAmo; }
  // Memory-effect view for the static analyses: every atomic reads its
  // target word; all but LR.W may also write it (SC.W conservatively so —
  // the static side cannot know whether the reservation holds).
  bool reads_memory() const noexcept { return is_load() || is_amo(); }
  bool writes_memory() const noexcept {
    return is_store() || (is_amo() && op != Op::kLrW);
  }

  bool operator==(const Instr&) const = default;
};

}  // namespace s4e::isa
