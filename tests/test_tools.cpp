// CLI tool smoke tests: drive the installed binaries through the same
// pipeline a user would (as -> objdump/wcet -> qta/run/faultsim) and check
// exit codes and key output fragments. Tool location comes from the build
// system via S4E_TOOL_DIR.
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#ifndef S4E_TOOL_DIR
#error "S4E_TOOL_DIR must be defined by the build system"
#endif

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  const std::string full = command + " 2>&1";
  FILE* pipe = popen(full.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string tool(const std::string& name) {
  return std::string(S4E_TOOL_DIR) + "/" + name;
}

// Unique per test and per process: ctest -j runs every discovered test as
// its own concurrent process, so shared fixture files must not collide.
std::string temp_path(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "/" + std::to_string(getpid()) + "_" +
         (info != nullptr ? std::string(info->name()) + "_" : "") + name;
}

class ToolPipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    elf_ = temp_path("tools_fir.elf");
    auto result =
        run_command(tool("s4e-as") + " --workload fir -o " + elf_);
    ASSERT_EQ(result.exit_code, 0) << result.output;
  }
  void TearDown() override { std::remove(elf_.c_str()); }

  std::string elf_;
};

TEST(ToolAs, ListWorkloads) {
  auto result = run_command(tool("s4e-as") + " --list-workloads");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("checksum"), std::string::npos);
  EXPECT_NE(result.output.find("lock_ctrl"), std::string::npos);
}

TEST(ToolAs, RejectsMissingInput) {
  auto result = run_command(tool("s4e-as"));
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("usage"), std::string::npos);
}

TEST(ToolAs, RejectsUnknownWorkload) {
  auto result = run_command(tool("s4e-as") + " --workload nope -o /dev/null");
  EXPECT_EQ(result.exit_code, 1);
}

TEST(ToolAs, AssemblesSourceFile) {
  const std::string source_path = temp_path("tools_tiny.s");
  const std::string elf_path = temp_path("tools_tiny.elf");
  FILE* f = std::fopen(source_path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("li a0, 7\nli a7, 93\necall\n", f);
  std::fclose(f);
  auto assembled =
      run_command(tool("s4e-as") + " " + source_path + " -o " + elf_path);
  EXPECT_EQ(assembled.exit_code, 0) << assembled.output;
  auto run = run_command(tool("s4e-run") + " " + elf_path);
  EXPECT_EQ(run.exit_code, 7);
  std::remove(source_path.c_str());
  std::remove(elf_path.c_str());
}

TEST(ToolAs, ReportsAssemblyErrorWithLine) {
  const std::string source_path = temp_path("tools_bad.s");
  FILE* f = std::fopen(source_path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("nop\nfrobnicate a0\n", f);
  std::fclose(f);
  auto result =
      run_command(tool("s4e-as") + " " + source_path + " -o /dev/null");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("line 2"), std::string::npos);
  std::remove(source_path.c_str());
}

TEST_F(ToolPipeline, RunExitsWithWorkloadCode) {
  auto result = run_command(tool("s4e-run") + " " + elf_ + " --stats");
  EXPECT_EQ(result.exit_code, 192);  // fir's expected exit code
  EXPECT_NE(result.output.find("insns"), std::string::npos);
  EXPECT_NE(result.output.find("tb-cache"), std::string::npos);
}

TEST_F(ToolPipeline, RunHonorsMaxInsns) {
  auto result = run_command(tool("s4e-run") + " " + elf_ + " --max-insns 10");
  EXPECT_EQ(result.exit_code, 124);
}

TEST_F(ToolPipeline, RunTraceEmitsJsonl) {
  // Bare --trace streams the JSONL events to stderr.
  auto result = run_command(tool("s4e-run") + " " + elf_ +
                            " --trace --trace-limit 5");
  EXPECT_NE(result.output.find("{\"t\":\"insn\",\"n\":1,"), std::string::npos);
  EXPECT_NE(result.output.find("lui"), std::string::npos);
  EXPECT_NE(result.output.find("{\"t\":\"exit\","), std::string::npos);
}

TEST_F(ToolPipeline, RunTraceToFile) {
  const std::string trace_path = temp_path("trace.jsonl");
  auto result = run_command(tool("s4e-run") + " " + elf_ + " --trace=" +
                            trace_path + " --trace-limit 8");
  EXPECT_EQ(result.exit_code, 192);
  // Run report stays clean of trace lines when tracing to a file.
  EXPECT_EQ(result.output.find("{\"t\":"), std::string::npos);
  std::ifstream trace(trace_path);
  ASSERT_TRUE(trace.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(trace, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"t\":"), std::string::npos) << line;
  }
  EXPECT_EQ(lines, 9u);  // 8 insn/mem events + the exit line
  std::remove(trace_path.c_str());
}

TEST_F(ToolPipeline, RunCoverageReport) {
  auto result = run_command(tool("s4e-run") + " " + elf_ + " --coverage");
  EXPECT_NE(result.output.find("GPR coverage"), std::string::npos);
}

TEST_F(ToolPipeline, ObjdumpDisassembles) {
  auto result = run_command(tool("s4e-objdump") + " " + elf_);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("_start:"), std::string::npos);
  EXPECT_NE(result.output.find("dot4:"), std::string::npos);
  EXPECT_NE(result.output.find("mul"), std::string::npos);
}

TEST_F(ToolPipeline, ObjdumpSymbols) {
  auto result = run_command(tool("s4e-objdump") + " -t " + elf_);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("dot_loop"), std::string::npos);
}

TEST_F(ToolPipeline, ObjdumpCfgDot) {
  auto result = run_command(tool("s4e-objdump") + " --cfg " + elf_);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("digraph"), std::string::npos);
}

TEST_F(ToolPipeline, WcetQtaRoundTrip) {
  const std::string cfg_path = temp_path("tools_fir.qtacfg");
  auto wcet = run_command(tool("s4e-wcet") + " " + elf_ + " --emit-cfg " +
                          cfg_path);
  EXPECT_EQ(wcet.exit_code, 0) << wcet.output;
  EXPECT_NE(wcet.output.find("total static WCET"), std::string::npos);
  EXPECT_NE(wcet.output.find("dot4"), std::string::npos);

  auto qta = run_command(tool("s4e-qta") + " " + elf_ + " " + cfg_path);
  EXPECT_EQ(qta.exit_code, 0) << qta.output;
  EXPECT_NE(qta.output.find("static WCET bound"), std::string::npos);
  EXPECT_EQ(qta.output.find("VIOLATED"), std::string::npos);
  std::remove(cfg_path.c_str());
}

TEST_F(ToolPipeline, QtaRejectsMismatchedCfg) {
  // An annotated CFG for a different entry must be refused.
  const std::string cfg_path = temp_path("tools_mismatch.qtacfg");
  FILE* f = std::fopen(cfg_path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("qta-cfg v1\nprogram x entry 0x12345678\npenalty 2\n"
             "wcet_total 10\n",
             f);
  std::fclose(f);
  auto result = run_command(tool("s4e-qta") + " " + elf_ + " " + cfg_path);
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("does not match"), std::string::npos);
  std::remove(cfg_path.c_str());
}

TEST_F(ToolPipeline, FaultsimRunsCampaign) {
  auto result = run_command(tool("s4e-faultsim") + " " + elf_ +
                            " --mutants 25 --seed 3 --list");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("masked"), std::string::npos);
  EXPECT_NE(result.output.find("#000"), std::string::npos);
}

TEST_F(ToolPipeline, FaultsimMetricsOut) {
  const std::string metrics_path = temp_path("metrics.json");
  auto result = run_command(tool("s4e-faultsim") + " " + elf_ +
                            " --mutants 20 --seed 3 --jobs 1 --metrics-out " +
                            metrics_path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  std::ifstream metrics(metrics_path);
  ASSERT_TRUE(metrics.good());
  std::string content((std::istreambuf_iterator<char>(metrics)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"s4e-faultsim\""), std::string::npos) << content;
  EXPECT_NE(content.find("\"mutants_total\": 20"), std::string::npos)
      << content;
  std::remove(metrics_path.c_str());
}

TEST_F(ToolPipeline, FaultsimMetricsOutUnwritable) {
  auto result = run_command(tool("s4e-faultsim") + " " + elf_ +
                            " --mutants 5 --jobs 1 --metrics-out "
                            "/nonexistent-dir/metrics.json");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("cannot open"), std::string::npos)
      << result.output;
}

TEST_F(ToolPipeline, RunProfileReport) {
  auto result = run_command(tool("s4e-run") + " " + elf_ + " --profile");
  EXPECT_NE(result.output.find("hot blocks"), std::string::npos);
  EXPECT_NE(result.output.find("dot_loop"), std::string::npos);
}

TEST_F(ToolPipeline, MutateScoresOracle) {
  auto result = run_command(tool("s4e-mutate") + " " + elf_ +
                            " --max 60 --survivors");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("mutation analysis"), std::string::npos);
  EXPECT_NE(result.output.find("killed"), std::string::npos);
}

TEST(ToolAs, CompressedBinaryRunsIdentically) {
  const std::string plain_elf = temp_path("tools_cmp_plain.elf");
  const std::string rvc_elf = temp_path("tools_cmp_rvc.elf");
  ASSERT_EQ(run_command(tool("s4e-as") + " --workload checksum -o " +
                        plain_elf)
                .exit_code,
            0);
  ASSERT_EQ(run_command(tool("s4e-as") + " --workload checksum --compress -o " +
                        rvc_elf)
                .exit_code,
            0);
  auto plain_run = run_command(tool("s4e-run") + " " + plain_elf);
  auto rvc_run = run_command(tool("s4e-run") + " " + rvc_elf);
  EXPECT_EQ(plain_run.exit_code, rvc_run.exit_code);
  // Disassembly of the compressed binary shows 16-bit encodings.
  auto dump = run_command(tool("s4e-objdump") + " " + rvc_elf);
  EXPECT_NE(dump.output.find("sum_loop"), std::string::npos);
  std::remove(plain_elf.c_str());
  std::remove(rvc_elf.c_str());
}

TEST(ToolCov, MergedCoverageAcrossBinaries) {
  const std::string a = temp_path("tools_cov_a.elf");
  const std::string b = temp_path("tools_cov_b.elf");
  ASSERT_EQ(run_command(tool("s4e-as") + " --workload checksum -o " + a)
                .exit_code,
            0);
  ASSERT_EQ(run_command(tool("s4e-as") + " --workload crc32 -o " + b)
                .exit_code,
            0);
  auto result = run_command(tool("s4e-cov") + " " + a + " " + b);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("merged over 2 binaries"), std::string::npos);
  EXPECT_NE(result.output.find("GPR coverage"), std::string::npos);
  auto per = run_command(tool("s4e-cov") + " " + a + " --per-binary");
  EXPECT_NE(per.output.find(a), std::string::npos);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(ToolTestgen, DumpsSuitesAndElfs) {
  const std::string dir = temp_path("tools_suites");
  auto result = run_command(tool("s4e-testgen") + " " + dir +
                            " --suite torture --count 2 --seed 9 --elf");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("wrote 2 programs"), std::string::npos);
  // The dumped ELF runs to exit 0 through s4e-run.
  auto run = run_command(tool("s4e-run") + " " + dir + "/torture_000.elf");
  EXPECT_EQ(run.exit_code, 0);
  run_command("rm -rf " + dir);
}

// ---------------------------------------------------------------------------
// Flag hygiene, shared across every tool: unknown options are rejected with
// a did-you-mean hint, and --help documents every flag the parser accepts
// (enforced by diffing --list-flags against the help text).

const char* kAllTools[] = {"s4e-as",       "s4e-objdump", "s4e-run",
                           "s4e-wcet",     "s4e-qta",     "s4e-faultsim",
                           "s4e-mutate",   "s4e-cov",     "s4e-lint",
                           "s4e-testgen",  "s4e-campaignd"};

TEST(ToolFlags, UnknownFlagIsRejectedWithSuggestion) {
  auto run = run_command(tool("s4e-run") + " x.elf --max-isns 10");
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("unknown option '--max-isns'"),
            std::string::npos);
  EXPECT_NE(run.output.find("did you mean '--max-insns'?"),
            std::string::npos);

  auto faultsim = run_command(tool("s4e-faultsim") + " x.elf --mutant 5");
  EXPECT_EQ(faultsim.exit_code, 2);
  EXPECT_NE(faultsim.output.find("did you mean '--mutants'?"),
            std::string::npos);

  auto mutate = run_command(tool("s4e-mutate") + " x.elf --survivor");
  EXPECT_EQ(mutate.exit_code, 2);
  EXPECT_NE(mutate.output.find("did you mean '--survivors'?"),
            std::string::npos);

  // Far-off typos get a plain rejection, not a wild guess.
  auto wild = run_command(tool("s4e-run") + " x.elf --frobnicate");
  EXPECT_EQ(wild.exit_code, 2);
  EXPECT_NE(wild.output.find("unknown option '--frobnicate'"),
            std::string::npos);
  EXPECT_EQ(wild.output.find("did you mean"), std::string::npos);
}

TEST(ToolFlags, EveryToolRejectsUnknownFlags) {
  for (const char* name : kAllTools) {
    auto result = run_command(tool(name) + " --no-such-flag-zz");
    EXPECT_EQ(result.exit_code, 2) << name << ": " << result.output;
    EXPECT_NE(result.output.find("unknown option"), std::string::npos)
        << name;
  }
}

TEST(ToolFlags, HelpDocumentsEveryParsedFlag) {
  for (const char* name : kAllTools) {
    auto flags = run_command(tool(name) + " --list-flags");
    ASSERT_EQ(flags.exit_code, 0) << name;
    auto help = run_command(tool(name) + " --help");
    ASSERT_EQ(help.exit_code, 0) << name;
    EXPECT_NE(help.output.find("usage:"), std::string::npos) << name;
    std::size_t start = 0;
    while (start < flags.output.size()) {
      std::size_t end = flags.output.find('\n', start);
      if (end == std::string::npos) end = flags.output.size();
      const std::string flag = flags.output.substr(start, end - start);
      start = end + 1;
      if (flag.empty()) continue;
      EXPECT_NE(help.output.find(flag), std::string::npos)
          << name << " --help does not mention " << flag;
    }
  }
}

TEST(ToolFlags, BrokenStdoutIsReportedNotSilent) {
  // /dev/full makes every stdout write fail with ENOSPC — a deterministic
  // stand-in for the closed-pipe (`tool | head`) case. Tools must exit 1
  // with a diagnostic on stderr instead of pretending the report was
  // written (or dying to SIGPIPE with no message at all).
  for (const char* name : kAllTools) {
    auto result =
        run_command("sh -c '" + tool(name) + " --help > /dev/full'");
    EXPECT_EQ(result.exit_code, 1) << name << ": " << result.output;
    EXPECT_NE(result.output.find("error writing to stdout"),
              std::string::npos)
        << name << ": " << result.output;
  }
}

TEST(ToolFaultsim, BrokenStdoutAfterCampaignExitsNonZero) {
  // The full-report path (not just --help) must also surface the write
  // failure: a fault campaign whose report went nowhere is not a success.
  const std::string elf_path = temp_path("tools_full.elf");
  auto assembled =
      run_command(tool("s4e-as") + " --workload checksum -o " + elf_path);
  ASSERT_EQ(assembled.exit_code, 0);
  auto result = run_command("sh -c '" + tool("s4e-faultsim") + " " +
                            elf_path + " --mutants 5 > /dev/full'");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("error writing to stdout"), std::string::npos)
      << result.output;
  std::remove(elf_path.c_str());
}

TEST(ToolRun, UartInputReachesGuest) {
  const std::string elf_path = temp_path("tools_lock.elf");
  auto assembled = run_command(tool("s4e-as") + " --workload lock_ctrl -o " +
                               elf_path);
  ASSERT_EQ(assembled.exit_code, 0);
  auto opened = run_command(tool("s4e-run") + " " + elf_path +
                            " --uart-input 1234");
  EXPECT_EQ(opened.exit_code, 0);
  EXPECT_NE(opened.output.find("OPEN"), std::string::npos);
  auto denied = run_command(tool("s4e-run") + " " + elf_path);
  EXPECT_EQ(denied.exit_code, 1);
  EXPECT_NE(denied.output.find("DENY"), std::string::npos);
  std::remove(elf_path.c_str());
}

}  // namespace
