# Empty compiler generated dependencies file for test_timing_ext.
# This may be replaced when dependencies are built.
