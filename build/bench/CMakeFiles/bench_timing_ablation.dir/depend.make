# Empty dependencies file for bench_timing_ablation.
# This may be replaced when dependencies are built.
