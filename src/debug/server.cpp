#include "debug/server.hpp"

#include "common/hex.hpp"
#include "common/strings.hpp"

namespace s4e::debug {

namespace {

constexpr std::string_view kSupported =
    "PacketSize=4096;qXfer:features:read+;swbreak+;hwbreak+;"
    "QStartNoAckMode+;vContSupported-";

// SIGTRAP — the stop signal for every debugger-initiated halt.
constexpr int kSigTrap = 5;
// SIGINT for Ctrl-C interrupts.
constexpr int kSigInt = 2;

// Parse "ADDR,LEN" (both hex). Returns false on malformed input.
bool parse_addr_len(std::string_view text, u32& address, u32& length) {
  const std::size_t comma = text.find(',');
  if (comma == std::string_view::npos) return false;
  const auto addr = parse_hex(text.substr(0, comma));
  const auto len = parse_hex(text.substr(comma + 1));
  if (!addr || !len) return false;
  address = static_cast<u32>(*addr);
  length = static_cast<u32>(*len);
  return true;
}

}  // namespace

bool RspServer::send_packet(std::string_view payload) {
  const std::string wire = rsp_frame_rle(payload);
  if (!channel_.write_all(wire)) return false;
  if (no_ack_mode_) return true;
  // Wait for the ack; a nak asks for retransmission. Interleaved command
  // packets are queued for the main loop.
  for (;;) {
    while (decoder_.has_event()) {
      // Peek-free scan: acks/naks are consumed, anything else stays queued.
      // PacketDecoder hands events in order, so buffer non-ack events back.
      PacketDecoder::Event event = decoder_.next_event();
      if (event.kind == PacketDecoder::EventKind::kAck) return true;
      if (event.kind == PacketDecoder::EventKind::kNak) {
        if (!channel_.write_all(wire)) return false;
        continue;
      }
      pending_.push_back(std::move(event));
    }
    const std::string bytes = channel_.read_blocking();
    if (bytes.empty()) return false;
    decoder_.feed(bytes);
  }
}

std::string RspServer::stop_reply() const {
  // Multi-hart sessions annotate every stop with the hart it happened on
  // (thread id = hart + 1) and use T replies throughout so the annotation
  // has somewhere to go; single-hart replies stay byte-identical to the
  // original stub.
  const bool multi = target_.machine().num_harts() > 1;
  const std::string thread =
      multi ? format("thread:%x;", last_stop_.hart + 1) : std::string();
  switch (last_stop_.reason) {
    case vp::StopReason::kDebugBreak:
      return format("T%02xswbreak:;", kSigTrap) + thread;
    case vp::StopReason::kDebugWatch: {
      const char* kind = "watch";
      if (last_stop_.watch_kind == vp::WatchKind::kRead) kind = "rwatch";
      if (last_stop_.watch_kind == vp::WatchKind::kAccess) kind = "awatch";
      // The address is big-endian hex in stop replies (a plain number).
      return format("T%02x%s:%s;", kSigTrap, kind,
                    hex32(last_stop_.debug_addr).c_str()) +
             thread;
    }
    case vp::StopReason::kDebugStep:
    case vp::StopReason::kDebugSlice:
      return multi ? format("T%02x", kSigTrap) + thread
                   : format("S%02x", kSigTrap);
    case vp::StopReason::kDebugInterrupt:
      return multi ? format("T%02x", kSigInt) + thread
                   : format("S%02x", kSigInt);
    default:
      break;
  }
  if (last_stop_.normal_exit()) {
    return format("W%02x", last_stop_.exit_code & 0xFF);
  }
  // Traps and other abnormal stops: report as SIGTRAP so the debugger can
  // inspect the halted machine instead of losing the session.
  return multi ? format("T%02x", kSigTrap) + thread : format("S%02x", kSigTrap);
}

std::string RspServer::handle_query(std::string_view payload) {
  const bool multi = target_.num_harts() > 1;
  if (starts_with(payload, "qSupported")) return std::string(kSupported);
  if (payload == "qAttached") return "1";
  if (payload == "qC") {
    // Current thread: the Hg-selected hart. Single-hart sessions keep the
    // legacy "no thread ids" empty reply.
    return multi ? format("QC%x", g_hart_ + 1) : "";
  }
  if (payload == "qfThreadInfo") {
    if (!multi) return "";
    std::string reply = "m";
    for (unsigned h = 0; h < target_.num_harts(); ++h) {
      if (h != 0) reply += ',';
      reply += format("%x", h + 1);
    }
    return reply;
  }
  if (payload == "qsThreadInfo") return multi ? "l" : "";
  if (starts_with(payload, "qXfer:features:read:target.xml:")) {
    std::string_view range = payload.substr(payload.rfind(':') + 1);
    u32 offset = 0;
    u32 length = 0;
    if (!parse_addr_len(range, offset, length)) return "E01";
    const std::string_view xml = target_xml();
    if (offset >= xml.size()) return "l";
    const std::string_view chunk = xml.substr(offset, length);
    const char prefix = (offset + chunk.size() < xml.size()) ? 'm' : 'l';
    return prefix + std::string(chunk);
  }
  return "";  // unsupported query → empty reply per the protocol
}

bool RspServer::handle_resume(bool step) {
  if (program_exited_) {
    // Nothing left to run; repeat the exit status.
    return send_packet(stop_reply());
  }
  if (step) {
    last_stop_ = target_.step();
  } else {
    last_stop_ = target_.resume([this] {
      const std::string bytes = channel_.read_poll();
      if (bytes.empty()) return false;
      decoder_.feed(bytes);
      bool interrupt = false;
      while (decoder_.has_event()) {
        PacketDecoder::Event event = decoder_.next_event();
        if (event.kind == PacketDecoder::EventKind::kInterrupt) {
          interrupt = true;
        } else {
          pending_.push_back(std::move(event));
        }
      }
      return interrupt;
    });
  }
  if (!last_stop_.debug_stop()) program_exited_ = true;
  return send_packet(stop_reply());
}

bool RspServer::handle_packet(std::string_view payload, ServeResult& done,
                              bool& ended) {
  ended = false;
  if (payload.empty()) return send_packet("");
  switch (payload[0]) {
    case '?':
      return send_packet(stop_reply());
    case 'g':
      return send_packet(target_.read_registers(g_hart_));
    case 'G':
      return send_packet(
          target_.write_registers(g_hart_, payload.substr(1)) ? "OK" : "E01");
    case 'p': {
      const auto regnum = parse_hex(payload.substr(1));
      if (!regnum) return send_packet("E01");
      const std::string value =
          target_.read_register(g_hart_, static_cast<unsigned>(*regnum));
      return send_packet(value.empty() ? "E01" : value);
    }
    case 'P': {
      const std::size_t eq = payload.find('=');
      if (eq == std::string_view::npos) return send_packet("E01");
      const auto regnum = parse_hex(payload.substr(1, eq - 1));
      const auto value = parse_hex32_le(payload.substr(eq + 1));
      if (!regnum || !value) return send_packet("E01");
      return send_packet(
          target_.write_register(g_hart_, static_cast<unsigned>(*regnum),
                                 *value)
              ? "OK"
              : "E01");
    }
    case 'm': {
      u32 address = 0;
      u32 length = 0;
      if (!parse_addr_len(payload.substr(1), address, length)) {
        return send_packet("E01");
      }
      std::string hex;
      if (!target_.read_memory(address, length, hex).ok()) {
        return send_packet("E02");
      }
      return send_packet(hex);
    }
    case 'M': {
      const std::size_t colon = payload.find(':');
      if (colon == std::string_view::npos) return send_packet("E01");
      u32 address = 0;
      u32 length = 0;
      if (!parse_addr_len(payload.substr(1, colon - 1), address, length)) {
        return send_packet("E01");
      }
      const auto bytes = from_hex(payload.substr(colon + 1));
      if (!bytes || bytes->size() != length) return send_packet("E01");
      return send_packet(target_.write_memory(address, *bytes).ok() ? "OK"
                                                                    : "E02");
    }
    case 'Z':
    case 'z': {
      // Z<type>,<addr>,<kind>
      if (payload.size() < 2) return send_packet("E01");
      const auto type = parse_hex(payload.substr(1, 1));
      u32 address = 0;
      u32 kind = 0;
      if (!type || payload.size() < 3 ||
          !parse_addr_len(payload.substr(3), address, kind)) {
        return send_packet("E01");
      }
      const unsigned t = static_cast<unsigned>(*type);
      if (t > 4) return send_packet("");  // unsupported point type
      const bool ok = payload[0] == 'Z'
                          ? target_.insert_point(t, address, kind)
                          : target_.remove_point(t, address, kind);
      return send_packet(ok ? "OK" : "E01");
    }
    case 'c':
      return handle_resume(/*step=*/false);
    case 's':
      return handle_resume(/*step=*/true);
    case 'D':
      // The detached program must free-run: drop every debugger-owned stop
      // condition (GDB usually z's them first, but not all clients do).
      target_.machine().clear_breakpoints();
      target_.machine().clear_watchpoints();
      if (!send_packet("OK")) return false;
      done = ServeResult::kDetached;
      ended = true;
      return true;
    case 'k':
      // No reply is expected for k; the session just ends.
      target_.machine().clear_breakpoints();
      target_.machine().clear_watchpoints();
      done = ServeResult::kKilled;
      ended = true;
      return true;
    case 'H': {
      // H<op><tid>: select the thread for subsequent operations. tid 0 and
      // -1 mean "any/all" (fall back to the active hart); a positive tid
      // names one hart (tid = hart + 1). `Hc` selection is accepted but
      // resume always runs the whole machine (all-stop semantics).
      if (payload.size() < 2) return send_packet("E01");
      const std::string_view tid_text = payload.substr(2);
      if (tid_text.empty() || tid_text == "0" || tid_text == "-1") {
        if (payload[1] == 'g') g_hart_ = target_.active_hart();
        return send_packet("OK");
      }
      const auto tid = parse_hex(tid_text);
      if (!tid || *tid == 0 || *tid > target_.num_harts()) {
        return send_packet("E01");
      }
      if (payload[1] == 'g') g_hart_ = static_cast<unsigned>(*tid) - 1;
      return send_packet("OK");
    }
    case 'T': {
      // Thread alive: every hart id stays valid for the machine's lifetime.
      if (target_.num_harts() == 1) return send_packet("OK");  // legacy stub
      const auto tid = parse_hex(payload.substr(1));
      const bool alive = tid && *tid >= 1 && *tid <= target_.num_harts();
      return send_packet(alive ? "OK" : "E01");
    }
    case 'q':
      return send_packet(handle_query(payload));
    case 'Q':
      if (payload == "QStartNoAckMode") {
        if (!send_packet("OK")) return false;
        no_ack_mode_ = true;
        return true;
      }
      return send_packet("");
    case 'v':
      // vMustReplyEmpty and the unsupported vCont family → empty reply.
      return send_packet("");
    default:
      return send_packet("");
  }
}

RspServer::ServeResult RspServer::serve() {
  // The machine is halted at entry; GDB opens with an ack-mode handshake.
  ServeResult done = ServeResult::kChannelClosed;
  for (;;) {
    PacketDecoder::Event event;
    if (!pending_.empty()) {
      event = std::move(pending_.front());
      pending_.erase(pending_.begin());
    } else if (decoder_.has_event()) {
      event = decoder_.next_event();
    } else {
      const std::string bytes = channel_.read_blocking();
      if (bytes.empty()) return ServeResult::kChannelClosed;
      decoder_.feed(bytes);
      continue;
    }
    switch (event.kind) {
      case PacketDecoder::EventKind::kPacket: {
        if (!no_ack_mode_ && !channel_.write_all("+")) {
          return ServeResult::kChannelClosed;
        }
        bool ended = false;
        if (!handle_packet(event.payload, done, ended)) {
          return ServeResult::kChannelClosed;
        }
        if (ended) {
          return program_exited_ && done == ServeResult::kDetached
                     ? ServeResult::kExited
                     : done;
        }
        break;
      }
      case PacketDecoder::EventKind::kBadPacket:
        if (!no_ack_mode_ && !channel_.write_all("-")) {
          return ServeResult::kChannelClosed;
        }
        break;
      case PacketDecoder::EventKind::kInterrupt:
        // Ctrl-C while halted: the machine is already stopped; report it.
        last_stop_.reason = vp::StopReason::kDebugInterrupt;
        if (!send_packet(stop_reply())) return ServeResult::kChannelClosed;
        break;
      case PacketDecoder::EventKind::kAck:
      case PacketDecoder::EventKind::kNak:
        break;  // stray acks between commands are harmless
    }
  }
}

}  // namespace s4e::debug
