// Microarchitectural timing model shared between the VP's cycle counter
// (dynamic, operand-dependent latencies) and the static WCET analyzer
// (per-class worst-case latencies).
//
// The model is a classic in-order 5-stage pipeline abstraction:
//   - every instruction costs `base_cycles`,
//   - loads/stores add memory latency (RAM wait states; MMIO is slower),
//   - multiplies add a fixed multiplier latency,
//   - divides are iterative with early-out: the dynamic cost depends on the
//     dividend magnitude, the static cost is the full iteration count,
//   - taken branches and jumps flush the front-end (`redirect_penalty`).
//
// The invariant the E3 experiment checks — static bound >= observed cycles —
// holds *by construction*: worst_case_cycles() dominates dynamic_cycles()
// for every instruction and context (asserted in tests over random programs).
#pragma once

#include "common/bits.hpp"
#include "isa/instr.hpp"

namespace s4e::vp {

struct TimingParams {
  u32 base_cycles = 1;        // issue cost of any instruction
  u32 ram_access_cycles = 1;  // extra cycles for a RAM data access
  u32 mmio_access_cycles = 8; // extra cycles for a device access
  u32 mul_cycles = 2;         // extra cycles for RV32M multiplies
  u32 div_min_cycles = 3;     // early-out divide, best case (extra)
  u32 div_max_cycles = 33;    // full 32-bit iterative divide (extra)
  u32 redirect_penalty = 2;   // taken branch / jump front-end flush
  u32 csr_cycles = 2;         // CSR access serialization (extra)
  u32 trap_cycles = 5;        // trap entry/exit cost

  // --- Optional microarchitectural features (ablation candidates). ---

  // Instruction cache: direct-mapped, probed once per executed translation
  // block; a miss costs `icache_miss_cycles` (0 disables the model). The
  // static analyzer charges the miss on *every* block execution (it cannot
  // prove hits without a persistence analysis), so enabling the icache
  // widens the static-dynamic gap — the classic aiT-vs-hardware effect.
  u32 icache_miss_cycles = 0;
  u32 icache_lines = 64;       // power of two
  u32 icache_line_bytes = 32;  // power of two

  // Bimodal (2-bit) branch predictor: a correctly-predicted conditional
  // branch pays no redirect penalty; a mispredict pays it in *either*
  // direction. The static side must then assume a possible mispredict on
  // both edges of every conditional branch.
  bool branch_predictor = false;
};

class TimingModel {
 public:
  TimingModel() = default;
  explicit TimingModel(const TimingParams& params) : params_(params) {}

  const TimingParams& params() const noexcept { return params_; }

  // Actual cycle cost of one executed instruction. `redirect` is true when
  // the instruction changed the PC away from fall-through (taken branch,
  // jump, trap-free mret). `rs1`/`rs2` are the operand values (divide
  // early-out). `mmio` is true when a data access hit a device.
  u32 dynamic_cycles(const isa::Instr& instr, bool redirect, u32 rs1, u32 rs2,
                     bool mmio) const noexcept;

  // Context-free worst case for one instruction, *excluding* any redirect
  // penalty (that is accounted on CFG edges: the static analyzer adds
  // edge_cycles() on taken edges, matching the aiT-report structure where
  // time sits on control-flow edges).
  u32 worst_case_cycles(const isa::Instr& instr) const noexcept;

  // Worst-case penalty attached to a taken (non-fall-through) CFG edge.
  u32 edge_cycles() const noexcept { return params_.redirect_penalty; }

  // Dynamic cost of an iterative divide by operand value.
  u32 divide_cycles(u32 dividend) const noexcept;

 private:
  TimingParams params_;
};

}  // namespace s4e::vp
