// Shared helpers for the command-line tools: tiny argv parser, file IO and
// the stdout-pipe discipline every tool follows.
#pragma once

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/strings.hpp"

namespace s4e::tools {

// A tool whose stdout is a pipe whose reader went away (`s4e-faultsim … |
// head`) gets SIGPIPE on the next write and dies mid-report with no
// diagnostic and a signal exit. The standard fix: ignore SIGPIPE so writes
// fail with EPIPE instead, then check stdio's error state once at exit
// (finish_stdout below) and leave with a clean message. Installed by
// standard_flags(), i.e. by every tool.
inline void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

// Epilogue for every tool's successful main() paths: flush stdout and
// surface any accumulated write error (EPIPE from a closed pipe, ENOSPC,
// …) as exit 1 with a diagnostic on stderr. Returns `code` when stdout is
// healthy. Error paths that already return non-zero don't need it.
inline int finish_stdout(const char* tool, int code = 0) {
  const bool flush_failed = std::fflush(stdout) != 0;
  if (flush_failed || std::ferror(stdout) != 0) {
    std::fprintf(stderr, "%s: error writing to stdout (closed pipe?)\n",
                 tool);
    return 1;
  }
  return code;
}

// "--flag", "--key value", "--key=value" and positional arguments.
//
// Every option a tool parses must be declared up front — `value_keys` for
// options that consume a value, `flag_keys` for booleans (a flag may still
// carry an inline "=value", e.g. --trace=FILE or --gdb=PORT). Anything else
// that looks like an option is rejected with a "did you mean --X?" hint, so
// a typo like --max-isns fails loudly instead of silently running without a
// budget. "--help" and "--list-flags" are always known.
class Args {
 public:
  Args(int argc, char** argv, std::vector<std::string> value_keys,
       std::vector<std::string> flag_keys = {})
      : value_keys_(std::move(value_keys)), flag_keys_(std::move(flag_keys)) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.size() > 1 && arg[0] == '-' &&
          !(arg[1] >= '0' && arg[1] <= '9')) {
        const std::size_t eq = arg.find('=');
        const std::string key = eq == std::string::npos ? arg
                                                        : arg.substr(0, eq);
        if (!is_known(key)) {
          reject(key);
          continue;
        }
        if (eq != std::string::npos) {
          options_[key] = arg.substr(eq + 1);
          continue;
        }
        bool takes_value = false;
        for (const auto& vk : value_keys_) takes_value |= vk == key;
        if (takes_value && i + 1 < argc) {
          options_[key] = argv[++i];
        } else {
          options_[key] = "";
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  // False when an undeclared option was seen; `error()` carries the
  // message (with a nearest-known-option suggestion when one is close).
  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  bool has(const std::string& key) const { return options_.count(key) != 0; }
  std::string value(const std::string& key,
                    const std::string& fallback = "") const {
    auto it = options_.find(key);
    return it == options_.end() ? fallback : it->second;
  }
  const std::vector<std::string>& positional() const { return positional_; }

  // Every declared option (sorted; without the built-in --help/--list-flags).
  std::vector<std::string> known_options() const {
    std::vector<std::string> all = value_keys_;
    all.insert(all.end(), flag_keys_.begin(), flag_keys_.end());
    std::sort(all.begin(), all.end());
    return all;
  }

 private:
  bool is_known(const std::string& key) const {
    if (key == "--help" || key == "--list-flags") return true;
    for (const auto& k : value_keys_) {
      if (k == key) return true;
    }
    for (const auto& k : flag_keys_) {
      if (k == key) return true;
    }
    return false;
  }

  void reject(const std::string& key) {
    if (!error_.empty()) return;  // report the first unknown option only
    error_ = "unknown option '" + key + "'";
    std::string best;
    std::size_t best_distance = 3;  // suggest only within edit distance 2
    for (const auto& candidate : known_options()) {
      const std::size_t d = edit_distance(key, candidate);
      if (d < best_distance) {
        best_distance = d;
        best = candidate;
      }
    }
    if (!best.empty()) error_ += " (did you mean '" + best + "'?)";
  }

  std::vector<std::string> value_keys_;
  std::vector<std::string> flag_keys_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
  std::string error_;
};

// Shared front matter for every tool's main():
//   - bad option      -> message on stderr, exit 2
//   - --list-flags    -> declared options one per line on stdout, exit 0
//   - --help          -> `usage` on stdout, exit 0
// Returns the exit code to use, or -1 to continue running.
inline int standard_flags(const Args& args, const char* tool,
                          const char* usage) {
  ignore_sigpipe();
  if (!args.ok()) {
    std::fprintf(stderr, "%s: %s\n", tool, args.error().c_str());
    return 2;
  }
  if (args.has("--list-flags")) {
    for (const auto& key : args.known_options()) {
      std::printf("%s\n", key.c_str());
    }
    return finish_stdout(tool);
  }
  if (args.has("--help")) {
    std::printf("%s", usage);
    return finish_stdout(tool);
  }
  return -1;
}

inline Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error(ErrorCode::kIoError, "cannot open '" + path + "'");
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

inline Status write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Error(ErrorCode::kIoError, "cannot open '" + path + "'");
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return out.good() ? Status()
                    : Status(Error(ErrorCode::kIoError, "short write"));
}

}  // namespace s4e::tools
