// s4e-testgen — dump the generated test-suite families as .s files (and
// optionally assembled ELFs), the stimulus side of the coverage/fault flows.
//
//   s4e-testgen <outdir> [--suite arch|unit|torture|all] [--seed S]
//               [--count N] [--abi-style] [--elf]
#include <cstdio>
#include <filesystem>

#include "asm/assembler.hpp"
#include "elf/elf32.hpp"
#include "testgen/testgen.hpp"
#include "tools/tool_util.hpp"

int main(int argc, char** argv) {
  using namespace s4e;
  static constexpr char kUsage[] =
      "usage: s4e-testgen <outdir> [--suite arch|unit|torture|all] "
      "[--seed S] [--count N] [--abi-style] [--elf]\n";
  tools::Args args(argc, argv, {"--suite", "--seed", "--count"},
                   {"--abi-style", "--elf"});
  if (const int code = tools::standard_flags(args, "s4e-testgen", kUsage);
      code >= 0) {
    return code;
  }
  if (args.positional().empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  const std::string outdir = args.positional()[0];
  std::error_code ec;
  std::filesystem::create_directories(outdir, ec);
  if (ec) {
    std::fprintf(stderr, "s4e-testgen: cannot create '%s': %s\n",
                 outdir.c_str(), ec.message().c_str());
    return 1;
  }

  const std::string suite = args.value("--suite", "all");
  std::vector<testgen::GeneratedProgram> programs;
  if (suite == "arch" || suite == "all") {
    auto generated = testgen::architectural_suite();
    programs.insert(programs.end(), generated.begin(), generated.end());
  }
  if (suite == "unit" || suite == "all") {
    auto generated = testgen::unit_suite();
    programs.insert(programs.end(), generated.begin(), generated.end());
  }
  if (suite == "torture" || suite == "all") {
    testgen::TortureConfig config;
    config.seed =
        static_cast<u64>(parse_integer(args.value("--seed", "1")).value_or(1));
    config.programs = static_cast<unsigned>(
        parse_integer(args.value("--count", "10")).value_or(10));
    config.abi_style = args.has("--abi-style");
    auto generated = testgen::torture_suite(config);
    programs.insert(programs.end(), generated.begin(), generated.end());
  }
  if (programs.empty()) {
    std::fprintf(stderr, "s4e-testgen: unknown suite '%s'\n", suite.c_str());
    return 2;
  }

  unsigned written = 0;
  for (const auto& program : programs) {
    const std::string source_path = outdir + "/" + program.name + ".s";
    if (auto status = tools::write_file(source_path, program.source);
        !status.ok()) {
      std::fprintf(stderr, "s4e-testgen: %s\n", status.to_string().c_str());
      return 1;
    }
    if (args.has("--elf")) {
      auto assembled = assembler::assemble(program.source);
      if (!assembled.ok()) {
        std::fprintf(stderr, "s4e-testgen: %s: %s\n", program.name.c_str(),
                     assembled.error().to_string().c_str());
        return 1;
      }
      const std::string elf_path = outdir + "/" + program.name + ".elf";
      if (auto status = elf::write_elf_file(*assembled, elf_path);
          !status.ok()) {
        std::fprintf(stderr, "s4e-testgen: %s\n", status.to_string().c_str());
        return 1;
      }
    }
    ++written;
  }
  std::printf("s4e-testgen: wrote %u programs to %s%s\n", written,
              outdir.c_str(), args.has("--elf") ? " (with ELFs)" : "");
  return tools::finish_stdout("s4e-testgen");
}
