// Dominator computation over a Function's CFG (iterative data-flow, in
// reverse post-order) — the basis of natural-loop detection.
#pragma once

#include <vector>

#include "cfg/cfg.hpp"

namespace s4e::cfg {

class Dominators {
 public:
  // Precondition: fn has at least one block; blocks[0] is the entry.
  explicit Dominators(const Function& fn);

  // Immediate dominator of `block` (kNoBlock for the entry and for
  // unreachable blocks).
  BlockId idom(BlockId block) const { return idom_[block]; }

  // True if `a` dominates `b` (reflexive).
  bool dominates(BlockId a, BlockId b) const;

  // Blocks in reverse post-order (entry first, unreachable blocks omitted).
  const std::vector<BlockId>& reverse_post_order() const { return rpo_; }

 private:
  std::vector<BlockId> idom_;
  std::vector<BlockId> rpo_;
  std::vector<u32> rpo_index_;
};

}  // namespace s4e::cfg
