#include "vp/devices/clint.hpp"

#include "common/strings.hpp"

namespace s4e::vp {

Result<u32> Clint::read(u32 offset, unsigned size) {
  if (size != 4) {
    return Error(ErrorCode::kInvalidArgument, "clint: only 32-bit access");
  }
  switch (offset) {
    case kMtimecmpLo: return static_cast<u32>(mtimecmp_);
    case kMtimecmpHi: return static_cast<u32>(mtimecmp_ >> 32);
    case kMtimeLo: return static_cast<u32>(mtime_);
    case kMtimeHi: return static_cast<u32>(mtime_ >> 32);
    default:
      return Error(ErrorCode::kOutOfRange,
                   format("clint: read from bad offset 0x%x", offset));
  }
}

Status Clint::write(u32 offset, unsigned size, u32 value) {
  if (size != 4) {
    return Error(ErrorCode::kInvalidArgument, "clint: only 32-bit access");
  }
  switch (offset) {
    case kMtimecmpLo:
      mtimecmp_ = (mtimecmp_ & 0xffff'ffff'0000'0000ULL) | value;
      return Status();
    case kMtimecmpHi:
      mtimecmp_ = (mtimecmp_ & 0xffff'ffffULL) | (static_cast<u64>(value) << 32);
      return Status();
    default:
      return Error(ErrorCode::kOutOfRange,
                   format("clint: write to bad offset 0x%x", offset));
  }
}

}  // namespace s4e::vp
