#include "dataflow/memmodel.hpp"

#include <optional>

namespace s4e::dataflow {

namespace {

i64 canon(u32 raw) { return static_cast<i64>(static_cast<i32>(raw)); }

// Byte read across all loadable sections; nullopt when unmapped.
std::optional<u8> read_byte(const assembler::Program& program, u32 address) {
  for (const auto& section : program.sections) {
    if (address >= section.base &&
        address - section.base < section.bytes.size()) {
      return section.bytes[address - section.base];
    }
  }
  return std::nullopt;
}

}  // namespace

void MemModel::record_store(const AbsValue& addr, u32 size) {
  switch (addr.kind()) {
    case AbsValue::Kind::kBottom:
      return;  // unreachable store
    case AbsValue::Kind::kStack:
      return;  // stack is disjoint from the loaded image (see header)
    case AbsValue::Kind::kConsts:
    case AbsValue::Kind::kRange:
      dirty_.emplace_back(addr.lo(), addr.hi() + size - 1);
      return;
    case AbsValue::Kind::kTop:
      all_dirty_ = true;
      return;
  }
}

bool MemModel::range_clean(i64 lo, i64 hi) const {
  if (all_dirty_) return false;
  for (const auto& [dlo, dhi] : dirty_) {
    if (lo <= dhi && dlo <= hi) return false;
  }
  return true;
}

AbsValue MemModel::load(const AbsValue& addr, u32 size,
                        bool sign_extend) const {
  if (addr.is_bottom()) return AbsValue::bottom();
  if (!loads_enabled_ || program_ == nullptr) return AbsValue::top();
  const std::vector<u32> targets = addr.enumerate();
  if (targets.empty()) return AbsValue::top();  // stack, top, or too many
  std::vector<i64> loaded;
  loaded.reserve(targets.size());
  for (u32 a : targets) {
    if (!range_clean(canon(a), canon(a) + size - 1)) return AbsValue::top();
    u32 raw = 0;
    for (u32 i = 0; i < size; ++i) {
      const auto byte = read_byte(*program_, a + i);
      if (!byte) return AbsValue::top();
      raw |= u32{*byte} << (8 * i);
    }
    if (sign_extend && size < 4) {
      loaded.push_back(static_cast<i64>(s4e::sign_extend(raw, 8 * size)));
    } else {
      loaded.push_back(canon(raw));
    }
  }
  return AbsValue::from_values(std::move(loaded));
}

}  // namespace s4e::dataflow
