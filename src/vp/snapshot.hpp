// Machine snapshot/restore layer — the VP's savevm/loadvm analogue.
//
// A Snapshot captures complete machine state: hart (GPRs/PC/CSRs), cycle
// and instret counters, microarchitectural model state (icache tags, branch
// predictor), full RAM images, and one opaque blob per mapped device. The
// capture is a full copy (paid once); restores are proportional to what the
// run *dirtied*: the bus maintains a per-page dirty bitmap on its RAM write
// path, and restore copies back only touched pages. Campaign engines
// snapshot once per worker and restore per mutant, keeping the translation-
// block cache warm across runs (restore invalidates only the blocks on
// restored pages).
//
// Invariant: a run on a restored machine is bit-identical — RunResult, UART
// output, memory hash, cycle counts — to the same run on a freshly
// constructed machine (property-tested over generated programs).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/status.hpp"
#include "vp/cpu.hpp"
#include "vp/timing.hpp"  // kBimodalEntries

namespace s4e::vp {

// Dirty-tracking granule of the bus RAM regions. Small enough that a short
// mutant run touching a few stack/data words restores in a handful of page
// copies, large enough to keep the bitmap negligible (4 MiB -> 4096 bits).
inline constexpr u32 kRamPageBytes = 1024;

// Little-endian byte-stream writer for device state blobs. Devices append
// their complete state in save_state() and read it back, in the same order,
// in restore_state().
class StateWriter {
 public:
  void put_u8(u8 value) { bytes_.push_back(value); }
  void put_u32(u32 value) {
    for (unsigned i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<u8>(value >> (8 * i)));
    }
  }
  void put_u64(u64 value) {
    put_u32(static_cast<u32>(value));
    put_u32(static_cast<u32>(value >> 32));
  }
  void put_bytes(const void* data, std::size_t size) {
    const u8* bytes = static_cast<const u8*>(data);
    bytes_.insert(bytes_.end(), bytes, bytes + size);
  }
  // Length-prefixed convenience for strings / byte containers.
  void put_blob(const void* data, std::size_t size) {
    put_u64(size);
    put_bytes(data, size);
  }

  std::vector<u8> take() { return std::move(bytes_); }

 private:
  std::vector<u8> bytes_;
};

// Reader over a blob produced by StateWriter. Underflow means the device's
// save/restore pair went out of sync — a programming error, checked hard.
class StateReader {
 public:
  explicit StateReader(const std::vector<u8>& bytes) : bytes_(&bytes) {}

  u8 get_u8() {
    S4E_CHECK_MSG(pos_ + 1 <= bytes_->size(), "device state blob underflow");
    return (*bytes_)[pos_++];
  }
  u32 get_u32() {
    u32 value = 0;
    for (unsigned i = 0; i < 4; ++i) {
      value |= static_cast<u32>(get_u8()) << (8 * i);
    }
    return value;
  }
  u64 get_u64() {
    const u64 lo = get_u32();
    return lo | (static_cast<u64>(get_u32()) << 32);
  }
  void get_bytes(void* data, std::size_t size) {
    S4E_CHECK_MSG(pos_ + size <= bytes_->size(),
                  "device state blob underflow");
    std::copy(bytes_->begin() + static_cast<std::ptrdiff_t>(pos_),
              bytes_->begin() + static_cast<std::ptrdiff_t>(pos_ + size),
              static_cast<u8*>(data));
    pos_ += size;
  }
  u64 get_blob_size() { return get_u64(); }

  bool exhausted() const noexcept { return pos_ == bytes_->size(); }

 private:
  const std::vector<u8>* bytes_;
  std::size_t pos_ = 0;
};

// Full image of one bus RAM region at snapshot time.
struct RamImage {
  u32 base = 0;
  std::vector<u8> bytes;
};

// Complete machine state captured by Machine::save_state().
struct Snapshot {
  CpuState cpu;
  u64 icount = 0;
  u64 cycles = 0;
  u64 icache_misses = 0;
  std::vector<u32> icache_tags;
  std::array<u8, kBimodalEntries> bimodal{};
  std::vector<RamImage> ram;
  std::vector<std::vector<u8>> device_state;  // one blob per mapped device
  // SMP extension: every hart (architectural state + LR/SC reservation) and
  // the round-robin scheduler position. The legacy `cpu` field stays the
  // *active* hart's state so single-hart consumers are unchanged.
  std::vector<Hart> harts;
  u32 active_hart = 0;
  u64 slice_end = 0;
  u64 slice_start_icount = 0;
  std::vector<u64> hart_icount;
  bool valid = false;
};

// Cumulative snapshot/restore cost accounting (the --snapshot-stats
// output). Plain counters so per-worker instances sum deterministically.
struct SnapshotStats {
  u64 snapshots = 0;
  u64 restores = 0;
  u64 pages_copied = 0;   // dirty pages written back across all restores
  u64 pages_total = 0;    // pages a full-RAM restore would copy, summed
  u64 tb_blocks_invalidated = 0;

  SnapshotStats& operator+=(const SnapshotStats& other) noexcept {
    snapshots += other.snapshots;
    restores += other.restores;
    pages_copied += other.pages_copied;
    pages_total += other.pages_total;
    tb_blocks_invalidated += other.tb_blocks_invalidated;
    return *this;
  }

  std::string to_string() const;
};

}  // namespace s4e::vp
