// Hot-block execution profiler: per-translation-block execution counts via
// the plugin API, reported with symbolized addresses — the "where does the
// time go" companion to the coverage metric.
#pragma once

#include <map>
#include <string>

#include "asm/program.hpp"
#include "vp/plugin.hpp"

namespace s4e::core {

class ProfilerPlugin final : public vp::PluginBase {
 public:
  Subscriptions subscriptions() const override {
    Subscriptions subs;
    subs.tb_exec = true;
    subs.tb_trans = true;
    return subs;
  }

  void on_tb_trans(const s4e_tb_info& tb) override {
    block_insns_[tb.start] = tb.n_insns;
  }
  void on_tb_exec(u32 tb_start) override { ++exec_counts_[tb_start]; }

  const std::map<u32, u64>& exec_counts() const noexcept {
    return exec_counts_;
  }

  // Total dynamically executed instructions attributed to blocks (equals
  // the machine's icount when no block was cut short by a trap/exit).
  u64 attributed_instructions() const;

  // Top-N table with nearest-symbol annotation from `program`.
  std::string report(const assembler::Program& program,
                     unsigned top_n = 10) const;

 private:
  std::map<u32, u64> exec_counts_;
  std::map<u32, u32> block_insns_;
};

}  // namespace s4e::core
