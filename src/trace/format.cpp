#include "trace/format.hpp"

#include <cstdio>
#include <unistd.h>

#include "asm/program.hpp"
#include "common/strings.hpp"

namespace s4e::trace {

namespace {

// Fixed-size chunk layout. The header and footer are plain little-endian
// u32/u64 fields — no varints, so a truncated file is length-checkable
// before any field is read.
constexpr std::size_t kHeaderBytes = 80;
constexpr std::size_t kFooterBytes = 64;

void put_u32(std::vector<u8>& out, u32 value) {
  for (unsigned i = 0; i < 4; ++i) {
    out.push_back(static_cast<u8>(value >> (8 * i)));
  }
}

void put_u64(std::vector<u8>& out, u64 value) {
  put_u32(out, static_cast<u32>(value));
  put_u32(out, static_cast<u32>(value >> 32));
}

u32 get_u32(const u8* p) {
  return static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
         (static_cast<u32>(p[2]) << 16) | (static_cast<u32>(p[3]) << 24);
}

u64 get_u64(const u8* p) {
  return static_cast<u64>(get_u32(p)) |
         (static_cast<u64>(get_u32(p + 4)) << 32);
}

void put_params(std::vector<u8>& out, const vp::TimingParams& params) {
  put_u32(out, params.base_cycles);
  put_u32(out, params.ram_access_cycles);
  put_u32(out, params.mmio_access_cycles);
  put_u32(out, params.mul_cycles);
  put_u32(out, params.div_min_cycles);
  put_u32(out, params.div_max_cycles);
  put_u32(out, params.redirect_penalty);
  put_u32(out, params.csr_cycles);
  put_u32(out, params.trap_cycles);
  put_u32(out, params.icache_miss_cycles);
  put_u32(out, params.icache_lines);
  put_u32(out, params.icache_line_bytes);
  put_u32(out, params.branch_predictor ? 1 : 0);
}

vp::TimingParams get_params(const u8* p) {
  vp::TimingParams params;
  params.base_cycles = get_u32(p);
  params.ram_access_cycles = get_u32(p + 4);
  params.mmio_access_cycles = get_u32(p + 8);
  params.mul_cycles = get_u32(p + 12);
  params.div_min_cycles = get_u32(p + 16);
  params.div_max_cycles = get_u32(p + 20);
  params.redirect_penalty = get_u32(p + 24);
  params.csr_cycles = get_u32(p + 28);
  params.trap_cycles = get_u32(p + 32);
  params.icache_miss_cycles = get_u32(p + 36);
  params.icache_lines = get_u32(p + 40);
  params.icache_line_bytes = get_u32(p + 44);
  params.branch_predictor = get_u32(p + 48) != 0;
  return params;
}

Error parse_error(const std::string& message) {
  return Error(ErrorCode::kParseError, message);
}

}  // namespace

std::string_view to_string(TaintKind kind) noexcept {
  switch (kind) {
    case TaintKind::kCsrCycleRead: return "cycle-CSR read";
    case TaintKind::kCsrTimeRead: return "time-CSR read";
    case TaintKind::kCsrMipRead: return "mip-CSR read";
    case TaintKind::kClintLoad: return "CLINT load";
    case TaintKind::kGpioLoad: return "GPIO load";
    case TaintKind::kClintStore: return "CLINT store";
    case TaintKind::kWfiSleep: return "non-final wfi";
    case TaintKind::kInterrupt: return "interrupt";
    case TaintKind::kCursorResync: return "control-flow resync";
    case TaintKind::kCount: break;
  }
  return "unknown";
}

u64 fnv1a(const u8* data, std::size_t size, u64 seed) {
  u64 hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

u64 program_fingerprint(const assembler::Program& program) {
  u64 hash = 0xcbf29ce484222325ull;
  const auto mix32 = [&hash](u32 value) {
    for (unsigned i = 0; i < 4; ++i) {
      hash ^= (value >> (8 * i)) & 0xff;
      hash *= 0x100000001b3ull;
    }
  };
  for (const assembler::Section& section : program.sections) {
    mix32(section.base);
    mix32(static_cast<u32>(section.bytes.size()));
    hash = fnv1a(section.bytes.data(), section.bytes.size(), hash);
  }
  mix32(program.entry);
  return hash;
}

std::vector<u8> Writer::finish(Footer footer) {
  footer.stream_checksum = fnv1a(stream_.data(), stream_.size());

  std::vector<u8> out;
  out.reserve(kHeaderBytes + stream_.size() + 1 + kFooterBytes);
  const auto put_magic = [&out](const char (&magic)[8]) {
    for (const char c : magic) out.push_back(static_cast<u8>(c));
  };
  put_magic(kTraceMagic);
  put_u32(out, header_.version);
  put_u32(out, header_.flags);
  put_u64(out, header_.fingerprint);
  put_u32(out, header_.entry_pc);
  put_params(out, header_.recorded);

  out.insert(out.end(), stream_.begin(), stream_.end());
  out.push_back(static_cast<u8>(Tag::kEnd));

  put_magic(kFooterMagic);
  put_u32(out, footer.stop_reason);
  put_u32(out, static_cast<u32>(footer.exit_code));
  put_u64(out, footer.instructions);
  put_u64(out, footer.blocks);
  put_u64(out, footer.mem_accesses);
  put_u64(out, footer.taints);
  put_u64(out, footer.recorded_cycles);
  put_u64(out, footer.stream_checksum);
  return out;
}

Status Writer::save(const std::string& path, Footer footer) {
  const std::vector<u8> bytes = finish(footer);
  // Temp + fsync + rename: a crashed or interrupted recording leaves either
  // nothing at `path` or the previous complete trace — never a truncated
  // file that happens to start with the right magic.
  const std::string tmp =
      format("%s.tmp.%d", path.c_str(), static_cast<int>(getpid()));
  FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Error(ErrorCode::kIoError, "cannot create '" + tmp + "'");
  }
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size() &&
      std::fflush(file) == 0 && fsync(fileno(file)) == 0;
  if (std::fclose(file) != 0 || !wrote) {
    std::remove(tmp.c_str());
    return Error(ErrorCode::kIoError, "short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Error(ErrorCode::kIoError,
                 "cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status();
}

Result<Trace> Trace::load(const std::string& path) {
  FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Error(ErrorCode::kIoError, "cannot open trace '" + path + "'");
  }
  std::vector<u8> bytes;
  u8 chunk[1u << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Error(ErrorCode::kIoError, "read error on trace '" + path + "'");
  }
  auto trace = parse(std::move(bytes));
  if (!trace.ok()) {
    return parse_error("trace '" + path + "': " + trace.error().message());
  }
  return trace;
}

Result<Trace> Trace::parse(std::vector<u8> bytes) {
  Trace trace;
  trace.bytes_ = std::move(bytes);
  const std::vector<u8>& raw = trace.bytes_;

  // Header: sized, magicked, versioned — each failure names its site.
  if (raw.size() < kHeaderBytes) {
    return parse_error(format("file is %zu bytes, smaller than the %zu-byte "
                              "header — not a trace or torn at creation",
                              raw.size(), kHeaderBytes));
  }
  if (!std::equal(kTraceMagic, kTraceMagic + 8, raw.data())) {
    return parse_error("bad magic: not an s4e binary trace");
  }
  trace.header_.version = get_u32(raw.data() + 8);
  if (trace.header_.version != kTraceVersion) {
    return parse_error(format("unsupported trace version %u (this build "
                              "reads version %u)",
                              trace.header_.version, kTraceVersion));
  }
  trace.header_.flags = get_u32(raw.data() + 12);
  trace.header_.fingerprint = get_u64(raw.data() + 16);
  trace.header_.entry_pc = get_u32(raw.data() + 24);
  trace.header_.recorded = get_params(raw.data() + 28);

  // Footer: present, magicked, and self-consistent with the stream. A
  // recorder that died mid-run fails here (the footer is written last).
  if (raw.size() < kHeaderBytes + 1 + kFooterBytes) {
    return parse_error("missing footer: trace is truncated (recorder did "
                       "not finish)");
  }
  const u8* footer_p = raw.data() + raw.size() - kFooterBytes;
  if (!std::equal(kFooterMagic, kFooterMagic + 8, footer_p)) {
    return parse_error("bad footer magic: trace is truncated or torn "
                       "(recorder did not finish)");
  }
  Footer& footer = trace.footer_;
  footer.stop_reason = static_cast<u8>(get_u32(footer_p + 8));
  footer.exit_code = static_cast<int>(get_u32(footer_p + 12));
  footer.instructions = get_u64(footer_p + 16);
  footer.blocks = get_u64(footer_p + 24);
  footer.mem_accesses = get_u64(footer_p + 32);
  footer.taints = get_u64(footer_p + 40);
  footer.recorded_cycles = get_u64(footer_p + 48);
  footer.stream_checksum = get_u64(footer_p + 56);

  trace.stream_off_ = kHeaderBytes;
  trace.stream_len_ = raw.size() - kHeaderBytes - 1 - kFooterBytes;
  if (raw[kHeaderBytes + trace.stream_len_] != static_cast<u8>(Tag::kEnd)) {
    return parse_error("event stream is not kEnd-terminated: trace is torn");
  }

  const u64 checksum = fnv1a(trace.stream_data(), trace.stream_size());
  if (checksum != footer.stream_checksum) {
    return parse_error(format("stream checksum mismatch (stored %016llx, "
                              "computed %016llx): trace bytes are corrupt",
                              static_cast<unsigned long long>(
                                  footer.stream_checksum),
                              static_cast<unsigned long long>(checksum)));
  }

  // Pre-walk: decode every event once, so replay can trust the stream, and
  // cross-check the footer's counts (a wrong count means the footer belongs
  // to different stream bytes — a spliced or mis-rewritten file).
  u64 insns = 0, blocks = 0, mems = 0, taints = 0;
  Cursor cursor(trace);
  Event event;
  while (cursor.next(event)) {
    switch (event.tag) {
      case Tag::kBlock:
      case Tag::kBlockAt:
        ++blocks;
        break;
      case Tag::kRun4:
      case Tag::kRun2:
        insns += event.count;
        break;
      case Tag::kTaint:
        ++taints;
        trace.taints_.push_back(TaintSite{event.taint, event.pc});
        break;
      case Tag::kTrapFetch:
        break;
      case Tag::kLoad4: case Tag::kLoad2:
      case Tag::kStore4: case Tag::kStore2:
      case Tag::kLoadMmio4: case Tag::kLoadMmio2:
      case Tag::kStoreMmio4: case Tag::kStoreMmio2:
      case Tag::kAmoLoad: case Tag::kAmoStore:
        ++insns;
        ++mems;
        break;
      case Tag::kAmoRmw:
        ++insns;
        mems += 2;
        break;
      default:
        ++insns;
        break;
    }
  }
  if (!cursor.ok()) {
    return parse_error(format("event stream decode failed at byte %zu: %s",
                              cursor.offset(), cursor.error().c_str()));
  }
  if (insns != footer.instructions || blocks != footer.blocks ||
      mems != footer.mem_accesses || taints != footer.taints) {
    return parse_error(format(
        "footer counts disagree with the stream (insns %llu/%llu, blocks "
        "%llu/%llu, mems %llu/%llu, taints %llu/%llu): spliced trace",
        static_cast<unsigned long long>(insns),
        static_cast<unsigned long long>(footer.instructions),
        static_cast<unsigned long long>(blocks),
        static_cast<unsigned long long>(footer.blocks),
        static_cast<unsigned long long>(mems),
        static_cast<unsigned long long>(footer.mem_accesses),
        static_cast<unsigned long long>(taints),
        static_cast<unsigned long long>(footer.taints)));
  }
  return trace;
}

bool Cursor::get_varint(u64& out) {
  out = 0;
  unsigned shift = 0;
  while (p_ != end_) {
    const u8 byte = *p_++;
    if (shift >= 63 && byte > 1) return fail("varint overflows 64 bits");
    out |= static_cast<u64>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
  }
  return fail("varint runs past the end of the stream");
}

bool Cursor::next(Event& out) {
  if (!error_.empty()) return false;
  if (p_ == end_) return false;  // clean end of stream
  event_off_ = static_cast<std::size_t>(p_ - begin_);
  const u8 tag_byte = *p_++;
  if (tag_byte >= static_cast<u8>(Tag::kCount)) {
    return fail(format("unknown event tag 0x%02x", tag_byte));
  }
  out = Event{};
  out.tag = static_cast<Tag>(tag_byte);
  out.pc = pc_;
  u64 value = 0;
  switch (out.tag) {
    case Tag::kEnd:
      return fail("embedded kEnd before the stream terminator");
    case Tag::kBlock:
      break;
    case Tag::kBlockAt:
      if (!get_varint(value)) return false;
      pc_ += static_cast<u32>(unzigzag(value));
      out.pc = pc_;
      break;
    case Tag::kRun4:
    case Tag::kRun2:
      if (!get_varint(value)) return false;
      out.count = static_cast<u32>(value);
      out.length = out.tag == Tag::kRun4 ? 4 : 2;
      pc_ += out.count * out.length;
      break;
    case Tag::kJump:
    case Tag::kBranchT:
    case Tag::kMret:
      if (!get_varint(value)) return false;
      out.target = pc_ + static_cast<u32>(unzigzag(value));
      pc_ = out.target;
      break;
    case Tag::kBranchN4:
    case Tag::kBranchN2:
      out.length = out.tag == Tag::kBranchN4 ? 4 : 2;
      pc_ += out.length;
      break;
    case Tag::kLoad4: case Tag::kLoad2:
    case Tag::kStore4: case Tag::kStore2:
    case Tag::kLoadMmio4: case Tag::kLoadMmio2:
    case Tag::kStoreMmio4: case Tag::kStoreMmio2: {
      if (!get_varint(value)) return false;
      out.mem_size = static_cast<u8>(1u << (value & 3));
      prev_addr_ += static_cast<u32>(unzigzag(value >> 2));
      out.mem_addr = prev_addr_;
      const u8 kind = tag_byte - static_cast<u8>(Tag::kLoad4);
      out.mem_store = (kind & 2) != 0;
      out.mem_mmio = (kind & 4) != 0;
      out.length = (kind & 1) != 0 ? 2 : 4;
      pc_ += out.length;
      break;
    }
    case Tag::kAmoLoad:
    case Tag::kAmoStore:
    case Tag::kAmoRmw:
      if (!get_varint(value)) return false;
      out.mem_size = static_cast<u8>(1u << (value & 3));
      prev_addr_ += static_cast<u32>(unzigzag(value >> 2));
      out.mem_addr = prev_addr_;
      out.mem_store = out.tag != Tag::kAmoLoad;
      out.length = 4;
      pc_ += 4;
      break;
    case Tag::kAmoFail:
      out.length = 4;
      pc_ += 4;
      break;
    case Tag::kMul4: case Tag::kMul2:
      out.length = out.tag == Tag::kMul4 ? 4 : 2;
      pc_ += out.length;
      break;
    case Tag::kDiv4: case Tag::kDiv2:
      if (!get_varint(value)) return false;
      out.dividend = static_cast<u32>(value);
      out.length = out.tag == Tag::kDiv4 ? 4 : 2;
      pc_ += out.length;
      break;
    case Tag::kCsr4: case Tag::kCsr2:
      out.length = out.tag == Tag::kCsr4 ? 4 : 2;
      pc_ += out.length;
      break;
    case Tag::kSysExit:
      out.length = 4;
      pc_ += 4;
      break;
    case Tag::kWfiHalt:
    case Tag::kWfiSleep:
      out.length = 4;
      pc_ += 4;
      break;
    case Tag::kTrapInsn: {
      if (p_ == end_) return fail("kTrapInsn missing its info byte");
      const u8 info = *p_++;
      out.op_class = info & kTrapClassMask;
      out.length = (info & kTrapLen4) != 0 ? 4 : 2;
      out.handled = (info & kTrapHandled) != 0;
      if (!get_varint(value)) return false;
      out.cause = static_cast<u32>(value);
      if (out.handled) {
        if (!get_varint(value)) return false;
        out.target = pc_ + static_cast<u32>(unzigzag(value));
        pc_ = out.target;
      }
      break;
    }
    case Tag::kTrapFetch: {
      if (p_ == end_) return fail("kTrapFetch missing its info byte");
      const u8 info = *p_++;
      out.handled = (info & kTrapHandled) != 0;
      if (!get_varint(value)) return false;
      out.cause = static_cast<u32>(value);
      if (out.handled) {
        if (!get_varint(value)) return false;
        out.target = pc_ + static_cast<u32>(unzigzag(value));
        pc_ = out.target;
      }
      break;
    }
    case Tag::kTaint:
      if (!get_varint(value)) return false;
      if (value >= static_cast<u64>(TaintKind::kCount)) {
        return fail(format("unknown taint kind %llu",
                           static_cast<unsigned long long>(value)));
      }
      out.taint = static_cast<TaintKind>(value);
      break;
    case Tag::kCount:
      return fail("unreachable tag");
  }
  return true;
}

}  // namespace s4e::trace
