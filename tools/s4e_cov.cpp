// s4e-cov — run one or more ELFs and print merged coverage (the suite-level
// view behind the E4 table: per-binary runs, union on merge).
//
//   s4e-cov a.elf b.elf ...  [--per-binary]
#include <cstdio>

#include "coverage/coverage.hpp"
#include "elf/elf32.hpp"
#include "tools/tool_util.hpp"
#include "vp/machine.hpp"

int main(int argc, char** argv) {
  using namespace s4e;
  tools::Args args(argc, argv, {});
  if (args.positional().empty()) {
    std::fprintf(stderr, "usage: s4e-cov <a.elf> [b.elf ...] [--per-binary]\n");
    return 2;
  }

  coverage::CoverageData merged;
  unsigned failures = 0;
  for (const std::string& path : args.positional()) {
    auto program = elf::read_elf_file(path);
    if (!program.ok()) {
      std::fprintf(stderr, "s4e-cov: %s\n",
                   program.error().to_string().c_str());
      return 1;
    }
    vp::Machine machine;
    if (auto status = machine.load_program(*program); !status.ok()) {
      std::fprintf(stderr, "s4e-cov: %s\n", status.to_string().c_str());
      return 1;
    }
    coverage::CoveragePlugin plugin;
    plugin.attach(machine.vm_handle());
    const vp::RunResult result = machine.run();
    if (!result.normal_exit()) {
      ++failures;
      std::fprintf(stderr, "s4e-cov: %s did not terminate normally (%s)\n",
                   path.c_str(),
                   std::string(vp::to_string(result.reason)).c_str());
    }
    if (args.has("--per-binary")) {
      std::printf("%s", coverage::to_report(plugin.data(), path).c_str());
      std::printf("\n");
    }
    merged.merge(plugin.data());
  }

  if (args.positional().size() > 1 || !args.has("--per-binary")) {
    std::printf("%s", coverage::to_report(
                          merged, format("merged over %zu binaries",
                                         args.positional().size()))
                          .c_str());
  }
  return failures == 0 ? 0 : 1;
}
