file(REMOVE_RECURSE
  "libs4e_isa.a"
)
