// RV32C tests: golden decodings, compress/decompress round-trip properties,
// and end-to-end equivalence of compressed vs uncompressed binaries across
// the whole pipeline (VP, CFG, WCET, QTA).
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "core/ecosystem.hpp"
#include "core/workloads.hpp"
#include "isa/disasm.hpp"
#include "isa/encoder.hpp"
#include "isa/rvc.hpp"
#include "vp/machine.hpp"

namespace s4e::isa {
namespace {

TEST(RvcDecode, GoldenEncodings) {
  struct Golden {
    u16 half;
    const char* text;
  };
  // Cross-checked against the RISC-V spec / GNU objdump.
  const Golden goldens[] = {
      {0x0001, "addi zero, zero, 0"},   // c.nop
      {0x4505, "addi a0, zero, 1"},     // c.li a0, 1
      {0x157d, "addi a0, a0, -1"},      // c.addi a0, -1
      {0x852e, "add a0, zero, a1"},     // c.mv a0, a1
      {0x952e, "add a0, a0, a1"},       // c.add a0, a1
      {0x8d89, "sub a1, a1, a0"},       // c.sub a1, a0
      {0x8da9, "xor a1, a1, a0"},       // c.xor
      {0x8dc9, "or a1, a1, a0"},        // c.or
      {0x8de9, "and a1, a1, a0"},       // c.and
      {0x892d, "andi a0, a0, 11"},      // c.andi
      {0x0532, "slli a0, a0, 12"},      // c.slli
      {0x8131, "srli a0, a0, 12"},      // c.srli
      {0x8531, "srai a0, a0, 12"},      // c.srai
      {0x4108, "lw a0, 0(a0)"},         // c.lw
      {0xc10c, "sw a1, 0(a0)"},         // c.sw
      {0x8082, "jalr zero, 0(ra)"},     // c.jr ra == ret
      {0x9002, "ebreak"},               // c.ebreak
      {0x6505, "lui a0, 0x1"},          // c.lui
  };
  for (const auto& golden : goldens) {
    auto instr = decompress(golden.half);
    ASSERT_TRUE(instr.ok()) << format("0x%04x: %s", golden.half,
                                      instr.error().to_string().c_str());
    EXPECT_EQ(disassemble(*instr), golden.text)
        << format("0x%04x", golden.half);
    EXPECT_EQ(instr->length, 2u);
    EXPECT_EQ(instr->raw, golden.half);
  }
}

TEST(RvcDecode, ControlFlowForms) {
  // c.j +16: CJ immediate field placement (imm[4] lives at bit 11).
  {
    auto instr = decompress(0xa801);
    ASSERT_TRUE(instr.ok());
    EXPECT_EQ(instr->op, Op::kJal);
    EXPECT_EQ(instr->rd, 0);
    EXPECT_EQ(instr->imm, 16);
  }
  // c.beqz a0, +8: CB immediate (imm[3] at bit 10), rs1' = a0.
  {
    auto instr = decompress(0xc501);
    ASSERT_TRUE(instr.ok());
    EXPECT_EQ(instr->op, Op::kBeq);
    EXPECT_EQ(instr->rs1, 10);
    EXPECT_EQ(instr->rs2, 0);
    EXPECT_EQ(instr->imm, 8);
  }
}

// Execution-level validation of the CJ/CB offset decoding: raw halfwords
// are planted with .half and must steer control to the exit stub.
TEST(RvcDecode, ControlFlowOffsetsExecute) {
  // Layout (addresses relative to _start):
  //   +0   c.j +16        (0xa801)
  //   +2..+14  ebreak padding (would stop with kEbreak if the jump is off)
  //   +16  li a7, 93 ; li a0, 42 ; ecall
  auto program = assembler::assemble(R"(
_start:
    .half 0xa801
    .half 0x9002, 0x9002, 0x9002, 0x9002, 0x9002, 0x9002, 0x9002
    li a7, 93
    li a0, 42
    ecall
  )");
  ASSERT_TRUE(program.ok()) << program.error().to_string();
  vp::Machine machine;
  ASSERT_TRUE(machine.load_program(*program).ok());
  auto result = machine.run();
  EXPECT_EQ(result.reason, vp::StopReason::kExitEcall);
  EXPECT_EQ(result.exit_code, 42);

  // c.beqz a0, +8 with a0 == 0 skips the ebreak padding.
  auto branch_program = assembler::assemble(R"(
_start:
    .half 0xc501
    .half 0x9002, 0x9002, 0x9002
    li a7, 93
    li a0, 7
    ecall
  )");
  ASSERT_TRUE(branch_program.ok());
  vp::Machine branch_machine;
  ASSERT_TRUE(branch_machine.load_program(*branch_program).ok());
  auto branch_result = branch_machine.run();
  EXPECT_EQ(branch_result.reason, vp::StopReason::kExitEcall);
  EXPECT_EQ(branch_result.exit_code, 7);
}

TEST(RvcDecode, IllegalEncodings) {
  EXPECT_FALSE(decompress(0x0000).ok());  // defined illegal
  // Reserved quadrant-0 funct3 values.
  EXPECT_FALSE(decompress(0x2000).ok());  // c.fld (RV32DC, unsupported)
  // 32-bit encodings are rejected outright.
  EXPECT_FALSE(decompress(0x0003).ok());
}

TEST(RvcCompress, NeverCompressesControlFlow) {
  EXPECT_FALSE(compress(make_j(Op::kJal, 0, 16)).has_value());
  EXPECT_FALSE(compress(make_b(Op::kBeq, 8, 0, 8)).has_value());
  EXPECT_FALSE(compress(make_i(Op::kJalr, 0, 1, 0)).has_value());
  EXPECT_FALSE(compress(make_system(Op::kEbreak)).has_value());
}

TEST(RvcCompress, RejectsNonCompressibleOperands) {
  // imm too wide for c.addi
  EXPECT_FALSE(compress(make_i(Op::kAddi, 10, 10, 100)).has_value());
  // rd != rs1
  EXPECT_FALSE(compress(make_i(Op::kAndi, 10, 11, 1)).has_value());
  // non-prime registers for CA-format ops
  EXPECT_FALSE(compress(make_r(Op::kSub, 5, 5, 6)).has_value());
  // misaligned load offset
  EXPECT_FALSE(compress(make_i(Op::kLw, 10, 11, 2)).has_value());
}

// Property: whenever compress() produces an encoding, decompress() must
// reproduce the exact semantic fields.
TEST(RvcProperty, CompressDecompressRoundTrip) {
  Rng rng(0x5eed);
  unsigned compressed_count = 0;
  // Biased operand generation: favour the shapes RVC can express (rd == rs1,
  // x8..x15 registers, small immediates, word-aligned offsets) while still
  // producing plenty of non-compressible forms.
  auto reg = [&] {
    return rng.chance(1, 2) ? 8 + rng.next_below(8) : rng.next_below(32);
  };
  auto imm = [&] {
    return rng.chance(1, 2)
               ? static_cast<i32>(rng.next_in_range(-32, 31))
               : static_cast<i32>(rng.next_in_range(-2048, 2047));
  };
  for (int trial = 0; trial < 20000; ++trial) {
    Instr instr;
    instr.op = static_cast<Op>(rng.next_below(kOpCount));
    const OpInfo& info = op_info(instr.op);
    const unsigned rd = reg();
    const unsigned rs1 = rng.chance(2, 3) ? rd : reg();
    switch (info.format) {
      case Format::kR:
        instr = make_r(instr.op, rd, rs1, reg());
        break;
      case Format::kI: {
        i32 value = imm();
        if (info.op_class == OpClass::kLoad && rng.chance(3, 4)) {
          value = static_cast<i32>(rng.next_below(64)) * 4;
        }
        instr = make_i(instr.op, rd, rng.chance(1, 4) ? 2 : rs1, value);
        break;
      }
      case Format::kIShift:
        instr = make_shift(instr.op, rd, rs1, rng.next_below(32));
        break;
      case Format::kS: {
        i32 value = rng.chance(3, 4)
                        ? static_cast<i32>(rng.next_below(64)) * 4
                        : imm();
        instr = make_s(instr.op, rng.chance(1, 4) ? 2 : rs1, reg(), value);
        break;
      }
      case Format::kU:
        instr = make_u(instr.op, rd,
                       rng.chance(1, 2)
                           ? static_cast<i32>(rng.next_in_range(1, 31)) << 12
                           : static_cast<i32>(rng.next_below(1u << 20) << 12));
        break;
      default:
        continue;  // control flow / csr / system: never compressed
    }
    const auto half = compress(instr);
    if (!half.has_value()) continue;
    ++compressed_count;
    auto expanded = decompress(*half);
    ASSERT_TRUE(expanded.ok()) << disassemble(instr);
    EXPECT_EQ(expanded->op, instr.op) << disassemble(instr);
    EXPECT_EQ(expanded->rd, instr.rd) << disassemble(instr);
    EXPECT_EQ(expanded->imm, instr.imm) << disassemble(instr);
    if (info.format == Format::kR && expanded->rs1 != instr.rs1) {
      // Commutative swap is allowed; the operand *set* must match.
      EXPECT_EQ(expanded->rs1, instr.rs2);
      EXPECT_EQ(expanded->rs2, instr.rs1);
    } else {
      EXPECT_EQ(expanded->rs1, instr.rs1) << disassemble(instr);
      EXPECT_EQ(expanded->rs2, instr.rs2) << disassemble(instr);
    }
  }
  // The sweep must actually exercise the compressor.
  EXPECT_GT(compressed_count, 500u);
}

// Property: every 16-bit pattern either fails to decompress or yields an
// instruction that re-encodes into a legal 32-bit word.
TEST(RvcProperty, DecompressedFormsAreEncodable) {
  unsigned legal = 0;
  for (u32 half = 0; half <= 0xffff; ++half) {
    if (!is_compressed(static_cast<u16>(half))) continue;
    auto instr = decompress(static_cast<u16>(half));
    if (!instr.ok()) continue;
    ++legal;
    Instr as32 = *instr;
    as32.length = 4;
    auto word = encode(as32);
    EXPECT_TRUE(word.ok()) << format("0x%04x -> %s", half,
                                     disassemble(*instr).c_str());
  }
  EXPECT_GT(legal, 10000u);  // most of the RVC space is populated
}

}  // namespace
}  // namespace s4e::isa

namespace s4e::core {
namespace {

// End-to-end: every workload compressed must behave identically and be
// meaningfully smaller.
class CompressedWorkload : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CompressedWorkload, IdenticalBehaviourSmallerText) {
  const Workload& workload = standard_workloads()[GetParam()];
  assembler::Options plain_options;
  assembler::Options rvc_options;
  rvc_options.compress = true;

  auto plain = assembler::assemble(workload.source, plain_options);
  auto rvc = assembler::assemble(workload.source, rvc_options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(rvc.ok()) << rvc.error().to_string();

  const std::size_t plain_text = plain->find_section(".text")->bytes.size();
  const std::size_t rvc_text = rvc->find_section(".text")->bytes.size();
  EXPECT_LT(rvc_text, plain_text) << workload.name;

  Ecosystem ecosystem;
  auto plain_run = ecosystem.run(*plain);
  auto rvc_run = ecosystem.run(*rvc);
  ASSERT_TRUE(plain_run.ok() && rvc_run.ok());
  EXPECT_EQ(rvc_run->result.exit_code, plain_run->result.exit_code)
      << workload.name;
  EXPECT_EQ(rvc_run->result.instructions, plain_run->result.instructions);
  EXPECT_EQ(rvc_run->uart_output, plain_run->uart_output);
}

INSTANTIATE_TEST_SUITE_P(
    All, CompressedWorkload,
    ::testing::Range<std::size_t>(0, standard_workloads().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return standard_workloads()[info.param].name;
    });

// The QTA chain must hold on compressed binaries too (CFG, analyzer and VP
// all walk variable-length instructions).
class CompressedQta : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CompressedQta, ChainHolds) {
  const Workload& workload = standard_workloads()[GetParam()];
  if (!workload.wcet_analyzable) GTEST_SKIP();
  assembler::Options options;
  options.compress = true;
  auto program = assembler::assemble(workload.source, options);
  ASSERT_TRUE(program.ok());
  Ecosystem ecosystem;
  auto outcome = ecosystem.run_qta(*program, workload.name);
  ASSERT_TRUE(outcome.ok()) << workload.name << ": "
                            << outcome.error().to_string();
  EXPECT_LE(outcome->report.observed_cycles, outcome->report.wc_path_cycles)
      << workload.name;
  EXPECT_LE(outcome->report.wc_path_cycles, outcome->report.static_bound)
      << workload.name;
  EXPECT_EQ(outcome->report.unknown_blocks, 0u);
  EXPECT_EQ(outcome->run.result.exit_code, workload.expected_exit);
}

INSTANTIATE_TEST_SUITE_P(
    All, CompressedQta,
    ::testing::Range<std::size_t>(0, standard_workloads().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return standard_workloads()[info.param].name;
    });

}  // namespace
}  // namespace s4e::core
