// Binary mutation testing (the XEMU flow, EMSOFT'12): systematic mutation
// of the software-under-test's *binary* and re-execution to measure how
// many mutants the program's own checks detect ("kill"). Surviving mutants
// are exactly the MBMV'20 "normal termination on faulty hardware" class —
// the subjects for strengthening the verification.
//
// Mutation operators mirror XEMU's binary operators, applied at the decoded
// instruction level so every mutant is a *legal* instruction (no trivial
// illegal-opcode kills):
//   - OSR: opcode substitution within the same format (add<->sub, beq<->bne)
//   - ROR: register operand replacement (rd/rs1/rs2 -> neighbouring reg)
//   - IPR: immediate perturbation (imm+1, imm = 0)
#pragma once

#include <string>
#include <vector>

#include "asm/program.hpp"
#include "common/status.hpp"
#include "dataflow/triage.hpp"
#include "exec/campaign_executor.hpp"
#include "isa/instr.hpp"
#include "vp/machine.hpp"

namespace s4e::mutation {

enum class Operator : u8 {
  kOpcodeSubstitution,
  kRegisterReplacement,
  kImmediatePerturbation,
};

std::string_view to_string(Operator op) noexcept;

struct Mutant {
  u32 address = 0;       // mutated instruction's address
  u32 original = 0;      // original encoding
  u32 mutated = 0;       // replacement encoding (same length)
  u8 length = 4;         // encoding size (RVC mutants are 2)
  Operator op = Operator::kOpcodeSubstitution;
  std::string description;
};

enum class Verdict : u8 {
  kKilledResult,  // different exit code or UART output
  kKilledCrash,   // mutant crashed (trap / breakpoint)
  kKilledHang,    // mutant exceeded the instruction budget
  kSurvived,      // indistinguishable from the golden run
};

std::string_view to_string(Verdict verdict) noexcept;

struct MutantResult {
  Mutant mutant;
  Verdict verdict = Verdict::kSurvived;
  int exit_code = 0;
  u64 instructions = 0;  // guest instructions the mutant executed
  // Static triage: true = the verdict was proven (kSurvived, equivalent
  // mutant) without running the VP; `prune_reason` is the triage class. In
  // verify mode the mutant still executes and `pruned` marks what *would*
  // have been skipped.
  bool pruned = false;
  std::string prune_reason;
  // Flight-recorder dump (the mutant's last executed instructions, memory
  // accesses and traps) captured for kKilledHang/kKilledCrash mutants when
  // the campaign runs with `post_mortem` enabled; empty otherwise.
  std::string post_mortem;
};

struct MutationScore {
  std::vector<MutantResult> results;
  // Sharded runs: global index of results[0] in the full mutant
  // enumeration, and the full enumeration's size. Whole-campaign runs have
  // shard_begin == 0 and total_mutants == results.size().
  u64 shard_begin = 0;
  u64 total_mutants = 0;
  u64 verdict_counts[4] = {0, 0, 0, 0};
  u64 pruned_count = 0;  // mutants decided statically (triage)
  // Aggregate snapshot/restore cost over all reused worker machines (zeroed
  // when reuse_machines is off).
  vp::SnapshotStats snapshot_stats;
  // One-line JSON campaign telemetry ("{}" unless collect_metrics). Only
  // partition-invariant values are exported, so the string is
  // byte-identical across `jobs` counts and machine reuse on/off.
  std::string metrics_json = "{}";

  u64 count(Verdict verdict) const {
    return verdict_counts[static_cast<unsigned>(verdict)];
  }
  u64 killed() const {
    return count(Verdict::kKilledResult) + count(Verdict::kKilledCrash) +
           count(Verdict::kKilledHang);
  }
  double score() const {
    return results.empty() ? 0.0
                           : static_cast<double>(killed()) /
                                 static_cast<double>(results.size());
  }
  // Kill rate restricted to one operator class.
  double score(Operator op) const;

  std::string to_string() const;
};

struct MutationConfig {
  // Only mutate instructions the golden run actually executes (everything
  // else trivially survives and would dilute the score meaninglessly).
  bool executed_only = true;
  // Cap on generated mutants (0 = unlimited); selection is deterministic
  // (first-N in address order).
  unsigned max_mutants = 0;
  u64 hang_budget_factor = 8;
  // Worker threads for the mutant runs (one private vp::Machine per
  // worker; the score is bit-identical to the serial run). 0 =
  // hardware_concurrency, 1 = inline serial execution.
  unsigned jobs = 0;
  // Reuse one long-lived machine per worker across its mutants (snapshot
  // once, dirty-page restore + patch per mutant, warm TB cache except the
  // mutated block). Off = fresh machine per mutant; the score is
  // bit-identical either way.
  bool reuse_machines = true;
  // --- Observability (src/obs). Neither switch changes any verdict or the
  // campaign's stdout report — runs are only observed.
  // Collect campaign telemetry into MutationScore::metrics_json.
  bool collect_metrics = false;
  // Attach a flight recorder to every mutant run and keep a post-mortem of
  // the last `post_mortem_events` events for every hang/crash kill.
  bool post_mortem = false;
  unsigned post_mortem_events = 16;
  // Static campaign triage (dataflow::StaticTriage). kOn skips mutants the
  // analysis proves equivalent to the original under the kill criteria
  // (they report kSurvived with zero executed instructions); kVerify runs
  // them anyway and errors on any static/dynamic mismatch.
  dataflow::TriageMode triage = dataflow::TriageMode::kOff;
  // Shard selection for multi-process fleets (s4e-campaignd): mutants are
  // still enumerated for the *whole* program (identical ordering for every
  // shard, max_mutants cap applied first), then only the contiguous index
  // range [floor(i*M/N), floor((i+1)*M/N)) is executed. The union of all N
  // shards' results is exactly the serial campaign; shard_count == 1 is
  // the whole campaign (the default, bit-identical to the pre-shard code).
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  vp::MachineConfig machine;
};

// Enumerate all mutants of `program` (deterministic, address-ordered).
// `executed` restricts to the given instruction addresses (empty = all).
std::vector<Mutant> enumerate_mutants(const assembler::Program& program,
                                      const std::vector<u32>& executed);

class MutationCampaign {
 public:
  MutationCampaign(assembler::Program program, const MutationConfig& config)
      : program_(std::move(program)), config_(config) {}

  // Golden run + enumerate + one run per mutant (fanned out over
  // `config.jobs` workers; aggregation is deterministic).
  Result<MutationScore> run();

  // Live progress of an in-flight run(): mutants done plus a Verdict
  // histogram snapshot (indexed by static_cast<unsigned>(Verdict)).
  // Safe to read from any thread while run() executes.
  const exec::CampaignProgress& progress() const noexcept {
    return progress_;
  }

 private:
  // One mutant run on `machine`, which must hold the freshly loaded (or
  // snapshot-restored) unmutated program; the mutated encoding is patched
  // in here and the touched translation blocks invalidated. Thread-safe:
  // shares only the immutable program and the golden reference.
  Result<MutantResult> run_mutant_on(vp::Machine& machine,
                                     const Mutant& mutant,
                                     int golden_exit_code,
                                     const std::string& golden_uart) const;
  // Fresh-machine path (reuse_machines off): build, load, run one mutant.
  Result<MutantResult> run_mutant(const Mutant& mutant,
                                  const vp::MachineConfig& machine_config,
                                  int golden_exit_code,
                                  const std::string& golden_uart) const;

  assembler::Program program_;
  MutationConfig config_;
  exec::CampaignProgress progress_;
};

}  // namespace s4e::mutation
