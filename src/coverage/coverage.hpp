// Instruction-type and register coverage for RISC-V binaries (MBMV'21).
//
// The metric counts which instruction *types* a binary executed and which
// architectural registers (GPRs, CSRs) it accessed. It qualifies test
// suites: the paper combines the architectural tests, the unit tests and
// Torture-generated programs into a unified suite reaching 100 % GPR and
// 98.7 % instruction-type coverage. Coverage data merges across runs so
// suite-union numbers fall out naturally (E4).
#pragma once

#include <array>
#include <set>
#include <string>
#include <vector>

#include "isa/csr.hpp"
#include "isa/opcode.hpp"
#include "isa/registers.hpp"
#include "vp/plugin.hpp"

namespace s4e::coverage {

// Pure data: mergeable, comparable, reportable.
struct CoverageData {
  std::array<u64, isa::kOpCount> op_counts{};
  std::array<u64, isa::kGprCount> gpr_reads{};
  std::array<u64, isa::kGprCount> gpr_writes{};
  std::set<u16> csrs_accessed;
  // Addressed memory space: every data address touched by a load or store
  // (the MBMV'20 metric "register access coverage including the addressed
  // memory space").
  std::set<u32> addresses_touched;
  u64 total_instructions = 0;
  u64 loads = 0;
  u64 stores = 0;

  void merge(const CoverageData& other);

  // --- Instruction-type coverage.
  unsigned ops_covered() const;
  unsigned ops_covered(isa::IsaModule module) const;
  static unsigned ops_total(isa::IsaModule module);
  double op_coverage() const;           // covered / kOpCount
  double op_coverage(isa::IsaModule module) const;

  // --- Register coverage. A GPR counts as covered when it was read or
  // written by an executed instruction (x0 is excluded: it is constant).
  unsigned gprs_covered() const;
  double gpr_coverage() const;  // covered / 31

  // --- CSR coverage over the implemented CSR set.
  double csr_coverage() const;

  // --- Addressed memory space: touched bytes within [base, base+size).
  // Returns the fraction of the range that was accessed at least once.
  double memory_coverage(u32 base, u32 size) const;

  // Ops never executed (for the report's "missing" list).
  std::vector<isa::Op> uncovered_ops() const;
};

// Render the standard coverage table (per-module instruction coverage, GPR
// and CSR coverage, hottest instructions). When `static_ops` is given
// (indexed by isa::Op, true = statically reachable — see
// dataflow::reachable_ops), the report adds a second denominator: covered
// types over the types the binary could execute at all, which separates
// "not exercised by this input" from "not present in the program".
std::string to_report(const CoverageData& data, const std::string& title,
                      const std::vector<bool>* static_ops = nullptr);

// The plugin: feeds CoverageData from the instruction stream via the C API.
class CoveragePlugin final : public vp::PluginBase {
 public:
  Subscriptions subscriptions() const override {
    Subscriptions subs;
    subs.insn_exec = true;
    subs.mem = true;
    return subs;
  }

  void on_insn_exec(const s4e_insn_info& insn) override;
  void on_mem(const s4e_mem_event& event) override;

  const CoverageData& data() const noexcept { return data_; }
  void reset() { data_ = CoverageData{}; }

 private:
  CoverageData data_;
};

}  // namespace s4e::coverage
