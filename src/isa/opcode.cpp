#include "isa/opcode.hpp"

#include <array>

namespace s4e::isa {

namespace {

// Encoding masks by format.
constexpr u32 kMaskR = 0xfe00707f;       // funct7 | funct3 | opcode
constexpr u32 kMaskI = 0x0000707f;       // funct3 | opcode
constexpr u32 kMaskU = 0x0000007f;       // opcode only
constexpr u32 kMaskFull = 0xffffffff;    // fully fixed (ecall/ebreak/...)
// A-extension patterns leave the aq/rl ordering bits (26:25) free; LR.W
// additionally has rs2 fixed to zero, so its mask is tighter and the
// decoder's most-specific-first ordering resolves it before the AMO rows.
constexpr u32 kMaskAmo = 0xf800707f;     // funct5 | funct3 | opcode
constexpr u32 kMaskLr = 0xf9f0707f;      // funct5 | rs2=0 | funct3 | opcode

constexpr OpInfo kTable[] = {
    // op, mnemonic, format, class, module, match, mask, rs1, rs2, rd
    {Op::kLui, "lui", Format::kU, OpClass::kArith, IsaModule::kI, 0x00000037, kMaskU, false, false, true},
    {Op::kAuipc, "auipc", Format::kU, OpClass::kArith, IsaModule::kI, 0x00000017, kMaskU, false, false, true},
    {Op::kJal, "jal", Format::kJ, OpClass::kJump, IsaModule::kI, 0x0000006f, kMaskU, false, false, true},
    {Op::kJalr, "jalr", Format::kI, OpClass::kJump, IsaModule::kI, 0x00000067, kMaskI, true, false, true},
    {Op::kBeq, "beq", Format::kB, OpClass::kBranch, IsaModule::kI, 0x00000063, kMaskI, true, true, false},
    {Op::kBne, "bne", Format::kB, OpClass::kBranch, IsaModule::kI, 0x00001063, kMaskI, true, true, false},
    {Op::kBlt, "blt", Format::kB, OpClass::kBranch, IsaModule::kI, 0x00004063, kMaskI, true, true, false},
    {Op::kBge, "bge", Format::kB, OpClass::kBranch, IsaModule::kI, 0x00005063, kMaskI, true, true, false},
    {Op::kBltu, "bltu", Format::kB, OpClass::kBranch, IsaModule::kI, 0x00006063, kMaskI, true, true, false},
    {Op::kBgeu, "bgeu", Format::kB, OpClass::kBranch, IsaModule::kI, 0x00007063, kMaskI, true, true, false},
    {Op::kLb, "lb", Format::kI, OpClass::kLoad, IsaModule::kI, 0x00000003, kMaskI, true, false, true},
    {Op::kLh, "lh", Format::kI, OpClass::kLoad, IsaModule::kI, 0x00001003, kMaskI, true, false, true},
    {Op::kLw, "lw", Format::kI, OpClass::kLoad, IsaModule::kI, 0x00002003, kMaskI, true, false, true},
    {Op::kLbu, "lbu", Format::kI, OpClass::kLoad, IsaModule::kI, 0x00004003, kMaskI, true, false, true},
    {Op::kLhu, "lhu", Format::kI, OpClass::kLoad, IsaModule::kI, 0x00005003, kMaskI, true, false, true},
    {Op::kSb, "sb", Format::kS, OpClass::kStore, IsaModule::kI, 0x00000023, kMaskI, true, true, false},
    {Op::kSh, "sh", Format::kS, OpClass::kStore, IsaModule::kI, 0x00001023, kMaskI, true, true, false},
    {Op::kSw, "sw", Format::kS, OpClass::kStore, IsaModule::kI, 0x00002023, kMaskI, true, true, false},
    {Op::kAddi, "addi", Format::kI, OpClass::kArith, IsaModule::kI, 0x00000013, kMaskI, true, false, true},
    {Op::kSlti, "slti", Format::kI, OpClass::kArith, IsaModule::kI, 0x00002013, kMaskI, true, false, true},
    {Op::kSltiu, "sltiu", Format::kI, OpClass::kArith, IsaModule::kI, 0x00003013, kMaskI, true, false, true},
    {Op::kXori, "xori", Format::kI, OpClass::kArith, IsaModule::kI, 0x00004013, kMaskI, true, false, true},
    {Op::kOri, "ori", Format::kI, OpClass::kArith, IsaModule::kI, 0x00006013, kMaskI, true, false, true},
    {Op::kAndi, "andi", Format::kI, OpClass::kArith, IsaModule::kI, 0x00007013, kMaskI, true, false, true},
    {Op::kSlli, "slli", Format::kIShift, OpClass::kArith, IsaModule::kI, 0x00001013, kMaskR, true, false, true},
    {Op::kSrli, "srli", Format::kIShift, OpClass::kArith, IsaModule::kI, 0x00005013, kMaskR, true, false, true},
    {Op::kSrai, "srai", Format::kIShift, OpClass::kArith, IsaModule::kI, 0x40005013, kMaskR, true, false, true},
    {Op::kAdd, "add", Format::kR, OpClass::kArith, IsaModule::kI, 0x00000033, kMaskR, true, true, true},
    {Op::kSub, "sub", Format::kR, OpClass::kArith, IsaModule::kI, 0x40000033, kMaskR, true, true, true},
    {Op::kSll, "sll", Format::kR, OpClass::kArith, IsaModule::kI, 0x00001033, kMaskR, true, true, true},
    {Op::kSlt, "slt", Format::kR, OpClass::kArith, IsaModule::kI, 0x00002033, kMaskR, true, true, true},
    {Op::kSltu, "sltu", Format::kR, OpClass::kArith, IsaModule::kI, 0x00003033, kMaskR, true, true, true},
    {Op::kXor, "xor", Format::kR, OpClass::kArith, IsaModule::kI, 0x00004033, kMaskR, true, true, true},
    {Op::kSrl, "srl", Format::kR, OpClass::kArith, IsaModule::kI, 0x00005033, kMaskR, true, true, true},
    {Op::kSra, "sra", Format::kR, OpClass::kArith, IsaModule::kI, 0x40005033, kMaskR, true, true, true},
    {Op::kOr, "or", Format::kR, OpClass::kArith, IsaModule::kI, 0x00006033, kMaskR, true, true, true},
    {Op::kAnd, "and", Format::kR, OpClass::kArith, IsaModule::kI, 0x00007033, kMaskR, true, true, true},
    {Op::kFence, "fence", Format::kFence, OpClass::kFence, IsaModule::kI, 0x0000000f, kMaskI, false, false, false},
    {Op::kEcall, "ecall", Format::kNone, OpClass::kSystem, IsaModule::kI, 0x00000073, kMaskFull, false, false, false},
    {Op::kEbreak, "ebreak", Format::kNone, OpClass::kSystem, IsaModule::kI, 0x00100073, kMaskFull, false, false, false},
    {Op::kMul, "mul", Format::kR, OpClass::kMul, IsaModule::kM, 0x02000033, kMaskR, true, true, true},
    {Op::kMulh, "mulh", Format::kR, OpClass::kMul, IsaModule::kM, 0x02001033, kMaskR, true, true, true},
    {Op::kMulhsu, "mulhsu", Format::kR, OpClass::kMul, IsaModule::kM, 0x02002033, kMaskR, true, true, true},
    {Op::kMulhu, "mulhu", Format::kR, OpClass::kMul, IsaModule::kM, 0x02003033, kMaskR, true, true, true},
    {Op::kDiv, "div", Format::kR, OpClass::kDiv, IsaModule::kM, 0x02004033, kMaskR, true, true, true},
    {Op::kDivu, "divu", Format::kR, OpClass::kDiv, IsaModule::kM, 0x02005033, kMaskR, true, true, true},
    {Op::kRem, "rem", Format::kR, OpClass::kDiv, IsaModule::kM, 0x02006033, kMaskR, true, true, true},
    {Op::kRemu, "remu", Format::kR, OpClass::kDiv, IsaModule::kM, 0x02007033, kMaskR, true, true, true},
    {Op::kCsrrw, "csrrw", Format::kCsrReg, OpClass::kCsr, IsaModule::kZicsr, 0x00001073, kMaskI, true, false, true},
    {Op::kCsrrs, "csrrs", Format::kCsrReg, OpClass::kCsr, IsaModule::kZicsr, 0x00002073, kMaskI, true, false, true},
    {Op::kCsrrc, "csrrc", Format::kCsrReg, OpClass::kCsr, IsaModule::kZicsr, 0x00003073, kMaskI, true, false, true},
    {Op::kCsrrwi, "csrrwi", Format::kCsrImm, OpClass::kCsr, IsaModule::kZicsr, 0x00005073, kMaskI, false, false, true},
    {Op::kCsrrsi, "csrrsi", Format::kCsrImm, OpClass::kCsr, IsaModule::kZicsr, 0x00006073, kMaskI, false, false, true},
    {Op::kCsrrci, "csrrci", Format::kCsrImm, OpClass::kCsr, IsaModule::kZicsr, 0x00007073, kMaskI, false, false, true},
    {Op::kMret, "mret", Format::kNone, OpClass::kSystem, IsaModule::kPriv, 0x30200073, kMaskFull, false, false, false},
    {Op::kWfi, "wfi", Format::kNone, OpClass::kSystem, IsaModule::kPriv, 0x10500073, kMaskFull, false, false, false},
    {Op::kLrW, "lr.w", Format::kR, OpClass::kAmo, IsaModule::kA, 0x1000202f, kMaskLr, true, false, true},
    {Op::kScW, "sc.w", Format::kR, OpClass::kAmo, IsaModule::kA, 0x1800202f, kMaskAmo, true, true, true},
    {Op::kAmoswapW, "amoswap.w", Format::kR, OpClass::kAmo, IsaModule::kA, 0x0800202f, kMaskAmo, true, true, true},
    {Op::kAmoaddW, "amoadd.w", Format::kR, OpClass::kAmo, IsaModule::kA, 0x0000202f, kMaskAmo, true, true, true},
    {Op::kAmoxorW, "amoxor.w", Format::kR, OpClass::kAmo, IsaModule::kA, 0x2000202f, kMaskAmo, true, true, true},
    {Op::kAmoorW, "amoor.w", Format::kR, OpClass::kAmo, IsaModule::kA, 0x4000202f, kMaskAmo, true, true, true},
    {Op::kAmoandW, "amoand.w", Format::kR, OpClass::kAmo, IsaModule::kA, 0x6000202f, kMaskAmo, true, true, true},
    {Op::kAmominW, "amomin.w", Format::kR, OpClass::kAmo, IsaModule::kA, 0x8000202f, kMaskAmo, true, true, true},
    {Op::kAmomaxW, "amomax.w", Format::kR, OpClass::kAmo, IsaModule::kA, 0xa000202f, kMaskAmo, true, true, true},
    {Op::kAmominuW, "amominu.w", Format::kR, OpClass::kAmo, IsaModule::kA, 0xc000202f, kMaskAmo, true, true, true},
    {Op::kAmomaxuW, "amomaxu.w", Format::kR, OpClass::kAmo, IsaModule::kA, 0xe000202f, kMaskAmo, true, true, true},
};

static_assert(sizeof(kTable) / sizeof(kTable[0]) == kOpCount,
              "op table must have one row per Op");

constexpr bool table_in_op_order() {
  for (unsigned i = 0; i < kOpCount; ++i) {
    if (static_cast<unsigned>(kTable[i].op) != i) return false;
  }
  return true;
}
static_assert(table_in_op_order(), "op table rows must be in Op order");

}  // namespace

const OpInfo& op_info(Op op) noexcept {
  return kTable[static_cast<unsigned>(op)];
}

std::string_view mnemonic(Op op) noexcept { return op_info(op).mnemonic; }

std::string_view op_class_name(OpClass c) noexcept {
  switch (c) {
    case OpClass::kArith: return "arith";
    case OpClass::kLoad: return "load";
    case OpClass::kStore: return "store";
    case OpClass::kBranch: return "branch";
    case OpClass::kJump: return "jump";
    case OpClass::kMul: return "mul";
    case OpClass::kDiv: return "div";
    case OpClass::kCsr: return "csr";
    case OpClass::kSystem: return "system";
    case OpClass::kFence: return "fence";
    case OpClass::kAmo: return "amo";
    case OpClass::kCount: break;
  }
  return "?";
}

std::string_view isa_module_name(IsaModule m) noexcept {
  switch (m) {
    case IsaModule::kI: return "RV32I";
    case IsaModule::kM: return "RV32M";
    case IsaModule::kA: return "RV32A";
    case IsaModule::kZicsr: return "Zicsr";
    case IsaModule::kPriv: return "priv";
    case IsaModule::kCount: break;
  }
  return "?";
}

const OpInfo* op_table() noexcept { return kTable; }

}  // namespace s4e::isa
