// Transport-agnostic GDB stub engine: reads packets from a ByteChannel,
// dispatches RSP commands against a DebugTarget, and writes framed replies.
// The TCP listener in tcp.hpp provides the production channel; tests feed
// scripted byte buffers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "debug/rsp.hpp"
#include "debug/target.hpp"

namespace s4e::debug {

// Minimal blocking byte stream. Implementations: TcpChannel (tcp.hpp) and
// the scripted channels in the tests.
class ByteChannel {
 public:
  virtual ~ByteChannel() = default;

  // Block until at least one byte arrives; returns it as a string, or an
  // empty string when the peer closed the connection.
  virtual std::string read_blocking() = 0;

  // Non-blocking poll: whatever is pending right now (possibly empty).
  // Used between run slices to notice Ctrl-C while the machine executes.
  virtual std::string read_poll() = 0;

  // Write all bytes; returns false when the connection broke.
  virtual bool write_all(std::string_view bytes) = 0;
};

class RspServer {
 public:
  enum class ServeResult : u8 {
    kDetached,       // debugger sent D; program should resume free-running
    kKilled,         // debugger sent k
    kExited,         // program finished (exit/trap) and debugger acknowledged
    kChannelClosed,  // transport dropped mid-session
  };

  RspServer(DebugTarget& target, ByteChannel& channel)
      : target_(target), channel_(channel) {}

  // Run the session until detach, kill, program exit, or channel loss.
  ServeResult serve();

  // The machine state at the last stop (valid after serve() returns).
  const vp::RunResult& last_stop() const noexcept { return last_stop_; }

 private:
  // Returns false when the channel broke.
  bool send_packet(std::string_view payload);
  // Dispatch one command packet; fills `done` when the session should end.
  bool handle_packet(std::string_view payload, ServeResult& done, bool& ended);

  std::string stop_reply() const;
  std::string handle_query(std::string_view payload);
  bool handle_resume(bool step);  // c/s: run, then report the stop

  DebugTarget& target_;
  ByteChannel& channel_;
  PacketDecoder decoder_;
  // Command packets that arrived interleaved with an ack wait or during a
  // run slice; served before new reads.
  std::vector<PacketDecoder::Event> pending_;
  // Starts as a debug stop: the machine is halted at its entry point, and a
  // session that detaches before resuming must free-run afterwards.
  vp::RunResult last_stop_ = make_initial_stop();

  static vp::RunResult make_initial_stop() {
    vp::RunResult initial;
    initial.reason = vp::StopReason::kDebugStep;
    return initial;
  }
  bool no_ack_mode_ = false;
  bool program_exited_ = false;
  // Hg-selected hart for register operations (thread id = hart + 1). The
  // multi-thread protocol surface (thread-info queries, `thread:` stop-reply
  // annotations, per-thread T/H semantics) engages only when the machine has
  // more than one hart; single-hart sessions stay byte-identical to the
  // original single-threaded stub.
  unsigned g_hart_ = 0;
};

}  // namespace s4e::debug
