/*
 * Scale4Edge VP plugin API.
 *
 * Modelled on the QEMU TCG plugin API (qemu-plugin.h, QEMU >= 4.2): a plain
 * C interface, stable across VP versions, through which every analysis tool
 * of the ecosystem (QTA timing analysis, coverage, fault injection, memory
 * watch) observes and instruments execution. Plugins register callbacks for
 * translation-time and execution-time events and may inspect or mutate
 * architectural state through accessor functions.
 *
 * Event model (mirrors QEMU):
 *   - tb_trans:  a translation block was (re)built from guest code. Fires
 *                once per block per translation, not per execution.
 *   - tb_exec:   a translated block is about to execute.
 *   - insn_exec: one instruction is about to execute (costly; only
 *                delivered to plugins that registered for it).
 *   - mem:       one data memory access executed (load or store).
 *   - trap:      an exception or interrupt was taken.
 *   - exit:      the guest terminated.
 */
#ifndef S4E_PLUGIN_H_
#define S4E_PLUGIN_H_

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Opaque VM handle (one per s4e::vp::Machine). */
typedef struct s4e_vm s4e_vm;

/* One decoded instruction inside a translation block.
 * `op` is the stable instruction-type id (s4e::isa::Op), `op_class` the
 * behavioural class (s4e::isa::OpClass). */
typedef struct s4e_insn_info {
  uint32_t address;
  uint32_t encoding;
  uint16_t op;
  uint8_t op_class;
  uint8_t rd;
  uint8_t rs1;
  uint8_t rs2;
  uint16_t csr;
  int32_t imm;
} s4e_insn_info;

typedef struct s4e_tb_info {
  uint32_t start;            /* guest address of the first instruction */
  uint32_t n_insns;
  const s4e_insn_info* insns;
} s4e_tb_info;

typedef struct s4e_mem_event {
  uint32_t pc;               /* address of the accessing instruction */
  uint32_t vaddr;            /* accessed address */
  uint32_t value;            /* value stored / loaded */
  uint8_t size;              /* 1, 2 or 4 */
  uint8_t is_store;          /* 0 = load, 1 = store */
} s4e_mem_event;

typedef struct s4e_trap_event {
  uint32_t cause;            /* mcause value (bit 31 = interrupt) */
  uint32_t epc;
  uint32_t tval;
} s4e_trap_event;

typedef void (*s4e_tb_trans_cb)(void* userdata, s4e_vm* vm,
                                const s4e_tb_info* tb);
typedef void (*s4e_tb_exec_cb)(void* userdata, s4e_vm* vm, uint32_t tb_start);
typedef void (*s4e_insn_exec_cb)(void* userdata, s4e_vm* vm,
                                 const s4e_insn_info* insn);
typedef void (*s4e_mem_cb)(void* userdata, s4e_vm* vm,
                           const s4e_mem_event* event);
typedef void (*s4e_trap_cb)(void* userdata, s4e_vm* vm,
                            const s4e_trap_event* event);
typedef void (*s4e_exit_cb)(void* userdata, s4e_vm* vm, int exit_code);

/* Registration. Each returns a plugin handle id (>0) or 0 on failure.
 * Callbacks remain registered until the VM is destroyed. */
uint64_t s4e_register_tb_trans_cb(s4e_vm* vm, s4e_tb_trans_cb cb, void* userdata);
uint64_t s4e_register_tb_exec_cb(s4e_vm* vm, s4e_tb_exec_cb cb, void* userdata);
uint64_t s4e_register_insn_exec_cb(s4e_vm* vm, s4e_insn_exec_cb cb, void* userdata);
uint64_t s4e_register_mem_cb(s4e_vm* vm, s4e_mem_cb cb, void* userdata);
uint64_t s4e_register_trap_cb(s4e_vm* vm, s4e_trap_cb cb, void* userdata);
uint64_t s4e_register_exit_cb(s4e_vm* vm, s4e_exit_cb cb, void* userdata);

/* Architectural state access. Indexes are architectural (x0..x31).
 * Writes to x0 are ignored, as in hardware. The plain forms address the
 * currently executing hart; the _hart forms address a specific hart on an
 * SMP machine (out-of-range hart indexes read 0 / are ignored). */
uint32_t s4e_read_gpr(s4e_vm* vm, unsigned index);
void s4e_write_gpr(s4e_vm* vm, unsigned index, uint32_t value);
uint32_t s4e_read_gpr_hart(s4e_vm* vm, unsigned hart, unsigned index);
void s4e_write_gpr_hart(s4e_vm* vm, unsigned hart, unsigned index,
                        uint32_t value);

/* SMP topology: number of harts, and the hart currently executing (the one
 * whose instruction stream delivers insn_exec/mem callbacks). */
unsigned s4e_num_harts(s4e_vm* vm);
unsigned s4e_current_hart(s4e_vm* vm);
uint32_t s4e_read_pc(s4e_vm* vm);
uint32_t s4e_read_csr(s4e_vm* vm, unsigned address);
void s4e_write_csr(s4e_vm* vm, unsigned address, uint32_t value);

/* Guest physical memory access (bypasses MMIO side effects: RAM only).
 * Returns 0 on success, -1 if the range is not RAM. */
int s4e_read_mem(s4e_vm* vm, uint32_t address, void* buffer, uint32_t size);
int s4e_write_mem(s4e_vm* vm, uint32_t address, const void* buffer,
                  uint32_t size);

/* Execution statistics. */
uint64_t s4e_icount(s4e_vm* vm);     /* retired instructions */
uint64_t s4e_cycles(s4e_vm* vm);     /* modelled cycles */

/* Request guest termination at the next block boundary (exit_code is
 * reported through the exit callbacks and the run result). */
void s4e_request_exit(s4e_vm* vm, int exit_code);

/* Flush the translation-block cache (after patching code bytes). */
void s4e_flush_tb_cache(s4e_vm* vm);

#ifdef __cplusplus
}
#endif

#endif /* S4E_PLUGIN_H_ */
