// RV32C (compressed) support: 16-bit encodings are decompressed into the
// equivalent base instruction (the standard implementation technique, and
// what QEMU does), so the emulator, timing model, coverage metric and CFG
// all keep operating on the base ISA. The compressor is the emit-side
// inverse used by the assembler's `compress` option; it deliberately never
// compresses control flow, which keeps instruction sizes independent of
// label distances (no relaxation fixpoint needed).
#pragma once

#include <optional>

#include "common/status.hpp"
#include "isa/instr.hpp"

namespace s4e::isa {

// True if `half` is a 16-bit (compressed) encoding (low two bits != 11).
constexpr bool is_compressed(u16 half) { return (half & 0x3) != 0x3; }

// Expand one RVC halfword into its base-ISA equivalent (length = 2,
// raw = half). Fails on illegal/reserved encodings and on RV64-only ones.
Result<Instr> decompress(u16 half);

// Produce the RVC encoding for `instr` if one exists within the supported
// emit subset (ALU, loads/stores, li/lui — never branches or jumps).
std::optional<u16> compress(const Instr& instr);

}  // namespace s4e::isa
