// s4e-cov — run one or more ELFs and print merged coverage (the suite-level
// view behind the E4 table: per-binary runs, union on merge).
//
// With --static (default on; disable with --no-static) each binary is also
// analyzed statically and the report gains a second denominator: coverage
// over the instruction types a feasible path could execute at all.
//
//   s4e-cov a.elf b.elf ...  [--per-binary] [--no-static]
#include <cstdio>

#include "coverage/coverage.hpp"
#include "dataflow/analyze.hpp"
#include "elf/elf32.hpp"
#include "isa/opcode.hpp"
#include "tools/tool_util.hpp"
#include "vp/machine.hpp"

int main(int argc, char** argv) {
  using namespace s4e;
  static constexpr char kUsage[] =
      "usage: s4e-cov <a.elf> [b.elf ...] [--per-binary] [--no-static]\n";
  tools::Args args(argc, argv, {}, {"--per-binary", "--no-static"});
  if (const int code = tools::standard_flags(args, "s4e-cov", kUsage);
      code >= 0) {
    return code;
  }
  if (args.positional().empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  const bool use_static = !args.has("--no-static");

  coverage::CoverageData merged;
  std::vector<bool> static_ops(isa::kOpCount, false);
  bool have_static = false;
  unsigned failures = 0;
  for (const std::string& path : args.positional()) {
    auto program = elf::read_elf_file(path);
    if (!program.ok()) {
      std::fprintf(stderr, "s4e-cov: %s\n",
                   program.error().to_string().c_str());
      return 1;
    }
    std::vector<bool> binary_ops;
    if (use_static) {
      if (auto analysis = dataflow::analyze_program(*program); analysis.ok()) {
        binary_ops = dataflow::reachable_ops(*analysis);
        have_static = true;
        for (unsigned i = 0; i < isa::kOpCount; ++i) {
          if (binary_ops[i]) static_ops[i] = true;
        }
      } else {
        std::fprintf(stderr, "s4e-cov: %s: static analysis skipped (%s)\n",
                     path.c_str(), analysis.error().to_string().c_str());
      }
    }
    vp::Machine machine;
    if (auto status = machine.load_program(*program); !status.ok()) {
      std::fprintf(stderr, "s4e-cov: %s\n", status.to_string().c_str());
      return 1;
    }
    coverage::CoveragePlugin plugin;
    plugin.attach(machine.vm_handle());
    const vp::RunResult result = machine.run();
    if (!result.normal_exit()) {
      ++failures;
      std::fprintf(stderr, "s4e-cov: %s did not terminate normally (%s)\n",
                   path.c_str(),
                   std::string(vp::to_string(result.reason)).c_str());
    }
    if (args.has("--per-binary")) {
      std::printf("%s",
                  coverage::to_report(plugin.data(), path,
                                      binary_ops.empty() ? nullptr
                                                         : &binary_ops)
                      .c_str());
      std::printf("\n");
    }
    merged.merge(plugin.data());
  }

  if (args.positional().size() > 1 || !args.has("--per-binary")) {
    std::printf("%s", coverage::to_report(
                          merged,
                          format("merged over %zu binaries",
                                 args.positional().size()),
                          have_static ? &static_ops : nullptr)
                          .c_str());
  }
  return tools::finish_stdout("s4e-cov", failures == 0 ? 0 : 1);
}
