file(REMOVE_RECURSE
  "CMakeFiles/s4e_common.dir/log.cpp.o"
  "CMakeFiles/s4e_common.dir/log.cpp.o.d"
  "CMakeFiles/s4e_common.dir/status.cpp.o"
  "CMakeFiles/s4e_common.dir/status.cpp.o.d"
  "CMakeFiles/s4e_common.dir/strings.cpp.o"
  "CMakeFiles/s4e_common.dir/strings.cpp.o.d"
  "libs4e_common.a"
  "libs4e_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
