# amoswap spinlock guarding a shared counter (SMP)
# expected exit code: 0

_start:
    csrr t0, mhartid
    la s0, lock
    la s2, counter
    li s1, 64
    bnez t0, worker
    call add_loop
    lw t4, 0(s2)
    li t5, 64
    blt t4, t5, fail
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall

worker:
    call add_loop
park:
    wfi
    j park

# add_loop: s1 rounds of lock / counter += 1 / unlock. The lock is a
# test-and-set word: amoswap.w 1 acquires when the old value was 0, and
# an amoswap.w of 0 releases.
add_loop:
acquire:
    li t1, 1
    amoswap.w t2, t1, (s0)
    bnez t2, acquire
    lw t3, 0(s2)
    addi t3, t3, 1
    sw t3, 0(s2)
    amoswap.w zero, zero, (s0)
    addi s1, s1, -1
    bnez s1, add_loop
    ret
.data
lock:
    .word 0
counter:
    .word 0
