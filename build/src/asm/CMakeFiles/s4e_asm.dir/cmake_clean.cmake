file(REMOVE_RECURSE
  "CMakeFiles/s4e_asm.dir/assembler.cpp.o"
  "CMakeFiles/s4e_asm.dir/assembler.cpp.o.d"
  "CMakeFiles/s4e_asm.dir/program.cpp.o"
  "CMakeFiles/s4e_asm.dir/program.cpp.o.d"
  "libs4e_asm.a"
  "libs4e_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
