file(REMOVE_RECURSE
  "CMakeFiles/s4e_testgen.dir/testgen.cpp.o"
  "CMakeFiles/s4e_testgen.dir/testgen.cpp.o.d"
  "libs4e_testgen.a"
  "libs4e_testgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e_testgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
