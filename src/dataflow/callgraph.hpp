// Whole-program call graph over the reconstructed CFG.
//
// Nodes are the functions of a cfg::ProgramCfg; edges come from direct
// `jal ra` call sites. Indirect *jumps* that PR 2's data-flow resolution
// folded to a finite target set are already inlined into the caller's CFG
// (discover() explores the resolved targets as ordinary blocks), so they
// need no graph edges — the caller's summary sees that code directly.
// Reachable indirect sites that stayed unresolved (jalr with an unknown
// target, with or without linkage) *poison* the enclosing function: its
// callee set is unknown, so its summary — and, transitively, the summary of
// everything that calls it — must fall back to the conservative ABI
// assumptions.
//
// The graph also carries the SCC condensation: `bottom_up` lists function
// indices callees-first (Tarjan order), and `recursive` marks members of a
// call-graph cycle (self-recursion included). Both drive the bottom-up
// summary computation in summaries.cpp and the lint recursion check.
#pragma once

#include <vector>

#include "cfg/cfg.hpp"

namespace s4e::dataflow {

struct CallGraph {
  // All parallel to cfg.functions.
  std::vector<std::vector<u32>> callees;  // sorted, deduplicated
  std::vector<std::vector<u32>> callers;  // sorted, deduplicated
  std::vector<bool> poisoned;        // has a reachable unresolved indirect
  std::vector<bool> tainted;         // poisoned, or calls a tainted function
  std::vector<bool> recursive;       // member of a call-graph cycle
  std::vector<u32> scc_id;           // Tarjan SCC index per function
  std::vector<u32> bottom_up;        // function indices, callees before callers

  bool any_recursive() const noexcept {
    for (bool r : recursive) {
      if (r) return true;
    }
    return false;
  }
};

// Build the call graph. `block_reachable` (parallel to functions/blocks)
// restricts edges and poisoning to statically reachable blocks; nullptr
// treats every block as reachable.
CallGraph build_call_graph(
    const cfg::ProgramCfg& cfg,
    const std::vector<std::vector<bool>>* block_reachable = nullptr);

}  // namespace s4e::dataflow
