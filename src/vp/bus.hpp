// Physical address space of the VP: RAM regions plus memory-mapped devices.
//
// Default edge-SoC memory map (matches the workloads and the examples):
//   0x1000_0000  UART0
//   0x0200_0000  CLINT (mtime / mtimecmp)
//   0x0010_0000  test finisher (exit device)
//   0x8000_0000  RAM (code + data), size configurable
#pragma once

#include <memory>
#include <vector>

#include "common/bits.hpp"
#include "common/status.hpp"
#include "vp/device.hpp"

namespace s4e::vp {

// Result of a bus access: the value plus whether a device (vs RAM) was hit,
// which feeds the timing model's MMIO wait states.
struct BusRead {
  u32 value = 0;
  bool mmio = false;
};

class Bus {
 public:
  // Add a RAM region. Regions must not overlap devices or each other.
  void add_ram(u32 base, u32 size);

  // Map `device` at [base, base+size). The bus keeps ownership.
  void add_device(u32 base, u32 size, std::unique_ptr<Device> device);

  // Data-side accesses (MMIO side effects apply). Misaligned accesses are
  // supported for RAM (QEMU semantics); device accesses must be aligned.
  Result<BusRead> read(u32 address, unsigned size);
  Result<bool> write(u32 address, unsigned size, u32 value);  // -> mmio?

  // Instruction fetch: RAM only (executing from MMIO is an access fault).
  Result<u32> fetch_word(u32 address);
  // 16-bit fetch for RVC parcel decoding.
  Result<u32> fetch_half(u32 address);

  // Direct RAM access without MMIO side effects (loader, plugins, fault
  // injector). Fails if the range is not fully RAM-backed.
  Status ram_read(u32 address, void* buffer, u32 size) const;
  Status ram_write(u32 address, const void* buffer, u32 size);

  // True if [address, address+size) lies fully inside a RAM region.
  bool is_ram(u32 address, u32 size) const noexcept;

  // Zero-copy view of the RAM region containing `address` (empty view if
  // none), for the execution engine's inline load/store fast path. The
  // pointers stay valid for the life of the bus: regions are never removed
  // and their buffers never reallocate. Stores through the view must mark
  // dirtiness exactly like Bus::write does.
  struct RamWindow {
    u8* data = nullptr;
    u64* dirty = nullptr;
    u32 base = 0;
    u32 size = 0;
    void mark_dirty(u32 offset, u32 bytes) noexcept {
      const u32 last = (offset + bytes - 1) / kRamPageBytes;
      for (u32 page = offset / kRamPageBytes; page <= last; ++page) {
        dirty[page >> 6] |= u64{1} << (page & 63);
      }
    }
  };
  RamWindow ram_window(u32 address) noexcept;

  // Advance all devices to cycle `now`.
  void tick(u64 now);

  // Device registered at `base`, or nullptr (tests and example wiring).
  Device* device_at(u32 base) noexcept;

  // Reset every mapped device to power-on state (Machine::reset).
  void reset_devices();

  // --- Snapshot support (see vp/snapshot.hpp).

  // Capture a full image of every RAM region and mark all pages clean, so
  // the next ram_restore() copies back only what execution dirtied after
  // this call.
  void ram_snapshot(std::vector<RamImage>& images);

  // Write back the dirty pages from `images` (captured by ram_snapshot on
  // this bus) and clear the dirty map. Returns the number of pages copied.
  // `restored` (optional) collects the [address, size) extent of each
  // copied page so the caller can invalidate overlapping translation
  // blocks.
  u64 ram_restore(const std::vector<RamImage>& images,
                  std::vector<std::pair<u32, u32>>* restored = nullptr);

  // Total dirty-tracking pages across all RAM regions (the cost a full
  // restore would pay; --snapshot-stats denominator).
  u64 ram_pages() const noexcept;

  // Serialize / restore every mapped device's state, in mapping order.
  void save_device_state(std::vector<std::vector<u8>>& blobs) const;
  void restore_device_state(const std::vector<std::vector<u8>>& blobs);

 private:
  struct RamRegion {
    u32 base = 0;
    std::vector<u8> bytes;
    // One bit per kRamPageBytes page, set on every write path into the
    // region (CPU stores, ram_write); cleared by ram_snapshot/ram_restore.
    std::vector<u64> dirty;
    u32 end() const noexcept { return base + static_cast<u32>(bytes.size()); }
    void mark_dirty(std::size_t offset, u32 size) noexcept {
      const std::size_t last = (offset + size - 1) / kRamPageBytes;
      for (std::size_t page = offset / kRamPageBytes; page <= last; ++page) {
        dirty[page >> 6] |= u64{1} << (page & 63);
      }
    }
  };
  struct DeviceMapping {
    u32 base = 0;
    u32 size = 0;
    std::unique_ptr<Device> device;
  };

  RamRegion* find_ram(u32 address, u32 size) noexcept;
  const RamRegion* find_ram(u32 address, u32 size) const noexcept;
  DeviceMapping* find_device(u32 address) noexcept;

  std::vector<RamRegion> ram_;
  std::vector<DeviceMapping> devices_;
};

}  // namespace s4e::vp
