# seeded defect: a direct UART store from outside the sanctioned driver
# With workloads/negative/uart.policy, s4e-lint must report a policy
# finding for the `sb` in _start while the uart_puts store stays clean.

_start:
    la a0, msg
    call uart_puts     # sanctioned path: stores from inside the pc window
    li t0, 0x10000000
    li t1, 88
    sb t1, 0(t0)       # direct device write outside the window
    li a0, 0
    li a7, 93
    ecall

uart_puts:
    lbu t2, 0(a0)
    beqz t2, puts_done
    li t3, 0x10000000
    sb t2, 0(t3)
    addi a0, a0, 1
    j uart_puts
puts_done:
    ret
uart_puts_end:

.data
msg:
    .asciz "hi"
