// s4e-run — execute an ELF on the virtual prototype.
//
//   s4e-run file.elf [--max-insns N] [--uart-input STR] [--coverage]
//                    [--stats] [--trace[=FILE]] [--trace-limit N]
//                    [--gdb[=PORT]]
//
// --trace emits a structured JSONL event trace (one JSON object per
// instruction / memory access / trap / exit) to FILE, or to stderr when no
// FILE is given, so stdout stays reserved for the run report.
//
// --gdb halts the machine at its entry point and serves one GDB remote
// session on 127.0.0.1:PORT (default 1234; PORT 0 binds an ephemeral port).
// The bound address is announced on stderr. When the debugger detaches (or
// drops) before the program ends, the machine free-runs to completion, so
// --coverage/--trace/--stats still see the whole execution.
//
// Exit code mirrors the guest's exit code on a normal exit; 124 on the
// instruction-budget hang detector; 125 on abnormal stops.
#include <cstdio>

#include "core/profiler.hpp"
#include "coverage/coverage.hpp"
#include "debug/tcp.hpp"
#include "elf/elf32.hpp"
#include "obs/trace.hpp"
#include "tools/tool_util.hpp"
#include "trace/recorder.hpp"
#include "vp/machine.hpp"

namespace {

constexpr char kUsage[] =
    "usage: s4e-run <file.elf> [--harts N] [--slice N] [--max-insns N] "
    "[--uart-input S] [--coverage] [--profile] [--stats] [--trace[=FILE]] "
    "[--trace-limit N] [--trace-bin FILE] [--gdb[=PORT]]\n";

// Serve one GDB session; the machine is halted at entry. Returns false on a
// setup error. On return, `result` holds the final machine stop: either the
// program end observed under the debugger, or — after a detach/drop — the
// result of free-running the rest of the program.
bool serve_gdb(s4e::vp::Machine& machine, const std::string& port_text,
               s4e::vp::RunResult& result, bool& killed) {
  using namespace s4e;
  u16 port = 1234;
  if (!port_text.empty()) {
    auto parsed = parse_integer(port_text);
    if (!parsed.ok() || *parsed < 0 || *parsed > 65535) {
      std::fprintf(stderr, "s4e-run: bad --gdb port '%s'\n",
                   port_text.c_str());
      return false;
    }
    port = static_cast<u16>(*parsed);
  }
  std::string error;
  auto listener = debug::TcpListener::listen_loopback(port, error);
  if (listener == nullptr) {
    std::fprintf(stderr, "s4e-run: %s\n", error.c_str());
    return false;
  }
  std::fprintf(stderr, "s4e-run: gdb stub listening on 127.0.0.1:%u\n",
               static_cast<unsigned>(listener->port()));
  auto channel = listener->accept_one(error);
  if (channel == nullptr) {
    std::fprintf(stderr, "s4e-run: %s\n", error.c_str());
    return false;
  }
  debug::DebugTarget target(machine);
  debug::RspServer server(target, *channel);
  const auto outcome = server.serve();
  if (outcome == debug::RspServer::ServeResult::kKilled) {
    killed = true;
    return true;
  }
  if (!server.last_stop().debug_stop()) {
    result = server.last_stop();  // program finished under the debugger
  } else {
    result = machine.run();  // detached / connection lost: free-run the rest
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace s4e;
  tools::Args args(argc, argv,
                   {"--harts", "--slice", "--max-insns", "--uart-input",
                    "--trace-limit", "--trace-bin"},
                   {"--coverage", "--profile", "--stats", "--trace", "--gdb"});
  if (const int code = tools::standard_flags(args, "s4e-run", kUsage);
      code >= 0) {
    return code;
  }
  if (args.positional().empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  auto program = elf::read_elf_file(args.positional()[0]);
  if (!program.ok()) {
    std::fprintf(stderr, "s4e-run: %s\n", program.error().to_string().c_str());
    return 1;
  }

  vp::MachineConfig config;
  if (args.has("--harts")) {
    auto harts = parse_integer(args.value("--harts"));
    if (!harts.ok() || *harts < 1 ||
        *harts > static_cast<long long>(vp::Clint::kMaxHarts)) {
      std::fprintf(stderr, "s4e-run: --harts expects 1..%u (got %s)\n",
                   vp::Clint::kMaxHarts, args.value("--harts").c_str());
      return 2;
    }
    config.num_harts = static_cast<unsigned>(*harts);
  }
  // --slice N: SMP round-robin quantum in instructions. Shorter slices give
  // finer cross-hart interleaving (still fully deterministic); the default
  // matches the engine's chain quantum.
  if (args.has("--slice")) {
    auto quantum = parse_integer(args.value("--slice"));
    if (!quantum.ok() || *quantum < 1) {
      std::fprintf(stderr, "s4e-run: --slice expects a positive count (got %s)\n",
                   args.value("--slice").c_str());
      return 2;
    }
    config.smp_slice_quantum = static_cast<u64>(*quantum);
  }
  if (args.has("--max-insns")) {
    auto limit = parse_integer(args.value("--max-insns"));
    if (!limit.ok() || *limit <= 0) {
      std::fprintf(stderr, "bad --max-insns\n");
      return 2;
    }
    config.max_instructions = static_cast<u64>(*limit);
  }
  vp::Machine machine(config);
  if (auto status = machine.load_program(*program); !status.ok()) {
    std::fprintf(stderr, "s4e-run: %s\n", status.to_string().c_str());
    return 1;
  }
  if (args.has("--uart-input")) {
    machine.uart()->push_rx(args.value("--uart-input"));
  }

  coverage::CoveragePlugin coverage_plugin;
  if (args.has("--coverage")) coverage_plugin.attach(machine.vm_handle());
  core::ProfilerPlugin profiler;
  if (args.has("--profile")) profiler.attach(machine.vm_handle());

  // --trace=FILE writes the JSONL trace there; bare --trace streams it to
  // stderr (stdout carries the run report and must stay clean).
  std::FILE* trace_file = nullptr;
  std::FILE* trace_sink = stderr;
  if (args.has("--trace")) {
    const std::string trace_path = args.value("--trace");
    if (!trace_path.empty()) {
      trace_file = std::fopen(trace_path.c_str(), "w");
      if (trace_file == nullptr) {
        std::fprintf(stderr, "s4e-run: cannot open trace file '%s'\n",
                     trace_path.c_str());
        return 2;
      }
      trace_sink = trace_file;
    }
  }
  obs::JsonlTracePlugin trace(
      trace_sink, static_cast<u64>(
                      parse_integer(args.value("--trace-limit", "0"))
                          .value_or(0)));
  if (args.has("--trace")) trace.attach(machine.vm_handle());

  // --trace-bin FILE records a binary execution trace for the differential
  // replay engine (s4e-qta --replay).
  s4e::trace::TraceRecorder recorder(
      s4e::trace::TraceRecorder::config_for(config, *program));
  if (args.has("--trace-bin")) {
    if (args.value("--trace-bin").empty()) {
      std::fprintf(stderr, "s4e-run: --trace-bin needs a file path\n");
      return 2;
    }
    if (auto status = recorder.attach_checked(machine.vm_handle());
        !status.ok()) {
      std::fprintf(stderr, "s4e-run: %s\n", status.to_string().c_str());
      return 2;
    }
  }

  vp::RunResult result;
  bool killed = false;
  if (args.has("--gdb")) {
    if (!serve_gdb(machine, args.value("--gdb"), result, killed)) return 2;
  } else {
    result = machine.run();
  }
  if (trace_file != nullptr) std::fclose(trace_file);
  if (args.has("--trace-bin") && !killed) {
    const std::string bin_path = args.value("--trace-bin");
    if (auto status = recorder.finish(result, bin_path); !status.ok()) {
      std::fprintf(stderr, "s4e-run: %s\n", status.to_string().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "s4e-run: trace-bin wrote %s (%zu stream bytes, %llu "
                 "instructions, %llu taints)\n",
                 bin_path.c_str(), recorder.stream_size(),
                 static_cast<unsigned long long>(recorder.instructions()),
                 static_cast<unsigned long long>(recorder.taints()));
  }
  // debugger issued `k`: not a guest failure
  if (killed) return tools::finish_stdout("s4e-run");

  if (!machine.uart()->tx_log().empty()) {
    std::printf("--- uart ---\n%s--- end uart ---\n",
                machine.uart()->tx_log().c_str());
  }
  if (args.has("--stats")) {
    std::printf("stop     : %s\n",
                std::string(vp::to_string(result.reason)).c_str());
    std::printf("exit     : %d\n", result.exit_code);
    std::printf("insns    : %llu\n",
                static_cast<unsigned long long>(result.instructions));
    std::printf("cycles   : %llu\n",
                static_cast<unsigned long long>(result.cycles));
    std::printf("final pc : 0x%08x\n", result.final_pc);
    if (machine.num_harts() > 1) {
      // Per-hart breakdown: retired instructions plus each hart's share of
      // the engine's block dispatches (single-hart output is unchanged).
      for (unsigned hart = 0; hart < machine.num_harts(); ++hart) {
        const vp::EngineStats& hs = machine.engine_stats(hart);
        std::printf("hart %-4u: %llu insns, %llu fast blocks, "
                    "%llu careful blocks, final pc 0x%08x\n",
                    hart,
                    static_cast<unsigned long long>(machine.hart_icount(hart)),
                    static_cast<unsigned long long>(hs.blocks_fast),
                    static_cast<unsigned long long>(hs.blocks_careful),
                    machine.cpu(hart).pc);
      }
    }
    std::printf("tb-cache : %zu blocks, %llu flushes\n",
                machine.tb_cache().size(),
                static_cast<unsigned long long>(
                    machine.tb_cache().flush_count()));
    const vp::EngineStats& es = machine.engine_stats();
    const vp::TbCache& tc = machine.tb_cache();
    const auto rate = [](u64 hits, u64 misses) {
      const u64 total = hits + misses;
      return total == 0 ? 0.0 : 100.0 * static_cast<double>(hits) /
                                    static_cast<double>(total);
    };
    std::printf("engine   : %llu fast blocks, %llu careful blocks\n",
                static_cast<unsigned long long>(es.blocks_fast),
                static_cast<unsigned long long>(es.blocks_careful));
    std::printf("chains   : %llu linked, %llu followed, %llu severs\n",
                static_cast<unsigned long long>(es.chain_patches),
                static_cast<unsigned long long>(es.chain_follows),
                static_cast<unsigned long long>(tc.chain_severs()));
    std::printf("jump$    : %llu hits, %llu misses (%.1f%%)\n",
                static_cast<unsigned long long>(es.jump_cache_hits),
                static_cast<unsigned long long>(es.jump_cache_misses),
                rate(es.jump_cache_hits, es.jump_cache_misses));
    std::printf("superblk : %llu formed, %zu live\n",
                static_cast<unsigned long long>(es.superblocks_formed),
                tc.superblock_count());
    std::printf("tb-front : %llu front hits, %llu deep hits, %llu misses "
                "(%.1f%% front)\n",
                static_cast<unsigned long long>(tc.front_hits()),
                static_cast<unsigned long long>(tc.deep_hits()),
                static_cast<unsigned long long>(tc.lookup_misses()),
                rate(tc.front_hits(), tc.deep_hits() + tc.lookup_misses()));
  }
  if (args.has("--coverage")) {
    std::printf("%s", coverage::to_report(coverage_plugin.data(),
                                          args.positional()[0])
                          .c_str());
  }
  if (args.has("--profile")) {
    std::printf("%s", profiler.report(*program).c_str());
  }
  // A broken stdout (closed pipe mid-report) overrides the guest's exit
  // code: a truncated report must not look like a clean run.
  if (result.normal_exit()) {
    return tools::finish_stdout("s4e-run", result.exit_code & 0xff);
  }
  if (result.reason == vp::StopReason::kMaxInstructions) {
    return tools::finish_stdout("s4e-run", 124);
  }
  std::fprintf(stderr, "s4e-run: abnormal stop: %s (%s)\n",
               std::string(vp::to_string(result.reason)).c_str(),
               result.detail.c_str());
  return 125;
}
