file(REMOVE_RECURSE
  "CMakeFiles/bench_wcet_bounds.dir/bench_wcet_bounds.cpp.o"
  "CMakeFiles/bench_wcet_bounds.dir/bench_wcet_bounds.cpp.o.d"
  "bench_wcet_bounds"
  "bench_wcet_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wcet_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
