# Empty compiler generated dependencies file for s4e-qta.
# This may be replaced when dependencies are built.
