file(REMOVE_RECURSE
  "libs4e_fault.a"
)
