#include "debug/target.hpp"

#include "common/hex.hpp"
#include "vp/bus.hpp"

namespace s4e::debug {

std::string_view target_xml() {
  // Minimal RV32 description: gdb infers the register file layout from the
  // architecture element, so no per-register listing is needed.
  return "<?xml version=\"1.0\"?>\n"
         "<!DOCTYPE target SYSTEM \"gdb-target.dtd\">\n"
         "<target version=\"1.0\">\n"
         "  <architecture>riscv:rv32</architecture>\n"
         "</target>\n";
}

std::string DebugTarget::read_registers(unsigned hart) const {
  const vp::CpuState& cpu = machine_.cpu(hart);
  std::string out;
  out.reserve(kRegCount * 8);
  for (unsigned i = 0; i < 32; ++i) {
    out += hex32_le(cpu.gpr[i]);
  }
  out += hex32_le(cpu.pc);
  return out;
}

bool DebugTarget::write_registers(unsigned hart, std::string_view hex) {
  if (hex.size() < kRegCount * 8) return false;
  u32 values[kRegCount];
  for (unsigned i = 0; i < kRegCount; ++i) {
    const auto value = parse_hex32_le(hex.substr(i * 8, 8));
    if (!value) return false;
    values[i] = *value;
  }
  vp::CpuState& cpu = machine_.cpu(hart);
  for (unsigned i = 1; i < 32; ++i) cpu.write_gpr(i, values[i]);
  cpu.pc = values[kPcRegnum];
  return true;
}

std::string DebugTarget::read_register(unsigned hart, unsigned regnum) const {
  const vp::CpuState& cpu = machine_.cpu(hart);
  if (regnum < 32) return hex32_le(cpu.gpr[regnum]);
  if (regnum == kPcRegnum) return hex32_le(cpu.pc);
  return {};
}

bool DebugTarget::write_register(unsigned hart, unsigned regnum, u32 value) {
  if (regnum == 0) return true;  // x0 is hardwired; accept and ignore
  vp::CpuState& cpu = machine_.cpu(hart);
  if (regnum < 32) {
    cpu.write_gpr(regnum, value);
    return true;
  }
  if (regnum == kPcRegnum) {
    cpu.pc = value;
    return true;
  }
  return false;
}

Status DebugTarget::read_memory(u32 address, u32 length,
                                std::string& hex_out) const {
  std::vector<u8> bytes(length);
  S4E_TRY_STATUS(machine_.bus().ram_read(address, bytes.data(), length));
  hex_out = to_hex(bytes.data(), bytes.size());
  return Status();
}

Status DebugTarget::write_memory(u32 address, const std::vector<u8>& bytes) {
  S4E_TRY_STATUS(machine_.bus().ram_write(address, bytes.data(),
                                          static_cast<u32>(bytes.size())));
  machine_.invalidate_code(address, static_cast<u32>(bytes.size()));
  return Status();
}

bool DebugTarget::insert_point(unsigned type, u32 address, u32 kind) {
  switch (type) {
    case 0:
    case 1:
      machine_.add_breakpoint(address);
      return true;
    case 2:
      machine_.add_watchpoint(address, kind, vp::WatchKind::kWrite);
      return true;
    case 3:
      machine_.add_watchpoint(address, kind, vp::WatchKind::kRead);
      return true;
    case 4:
      machine_.add_watchpoint(address, kind, vp::WatchKind::kAccess);
      return true;
    default:
      return false;
  }
}

bool DebugTarget::remove_point(unsigned type, u32 address, u32 kind) {
  switch (type) {
    case 0:
    case 1:
      return machine_.remove_breakpoint(address);
    case 2:
      return machine_.remove_watchpoint(address, kind, vp::WatchKind::kWrite);
    case 3:
      return machine_.remove_watchpoint(address, kind, vp::WatchKind::kRead);
    case 4:
      return machine_.remove_watchpoint(address, kind, vp::WatchKind::kAccess);
    default:
      return false;
  }
}

vp::RunResult DebugTarget::resume(const std::function<bool()>& interrupted) {
  // A breakpoint at the current PC would re-fire immediately: step over it
  // first, exactly like a hardware debugger's resume sequence.
  if (machine_.has_breakpoint(machine_.cpu().pc)) {
    vp::RunResult first = machine_.step();
    if (first.reason != vp::StopReason::kDebugStep) return first;
  }
  for (;;) {
    vp::RunResult result = machine_.run_slice(slice_);
    if (result.reason != vp::StopReason::kDebugSlice) return result;
    if (interrupted && interrupted()) {
      result.reason = vp::StopReason::kDebugInterrupt;
      return result;
    }
  }
}

}  // namespace s4e::debug
