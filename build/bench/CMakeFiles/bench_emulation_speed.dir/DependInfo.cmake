
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_emulation_speed.cpp" "bench/CMakeFiles/bench_emulation_speed.dir/bench_emulation_speed.cpp.o" "gcc" "bench/CMakeFiles/bench_emulation_speed.dir/bench_emulation_speed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/s4e_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mutation/CMakeFiles/s4e_mutation.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/s4e_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/qta/CMakeFiles/s4e_qta.dir/DependInfo.cmake"
  "/root/repo/build/src/wcet/CMakeFiles/s4e_wcet.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/s4e_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/s4e_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/s4e_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/memwatch/CMakeFiles/s4e_memwatch.dir/DependInfo.cmake"
  "/root/repo/build/src/vp/CMakeFiles/s4e_vp.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/s4e_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/testgen/CMakeFiles/s4e_testgen.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/s4e_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/s4e_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
