// s4e-run — execute an ELF on the virtual prototype.
//
//   s4e-run file.elf [--max-insns N] [--uart-input STR] [--coverage]
//                    [--stats] [--trace N]
//
// Exit code mirrors the guest's exit code on a normal exit; 124 on the
// instruction-budget hang detector; 125 on abnormal stops.
#include <cstdio>

#include "core/profiler.hpp"
#include "coverage/coverage.hpp"
#include "elf/elf32.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "tools/tool_util.hpp"
#include "vp/machine.hpp"

namespace {

using namespace s4e;

// Prints the first N executed instructions (a debugging trace).
class TracePlugin final : public vp::PluginBase {
 public:
  explicit TracePlugin(u64 limit) : limit_(limit) {}
  Subscriptions subscriptions() const override {
    Subscriptions subs;
    subs.insn_exec = true;
    return subs;
  }
  void on_insn_exec(const s4e_insn_info& insn) override {
    if (printed_ >= limit_) return;
    ++printed_;
    auto decoded = isa::decoder().decode(insn.encoding);
    std::printf("trace %8llu  %08x  %s\n",
                static_cast<unsigned long long>(printed_), insn.address,
                decoded.ok() ? isa::disassemble_at(*decoded, insn.address).c_str()
                             : "<illegal>");
  }

 private:
  u64 limit_;
  u64 printed_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  tools::Args args(argc, argv, {"--max-insns", "--uart-input", "--trace"});
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: s4e-run <file.elf> [--max-insns N] [--uart-input S] "
                 "[--coverage] [--profile] [--stats] [--trace N]\n");
    return 2;
  }
  auto program = elf::read_elf_file(args.positional()[0]);
  if (!program.ok()) {
    std::fprintf(stderr, "s4e-run: %s\n", program.error().to_string().c_str());
    return 1;
  }

  vp::MachineConfig config;
  if (args.has("--max-insns")) {
    auto limit = parse_integer(args.value("--max-insns"));
    if (!limit.ok() || *limit <= 0) {
      std::fprintf(stderr, "bad --max-insns\n");
      return 2;
    }
    config.max_instructions = static_cast<u64>(*limit);
  }
  vp::Machine machine(config);
  if (auto status = machine.load_program(*program); !status.ok()) {
    std::fprintf(stderr, "s4e-run: %s\n", status.to_string().c_str());
    return 1;
  }
  if (args.has("--uart-input")) {
    machine.uart()->push_rx(args.value("--uart-input"));
  }

  coverage::CoveragePlugin coverage_plugin;
  if (args.has("--coverage")) coverage_plugin.attach(machine.vm_handle());
  core::ProfilerPlugin profiler;
  if (args.has("--profile")) profiler.attach(machine.vm_handle());
  TracePlugin trace(args.has("--trace")
                        ? static_cast<u64>(
                              parse_integer(args.value("--trace")).value_or(50))
                        : 0);
  if (args.has("--trace")) trace.attach(machine.vm_handle());

  const vp::RunResult result = machine.run();

  if (!machine.uart()->tx_log().empty()) {
    std::printf("--- uart ---\n%s--- end uart ---\n",
                machine.uart()->tx_log().c_str());
  }
  if (args.has("--stats")) {
    std::printf("stop     : %s\n",
                std::string(vp::to_string(result.reason)).c_str());
    std::printf("exit     : %d\n", result.exit_code);
    std::printf("insns    : %llu\n",
                static_cast<unsigned long long>(result.instructions));
    std::printf("cycles   : %llu\n",
                static_cast<unsigned long long>(result.cycles));
    std::printf("final pc : 0x%08x\n", result.final_pc);
    std::printf("tb-cache : %zu blocks, %llu flushes\n",
                machine.tb_cache().size(),
                static_cast<unsigned long long>(
                    machine.tb_cache().flush_count()));
  }
  if (args.has("--coverage")) {
    std::printf("%s", coverage::to_report(coverage_plugin.data(),
                                          args.positional()[0])
                          .c_str());
  }
  if (args.has("--profile")) {
    std::printf("%s", profiler.report(*program).c_str());
  }
  if (result.normal_exit()) return result.exit_code & 0xff;
  if (result.reason == vp::StopReason::kMaxInstructions) return 124;
  std::fprintf(stderr, "s4e-run: abnormal stop: %s (%s)\n",
               std::string(vp::to_string(result.reason)).c_str(),
               result.detail.c_str());
  return 125;
}
